package routebricks

import (
	"testing"
)

// The facade assembles a working RB4 end to end.
func TestFacadeRB4(t *testing.T) {
	rb4, err := RB4()
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{
		OfferedBpsPerNode: 1e9,
		Sizes:             AbileneMix(),
		ExcludeSelf:       true,
		Duration:          5 * Millisecond,
		Seed:              1,
	}
	n := w.Apply(rb4)
	if n == 0 {
		t.Fatal("workload injected nothing")
	}
	rb4.Run(w.Duration + Millisecond)
	rb4.Drain(20 * Millisecond)
	injected, delivered, _, _, _ := rb4.Totals()
	if delivered != injected {
		t.Fatalf("delivered %d of %d", delivered, injected)
	}
	if rb4.Latency.Mean() <= 0 {
		t.Fatal("no latency measured")
	}
}

func TestFacadeSpecsAndSizes(t *testing.T) {
	if Nehalem().Cores() != 8 || Xeon().Cores() != 8 {
		t.Fatal("server specs wrong")
	}
	if m := AbileneMix().Mean(); m < 700 || m > 800 {
		t.Fatalf("Abilene mean = %g", m)
	}
	if s := FixedSize(64); s.Mean() != 64 {
		t.Fatalf("FixedSize mean = %g", s.Mean())
	}
	cfg := RB4Config()
	if cfg.Nodes != 4 || !cfg.Flowlets {
		t.Fatalf("RB4Config = %+v", cfg)
	}
	if _, err := NewCluster(ClusterConfig{Nodes: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// Every registered experiment is reachable through the facade and runs
// in quick mode.
func TestFacadeExperiments(t *testing.T) {
	all := Experiments()
	if len(all) < 15 {
		t.Fatalf("only %d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"table1", "fig3", "fig8", "rb4", "reorder", "profile"} {
		if _, ok := ExperimentByID(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if _, ok := ExperimentByID("nonexistent"); ok {
		t.Error("phantom experiment")
	}
	// A cheap one, end to end through the facade.
	e, _ := ExperimentByID("table1")
	rep := e.Run(true)
	if rep == nil || len(rep.Rows) != 3 {
		t.Fatal("table1 malformed through facade")
	}
}
