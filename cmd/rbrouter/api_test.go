package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"

	"routebricks"
	"routebricks/internal/click"
)

// apiFixture builds a 2-node cluster (sockets bound, datapath never
// started — the API only reads snapshots and writes through the FIB)
// and serves the admin mux over httptest.
func apiFixture(t *testing.T) (*httptest.Server, *routebricks.RouteAdmin, *int) {
	t.Helper()
	fib, err := routebricks.NewFIB(
		routebricks.Route{Prefix: netip.MustParsePrefix("10.0.0.0/16"), NextHop: 0},
		routebricks.Route{Prefix: netip.MustParsePrefix("10.1.0.0/16"), NextHop: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*node, 2)
	for i := range nodes {
		nd, err := newNode(i, len(nodes), fib, defaultConfig, true, 1, click.Parallel, false, wireConfig{rxQueues: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			nd.ingress.Stop()
			nd.transit.Stop()
			nd.ext.Close()
			nd.int_.Close()
		})
		nodes[i] = nd
	}
	replans := 0
	srv := httptest.NewServer(newAdminMux(nodes, fib, func() error { replans++; return nil }, nil))
	t.Cleanup(srv.Close)
	return srv, fib, &replans
}

// decodeBody decodes a response body into v and closes it.
func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestAdminAPIStatsAndController(t *testing.T) {
	srv, _, _ := apiFixture(t)

	for _, path := range []string{"/api/v1/stats", "/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		var snaps []nodeSnapshot
		decodeBody(t, resp, &snaps)
		if len(snaps) != 2 {
			t.Fatalf("GET %s: %d nodes", path, len(snaps))
		}
		// The snapshot must carry the live FIB gauges through the node
		// pipelines: 2 routes at generation 1.
		for _, s := range snaps {
			if s.Ingress.FIBGeneration != 1 || s.Ingress.FIBRoutes != 2 {
				t.Fatalf("node %d FIB gauges: gen=%d routes=%d", s.ID, s.Ingress.FIBGeneration, s.Ingress.FIBRoutes)
			}
		}
	}

	// The alias keeps working but is method-checked like the v1 route.
	resp, err := http.Post(srv.URL+"/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats: %d", resp.StatusCode)
	}
	var envelope errorEnvelope
	decodeBody(t, resp, &envelope)
	if envelope.Error.Code != http.StatusMethodNotAllowed || envelope.Error.Message == "" {
		t.Fatalf("error envelope: %+v", envelope)
	}

	resp, err = http.Get(srv.URL + "/api/v1/controller")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/v1/controller: %d", resp.StatusCode)
	}
	var ctrls []controllerDoc
	decodeBody(t, resp, &ctrls)
	if len(ctrls) != 2 || ctrls[0].Controller != nil {
		t.Fatalf("controller doc: %+v", ctrls)
	}
}

func TestAdminAPIRoutes(t *testing.T) {
	srv, fib, _ := apiFixture(t)

	resp, err := http.Get(srv.URL + "/api/v1/routes")
	if err != nil {
		t.Fatal(err)
	}
	var doc routesDoc
	decodeBody(t, resp, &doc)
	if doc.Generation != 1 || doc.Count != 2 || len(doc.Routes) != 2 {
		t.Fatalf("initial listing: %+v", doc)
	}

	// Batch add + withdraw: one commit, one generation.
	body := `{"add":[{"prefix":"192.0.2.0/24","next_hop":1},{"prefix":"198.51.100.0/24","next_hop":0}],"withdraw":["10.1.0.0/16"]}`
	resp, err = http.Post(srv.URL+"/api/v1/routes", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST routes: %d", resp.StatusCode)
	}
	decodeBody(t, resp, &doc)
	if doc.Generation != 2 || doc.Count != 3 {
		t.Fatalf("after batch: %+v", doc)
	}
	if fib.Generation() != 2 || fib.Len() != 3 {
		t.Fatalf("FIB after batch: gen=%d len=%d", fib.Generation(), fib.Len())
	}

	// DELETE by query parameter.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/routes?prefix=192.0.2.0/24", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE routes: %d", resp.StatusCode)
	}
	decodeBody(t, resp, &doc)
	if doc.Generation != 3 || doc.Count != 2 {
		t.Fatalf("after delete: %+v", doc)
	}

	// Error envelopes: bad body, empty batch, bad prefix, missing prefix,
	// disallowed method.
	cases := []struct {
		method, path, body string
		want               int
	}{
		{http.MethodPost, "/api/v1/routes", "not json", http.StatusBadRequest},
		{http.MethodPost, "/api/v1/routes", "{}", http.StatusBadRequest},
		{http.MethodPost, "/api/v1/routes", `{"add":[{"prefix":"bogus","next_hop":1}]}`, http.StatusBadRequest},
		{http.MethodDelete, "/api/v1/routes", "", http.StatusBadRequest},
		{http.MethodPut, "/api/v1/routes", "{}", http.StatusMethodNotAllowed},
		{http.MethodGet, "/api/v1/replan", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %s: %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
		var envelope errorEnvelope
		decodeBody(t, resp, &envelope)
		if envelope.Error.Code != tc.want || envelope.Error.Message == "" {
			t.Fatalf("%s %s envelope: %+v", tc.method, tc.path, envelope)
		}
	}
	// Failed requests must not have committed anything.
	if fib.Generation() != 3 || fib.Len() != 2 {
		t.Fatalf("FIB disturbed by rejected requests: gen=%d len=%d", fib.Generation(), fib.Len())
	}
}

func TestAdminAPIRSS(t *testing.T) {
	// 2-core nodes so a bucket migration has a real destination chain.
	fib, err := routebricks.NewFIB(
		routebricks.Route{Prefix: netip.MustParsePrefix("10.0.0.0/16"), NextHop: 0},
		routebricks.Route{Prefix: netip.MustParsePrefix("10.1.0.0/16"), NextHop: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*node, 2)
	for i := range nodes {
		nd, err := newNode(i, len(nodes), fib, defaultConfig, true, 2, click.Parallel, false, wireConfig{rxQueues: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			nd.ingress.Stop()
			nd.transit.Stop()
			nd.ext.Close()
			nd.int_.Close()
		})
		nodes[i] = nd
	}
	srv := httptest.NewServer(newAdminMux(nodes, fib, nil, nil))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/api/v1/rss")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET rss: %d", resp.StatusCode)
	}
	var docs []rssDoc
	decodeBody(t, resp, &docs)
	if len(docs) != 2 {
		t.Fatalf("GET rss: %d nodes", len(docs))
	}
	for _, d := range docs {
		if d.RSS == nil || d.RSS.Chains != 2 || len(d.RSS.Assignments) != d.RSS.Buckets || d.RSS.Generation != 0 {
			t.Fatalf("node %d table: %+v", d.ID, d.RSS)
		}
	}

	// Migrate one bucket on node 1; node 0's table must not move.
	body := `{"node":1,"moves":[{"bucket":0,"from":0,"to":1}]}`
	resp, err = http.Post(srv.URL+"/api/v1/rss", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST rss: %d", resp.StatusCode)
	}
	var doc rssDoc
	decodeBody(t, resp, &doc)
	if doc.ID != 1 || doc.RSS.Generation != 1 || doc.RSS.Assignments[0] != 1 {
		t.Fatalf("after move: %+v", doc)
	}
	if g := nodes[0].ingress.RSS().Generation(); g != 0 {
		t.Fatalf("node 0 table moved: generation %d", g)
	}

	// Error envelopes: bad body, bad node, empty moves, stale From
	// (bucket 0 now lives on chain 1), destination out of range. None may
	// disturb the table.
	cases := []struct {
		body string
		want int
	}{
		{"not json", http.StatusBadRequest},
		{`{"node":7,"moves":[{"bucket":0,"from":0,"to":1}]}`, http.StatusBadRequest},
		{`{"node":1}`, http.StatusBadRequest},
		{`{"node":1,"moves":[{"bucket":0,"from":0,"to":1}]}`, http.StatusUnprocessableEntity},
		{`{"node":1,"moves":[{"bucket":1,"from":0,"to":9}]}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+"/api/v1/rss", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.want {
			t.Fatalf("POST rss %s: %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
		var envelope errorEnvelope
		decodeBody(t, resp, &envelope)
		if envelope.Error.Code != tc.want || envelope.Error.Message == "" {
			t.Fatalf("POST rss %s envelope: %+v", tc.body, envelope)
		}
	}
	if g := nodes[1].ingress.RSS().Generation(); g != 1 {
		t.Fatalf("rejected requests moved the table: generation %d", g)
	}
}

func TestAdminAPIReplan(t *testing.T) {
	srv, _, replans := apiFixture(t)
	resp, err := http.Post(srv.URL+"/api/v1/replan", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST replan: %d", resp.StatusCode)
	}
	var out struct {
		Replanned  int      `json:"replanned"`
		Placements []string `json:"placements"`
	}
	decodeBody(t, resp, &out)
	if *replans != 1 || out.Replanned != 2 || len(out.Placements) != 2 {
		t.Fatalf("replan: hook=%d response=%+v", *replans, out)
	}
}
