package main

// The versioned admin API served on -stats-addr. Everything lives under
// /api/v1 with method checks and a JSON error envelope; /stats survives
// as a deprecated alias of GET /api/v1/stats so existing scrapers keep
// working. The route endpoints write through the cluster's shared live
// FIB — updates commit RCU-style and reach every node's forwarding
// cores without stalling them.
//
//	GET    /api/v1/stats       cluster snapshot (all nodes)
//	GET    /api/v1/controller  per-node replan-controller state
//	GET    /api/v1/routes      FIB listing + generation
//	POST   /api/v1/routes      batch add/withdraw, one FIB commit
//	DELETE /api/v1/routes      withdraw one prefix (?prefix= or JSON body)
//	POST   /api/v1/replan      re-decide every node's placement now
//	GET    /api/v1/rss         per-node flow-steering tables (assignments + bucket loads)
//	POST   /api/v1/rss         migrate steering buckets between chains (drain-barrier rewrite)
//	GET    /api/v1/mesh        membership table + heartbeat RTTs (mesh mode only)

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/netip"

	"routebricks"
	"routebricks/internal/mesh"
	"routebricks/internal/stats"
)

// errorEnvelope is the JSON error shape of every non-2xx API response.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

type apiError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: apiError{Code: status, Message: fmt.Sprintf(format, args...)}})
}

// methodCheck wraps a handler with an allow-list; disallowed methods get
// a 405 envelope with the Allow header set.
func methodCheck(allow string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != allow {
			w.Header().Set("Allow", allow)
			writeError(w, http.StatusMethodNotAllowed, "%s not allowed; use %s", r.Method, allow)
			return
		}
		h(w, r)
	}
}

// routeJSON is the wire shape of one FIB route.
type routeJSON struct {
	Prefix  string `json:"prefix"`
	NextHop int    `json:"next_hop"`
}

// routesDoc is the GET /api/v1/routes response and the POST response
// envelope: the FIB generation the listing (or commit) corresponds to.
type routesDoc struct {
	Generation uint64      `json:"generation"`
	Count      int         `json:"count"`
	Routes     []routeJSON `json:"routes,omitempty"`
}

// routesUpdate is the POST /api/v1/routes request body: a batch of adds
// and withdraws applied as one FIB commit.
type routesUpdate struct {
	Add      []routeJSON `json:"add,omitempty"`
	Withdraw []string    `json:"withdraw,omitempty"`
}

// controllerDoc is one node's entry in GET /api/v1/controller.
type controllerDoc struct {
	ID         int                          `json:"id"`
	Controller *routebricks.ControllerState `json:"controller"`
}

// rssDoc is one node's entry in GET /api/v1/rss and the POST response:
// the node id and its steering table's snapshot (assignments, per-bucket
// counts, generation).
type rssDoc struct {
	ID  int                `json:"id"`
	RSS *stats.RSSSnapshot `json:"rss"`
}

// rssUpdate is the POST /api/v1/rss request body: a batch of bucket
// migrations applied to one node's table as a single drain-barrier
// rewrite.
type rssUpdate struct {
	Node  int                `json:"node"`
	Moves []routebricks.Move `json:"moves"`
}

// newAdminMux builds the -stats-addr HTTP surface. replanAll, when
// non-nil, is the POST /api/v1/replan action (re-deciding every node's
// placement); fib is the cluster's shared live FIB. meshCtrl, when
// non-nil (mesh mode), adds GET /api/v1/mesh: the member's view of the
// cluster — per-peer state and heartbeat RTT, incarnations, and the
// re-stripe generation each member advertises.
func newAdminMux(nodes []*node, fib *routebricks.RouteAdmin, replanAll func() error, meshCtrl *mesh.Node) *http.ServeMux {
	mux := http.NewServeMux()

	if meshCtrl != nil {
		mux.HandleFunc("/api/v1/mesh", methodCheck(http.MethodGet, func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, http.StatusOK, meshCtrl.Status())
		}))
	}

	stats := func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, clusterSnapshot(nodes))
	}
	mux.HandleFunc("/api/v1/stats", methodCheck(http.MethodGet, stats))
	// Deprecated alias, kept so pre-v1 scrapers don't break.
	mux.HandleFunc("/stats", methodCheck(http.MethodGet, stats))

	mux.HandleFunc("/api/v1/controller", methodCheck(http.MethodGet, func(w http.ResponseWriter, _ *http.Request) {
		out := make([]controllerDoc, len(nodes))
		for i, nd := range nodes {
			out[i] = controllerDoc{ID: nd.id}
			if nd.ctrl != nil {
				st := nd.ctrl.State()
				out[i].Controller = &st
			}
		}
		writeJSON(w, http.StatusOK, out)
	}))

	mux.HandleFunc("/api/v1/routes", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			list := fib.List()
			doc := routesDoc{Generation: fib.Generation(), Count: len(list)}
			doc.Routes = make([]routeJSON, len(list))
			for i, rt := range list {
				doc.Routes[i] = routeJSON{Prefix: rt.Prefix.String(), NextHop: rt.NextHop}
			}
			writeJSON(w, http.StatusOK, doc)

		case http.MethodPost:
			var upd routesUpdate
			if err := json.NewDecoder(r.Body).Decode(&upd); err != nil {
				writeError(w, http.StatusBadRequest, "bad request body: %v", err)
				return
			}
			if len(upd.Add) == 0 && len(upd.Withdraw) == 0 {
				writeError(w, http.StatusBadRequest, "empty update: supply add and/or withdraw")
				return
			}
			adds := make([]routebricks.Route, 0, len(upd.Add))
			for _, rj := range upd.Add {
				p, err := netip.ParsePrefix(rj.Prefix)
				if err != nil {
					writeError(w, http.StatusBadRequest, "bad prefix %q: %v", rj.Prefix, err)
					return
				}
				adds = append(adds, routebricks.Route{Prefix: p, NextHop: rj.NextHop})
			}
			dels := make([]netip.Prefix, 0, len(upd.Withdraw))
			for _, s := range upd.Withdraw {
				p, err := netip.ParsePrefix(s)
				if err != nil {
					writeError(w, http.StatusBadRequest, "bad prefix %q: %v", s, err)
					return
				}
				dels = append(dels, p)
			}
			gen, err := fib.Update(adds, dels)
			if err != nil {
				writeError(w, http.StatusUnprocessableEntity, "update rejected: %v", err)
				return
			}
			writeJSON(w, http.StatusOK, routesDoc{Generation: gen, Count: fib.Len()})

		case http.MethodDelete:
			spec := r.URL.Query().Get("prefix")
			if spec == "" {
				var rj routeJSON
				if err := json.NewDecoder(r.Body).Decode(&rj); err == nil {
					spec = rj.Prefix
				}
			}
			if spec == "" {
				writeError(w, http.StatusBadRequest, "missing prefix (?prefix= or JSON body)")
				return
			}
			p, err := netip.ParsePrefix(spec)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad prefix %q: %v", spec, err)
				return
			}
			gen, err := fib.Update(nil, []netip.Prefix{p})
			if err != nil {
				writeError(w, http.StatusUnprocessableEntity, "withdraw rejected: %v", err)
				return
			}
			writeJSON(w, http.StatusOK, routesDoc{Generation: gen, Count: fib.Len()})

		default:
			w.Header().Set("Allow", "GET, POST, DELETE")
			writeError(w, http.StatusMethodNotAllowed, "%s not allowed; use GET, POST or DELETE", r.Method)
		}
	})

	// The flow-steering surface: GET lists every node's RSS indirection
	// table (bucket→chain assignments, per-bucket packet counts, and the
	// rewrite counters), which is how an operator sees skew before
	// deciding to move buckets. POST applies a manual bucket migration to
	// one node — the same drain-barrier ReSteer the controller uses, so a
	// hand-steered rewrite also loses nothing and preserves per-flow
	// order. A stale From (the bucket moved since the GET) rejects the
	// whole batch rather than half-applying it.
	mux.HandleFunc("/api/v1/rss", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			out := make([]rssDoc, len(nodes))
			for i, nd := range nodes {
				out[i] = rssDoc{ID: nd.id, RSS: nd.ingress.Snapshot().RSS}
			}
			writeJSON(w, http.StatusOK, out)

		case http.MethodPost:
			var upd rssUpdate
			if err := json.NewDecoder(r.Body).Decode(&upd); err != nil {
				writeError(w, http.StatusBadRequest, "bad request body: %v", err)
				return
			}
			if upd.Node < 0 || upd.Node >= len(nodes) {
				writeError(w, http.StatusBadRequest, "node must be in [0,%d), got %d", len(nodes), upd.Node)
				return
			}
			if len(upd.Moves) == 0 {
				writeError(w, http.StatusBadRequest, "empty update: supply moves")
				return
			}
			nd := nodes[upd.Node]
			if err := nd.ingress.ReSteer(upd.Moves); err != nil {
				writeError(w, http.StatusUnprocessableEntity, "re-steer rejected: %v", err)
				return
			}
			writeJSON(w, http.StatusOK, rssDoc{ID: nd.id, RSS: nd.ingress.Snapshot().RSS})

		default:
			w.Header().Set("Allow", "GET, POST")
			writeError(w, http.StatusMethodNotAllowed, "%s not allowed; use GET or POST", r.Method)
		}
	})

	mux.HandleFunc("/api/v1/replan", methodCheck(http.MethodPost, func(w http.ResponseWriter, _ *http.Request) {
		if replanAll == nil {
			writeError(w, http.StatusServiceUnavailable, "replan unavailable")
			return
		}
		if err := replanAll(); err != nil {
			writeError(w, http.StatusInternalServerError, "replan failed: %v", err)
			return
		}
		placements := make([]string, len(nodes))
		for i, nd := range nodes {
			placements[i] = nd.ingress.Placement().String()
		}
		writeJSON(w, http.StatusOK, map[string]any{"replanned": len(nodes), "placements": placements})
	}))

	return mux
}
