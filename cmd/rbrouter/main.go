// Command rbrouter runs a real-I/O RouteBricks cluster on this machine:
// N router nodes in one process, meshed over actual UDP sockets, moving
// real IPv4-in-UDP frames through the same element pipelines, DIR-24-8
// lookup, and Direct-VLB/flowlet logic as the simulation — but on
// wall-clock time and OS sockets (stdlib net only).
//
// It demonstrates the programmability claim of the paper: each node's
// ingress datapath is a Click-language program loaded through
// routebricks.Load — the default is the embedded config below, and
// -config swaps in any .click file written against the standard element
// registry plus the prebound names the command supplies:
//
//	fib        LPMLookup bound to the cluster's live FIB (node d owns 10.d.0.0/16)
//	vlb        terminal Direct-VLB forwarder (MAC rewrite + mesh emit)
//	badhdr     counting drop for CheckIPHeader failures
//	badttl     counting drop for expired TTLs
//	missroute  counting drop for FIB misses
//
// The cluster FIB is a routebricks.RouteAdmin (RCU generation-swapped
// live table, bound through Options.FIB): routes can be added and
// withdrawn while every node forwards at full rate, and the admin API
// exposes exactly that — route changes commit once and reach all nodes'
// datapath cores without a reload.
//
// The framework parallelizes whatever graph the config describes:
// -cores picks the core count and -placement the §4.2 allocation
// (parallel = every core runs an independent copy of the whole graph on
// its own queue; pipelined = the graph's trunk is cut across cores,
// joined by SPSC handoff rings), driven on real goroutines.
//
// The process is live-operable while it runs: SIGHUP re-reads -config
// and hot-swaps every node's ingress pipeline under the library's drain
// barrier (prebound FIB/VLB resources carry over), -replan-auto starts
// a per-node controller that watches observed load and re-decides the
// placement automatically when the per-core imbalance crosses its
// hysteresis threshold, and -stats-addr serves the versioned admin API
// (stats, controller state, live FIB route ops, replan) as JSON over
// HTTP.
//
// Usage:
//
//	rbrouter                      # 4-node demo, 20000 packets
//	rbrouter -nodes 6 -packets 50000 -flowlets=false
//	rbrouter -cores 4 -placement pipelined
//	rbrouter -cores 4 -placement auto   # calibrate and pick the allocation
//	rbrouter -cores 4 -placement auto -replan-auto   # keep re-deciding under load
//	rbrouter -config my.click     # custom per-node ingress program
//	rbrouter -stats-addr 127.0.0.1:8642   # versioned admin API (see below)
//	curl http://127.0.0.1:8642/api/v1/stats        # cluster snapshot
//	curl http://127.0.0.1:8642/api/v1/controller   # replan-controller state
//	curl http://127.0.0.1:8642/api/v1/routes       # live FIB listing + generation
//	curl -X POST -d '{"add":[{"prefix":"192.0.2.0/24","next_hop":1}]}' \
//	     http://127.0.0.1:8642/api/v1/routes       # commit a route batch live
//	curl -X DELETE 'http://127.0.0.1:8642/api/v1/routes?prefix=192.0.2.0/24'
//	curl -X POST http://127.0.0.1:8642/api/v1/replan   # re-decide placement now
//	curl http://127.0.0.1:8642/api/v1/rss          # per-node flow-steering tables
//	curl -X POST -d '{"node":0,"moves":[{"bucket":5,"from":0,"to":1}]}' \
//	     http://127.0.0.1:8642/api/v1/rss          # migrate steering buckets by hand
//	kill -HUP <pid>               # reload -config into the running datapath
//	rbrouter -print-graph         # dump the ingress graph as Graphviz dot and exit
//	rbrouter -print-graph | dot -Tsvg > graph.svg
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"routebricks"
	"routebricks/internal/click"
	"routebricks/internal/cluster"
	"routebricks/internal/elements"
	"routebricks/internal/exec"
	"routebricks/internal/netio"
	"routebricks/internal/pcap"
	"routebricks/internal/pkt"
	"routebricks/internal/sim"
	"routebricks/internal/stats"
	"routebricks/internal/trafficgen"
	"routebricks/internal/vlb"
)

// defaultConfig is the embedded per-node ingress program — the same
// CheckIPHeader → LPMLookup → DecIPTTL → VLB path the paper's router
// runs, with each error port routed to its own counting drop.
const defaultConfig = `
	// RouteBricks node ingress path. fib, vlb and the drops are prebound.
	check :: CheckIPHeader;
	rt    :: LPMLookup(fib);
	ttl   :: DecIPTTL;

	check[0] -> rt;
	check[1] -> badhdr;
	rt[0]    -> ttl;
	rt[1]    -> missroute;
	ttl[0]   -> vlb;
	ttl[1]   -> badttl;
`

func nowVirtual() sim.Time { return sim.Time(time.Now().UnixNano()) }

// poolShardSeq deals pool shards out to the I/O goroutines (readers and
// writers) round-robin, so no two long-lived goroutines share a shard
// lock by accident. Datapath cores get their shards from the plan.
var poolShardSeq atomic.Uint32

// wireConfig selects how a node binds and drives its kernel wire I/O
// (see internal/netio): how many SO_REUSEPORT receive queues share the
// ingress port, and whether the mmsg fast path is forced off.
type wireConfig struct {
	rxQueues int  // ingress receive queues (1 = a single plain socket)
	fallback bool // force the portable per-packet syscall path
}

func (w wireConfig) netio(shard *pkt.PoolShard) netio.Config {
	return netio.Config{Shard: shard, ForceFallback: w.fallback}
}

// node is one cluster server backed by two UDP sockets: ext receives
// line traffic and emits egress frames to the collector; int carries
// mesh links to peers. Its datapath is a loaded Click pipeline for
// ingress (the -config program) and a placement plan for transit
// (MAC-only forwarding); the socket readers feed their input rings.
type node struct {
	id    int
	n     int
	ext   *net.UDPConn   // primary ingress socket (extQs[0]); also the egress socket to the collector
	extQs []*net.UDPConn // all ingress receive queues (SO_REUSEPORT siblings of ext)
	int_  *net.UDPConn
	wire  wireConfig
	peers []*net.UDPAddr // internal socket address of each node
	sink  *net.UDPAddr   // collector

	// readers are the node's netio batch readers (one per ingress queue
	// plus one for transit), kept for the wire counters the admin API
	// sums. Built in start before any concurrent access.
	readers []*netio.BatchReader

	ingress *routebricks.Pipeline
	transit *click.Plan
	ctrl    *routebricks.Controller // adaptive replan watcher (-replan-auto)

	// live is the current membership vector in mesh mode (nil in the
	// single-process demo, where every peer is always up). It is read by
	// prebound when a Reload re-creates the VLB balancers, so a reload
	// under the drain barrier re-stripes the spread matrix against the
	// members that are actually alive.
	liveMu sync.Mutex
	live   []bool

	// Batch-aware UDP egress: datapath cores enqueue frames into
	// per-destination rings; one writer goroutine per destination pays
	// the WriteToUDP syscalls off the datapath core.
	txq    []*txQueue // per peer (nil at self)
	sinkq  *txQueue   // to the collector
	txStop atomic.Bool
	wwg    sync.WaitGroup

	stop atomic.Bool
	wg   sync.WaitGroup

	forwarded atomic.Uint64
	egressed  atomic.Uint64
	routeMiss atomic.Uint64
	hdrDrops  atomic.Uint64
	rxDrops   atomic.Uint64
	txBatches atomic.Uint64 // batches flushed by egress writers
	txStalls  atomic.Uint64 // egress backpressure stalls (ring full, datapath waited)
	txDrained atomic.Uint64 // frames flushed from tx rings on shutdown/re-stripe (accounted, not lost)
	restripes atomic.Uint64 // VLB re-stripe generation (mesh mode)
}

// txQueue carries egress frames from datapath cores to one writer
// goroutine — the batch-aware UDP egress path. exec.Ring is SPSC, but
// several cores (every ingress chain plus transit) emit toward the same
// peer, so pushes serialize on mu: the mutex makes "single producer"
// true one push at a time while the writer goroutine stays the sole
// consumer, lock-free.
type txQueue struct {
	mu   sync.Mutex
	ring *exec.Ring
	conn *net.UDPConn
	addr *net.UDPAddr
	// w flushes a popped batch to addr with one sendmmsg where the
	// platform has it (per-packet WriteToUDP otherwise); its counters
	// feed the node's wire snapshot.
	w *netio.BatchWriter
	// dead marks the destination as declared dead by the failure
	// detector: the writer recycles queued frames (counted as drained)
	// instead of blackholing them on the wire. Cleared on rejoin.
	dead atomic.Bool
}

func (q *txQueue) push(p *pkt.Packet) bool {
	q.mu.Lock()
	ok := q.ring.Push(p)
	q.mu.Unlock()
	return ok
}

// runWriter drains one egress queue in batches: each loop pops up to a
// whole batch and flushes it through the queue's netio writer — one
// sendmmsg on the fast path — so the syscall cost of a frame is
// amortized over the batch instead of stalling a forwarding core per
// frame. Exits only after a final drain once txStop is set.
func (nd *node) runWriter(q *txQueue) {
	defer nd.wwg.Done()
	// Each writer goroutine recycles through its own pool shard: Put
	// takes only that shard's lock, never a lock shared with the
	// datapath cores or the other writers.
	shard := pkt.DefaultPool.Shard(int(poolShardSeq.Add(1)))
	batch := pkt.NewBatch(64)
	idle := 0
	for {
		batch.Reset()
		// PopBatchInto appends only live packets, so Packets() is exactly
		// the n frames to flush — no nil re-scan.
		n := q.ring.PopBatchInto(batch, batch.Cap())
		if n == 0 {
			if nd.txStop.Load() && q.ring.Len() == 0 {
				return
			}
			idle++
			if idle > 64 {
				time.Sleep(50 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
			continue
		}
		idle = 0
		if q.dead.Load() {
			// Destination declared dead: recycling beats blackholing —
			// every in-flight frame shows up in tx_drained instead of
			// silently vanishing into a closed socket.
			shard.PutBatch(batch)
			nd.txDrained.Add(uint64(n))
			continue
		}
		// The kernel copies into skbs at syscall time, so the batch can
		// recycle the moment WriteBatch returns.
		q.w.WriteBatch(batch.Packets(), q.addr)
		shard.PutBatch(batch)
		nd.txBatches.Add(1)
		if nd.txStop.Load() {
			// Graceful shutdown: frames flushed after Stop are the drain —
			// they reach the wire, and the count proves nothing was lost
			// in the rings.
			nd.txDrained.Add(uint64(n))
		}
	}
}

// enqueue hands a frame to a destination's writer. When the ring is
// full (the writer is behind a burst) the datapath core waits for
// space rather than writing inline — an inline write would overtake
// same-flow frames still queued, manufacturing exactly the reordering
// this simulator exists to measure. The stall is counted so egress
// backpressure shows up in -stats-addr. Frames are dropped (recycled,
// counted as a stall) only when shutdown has already stopped the
// writers.
func (nd *node) enqueue(q *txQueue, p *pkt.Packet) {
	if q.push(p) {
		return
	}
	nd.txStalls.Add(1)
	for !q.push(p) {
		if nd.txStop.Load() {
			pkt.DefaultPool.Put(p)
			return
		}
		runtime.Gosched()
	}
}

// prebound resolves the instances a node's Click program may name, for
// one chain. The `fib` name binds through Options.FIB (the cluster's
// shared live table — each chain's LPMLookup snapshots it per batch);
// each chain gets its own VLB balancer, which is single-threaded by
// contract, and a chain runs on exactly one core at a time.
func (nd *node) prebound(flowlets bool, chain int) map[string]routebricks.Element {
	return map[string]routebricks.Element{
		"vlb": &udpForward{nd: nd, bal: vlb.New(vlb.Config{
			Nodes: nd.n, Self: nd.id,
			LineRateBps: 1e9, // demo-scale line rate for the quota clock
			LinkCapBps:  1e9,
			Flowlets:    flowlets,
			Seed:        int64(nd.id)*64 + int64(chain) + 1,
			Live:        nd.currentLive(),
		})},
		"badhdr":    countDrop(&nd.hdrDrops),
		"badttl":    countDrop(&nd.hdrDrops),
		"missroute": countDrop(&nd.routeMiss),
	}
}

// currentLive snapshots the membership vector for a balancer being
// built (nil = everyone up, the demo default).
func (nd *node) currentLive() []bool {
	nd.liveMu.Lock()
	defer nd.liveMu.Unlock()
	if nd.live == nil {
		return nil
	}
	return append([]bool(nil), nd.live...)
}

// setLive installs a new membership vector and flips the per-peer
// writer queues across the dead boundary: a dead peer's queue drains
// (frames recycled and counted) until the peer rejoins. The balancers
// pick the vector up at the next Reload — re-striping is a reload under
// the drain barrier, not a live mutation of a running balancer.
func (nd *node) setLive(live []bool) {
	nd.liveMu.Lock()
	nd.live = append([]bool(nil), live...)
	nd.liveMu.Unlock()
	for j, q := range nd.txq {
		if q == nil || j >= len(live) {
			continue
		}
		q.dead.Store(!live[j])
	}
}

// countDrop builds a terminal that counts into the given node counter
// and recycles the buffer — the element is the packet's last owner.
func countDrop(n *atomic.Uint64) *elements.Sink {
	return &elements.Sink{
		Fn:      func(_ *click.Context, _ *pkt.Packet) { n.Add(1) },
		Recycle: pkt.DefaultPool,
	}
}

// probePlacement decides the core allocation for cfgText by Auto
// calibration against hermetic stand-in terminals: calibration drives
// synthetic packets through the candidate plans, so the probe graph
// must not touch sockets or pollute node counters. Used at startup for
// -placement auto and again by every -replan-auto controller trip.
func probePlacement(cfgText string, fib *routebricks.RouteAdmin, cores int) (*routebricks.Pipeline, error) {
	return routebricks.Load(cfgText, routebricks.Options{
		Cores:     cores,
		Placement: routebricks.Auto,
		FIB:       fib,
		Prebound: func(int) map[string]routebricks.Element {
			sink := func() routebricks.Element { return &elements.Sink{Recycle: pkt.DefaultPool} }
			return map[string]routebricks.Element{
				"vlb":       sink(),
				"badhdr":    sink(),
				"badttl":    sink(),
				"missroute": sink(),
			}
		},
	})
}

// printPrebound stands in for a node's runtime resources when the
// program is only being rendered (-print-graph): same element types, no
// sockets or tables behind them.
func printPrebound(chain int) map[string]routebricks.Element {
	return map[string]routebricks.Element{
		"fib":       &elements.LPMLookup{},
		"vlb":       &udpForward{},
		"badhdr":    &elements.Sink{},
		"badttl":    &elements.Sink{},
		"missroute": &elements.Sink{},
	}
}

// printStateClasses renders the -print-graph sidecar: every element's
// declared state class and the graph's steering-safety verdict. It goes
// to stderr so stdout stays pure Graphviz — `rbrouter -print-graph |
// dot -Tsvg` keeps working with the annotation visible on the terminal.
func printStateClasses(w io.Writer, pipe *routebricks.Pipeline) {
	r := pipe.Router(0)
	if r == nil {
		return
	}
	fmt.Fprintf(w, "state classes:\n")
	var perFlow, shared []string
	for _, name := range r.Elements() {
		el := r.Get(name)
		sc := click.StateClassOf(el)
		switch sc {
		case click.PerFlow:
			perFlow = append(perFlow, name)
		case click.Shared:
			shared = append(shared, name)
		}
		t := fmt.Sprintf("%T", el)
		fmt.Fprintf(w, "  %-12s %-16s %s\n", name, t[strings.LastIndexByte(t, '.')+1:], sc)
	}
	switch {
	case len(shared) > 0:
		fmt.Fprintf(w, "steering: shared-state elements %v pin this graph to one chain — it will not be cloned across cores\n", shared)
	case len(perFlow) > 0:
		fmt.Fprintf(w, "steering: per-flow elements %v require flow-consistent dispatch — safe under PushFlow (RSS table), rejected under -steal\n", perFlow)
	default:
		fmt.Fprintf(w, "steering: all elements stateless — any dispatch is safe\n")
	}
}

func newNode(id, n int, fib *routebricks.RouteAdmin, cfgText string, flowlets bool, cores int, kind click.PlanKind, steal bool, wire wireConfig) (*node, error) {
	exts, err := netio.ListenReusePort("udp4", "127.0.0.1:0", wire.rxQueues)
	if err != nil {
		return nil, err
	}
	intc, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	return newNodeOnConns(id, n, exts, intc, fib, cfgText, flowlets, cores, kind, steal, wire)
}

// newNodeOnConns builds a node's datapath on caller-bound sockets — the
// single-process demo binds ephemeral loopback ports, mesh mode binds
// the addresses the topology file assigns this member. exts is the
// ingress socket set: one plain socket, or SO_REUSEPORT siblings on one
// port acting as kernel-hashed receive queues (netio.ListenReusePort).
func newNodeOnConns(id, n int, exts []*net.UDPConn, intc *net.UDPConn, fib *routebricks.RouteAdmin, cfgText string, flowlets bool, cores int, kind click.PlanKind, steal bool, wire wireConfig) (*node, error) {
	// Deep kernel receive buffers: injection is bursty and a pipelined
	// datapath on an oversubscribed host drains slowly, so the default
	// rmem can overflow invisibly before the reader ever runs.
	for _, c := range exts {
		c.SetReadBuffer(4 << 20)
	}
	intc.SetReadBuffer(4 << 20)
	nd := &node{
		id: id, n: n, ext: exts[0], extQs: exts, int_: intc, wire: wire,
		peers: make([]*net.UDPAddr, n),
	}
	var err error

	// The ingress datapath: the Click program, loaded and placed. The
	// graph is instantiated once per chain — a parallel plan clones the
	// whole graph per core, a pipelined plan cuts its trunk across cores
	// wherever the topology allows.
	nd.ingress, err = routebricks.Load(cfgText, routebricks.Options{
		Cores:     cores,
		Placement: kind,
		KP:        32,
		InputCap:  4096,
		Steal:     steal,
		FIB:       fib,
		Prebound: func(chain int) map[string]routebricks.Element {
			return nd.prebound(flowlets, chain)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("load ingress program: %w", err)
	}

	// Transit traffic moves by MAC only — a single stage, so parallel is
	// the only sensible allocation regardless of -placement. It rides the
	// legacy StageSpec shim, which the planner converts to a Program
	// internally.
	nd.transit, err = click.NewPlan(click.PlanConfig{
		Kind:  click.Parallel,
		Cores: cores,
		Stages: []click.StageSpec{
			{Name: "transit", Make: func(int) click.StageInstance {
				return click.StageInstance{Entry: &udpTransit{nd: nd}}
			}},
		},
		KP: 32, InputCap: 4096,
	})
	if err != nil {
		return nil, err
	}
	return nd, nil
}

// udpForward is the terminal ingress element: it rewrites the steering
// MACs, consults its chain's VLB balancer, and emits the frame on the
// node's sockets.
type udpForward struct {
	click.Base
	nd  *node
	bal *vlb.Balancer
}

// InPorts reports 1.
func (f *udpForward) InPorts() int { return 1 }

// OutPorts reports 0: the socket is the output.
func (f *udpForward) OutPorts() int { return 0 }

// Push routes the packet into the cluster.
func (f *udpForward) Push(_ *click.Context, _ int, p *pkt.Packet) {
	nd := f.nd
	out := p.NextHop // resolved by LPMLookup
	p.Ether().SetSrc(pkt.NodeMAC(nd.id))
	p.Ether().SetDst(pkt.NodeMAC(out))
	if out == nd.id {
		nd.egress(p)
		return
	}
	d := f.bal.Route(nowVirtual(), p, out)
	nd.send(d.Next, p)
}

// udpTransit is the terminal transit element: mesh packets move by MAC
// only, to the external wire or the next node.
type udpTransit struct {
	click.Base
	nd *node
}

// InPorts reports 1.
func (t *udpTransit) InPorts() int { return 1 }

// OutPorts reports 0.
func (t *udpTransit) OutPorts() int { return 0 }

// Push forwards without header processing.
func (t *udpTransit) Push(_ *click.Context, _ int, p *pkt.Packet) {
	out := p.Ether().Dst().Node()
	if out == t.nd.id {
		t.nd.egress(p)
		return
	}
	t.nd.send(out, p)
}

// runReader pulls batches of UDP datagrams off one socket and hands
// them to push — the RSS role. Datagrams land directly in pool-backed
// packet buffers (netio points the kernel's iovecs at them), so there
// is no staging buffer and no per-datagram copy on either syscall path.
// The reader blocks with no deadline — shutdown wakes it with an
// immediate-deadline poke rather than closing the socket, because the
// egress writers still own the same descriptors until they finish
// draining. The caller decides the steering policy: ingress pushes
// through the pipeline's flow-consistent indirection table, transit
// hashes modulo its chain count.
func (nd *node) runReader(r *netio.BatchReader, shard *pkt.PoolShard, push func(p *pkt.Packet) bool) {
	defer nd.wg.Done()
	defer r.Release()
	batch := pkt.NewBatch(32)
	for !nd.stop.Load() {
		batch.Reset()
		if _, err := r.ReadBatch(batch); err != nil {
			// Shutdown poke (deadline in the past) or a transient socket
			// error; the stop check decides which.
			if !nd.stop.Load() {
				runtime.Gosched()
			}
			continue
		}
		for _, p := range batch.Packets() {
			if len(p.Data) < pkt.EtherHdrLen+pkt.IPv4HdrLen {
				shard.Put(p) // runt: not even a frame header
				continue
			}
			if !push(p) {
				// Receive ring overflow: the reader is the packet's last owner.
				nd.rxDrops.Add(1)
				shard.Put(p)
			}
		}
	}
}

// newReader builds one ingress receive queue: a netio batch reader on
// its own pool shard (the RSS role's half of the shared-nothing bargain
// — no allocation lock is ever contended between readers, writers, and
// datapath cores), registered for the node's wire counters.
func (nd *node) newReader(conn *net.UDPConn) (*netio.BatchReader, *pkt.PoolShard) {
	shard := pkt.DefaultPool.Shard(int(poolShardSeq.Add(1)))
	r := netio.NewBatchReader(conn, nd.wire.netio(shard))
	nd.readers = append(nd.readers, r)
	return r, shard
}

// send queues the frame for a peer node's egress writer.
func (nd *node) send(to int, p *pkt.Packet) {
	nd.forwarded.Add(1)
	nd.enqueue(nd.txq[to], p)
}

// egress queues the frame for the external wire (to the collector).
func (nd *node) egress(p *pkt.Packet) {
	nd.egressed.Add(1)
	nd.enqueue(nd.sinkq, p)
}

func (nd *node) start() error {
	// Egress writers first, so the datapath never hits a cold queue.
	// Each queue gets its own netio batch writer (writers are
	// single-goroutine by contract, like the queues themselves).
	nd.sinkq = &txQueue{ring: exec.NewRing(4096), conn: nd.ext, addr: nd.sink,
		w: netio.NewBatchWriter(nd.ext, nd.wire.netio(nil))}
	if nd.sink == nil {
		// No collector configured (a mesh with no sink): egress frames
		// are recycled and accounted rather than written to a nil addr.
		nd.sinkq.dead.Store(true)
	}
	nd.wwg.Add(1)
	go nd.runWriter(nd.sinkq)
	nd.txq = make([]*txQueue, nd.n)
	for j := range nd.txq {
		if j == nd.id {
			continue
		}
		nd.txq[j] = &txQueue{ring: exec.NewRing(4096), conn: nd.int_, addr: nd.peers[j],
			w: netio.NewBatchWriter(nd.int_, nd.wire.netio(nil))}
		nd.wwg.Add(1)
		go nd.runWriter(nd.txq[j])
	}
	if err := nd.ingress.Start(); err != nil {
		return err
	}
	if err := nd.transit.Start(); err != nil {
		return err
	}
	// Ingress steers through the pipeline's RSS indirection table: both
	// directions of a 5-tuple and every fragment of a datagram land on
	// the same chain, so cloned per-flow elements (Reassembler,
	// FlowCounter) in a -config program stay correct — and the
	// controller can rebalance by rewriting buckets instead of
	// replanning. With one receive queue the reader is the table's sole
	// producer (PushFlow); SO_REUSEPORT queues are parallel producers,
	// so they serialize the ring push through PushFlowShared — the
	// kernel-side work (syscall, copy into the pool buffer) still
	// parallelizes across queues. Transit is MAC-only forwarding with no
	// per-flow state, so a plain modulo over its (fixed) chain count is
	// enough.
	ingressPush := nd.ingress.PushFlow
	if len(nd.extQs) > 1 {
		ingressPush = nd.ingress.PushFlowShared
	}
	for _, c := range nd.extQs {
		r, shard := nd.newReader(c)
		nd.wg.Add(1)
		go nd.runReader(r, shard, ingressPush)
	}
	transitChains := uint64(nd.transit.Chains())
	tr, tshard := nd.newReader(nd.int_)
	nd.wg.Add(1)
	go nd.runReader(tr, tshard, func(p *pkt.Packet) bool {
		return nd.transit.Input(int(p.FlowHash() % transitChains)).Push(p)
	})
	return nil
}

func (nd *node) shutdown() {
	if nd.ctrl != nil {
		nd.ctrl.Stop()
	}
	nd.stop.Store(true)
	// Wake blocked readers with an immediate deadline instead of Close:
	// the egress writers still send on these descriptors until their
	// final drain below.
	now := time.Now()
	for _, c := range nd.extQs {
		c.SetReadDeadline(now)
	}
	nd.int_.SetReadDeadline(now)
	nd.wg.Wait() // readers gone: nothing feeds the datapath
	nd.ingress.Stop()
	nd.transit.Stop() // cores halted: nothing feeds the egress queues
	nd.txStop.Store(true)
	nd.wwg.Wait() // writers flush what was queued, then exit
	for _, c := range nd.extQs {
		c.Close()
	}
	nd.int_.Close()
}

// reload hot-swaps the node's ingress program. Options inherit from the
// running pipeline (merge semantics), so the prebound FIB, VLB
// balancers, and drop counters rebind to the new graph's chains through
// the same closure — only Placement must be restated.
func (nd *node) reload(cfgText string, kind click.PlanKind) error {
	return nd.ingress.Reload(cfgText, routebricks.Options{Placement: kind})
}

func run() error {
	var (
		nNodes     = flag.Int("nodes", 4, "cluster size")
		packets    = flag.Int("packets", 20000, "packets to inject")
		rate       = flag.Int("rate", 40000, "injection rate (packets/sec)")
		flowlets   = flag.Bool("flowlets", true, "enable flowlet reordering avoidance")
		cores      = flag.Int("cores", 1, "datapath cores per node")
		placement  = flag.String("placement", "parallel", "core allocation: parallel, pipelined, or auto (calibrate and pick)")
		configPath = flag.String("config", "", "Click-language ingress program (default: embedded IP router config)")
		replanAuto = flag.Bool("replan-auto", false, "watch per-node load and Replan(auto) when the observed imbalance crosses the controller's threshold")
		printGraph = flag.Bool("print-graph", false, "print the ingress element graph as Graphviz dot and exit")
		pcapPath   = flag.String("pcap", "", "capture egress traffic to this pcap file")
		statsAddr  = flag.String("stats-addr", "", "serve the versioned admin API (stats, controller, live FIB routes, replan) on this HTTP address under /api/v1")
		steal      = flag.Bool("steal", false, "let idle datapath cores steal batches from overloaded siblings' input rings (trades flow affinity for utilization)")
		meshTopo   = flag.String("mesh", "", "run as ONE member of a multi-process mesh defined by this topology file (see cmd/rbmesh); requires -mesh-id")
		meshID     = flag.Int("mesh-id", -1, "this process's member id in the -mesh topology")
		rxQueues   = flag.Int("rx-queues", 1, "SO_REUSEPORT receive queues per node's ingress port (kernel-hashed multi-queue receive; Linux only for >1)")
		wireFall   = flag.Bool("wire-fallback", false, "force the portable per-packet syscall path instead of recvmmsg/sendmmsg batching")
	)
	flag.Parse()
	cfgText := defaultConfig
	if *configPath != "" {
		raw, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		cfgText = string(raw)
	}
	if *printGraph {
		pipe, err := routebricks.Load(cfgText, routebricks.Options{Prebound: printPrebound})
		if err != nil {
			return err
		}
		fmt.Print(pipe.DOT())
		printStateClasses(os.Stderr, pipe)
		return nil
	}
	if *cores < 1 || *cores > 64 {
		return fmt.Errorf("cores must be in [1,64]")
	}
	kind, autoPlace, err := parsePlacement(*placement)
	if err != nil {
		return err
	}
	if *rxQueues < 1 || *rxQueues > 16 {
		return fmt.Errorf("rx-queues must be in [1,16]")
	}
	wire := wireConfig{rxQueues: *rxQueues, fallback: *wireFall}
	if *meshTopo != "" {
		return runMesh(*meshTopo, *meshID, cfgText, *flowlets, *cores, kind, autoPlace, *steal, wire)
	}
	if *nNodes < 2 || *nNodes > 64 {
		return fmt.Errorf("nodes must be in [2,64]")
	}
	var capture *pcap.Writer
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if capture, err = pcap.NewWriter(f); err != nil {
			return err
		}
	}

	// Shared live FIB: node d owns 10.d.0.0/16, seeded as one commit.
	// Every node's LPMLookup snapshots this table per batch, so route
	// changes posted to /api/v1/routes reach all datapath cores without
	// touching the running plans.
	fib, err := routebricks.NewFIB(cluster.SeedRoutes(*nNodes)...)
	if err != nil {
		return err
	}

	// Resolve -placement auto once, against hermetic stand-in terminals
	// (calibration drives synthetic traffic through the graph, so the
	// probe must not touch sockets or pollute node counters); every node
	// then gets the measured decision.
	if autoPlace {
		probe, err := probePlacement(cfgText, fib, *cores)
		if err != nil {
			return fmt.Errorf("auto placement calibration: %w", err)
		}
		kind = probe.Placement()
		fmt.Printf("placement %s\n", describeDecision(probe))
	}

	collector, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return err
	}
	defer collector.Close()
	collector.SetReadBuffer(4 << 20)

	nodes := make([]*node, *nNodes)
	for i := range nodes {
		if nodes[i], err = newNode(i, *nNodes, fib, cfgText, *flowlets, *cores, kind, *steal, wire); err != nil {
			return err
		}
	}
	for _, nd := range nodes {
		nd.sink = collector.LocalAddr().(*net.UDPAddr)
		for j, peer := range nodes {
			nd.peers[j] = peer.int_.LocalAddr().(*net.UDPAddr)
		}
	}
	for _, nd := range nodes {
		if err := nd.start(); err != nil {
			return err
		}
	}
	// -replan-auto: one controller per node watches the ingress
	// pipeline's Snapshot deltas and re-decides the placement when the
	// observed per-core imbalance (or ring backpressure growth) crosses
	// the hysteresis thresholds. State is served in -stats-addr JSON.
	// The controller's default action would calibrate through the
	// node's live terminals and emit synthetic frames into the mesh, so
	// the hook decides against the hermetic probe first and replans
	// with the explicit winner.
	var cfgMu sync.Mutex
	cfgCurrent := cfgText // kept in step with successful SIGHUP reloads
	if *replanAuto {
		for _, nd := range nodes {
			nd := nd
			nd.ctrl = nd.ingress.NewController(routebricks.ControllerConfig{
				Replan: func() error {
					cfgMu.Lock()
					text := cfgCurrent
					cfgMu.Unlock()
					probe, err := probePlacement(text, fib, *cores)
					if err != nil {
						return err
					}
					return nd.ingress.Replan(routebricks.Options{Placement: probe.Placement()})
				},
			})
			nd.ctrl.Start()
		}
		fmt.Println("replan-auto: per-node controllers watching ingress load")
	}
	fmt.Printf("rbrouter: %d nodes meshed over UDP, injecting %d packets at %d pps (flowlets=%v)\n",
		*nNodes, *packets, *rate, *flowlets)
	wireMode := "fallback"
	if netio.Available() && !wire.fallback {
		wireMode = "mmsg"
	}
	fmt.Printf("wire I/O: %s, %d ingress queue(s) per node\n", wireMode, *rxQueues)
	fmt.Printf("per-node ingress placement: %s", nodes[0].ingress.Describe())

	// SIGHUP → hot-reload: re-read -config and swap every node's ingress
	// pipeline under the library's drain barrier. Prebound resources
	// (FIB, VLB balancers, drop counters) carry over via option
	// inheritance; a bad config is reported and the old datapath keeps
	// forwarding.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			text := defaultConfig
			src := "embedded config"
			if *configPath != "" {
				raw, err := os.ReadFile(*configPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "rbrouter: reload:", err)
					continue
				}
				text, src = string(raw), *configPath
			}
			ok := true
			for _, nd := range nodes {
				if err := nd.reload(text, kind); err != nil {
					fmt.Fprintf(os.Stderr, "rbrouter: reload node %d: %v\n", nd.id, err)
					ok = false
					break
				}
			}
			if ok {
				cfgMu.Lock()
				cfgCurrent = text
				cfgMu.Unlock()
				fmt.Printf("rbrouter: reloaded %s (generation %d)\n", src, nodes[0].ingress.Generation())
			}
		}
	}()

	// -stats-addr: the versioned admin API — the cluster's unified
	// observability surface (every node's typed ingress Snapshot plus its
	// socket-level counters, and per-node controller state) alongside the
	// write side: live FIB route ops and an on-demand cluster replan.
	if *statsAddr != "" {
		ln, err := net.Listen("tcp", *statsAddr)
		if err != nil {
			return fmt.Errorf("stats-addr: %w", err)
		}
		// POST /api/v1/replan re-decides every node's placement against
		// the hermetic probe — the same guarded path -replan-auto uses.
		replanAll := func() error {
			cfgMu.Lock()
			text := cfgCurrent
			cfgMu.Unlock()
			probe, err := probePlacement(text, fib, *cores)
			if err != nil {
				return err
			}
			want := probe.Placement()
			for _, nd := range nodes {
				if err := nd.ingress.Replan(routebricks.Options{Placement: want}); err != nil {
					return fmt.Errorf("node %d: %w", nd.id, err)
				}
			}
			return nil
		}
		srv := &http.Server{Handler: newAdminMux(nodes, fib, replanAll, nil)}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("admin API: http://%s/api/v1/{stats,controller,routes,replan,rss} (/stats is a deprecated alias)\n", ln.Addr())
	}

	// Collector: count deliveries and measure reordering. Frames arrive
	// in batches straight into pool buffers; the 2s quiescence deadline
	// is re-armed once per batch, not once per datagram.
	meter := stats.NewReorderMeter()
	var received atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		shard := pkt.DefaultPool.Shard(int(poolShardSeq.Add(1)))
		rd := netio.NewBatchReader(collector, wire.netio(shard))
		defer rd.Release()
		batch := pkt.NewBatch(32)
		for received.Load() < uint64(*packets) {
			collector.SetReadDeadline(time.Now().Add(2 * time.Second))
			batch.Reset()
			if _, err := rd.ReadBatch(batch); err != nil {
				return // quiescent: give up
			}
			for _, p := range batch.Packets() {
				if capture != nil {
					capture.WritePacket(time.Now().UnixNano(), p.Data)
				}
				payload := p.L4Payload()
				if len(payload) >= 8 {
					seq := uint64(payload[0])<<56 | uint64(payload[1])<<48 | uint64(payload[2])<<40 |
						uint64(payload[3])<<32 | uint64(payload[4])<<24 | uint64(payload[5])<<16 |
						uint64(payload[6])<<8 | uint64(payload[7])
					meter.Observe(p.FlowHash(), seq)
				}
				received.Add(1)
				shard.Put(p)
			}
		}
	}()

	// Injector: flows aimed at node prefixes, round-robin over input
	// nodes, paced at the requested rate.
	src := trafficgen.New(trafficgen.Config{Seed: 1, Sizes: trafficgen.Fixed(128), DstAddrs: cluster.DestPool(*nNodes, 8)})
	interval := time.Second / time.Duration(*rate)
	// SIGTERM/SIGINT stops injection early but still drains: the writers
	// flush every queued frame (counted in tx_drained) before the report.
	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(term)
	start := time.Now()
	injected, stopping := 0, false
	// Injection goes out in 8-frame bursts through one netio writer —
	// one sendmmsg per burst on the fast path, matching the pacing
	// granularity below. WriteScatter carries a destination per frame,
	// so a burst spanning several input nodes still costs one syscall.
	inj := netio.NewBatchWriter(collector, wire.netio(nil))
	burst := make([]*pkt.Packet, 0, 8)
	dests := make([]*net.UDPAddr, 0, 8)
	flush := func() error {
		if len(burst) == 0 {
			return nil
		}
		_, err := inj.WriteScatter(burst, dests)
		for _, p := range burst {
			pkt.DefaultPool.Put(p) // the kernel copied at syscall time
		}
		burst, dests = burst[:0], dests[:0]
		return err
	}
	for i := 0; i < *packets && !stopping; i++ {
		select {
		case <-term:
			fmt.Println("rbrouter: signal received, draining egress queues")
			stopping = true
			continue
		default:
		}
		p := src.Next()
		payload := p.L4Payload()
		seq := p.SeqNo
		for b := 0; b < 8; b++ {
			payload[b] = byte(seq >> (56 - 8*b))
		}
		// A flow always enters at the same external port (keyed on its
		// source address), as it would in a real deployment; spraying one
		// flow across input nodes would manufacture reordering no router
		// could prevent.
		in := nodes[int(p.IPv4().SrcUint32())%*nNodes]
		burst = append(burst, p)
		dests = append(dests, in.ext.LocalAddr().(*net.UDPAddr))
		injected++
		if i%8 == 7 {
			if err := flush(); err != nil {
				return err
			}
			time.Sleep(8 * interval) // pace in small bursts; Sleep granularity is coarse
		}
	}
	if err := flush(); err != nil {
		return err
	}
	<-done
	elapsed := time.Since(start)

	for _, nd := range nodes {
		nd.shutdown()
	}

	var forwarded, egressed, miss, hdr, rxd, drained uint64
	for _, nd := range nodes {
		forwarded += nd.forwarded.Load()
		egressed += nd.egressed.Load()
		miss += nd.routeMiss.Load()
		hdr += nd.hdrDrops.Load()
		rxd += nd.rxDrops.Load()
		drained += nd.txDrained.Load()
	}
	fmt.Printf("delivered %d/%d packets in %v (%.0f pps through the mesh)\n",
		received.Load(), injected, elapsed.Round(time.Millisecond),
		float64(received.Load())/elapsed.Seconds())
	fmt.Printf("internal forwards: %d, route misses: %d, header drops: %d, rx-ring drops: %d, shutdown-drained: %d\n",
		forwarded, miss, hdr, rxd, drained)
	fmt.Printf("reordering: %s\n", meter)
	if received.Load() < uint64(injected)*95/100 {
		return fmt.Errorf("lost more than 5%% of packets")
	}
	return nil
}

// nodeSnapshot is one node's slice of the -stats-addr JSON document:
// the shared stats.NodeStats wire shape (rbmesh decodes exactly that
// when it aggregates member snapshots) plus process-local extras the
// wire type does not carry — controller state, which cannot live in
// internal/stats without an import cycle through the facade.
type nodeSnapshot struct {
	stats.NodeStats
	Controller *routebricks.ControllerState `json:"controller,omitempty"`
}

// wireSnapshot sums the node's netio reader and writer counters into
// the admin API's wire block. Mode reports "mmsg" if any socket runs
// the fast path ("fallback" only when all do not); the mean syscall
// fill — what batching exists to raise — is RxFrames/RxBatches and
// TxFrames/TxBatches.
func (nd *node) wireSnapshot() *stats.WireSnapshot {
	w := &stats.WireSnapshot{Mode: "fallback"}
	for _, r := range nd.readers {
		s := r.Stats()
		w.RxBatches += s.Batches
		w.RxFrames += s.Frames
		w.RxTruncated += s.Truncated
		if r.Mode() == "mmsg" {
			w.Mode = "mmsg"
		}
	}
	for _, q := range append([]*txQueue{nd.sinkq}, nd.txq...) {
		if q == nil || q.w == nil {
			continue
		}
		s := q.w.Stats()
		w.TxBatches += s.Batches
		w.TxFrames += s.Frames
	}
	return w
}

func (nd *node) snapshot() nodeSnapshot {
	var transitPkts uint64
	for _, s := range nd.transit.Stats() {
		transitPkts += s.Packets()
	}
	var ctrlState *routebricks.ControllerState
	if nd.ctrl != nil {
		st := nd.ctrl.State()
		ctrlState = &st
	}
	ing := nd.ingress.Snapshot()
	ing.Wire = nd.wireSnapshot()
	return nodeSnapshot{
		NodeStats: stats.NodeStats{
			ID:             nd.id,
			Ingress:        ing,
			TransitQueued:  nd.transit.Queued(),
			TransitPackets: transitPkts,
			Forwarded:      nd.forwarded.Load(),
			Egressed:       nd.egressed.Load(),
			RouteMisses:    nd.routeMiss.Load(),
			HeaderDrops:    nd.hdrDrops.Load(),
			RxDrops:        nd.rxDrops.Load(),
			TxBatches:      nd.txBatches.Load(),
			TxStalls:       nd.txStalls.Load(),
			TxDrained:      nd.txDrained.Load(),
			Restripes:      nd.restripes.Load(),
		},
		Controller: ctrlState,
	}
}

func clusterSnapshot(nodes []*node) []nodeSnapshot {
	out := make([]nodeSnapshot, len(nodes))
	for i, nd := range nodes {
		out[i] = nd.snapshot()
	}
	return out
}

// parsePlacement maps the -placement flag to a plan kind; auto is
// resolved later by calibration, once a FIB exists to probe against.
func parsePlacement(s string) (click.PlanKind, bool, error) {
	switch s {
	case "parallel":
		return click.Parallel, false, nil
	case "pipelined":
		return click.Pipelined, false, nil
	case "auto":
		return click.Parallel, true, nil
	}
	return 0, false, fmt.Errorf("placement must be parallel, pipelined, or auto, got %q", s)
}

// describeDecision renders an auto-placement probe's outcome for the
// startup banner.
func describeDecision(p *routebricks.Pipeline) string {
	s := fmt.Sprintf("auto → %s", p.Placement())
	for _, c := range p.Calibration() {
		s += fmt.Sprintf("  [%s score %.0f, %d handoff pkts]", c.Plan, c.Score, c.HandoffPackets)
	}
	return s
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rbrouter:", err)
		os.Exit(1)
	}
}
