// Command rbrouter runs a real-I/O RouteBricks cluster on this machine:
// N router nodes in one process, meshed over actual UDP sockets, moving
// real IPv4-in-UDP frames through the same element pipelines, DIR-24-8
// lookup, and Direct-VLB/flowlet logic as the simulation — but on
// wall-clock time and OS sockets (stdlib net only).
//
// It demonstrates the programmability claim of the paper: the datapath
// is the same handful of Click-style elements, re-hosted from the
// simulator onto kernel UDP I/O without modification. Each node's
// datapath is materialized by the click placement planner: -cores picks
// the core count and -placement the §4.2 allocation (parallel = every
// core runs the whole CheckIPHeader→LPMLookup→DecIPTTL→VLB pipeline on
// its own queue; pipelined = the pipeline is cut into stages joined by
// SPSC handoff rings), driven on real goroutines by the click Runner.
//
// Usage:
//
//	rbrouter                      # 4-node demo, 20000 packets
//	rbrouter -nodes 6 -packets 50000 -flowlets=false
//	rbrouter -cores 4 -placement pipelined
package main

import (
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"routebricks/internal/click"
	"routebricks/internal/elements"
	"routebricks/internal/lpm"
	"routebricks/internal/pcap"
	"routebricks/internal/pkt"
	"routebricks/internal/sim"
	"routebricks/internal/stats"
	"routebricks/internal/trafficgen"
	"routebricks/internal/vlb"
)

func nowVirtual() sim.Time { return sim.Time(time.Now().UnixNano()) }

// node is one cluster server backed by two UDP sockets: ext receives
// line traffic and emits egress frames to the collector; int carries
// mesh links to peers. Its datapath is two placement plans — ingress
// (full routing path) and transit (MAC-only forwarding) — whose input
// rings the socket readers feed.
type node struct {
	id    int
	n     int
	ext   *net.UDPConn
	int_  *net.UDPConn
	peers []*net.UDPAddr // internal socket address of each node
	sink  *net.UDPAddr   // collector

	ingress *click.Plan
	transit *click.Plan

	stop atomic.Bool
	wg   sync.WaitGroup

	forwarded atomic.Uint64
	egressed  atomic.Uint64
	routeMiss atomic.Uint64
	hdrDrops  atomic.Uint64
	rxDrops   atomic.Uint64
}

func newNode(id, n int, table *lpm.Dir248, flowlets bool, cores int, kind click.PlanKind) (*node, error) {
	ext, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	intc, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	nd := &node{
		id: id, n: n, ext: ext, int_: intc,
		peers: make([]*net.UDPAddr, n),
	}

	// Terminal error paths: the element dropping the packet is its last
	// owner, so the buffer goes straight back to the pool.
	dropHdr := func(_ *click.Context, p *pkt.Packet) {
		nd.hdrDrops.Add(1)
		pkt.DefaultPool.Put(p)
	}
	dropMiss := func(_ *click.Context, p *pkt.Packet) {
		nd.routeMiss.Add(1)
		pkt.DefaultPool.Put(p)
	}

	// The ingress pipeline, declared as placement stages. Make runs once
	// per chain: the parallel plan clones the whole pipeline per core,
	// the pipelined plan builds it once per chain and cuts it across
	// cores. Each chain gets its own VLB balancer — the balancer is
	// single-threaded by contract, and a chain's forward stage runs on
	// exactly one core.
	ingressStages := []click.StageSpec{
		{Name: "check", Make: func(int) click.StageInstance {
			check := &elements.CheckIPHeader{}
			check.SetOutput(1, dropHdr)
			return click.StageInstance{Entry: check}
		}},
		{Name: "route", Make: func(int) click.StageInstance {
			look := elements.NewLPMLookup(table)
			look.SetOutput(1, dropMiss)
			return click.StageInstance{Entry: look}
		}},
		{Name: "forward", Make: func(chain int) click.StageInstance {
			fwd := &udpForward{nd: nd, bal: vlb.New(vlb.Config{
				Nodes: n, Self: id,
				LineRateBps: 1e9, // demo-scale line rate for the quota clock
				LinkCapBps:  1e9,
				Flowlets:    flowlets,
				Seed:        int64(id)*64 + int64(chain) + 1,
			})}
			ttl := &elements.DecIPTTL{}
			ttl.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { fwd.Push(ctx, 0, p) })
			ttl.SetBatchOutput(0, click.BatchDispatch(fwd, 0))
			ttl.SetOutput(1, dropHdr)
			return click.StageInstance{Entry: ttl, Exit: fwd}
		}},
	}
	nd.ingress, err = click.NewPlan(click.PlanConfig{
		Kind: kind, Cores: cores, Stages: ingressStages, KP: 32, InputCap: 4096,
	})
	if err != nil {
		return nil, err
	}

	// Transit traffic moves by MAC only — a single stage, so parallel is
	// the only sensible allocation regardless of -placement.
	nd.transit, err = click.NewPlan(click.PlanConfig{
		Kind:  click.Parallel,
		Cores: cores,
		Stages: []click.StageSpec{
			{Name: "transit", Make: func(int) click.StageInstance {
				return click.StageInstance{Entry: &udpTransit{nd: nd}}
			}},
		},
		KP: 32, InputCap: 4096,
	})
	if err != nil {
		return nil, err
	}
	return nd, nil
}

// udpForward is the terminal ingress element: it rewrites the steering
// MACs, consults its chain's VLB balancer, and emits the frame on the
// node's sockets. It replaces the hand-rolled worker loop the planner
// rehosted.
type udpForward struct {
	click.Base
	nd  *node
	bal *vlb.Balancer
}

// InPorts reports 1.
func (f *udpForward) InPorts() int { return 1 }

// OutPorts reports 0: the socket is the output.
func (f *udpForward) OutPorts() int { return 0 }

// Push routes the packet into the cluster.
func (f *udpForward) Push(_ *click.Context, _ int, p *pkt.Packet) {
	nd := f.nd
	out := p.NextHop // resolved by LPMLookup
	p.Ether().SetSrc(pkt.NodeMAC(nd.id))
	p.Ether().SetDst(pkt.NodeMAC(out))
	if out == nd.id {
		nd.egress(p)
		return
	}
	d := f.bal.Route(nowVirtual(), p, out)
	nd.send(d.Next, p)
}

// udpTransit is the terminal transit element: mesh packets move by MAC
// only, to the external wire or the next node.
type udpTransit struct {
	click.Base
	nd *node
}

// InPorts reports 1.
func (t *udpTransit) InPorts() int { return 1 }

// OutPorts reports 0.
func (t *udpTransit) OutPorts() int { return 0 }

// Push forwards without header processing.
func (t *udpTransit) Push(_ *click.Context, _ int, p *pkt.Packet) {
	out := p.Ether().Dst().Node()
	if out == t.nd.id {
		t.nd.egress(p)
		return
	}
	t.nd.send(out, p)
}

// reader pulls UDP datagrams into the plan's per-chain input rings,
// steering by flow hash — the RSS role. One reader per socket keeps
// each input ring single-producer.
func (nd *node) reader(conn *net.UDPConn, plan *click.Plan) {
	defer nd.wg.Done()
	buf := make([]byte, 2048)
	chains := uint64(plan.Chains())
	for !nd.stop.Load() {
		conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		m, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			continue // deadline or shutdown
		}
		if m < pkt.EtherHdrLen+pkt.IPv4HdrLen {
			continue
		}
		p := pkt.DefaultPool.Get(m)
		copy(p.Data, buf[:m])
		if !plan.Input(int(p.FlowHash() % chains)).Push(p) {
			// Receive ring overflow: the reader is the packet's last owner.
			nd.rxDrops.Add(1)
			pkt.DefaultPool.Put(p)
		}
	}
}

// send emits the frame to a peer node; the socket copies the bytes, so
// the buffer recycles immediately.
func (nd *node) send(to int, p *pkt.Packet) {
	nd.forwarded.Add(1)
	nd.int_.WriteToUDP(p.Data, nd.peers[to])
	pkt.DefaultPool.Put(p)
}

// egress emits the frame on the external wire (to the collector).
func (nd *node) egress(p *pkt.Packet) {
	nd.egressed.Add(1)
	nd.ext.WriteToUDP(p.Data, nd.sink)
	pkt.DefaultPool.Put(p)
}

func (nd *node) start() error {
	if err := nd.ingress.Start(); err != nil {
		return err
	}
	if err := nd.transit.Start(); err != nil {
		return err
	}
	nd.wg.Add(2)
	go nd.reader(nd.ext, nd.ingress)
	go nd.reader(nd.int_, nd.transit)
	return nil
}

func (nd *node) shutdown() {
	nd.stop.Store(true)
	nd.wg.Wait()
	nd.ingress.Stop()
	nd.transit.Stop()
	nd.ext.Close()
	nd.int_.Close()
}

func run() error {
	var (
		nNodes    = flag.Int("nodes", 4, "cluster size")
		packets   = flag.Int("packets", 20000, "packets to inject")
		rate      = flag.Int("rate", 40000, "injection rate (packets/sec)")
		flowlets  = flag.Bool("flowlets", true, "enable flowlet reordering avoidance")
		cores     = flag.Int("cores", 1, "datapath cores per node")
		placement = flag.String("placement", "parallel", "core allocation: parallel or pipelined")
		pcapPath  = flag.String("pcap", "", "capture egress traffic to this pcap file")
	)
	flag.Parse()
	if *nNodes < 2 || *nNodes > 64 {
		return fmt.Errorf("nodes must be in [2,64]")
	}
	if *cores < 1 || *cores > 64 {
		return fmt.Errorf("cores must be in [1,64]")
	}
	var kind click.PlanKind
	switch *placement {
	case "parallel":
		kind = click.Parallel
	case "pipelined":
		kind = click.Pipelined
	default:
		return fmt.Errorf("placement must be parallel or pipelined, got %q", *placement)
	}
	var capture *pcap.Writer
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if capture, err = pcap.NewWriter(f); err != nil {
			return err
		}
	}

	// Shared FIB: node d owns 10.d.0.0/16.
	table := lpm.NewDir248()
	for d := 0; d < *nNodes; d++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(d), 0, 0}), 16)
		if err := table.Insert(p, d); err != nil {
			return err
		}
	}
	table.Freeze()

	collector, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return err
	}
	defer collector.Close()

	nodes := make([]*node, *nNodes)
	for i := range nodes {
		if nodes[i], err = newNode(i, *nNodes, table, *flowlets, *cores, kind); err != nil {
			return err
		}
	}
	for _, nd := range nodes {
		nd.sink = collector.LocalAddr().(*net.UDPAddr)
		for j, peer := range nodes {
			nd.peers[j] = peer.int_.LocalAddr().(*net.UDPAddr)
		}
	}
	for _, nd := range nodes {
		if err := nd.start(); err != nil {
			return err
		}
	}
	fmt.Printf("rbrouter: %d nodes meshed over UDP, injecting %d packets at %d pps (flowlets=%v)\n",
		*nNodes, *packets, *rate, *flowlets)
	fmt.Printf("per-node ingress placement: %s", nodes[0].ingress.Describe())

	// Collector: count deliveries and measure reordering.
	meter := stats.NewReorderMeter()
	var received atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 2048)
		for received.Load() < uint64(*packets) {
			collector.SetReadDeadline(time.Now().Add(2 * time.Second))
			m, _, err := collector.ReadFromUDP(buf)
			if err != nil {
				return // quiescent: give up
			}
			p := &pkt.Packet{Data: append([]byte(nil), buf[:m]...)}
			if capture != nil {
				capture.WritePacket(time.Now().UnixNano(), p.Data)
			}
			payload := p.L4Payload()
			if len(payload) >= 8 {
				seq := uint64(payload[0])<<56 | uint64(payload[1])<<48 | uint64(payload[2])<<40 |
					uint64(payload[3])<<32 | uint64(payload[4])<<24 | uint64(payload[5])<<16 |
					uint64(payload[6])<<8 | uint64(payload[7])
				meter.Observe(p.FlowHash(), seq)
			}
			received.Add(1)
		}
	}()

	// Injector: flows aimed at node prefixes, round-robin over input
	// nodes, paced at the requested rate.
	var pool []netip.Addr
	for d := 0; d < *nNodes; d++ {
		for h := 0; h < 8; h++ {
			pool = append(pool, netip.AddrFrom4([4]byte{10, byte(d), byte(h), 1}))
		}
	}
	src := trafficgen.New(trafficgen.Config{Seed: 1, Sizes: trafficgen.Fixed(128), DstAddrs: pool})
	interval := time.Second / time.Duration(*rate)
	start := time.Now()
	for i := 0; i < *packets; i++ {
		p := src.Next()
		payload := p.L4Payload()
		seq := p.SeqNo
		for b := 0; b < 8; b++ {
			payload[b] = byte(seq >> (56 - 8*b))
		}
		// A flow always enters at the same external port (keyed on its
		// source address), as it would in a real deployment; spraying one
		// flow across input nodes would manufacture reordering no router
		// could prevent.
		in := nodes[int(p.IPv4().SrcUint32())%*nNodes]
		if _, err := collector.WriteToUDP(p.Data, in.ext.LocalAddr().(*net.UDPAddr)); err != nil {
			return err
		}
		if i%8 == 7 {
			time.Sleep(8 * interval) // pace in small bursts; Sleep granularity is coarse
		}
	}
	<-done
	elapsed := time.Since(start)

	for _, nd := range nodes {
		nd.shutdown()
	}

	var forwarded, egressed, miss, hdr, rxd uint64
	for _, nd := range nodes {
		forwarded += nd.forwarded.Load()
		egressed += nd.egressed.Load()
		miss += nd.routeMiss.Load()
		hdr += nd.hdrDrops.Load()
		rxd += nd.rxDrops.Load()
	}
	fmt.Printf("delivered %d/%d packets in %v (%.0f pps through the mesh)\n",
		received.Load(), *packets, elapsed.Round(time.Millisecond),
		float64(received.Load())/elapsed.Seconds())
	fmt.Printf("internal forwards: %d, route misses: %d, header drops: %d, rx-ring drops: %d\n",
		forwarded, miss, hdr, rxd)
	fmt.Printf("reordering: %s\n", meter)
	if received.Load() < uint64(*packets)*95/100 {
		return fmt.Errorf("lost more than 5%% of packets")
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rbrouter:", err)
		os.Exit(1)
	}
}
