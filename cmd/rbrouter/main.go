// Command rbrouter runs a real-I/O RouteBricks cluster on this machine:
// N router nodes in one process, meshed over actual UDP sockets, moving
// real IPv4-in-UDP frames through the same element pipelines, DIR-24-8
// lookup, and Direct-VLB/flowlet logic as the simulation — but on
// wall-clock time and OS sockets (stdlib net only).
//
// It demonstrates the programmability claim of the paper: the datapath
// is the same handful of Click-style elements, re-hosted from the
// simulator onto kernel UDP I/O without modification.
//
// Usage:
//
//	rbrouter                      # 4-node demo, 20000 packets
//	rbrouter -nodes 6 -packets 50000 -flowlets=false
package main

import (
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"routebricks/internal/lpm"
	"routebricks/internal/nic"
	"routebricks/internal/pcap"
	"routebricks/internal/pkt"
	"routebricks/internal/sim"
	"routebricks/internal/stats"
	"routebricks/internal/trafficgen"
	"routebricks/internal/vlb"
)

func nowVirtual() sim.Time { return sim.Time(time.Now().UnixNano()) }

// node is one cluster server backed by two UDP sockets: ext receives
// line traffic and emits egress frames to the collector; int carries
// mesh links to peers.
type node struct {
	id    int
	n     int
	ext   *net.UDPConn
	int_  *net.UDPConn
	peers []*net.UDPAddr // internal socket address of each node
	sink  *net.UDPAddr   // collector

	table *lpm.Dir248
	bal   *vlb.Balancer

	extPort *nic.Port // rx rings for line traffic
	intPort *nic.Port // rx rings for mesh traffic (MAC-steered)

	stop atomic.Bool
	wg   sync.WaitGroup

	forwarded atomic.Uint64
	egressed  atomic.Uint64
	routeMiss atomic.Uint64
}

func newNode(id, n int, table *lpm.Dir248, flowlets bool) (*node, error) {
	ext, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	intc, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	return &node{
		id: id, n: n, ext: ext, int_: intc,
		peers: make([]*net.UDPAddr, n),
		table: table,
		bal: vlb.New(vlb.Config{
			Nodes: n, Self: id,
			LineRateBps: 1e9, // demo-scale line rate for the quota clock
			LinkCapBps:  1e9,
			Flowlets:    flowlets,
			Seed:        int64(id) + 1,
		}),
		extPort: nic.NewPort(id*10, nic.Config{RXQueues: 1, QueueSize: 4096}),
		intPort: nic.NewPort(id*10+1, nic.Config{RXQueues: 1, QueueSize: 4096, Steering: nic.SteerMAC}),
	}, nil
}

// reader pulls UDP datagrams into a port's receive ring.
func (nd *node) reader(conn *net.UDPConn, port *nic.Port) {
	defer nd.wg.Done()
	buf := make([]byte, 2048)
	for !nd.stop.Load() {
		conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		m, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			continue // deadline or shutdown
		}
		if m < pkt.EtherHdrLen+pkt.IPv4HdrLen {
			continue
		}
		p := &pkt.Packet{Data: append([]byte(nil), buf[:m]...)}
		port.Deliver(p)
	}
}

// worker is the node's datapath core: it polls both rings and runs the
// ingress/transit logic. One worker per node keeps the balancer
// single-threaded, matching its contract.
func (nd *node) worker() {
	defer nd.wg.Done()
	batch := make([]*pkt.Packet, 32)
	for !nd.stop.Load() {
		work := 0
		// Ingress: line traffic needs the full routing path.
		k := nd.extPort.RX(0).DequeueBatch(batch)
		for i := 0; i < k; i++ {
			nd.ingress(batch[i])
		}
		work += k
		// Transit/egress: mesh traffic moves by MAC only.
		k = nd.intPort.RX(0).DequeueBatch(batch)
		for i := 0; i < k; i++ {
			nd.transit(batch[i])
		}
		work += k
		if work == 0 {
			time.Sleep(200 * time.Microsecond)
		}
	}
}

func (nd *node) ingress(p *pkt.Packet) {
	ih := p.IPv4()
	if !ih.VerifyChecksum() || !ih.DecTTL() {
		nd.routeMiss.Add(1)
		return
	}
	out := nd.table.Lookup(ih.DstUint32())
	if out == lpm.NoRoute {
		nd.routeMiss.Add(1)
		return
	}
	p.Ether().SetSrc(pkt.NodeMAC(nd.id))
	p.Ether().SetDst(pkt.NodeMAC(out))
	if out == nd.id {
		nd.egress(p)
		return
	}
	d := nd.bal.Route(nowVirtual(), p, out)
	nd.send(d.Next, p)
}

func (nd *node) transit(p *pkt.Packet) {
	out := p.Ether().Dst().Node()
	if out == nd.id {
		nd.egress(p)
		return
	}
	nd.send(out, p)
}

func (nd *node) send(to int, p *pkt.Packet) {
	nd.forwarded.Add(1)
	nd.int_.WriteToUDP(p.Data, nd.peers[to])
}

func (nd *node) egress(p *pkt.Packet) {
	nd.egressed.Add(1)
	nd.ext.WriteToUDP(p.Data, nd.sink)
}

func (nd *node) start() {
	nd.wg.Add(3)
	go nd.reader(nd.ext, nd.extPort)
	go nd.reader(nd.int_, nd.intPort)
	go nd.worker()
}

func (nd *node) shutdown() {
	nd.stop.Store(true)
	nd.wg.Wait()
	nd.ext.Close()
	nd.int_.Close()
}

func run() error {
	var (
		nNodes   = flag.Int("nodes", 4, "cluster size")
		packets  = flag.Int("packets", 20000, "packets to inject")
		rate     = flag.Int("rate", 40000, "injection rate (packets/sec)")
		flowlets = flag.Bool("flowlets", true, "enable flowlet reordering avoidance")
		pcapPath = flag.String("pcap", "", "capture egress traffic to this pcap file")
	)
	flag.Parse()
	if *nNodes < 2 || *nNodes > 64 {
		return fmt.Errorf("nodes must be in [2,64]")
	}
	var capture *pcap.Writer
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if capture, err = pcap.NewWriter(f); err != nil {
			return err
		}
	}

	// Shared FIB: node d owns 10.d.0.0/16.
	table := lpm.NewDir248()
	for d := 0; d < *nNodes; d++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(d), 0, 0}), 16)
		if err := table.Insert(p, d); err != nil {
			return err
		}
	}
	table.Freeze()

	collector, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return err
	}
	defer collector.Close()

	nodes := make([]*node, *nNodes)
	for i := range nodes {
		if nodes[i], err = newNode(i, *nNodes, table, *flowlets); err != nil {
			return err
		}
	}
	for _, nd := range nodes {
		nd.sink = collector.LocalAddr().(*net.UDPAddr)
		for j, peer := range nodes {
			nd.peers[j] = peer.int_.LocalAddr().(*net.UDPAddr)
		}
	}
	for _, nd := range nodes {
		nd.start()
	}
	fmt.Printf("rbrouter: %d nodes meshed over UDP, injecting %d packets at %d pps (flowlets=%v)\n",
		*nNodes, *packets, *rate, *flowlets)

	// Collector: count deliveries and measure reordering.
	meter := stats.NewReorderMeter()
	var received atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 2048)
		for received.Load() < uint64(*packets) {
			collector.SetReadDeadline(time.Now().Add(2 * time.Second))
			m, _, err := collector.ReadFromUDP(buf)
			if err != nil {
				return // quiescent: give up
			}
			p := &pkt.Packet{Data: append([]byte(nil), buf[:m]...)}
			if capture != nil {
				capture.WritePacket(time.Now().UnixNano(), p.Data)
			}
			payload := p.L4Payload()
			if len(payload) >= 8 {
				seq := uint64(payload[0])<<56 | uint64(payload[1])<<48 | uint64(payload[2])<<40 |
					uint64(payload[3])<<32 | uint64(payload[4])<<24 | uint64(payload[5])<<16 |
					uint64(payload[6])<<8 | uint64(payload[7])
				meter.Observe(p.FlowHash(), seq)
			}
			received.Add(1)
		}
	}()

	// Injector: flows aimed at node prefixes, round-robin over input
	// nodes, paced at the requested rate.
	var pool []netip.Addr
	for d := 0; d < *nNodes; d++ {
		for h := 0; h < 8; h++ {
			pool = append(pool, netip.AddrFrom4([4]byte{10, byte(d), byte(h), 1}))
		}
	}
	src := trafficgen.New(trafficgen.Config{Seed: 1, Sizes: trafficgen.Fixed(128), DstAddrs: pool})
	interval := time.Second / time.Duration(*rate)
	start := time.Now()
	for i := 0; i < *packets; i++ {
		p := src.Next()
		payload := p.L4Payload()
		seq := p.SeqNo
		for b := 0; b < 8; b++ {
			payload[b] = byte(seq >> (56 - 8*b))
		}
		// A flow always enters at the same external port (keyed on its
		// source address), as it would in a real deployment; spraying one
		// flow across input nodes would manufacture reordering no router
		// could prevent.
		in := nodes[int(p.IPv4().SrcUint32())%*nNodes]
		if _, err := collector.WriteToUDP(p.Data, in.ext.LocalAddr().(*net.UDPAddr)); err != nil {
			return err
		}
		if i%8 == 7 {
			time.Sleep(8 * interval) // pace in small bursts; Sleep granularity is coarse
		}
	}
	<-done
	elapsed := time.Since(start)

	for _, nd := range nodes {
		nd.shutdown()
	}

	var forwarded, egressed, miss uint64
	for _, nd := range nodes {
		forwarded += nd.forwarded.Load()
		egressed += nd.egressed.Load()
		miss += nd.routeMiss.Load()
	}
	fmt.Printf("delivered %d/%d packets in %v (%.0f pps through the mesh)\n",
		received.Load(), *packets, elapsed.Round(time.Millisecond),
		float64(received.Load())/elapsed.Seconds())
	fmt.Printf("internal forwards: %d, route misses: %d\n", forwarded, miss)
	fmt.Printf("reordering: %s\n", meter)
	if received.Load() < uint64(*packets)*95/100 {
		return fmt.Errorf("lost more than 5%% of packets")
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rbrouter:", err)
		os.Exit(1)
	}
}
