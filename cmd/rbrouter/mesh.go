package main

// Mesh mode: `rbrouter -mesh topo.json -mesh-id K` runs this process as
// ONE member of a multi-process VLB cluster — the §6 RB4 story with
// real process boundaries instead of goroutines in one address space.
// The topology file (written by cmd/rbmesh or by hand) assigns each
// member four addresses: a data port for inter-node mesh frames, a
// control port for membership heartbeats, an external port for line
// traffic, and a TCP address for the member's admin API.
//
// The control plane (internal/mesh) heartbeats every peer and walks the
// suspect→dead state machine. Crossing the dead boundary — a peer dies,
// or a dead peer rejoins — re-stripes the data plane: the new live
// vector is installed on the node, the ingress pipeline reloads under
// the drain barrier (in-flight packets finish or drain into accounted
// counters; nothing is silently lost), and the rebuilt VLB balancers
// spread the R/n quota across the members that are actually alive. The
// re-stripe generation is advertised in subsequent heartbeats, so
// cluster-wide convergence is observable from any member's /api/v1/mesh.

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"routebricks"
	"routebricks/internal/click"
	"routebricks/internal/cluster"
	"routebricks/internal/mesh"
	"routebricks/internal/netio"
)

func runMesh(path string, self int, cfgText string, flowlets bool, cores int, kind click.PlanKind, autoPlace, steal bool, wire wireConfig) error {
	topo, err := mesh.LoadTopology(path)
	if err != nil {
		return err
	}
	n := len(topo.Members)
	if self < 0 || self >= n {
		return fmt.Errorf("mesh-id must be in [0,%d), got %d", n, self)
	}
	me := topo.Members[self]

	// Same FIB convention as every other deployment: node d owns
	// 10.d.0.0/16, seeded as generation 1. Routes can be churned live
	// through this member's /api/v1/routes.
	fib, err := routebricks.NewFIB(cluster.SeedRoutes(n)...)
	if err != nil {
		return err
	}
	if autoPlace {
		probe, err := probePlacement(cfgText, fib, cores)
		if err != nil {
			return fmt.Errorf("auto placement calibration: %w", err)
		}
		kind = probe.Placement()
		fmt.Printf("rbrouter[%d]: placement %s\n", self, describeDecision(probe))
	}

	bind := func(what, addr string) (*net.UDPConn, error) {
		ua, err := net.ResolveUDPAddr("udp4", addr)
		if err != nil {
			return nil, fmt.Errorf("%s address %s: %w", what, addr, err)
		}
		c, err := net.ListenUDP("udp4", ua)
		if err != nil {
			return nil, fmt.Errorf("bind %s %s: %w", what, addr, err)
		}
		return c, nil
	}
	// The external port binds as one socket or as -rx-queues SO_REUSEPORT
	// siblings — kernel-hashed receive queues on the member's line port.
	exts, err := netio.ListenReusePort("udp4", me.Ext, wire.rxQueues)
	if err != nil {
		return fmt.Errorf("bind ext %s: %w", me.Ext, err)
	}
	data, err := bind("data", me.Data)
	if err != nil {
		return err
	}

	nd, err := newNodeOnConns(self, n, exts, data, fib, cfgText, flowlets, cores, kind, steal, wire)
	if err != nil {
		return err
	}
	for j, m := range topo.Members {
		if j == self {
			continue
		}
		if nd.peers[j], err = net.ResolveUDPAddr("udp4", m.Data); err != nil {
			return fmt.Errorf("peer %d data address: %w", j, err)
		}
	}
	if topo.Sink != "" {
		if nd.sink, err = net.ResolveUDPAddr("udp4", topo.Sink); err != nil {
			return fmt.Errorf("sink address: %w", err)
		}
	}
	if err := nd.start(); err != nil {
		return err
	}

	// The membership control plane. OnChange fires only across the dead
	// boundary (death or rejoin) — a suspect peer keeps its VLB share,
	// because demoting on every scheduling hiccup would churn the mesh.
	// The callback is serialized by the mesh node, so re-stripes never
	// overlap.
	var ctrl *mesh.Node
	onChange := func(ev mesh.Event) {
		nd.setLive(ev.Live)
		if err := nd.reload(cfgText, kind); err != nil {
			fmt.Fprintf(os.Stderr, "rbrouter[%d]: re-stripe reload: %v\n", self, err)
			return
		}
		gen := nd.restripes.Add(1)
		ctrl.SetGeneration(gen)
		alive := 0
		for _, l := range ev.Live {
			if l {
				alive++
			}
		}
		fmt.Printf("rbrouter[%d]: re-stripe generation %d (%d/%d members live)\n", self, gen, alive, n)
	}
	ctrl, err = mesh.NewNode(mesh.NodeConfig{
		Self:     self,
		Topology: topo,
		OnChange: onChange,
		Logf: func(format string, args ...any) {
			fmt.Printf("rbrouter[%d]: "+format+"\n", append([]any{self}, args...)...)
		},
	})
	if err != nil {
		nd.shutdown()
		return err
	}

	replanAll := func() error {
		probe, err := probePlacement(cfgText, fib, cores)
		if err != nil {
			return err
		}
		return nd.ingress.Replan(routebricks.Options{Placement: probe.Placement()})
	}
	ln, err := net.Listen("tcp", me.API)
	if err != nil {
		nd.shutdown()
		return fmt.Errorf("bind api %s: %w", me.API, err)
	}
	srv := &http.Server{Handler: newAdminMux([]*node{nd}, fib, replanAll, ctrl)}
	go srv.Serve(ln)

	ctrl.Start()
	fmt.Printf("rbrouter[%d]: mesh member up — data %s ctrl %s ext %s api http://%s/api/v1/{stats,mesh,routes}\n",
		self, me.Data, me.Ctrl, me.Ext, ln.Addr())

	// SIGTERM/SIGINT is the graceful exit: stop heartbeating (peers will
	// detect the death and re-stripe around us), halt the datapath, and
	// let the writers flush every queued frame — the drained count in
	// the final line is the proof nothing died in a ring.
	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM, os.Interrupt)
	<-term
	signal.Stop(term)
	fmt.Printf("rbrouter[%d]: signal received, draining\n", self)
	srv.Close()
	ctrl.Stop()
	nd.shutdown()
	fmt.Printf("rbrouter[%d]: shutdown complete — forwarded %d, egressed %d, drained %d queued frames\n",
		self, nd.forwarded.Load(), nd.egressed.Load(), nd.txDrained.Load())
	return nil
}
