// Command rbtopo explores the cluster-sizing design space of §3.3: given
// a port count and server configuration it reports the chosen topology,
// server count, and link provisioning, plus the switched-Clos comparison.
//
// Usage:
//
//	rbtopo -n 1024                  # all configurations at N=1024
//	rbtopo -n 64 -config faster     # one configuration
//	rbtopo -sweep                   # the full Fig 3 sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"routebricks/internal/experiments"
	"routebricks/internal/topo"
)

func configByName(name string) (topo.ServerConfig, bool) {
	for _, c := range []topo.ServerConfig{topo.Current(), topo.MoreNICs(), topo.Faster()} {
		if c.Name == name {
			return c, true
		}
	}
	return topo.ServerConfig{}, false
}

func main() {
	var (
		n     = flag.Int("n", 32, "external ports")
		r     = flag.Float64("r", 10, "line rate per port (Gbps)")
		cfgN  = flag.String("config", "", "server configuration: current, more-nics, faster (default: all)")
		sweep = flag.Bool("sweep", false, "print the full Fig 3 sweep and exit")
	)
	flag.Parse()

	if *sweep {
		fmt.Println(experiments.Fig3().String())
		return
	}

	cfgs := []topo.ServerConfig{topo.Current(), topo.MoreNICs(), topo.Faster()}
	if *cfgN != "" {
		c, ok := configByName(*cfgN)
		if !ok {
			fmt.Fprintf(os.Stderr, "rbtopo: unknown config %q\n", *cfgN)
			os.Exit(1)
		}
		cfgs = []topo.ServerConfig{c}
	}

	fmt.Printf("N = %d external ports at %g Gbps\n\n", *n, *r)
	for _, cfg := range cfgs {
		d, err := topo.Plan(cfg, *n, *r)
		if err != nil {
			fmt.Printf("%-10s: %v\n", cfg.Name, err)
			continue
		}
		fmt.Printf("%-10s: %-6s %5d servers (%d port + %d intermediate)",
			cfg.Name, d.Topology, d.Servers, d.PortServers, d.Intermediates)
		if d.Topology == "mesh" {
			fmt.Printf("  link %.3g Gbps ×%d bundle", d.LinkGbps, d.Bundle)
		} else {
			fmt.Printf("  %d stages", d.Stages)
		}
		fmt.Println()
	}
	sw, eq := topo.SwitchedCost(*n)
	fmt.Printf("%-10s: %d 48-port switches ≈ %.0f server-equivalents (incl. %d servers)\n",
		"switched", sw, eq, *n)
}
