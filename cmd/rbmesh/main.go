// Command rbmesh boots and operates a multi-process RouteBricks
// cluster on this machine: it generates (or loads) a mesh topology,
// spawns one rbrouter process per member (`rbrouter -mesh topo.json
// -mesh-id K`), supervises them, collects the cluster's egress traffic
// on the topology sink, and serves an aggregate admin API that merges
// every member's /api/v1/stats and /api/v1/mesh into one cluster
// snapshot.
//
// It is the harness the §6 failure story runs in: kill a member
// (POST /api/v1/kill), watch the survivors declare it dead and
// re-stripe their VLB matrices around it, inject traffic (POST
// /api/v1/inject) and read the delivery ledger from the collector,
// then restart the member (POST /api/v1/restart) and watch it rejoin.
//
// Usage:
//
//	rbmesh -n 3                          # boot a 3-member local mesh
//	rbmesh -n 4 -cores 2 -addr 127.0.0.1:8800
//	curl http://127.0.0.1:8800/api/v1/cluster        # aggregate snapshot
//	curl -X POST http://127.0.0.1:8800/api/v1/kill?id=2
//	curl -X POST 'http://127.0.0.1:8800/api/v1/inject?packets=1000'
//	curl -X POST http://127.0.0.1:8800/api/v1/restart?id=2
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"routebricks/internal/mesh"
	"routebricks/internal/netio"
	"routebricks/internal/pkt"
)

// member is one supervised rbrouter process.
type member struct {
	mu      sync.Mutex
	id      int
	cmd     *exec.Cmd
	running bool
	exit    string // last exit status, "" while running
	logPath string
}

func (m *member) status() (running bool, exit string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running, m.exit
}

// launcher owns the cluster: the topology, the member processes, and
// the egress collector.
type launcher struct {
	topo     mesh.Topology
	topoPath string
	binary   string
	logDir   string
	extra    []string // extra rbrouter flags (cores, placement, ...)

	members []*member

	// Collector: every member's egress frames arrive on the sink
	// socket; the ledger below is the cluster's delivery proof.
	sink     *net.UDPConn
	collMu   sync.Mutex
	received uint64
	byNode   map[int]uint64
}

// spawn starts (or restarts) member id and watches it until exit.
func (l *launcher) spawn(id int) error {
	m := l.members[id]
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running {
		return fmt.Errorf("member %d already running", id)
	}
	logf, err := os.OpenFile(m.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(l.binary, append([]string{"-mesh", l.topoPath, "-mesh-id", fmt.Sprint(id)}, l.extra...)...)
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return err
	}
	m.cmd, m.running, m.exit = cmd, true, ""
	go func() {
		err := cmd.Wait()
		logf.Close()
		m.mu.Lock()
		m.running = false
		if err != nil {
			m.exit = err.Error()
		} else {
			m.exit = "exit 0"
		}
		m.mu.Unlock()
		fmt.Printf("rbmesh: member %d exited (%s)\n", id, m.exit)
	}()
	fmt.Printf("rbmesh: member %d up (pid %d, log %s)\n", id, cmd.Process.Pid, m.logPath)
	return nil
}

// kill hard-kills member id — the failure injection for the §6 story.
func (l *launcher) kill(id int) error {
	m := l.members[id]
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.running || m.cmd == nil || m.cmd.Process == nil {
		return fmt.Errorf("member %d not running", id)
	}
	return m.cmd.Process.Kill()
}

// stopAll sends every running member SIGTERM (the graceful drain path)
// and waits for them to exit, up to the timeout.
func (l *launcher) stopAll(timeout time.Duration) {
	for _, m := range l.members {
		m.mu.Lock()
		if m.running && m.cmd != nil && m.cmd.Process != nil {
			m.cmd.Process.Signal(syscall.SIGTERM)
		}
		m.mu.Unlock()
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		alive := 0
		for _, m := range l.members {
			if running, _ := m.status(); running {
				alive++
			}
		}
		if alive == 0 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, m := range l.members {
		m.mu.Lock()
		if m.running && m.cmd != nil && m.cmd.Process != nil {
			m.cmd.Process.Kill()
		}
		m.mu.Unlock()
	}
}

// runCollector counts egress deliveries per destination-owning node:
// the dst address's second octet under the 10.d.0.0/16 convention.
// Frames arrive in batches straight into pool buffers (one recvmmsg per
// batch on the fast path) and the ledger lock is taken once per batch,
// not once per frame. The reader blocks with no deadline; closing the
// sink socket at shutdown wakes and ends it.
func (l *launcher) runCollector() {
	shard := pkt.DefaultPool.Shard(0)
	rd := netio.NewBatchReader(l.sink, netio.Config{Shard: shard})
	defer rd.Release()
	batch := pkt.NewBatch(32)
	for {
		batch.Reset()
		if _, err := rd.ReadBatch(batch); err != nil {
			return // socket closed: shutdown
		}
		l.collMu.Lock()
		for _, p := range batch.Packets() {
			if len(p.Data) >= pkt.EtherHdrLen+pkt.IPv4HdrLen {
				dst := p.IPv4().DstUint32()
				l.received++
				l.byNode[int(dst>>16)&0xFF]++
			}
		}
		l.collMu.Unlock()
		shard.PutBatch(batch)
	}
}

// collectorCounts snapshots the delivery ledger.
func (l *launcher) collectorCounts() (uint64, map[int]uint64) {
	l.collMu.Lock()
	defer l.collMu.Unlock()
	by := make(map[int]uint64, len(l.byNode))
	for k, v := range l.byNode {
		by[k] = v
	}
	return l.received, by
}

// findRBRouter locates the rbrouter binary: an explicit -rbrouter flag,
// a sibling of this executable, or PATH.
func findRBRouter(explicit string) (string, error) {
	if explicit != "" {
		return exec.LookPath(explicit)
	}
	if self, err := os.Executable(); err == nil {
		sib := filepath.Join(filepath.Dir(self), "rbrouter")
		if _, err := os.Stat(sib); err == nil {
			return sib, nil
		}
	}
	return exec.LookPath("rbrouter")
}

func run() error {
	var (
		n         = flag.Int("n", 3, "cluster size (members to spawn)")
		topoPath  = flag.String("topo", "", "use this topology file instead of generating one")
		binary    = flag.String("rbrouter", "", "rbrouter binary (default: sibling of this executable, then $PATH)")
		addr      = flag.String("addr", "127.0.0.1:8800", "serve the aggregate cluster API on this address")
		logDir    = flag.String("logdir", "", "member log directory (default: a fresh temp dir)")
		cores     = flag.Int("cores", 1, "datapath cores per member")
		placement = flag.String("placement", "parallel", "per-member core allocation (passed through to rbrouter)")
		flowlets  = flag.Bool("flowlets", true, "flowlet reordering avoidance (passed through)")
		heartbeat = flag.Int("heartbeat-ms", 0, "heartbeat interval override for a generated topology")
		deadAfter = flag.Int("dead-ms", 0, "dead-after override for a generated topology")
		rxQueues  = flag.Int("rx-queues", 1, "SO_REUSEPORT receive queues per member ingress port (passed through)")
		wireFall  = flag.Bool("wire-fallback", false, "force the per-packet syscall path in members (passed through)")
	)
	flag.Parse()

	bin, err := findRBRouter(*binary)
	if err != nil {
		return fmt.Errorf("rbrouter binary not found (build it or pass -rbrouter): %w", err)
	}
	dir := *logDir
	if dir == "" {
		if dir, err = os.MkdirTemp("", "rbmesh-"); err != nil {
			return err
		}
	}

	// The collector socket first: a generated topology's sink points at
	// it, so member egress is countable from the first packet.
	sink, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return err
	}
	defer sink.Close()
	sink.SetReadBuffer(4 << 20)

	var topo mesh.Topology
	tp := *topoPath
	if tp == "" {
		if topo, err = mesh.GenerateLocal(*n); err != nil {
			return err
		}
		topo.HeartbeatMs, topo.DeadAfterMs = *heartbeat, *deadAfter
		if *deadAfter > 0 {
			topo.SuspectAfterMs = *deadAfter / 3
		}
		topo.Sink = sink.LocalAddr().String()
		tp = filepath.Join(dir, "topo.json")
		if err := topo.WriteFile(tp); err != nil {
			return err
		}
	} else if topo, err = mesh.LoadTopology(tp); err != nil {
		return err
	}

	l := &launcher{
		topo:     topo,
		topoPath: tp,
		binary:   bin,
		logDir:   dir,
		extra: []string{
			"-cores", fmt.Sprint(*cores),
			"-placement", *placement,
			fmt.Sprintf("-flowlets=%v", *flowlets),
			"-rx-queues", fmt.Sprint(*rxQueues),
			fmt.Sprintf("-wire-fallback=%v", *wireFall),
		},
		sink:   sink,
		byNode: make(map[int]uint64),
	}
	for i := range topo.Members {
		l.members = append(l.members, &member{id: i, logPath: filepath.Join(dir, fmt.Sprintf("member-%d.log", i))})
	}
	go l.runCollector()

	for i := range l.members {
		if err := l.spawn(i); err != nil {
			l.stopAll(2 * time.Second)
			return fmt.Errorf("spawn member %d: %w", i, err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		l.stopAll(2 * time.Second)
		return err
	}
	srv := &http.Server{Handler: newMeshMux(l)}
	go srv.Serve(ln)
	fmt.Printf("rbmesh: %d members, topology %s\n", len(topo.Members), tp)
	fmt.Printf("rbmesh: cluster API http://%s/api/v1/{cluster,kill,restart,inject}\n", ln.Addr())

	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM, os.Interrupt)
	<-term
	fmt.Println("rbmesh: signal received, stopping members")
	srv.Close()
	l.stopAll(5 * time.Second)
	received, _ := l.collectorCounts()
	fmt.Printf("rbmesh: done — collector received %d egress frames\n", received)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rbmesh:", err)
		os.Exit(1)
	}
}
