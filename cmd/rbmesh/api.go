package main

// The aggregate cluster API. rbmesh is the only process that knows the
// whole cluster — each rbrouter member knows its own counters and its
// own membership view — so this mux is where the pieces meet: it polls
// every member's /api/v1/stats and /api/v1/mesh, folds them into one
// document with cluster totals and a convergence verdict, and exposes
// the §6 failure-story verbs.
//
//	GET  /api/v1/cluster   aggregate snapshot (per-member mesh+stats, totals, collector ledger)
//	POST /api/v1/kill      ?id=K  hard-kill member K (failure injection)
//	POST /api/v1/restart   ?id=K  respawn member K (rejoin)
//	POST /api/v1/inject    ?packets=N[&rate=pps]  inject traffic at running members

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"strconv"
	"time"

	"routebricks/internal/cluster"
	"routebricks/internal/mesh"
	"routebricks/internal/netio"
	"routebricks/internal/pkt"
	"routebricks/internal/stats"
	"routebricks/internal/trafficgen"
)

// apiClient keeps member polls fast: a stuck member must not hang the
// aggregate snapshot.
var apiClient = &http.Client{Timeout: 2 * time.Second}

// memberDoc is one member's slice of the aggregate snapshot.
type memberDoc struct {
	ID      int              `json:"id"`
	Running bool             `json:"running"`
	Exit    string           `json:"exit,omitempty"`  // last exit status when not running
	Error   string           `json:"error,omitempty"` // API poll failure when running
	Mesh    *mesh.Status     `json:"mesh,omitempty"`
	Stats   *stats.NodeStats `json:"stats,omitempty"`
}

// clusterDoc is the GET /api/v1/cluster response.
type clusterDoc struct {
	Members     int         `json:"members"`
	Running     int         `json:"running"`
	MemberTable []memberDoc `json:"member_table"`

	// Converged is true when every reachable running member's membership
	// view matches reality: each running member alive, each killed
	// member declared dead (not merely suspect) — i.e. every survivor
	// has re-striped around the actual failure set.
	Converged bool `json:"converged"`

	Totals    stats.NodeTotals `json:"totals"`
	Collector collectorDoc     `json:"collector"`
}

type collectorDoc struct {
	Received uint64         `json:"received"`
	ByNode   map[int]uint64 `json:"by_node"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": map[string]any{"code": status, "message": fmt.Sprintf(format, args...)}})
}

// pollMember fetches one running member's mesh and stats documents.
func pollMember(api string) (*mesh.Status, *stats.NodeStats, error) {
	var ms mesh.Status
	resp, err := apiClient.Get("http://" + api + "/api/v1/mesh")
	if err != nil {
		return nil, nil, err
	}
	err = json.NewDecoder(resp.Body).Decode(&ms)
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	var ns []stats.NodeStats
	resp, err = apiClient.Get("http://" + api + "/api/v1/stats")
	if err != nil {
		return &ms, nil, err
	}
	err = json.NewDecoder(resp.Body).Decode(&ns)
	resp.Body.Close()
	if err != nil || len(ns) == 0 {
		return &ms, nil, fmt.Errorf("stats decode: %v", err)
	}
	return &ms, &ns[0], nil
}

// snapshot builds the aggregate cluster document.
func (l *launcher) snapshot() clusterDoc {
	doc := clusterDoc{Members: len(l.members)}
	running := make([]bool, len(l.members))
	for i, m := range l.members {
		running[i], _ = m.status()
		if running[i] {
			doc.Running++
		}
	}
	doc.Converged = true
	var nodeStats []stats.NodeStats
	for i, m := range l.members {
		md := memberDoc{ID: i, Running: running[i]}
		if !running[i] {
			_, md.Exit = m.status()
			doc.MemberTable = append(doc.MemberTable, md)
			continue
		}
		ms, ns, err := pollMember(l.topo.Members[i].API)
		if err != nil {
			md.Error = err.Error()
			doc.Converged = false
		}
		md.Mesh, md.Stats = ms, ns
		if ns != nil {
			nodeStats = append(nodeStats, *ns)
		}
		// This member's view must match reality: every running member
		// alive, every killed member declared dead (suspect means its
		// VLB share is still striped there — not yet converged).
		if ms != nil {
			for _, p := range ms.Peers {
				ok := p.State == "self" || p.State == "alive"
				if running[p.ID] && !ok || !running[p.ID] && p.State != "dead" {
					doc.Converged = false
				}
			}
		}
		doc.MemberTable = append(doc.MemberTable, md)
	}
	doc.Totals = stats.SumNodes(nodeStats)
	doc.Collector.Received, doc.Collector.ByNode = l.collectorCounts()
	return doc
}

// inject sends packets flows aimed at running members' prefixes,
// entering the mesh at running members' external ports (a flow always
// enters at the same port, keyed on its source address). Returns the
// number sent.
func (l *launcher) inject(packets, rate int) (int, error) {
	var via []int
	for i, m := range l.members {
		if r, _ := m.status(); r {
			via = append(via, i)
		}
	}
	if len(via) == 0 {
		return 0, fmt.Errorf("no running members")
	}
	// Destinations only inside running members' prefixes: a packet for a
	// dead node's prefix has no owner to deliver it.
	var addrs []netip.Addr
	for _, d := range via {
		for h := 0; h < 8; h++ {
			addrs = append(addrs, cluster.NodeOwnedAddr(d, uint16(h)<<8|1))
		}
	}
	src := trafficgen.New(trafficgen.Config{Seed: 1, Sizes: trafficgen.Fixed(128), DstAddrs: addrs})

	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	ext := make([]*net.UDPAddr, len(via))
	for k, d := range via {
		if ext[k], err = net.ResolveUDPAddr("udp4", l.topo.Members[d].Ext); err != nil {
			return 0, err
		}
	}
	if rate <= 0 {
		rate = 20000
	}
	interval := time.Second / time.Duration(rate)
	// Frames go out in 8-frame bursts matching the pacing granularity —
	// one sendmmsg per burst on the fast path, with a destination per
	// frame (WriteScatter), so a burst spanning several entry members
	// still costs one syscall.
	w := netio.NewBatchWriter(conn, netio.Config{})
	burst := make([]*pkt.Packet, 0, 8)
	dests := make([]*net.UDPAddr, 0, 8)
	sent := 0
	flush := func() error {
		if len(burst) == 0 {
			return nil
		}
		n, err := w.WriteScatter(burst, dests)
		sent += n
		for _, p := range burst {
			pkt.DefaultPool.Put(p) // the kernel copied at syscall time
		}
		burst, dests = burst[:0], dests[:0]
		return err
	}
	for i := 0; i < packets; i++ {
		p := src.Next()
		burst = append(burst, p)
		dests = append(dests, ext[int(p.IPv4().SrcUint32())%len(ext)])
		if i%8 == 7 {
			if err := flush(); err != nil {
				return sent, err
			}
			time.Sleep(8 * interval)
		}
	}
	if err := flush(); err != nil {
		return sent, err
	}
	return sent, nil
}

// memberID parses the ?id= parameter against the member table.
func (l *launcher) memberID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		return 0, fmt.Errorf("missing or bad ?id=")
	}
	if id < 0 || id >= len(l.members) {
		return 0, fmt.Errorf("id %d out of range [0,%d)", id, len(l.members))
	}
	return id, nil
}

func post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "%s not allowed; use POST", r.Method)
			return
		}
		h(w, r)
	}
}

// newMeshMux builds the rbmesh HTTP surface.
func newMeshMux(l *launcher) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/api/v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, "%s not allowed; use GET", r.Method)
			return
		}
		writeJSON(w, http.StatusOK, l.snapshot())
	})

	mux.HandleFunc("/api/v1/kill", post(func(w http.ResponseWriter, r *http.Request) {
		id, err := l.memberID(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := l.kill(id); err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"killed": id})
	}))

	mux.HandleFunc("/api/v1/restart", post(func(w http.ResponseWriter, r *http.Request) {
		id, err := l.memberID(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := l.spawn(id); err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"restarted": id})
	}))

	mux.HandleFunc("/api/v1/inject", post(func(w http.ResponseWriter, r *http.Request) {
		packets, err := strconv.Atoi(r.URL.Query().Get("packets"))
		if err != nil || packets <= 0 || packets > 1<<20 {
			writeError(w, http.StatusBadRequest, "need ?packets= in (0,%d]", 1<<20)
			return
		}
		rate, _ := strconv.Atoi(r.URL.Query().Get("rate"))
		sent, err := l.inject(packets, rate)
		if err != nil {
			writeError(w, http.StatusConflict, "injected %d then: %v", sent, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"sent": sent})
	}))

	return mux
}
