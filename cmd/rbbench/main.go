// Command rbbench regenerates the RouteBricks evaluation: every table
// and figure of §5–§6, printed as aligned text or markdown.
//
// Usage:
//
//	rbbench                  # run everything
//	rbbench -exp fig8        # one experiment
//	rbbench -list            # list experiment IDs
//	rbbench -md              # markdown output (EXPERIMENTS.md source)
//	rbbench -quick           # shorter simulation runs
package main

import (
	"flag"
	"fmt"
	"os"

	"routebricks/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID to run (default: all)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		md    = flag.Bool("md", false, "emit markdown instead of text tables")
		quick = flag.Bool("quick", false, "shorter discrete-event runs")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	run := func(e experiments.Experiment) {
		rep := e.Run(*quick)
		if *md {
			fmt.Print(rep.Markdown())
		} else {
			fmt.Println(rep.String())
		}
	}

	if *exp != "" {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "rbbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		run(e)
		return
	}
	for _, e := range experiments.All() {
		run(e)
	}
}
