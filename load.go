package routebricks

import (
	"fmt"

	"routebricks/internal/click"
	"routebricks/internal/elements"
	"routebricks/internal/exec"
	"routebricks/internal/pkt"
)

// This file is the graph-first public surface: Load takes a router
// written in the Click configuration language and materializes it as a
// multi-core placement plan — the paper's programmability claim ("fully
// programmable using the familiar Click/Linux environment", §1) joined
// to its parallelism claim (§4.2's core allocations) behind one call.

// Element is a Click packet-processing module (see internal/click).
type Element = click.Element

// Registry maps element class names to factories for Click-language
// configurations.
type Registry = click.Registry

// Router is a named element graph.
type Router = click.Router

// Packet is the framework's packet buffer.
type Packet = pkt.Packet

// Ring is the lock-free SPSC packet ring used for plan inputs.
type Ring = exec.Ring

// CoreStat is the per-core counter block of a running pipeline.
type CoreStat = click.CoreStat

// PlanKind selects the §4.2 core allocation for a loaded pipeline.
type PlanKind = click.PlanKind

// The two §4.2 core allocations.
const (
	// Parallel clones the whole graph onto every core ("one core per
	// queue, one core per packet") — the paper's winning allocation.
	Parallel = click.Parallel
	// Pipelined cuts the graph's trunk into per-core stages joined by
	// SPSC handoff rings.
	Pipelined = click.Pipelined
)

// Options parameterizes Load.
type Options struct {
	// Cores is the number of datapath cores (default 1).
	Cores int
	// Placement picks the core allocation (default Parallel).
	Placement PlanKind
	// KP is the poll batch size (default 32, the paper's tuned kp).
	KP int
	// InputCap sizes each chain's input ring (default 4096);
	// HandoffCap each inter-stage handoff ring (default 1024).
	InputCap   int
	HandoffCap int
	// Registry resolves element classes in the Click text (default
	// elements.StandardRegistry — the full zero-resource library).
	Registry Registry
	// Prebound supplies ready-made element instances addressable by
	// name from the Click text — route tables bound to FIBs, device
	// rings, VLB balancers. It is called once per chain so per-core
	// resources come out independent by construction; instances that
	// are shared across chains must be safe for concurrent use.
	Prebound func(chain int) map[string]Element
	// Entry names the graph's entry element when auto-detection (the
	// unique element with no incoming connections) is ambiguous.
	Entry string
	// Sink, when non-nil, builds a terminal element per chain and wires
	// it after the trunk's dangling last output.
	Sink func(chain int) Element
}

// Pipeline is a loaded, placed, runnable Click program.
type Pipeline struct {
	plan *click.Plan
	ctx  click.Context // deterministic-stepping context (Step)
}

// Load parses a Click-language configuration and materializes it across
// opts.Cores cores under the chosen placement. The graph is
// instantiated once per chain — every core of a Parallel plan runs an
// independent copy of the whole graph; a Pipelined plan cuts the
// graph's trunk across cores wherever the topology allows (side
// branches stay with the trunk element that feeds them).
//
// The returned pipeline is idle: feed packets into Input(chain) /
// Push and call Start (real goroutines) or Step (deterministic,
// single-threaded) to move them.
func Load(clickText string, opts Options) (*Pipeline, error) {
	if opts.Cores == 0 {
		opts.Cores = 1
	}
	if opts.Cores < 0 {
		return nil, fmt.Errorf("routebricks: Cores must be positive, got %d", opts.Cores)
	}
	reg := opts.Registry
	if reg == nil {
		reg = elements.StandardRegistry()
	}
	prog := click.ParseProgram(clickText, reg, opts.Prebound)
	prog.Entry = opts.Entry
	plan, err := click.NewPlan(click.PlanConfig{
		Kind:       opts.Placement,
		Cores:      opts.Cores,
		Program:    prog,
		KP:         opts.KP,
		InputCap:   opts.InputCap,
		HandoffCap: opts.HandoffCap,
		Sink:       opts.Sink,
	})
	if err != nil {
		return nil, err
	}
	return &Pipeline{plan: plan}, nil
}

// Start launches the pipeline's cores as real goroutines.
func (p *Pipeline) Start() error { return p.plan.Start() }

// Stop halts the cores and waits for them to exit.
func (p *Pipeline) Stop() { p.plan.Stop() }

// Step executes one quantum of every core synchronously on the calling
// goroutine — the deterministic execution mode for tests and
// simulations. It reports packets moved and must not be mixed with
// Start.
func (p *Pipeline) Step() int {
	n := 0
	for core := 0; core < p.plan.Cores(); core++ {
		n += p.plan.RunStep(core, &p.ctx)
	}
	p.ctx.TakeCycles()
	return n
}

// Chains reports the number of independent graph replicas (== Cores
// for parallel placements).
func (p *Pipeline) Chains() int { return p.plan.Chains() }

// Cores reports the plan width.
func (p *Pipeline) Cores() int { return p.plan.Cores() }

// Input returns chain i's input ring. Each ring is single-producer:
// feed it from exactly one goroutine.
func (p *Pipeline) Input(i int) *Ring { return p.plan.Input(i) }

// Push feeds one packet to chain i, reporting false when the ring is
// full (the caller keeps ownership of a rejected packet).
func (p *Pipeline) Push(i int, pk *Packet) bool { return p.plan.Input(i).Push(pk) }

// Router returns chain i's element graph, for inspection (counters,
// per-chain state) and DOT export.
func (p *Pipeline) Router(i int) *Router { return p.plan.Router(i) }

// Element returns the named element of chain i's graph, or nil.
func (p *Pipeline) Element(chain int, name string) Element {
	if r := p.plan.Router(chain); r != nil {
		return r.Get(name)
	}
	return nil
}

// Stats returns the per-core counter blocks, in core order.
func (p *Pipeline) Stats() []*CoreStat { return p.plan.Stats() }

// Drops reports packets the plan itself lost to handoff-ring overflow
// (0 in steady state: polling is backpressure-capped).
func (p *Pipeline) Drops() uint64 { return p.plan.Drops() }

// Queued reports packets currently sitting in the pipeline's rings.
func (p *Pipeline) Queued() int { return p.plan.Queued() }

// Describe renders the placement map: which trunk segments run on
// which core, and where the handoff rings sit.
func (p *Pipeline) Describe() string { return p.plan.Describe() }

// DOT renders chain 0's element graph in Graphviz format.
func (p *Pipeline) DOT() string {
	if r := p.plan.Router(0); r != nil {
		return r.DOT()
	}
	return ""
}

// Plan exposes the underlying placement plan for advanced callers.
func (p *Pipeline) Plan() *click.Plan { return p.plan }
