package routebricks

import (
	"fmt"
	"sync"
	"sync/atomic"

	"routebricks/internal/click"
	"routebricks/internal/elements"
	"routebricks/internal/exec"
	"routebricks/internal/pkt"
	"routebricks/internal/rss"
	"routebricks/internal/stats"
)

// This file is the graph-first public surface: Load takes a router
// written in the Click configuration language and materializes it as a
// multi-core placement plan — the paper's programmability claim ("fully
// programmable using the familiar Click/Linux environment", §1) joined
// to its parallelism claim (§4.2's core allocations) behind one call.
// The returned Pipeline is a live control plane, not a build-once
// artifact: the placement can be chosen by measurement (Placement:
// Auto), re-decided at runtime (Replan), the whole program swapped
// without restart (Reload), and everything observed through one typed
// Snapshot (see control.go and snapshot.go).

// Element is a Click packet-processing module (see internal/click).
type Element = click.Element

// Registry maps element class names to factories for Click-language
// configurations.
type Registry = click.Registry

// Router is a named element graph.
type Router = click.Router

// Packet is the framework's packet buffer.
type Packet = pkt.Packet

// Ring is the lock-free SPSC packet ring used for plan inputs.
type Ring = exec.Ring

// CoreStat is the per-core counter block of a running pipeline.
type CoreStat = click.CoreStat

// PlanKind selects the §4.2 core allocation for a loaded pipeline.
type PlanKind = click.PlanKind

// Snapshot is the unified observability view of a Pipeline — see
// Pipeline.Snapshot.
type Snapshot = stats.Snapshot

// Topology describes the socket layout placement decisions run
// against — sockets × cores plus NIC-queue→socket affinity (see
// internal/click).
type Topology = click.Topology

// CostModel prices placement decisions; see internal/click. The
// default is click.BusCostModel over the pipeline's Topology with the
// measured handoff cost.
type CostModel = click.CostModel

// DetectTopology inspects the host and returns its socket layout
// (flat single-socket when undetectable).
func DetectTopology() Topology { return click.DetectTopology() }

// The §4.2 core allocations, plus the measured mode.
const (
	// Parallel clones the whole graph onto every core ("one core per
	// queue, one core per packet") — the paper's winning allocation.
	Parallel = click.Parallel
	// Pipelined cuts the graph's trunk into per-core stages joined by
	// SPSC handoff rings.
	Pipelined = click.Pipelined
	// Auto picks between Parallel and Pipelined by running a short
	// deterministic calibration against both candidate plans at Load
	// (and Replan) time; the decision is recorded in Describe() and the
	// Snapshot.
	Auto = click.Auto
)

// Options parameterizes Load (and Reload/Replan, which apply the same
// validation and defaults). Numeric fields left 0 take the documented
// default at Load and inherit the pipeline's current value at
// Reload/Replan; negative values are rejected up front with a
// descriptive error rather than silently rounded downstream.
type Options struct {
	// Cores is the number of datapath cores (default 1).
	Cores int
	// Placement picks the core allocation (default Parallel). Auto
	// measures both candidates and picks; note that Auto briefly drives
	// synthetic calibration traffic through candidate plans, so Prebound
	// and Sink are invoked for candidate chains too and prebound
	// terminals see (and may count) calibration packets.
	Placement PlanKind
	// KP is the poll batch size (default 32, the paper's tuned kp).
	KP int
	// InputCap sizes each chain's input ring (default 4096);
	// HandoffCap each inter-stage handoff ring (default 1024). Ring
	// capacities round UP to the next power of two (exec.NewRing), so
	// e.g. InputCap: 3000 yields 4096-slot rings.
	InputCap   int
	HandoffCap int
	// Registry resolves element classes in the Click text (default
	// elements.StandardRegistry — the full zero-resource library).
	Registry Registry
	// Prebound supplies ready-made element instances addressable by
	// name from the Click text — route tables bound to FIBs, device
	// rings, VLB balancers. It is called once per chain so per-core
	// resources come out independent by construction; instances that
	// are shared across chains must be safe for concurrent use. Reload
	// and Replan call it again for the new plan's chains, which is how
	// prebound resources persist across a swap: the same closure hands
	// the same shared instances to the replacement graph.
	Prebound func(chain int) map[string]Element
	// FIB, when non-nil, binds the Click text's `fib` name to a live
	// route table (see NewFIB): every chain gets an LPMLookup element
	// reading through the shared FIB, one snapshot load per batch, and
	// route updates through the same handle (or Pipeline.Routes()) reach
	// the datapath without a reload. A `fib` entry returned by Prebound
	// takes precedence. Like Prebound, the handle is inherited across
	// Reload/Replan.
	FIB *RouteAdmin
	// Entry names the graph's entry element when auto-detection (the
	// unique element with no incoming connections) is ambiguous.
	Entry string
	// Sink, when non-nil, builds a terminal element per chain and wires
	// it after the trunk's dangling last output.
	Sink func(chain int) Element
	// Topology describes the socket layout placement runs against:
	// parallel chains pin to the socket owning their input queue, and
	// handoff rings that cross sockets are charged the cost model's
	// cross-socket premium. nil detects the host topology once per
	// process; supply one explicitly for determinism (tests, planning
	// for a different machine).
	Topology *Topology
	// HandoffCycles is the modeled per-packet cost of a same-socket
	// handoff-ring crossing, in cycles. 0 measures it once per process
	// via exec.MeasureHandoff (cached); tests pass an explicit value
	// for determinism. Negative values are rejected.
	HandoffCycles float64
	// CostModel replaces the whole placement cost model (advanced:
	// custom pricing, test stubs). When set, Topology still steers
	// queue affinity but HandoffCycles is ignored.
	CostModel CostModel
	// Steal lets a chain's first core drain a hot sibling chain's input
	// ring when its own runs dry — bounded batch steals from the
	// consumer end, serialized by a per-ring consumer lock, with
	// per-core Steals/Stolen counters in the Snapshot. Stolen packets
	// run through the stealer's own graph copy, so per-chain element
	// state stays single-core; what stealing gives up is flow-to-core
	// affinity (packets of one flow may interleave across cores), which
	// is why it defaults off. Like Placement, the flag is taken as given
	// on Reload/Replan rather than inherited.
	Steal bool
	// StealMin is the backlog a sibling's input ring must hold before an
	// idle core steals from it (default KP — a full poll batch).
	// Negative values are rejected.
	StealMin int
}

// validate rejects malformed options with a descriptive error instead
// of letting zero-value defaulting round them away inside exec.NewRing.
func (o Options) validate() error {
	if o.Cores < 0 {
		return fmt.Errorf("routebricks: Cores must be non-negative (0 means the default 1), got %d", o.Cores)
	}
	if o.KP < 0 {
		return fmt.Errorf("routebricks: KP must be non-negative (0 means the default 32), got %d", o.KP)
	}
	if o.InputCap < 0 {
		return fmt.Errorf("routebricks: InputCap must be non-negative (0 means the default 4096; values round up to a power of two), got %d", o.InputCap)
	}
	if o.HandoffCap < 0 {
		return fmt.Errorf("routebricks: HandoffCap must be non-negative (0 means the default 1024; values round up to a power of two), got %d", o.HandoffCap)
	}
	if o.Placement != Parallel && o.Placement != Pipelined && o.Placement != Auto {
		return fmt.Errorf("routebricks: unknown Placement %d", int(o.Placement))
	}
	if o.HandoffCycles < 0 {
		return fmt.Errorf("routebricks: HandoffCycles must be non-negative (0 means measure at Load), got %g", o.HandoffCycles)
	}
	if o.StealMin < 0 {
		return fmt.Errorf("routebricks: StealMin must be non-negative (0 means the default KP), got %d", o.StealMin)
	}
	if o.Topology != nil {
		if err := o.Topology.Validate(); err != nil {
			return fmt.Errorf("routebricks: %w", err)
		}
	}
	return nil
}

// withDefaults fills the documented Load defaults.
func (o Options) withDefaults() Options {
	if o.Cores == 0 {
		o.Cores = 1
	}
	if o.KP == 0 {
		o.KP = 32
	}
	if o.InputCap == 0 {
		o.InputCap = 4096
	}
	if o.HandoffCap == 0 {
		o.HandoffCap = 1024
	}
	if o.Registry == nil {
		o.Registry = elements.StandardRegistry()
	}
	if o.Topology == nil {
		t := hostTopology()
		o.Topology = &t
	}
	if o.HandoffCycles == 0 && o.CostModel == nil {
		// Measure what a ring crossing actually costs on this host —
		// once per process; the cached figure keeps repeated Loads (and
		// the Auto determinism contract) stable.
		o.HandoffCycles = measuredHandoffCycles()
	}
	return o
}

// hostTopology caches DetectTopology: the socket layout cannot change
// mid-process, and callers rely on repeated Loads agreeing.
var hostTopo struct {
	once sync.Once
	topo Topology
}

func hostTopology() Topology {
	hostTopo.once.Do(func() { hostTopo.topo = click.DetectTopology() })
	return hostTopo.topo
}

// measuredHandoffCycles runs the exec.MeasureHandoff ping-pong once
// per process and caches the result.
var handoffMeasurement struct {
	once   sync.Once
	cycles float64
}

func measuredHandoffCycles() float64 {
	handoffMeasurement.once.Do(func() {
		handoffMeasurement.cycles = exec.MeasureHandoff(exec.MeasureConfig{})
	})
	return handoffMeasurement.cycles
}

// merge layers next over cur for Reload/Replan: zero numeric fields,
// nil funcs, and an empty Entry inherit the pipeline's current values.
// Placement is taken as given — its zero value is Parallel, so callers
// that want to keep a non-default placement pass p.Placement() (or Auto
// to re-decide).
func merge(cur, next Options) Options {
	if next.Cores == 0 {
		next.Cores = cur.Cores
	}
	if next.KP == 0 {
		next.KP = cur.KP
	}
	if next.InputCap == 0 {
		next.InputCap = cur.InputCap
	}
	if next.HandoffCap == 0 {
		next.HandoffCap = cur.HandoffCap
	}
	if next.Registry == nil {
		next.Registry = cur.Registry
	}
	if next.Prebound == nil {
		next.Prebound = cur.Prebound
	}
	if next.FIB == nil {
		next.FIB = cur.FIB
	}
	if next.Entry == "" {
		next.Entry = cur.Entry
	}
	if next.Sink == nil {
		next.Sink = cur.Sink
	}
	if next.Topology == nil {
		next.Topology = cur.Topology
	}
	if next.HandoffCycles == 0 {
		next.HandoffCycles = cur.HandoffCycles
	}
	if next.CostModel == nil {
		next.CostModel = cur.CostModel
	}
	if next.StealMin == 0 {
		next.StealMin = cur.StealMin
	}
	return next
}

// Pipeline is a loaded, placed, runnable Click program, and the live
// control plane over it: Start/Stop/Step drive the current plan,
// Reload/Replan swap it under a drain barrier, Snapshot observes it.
//
// Concurrency: the data-plane accessors (Push, Step, Snapshot, Stats,
// ...) may be called from any goroutine and remain safe across
// concurrent Reload/Replan calls — a swap briefly blocks them at the
// drain barrier. Pointers obtained through Input, Router, Element, or
// Plan refer to the plan that was current at call time and go stale
// when a swap installs a new one; re-fetch after a reload, or stick to
// Push/Snapshot, which always address the live plan.
type Pipeline struct {
	// pmu guards the identity of the current plan: data-plane accessors
	// hold it shared, Reload/Replan exclusively while they drain the old
	// plan and install the new one.
	pmu  sync.RWMutex
	plan *click.Plan
	ctx  click.Context // deterministic-stepping context (Step)

	text string  // Click text of the current plan
	opts Options // normalized options of the current plan (Placement resolved)

	running    bool                // Start..Stop
	generation uint64              // bumped once per successful swap
	decision   string              // how the current placement was chosen
	calib      []CalibrationResult // Auto candidate measurements, when calibrated

	// drainDrops counts packets a bounded reload drain had to recycle
	// because the old graph would not drain them (a wedged terminal);
	// they are accounted in Drops and the Snapshot.
	drainDrops atomic.Uint64

	// flowMu serializes PushFlowShared producers; PushFlow bypasses it
	// (single producer needs no serialization).
	flowMu sync.Mutex

	// rssTable is the flow-steering indirection table behind PushFlow.
	// Like the FIB it outlives plan generations — a Reload/Replan
	// restripes it only when the chain count changes, so controller
	// re-steers survive swaps that keep the plan's width. Reads race
	// only with its own RCU swap; the chain indexes it yields are kept
	// in range by restriping inside the reload's exclusive section.
	rssTable *rss.Table
}

// Load parses a Click-language configuration and materializes it across
// opts.Cores cores under the chosen placement. The graph is
// instantiated once per chain — every core of a Parallel plan runs an
// independent copy of the whole graph; a Pipelined plan cuts the
// graph's trunk across cores wherever the topology allows (side
// branches stay with the trunk element that feeds them). Placement:
// Auto builds both candidate plans and picks the winner of a short
// deterministic calibration (see Describe for the recorded decision).
//
// The returned pipeline is idle: feed packets into Input(chain) /
// Push and call Start (real goroutines) or Step (deterministic,
// single-threaded) to move them.
func Load(clickText string, opts Options) (*Pipeline, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	plan, decided, decision, calib, err := buildPlan(clickText, opts)
	if err != nil {
		return nil, err
	}
	table, err := rss.New(0, plan.Chains())
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		plan:     plan,
		text:     clickText,
		opts:     decided,
		decision: decision,
		calib:    calib,
		rssTable: table,
	}, nil
}

// buildPlan parses text and materializes a plan under opts (which must
// already be validated and defaulted), resolving Placement: Auto by
// calibration. It returns the plan, the options with the decided
// placement, the decision record, and the candidate measurements.
func buildPlan(text string, opts Options) (*click.Plan, Options, string, []CalibrationResult, error) {
	prebound := opts.Prebound
	if opts.FIB != nil {
		// Bind the shared live FIB to the `fib` name for every chain —
		// unless the caller's Prebound already supplies one, which wins.
		inner := prebound
		fib := opts.FIB.engine()
		prebound = func(chain int) map[string]Element {
			var m map[string]Element
			if inner != nil {
				m = inner(chain)
			}
			if m == nil {
				m = make(map[string]Element, 1)
			}
			if _, ok := m["fib"]; !ok {
				m["fib"] = elements.NewLPMLookup(fib)
			}
			return m
		}
	}
	prog := click.ParseProgram(text, opts.Registry, prebound)
	prog.Entry = opts.Entry
	var (
		decision   string
		calib      []CalibrationResult
		segWeights []float64
	)
	if opts.Placement == Auto {
		// Auto already drives calibration traffic through the graph, so
		// the same deterministic stream also measures per-trunk-segment
		// cycles; candidate pipelined plans (and the final one, if
		// pipelined wins) cut the trunk by those measured weights instead
		// of by segment counts.
		segWeights = profileTrunkWeights(prog, opts)
		kind, d, results, err := calibrate(prog, opts, segWeights)
		if err != nil {
			return nil, opts, "", nil, err
		}
		opts.Placement = kind
		decision, calib = d, results
	}
	plan, err := click.NewPlan(planConfig(prog, opts, opts.Placement, segWeights))
	if err != nil {
		return nil, opts, "", nil, err
	}
	return plan, opts, decision, calib, nil
}

// planConfig maps resolved Options onto the planner's config, wiring
// in the topology and cost model every plan (candidate or final) is
// placed and scored against.
func planConfig(prog *click.Program, opts Options, kind PlanKind, segWeights []float64) click.PlanConfig {
	return click.PlanConfig{
		Kind:       kind,
		Cores:      opts.Cores,
		Program:    prog,
		KP:         opts.KP,
		InputCap:   opts.InputCap,
		HandoffCap: opts.HandoffCap,
		Sink:       opts.Sink,
		Topo:       *opts.Topology,
		Cost:       opts.costModel(),
		Steal:      opts.Steal,
		StealMin:   opts.StealMin,
		SegWeights: segWeights,
		// The pipeline always carries a flow-steering table (PushFlow),
		// so cloned per-flow elements are safe by construction. NewPlan
		// still rejects Steal × PerFlow — stealing breaks the affinity
		// the table provides.
		FlowSteered: true,
	}
}

// costModel resolves the pricing the planner and calibration consult:
// the explicit override when set, otherwise the default bus model over
// the resolved topology and (measured) handoff cost. Called only after
// withDefaults, so Topology is non-nil.
func (o Options) costModel() CostModel {
	if o.CostModel != nil {
		return o.CostModel
	}
	return click.NewBusCostModel(*o.Topology, o.HandoffCycles)
}

// Start launches the pipeline's cores as real goroutines.
func (p *Pipeline) Start() error {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	if p.running {
		return fmt.Errorf("routebricks: pipeline already started")
	}
	if err := p.plan.Start(); err != nil {
		return err
	}
	p.running = true
	return nil
}

// Stop halts the cores and waits for them to exit.
func (p *Pipeline) Stop() {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	if p.running {
		p.plan.Stop()
		p.running = false
	}
}

// Step executes one quantum of every core synchronously on the calling
// goroutine — the deterministic execution mode for tests and
// simulations. It reports packets moved and must not be mixed with
// Start. Exactly one goroutine may drive Step; Reload/Replan from
// another goroutine are still safe (the swap serializes against the
// stepper).
func (p *Pipeline) Step() int {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	n := 0
	for core := 0; core < p.plan.Cores(); core++ {
		n += p.plan.RunStep(core, &p.ctx)
	}
	p.ctx.TakeCycles()
	return n
}

// Chains reports the number of independent graph replicas (== Cores
// for parallel placements).
func (p *Pipeline) Chains() int {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	return p.plan.Chains()
}

// Cores reports the plan width.
func (p *Pipeline) Cores() int {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	return p.plan.Cores()
}

// Placement reports the current plan's (resolved) core allocation.
func (p *Pipeline) Placement() PlanKind {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	return p.plan.Kind()
}

// Steal reports whether the current plan runs with work stealing
// enabled — the live value of Options.Steal, which the replan
// controller may toggle (see ControllerConfig.StealEscalation).
func (p *Pipeline) Steal() bool {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	return p.opts.Steal
}

// Generation reports how many plan swaps (Reload/Replan) have been
// installed; 0 is the plan Load built. Snapshot counters reset at each
// generation boundary.
func (p *Pipeline) Generation() uint64 {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	return p.generation
}

// Input returns chain i's input ring (nil when i is out of range). Each
// ring is single-producer: feed it from exactly one goroutine. The
// pointer refers to the current plan and goes stale after Reload/
// Replan; producers that must stay valid across swaps use Push.
func (p *Pipeline) Input(i int) *Ring {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	if i < 0 || i >= p.plan.Chains() {
		return nil
	}
	return p.plan.Input(i)
}

// Push feeds one packet to chain i, reporting false when the ring is
// full or a reload is in progress (the caller keeps ownership of a
// rejected packet and may retry). It never blocks on the drain
// barrier — a swap in progress reads as backpressure, so socket-reader
// feeders keep servicing their sockets. Out-of-range chains reject
// rather than panic, so feeders keyed on a stale Chains() survive a
// swap that narrowed the plan.
func (p *Pipeline) Push(i int, pk *Packet) bool {
	if !p.pmu.TryRLock() {
		return false // reload in progress: the drain barrier owns the plan
	}
	defer p.pmu.RUnlock()
	if i < 0 || i >= p.plan.Chains() {
		return false
	}
	return p.plan.Input(i).Push(pk)
}

// Router returns chain i's element graph, for inspection (counters,
// per-chain state) and DOT export. Stale after a swap.
func (p *Pipeline) Router(i int) *Router {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	if i < 0 || i >= p.plan.Chains() {
		return nil
	}
	return p.plan.Router(i)
}

// Element returns the named element of chain i's graph, or nil.
func (p *Pipeline) Element(chain int, name string) Element {
	if r := p.Router(chain); r != nil {
		return r.Get(name)
	}
	return nil
}

// Stats returns the per-core counter blocks of the current plan, in
// core order — a shim over Snapshot for callers that want the live
// atomics rather than a copied view.
func (p *Pipeline) Stats() []*CoreStat {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	return p.plan.Stats()
}

// Drops reports packets the pipeline itself lost: handoff-ring
// overflow in the current plan (0 in steady state — polling is
// backpressure-capped) plus packets a bounded reload drain had to
// recycle. A shim over Snapshot().Drops.
func (p *Pipeline) Drops() uint64 {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	return p.plan.Drops() + p.drainDrops.Load()
}

// Queued reports packets currently sitting in the pipeline's rings. A
// shim over Snapshot().Queued.
func (p *Pipeline) Queued() int {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	return p.plan.Queued()
}

// Describe renders the placement map — which trunk segments run on
// which core, where the handoff rings sit — plus the plan generation
// and, for calibrated placements, the recorded Auto decision.
func (p *Pipeline) Describe() string {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	desc := p.plan.Describe()
	desc += fmt.Sprintf("  generation %d\n", p.generation)
	if p.decision != "" {
		desc += "  " + p.decision + "\n"
	}
	return desc
}

// DOT renders a chain's element graph in Graphviz format, titled with
// the plan kind, generation, and chain so hot-reloaded graphs are
// distinguishable. The zero-argument form keeps the historical
// behavior of rendering chain 0.
func (p *Pipeline) DOT(chain ...int) string {
	c := 0
	if len(chain) > 0 {
		c = chain[0]
	}
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	if c < 0 || c >= p.plan.Chains() {
		return ""
	}
	r := p.plan.Router(c)
	if r == nil {
		return ""
	}
	return r.DOTTitled(fmt.Sprintf("%s plan, gen %d, chain %d", p.plan.Kind(), p.generation, c))
}

// Routes returns the live FIB handle the pipeline was loaded with
// (Options.FIB), or nil when the pipeline binds its route table some
// other way. The handle stays valid across Reload/Replan — the FIB is
// inherited like Prebound — so route churn and plan swaps compose.
func (p *Pipeline) Routes() *RouteAdmin {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	return p.opts.FIB
}

// Plan exposes the underlying placement plan for advanced callers.
// Stale after Reload/Replan.
func (p *Pipeline) Plan() *click.Plan {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	return p.plan
}
