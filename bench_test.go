// Benchmarks regenerating every table and figure of the RouteBricks
// evaluation. Each benchmark runs the corresponding experiment and
// reports its headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced numbers alongside the usual ns/op. The analytic
// experiments are instantaneous; the RB4 discrete-event experiments
// simulate a few virtual milliseconds per iteration.
package routebricks

import (
	"fmt"
	"net/netip"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"routebricks/internal/click"
	"routebricks/internal/elements"
	"routebricks/internal/exec"
	"routebricks/internal/experiments"
	"routebricks/internal/hw"
	"routebricks/internal/lpm"
	"routebricks/internal/nic"
	"routebricks/internal/pkt"
	"routebricks/internal/rss"
)

// cell parses a numeric report cell ("9.71", "0.0059%").
func cell(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func BenchmarkTable1_PollingConfigs(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Table1()
	}
	b.ReportMetric(cell(b, rep.Rows[2][1]), "Gbps-tuned")
	b.ReportMetric(cell(b, rep.Rows[0][1]), "Gbps-nobatch")
}

func BenchmarkTable2_ComponentBounds(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Table2()
	}
	b.ReportMetric(cell(b, rep.Rows[1][2]), "mem-emp-Gbps")
}

func BenchmarkTable3_CPIAnalysis(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Table3()
	}
	b.ReportMetric(cell(b, rep.Rows[0][2]), "fwd-instr")
	b.ReportMetric(cell(b, rep.Rows[2][2]), "ipsec-instr")
}

func BenchmarkFig3_TopologyCost(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig3()
	}
	// Current-server cluster size at N=1024 (paper: ≈3 servers/port).
	for _, row := range rep.Rows {
		if row[0] == "1024" {
			v, _ := strconv.Atoi(strings.Fields(row[1])[0])
			b.ReportMetric(float64(v), "servers@1024")
		}
	}
}

func BenchmarkFig6_QueueScenarios(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig6()
	}
	b.ReportMetric(cell(b, rep.Rows[2][1]), "parallel-GbpsFP")
	b.ReportMetric(cell(b, rep.Rows[5][1]), "overlap1q-GbpsFP")
}

func BenchmarkFig7_CumulativeImpact(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig7()
	}
	b.ReportMetric(cell(b, rep.Rows[3][1]), "tuned-Mpps")
	b.ReportMetric(cell(b, rep.Rows[0][1]), "xeon-Mpps")
}

func BenchmarkFig8_Workloads(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig8()
	}
	for _, row := range rep.Rows {
		if row[0] == "64B" && row[1] == "rtr" {
			b.ReportMetric(cell(b, row[2]), "rtr64-Gbps")
		}
		if row[0] == "Abilene" && row[1] == "ipsec" {
			b.ReportMetric(cell(b, row[2]), "ipsecAb-Gbps")
		}
	}
}

func BenchmarkFig9_CPULoad(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig9()
	}
	b.ReportMetric(cell(b, rep.Rows[0][1]), "fwd-cycles")
}

func BenchmarkFig10_BusLoads(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig10()
	}
	b.ReportMetric(cell(b, rep.Rows[0][2]), "fwd-memBpp")
}

func BenchmarkNUMA_Placement(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.NUMA()
	}
	b.ReportMetric(cell(b, rep.Rows[0][1]), "fourCore-Gbps")
}

func BenchmarkProjection_NextGen(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Projection()
	}
	b.ReportMetric(cell(b, rep.Rows[0][1]), "fwd-Gbps")
	b.ReportMetric(cell(b, rep.Rows[1][1]), "rtr-Gbps")
}

func BenchmarkRB4Rate_Analytic(b *testing.B) {
	var g64, gab float64
	for i := 0; i < b.N; i++ {
		_, g64, _ = experiments.RB4Analytic(64)
		_, gab, _ = experiments.RB4Analytic(experiments.AbileneMean)
	}
	b.ReportMetric(g64, "Gbps-64B")
	b.ReportMetric(gab, "Gbps-abilene")
}

func BenchmarkRB4Reordering_DES(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.RB4Reordering(true)
	}
	b.ReportMetric(cell(b, rep.Rows[0][1]), "pct-flowlets")
	b.ReportMetric(cell(b, rep.Rows[1][1]), "pct-plain")
}

func BenchmarkRB4Latency_DES(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.RB4Latency(true)
	}
	b.ReportMetric(cell(b, rep.Rows[0][1]), "mean-us")
}

func BenchmarkAblation_BatchingGrid(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.AblationBatching()
	}
	_ = rep
}

// BenchmarkDispatch is the headline dataflow microbenchmark: one kp=32
// poll batch through the standard IP forwarding path (PollDevice →
// CheckIPHeader → LPMLookup → DecIPTTL → ToDevice), dispatched the old
// way (one Push call and one GC-bound packet per hop) versus the
// batch-native way (one call per hop per batch, pool-recycled buffers).
// Each b.N iteration moves one full 32-packet batch, so ns/op and
// allocs/op are directly comparable between the two sub-benchmarks.
func BenchmarkDispatch(b *testing.B) {
	const kp = 32
	table := lpm.NewDir248()
	if err := table.Insert(netip.MustParsePrefix("10.0.0.0/16"), 1); err != nil {
		b.Fatal(err)
	}
	table.Freeze()
	src := netip.MustParseAddr("10.1.0.1")
	dst := netip.MustParseAddr("10.0.0.2")

	run := func(b *testing.B, batch bool) {
		in := nic.NewRing(2 * kp)
		out := nic.NewRing(2 * kp)
		poll := elements.NewPollDevice(in, kp)
		poll.ChargeForward = false // measure dispatch, not the cost model
		check := &elements.CheckIPHeader{}
		look := elements.NewLPMLookup(table)
		ttl := &elements.DecIPTTL{}
		dev := elements.NewToDevice(out, 16)
		if batch {
			poll.SetBatchOutput(0, click.BatchDispatch(check, 0))
			check.SetBatchOutput(0, click.BatchDispatch(look, 0))
			look.SetBatchOutput(0, click.BatchDispatch(ttl, 0))
			ttl.SetBatchOutput(0, click.BatchDispatch(dev, 0))
		} else {
			poll.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { check.Push(ctx, 0, p) })
			check.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { look.Push(ctx, 0, p) })
			look.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { ttl.Push(ctx, 0, p) })
			ttl.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { dev.Push(ctx, 0, p) })
		}
		ctx := &click.Context{}
		drain := make([]*pkt.Packet, kp)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Refill: the batch path recycles delivered packets through
			// the pool (steady-state zero allocation); the per-packet
			// path models the old dataflow, one heap packet per packet.
			for j := 0; j < kp; j++ {
				p := pkt.New(pkt.MinSize, src, dst, uint16(1000+j), 80)
				p.IPv4().SetTTL(64)
				p.IPv4().UpdateChecksum()
				in.Enqueue(p)
			}
			if got := poll.Run(ctx); got != kp {
				b.Fatalf("poll moved %d packets, want %d", got, kp)
			}
			ctx.TakeCycles()
			n := out.DequeueBatch(drain)
			if n != kp {
				b.Fatalf("forwarded %d packets, want %d", n, kp)
			}
			for j := 0; j < n; j++ {
				if batch {
					pkt.DefaultPool.Put(drain[j])
				}
				drain[j] = nil
			}
		}
	}

	b.Run("perPacket", func(b *testing.B) { run(b, false) })
	b.Run("batch", func(b *testing.B) { run(b, true) })
}

// BenchmarkSteer prices the RSS role's per-packet steering work — what
// PushFlow adds over a bare ring push: the symmetric 5-tuple hash
// (recomputed every op, the worst case of a freshly received packet),
// the indirection-table lookup, and the bucket counter tick. Steering
// runs on the reader goroutine for every packet, so it must stay
// allocation-free — the benchmark hard-fails if one op allocates.
// uniform spreads the workset over 1024 flows (counter ticks scatter
// across the table), skewed concentrates it on 8 (ticks hammer a few
// hot cache lines); the two shapes bound a real mix, at every table
// width the placement sweep uses.
func BenchmarkSteer(b *testing.B) {
	for _, dist := range []struct {
		name  string
		flows int // power of two, for the index mask
	}{{"uniform", 1024}, {"skewed", 8}} {
		for _, chains := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/chains=%d", dist.name, chains), func(b *testing.B) {
				table, err := rss.New(0, chains)
				if err != nil {
					b.Fatal(err)
				}
				src := netip.MustParseAddr("10.1.0.1")
				dst := netip.MustParseAddr("10.0.0.2")
				pkts := make([]*pkt.Packet, dist.flows)
				for i := range pkts {
					pkts[i] = pkt.New(pkt.MinSize, src, dst, uint16(2000+i), 443)
				}
				steer := func(p *pkt.Packet) int {
					p.InvalidateFlowHash()
					bucket, chain := table.Steer(p.RSSHash())
					table.Tick(bucket)
					return chain
				}
				if allocs := testing.AllocsPerRun(100, func() { steer(pkts[0]) }); allocs != 0 {
					b.Fatalf("steering allocates (%.0f allocs/op, want 0)", allocs)
				}
				mask := dist.flows - 1
				var sink int
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sink += steer(pkts[i&mask])
				}
				_ = sink
			})
		}
	}
}

// BenchmarkHandoff is the cost the placement model prices: one op is
// one packet moved through an SPSC exec.Ring from this goroutine to an
// echo goroutine and back (kp-sized batches, mirroring pollTask), so
// ns/op is the round trip and the reported cycles/pkt metric — one
// crossing, at the paper's 2.8 GHz Nehalem clock — is directly
// comparable to the figure exec.MeasureHandoff feeds the cost model at
// Load time.
func BenchmarkHandoff(b *testing.B) {
	const kp = 32
	ping := exec.NewRing(kp)
	pong := exec.NewRing(kp)
	pkts := make([]*pkt.Packet, kp)
	for i := range pkts {
		pkts[i] = &pkt.Packet{}
	}
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		batch := pkt.NewBatch(kp)
		for !stop.Load() {
			batch.Reset()
			if ping.PopBatchInto(batch, kp) == 0 {
				runtime.Gosched()
				continue
			}
			pong.PushBatch(batch)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for remaining := b.N; remaining > 0; {
		n := kp
		if remaining < n {
			n = remaining
		}
		for _, p := range pkts[:n] {
			for !ping.Push(p) {
				runtime.Gosched()
			}
		}
		for got := 0; got < n; {
			if p := pong.Pop(); p != nil {
				got++
			} else {
				runtime.Gosched()
			}
		}
		remaining -= n
	}
	b.StopTimer()
	stop.Store(true)
	<-done
	b.ReportMetric(b.Elapsed().Seconds()*2.8e9/float64(2*b.N), "cycles/pkt")
}

// placementSink terminates a placement-benchmark chain: it counts the
// delivery and returns the packet to the chain's free ring so the
// producer can re-inject it — a closed loop with zero steady-state
// allocation. The sink runs on the chain's last core, which makes it
// the single producer of the free ring.
type placementSink struct {
	free      *exec.Ring
	delivered *atomic.Uint64
	lost      *atomic.Uint64
}

func (s *placementSink) InPorts() int  { return 1 }
func (s *placementSink) OutPorts() int { return 0 }

func (s *placementSink) Push(_ *click.Context, _ int, p *pkt.Packet) {
	s.delivered.Add(1)
	if !s.free.Push(p) {
		s.lost.Add(1)
	}
}

func (s *placementSink) PushBatch(_ *click.Context, _ int, b *pkt.Batch) {
	n := b.Compact()
	if n == 0 {
		return
	}
	s.delivered.Add(uint64(n))
	got := s.free.PushBatch(b)
	if got < n {
		s.lost.Add(uint64(n - got))
	}
	b.Reset()
}

// placementConfig is the standard IP forwarding path in the Click
// language — what BenchmarkPlacement loads through the graph-first
// Program API. The trunk (check → rt → ttl) leaves output 0 dangling
// for the benchmark's closed-loop sink; each error port routes to its
// own prebound counting drop so the trunk stays fully cuttable.
const placementConfig = `
	check :: CheckIPHeader;
	rt    :: LPMLookup(fib);
	ttl   :: DecIPTTL;
	check[0] -> rt;
	check[1] -> badhdr;
	rt[0]    -> ttl;
	rt[1]    -> badroute;
	ttl[1]   -> badttl;
`

// BenchmarkPlacement is the §4.2 core-allocation experiment as a real
// multi-core code path: the standard IP forwarding pipeline
// (CheckIPHeader → LPMLookup → DecIPTTL), written in the Click
// language and loaded through routebricks.Load, materialized as either
// a Parallel plan (each core runs the whole graph on its own input
// ring) or a Pipelined plan (the trunk cut across cores, joined by
// SPSC handoff rings), driven on real goroutines by the click Runner.
// One op is one 64-byte packet moved source→sink, so the Mpps metric
// compares directly across kinds and core counts. The paper's finding
// — parallel ≥ pipelined, because inter-core handoffs dominate —
// should reproduce at every core count.
func BenchmarkPlacement(b *testing.B) {
	for _, cores := range []int{1, 2, 4, 8} {
		for _, kind := range []click.PlanKind{click.Parallel, click.Pipelined} {
			b.Run(fmt.Sprintf("%s/cores=%d", kind, cores), func(b *testing.B) {
				runPlacement(b, kind, cores)
			})
		}
	}
}

func runPlacement(b *testing.B, kind click.PlanKind, cores int) {
	const kp = 32
	// workset is the fleet-wide in-flight packet count. It deliberately
	// does NOT scale with cores: the buffer working set is what a real
	// router's fixed pool would be, so adding cores cannot silently
	// inflate cache pressure per packet. The gather-anywhere feeder
	// below redistributes the fixed workset across however many chains
	// the plan has.
	const workset = 512
	table := lpm.NewDir248()
	if err := table.Insert(netip.MustParsePrefix("10.0.0.0/16"), 1); err != nil {
		b.Fatal(err)
	}
	table.Freeze()

	var delivered, lost atomic.Uint64
	var frees []*exec.Ring
	pipe, err := Load(placementConfig, Options{
		Cores:     cores,
		Placement: kind,
		KP:        kp,
		// Idle cores drain overloaded siblings: on an oversubscribed host
		// (GOMAXPROCS < cores) this is what keeps adding cores from
		// reducing throughput — whichever worker the scheduler runs next
		// finds work, whether or not it is the worker the feeder targeted.
		Steal: true,
		Prebound: func(chain int) map[string]Element {
			// Error ports terminate in counting recycling sinks; they see
			// no traffic in this loss-free loop, but a misroute must show
			// up in the lost total rather than vanish.
			drop := func() Element {
				return &elements.Sink{
					Fn:      func(_ *click.Context, _ *pkt.Packet) { lost.Add(1) },
					Recycle: pkt.DefaultPool,
				}
			}
			return map[string]Element{
				"fib":      elements.NewLPMLookup(table),
				"badhdr":   drop(),
				"badroute": drop(),
				"badttl":   drop(),
			}
		},
		Sink: func(int) Element {
			// A stolen packet is delivered by the stealer's sink, so any
			// one free ring may transiently hold the entire workset —
			// size each for the whole fleet.
			s := &placementSink{free: exec.NewRing(workset), delivered: &delivered, lost: &lost}
			frees = append(frees, s.free)
			return s
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	driveForwarding(b, pipe, frees, &delivered, &lost)
}

// driveForwarding is the closed-loop measurement core shared by
// BenchmarkPlacement and BenchmarkChurn: seed the fixed workset into the
// chains' free rings, start the plan, move b.N packets source→sink, and
// assert the loop stayed loss-free. One op is one 64-byte packet.
func driveForwarding(b *testing.B, pipe *Pipeline, frees []*exec.Ring, delivered, lost *atomic.Uint64) {
	const kp = 32
	const workset = 512
	plan := pipe.Plan()
	src := netip.MustParseAddr("10.1.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	for j := 0; j < workset; j++ {
		p := pkt.New(pkt.MinSize, src, dst, uint16(1000+j), 80)
		p.IPv4().SetTTL(64)
		p.IPv4().UpdateChecksum()
		frees[j%len(frees)].Push(p)
	}
	if err := plan.Start(); err != nil {
		b.Fatal(err)
	}
	// Feed in quanta much deeper than the workers' poll batch: a worker
	// keeps draining without yielding while its ring is non-empty, so
	// each feeder visit buys several uninterrupted worker steps instead
	// of one — the scheduler switch is amortized over feedBatch packets,
	// not kp. The workers still process kp at a time.
	const feedBatch = 8 * kp
	scratch := pkt.NewBatch(feedBatch)
	b.ReportAllocs()
	b.ResetTimer()
	remaining := b.N
	// Scatter without stalling: recycled buffers are gathered from
	// whichever free rings hold them (work stealing means a packet fed
	// into one chain may be delivered — and recycled — by another), then
	// pushed to the target chain. A chain whose input ring is full is
	// skipped, not waited on; the feeder yields the CPU only after a
	// whole rotation moves nothing, so one slow chain costs one skip
	// instead of a scheduler round trip. The feeder is the sole producer
	// of every input ring and sole consumer of every free ring, so no
	// cursor or ring is shared with another producer.
	for idleChains := 0; remaining > 0; {
		for chain := 0; chain < plan.Chains() && remaining > 0; chain++ {
			limit := feedBatch
			if remaining < limit {
				limit = remaining
			}
			if room := plan.Input(chain).Free(); room < limit {
				limit = room
			}
			if limit == 0 {
				idleChains++
				continue
			}
			scratch.Reset()
			n := 0
			for src := 0; src < len(frees) && n < limit; src++ {
				n += frees[(chain+src)%len(frees)].PopBatchInto(scratch, limit-n)
			}
			if n == 0 {
				idleChains++
				continue
			}
			idleChains = 0
			for _, p := range scratch.Packets() {
				// The previous trip decremented the TTL; restore it so the
				// packet is route-valid forever.
				ih := p.IPv4()
				ih.SetTTL(64)
				ih.UpdateChecksum()
			}
			plan.Input(chain).PushBatch(scratch)
			remaining -= n
		}
		if idleChains >= plan.Chains() {
			idleChains = 0
			runtime.Gosched()
		}
	}
	for delivered.Load()+lost.Load() < uint64(b.N) {
		runtime.Gosched()
	}
	b.StopTimer()
	plan.Stop()
	if got := lost.Load() + plan.Drops(); got != 0 {
		b.Fatalf("%d packets lost in a loss-free benchmark", got)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpps")
}

// BenchmarkChurn is the live-FIB proof: the BenchmarkPlacement
// forwarding loop bound to a million-route live table through
// Options.FIB, measured with the control plane idle and again with a
// background writer committing paced route batches the whole time. The
// benchmark is loss-free by construction — the seeded default route
// means a lookup can only miss if a reader ever observed a partially
// built table, so the zero-loss assert doubles as the RCU correctness
// check under real traffic. The live run additionally reports the
// sustained route-update rate as updates/s; benchjson gates the Mpps
// gap between the two runs (-churn-tol).
func BenchmarkChurn(b *testing.B) {
	for _, mode := range []struct {
		name string
		live bool
	}{{"idle", false}, {"live", true}} {
		b.Run(fmt.Sprintf("fib=1M/%s/cores=2", mode.name), func(b *testing.B) {
			runChurn(b, mode.live, 2)
		})
	}
}

func runChurn(b *testing.B, live bool, cores int) {
	const kp = 32
	const workset = 512
	// The paper-scale FIB: 2^20 random prefixes plus a default route,
	// seeded as one commit. The default route guarantees every lookup
	// resolves, whatever the churner below has added or withdrawn.
	fib, err := NewFIB(lpm.RandomTable(1<<20, 8, 11, true)...)
	if err != nil {
		b.Fatal(err)
	}

	var delivered, lost atomic.Uint64
	var frees []*exec.Ring
	pipe, err := Load(placementConfig, Options{
		Cores:     cores,
		Placement: click.Parallel,
		KP:        kp,
		Steal:     true,
		FIB:       fib,
		Prebound: func(chain int) map[string]Element {
			drop := func() Element {
				return &elements.Sink{
					Fn:      func(_ *click.Context, _ *pkt.Packet) { lost.Add(1) },
					Recycle: pkt.DefaultPool,
				}
			}
			return map[string]Element{
				"badhdr":   drop(),
				"badroute": drop(),
				"badttl":   drop(),
			}
		},
		Sink: func(int) Element {
			s := &placementSink{free: exec.NewRing(workset), delivered: &delivered, lost: &lost}
			frees = append(frees, s.free)
			return s
		},
	})
	if err != nil {
		b.Fatal(err)
	}

	// The churner: batches of 256 /24s in 100.64/10 (clear of the
	// benchmark's 10.0.0.2 destination), alternately committed and
	// withdrawn on a fixed cadence. Each flip is one generation — the
	// burst-coalescing contract — and runs concurrently with the
	// forwarding cores below.
	var ops atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	if live {
		churn := make([]Route, 256)
		for i := range churn {
			churn[i] = Route{
				Prefix:  netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 64, byte(i), 0}), 24),
				NextHop: i % 8,
			}
		}
		dels := make([]netip.Prefix, len(churn))
		for i, r := range churn {
			dels[i] = r.Prefix
		}
		go func() {
			defer close(done)
			present := false
			for {
				var err error
				if present {
					_, err = fib.Update(nil, dels)
				} else {
					_, err = fib.Update(churn, nil)
				}
				if err != nil {
					b.Error(err)
					return
				}
				present = !present
				ops.Add(uint64(len(churn)))
				// Paced, not flooded: each commit clones the touched tbl24
				// pages and retires them to the GC, so an unthrottled writer
				// measures allocator contention, not the read path. Four
				// commits a second is ~1k route updates/s sustained — far
				// beyond BGP churn — while leaving the forwarding cores
				// most of an oversubscribed host.
				select {
				case <-stop:
					return
				case <-time.After(250 * time.Millisecond):
				}
			}
		}()
	} else {
		close(done)
	}

	driveForwarding(b, pipe, frees, &delivered, &lost)

	close(stop)
	<-done
	if live {
		b.ReportMetric(float64(ops.Load())/b.Elapsed().Seconds(), "updates/s")
	}
}

// BenchmarkPool measures the packet pool's allocation fast path under
// contention: w goroutines each doing Get(64)+Put in a tight loop, one
// op per round trip. "legacy" forces a single shard — every goroutine
// funnels through one lock, the pre-sharding behavior. "sharded" gives
// each goroutine its own shard handle, so the steady-state round trip
// takes only the goroutine's own shard lock. The gap between the two
// curves at 2/4/8 goroutines is the contention the sharding removes.
func BenchmarkPool(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, mode := range []string{"legacy", "sharded"} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", mode, workers), func(b *testing.B) {
				shards := 1
				if mode == "sharded" {
					shards = workers
				}
				pool := pkt.NewPoolShards(4096, shards)
				var start, done sync.WaitGroup
				start.Add(1)
				done.Add(workers)
				per := b.N / workers
				b.ReportAllocs()
				for w := 0; w < workers; w++ {
					n := per
					if w == 0 {
						n += b.N % workers
					}
					shard := pool.Shard(w)
					go func() {
						defer done.Done()
						start.Wait()
						for i := 0; i < n; i++ {
							p := shard.Get(64)
							shard.Put(p)
						}
					}()
				}
				b.ResetTimer()
				start.Done()
				done.Wait()
			})
		}
	}
}

// Single-server MaxRate microbenchmark: the whole bottleneck analysis is
// cheap enough to sit inside control loops.
func BenchmarkServerModel(b *testing.B) {
	spec := hw.Nehalem()
	cfg := hw.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hw.MaxRate(spec, hw.Route, 64, cfg)
	}
}
