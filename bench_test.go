// Benchmarks regenerating every table and figure of the RouteBricks
// evaluation. Each benchmark runs the corresponding experiment and
// reports its headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced numbers alongside the usual ns/op. The analytic
// experiments are instantaneous; the RB4 discrete-event experiments
// simulate a few virtual milliseconds per iteration.
package routebricks

import (
	"strconv"
	"strings"
	"testing"

	"routebricks/internal/experiments"
	"routebricks/internal/hw"
)

// cell parses a numeric report cell ("9.71", "0.0059%").
func cell(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func BenchmarkTable1_PollingConfigs(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Table1()
	}
	b.ReportMetric(cell(b, rep.Rows[2][1]), "Gbps-tuned")
	b.ReportMetric(cell(b, rep.Rows[0][1]), "Gbps-nobatch")
}

func BenchmarkTable2_ComponentBounds(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Table2()
	}
	b.ReportMetric(cell(b, rep.Rows[1][2]), "mem-emp-Gbps")
}

func BenchmarkTable3_CPIAnalysis(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Table3()
	}
	b.ReportMetric(cell(b, rep.Rows[0][2]), "fwd-instr")
	b.ReportMetric(cell(b, rep.Rows[2][2]), "ipsec-instr")
}

func BenchmarkFig3_TopologyCost(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig3()
	}
	// Current-server cluster size at N=1024 (paper: ≈3 servers/port).
	for _, row := range rep.Rows {
		if row[0] == "1024" {
			v, _ := strconv.Atoi(strings.Fields(row[1])[0])
			b.ReportMetric(float64(v), "servers@1024")
		}
	}
}

func BenchmarkFig6_QueueScenarios(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig6()
	}
	b.ReportMetric(cell(b, rep.Rows[2][1]), "parallel-GbpsFP")
	b.ReportMetric(cell(b, rep.Rows[5][1]), "overlap1q-GbpsFP")
}

func BenchmarkFig7_CumulativeImpact(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig7()
	}
	b.ReportMetric(cell(b, rep.Rows[3][1]), "tuned-Mpps")
	b.ReportMetric(cell(b, rep.Rows[0][1]), "xeon-Mpps")
}

func BenchmarkFig8_Workloads(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig8()
	}
	for _, row := range rep.Rows {
		if row[0] == "64B" && row[1] == "rtr" {
			b.ReportMetric(cell(b, row[2]), "rtr64-Gbps")
		}
		if row[0] == "Abilene" && row[1] == "ipsec" {
			b.ReportMetric(cell(b, row[2]), "ipsecAb-Gbps")
		}
	}
}

func BenchmarkFig9_CPULoad(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig9()
	}
	b.ReportMetric(cell(b, rep.Rows[0][1]), "fwd-cycles")
}

func BenchmarkFig10_BusLoads(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig10()
	}
	b.ReportMetric(cell(b, rep.Rows[0][2]), "fwd-memBpp")
}

func BenchmarkNUMA_Placement(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.NUMA()
	}
	b.ReportMetric(cell(b, rep.Rows[0][1]), "fourCore-Gbps")
}

func BenchmarkProjection_NextGen(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Projection()
	}
	b.ReportMetric(cell(b, rep.Rows[0][1]), "fwd-Gbps")
	b.ReportMetric(cell(b, rep.Rows[1][1]), "rtr-Gbps")
}

func BenchmarkRB4Rate_Analytic(b *testing.B) {
	var g64, gab float64
	for i := 0; i < b.N; i++ {
		_, g64, _ = experiments.RB4Analytic(64)
		_, gab, _ = experiments.RB4Analytic(experiments.AbileneMean)
	}
	b.ReportMetric(g64, "Gbps-64B")
	b.ReportMetric(gab, "Gbps-abilene")
}

func BenchmarkRB4Reordering_DES(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.RB4Reordering(true)
	}
	b.ReportMetric(cell(b, rep.Rows[0][1]), "pct-flowlets")
	b.ReportMetric(cell(b, rep.Rows[1][1]), "pct-plain")
}

func BenchmarkRB4Latency_DES(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.RB4Latency(true)
	}
	b.ReportMetric(cell(b, rep.Rows[0][1]), "mean-us")
}

func BenchmarkAblation_BatchingGrid(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.AblationBatching()
	}
	_ = rep
}

// Single-server MaxRate microbenchmark: the whole bottleneck analysis is
// cheap enough to sit inside control loops.
func BenchmarkServerModel(b *testing.B) {
	spec := hw.Nehalem()
	cfg := hw.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hw.MaxRate(spec, hw.Route, 64, cfg)
	}
}
