package routebricks

import (
	"fmt"

	"routebricks/internal/rss"
)

// This file is the flow-affinity half of the data-plane surface: Push
// scatters by whatever chain index the caller computed, PushFlow
// scatters through the pipeline's RSS-style indirection table so both
// directions of a 5-tuple — and every fragment of a datagram — land on
// the same chain. That affinity is what makes cloning per-flow
// elements (Reassembler, FlowCounter) across chains correct; the
// planner's cloning gate (click.PlanConfig.FlowSteered) assumes it.

// Move migrates one steering bucket between chains; see
// Pipeline.ReSteer and rss.PlanMoves.
type Move = rss.Move

// PushFlow feeds one packet to the chain its flow steers to: the
// packet's cached symmetric flow hash (pkt.RSSHash — direction- and
// fragment-insensitive) indexes the indirection table, and the bucket's
// packet counter ticks on success. Same non-blocking contract as Push:
// false means ring full or a swap in progress, and the caller keeps
// ownership. Each chain's input ring is single-producer, so all
// PushFlow traffic must come from one goroutine (the steering table
// concentrates every producer onto the same rings).
func (p *Pipeline) PushFlow(pk *Packet) bool {
	if !p.pmu.TryRLock() {
		return false // reload in progress: the drain barrier owns the plan
	}
	defer p.pmu.RUnlock()
	// The reload path restripes the table inside its exclusive section
	// whenever the chain count changes, so under the shared lock the
	// table's chain indexes are always in range for the current plan.
	bucket, chain := p.rssTable.Steer(pk.RSSHash())
	if !p.plan.Input(chain).Push(pk) {
		return false
	}
	p.rssTable.Tick(bucket)
	return true
}

// PushFlowShared is PushFlow for multiple producer goroutines: it
// serializes the ring push through a mutex so N kernel receive queues
// (SO_REUSEPORT readers, see internal/netio) can feed one pipeline
// without violating the input rings' single-producer contract. The
// serialized section is only the table lookup and ring push — the
// expensive per-packet work (the syscall, the copy into the pool
// buffer, flow hashing) already happened on the calling goroutine, so
// queues still parallelize where it matters. Single-queue callers
// should keep using PushFlow and skip the lock.
func (p *Pipeline) PushFlowShared(pk *Packet) bool {
	p.flowMu.Lock()
	defer p.flowMu.Unlock()
	return p.PushFlow(pk)
}

// RSS exposes the pipeline's flow-steering indirection table for
// advanced callers (rbrouter's /api/v1/rss serves it; tests inspect
// it). The table is shared with the datapath and persists across
// Reload/Replan; rewrite it through ReSteer, not Apply, so moves land
// under a drain barrier.
func (p *Pipeline) RSS() *rss.Table {
	return p.rssTable
}

// ReSteer migrates steering buckets between chains under the same
// drain barrier as Reload: producers are blocked, cores stopped,
// in-flight packets stepped out of the rings, and only then does the
// table rewrite publish. The drain is what preserves per-flow ordering
// — every packet of a moved flow that entered under the old assignment
// has retired before the first packet steered by the new one is
// accepted — and why a re-steer loses nothing: nothing is in flight
// when the assignment flips. Stale moves (From no longer owning the
// bucket) reject the whole batch, so concurrent steering admins
// cannot half-apply.
func (p *Pipeline) ReSteer(moves []Move) error {
	if len(moves) == 0 {
		return nil
	}
	p.pmu.Lock()
	defer p.pmu.Unlock()
	for _, m := range moves {
		if m.To < 0 || m.To >= p.plan.Chains() {
			return fmt.Errorf("routebricks: re-steer bucket %d to chain %d, but the plan has %d chains", m.Bucket, m.To, p.plan.Chains())
		}
	}
	wasRunning := p.running
	if wasRunning {
		p.plan.Stop()
		p.running = false
	}
	p.drainLocked()
	err := p.rssTable.Apply(moves)
	if wasRunning {
		if serr := p.plan.Start(); serr != nil {
			return serr
		}
		p.running = true
	}
	return err
}
