package routebricks

import (
	"fmt"
	"net/netip"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"routebricks/internal/click"
	"routebricks/internal/elements"
	"routebricks/internal/pkt"
)

// flowConfig is the per-flow-state gauntlet: a Reassembler (state keyed
// per datagram) feeding a FlowCounter (state keyed per 5-tuple). Clones
// of this graph are correct exactly when every packet of a flow — and
// every fragment of a datagram — reaches the same clone, which is what
// PushFlow's steering provides and what the tests below prove.
const flowConfig = `
	reasm :: Reassembler;
	fc    :: FlowCounter;
	reasm -> fc -> rec;
`

// flowRecorder is a terminal that records per-flow delivery order (by
// SeqNo). One instance is shared across every chain — the mutex makes
// that safe — so its per-flow sequences expose any cross-chain
// reordering, which per-chain terminals would hide.
type flowRecorder struct {
	click.Base
	mu    sync.Mutex
	seqs  map[pkt.FlowKey][]uint64
	count uint64
}

func newFlowRecorder() *flowRecorder {
	return &flowRecorder{seqs: make(map[pkt.FlowKey][]uint64)}
}

func (r *flowRecorder) InPorts() int  { return 1 }
func (r *flowRecorder) OutPorts() int { return 0 }

func (r *flowRecorder) Push(_ *click.Context, _ int, p *pkt.Packet) {
	k := p.Flow()
	r.mu.Lock()
	r.seqs[k] = append(r.seqs[k], p.SeqNo)
	r.count++
	r.mu.Unlock()
	pkt.DefaultPool.Put(p)
}

func (r *flowRecorder) total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

func (r *flowRecorder) sequences() map[pkt.FlowKey][]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[pkt.FlowKey][]uint64, len(r.seqs))
	for k, s := range r.seqs {
		out[k] = append([]uint64(nil), s...)
	}
	return out
}

// flowTraffic builds the interleaved multi-flow workload: nFlows flows,
// nData datagrams each, flows interleaved datagram by datagram. Every
// third flow is a bulk flow whose datagrams are all oversized and ship
// as fragment trains (contiguous within the flow, interleaved with
// other flows' traffic), so the Reassembler sees fragments of many
// datagrams in flight at once. Fragmentation is a per-flow property on
// purpose: fragments hash on the 3-tuple (ports are only in the first
// fragment — the real-RSS rule pkt.RSSHash implements), so a flow that
// mixed fragmented and unfragmented datagrams would legitimately steer
// to two buckets. SeqNo numbers each flow's datagrams 0..nData-1 —
// Fragment propagates it to every fragment and the Reassembler to the
// rebuilt datagram, so a terminal can check per-flow order end to end.
func flowTraffic(nFlows, nData int) []*pkt.Packet {
	var out []*pkt.Packet
	id := uint16(1)
	for d := 0; d < nData; d++ {
		for f := 0; f < nFlows; f++ {
			src := netip.AddrFrom4([4]byte{10, 1, byte(f), 1})
			dst := netip.AddrFrom4([4]byte{10, 2, byte(f), 2})
			size := 128
			if f%3 == 1 {
				size = 1400 // fragments into a 3-packet train at MTU 576
			}
			p := pkt.New(size, src, dst, uint16(2000+f), 443)
			p.SeqNo = uint64(d)
			p.IPv4().SetID(id)
			id++
			if size > 576 {
				out = append(out, p.Fragment(576)...)
				// The oversized original never travels; only its fragments
				// do. Return its buffer (the fragments own fresh ones).
				pkt.DefaultPool.Put(p)
			} else {
				out = append(out, p)
			}
		}
	}
	return out
}

// skewPorts probes the pipeline's steering table for nFlows source
// ports whose flows (src 10.9.0.1:port → dst 10.0.0.5:443) land in
// distinct buckets all currently assigned to the given chain — the
// deterministic way to build a fully skewed flow population.
func skewPorts(t *testing.T, pipe *Pipeline, chain, nFlows int) []uint16 {
	t.Helper()
	tbl := pipe.RSS()
	src := netip.MustParseAddr("10.9.0.1")
	dst := netip.MustParseAddr("10.0.0.5")
	seen := make(map[int]bool)
	var ports []uint16
	for port := uint16(3000); port < 60000 && len(ports) < nFlows; port++ {
		p := pkt.New(128, src, dst, port, 443)
		b, c := tbl.Steer(p.RSSHash())
		pkt.DefaultPool.Put(p)
		if c == chain && !seen[b] {
			seen[b] = true
			ports = append(ports, port)
		}
	}
	if len(ports) < nFlows {
		t.Fatalf("found only %d/%d flows steering to chain %d", len(ports), nFlows, chain)
	}
	return ports
}

// skewPacket builds one packet of a skewPorts flow, shaped to forward
// cleanly through branchyConfig (routed dst, fresh TTL and checksum).
func skewPacket(port uint16, seq uint64) *pkt.Packet {
	p := pkt.New(128, netip.MustParseAddr("10.9.0.1"), netip.MustParseAddr("10.0.0.5"), port, 443)
	h := p.IPv4()
	h.SetTTL(64)
	h.UpdateChecksum()
	p.SeqNo = seq
	return p
}

// feedFlowStep drives perFlow packets of every port through PushFlow in
// step mode and drains — one deterministic observation interval of
// flow-steered traffic.
func feedFlowStep(t *testing.T, pipe *Pipeline, ports []uint16, perFlow int, seq *uint64) {
	t.Helper()
	for i := 0; i < perFlow; i++ {
		for _, port := range ports {
			p := skewPacket(port, *seq)
			*seq++
			for !pipe.PushFlow(p) {
				pipe.Step()
			}
			pipe.Step()
		}
	}
	for quiet := 0; quiet < 2; {
		if pipe.Step() == 0 && pipe.Queued() == 0 {
			quiet++
		} else {
			quiet = 0
		}
	}
}

// TestFlowConsistency is the flow-steering correctness contract: the
// per-flow-stateful graph (fragment trains through a Reassembler, then
// a FlowCounter) run through PushFlow at 1/2/4/8 parallel cores
// delivers, per flow, exactly what the same graph produces on a plain
// single-core Router — same per-flow counts and bytes, same per-flow
// delivery order, zero loss — and no flow's state is split across
// chains. Under -race this is the steering layer's concurrency gate.
func TestFlowConsistency(t *testing.T) {
	const nFlows, nData = 24, 32
	want := nFlows * nData // datagrams delivered after reassembly

	// Oracle: the same Click text on a plain single-core Router.
	ref := newFlowRecorder()
	router, err := click.ParseConfig(flowConfig, elements.StandardRegistry(),
		map[string]Element{"rec": ref})
	if err != nil {
		t.Fatal(err)
	}
	entry := router.Get("reasm")
	ctx := &click.Context{}
	for _, p := range flowTraffic(nFlows, nData) {
		entry.Push(ctx, 0, p)
	}
	if ref.total() != uint64(want) {
		t.Fatalf("oracle delivered %d of %d datagrams", ref.total(), want)
	}
	wantSeqs := ref.sequences()
	wantFlows := router.Get("fc").(*elements.FlowCounter).Snapshot()
	if len(wantFlows) != nFlows {
		t.Fatalf("oracle FlowCounter saw %d flows, want %d", len(wantFlows), nFlows)
	}

	for _, cores := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("cores=%d", cores), func(t *testing.T) {
			rec := newFlowRecorder()
			pipe, err := Load(flowConfig, Options{
				Cores:     cores,
				Placement: Parallel,
				Prebound:  func(int) map[string]Element { return map[string]Element{"rec": rec} },
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := pipe.Start(); err != nil {
				t.Fatal(err)
			}
			defer pipe.Stop()

			packets := flowTraffic(nFlows, nData)
			deadline := time.Now().Add(30 * time.Second)
			for fed := 0; fed < len(packets); {
				if pipe.PushFlow(packets[fed]) {
					fed++
				} else {
					runtime.Gosched()
				}
				if time.Now().After(deadline) {
					t.Fatalf("feed stalled at %d/%d", fed, len(packets))
				}
			}
			for rec.total() < uint64(want) {
				runtime.Gosched()
				if time.Now().After(deadline) {
					t.Fatalf("delivered %d/%d datagrams before deadline", rec.total(), want)
				}
			}
			pipe.Stop()

			if drops := pipe.Drops(); drops != 0 {
				t.Errorf("%d drops, want 0", drops)
			}
			// Per-flow delivery order matches the oracle exactly — flow
			// affinity preserved order even though chains ran concurrently.
			gotSeqs := rec.sequences()
			if len(gotSeqs) != len(wantSeqs) {
				t.Fatalf("delivered %d flows, want %d", len(gotSeqs), len(wantSeqs))
			}
			for k, wantSeq := range wantSeqs {
				got := gotSeqs[k]
				if len(got) != len(wantSeq) {
					t.Fatalf("flow %v delivered %d datagrams, want %d", k, len(got), len(wantSeq))
					continue
				}
				for i := range wantSeq {
					if got[i] != wantSeq[i] {
						t.Errorf("flow %v reordered: position %d got seq %d, want %d", k, i, got[i], wantSeq[i])
						break
					}
				}
			}
			// Per-flow state partitioned, not split: each flow's counts
			// live in exactly one chain's FlowCounter, and the merged view
			// equals the oracle's.
			merged := make(map[pkt.FlowKey]elements.FlowStat)
			for chain := 0; chain < pipe.Chains(); chain++ {
				fc := pipe.Element(chain, "fc").(*elements.FlowCounter)
				for k, st := range fc.Snapshot() {
					if _, dup := merged[k]; dup {
						t.Errorf("flow %v split across chains", k)
					}
					merged[k] = st
				}
			}
			if len(merged) != len(wantFlows) {
				t.Fatalf("merged FlowCounters hold %d flows, want %d", len(merged), len(wantFlows))
			}
			for k, w := range wantFlows {
				if merged[k] != w {
					t.Errorf("flow %v counts %+v, want %+v", k, merged[k], w)
				}
			}
			// The steering table saw every successful push.
			snap := pipe.Snapshot()
			if snap.RSS == nil {
				t.Fatal("snapshot has no RSS section")
			}
			var steered uint64
			for _, c := range snap.RSS.Counts {
				steered += c
			}
			if steered != uint64(len(packets)) {
				t.Errorf("bucket counters saw %d packets, want %d", steered, len(packets))
			}
		})
	}
}

// TestFlowConsistencyReSteer drives the full skew-to-rebalance story
// deterministically: every flow of the population steers to chain 0 of
// a 4-core plan, the controller's first Observe fixes it with a bucket
// re-steer (no replan), and the traffic that continues across the
// rewrite arrives complete and in per-flow order — the zero-loss,
// no-reorder contract of the drain barrier — with the rebalance visible
// in Snapshot.RSS.
func TestFlowConsistencyReSteer(t *testing.T) {
	rec := newFlowRecorder()
	pipe, err := Load(flowConfig, Options{
		Cores:     4,
		Placement: Parallel,
		Prebound:  func(int) map[string]Element { return map[string]Element{"rec": rec} },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := pipe.NewController(ControllerConfig{
		MinPackets:   64,
		RejectedStep: -1,
		ReSteer:      true,
		ReSteerMax:   16,
	})

	const nFlows, perFlow = 12, 48
	ports := skewPorts(t, pipe, 0, nFlows)
	seqs := make(map[uint16]uint64, nFlows)

	feed := func() {
		for i := 0; i < perFlow; i++ {
			for _, port := range ports {
				p := skewPacket(port, seqs[port])
				seqs[port]++
				for !pipe.PushFlow(p) {
					pipe.Step()
				}
				pipe.Step()
			}
		}
		for quiet := 0; quiet < 2; {
			if pipe.Step() == 0 && pipe.Queued() == 0 {
				quiet++
			} else {
				quiet = 0
			}
		}
	}

	// Interval 1: full skew — every flow on chain 0 of 4.
	feed()
	before := pipe.Snapshot()
	if before.Imbalance < 3.9 {
		t.Fatalf("skew population not skewed: imbalance %.2f", before.Imbalance)
	}
	if !ctrl.Observe() {
		t.Fatal("controller did not act on full skew")
	}
	st := ctrl.State()
	if st.ReSteers != 1 || st.Replans != 0 {
		t.Fatalf("want exactly one re-steer and no replan, got %+v", st)
	}
	if st.MovedBuckets == 0 {
		t.Fatalf("re-steer moved no buckets: %+v", st)
	}
	if pipe.Generation() != 0 {
		t.Fatalf("re-steer must not swap the plan (generation %d)", pipe.Generation())
	}

	// Interval 2: the same flows, now spread by the rewritten table.
	feed()
	if ctrl.Observe() {
		t.Fatal("controller fired on the load the re-steer balanced")
	}
	st = ctrl.State()
	if !st.Armed {
		t.Fatalf("rebalanced interval did not re-arm: %+v", st)
	}
	if st.LastImbalance >= 1.5 {
		t.Fatalf("imbalance %.2f after re-steer, want below high water", st.LastImbalance)
	}

	// Zero loss and per-flow order across the rewrite.
	total := uint64(nFlows * perFlow * 2)
	if rec.total() != total {
		t.Fatalf("delivered %d of %d packets across the re-steer", rec.total(), total)
	}
	if drops := pipe.Drops(); drops != 0 {
		t.Fatalf("%d drops across the re-steer, want 0", drops)
	}
	for k, seq := range rec.sequences() {
		for i, s := range seq {
			if s != uint64(i) {
				t.Fatalf("flow %v out of order at position %d: seq %d", k, i, s)
			}
		}
	}

	// The rebalance is observable: one table rewrite, moved buckets now
	// assigned off chain 0.
	snap := pipe.Snapshot()
	if snap.RSS == nil || snap.RSS.Generation != 1 || snap.RSS.Moved != uint64(st.MovedBuckets) {
		t.Fatalf("RSS snapshot does not record the re-steer: %+v", snap.RSS)
	}
}

// TestControllerReSteerHysteresis is the deterministic re-steer ladder
// contract on the branchy forwarding graph: a fully skewed flow
// population re-steers exactly once (no replan, no flapping), the
// rewritten table survives subsequent balanced intervals, and the
// controller re-arms only after the load settles.
func TestControllerReSteerHysteresis(t *testing.T) {
	pipe := controllerPipe(t)
	ctrl := pipe.NewController(ControllerConfig{
		HighWater:    1.5,
		LowWater:     1.1,
		MinPackets:   64,
		RejectedStep: -1,
		ReSteer:      true,
	})
	tbl := pipe.RSS()
	ports := skewPorts(t, pipe, 0, 8)
	var seq uint64

	// Skewed interval: everything on chain 0 of 2 → one re-steer.
	feedFlowStep(t, pipe, ports, 64, &seq)
	if !ctrl.Observe() {
		t.Fatal("controller did not act on a skewed interval")
	}
	st := ctrl.State()
	if st.ReSteers != 1 || st.Replans != 0 || st.Armed {
		t.Fatalf("post-trip state wrong: %+v", st)
	}
	if !strings.Contains(st.LastReason, "re-steered") {
		t.Fatalf("LastReason does not record the re-steer: %q", st.LastReason)
	}
	if pipe.Generation() != 0 {
		t.Fatalf("re-steer replaced the plan (generation %d)", pipe.Generation())
	}
	if tbl.Generation() != 1 {
		t.Fatalf("table generation %d after one re-steer, want 1", tbl.Generation())
	}
	// Half the (equal) hot buckets migrate to the cold chain.
	if moved := tbl.Moved(); moved != 4 {
		t.Fatalf("moved %d buckets, want 4 of 8", moved)
	}

	// The same population again: the rewrite balanced it, so the
	// controller re-arms and the table never flaps.
	feedFlowStep(t, pipe, ports, 64, &seq)
	if ctrl.Observe() {
		t.Fatal("controller fired on the load the re-steer balanced")
	}
	st = ctrl.State()
	if !st.Armed || st.ReSteers != 1 {
		t.Fatalf("rebalanced interval state wrong: %+v", st)
	}
	if st.LastImbalance >= 1.1 {
		t.Fatalf("imbalance %.2f after re-steer, want below low water", st.LastImbalance)
	}
	feedFlowStep(t, pipe, ports, 64, &seq)
	if ctrl.Observe() {
		t.Fatal("controller fired again on steady balanced flows")
	}
	if g := tbl.Generation(); g != 1 {
		t.Fatalf("table flapped to generation %d", g)
	}
}

// TestControllerReSteerEscalation proves re-steering gives way to the
// heavier action when it cannot help: after a re-steer, a skew that
// carries no bucket signal (raw chain-pinned pushes) persists
// ReSteerPersist intervals, and only then does the controller escalate
// to a full replan.
func TestControllerReSteerEscalation(t *testing.T) {
	pipe := controllerPipe(t)
	ctrl := pipe.NewController(ControllerConfig{
		MinPackets:     64,
		RejectedStep:   -1,
		ReSteer:        true,
		ReSteerPersist: 2,
	})
	ports := skewPorts(t, pipe, 0, 8)
	var seq uint64

	// First trip: handled by a re-steer.
	feedFlowStep(t, pipe, ports, 64, &seq)
	if !ctrl.Observe() {
		t.Fatal("controller did not re-steer")
	}
	if st := ctrl.State(); st.ReSteers != 1 || st.Replans != 0 {
		t.Fatalf("first trip: %+v", st)
	}

	// The skew returns in a shape bucket migration cannot express —
	// packets pinned to chain 0 by plain Push tick no bucket counters.
	// One persisting interval is tolerated...
	feedStep(t, pipe, 0, 512)
	if ctrl.Observe() {
		t.Fatal("controller escalated before ReSteerPersist")
	}
	if st := ctrl.State(); st.Replans != 0 {
		t.Fatalf("premature replan: %+v", st)
	}
	// ...the second escalates to the replan action.
	feedStep(t, pipe, 0, 512)
	if !ctrl.Observe() {
		t.Fatal("controller did not escalate after persistent skew")
	}
	st := ctrl.State()
	if st.Replans != 1 || st.ReSteers != 1 {
		t.Fatalf("escalation state wrong: %+v", st)
	}
	if !strings.Contains(st.LastReason, "re-steer escalation") {
		t.Fatalf("LastReason does not record the escalation: %q", st.LastReason)
	}
	if pipe.Generation() != 1 {
		t.Fatalf("generation %d after the escalated replan, want 1", pipe.Generation())
	}
}
