// Package routebricks is a Go reproduction of "RouteBricks: Exploiting
// Parallelism To Scale Software Routers" (Dobrescu et al., SOSP 2009).
//
// RouteBricks scales a software router by parallelizing across servers —
// a cluster of commodity machines switching packets with Direct Valiant
// Load Balancing over a full mesh — and within servers — multi-queue
// NICs, one core per queue, one core per packet, and batched descriptor
// processing.
//
// This package is the public facade over the implementation:
//
//   - Cluster / RB4: the parallel router (internal/cluster), simulated on
//     virtual time over a calibrated model of the paper's Nehalem servers.
//   - ServerSpec and the workload model (internal/hw): the bottleneck
//     analysis of §5, with every constant derived from the paper.
//   - Experiments: regenerators for every table and figure (internal/
//     experiments); see EXPERIMENTS.md for paper-vs-measured values.
//   - The placement API (internal/click.NewPlan): §4.2's two core
//     allocations as runnable artifacts. A Parallel plan clones a
//     pipeline onto every core ("one core per queue, one core per
//     packet"); a Pipelined plan cuts it into per-core stages joined by
//     lock-free SPSC handoff rings (internal/exec). Plans run on real
//     goroutines via click.Runner or step deterministically on virtual
//     cores; BenchmarkPlacement and EXPERIMENTS.md track the measured
//     parallel-vs-pipelined crossover against the paper's Fig. 5.
//
// Quick start:
//
//	c, err := routebricks.RB4()             // 4-node Direct VLB mesh
//	if err != nil { ... }
//	w := routebricks.Workload{
//	    OfferedBpsPerNode: 2e9,
//	    Sizes:             routebricks.AbileneMix(),
//	    ExcludeSelf:       true,
//	    Duration:          10 * routebricks.Millisecond,
//	}
//	w.Apply(c)
//	c.Run(w.Duration + routebricks.Millisecond)
//	c.Drain(20 * routebricks.Millisecond)
//	fmt.Println(c.Meter)                    // reordering statistics
//
// See the examples directory for runnable programs and cmd/rbbench for
// the full evaluation harness.
package routebricks

import (
	"routebricks/internal/cluster"
	"routebricks/internal/experiments"
	"routebricks/internal/hw"
	"routebricks/internal/sim"
	"routebricks/internal/trafficgen"
)

// Cluster is a running RouteBricks cluster simulation.
type Cluster = cluster.Cluster

// ClusterConfig parameterizes a cluster.
type ClusterConfig = cluster.Config

// Workload drives paced traffic into a cluster.
type Workload = cluster.Workload

// ServerSpec describes a modeled server generation.
type ServerSpec = hw.Spec

// SizeDist is a packet-size distribution.
type SizeDist = trafficgen.SizeDist

// Time is a virtual-time instant/duration in nanoseconds.
type Time = sim.Time

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewCluster builds a cluster from an explicit configuration.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// RB4 builds the paper's prototype: 4 Nehalem nodes, full mesh, Direct
// VLB with flowlet reordering avoidance, kp=32/kn=16 batching.
func RB4() (*Cluster, error) { return cluster.New(cluster.RB4Config()) }

// RB4Config returns the prototype configuration for customization.
func RB4Config() ClusterConfig { return cluster.RB4Config() }

// Nehalem returns the paper's evaluation server model.
func Nehalem() ServerSpec { return hw.Nehalem() }

// Xeon returns the shared-bus comparison server model.
func Xeon() ServerSpec { return hw.Xeon() }

// AbileneMix returns the synthetic Abilene-I packet-size mix.
func AbileneMix() SizeDist { return trafficgen.AbileneMix() }

// FixedSize returns a single-size packet distribution.
func FixedSize(bytes int) SizeDist { return trafficgen.Fixed(bytes) }

// Experiment regenerates one table or figure of the evaluation.
type Experiment = experiments.Experiment

// Experiments lists every table/figure regenerator in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds a single experiment ("table1", "fig8", ...).
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }
