// Package routebricks is a Go reproduction of "RouteBricks: Exploiting
// Parallelism To Scale Software Routers" (Dobrescu et al., SOSP 2009).
//
// RouteBricks scales a software router by parallelizing across servers —
// a cluster of commodity machines switching packets with Direct Valiant
// Load Balancing over a full mesh — and within servers — multi-queue
// NICs, one core per queue, one core per packet, and batched descriptor
// processing.
//
// This package is the public facade over the implementation. Its
// centerpiece is the graph-first pipeline API: write the router once,
// in the Click configuration language, and Load derives the parallel
// execution —
//
//	pipe, err := routebricks.Load(`
//	    check :: CheckIPHeader;
//	    rt    :: LPMLookup(fib);
//	    ttl   :: DecIPTTL;
//	    check[0] -> rt;     check[1] -> drops;
//	    rt[0]    -> ttl;    rt[1]    -> drops;
//	    ttl[0]   -> out;    ttl[1]   -> drops;
//	`, routebricks.Options{
//	    Cores:     4,
//	    Placement: routebricks.Parallel, // or Pipelined
//	    Prebound: func(chain int) map[string]routebricks.Element {
//	        return map[string]routebricks.Element{
//	            "fib":   elements.NewLPMLookup(table), // per-chain resources
//	            "out":   newMySink(chain),
//	            "drops": &elements.Discard{},
//	        }
//	    },
//	})
//	if err != nil { ... }
//	pipe.Start()                       // one goroutine per core
//	pipe.Push(chain, packet)           // feed the per-chain input rings
//	fmt.Println(pipe.Describe())       // which graph segments run where
//	pipe.Stop()
//
// The graph is instantiated once per chain with prebound resources
// resolved per chain, so a Parallel placement gives every core an
// independent copy of the whole graph ("one core per queue, one core
// per packet", §4.2) while a Pipelined placement cuts the graph's
// trunk across cores wherever its topology allows, joined by lock-free
// SPSC handoff rings (internal/exec). docs/click-language.md documents
// the accepted syntax subset; see TestLoadEquivalence for the
// placement-independence contract.
//
// The pipeline is a live control plane, not a build-once artifact:
//
//   - Placement: routebricks.Auto makes the §4.2 allocation a measured
//     decision — Load builds both candidate plans, drives a short
//     deterministic calibration through each, and picks the winner
//     (recorded in Describe, Snapshot.Decision, and Calibration).
//   - pipe.Reload(newText, opts) hot-swaps the program under a drain
//     barrier — in-flight packets are stepped out, the new plan
//     installs atomically, prebound resources carry over — with zero
//     loss (TestReloadEquivalence); pipe.Replan(opts) re-decides the
//     placement of the current program the same way. cmd/rbrouter
//     wires Reload to SIGHUP.
//   - pipe.Snapshot() unifies observability: plan kind + generation,
//     per-core counters, per-ring depth/capacity/backpressure, live-FIB
//     generation and route count, and per-element counters in one typed,
//     JSON-ready value; Snapshot.Delta(prev) yields rates. cmd/rbrouter
//     serves it on -stats-addr under the versioned /api/v1 admin API.
//   - Options.FIB binds a live route table (NewFIB) to the Click name
//     `fib`: an RCU generation-swapped DIR-24-8 engine whose routes can
//     be added and withdrawn while every core forwards at full rate.
//     Writers batch adds and withdraws into single commits
//     (RouteAdmin.Update); readers pin one complete snapshot per packet
//     batch, so a batch never straddles two generations and no reader
//     ever observes a partially updated table. The handle is inherited
//     across Reload and Replan like Prebound, and pipe.Routes() returns
//     it for admin surfaces — cmd/rbrouter's /api/v1/routes is exactly
//     that. An explicitly prebound `fib` instance still wins, preserving
//     the old contract.
//
// The rest of the facade:
//
//   - Cluster / RB4: the parallel router (internal/cluster), simulated on
//     virtual time over a calibrated model of the paper's Nehalem servers;
//     its per-node pipelines are stamped from the same click.Program
//     mechanism Load uses.
//   - ServerSpec and the workload model (internal/hw): the bottleneck
//     analysis of §5, with every constant derived from the paper.
//   - Experiments: regenerators for every table and figure (internal/
//     experiments); see EXPERIMENTS.md for paper-vs-measured values.
//   - BenchmarkPlacement drives the Click-text forwarding path through
//     Load at 1–8 cores under both placements and tracks the measured
//     parallel-vs-pipelined crossover against the paper's Fig. 5.
//
// Simulation quick start:
//
//	c, err := routebricks.RB4()             // 4-node Direct VLB mesh
//	if err != nil { ... }
//	w := routebricks.Workload{
//	    OfferedBpsPerNode: 2e9,
//	    Sizes:             routebricks.AbileneMix(),
//	    ExcludeSelf:       true,
//	    Duration:          10 * routebricks.Millisecond,
//	}
//	w.Apply(c)
//	c.Run(w.Duration + routebricks.Millisecond)
//	c.Drain(20 * routebricks.Millisecond)
//	fmt.Println(c.Meter)                    // reordering statistics
//
// See the examples directory for runnable programs (examples/clickfile
// is the Load walkthrough), cmd/rbrouter for the real-UDP cluster that
// serves -config file.click programs, and cmd/rbbench for the full
// evaluation harness.
package routebricks

import (
	"routebricks/internal/cluster"
	"routebricks/internal/experiments"
	"routebricks/internal/hw"
	"routebricks/internal/sim"
	"routebricks/internal/trafficgen"
)

// Cluster is a running RouteBricks cluster simulation.
type Cluster = cluster.Cluster

// ClusterConfig parameterizes a cluster.
type ClusterConfig = cluster.Config

// Workload drives paced traffic into a cluster.
type Workload = cluster.Workload

// ServerSpec describes a modeled server generation.
type ServerSpec = hw.Spec

// SizeDist is a packet-size distribution.
type SizeDist = trafficgen.SizeDist

// Time is a virtual-time instant/duration in nanoseconds.
type Time = sim.Time

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewCluster builds a cluster from an explicit configuration.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// RB4 builds the paper's prototype: 4 Nehalem nodes, full mesh, Direct
// VLB with flowlet reordering avoidance, kp=32/kn=16 batching.
func RB4() (*Cluster, error) { return cluster.New(cluster.RB4Config()) }

// RB4Config returns the prototype configuration for customization.
func RB4Config() ClusterConfig { return cluster.RB4Config() }

// Nehalem returns the paper's evaluation server model.
func Nehalem() ServerSpec { return hw.Nehalem() }

// Xeon returns the shared-bus comparison server model.
func Xeon() ServerSpec { return hw.Xeon() }

// AbileneMix returns the synthetic Abilene-I packet-size mix.
func AbileneMix() SizeDist { return trafficgen.AbileneMix() }

// FixedSize returns a single-size packet distribution.
func FixedSize(bytes int) SizeDist { return trafficgen.Fixed(bytes) }

// Experiment regenerates one table or figure of the evaluation.
type Experiment = experiments.Experiment

// Experiments lists every table/figure regenerator in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds a single experiment ("table1", "fig8", ...).
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }
