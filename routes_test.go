package routebricks

import (
	"net/netip"
	"strings"
	"testing"

	"routebricks/internal/elements"
)

// liveFIBPipe loads the branchy program with the route table bound via
// Options.FIB — the live-FIB path — instead of a hand-built frozen
// Dir248 in Prebound. Step-driven for determinism.
func liveFIBPipe(t *testing.T) (*Pipeline, *equivTerminals, *RouteAdmin) {
	t.Helper()
	fib, err := NewFIB(Route{Prefix: netip.MustParsePrefix("10.0.0.0/16"), NextHop: 1})
	if err != nil {
		t.Fatal(err)
	}
	term := newEquivTerminals()
	pipe, err := Load(branchyConfig, Options{
		FIB: fib,
		Prebound: func(chain int) map[string]Element {
			// Terminals only: the `fib` name binds through Options.FIB.
			return map[string]Element{
				"out":      term.out,
				"badhdr":   term.badhdr,
				"badroute": term.badroute,
				"expired":  term.expired,
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pipe, term, fib
}

// stepFeed pushes n packets and steps the pipeline dry.
func stepFeed(t *testing.T, pipe *Pipeline, n int) {
	t.Helper()
	packets := equivPackets(n)
	for fed := 0; fed < n; {
		if pipe.Push(fed%pipe.Chains(), packets[fed]) {
			fed++
		}
		pipe.Step()
	}
	for quiet := 0; quiet < 2; {
		if pipe.Step() == 0 && pipe.Queued() == 0 {
			quiet++
		} else {
			quiet = 0
		}
	}
}

// TestLiveFIBWithdrawReinstate is the withdraw-reinstate equivalence
// contract through routebricks.Load: a pipeline bound to a live FIB
// forwards, diverts everything to the route-miss port while the covering
// route is withdrawn, and returns to the exact original per-port counts
// once the route is reinstated — no reload, no restart, just FIB commits.
func TestLiveFIBWithdrawReinstate(t *testing.T) {
	const n = 1024
	pipe, term, fib := liveFIBPipe(t)
	admin := pipe.Routes()
	if admin != fib {
		t.Fatalf("Routes() = %p, want the Options.FIB handle %p", admin, fib)
	}
	if admin.Len() != 1 || admin.Generation() != 1 {
		t.Fatalf("seeded FIB: len=%d gen=%d", admin.Len(), admin.Generation())
	}

	stepFeed(t, pipe, n)
	base := term.counts() // [out, badhdr, badroute, expired]
	if base[0] == 0 || base[1] == 0 || base[2] == 0 || base[3] == 0 {
		t.Fatalf("workload no longer exercises every port: %v", base)
	}

	// Withdraw the only route: everything that clears the header check
	// now misses at the LPM stage.
	if err := admin.Withdraw(netip.MustParsePrefix("10.0.0.0/16")); err != nil {
		t.Fatal(err)
	}
	if admin.Len() != 0 || admin.Generation() != 2 {
		t.Fatalf("after withdraw: len=%d gen=%d", admin.Len(), admin.Generation())
	}
	stepFeed(t, pipe, n)
	mid := term.counts()
	if mid[0] != base[0] || mid[3] != base[3] {
		t.Fatalf("withdrawn FIB still routed packets: base=%v now=%v", base, mid)
	}
	if mid[1] != 2*base[1] {
		t.Fatalf("header-check diversions changed under withdraw: base=%v now=%v", base, mid)
	}
	wantMiss := base[2] + (n - base[1]) // everything past the header check misses
	if mid[2] != wantMiss {
		t.Fatalf("route-miss count = %d, want %d (base=%v now=%v)", mid[2], wantMiss, base, mid)
	}

	// Reinstate: the next identical interval must add exactly the base
	// per-port counts again.
	if err := admin.Add(netip.MustParsePrefix("10.0.0.0/16"), 1); err != nil {
		t.Fatal(err)
	}
	if admin.Generation() != 3 {
		t.Fatalf("after reinstate: gen=%d", admin.Generation())
	}
	stepFeed(t, pipe, n)
	final := term.counts()
	for i := range final {
		if final[i] != mid[i]+base[i] {
			t.Fatalf("reinstated interval diverged (port %d): base=%v mid=%v final=%v", i, base, mid, final)
		}
	}
}

// TestLiveFIBSnapshotAndReplan checks Snapshot carries the FIB gauges
// and that the FIB handle (and its routes) survive a Replan — the FIB is
// inherited like Prebound, so churn and plan swaps compose.
func TestLiveFIBSnapshotAndReplan(t *testing.T) {
	pipe, _, fib := liveFIBPipe(t)
	s := pipe.Snapshot()
	if s.FIBGeneration != 1 || s.FIBRoutes != 1 {
		t.Fatalf("snapshot FIB gauges: gen=%d routes=%d", s.FIBGeneration, s.FIBRoutes)
	}

	gen, err := fib.Update([]Route{
		{Prefix: netip.MustParsePrefix("10.1.0.0/24"), NextHop: 2},
		{Prefix: netip.MustParsePrefix("10.2.0.0/24"), NextHop: 3},
	}, nil)
	if err != nil || gen != 2 {
		t.Fatalf("batch update: gen=%d err=%v", gen, err)
	}
	s = pipe.Snapshot()
	if s.FIBGeneration != 2 || s.FIBRoutes != 3 {
		t.Fatalf("snapshot after update: gen=%d routes=%d", s.FIBGeneration, s.FIBRoutes)
	}

	if err := pipe.Replan(Options{Placement: Pipelined, Cores: 2}); err != nil {
		t.Fatal(err)
	}
	if pipe.Routes() != fib {
		t.Fatal("Replan dropped the FIB handle")
	}
	stepFeed(t, pipe, 512)
	s = pipe.Snapshot()
	if s.FIBGeneration != 2 || s.FIBRoutes != 3 {
		t.Fatalf("FIB gauges reset across replan: gen=%d routes=%d", s.FIBGeneration, s.FIBRoutes)
	}
	if list := fib.List(); len(list) != 3 {
		t.Fatalf("route listing after replan: %v", list)
	}
	if hop := fib.Lookup(netip.MustParseAddr("10.1.0.9")); hop != 2 {
		t.Fatalf("Lookup = %d, want 2", hop)
	}
	if hop := fib.Lookup(netip.MustParseAddr("172.16.0.1")); hop != NoRoute {
		t.Fatalf("Lookup miss = %d, want NoRoute", hop)
	}
}

// TestLiveFIBPreboundPrecedence: a `fib` entry from Prebound wins over
// Options.FIB, preserving the old contract for hosts that bind their
// own engine.
func TestLiveFIBPreboundPrecedence(t *testing.T) {
	fib, err := NewFIB()
	if err != nil {
		t.Fatal(err)
	}
	table := equivTable(t)
	own := elements.NewLPMLookup(table)
	pipe, err := Load(branchyConfig, Options{
		FIB: fib,
		Prebound: func(chain int) map[string]Element {
			m := newEquivTerminals().prebound(table)
			m["fib"] = own
			return m
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// `rt :: LPMLookup(fib)` aliases the prebound fib instance as rt.
	if pipe.Element(0, "rt") != Element(own) {
		t.Fatal("Options.FIB overrode an explicitly prebound fib")
	}
}

// TestControllerStealEscalation: with StealEscalation opted in, a skew
// that persists after the first replan flips work stealing on — one
// extra replan, placement preserved — and the controller surfaces
// per-core steal rates and the escalation in its state.
func TestControllerStealEscalation(t *testing.T) {
	pipe := controllerPipe(t)
	replans := 0
	ctrl := pipe.NewController(ControllerConfig{
		HighWater:       1.5,
		LowWater:        1.1,
		MinPackets:      64,
		RejectedStep:    -1,
		StealEscalation: true,
		StealPersist:    2,
		// The hook stands in for a host replan that keeps the placement;
		// the skew persists because nothing about the load changes.
		Replan: func() error { replans++; return nil },
	})

	// Interval 1: skew trips the controller — one hook replan.
	feedStep(t, pipe, 0, 512)
	if !ctrl.Observe() {
		t.Fatal("skewed interval did not fire")
	}
	if replans != 1 || pipe.Steal() {
		t.Fatalf("after first trip: replans=%d steal=%v", replans, pipe.Steal())
	}

	// Interval 2: still skewed, still disarmed — persistence 1 of 2.
	feedStep(t, pipe, 0, 512)
	if ctrl.Observe() {
		t.Fatal("escalated before StealPersist intervals")
	}

	// Interval 3: persistence reaches 2 — the controller replans with
	// Steal forced on, keeping the placement.
	feedStep(t, pipe, 0, 512)
	if !ctrl.Observe() {
		t.Fatal("persistent skew did not escalate")
	}
	if !pipe.Steal() {
		t.Fatal("escalation did not enable stealing")
	}
	if pipe.Placement() != Parallel {
		t.Fatalf("escalation changed placement to %s", pipe.Placement())
	}
	st := ctrl.State()
	if st.StealEscalations != 1 || !st.StealActive {
		t.Fatalf("state after escalation: %+v", st)
	}
	if !strings.Contains(st.LastReason, "steal escalation") {
		t.Fatalf("LastReason = %q", st.LastReason)
	}
	if replans != 1 {
		t.Fatalf("escalation went through the hook: replans=%d", replans)
	}

	// Interval 4: with stealing on, the observation carries per-core
	// steal rates. Build the backlog on chain 0 before stepping so the
	// idle sibling sees a deep ring and actually steals (the
	// TestLoadEquivalenceSteal idiom).
	packets := equivPackets(512)
	for fed := 0; fed < len(packets); {
		if pipe.Push(0, packets[fed]) {
			fed++
		} else {
			pipe.Step()
		}
	}
	for quiet := 0; quiet < 2; {
		if pipe.Step() == 0 && pipe.Queued() == 0 {
			quiet++
		} else {
			quiet = 0
		}
	}
	ctrl.Observe()
	st = ctrl.State()
	if len(st.CoreSteals) != pipe.Cores() {
		t.Fatalf("CoreSteals = %+v, want %d cores", st.CoreSteals, pipe.Cores())
	}
	var steals uint64
	for _, cs := range st.CoreSteals {
		steals += cs.Steals
	}
	if steals == 0 {
		t.Fatal("no steals recorded under full skew with stealing enabled")
	}
}
