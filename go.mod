module routebricks

go 1.24
