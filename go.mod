module routebricks

go 1.23
