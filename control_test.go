package routebricks

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"routebricks/internal/elements"
	"routebricks/internal/pkt"
)

// TestOptionsValidation covers the up-front Options gate: negative
// sizing knobs are rejected with a descriptive error instead of being
// silently rounded inside exec.NewRing.
func TestOptionsValidation(t *testing.T) {
	table := equivTable(t)
	prebound := func(chain int) map[string]Element {
		return newEquivTerminals().prebound(table)
	}
	bad := []struct {
		name string
		opts Options
		want string
	}{
		{"cores", Options{Cores: -1}, "Cores"},
		{"kp", Options{KP: -8}, "KP"},
		{"inputcap", Options{InputCap: -4096}, "InputCap"},
		{"handoffcap", Options{HandoffCap: -1}, "HandoffCap"},
		{"placement", Options{Placement: PlanKind(7)}, "Placement"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			tc.opts.Prebound = prebound
			if _, err := Load(branchyConfig, tc.opts); err == nil {
				t.Fatalf("Load accepted %+v", tc.opts)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the bad field %q", err, tc.want)
			}
		})
	}

	// Reload validates too, and a failed validation leaves the old plan
	// running.
	pipe, err := Load(branchyConfig, Options{Prebound: prebound})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Reload(branchyConfig, Options{KP: -1}); err == nil {
		t.Fatal("Reload accepted negative KP")
	}
	if pipe.Generation() != 0 {
		t.Fatalf("failed Reload bumped generation to %d", pipe.Generation())
	}
}

// autoPrebound supplies hermetic terminals for the BenchmarkPlacement
// Click program (placementConfig, bench_test.go) — the workload the
// Auto-placement contract is stated against.
func autoPrebound(t *testing.T) (func(chain int) map[string]Element, func(chain int) Element) {
	t.Helper()
	table := equivTable(t)
	sink := func() Element { return &elements.Sink{Recycle: pkt.DefaultPool} }
	prebound := func(chain int) map[string]Element {
		return map[string]Element{
			"fib":      elements.NewLPMLookup(table),
			"badhdr":   sink(),
			"badroute": sink(),
			"badttl":   sink(),
		}
	}
	return prebound, func(int) Element { return sink() }
}

// TestAutoPlacement proves the §4.2 finding is now a measured decision:
// Placement: Auto on the BenchmarkPlacement workload picks Parallel at
// every core count ≥ 2, records the decision, and exposes the
// candidate measurements.
func TestAutoPlacement(t *testing.T) {
	prebound, sinkFn := autoPrebound(t)
	for _, cores := range []int{2, 4} {
		pipe, err := Load(placementConfig, Options{
			Cores:     cores,
			Placement: Auto,
			Prebound:  prebound,
			Sink:      sinkFn,
		})
		if err != nil {
			t.Fatal(err)
		}
		if pipe.Placement() != Parallel {
			t.Fatalf("cores=%d: Auto picked %s, want parallel", cores, pipe.Placement())
		}
		desc := pipe.Describe()
		if !strings.Contains(desc, "auto: calibrated") {
			t.Errorf("cores=%d: Describe does not record the auto decision:\n%s", cores, desc)
		}
		calib := pipe.Calibration()
		if len(calib) != 2 {
			t.Fatalf("cores=%d: %d calibration results, want 2", cores, len(calib))
		}
		par, pip := calib[0], calib[1]
		if par.Kind() != Parallel || pip.Kind() != Pipelined {
			t.Fatalf("cores=%d: candidate order %s/%s", cores, par.Plan, pip.Plan)
		}
		if par.HandoffPackets != 0 {
			t.Errorf("cores=%d: parallel candidate crossed %d packets", cores, par.HandoffPackets)
		}
		if pip.HandoffPackets == 0 {
			t.Errorf("cores=%d: pipelined candidate crossed no packets — the measurement saw no handoffs", cores)
		}
		if par.Score >= pip.Score {
			t.Errorf("cores=%d: parallel score %.0f not below pipelined %.0f", cores, par.Score, pip.Score)
		}
		// The decision is deterministic: calibrating again yields the
		// same scores.
		again, err := Load(placementConfig, Options{Cores: cores, Placement: Auto, Prebound: prebound, Sink: sinkFn})
		if err != nil {
			t.Fatal(err)
		}
		if a := again.Calibration(); a[0].Score != par.Score || a[1].Score != pip.Score {
			t.Errorf("cores=%d: calibration not deterministic: %v vs %v", cores, a, calib)
		}
	}

	// Single core: the allocations are identical, parallel by fiat.
	pipe, err := Load(placementConfig, Options{Cores: 1, Placement: Auto, Prebound: prebound, Sink: sinkFn})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Placement() != Parallel {
		t.Fatalf("1 core: Auto picked %s", pipe.Placement())
	}
}

// TestReplanAuto drives the adaptive path: a pipeline loaded Pipelined
// re-decides via Replan(Placement: Auto) and lands on Parallel, with
// the generation counter recording the swap.
func TestReplanAuto(t *testing.T) {
	prebound, sinkFn := autoPrebound(t)
	pipe, err := Load(placementConfig, Options{
		Cores:     4,
		Placement: Pipelined,
		Prebound:  prebound,
		Sink:      sinkFn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Placement() != Pipelined {
		t.Fatalf("loaded %s", pipe.Placement())
	}
	if err := pipe.Start(); err != nil {
		t.Fatal(err)
	}
	defer pipe.Stop()
	if err := pipe.Replan(Options{Placement: Auto}); err != nil {
		t.Fatal(err)
	}
	if pipe.Placement() != Parallel {
		t.Fatalf("Replan(Auto) picked %s, want parallel", pipe.Placement())
	}
	if pipe.Generation() != 1 {
		t.Fatalf("generation %d after one Replan", pipe.Generation())
	}
	if snap := pipe.Snapshot(); snap.Plan != "parallel" || snap.Generation != 1 || snap.Decision == "" {
		t.Fatalf("snapshot does not carry the replan: %+v", snap)
	}
	// The replanned pipeline still runs: push a packet through.
	pkts := equivPackets(4)
	for _, p := range pkts {
		for !pipe.Push(0, p) {
			time.Sleep(time.Millisecond)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for pipe.Snapshot().TotalPackets() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("replanned pipeline moved no packets")
		}
		time.Sleep(time.Millisecond)
	}
}

// controllerPipe loads the branchy program for controller tests:
// 2-core parallel, deterministic cost-model inputs, Step-driven.
func controllerPipe(t *testing.T) *Pipeline {
	t.Helper()
	table := equivTable(t)
	pipe, err := Load(branchyConfig, Options{
		Cores:         2,
		Placement:     Parallel,
		HandoffCycles: 100,
		Topology:      &Topology{},
		Prebound: func(chain int) map[string]Element {
			return newEquivTerminals().prebound(table)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pipe
}

// feedStep pushes n packets to the given chain and steps the pipeline
// until they drain — one deterministic "observation interval" of
// traffic for the controller tests.
func feedStep(t *testing.T, pipe *Pipeline, chain, n int) {
	t.Helper()
	packets := equivPackets(n)
	for fed := 0; fed < n; {
		if pipe.Push(chain, packets[fed]) {
			fed++
		}
		pipe.Step()
	}
	for quiet := 0; quiet < 2; {
		if pipe.Step() == 0 && pipe.Queued() == 0 {
			quiet++
		} else {
			quiet = 0
		}
	}
}

// TestControllerHysteresis is the deterministic controller contract:
// a skewed interval fires exactly one automatic Replan, further skewed
// intervals do not flap it, and the controller re-arms only after a
// balanced interval below the low-water mark.
func TestControllerHysteresis(t *testing.T) {
	pipe := controllerPipe(t)
	ctrl := pipe.NewController(ControllerConfig{
		HighWater:    1.5,
		LowWater:     1.1,
		MinPackets:   64,
		RejectedStep: -1, // isolate the imbalance trigger
	})

	// Idle interval: no evidence, no state change.
	if ctrl.Observe() {
		t.Fatal("controller fired on an idle interval")
	}
	if st := ctrl.State(); st.Observations != 0 || !st.Armed {
		t.Fatalf("idle interval disturbed state: %+v", st)
	}

	// Step change: all traffic lands on chain 0 → imbalance 2.0 on a
	// 2-core parallel plan → exactly one replan.
	feedStep(t, pipe, 0, 512)
	if !ctrl.Observe() {
		t.Fatal("controller did not fire on a skewed interval")
	}
	st := ctrl.State()
	if st.Replans != 1 || st.Armed || st.LastReason == "" || st.LastImbalance != 2 {
		t.Fatalf("post-trip state wrong: %+v", st)
	}
	if pipe.Generation() != 1 {
		t.Fatalf("generation %d after the automatic replan, want 1", pipe.Generation())
	}

	// Steady skew: the controller stays disarmed — no flapping.
	for i := 0; i < 3; i++ {
		feedStep(t, pipe, 0, 512)
		if ctrl.Observe() {
			t.Fatalf("controller fired again on steady skew (round %d)", i)
		}
	}
	if st := ctrl.State(); st.Replans != 1 || st.Armed {
		t.Fatalf("steady skew flapped the controller: %+v", st)
	}
	if pipe.Generation() != 1 {
		t.Fatalf("generation moved to %d under steady skew", pipe.Generation())
	}

	// Balanced interval: re-arm...
	packets := equivPackets(512)
	for fed := 0; fed < len(packets); {
		if pipe.Push(fed%pipe.Chains(), packets[fed]) {
			fed++
		}
		pipe.Step()
	}
	for quiet := 0; quiet < 2; {
		if pipe.Step() == 0 && pipe.Queued() == 0 {
			quiet++
		} else {
			quiet = 0
		}
	}
	if ctrl.Observe() {
		t.Fatal("controller fired on a balanced interval")
	}
	if st := ctrl.State(); !st.Armed {
		t.Fatalf("balanced interval did not re-arm: %+v", st)
	}

	// ...so the next step change fires again.
	feedStep(t, pipe, 0, 512)
	if !ctrl.Observe() {
		t.Fatal("re-armed controller did not fire on a new skew")
	}
	if st := ctrl.State(); st.Replans != 2 {
		t.Fatalf("second skew: %+v", st)
	}
}

// TestControllerReplanHook proves a configured Replan hook replaces
// the default corrective action — the escape hatch hosts use when the
// library's Auto calibration must not run against their live
// terminals (rbrouter decides against a hermetic probe instead).
func TestControllerReplanHook(t *testing.T) {
	pipe := controllerPipe(t)
	hooked := 0
	ctrl := pipe.NewController(ControllerConfig{
		MinPackets:   64,
		RejectedStep: -1,
		Replan: func() error {
			hooked++
			return pipe.Replan(Options{Placement: Pipelined})
		},
	})
	feedStep(t, pipe, 0, 512)
	if !ctrl.Observe() {
		t.Fatal("controller did not fire")
	}
	if hooked != 1 {
		t.Fatalf("hook ran %d times, want 1", hooked)
	}
	if pipe.Placement() != Pipelined || pipe.Generation() != 1 {
		t.Fatalf("hook's replan not applied: %s gen %d", pipe.Placement(), pipe.Generation())
	}
	if st := ctrl.State(); st.Replans != 1 {
		t.Fatalf("state %+v", st)
	}
}

// TestControllerReplanError proves a failed corrective action does not
// latch the controller off: it re-arms so the persistent skew retries,
// and the error stays visible until a replan succeeds.
func TestControllerReplanError(t *testing.T) {
	pipe := controllerPipe(t)
	fail := true
	ctrl := pipe.NewController(ControllerConfig{
		MinPackets:   64,
		RejectedStep: -1,
		Replan: func() error {
			if fail {
				return fmt.Errorf("transient probe failure")
			}
			return pipe.Replan(Options{Placement: Auto})
		},
	})
	feedStep(t, pipe, 0, 512)
	if ctrl.Observe() {
		t.Fatal("a failed replan must not count as fired")
	}
	st := ctrl.State()
	if !st.Armed || st.LastError == "" || st.Replans != 0 {
		t.Fatalf("failed replan latched the controller: %+v", st)
	}
	// Same skew, next interval: the retry succeeds and clears the error.
	fail = false
	feedStep(t, pipe, 0, 512)
	if !ctrl.Observe() {
		t.Fatal("re-armed controller did not retry")
	}
	if st := ctrl.State(); st.Replans != 1 || st.LastError != "" {
		t.Fatalf("retry did not succeed cleanly: %+v", st)
	}
}

// TestControllerLive runs the controller as it ships: the watching
// goroutine over a started pipeline, a persistently skewed feeder, and
// the expectation that exactly one automatic replan fires. Under -race
// this is the controller's concurrency gate.
func TestControllerLive(t *testing.T) {
	table := equivTable(t)
	pipe, err := Load(branchyConfig, Options{
		Cores:         4,
		Placement:     Parallel,
		HandoffCycles: 100,
		Topology:      &Topology{},
		Prebound: func(chain int) map[string]Element {
			return newEquivTerminals().prebound(table)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Start(); err != nil {
		t.Fatal(err)
	}
	defer pipe.Stop()

	ctrl := pipe.NewController(ControllerConfig{Interval: 2 * time.Millisecond, RejectedStep: -1})
	ctrl.Start()
	defer ctrl.Stop()

	stop := make(chan struct{})
	fedDone := make(chan struct{})
	go func() {
		defer close(fedDone)
		packets := equivPackets(1 << 16)
		for i := 0; ; i = (i + 1) % len(packets) {
			select {
			case <-stop:
				return
			default:
			}
			pipe.Push(0, packets[i]) // all load on chain 0: imbalance 4.0
		}
	}()

	deadline := time.Now().Add(20 * time.Second)
	for ctrl.State().Replans == 0 {
		if time.Now().After(deadline) {
			t.Fatal("controller never replanned under a 4x skew")
		}
		time.Sleep(time.Millisecond)
	}
	// Let several more observation intervals pass under the same skew:
	// hysteresis must hold the controller at one replan.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-fedDone
	if st := ctrl.State(); st.Replans != 1 {
		t.Fatalf("replans = %d under steady skew, want exactly 1 (state %+v)", st.Replans, st)
	}
	if pipe.Generation() != 1 {
		t.Fatalf("generation %d, want 1", pipe.Generation())
	}
}

// TestReloadEquivalence is the hot-swap contract: a 4-core running
// pipeline reloaded mid-stream (twice) to the same program delivers
// the identical per-port counts as an undisturbed single-core
// reference, with zero packets lost. Under -race this is also the
// concurrency gate for the drain barrier: the feeder pushes from its
// own goroutine throughout both swaps.
func TestReloadEquivalence(t *testing.T) {
	const n = 8192
	table := equivTable(t)

	// Reference counts (same construction as TestLoadEquivalence).
	ref := newEquivTerminals()
	pipeRef, err := Load(branchyConfig, Options{Prebound: func(int) map[string]Element { return ref.prebound(table) }})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range equivPackets(n) {
		for !pipeRef.Push(0, p) {
			pipeRef.Step()
		}
		pipeRef.Step()
	}
	for pipeRef.Step() > 0 || pipeRef.Queued() > 0 {
	}
	want := ref.counts()
	if ref.total() != n {
		t.Fatalf("reference counts %v don't cover all %d packets", want, n)
	}

	var mu sync.Mutex
	var terms []*equivTerminals
	opts := Options{
		Cores:     4,
		Placement: Parallel,
		Prebound: func(chain int) map[string]Element {
			term := newEquivTerminals()
			mu.Lock()
			terms = append(terms, term)
			mu.Unlock()
			return term.prebound(table)
		},
	}
	pipe, err := Load(branchyConfig, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Start(); err != nil {
		t.Fatal(err)
	}
	defer pipe.Stop()

	total := func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		var s uint64
		for _, term := range terms {
			s += term.total()
		}
		return s
	}

	packets := equivPackets(n)
	deadline := time.Now().Add(30 * time.Second)
	fedDone := make(chan struct{})
	go func() {
		defer close(fedDone)
		for fed := 0; fed < n; {
			// Chains() tracks the live plan; Push rejects during a swap
			// and the feeder just retries — the normal backpressure path.
			if pipe.Push(fed%pipe.Chains(), packets[fed]) {
				fed++
			} else if time.Now().After(deadline) {
				t.Errorf("feed stalled at %d/%d", fed, n)
				return
			}
		}
	}()

	// Two mid-stream hot-swaps while the feeder runs.
	for g := 1; g <= 2; g++ {
		time.Sleep(3 * time.Millisecond)
		if err := pipe.Reload(branchyConfig, opts); err != nil {
			t.Fatal(err)
		}
		if got := pipe.Generation(); got != uint64(g) {
			t.Fatalf("generation %d after reload %d", got, g)
		}
	}
	<-fedDone

	for total() < n {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/%d before deadline", total(), n)
		}
		time.Sleep(time.Millisecond)
	}
	if drops := pipe.Drops(); drops != 0 {
		t.Errorf("%d drops across reloads, want 0 (zero-loss drain contract)", drops)
	}
	var got [4]uint64
	mu.Lock()
	for _, term := range terms {
		c := term.counts()
		for i := range got {
			got[i] += c[i]
		}
	}
	mu.Unlock()
	if got != want {
		t.Errorf("per-port counts across reloads = %v, want %v", got, want)
	}
}

// TestReloadStepMode proves the drain barrier works without a runner:
// a pipeline driven by Step reloads mid-stream, and every packet fed
// before and after the swap is delivered.
func TestReloadStepMode(t *testing.T) {
	const n = 2048
	table := equivTable(t)
	var terms []*equivTerminals
	opts := Options{
		Cores:     2,
		Placement: Pipelined,
		Prebound: func(chain int) map[string]Element {
			term := newEquivTerminals()
			terms = append(terms, term)
			return term.prebound(table)
		},
	}
	pipe, err := Load(branchyConfig, opts)
	if err != nil {
		t.Fatal(err)
	}
	packets := equivPackets(n)
	feed := func(lo, hi int) {
		for fed := lo; fed < hi; {
			for c := 0; c < pipe.Chains() && fed < hi; c++ {
				if pipe.Push(c, packets[fed]) {
					fed++
				}
			}
			pipe.Step()
		}
	}
	feed(0, n/2)
	// Packets are mid-flight in the handoff rings right now; the swap
	// must push them all the way out first.
	if err := pipe.Reload(branchyConfig, opts); err != nil {
		t.Fatal(err)
	}
	feed(n/2, n)
	for quiet := 0; quiet < 2; {
		if pipe.Step() == 0 && pipe.Queued() == 0 {
			quiet++
		} else {
			quiet = 0
		}
	}
	var total uint64
	for _, term := range terms {
		total += term.total()
	}
	if total != n {
		t.Fatalf("delivered %d of %d across a step-mode reload", total, n)
	}
	if pipe.Drops() != 0 {
		t.Fatalf("%d drops", pipe.Drops())
	}
}

// TestSnapshotUnifies covers the one-call observability surface: plan
// identity, per-core counters, ring depths, element counters, and the
// Delta rate view.
func TestSnapshotUnifies(t *testing.T) {
	const n = 512
	table := equivTable(t)
	var terms []*equivTerminals
	pipe, err := Load(branchyConfig, Options{
		Cores:     2,
		Placement: Pipelined,
		Prebound: func(chain int) map[string]Element {
			term := newEquivTerminals()
			terms = append(terms, term)
			return term.prebound(table)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	drive := func(lo, hi int) {
		packets := equivPackets(hi)
		for fed := lo; fed < hi; {
			if pipe.Push(0, packets[fed]) {
				fed++
			}
			pipe.Step()
		}
		for quiet := 0; quiet < 2; {
			if pipe.Step() == 0 && pipe.Queued() == 0 {
				quiet++
			}
		}
	}
	drive(0, n)

	snap := pipe.Snapshot()
	if snap.Plan != "pipelined" || snap.Generation != 0 || snap.Cores != 2 {
		t.Fatalf("snapshot identity wrong: %+v", snap)
	}
	if len(snap.CoreStats) != 2 {
		t.Fatalf("%d core stats, want 2", len(snap.CoreStats))
	}
	if snap.TotalPackets() == 0 {
		t.Fatal("no packets counted")
	}
	roles := map[string]int{}
	for _, r := range snap.Rings {
		roles[r.Role]++
		if r.Cap == 0 {
			t.Errorf("ring %+v has no capacity", r)
		}
	}
	if roles["input"] != 1 || roles["handoff"] != 1 {
		t.Fatalf("ring roles %v, want 1 input + 1 handoff", roles)
	}
	found := false
	for _, e := range snap.Elements {
		if e.Name == "good" && e.Class == "Counter" {
			found = true
			if e.Counters["packets"] == 0 {
				t.Errorf("element %q counted nothing: %v", e.Name, e.Counters)
			}
		}
	}
	if !found {
		t.Fatalf("element counters missing the 'good' Counter: %+v", snap.Elements)
	}

	// Delta: drive more traffic, subtract, and only the increment
	// remains.
	drive(n, 2*n)
	snap2 := pipe.Snapshot()
	d := snap2.Delta(snap)
	if got := d.TotalPackets(); got != snap2.TotalPackets()-snap.TotalPackets() {
		t.Errorf("Delta packets = %d, want %d", got, snap2.TotalPackets()-snap.TotalPackets())
	}

	// Delta across a generation boundary refuses to subtract.
	if err := pipe.Reload(branchyConfig, Options{Placement: Pipelined}); err != nil {
		t.Fatal(err)
	}
	snap3 := pipe.Snapshot()
	if d := snap3.Delta(snap2); d.Generation != 1 || d.TotalPackets() != snap3.TotalPackets() {
		t.Errorf("Delta across generations should return the new snapshot unchanged")
	}

	// The legacy accessors are shims over the same data.
	if pipe.Queued() != snap3.Queued || pipe.Drops() != snap3.Drops {
		t.Error("Queued/Drops disagree with Snapshot")
	}
}

// TestDOTGenerations covers the chain-addressable DOT export and its
// plan-identity header.
func TestDOTGenerations(t *testing.T) {
	table := equivTable(t)
	opts := Options{
		Cores:     2,
		Placement: Parallel,
		Prebound:  func(int) map[string]Element { return newEquivTerminals().prebound(table) },
	}
	pipe, err := Load(branchyConfig, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dot := pipe.DOT(); !strings.Contains(dot, `label="parallel plan, gen 0, chain 0"`) {
		t.Errorf("zero-arg DOT header missing plan identity:\n%s", dot)
	}
	if dot := pipe.DOT(1); !strings.Contains(dot, "chain 1") {
		t.Errorf("DOT(1) not labeled for chain 1:\n%s", dot)
	}
	if pipe.DOT(99) != "" {
		t.Error("out-of-range chain should render nothing")
	}
	if err := pipe.Reload(branchyConfig, opts); err != nil {
		t.Fatal(err)
	}
	if dot := pipe.DOT(); !strings.Contains(dot, "gen 1") {
		t.Errorf("reloaded DOT header missing new generation:\n%s", dot)
	}
}
