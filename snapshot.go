package routebricks

import (
	"fmt"
	"strings"

	"routebricks/internal/pkt"
	"routebricks/internal/stats"
)

// This file is the observability half of the control plane: one typed
// Snapshot unifying what Stats()/Drops()/Queued() and ad-hoc element
// counter reads used to expose piecemeal. cmd/rbrouter serves it as
// JSON on -stats-addr; Snapshot.Delta turns two snapshots into rates.

// Snapshot captures a point-in-time view of the pipeline: plan
// identity (kind, generation, calibration decision), per-core
// counters, per-ring depth/capacity/backpressure, and the atomic
// counters of every graph element that exports any (Count, Packets,
// Bytes). It is safe to call concurrently with the datapath and with
// Reload/Replan; counters reset when a swap installs a new generation,
// which Delta detects via the Generation field.
func (p *Pipeline) Snapshot() Snapshot {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	plan := p.plan
	s := Snapshot{
		Plan:       plan.Kind().String(),
		Generation: p.generation,
		Decision:   p.decision,
		Cores:      plan.Cores(),
		Chains:     plan.Chains(),
		Queued:     plan.Queued(),
		Drops:      plan.Drops() + p.drainDrops.Load(),
		Rejected:   plan.Rejections(),
	}
	if fib := p.opts.FIB; fib != nil {
		s.FIBGeneration = fib.Generation()
		s.FIBRoutes = fib.Len()
	}
	gets, hits, puts, doublePuts := pkt.DefaultPool.Stats()
	s.Pool = stats.PoolSnapshot{
		Shards:     pkt.DefaultPool.Shards(),
		Free:       pkt.DefaultPool.FreeLen(),
		Gets:       gets,
		Hits:       hits,
		Puts:       puts,
		DoublePuts: doublePuts,
	}
	if t := p.rssTable; t != nil {
		s.RSS = &stats.RSSSnapshot{
			Buckets:     t.Buckets(),
			Chains:      t.Chains(),
			Generation:  t.Generation(),
			Steers:      t.Steers(),
			Moved:       t.Moved(),
			Assignments: t.Assignments(),
			Counts:      t.Counts(),
		}
	}
	for _, cs := range plan.Stats() {
		s.CoreStats = append(s.CoreStats, stats.CoreSnapshot{
			Core:     cs.Core,
			Socket:   cs.Socket,
			Chain:    cs.Chain,
			Stages:   cs.Stages,
			Packets:  cs.Packets(),
			Polls:    cs.Polls(),
			Empty:    cs.Empty(),
			Handoffs: cs.Handoffs(),
			Steals:   cs.Steals(),
			Stolen:   cs.Stolen(),
		})
	}
	s.Imbalance = s.ImbalanceRatio()
	for _, pr := range plan.Rings() {
		s.Rings = append(s.Rings, stats.RingSnapshot{
			Role:     pr.Role,
			Chain:    pr.Chain,
			FromCore: pr.From,
			ToCore:   pr.To,
			Cost:     pr.Cost,
			Len:      pr.Ring.Len(),
			Cap:      pr.Ring.Cap(),
			Rejected: pr.Ring.Rejected(),
		})
	}
	for chain := 0; chain < plan.Chains(); chain++ {
		r := plan.Router(chain)
		if r == nil {
			continue
		}
		for _, name := range r.Elements() {
			el := r.Get(name)
			counters := elementCounters(el)
			if len(counters) == 0 {
				continue
			}
			s.Elements = append(s.Elements, stats.ElementSnapshot{
				Chain:    chain,
				Name:     name,
				Class:    className(el),
				Counters: counters,
			})
		}
	}
	return s
}

// elementCounters harvests an element's exported counters. Only the
// accessors this codebase implements atomically are probed (Count,
// Packets, Bytes — Sink, Counter, Discard, ...), so harvesting is safe
// while datapath cores are writing.
func elementCounters(e Element) map[string]uint64 {
	var m map[string]uint64
	set := func(k string, v uint64) {
		if m == nil {
			m = make(map[string]uint64, 2)
		}
		m[k] = v
	}
	if c, ok := e.(interface{ Count() uint64 }); ok {
		set("count", c.Count())
	}
	if c, ok := e.(interface{ Packets() uint64 }); ok {
		set("packets", c.Packets())
	}
	if c, ok := e.(interface{ Bytes() uint64 }); ok {
		set("bytes", c.Bytes())
	}
	return m
}

// className renders an element's type the way DOT does: the bare Go
// type name, pointer and package stripped.
func className(e Element) string {
	t := fmt.Sprintf("%T", e)
	return t[strings.LastIndexByte(t, '.')+1:]
}
