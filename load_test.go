package routebricks

import (
	"fmt"
	"net/netip"
	"runtime"
	"strings"
	"testing"
	"time"

	"routebricks/internal/click"
	"routebricks/internal/elements"
	"routebricks/internal/lpm"
	"routebricks/internal/pkt"
)

// branchyConfig is a Click-language program with one multi-output
// element per trunk hop, each side output routed to its own terminal —
// the graph shape the graph-first planner exists for.
const branchyConfig = `
	// IP forwarding with per-cause accounting; fib and the four
	// terminals are prebound by the host.
	check :: CheckIPHeader;
	rt    :: LPMLookup(fib);
	ttl   :: DecIPTTL;
	good  :: Counter;

	check[0] -> rt;
	check[1] -> badhdr;
	rt[0]    -> ttl;
	rt[1]    -> badroute;
	ttl[0]   -> good;
	ttl[1]   -> expired;
	good     -> out;
`

// equivTerminals is one chain's set of counting terminals.
type equivTerminals struct {
	out, badhdr, badroute, expired *elements.Sink
}

func newEquivTerminals() *equivTerminals {
	return &equivTerminals{
		out: &elements.Sink{}, badhdr: &elements.Sink{},
		badroute: &elements.Sink{}, expired: &elements.Sink{},
	}
}

func (e *equivTerminals) prebound(table *lpm.Dir248) map[string]Element {
	return map[string]Element{
		"fib":      elements.NewLPMLookup(table),
		"out":      e.out,
		"badhdr":   e.badhdr,
		"badroute": e.badroute,
		"expired":  e.expired,
	}
}

// counts returns (delivered, badHeader, routeMiss, ttlExpired).
func (e *equivTerminals) counts() [4]uint64 {
	return [4]uint64{e.out.Count(), e.badhdr.Count(), e.badroute.Count(), e.expired.Count()}
}

func (e *equivTerminals) total() uint64 {
	c := e.counts()
	return c[0] + c[1] + c[2] + c[3]
}

// equivPackets builds a deterministic mixed workload: i%4 selects
// routed, bad-checksum, route-miss, or TTL-expiring packets.
func equivPackets(n int) []*pkt.Packet {
	src := netip.MustParseAddr("10.1.0.9")
	out := make([]*pkt.Packet, n)
	for i := range out {
		dst := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
		if i%4 == 2 {
			dst = netip.AddrFrom4([4]byte{172, 16, 0, byte(i)}) // not in the FIB
		}
		p := pkt.New(128, src, dst, uint16(1000+i%512), 80)
		h := p.IPv4()
		switch i % 4 {
		case 1: // stale checksum: CheckIPHeader must divert it
			h.SetTTL(77)
		case 3: // expires at DecIPTTL
			h.SetTTL(1)
			h.UpdateChecksum()
		default:
			h.SetTTL(64)
			h.UpdateChecksum()
		}
		p.SeqNo = uint64(i)
		out[i] = p
	}
	return out
}

func equivTable(t testing.TB) *lpm.Dir248 {
	t.Helper()
	table := lpm.NewDir248()
	if err := table.Insert(netip.MustParsePrefix("10.0.0.0/16"), 1); err != nil {
		t.Fatal(err)
	}
	table.Freeze()
	return table
}

// TestLoadEquivalence proves the graph-level contract: the branchy
// program run through routebricks.Load at 1/2/4 cores, under both
// placements, on real goroutines, delivers the identical per-port
// packet counts as the same graph stepped single-threaded on a plain
// Router. Run under -race this is also the concurrency gate for the
// graph planner.
func TestLoadEquivalence(t *testing.T) {
	const n = 8192
	table := equivTable(t)

	// Reference: the same Click text on a plain single-core Router.
	ref := newEquivTerminals()
	router, err := click.ParseConfig(branchyConfig, elements.StandardRegistry(), ref.prebound(table))
	if err != nil {
		t.Fatal(err)
	}
	entry := router.Get("check")
	ctx := &click.Context{}
	for _, p := range equivPackets(n) {
		entry.Push(ctx, 0, p)
	}
	want := ref.counts()
	if ref.total() != n {
		t.Fatalf("reference counts %v don't cover all %d packets", want, n)
	}
	for i, w := range want {
		if w == 0 {
			t.Fatalf("reference class %d empty — the workload no longer exercises every port", i)
		}
	}

	for _, kind := range []PlanKind{Parallel, Pipelined} {
		for _, cores := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/cores=%d", kind, cores), func(t *testing.T) {
				var chains []*equivTerminals
				pipe, err := Load(branchyConfig, Options{
					Cores:     cores,
					Placement: kind,
					Prebound: func(chain int) map[string]Element {
						term := newEquivTerminals()
						chains = append(chains, term)
						return term.prebound(table)
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := pipe.Start(); err != nil {
					t.Fatal(err)
				}
				defer pipe.Stop()

				total := func() uint64 {
					var s uint64
					for _, term := range chains {
						s += term.total()
					}
					return s
				}
				deadline := time.Now().Add(30 * time.Second)
				packets := equivPackets(n)
				for fed := 0; fed < n; {
					if pipe.Push(fed%pipe.Chains(), packets[fed]) {
						fed++
					} else {
						runtime.Gosched()
					}
					if time.Now().After(deadline) {
						t.Fatalf("feed stalled at %d/%d", fed, n)
					}
				}
				for total() < n {
					runtime.Gosched()
					if time.Now().After(deadline) {
						t.Fatalf("delivered %d/%d before deadline", total(), n)
					}
				}

				if pipe.Drops() != 0 {
					t.Errorf("%d plan drops, want 0 (loss-free contract)", pipe.Drops())
				}
				var got [4]uint64
				for _, term := range chains {
					c := term.counts()
					for i := range got {
						got[i] += c[i]
					}
				}
				if got != want {
					t.Errorf("per-port counts = %v, want %v (single-core reference)", got, want)
				}
			})
		}
	}
}

// TestLoadEquivalenceSteal is the work-stealing analog of
// TestLoadEquivalence: the whole workload is fed to chain 0 of a
// multi-core parallel plan with stealing enabled — the worst imbalance
// a plan can see. The per-port counts must still match the single-core
// reference exactly: a steal moves a packet to a sibling's graph, it
// must never lose, duplicate, or misclassify one. Run under -race this
// is the concurrency gate for the steal path end to end.
func TestLoadEquivalenceSteal(t *testing.T) {
	const n = 8192
	table := equivTable(t)

	ref := newEquivTerminals()
	router, err := click.ParseConfig(branchyConfig, elements.StandardRegistry(), ref.prebound(table))
	if err != nil {
		t.Fatal(err)
	}
	entry := router.Get("check")
	ctx := &click.Context{}
	for _, p := range equivPackets(n) {
		entry.Push(ctx, 0, p)
	}
	want := ref.counts()

	for _, cores := range []int{2, 4} {
		t.Run(fmt.Sprintf("parallel/cores=%d", cores), func(t *testing.T) {
			var chains []*equivTerminals
			pipe, err := Load(branchyConfig, Options{
				Cores:     cores,
				Placement: Parallel,
				Steal:     true,
				StealMin:  1,
				Prebound: func(chain int) map[string]Element {
					term := newEquivTerminals()
					chains = append(chains, term)
					return term.prebound(table)
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			total := func() uint64 {
				var s uint64
				for _, term := range chains {
					s += term.total()
				}
				return s
			}
			deadline := time.Now().Add(30 * time.Second)
			packets := equivPackets(n)
			// Build the backlog before the cores exist: every worker's
			// first observation is a deep ring 0, so the idle siblings
			// must steal their share rather than find it already drained.
			fed := 0
			for fed < n && pipe.Push(0, packets[fed]) {
				fed++
			}
			if err := pipe.Start(); err != nil {
				t.Fatal(err)
			}
			defer pipe.Stop()
			for fed < n { // everything into chain 0
				if pipe.Push(0, packets[fed]) {
					fed++
				} else {
					runtime.Gosched()
				}
				if time.Now().After(deadline) {
					t.Fatalf("feed stalled at %d/%d", fed, n)
				}
			}
			for total() < n {
				runtime.Gosched()
				if time.Now().After(deadline) {
					t.Fatalf("delivered %d/%d before deadline", total(), n)
				}
			}

			if pipe.Drops() != 0 {
				t.Errorf("%d plan drops, want 0 (loss-free contract)", pipe.Drops())
			}
			var got [4]uint64
			for _, term := range chains {
				c := term.counts()
				for i := range got {
					got[i] += c[i]
				}
			}
			if got != want {
				t.Errorf("per-port counts = %v, want %v (single-core reference)", got, want)
			}
			var steals, stolen uint64
			for _, cs := range pipe.Plan().Stats() {
				steals += cs.Steals()
				stolen += cs.Stolen()
			}
			if steals != stolen {
				t.Errorf("steals (%d) != stolen (%d)", steals, stolen)
			}
			t.Logf("cores=%d: %d packets stolen under full skew", cores, steals)
		})
	}
}

// TestLoadDeterministicStep drives a loaded pipeline with Step instead
// of goroutines — the virtual-core mode simulations use.
func TestLoadDeterministicStep(t *testing.T) {
	const n = 1024
	table := equivTable(t)
	var chains []*equivTerminals
	pipe, err := Load(branchyConfig, Options{
		Cores:     2,
		Placement: Pipelined,
		Prebound: func(chain int) map[string]Element {
			term := newEquivTerminals()
			chains = append(chains, term)
			return term.prebound(table)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	packets := equivPackets(n)
	fed := 0
	for fed < n {
		for c := 0; c < pipe.Chains() && fed < n; c++ {
			if pipe.Push(c, packets[fed]) {
				fed++
			}
		}
		pipe.Step()
	}
	for quiet := 0; quiet < 2; {
		if pipe.Step() == 0 && pipe.Queued() == 0 {
			quiet++
		} else {
			quiet = 0
		}
	}
	var total uint64
	for _, term := range chains {
		total += term.total()
	}
	if total != n {
		t.Fatalf("delivered %d of %d", total, n)
	}
}

// TestLoadSurface covers the inspection API: Describe, DOT, Element,
// and option validation.
func TestLoadSurface(t *testing.T) {
	table := equivTable(t)
	pipe, err := Load(branchyConfig, Options{
		Cores:     4,
		Placement: Pipelined,
		Prebound: func(chain int) map[string]Element {
			return newEquivTerminals().prebound(table)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Cores() != 4 {
		t.Errorf("Cores = %d", pipe.Cores())
	}
	desc := pipe.Describe()
	if !strings.Contains(desc, "pipelined plan") || !strings.Contains(desc, "check") {
		t.Errorf("Describe missing placement detail:\n%s", desc)
	}
	dot := pipe.DOT()
	for _, want := range []string{`"check" -> "rt" [label="[0]->[0]"]`, `"check" -> "badhdr" [label="[1]->[0]"]`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if pipe.Element(0, "good") == nil || pipe.Element(0, "ghost") != nil {
		t.Error("Element lookup wrong")
	}
	if pipe.Router(0) == nil {
		t.Error("Router(0) nil")
	}

	if _, err := Load("check :: CheckIPHeader", Options{}); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := Load("a :: Nope; a -> a;", Options{}); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := Load(branchyConfig, Options{Cores: -1}); err == nil {
		t.Error("negative cores accepted")
	}
}
