package routebricks

// BenchmarkWireIO measures the kernel wire-I/O layer in isolation: how
// many datagrams per second one reader/writer pair moves across a
// loopback socket pair, per syscall path (mmsg vs the per-packet
// fallback) and per batch size, plus time-interleaved ratio runs
// (ratio/batch=N) whose xfall metric — fallback time over mmsg time
// for identical interleaved windows — is what the benchjson -wire-tol
// gate consumes: mmsg at batch 32 must hold the configured factor over
// the per-packet fallback, or CI fails.
//
// The loop is lockstep windowed: one goroutine sends a window of KP
// datagrams, then reads the whole window back before sending the next.
// Loopback enqueues synchronously into the (4MB) receive buffer, so a
// bounded window cannot drop, and with no second goroutine the number
// measures syscall cost rather than scheduler behavior.

import (
	"fmt"
	"net"
	"testing"
	"time"

	"routebricks/internal/netio"
	"routebricks/internal/pkt"
)

const wireFrameLen = 128 // demo traffic frame size (trafficgen Fixed(128))

func benchListenLoop(b *testing.B) *net.UDPConn {
	b.Helper()
	c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	c.SetReadBuffer(4 << 20)
	c.SetWriteBuffer(4 << 20)
	return c
}

func benchWireIO(b *testing.B, forceFallback bool, batch int) {
	rxConn, txConn := benchListenLoop(b), benchListenLoop(b)
	cfg := netio.Config{Batch: batch, ForceFallback: forceFallback}
	shard := pkt.DefaultPool.Shard(0)
	r := netio.NewBatchReader(rxConn, cfg)
	defer r.Release()
	w := netio.NewBatchWriter(txConn, cfg)

	// The send window is reused every iteration: the kernel copies into
	// skbs at syscall time, so the same buffers can go out back to back.
	window := make([]*pkt.Packet, batch)
	for i := range window {
		window[i] = pkt.DefaultPool.Get(wireFrameLen)
	}
	defer func() {
		for _, p := range window {
			pkt.DefaultPool.Put(p)
		}
	}()
	addr := rxConn.LocalAddr().(*net.UDPAddr)
	rxConn.SetReadDeadline(time.Now().Add(5 * time.Minute))
	rb := pkt.NewBatch(batch)

	b.SetBytes(wireFrameLen)
	b.ResetTimer()
	for sent := 0; sent < b.N; {
		win := batch
		if left := b.N - sent; left < win {
			win = left
		}
		n, err := w.WriteBatch(window[:win], addr)
		if err != nil {
			b.Fatal(err)
		}
		for got := 0; got < n; {
			rb.Reset()
			k, err := r.ReadBatch(rb)
			if err != nil {
				b.Fatal(err)
			}
			shard.PutBatch(rb)
			got += k
		}
		sent += n
	}
	b.StopTimer()
	// Datagrams through the round trip per second — each counted b.N
	// frame was both sent and received.
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpps")
	// Kernel crossings per datagram (read + write syscalls over b.N
	// round-tripped frames): the quantity batching actually amortizes.
	// On hosts where syscall entry is expensive (KPTI/retpoline) this is
	// what the Mpps ratio tracks; on paravirtualized hosts the loopback
	// delivery path dominates and this metric still records the 2/batch
	// vs 2/1 crossing reduction.
	if b.N > 0 {
		rs, ws := r.Stats(), w.Stats()
		b.ReportMetric(float64(rs.Batches+ws.Batches)/float64(b.N), "sys/pkt")
	}
}

// wirePair is one send/receive loopback socket pair on one syscall
// path, with the reusable send window the lockstep loop flushes.
type wirePair struct {
	r      *netio.BatchReader
	w      *netio.BatchWriter
	rxc    *net.UDPConn
	addr   *net.UDPAddr
	window []*pkt.Packet
	rb     *pkt.Batch
	shard  *pkt.PoolShard
}

func newWirePair(b *testing.B, forceFallback bool, batch int) *wirePair {
	rxConn, txConn := benchListenLoop(b), benchListenLoop(b)
	cfg := netio.Config{Batch: batch, ForceFallback: forceFallback}
	p := &wirePair{
		r:      netio.NewBatchReader(rxConn, cfg),
		w:      netio.NewBatchWriter(txConn, cfg),
		rxc:    rxConn,
		addr:   rxConn.LocalAddr().(*net.UDPAddr),
		window: make([]*pkt.Packet, batch),
		rb:     pkt.NewBatch(batch),
		shard:  pkt.DefaultPool.Shard(0),
	}
	for i := range p.window {
		p.window[i] = pkt.DefaultPool.Get(wireFrameLen)
	}
	b.Cleanup(func() {
		p.r.Release()
		for _, pk := range p.window {
			pkt.DefaultPool.Put(pk)
		}
	})
	rxConn.SetReadDeadline(time.Now().Add(5 * time.Minute))
	return p
}

// roundTrip sends win datagrams and reads them all back.
func (p *wirePair) roundTrip(b *testing.B, win int) {
	n, err := p.w.WriteBatch(p.window[:win], p.addr)
	if err != nil {
		b.Fatal(err)
	}
	for got := 0; got < n; {
		p.rb.Reset()
		k, err := p.r.ReadBatch(p.rb)
		if err != nil {
			b.Fatal(err)
		}
		p.shard.PutBatch(p.rb)
		got += k
	}
}

// benchWireRatio measures the mmsg-vs-fallback speedup with the two
// paths interleaved window by window, so both sample the same
// machine-noise environment. The separate per-path sub-benchmarks run
// minutes apart — on a shared or paravirtualized host whose effective
// speed swings over minutes, their Mpps ratio measures the neighbors,
// not the syscall paths. This one alternates a batch-sized round-trip
// window between the two socket pairs every ~100µs and reports xfall =
// fallback time / mmsg time for identical datagram counts — the number
// the benchjson -wire-tol gate consumes.
func benchWireRatio(b *testing.B, batch int) {
	mmsg := newWirePair(b, false, batch)
	fall := newWirePair(b, true, batch)
	var mT, fT time.Duration
	b.SetBytes(wireFrameLen)
	b.ResetTimer()
	for sent := 0; sent < b.N; {
		win := batch
		if left := b.N - sent; left < win {
			win = left
		}
		t0 := time.Now()
		mmsg.roundTrip(b, win)
		t1 := time.Now()
		fall.roundTrip(b, win)
		fT += time.Since(t1)
		mT += t1.Sub(t0)
		sent += win
	}
	b.StopTimer()
	if mT > 0 {
		b.ReportMetric(float64(fT)/float64(mT), "xfall")
		b.ReportMetric(float64(b.N)/mT.Seconds()/1e6, "Mpps")
	}
}

func BenchmarkWireIO(b *testing.B) {
	paths := []struct {
		name  string
		force bool
	}{{"fallback", true}}
	if netio.Available() {
		paths = append(paths, struct {
			name  string
			force bool
		}{"mmsg", false})
	}
	for _, path := range paths {
		for _, batch := range []int{1, 8, 32} {
			b.Run(fmt.Sprintf("path=%s/batch=%d", path.name, batch), func(b *testing.B) {
				benchWireIO(b, path.force, batch)
			})
		}
	}
	if netio.Available() {
		for _, batch := range []int{8, 32} {
			b.Run(fmt.Sprintf("ratio/batch=%d", batch), func(b *testing.B) {
				benchWireRatio(b, batch)
			})
		}
	}
}
