package routebricks

import (
	"strings"
	"testing"
)

// rewardModel is a physically implausible cost model that asserts ring
// crossings are beneficial. It exists to prove the placement decision
// follows whatever the model says — the flat 120-cycle constant is
// gone — by constructing the one situation where a handoff-heavy plan
// must win.
type rewardModel struct{}

func (rewardModel) HandoffCost(from, to int) float64  { return -1000 }
func (rewardModel) InputCost(core, qsock int) float64 { return 0 }
func (rewardModel) Describe() string                  { return "test model: handoffs win" }

// TestTopologyPlacement is the topology acceptance contract: under a
// 2-socket Topology every parallel chain's cores stay on the socket
// that owns its input ring, a pipelined candidate's cross-socket
// handoff is charged the model's premium (so Auto avoids it), and a
// cross-socket handoff is chosen only when the cost model says it
// wins.
func TestTopologyPlacement(t *testing.T) {
	table := equivTable(t)
	prebound := func(chain int) map[string]Element {
		return newEquivTerminals().prebound(table)
	}

	// Parallel chains pin to their input ring's socket: queues 0,1 are
	// owned by socket 1 and queues 2,3 by socket 0, so the planner must
	// place chains 0,1 on cores 2,3 and chains 2,3 on cores 0,1.
	topo := Topology{Sockets: 2, CoresPerSocket: 2, QueueSocket: []int{1, 1, 0, 0}}
	pipe, err := Load(branchyConfig, Options{
		Cores:         4,
		Placement:     Parallel,
		Topology:      &topo,
		HandoffCycles: 100,
		Prebound:      prebound,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range pipe.Stats() {
		want := topo.QueueSocketOf(cs.Chain)
		if cs.Socket != want {
			t.Errorf("chain %d placed on core %d (socket %d), want its queue's socket %d",
				cs.Chain, cs.Core, cs.Socket, want)
		}
		if topo.SocketOf(cs.Core) != cs.Socket {
			t.Errorf("core %d reports socket %d, topology says %d", cs.Core, cs.Socket, topo.SocketOf(cs.Core))
		}
	}
	if desc := pipe.Describe(); !strings.Contains(desc, "(socket 1)") {
		t.Errorf("Describe does not show sockets:\n%s", desc)
	}
	snap := pipe.Snapshot()
	for _, cs := range snap.CoreStats {
		if cs.Socket != topo.SocketOf(cs.Core) {
			t.Errorf("snapshot core %d socket %d, want %d", cs.Core, cs.Socket, topo.SocketOf(cs.Core))
		}
	}

	// The cross-socket premium is real: the same program calibrated at
	// 2 cores splits the pipelined candidate across sockets, which must
	// record cross-socket crossings and score strictly worse than the
	// same candidate on a flat topology. Auto still picks parallel.
	prebound2, sinkFn := autoPrebound(t)
	load := func(topo *Topology) *Pipeline {
		p, err := Load(placementConfig, Options{
			Cores:         2,
			Placement:     Auto,
			Topology:      topo,
			HandoffCycles: 100,
			Prebound:      prebound2,
			Sink:          sinkFn,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	flat := load(&Topology{})
	split := load(&Topology{Sockets: 2, CoresPerSocket: 1})
	if flat.Placement() != Parallel || split.Placement() != Parallel {
		t.Fatalf("Auto picked %s (flat) / %s (split), want parallel for both",
			flat.Placement(), split.Placement())
	}
	flatPip, splitPip := flat.Calibration()[1], split.Calibration()[1]
	if flatPip.CrossSocketPackets != 0 {
		t.Errorf("flat pipelined candidate crossed %d sockets", flatPip.CrossSocketPackets)
	}
	if splitPip.CrossSocketPackets == 0 {
		t.Error("2-socket pipelined candidate recorded no cross-socket crossings")
	}
	if splitPip.Score <= flatPip.Score {
		t.Errorf("cross-socket pipelined score %.0f not above same-socket %.0f — the premium was not charged",
			splitPip.Score, flatPip.Score)
	}
	// The handoff ring's endpoints and price surface in the snapshot.
	var sawPriced bool
	for _, r := range split.Snapshot().Rings {
		if r.Role == "input" && r.FromCore != -1 {
			t.Errorf("input ring claims producer core %d", r.FromCore)
		}
	}
	pipe2, err := Load(placementConfig, Options{
		Cores: 2, Placement: Pipelined,
		Topology: &Topology{Sockets: 2, CoresPerSocket: 1}, HandoffCycles: 100,
		Prebound: prebound2, Sink: sinkFn,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range pipe2.Snapshot().Rings {
		if r.Role == "handoff" {
			sawPriced = true
			if r.Cost != 100*3 { // cross-socket: HandoffCycles × default factor
				t.Errorf("cross-socket handoff priced %.0f, want 300", r.Cost)
			}
		}
	}
	if !sawPriced {
		t.Fatal("no handoff ring in the 2-core pipelined snapshot")
	}

	// A cross-socket handoff is chosen only when the model says it
	// wins: substitute a model that rewards crossings and the same
	// calibration must flip to pipelined.
	rewarded, err := Load(placementConfig, Options{
		Cores:     2,
		Placement: Auto,
		Topology:  &Topology{Sockets: 2, CoresPerSocket: 1},
		CostModel: rewardModel{},
		Prebound:  prebound2,
		Sink:      sinkFn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rewarded.Placement() != Pipelined {
		t.Fatalf("model that rewards handoffs still produced %s — the decision is not model-driven",
			rewarded.Placement())
	}
	if d := rewarded.Snapshot().Decision; !strings.Contains(d, "test model: handoffs win") {
		t.Errorf("decision does not record the substituted model: %q", d)
	}
}
