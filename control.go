package routebricks

import (
	"fmt"

	"routebricks/internal/click"
	"routebricks/internal/pkt"
	"routebricks/internal/trafficgen"
)

// This file is the adaptive half of the control plane: Placement: Auto
// calibration (§4.2 says the best core allocation depends on the
// workload; we measure instead of hard-coding) and the hot-swap
// machinery behind Reload and Replan (§5's operators re-tune as traffic
// shifts; rbrouter wires Reload to SIGHUP).

// Calibration parameters. The workload is small enough to finish in
// well under a millisecond per candidate and fixed-seed so the same
// graph always yields the same decision.
const (
	// calibPackets is the synthetic workload size per candidate.
	calibPackets = 1024
	// handoffCycles charges each packet that crossed a handoff ring the
	// modeled cost of the inter-core cache-line transfers the crossing
	// implies — the coherence traffic the paper identifies as the reason
	// the parallel allocation wins (§4.2).
	handoffCycles = 120
	// maxCalibRounds bounds a calibration against graphs that never
	// drain (a cycle that regenerates packets); the score covers
	// whatever moved.
	maxCalibRounds = 1 << 16
)

// CalibrationResult records one Placement: Auto candidate measurement:
// the deterministic calibration workload driven through a real
// materialized plan via RunStep, scored as the bottleneck core's
// charged virtual cycles plus the modeled cost of every cross-core
// handoff. Lower score wins.
type CalibrationResult struct {
	Plan             string  `json:"plan"`
	Packets          int     `json:"packets"`
	Rounds           int     `json:"rounds"`
	BottleneckCycles float64 `json:"bottleneck_cycles"`
	HandoffPackets   uint64  `json:"handoff_packets"`
	Score            float64 `json:"score"`

	kind click.PlanKind
}

// Kind reports the candidate's placement.
func (c CalibrationResult) Kind() PlanKind { return c.kind }

// Calibration returns the candidate measurements behind the current
// placement decision — empty unless the current plan was chosen by
// Placement: Auto.
func (p *Pipeline) Calibration() []CalibrationResult {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	out := make([]CalibrationResult, len(p.calib))
	copy(out, p.calib)
	return out
}

// calibrate resolves Placement: Auto: it materializes one candidate
// plan per allocation, drives the same deterministic synthetic workload
// through each (single-threaded, via RunStep — reproducible by
// construction), and picks the lower score. Ties go to Parallel, the
// paper's finding.
func calibrate(prog *click.Program, opts Options) (click.PlanKind, string, []CalibrationResult, error) {
	if opts.Cores <= 1 {
		return Parallel, "auto: 1 core — allocations identical, parallel chosen", nil, nil
	}
	var results []CalibrationResult
	best := Parallel
	bestScore := 0.0
	for _, kind := range []click.PlanKind{Parallel, Pipelined} {
		res, err := measure(prog, opts, kind)
		if err != nil {
			return 0, "", nil, fmt.Errorf("routebricks: auto calibration (%s): %w", kind, err)
		}
		results = append(results, res)
		if len(results) == 1 || res.Score < bestScore {
			best = kind
			bestScore = res.Score
		}
	}
	decision := fmt.Sprintf(
		"auto: calibrated %d packets at %d cores — parallel score %.0f vs pipelined %.0f (bottleneck cycles + %d/handoff) → %s",
		calibPackets, opts.Cores, results[0].Score, results[1].Score, handoffCycles, best)
	return best, decision, results, nil
}

// measure builds one candidate plan, feeds it the calibration stream,
// and steps every core round-robin until the plan drains. The score
// models steady-state throughput: the busiest core's charged cycles
// (elements charge their calibrated per-packet costs to the Context)
// plus the handoff penalty amortized per chain.
func measure(prog *click.Program, opts Options, kind click.PlanKind) (CalibrationResult, error) {
	plan, err := click.NewPlan(click.PlanConfig{
		Kind:       kind,
		Cores:      opts.Cores,
		Program:    prog,
		KP:         opts.KP,
		InputCap:   opts.InputCap,
		HandoffCap: opts.HandoffCap,
		Sink:       opts.Sink,
	})
	if err != nil {
		return CalibrationResult{}, err
	}
	pkts := trafficgen.Calibration(calibPackets)
	perCore := make([]float64, plan.Cores())
	var ctx click.Context
	fed, rounds := 0, 0
	for {
		for fed < len(pkts) {
			if !plan.Input(fed % plan.Chains()).Push(pkts[fed]) {
				break
			}
			fed++
		}
		moved := 0
		for core := 0; core < plan.Cores(); core++ {
			moved += plan.RunStep(core, &ctx)
			perCore[core] += ctx.TakeCycles()
		}
		rounds++
		if (fed == len(pkts) && moved == 0 && plan.Queued() == 0) || rounds >= maxCalibRounds {
			break
		}
	}
	// Packets entering a core beyond what was injected arrived via a
	// handoff ring — each such arrival is a cross-core transfer. A
	// candidate that hit maxCalibRounds with packets still queued can
	// have entered < fed; saturate rather than wrap.
	var entered uint64
	for _, s := range plan.Stats() {
		entered += s.Packets()
	}
	crossings := uint64(0)
	if entered > uint64(fed) {
		crossings = entered - uint64(fed)
	}
	bottleneck := 0.0
	for _, c := range perCore {
		if c > bottleneck {
			bottleneck = c
		}
	}
	return CalibrationResult{
		Plan:             kind.String(),
		Packets:          fed,
		Rounds:           rounds,
		BottleneckCycles: bottleneck,
		HandoffPackets:   crossings,
		Score:            bottleneck + handoffCycles*float64(crossings)/float64(plan.Chains()),
		kind:             kind,
	}, nil
}

// maxDrainRounds bounds the reload drain barrier: a healthy graph
// drains its rings in a handful of synchronous rounds; a graph that
// stops making progress (a terminal wedged on an external resource)
// gets its leftovers recycled and accounted as drain drops instead of
// stalling the control plane forever.
const maxDrainRounds = 4096

// Reload hot-swaps the pipeline's program: the new Click text is
// parsed, planned (resolving Placement: Auto if asked), and fully
// materialized off to the side — the old plan keeps forwarding
// throughout and survives untouched if the new one fails to build.
// Then a drain barrier runs: new Push calls are blocked, the old
// plan's cores are stopped, in-flight packets are stepped out of the
// rings synchronously (or, past a bounded number of rounds, recycled
// and accounted in Drops), the new plan is installed, and — when the
// pipeline was started — its cores launch. Works in both Start and
// Step modes.
//
// Zero fields of opts inherit the current plan's values (see merge);
// Prebound in particular carries over, so prebound resources — FIBs,
// device rings, balancers — rebind to the new graph's chains through
// the same closure.
func (p *Pipeline) Reload(clickText string, opts Options) error {
	return p.reload(clickText, opts, false)
}

// Replan re-decides the placement of the current program and swaps to
// the result under the same drain barrier as Reload — the adaptive
// half of the control plane. Callers typically watch Snapshot deltas
// (per-core load, ring backpressure) to decide when to call it, and
// pass Placement: Auto to let the calibration re-pick, or an explicit
// kind to force one.
func (p *Pipeline) Replan(opts Options) error {
	return p.reload("", opts, true)
}

func (p *Pipeline) reload(text string, opts Options, useCurrent bool) error {
	if err := opts.validate(); err != nil {
		return err
	}
	p.pmu.RLock()
	if useCurrent {
		text = p.text
	}
	cur := p.opts
	p.pmu.RUnlock()
	opts = merge(cur, opts)

	// Build the replacement completely off to the side; any error here
	// leaves the running plan untouched.
	newPlan, decided, decision, calib, err := buildPlan(text, opts)
	if err != nil {
		return err
	}

	// Drain barrier: producers blocked (Push waits on pmu), cores
	// stopped, rings stepped dry, then the atomic install.
	p.pmu.Lock()
	defer p.pmu.Unlock()
	wasRunning := p.running
	if wasRunning {
		p.plan.Stop()
		p.running = false
	}
	p.drainLocked()
	p.plan = newPlan
	p.text = text
	p.opts = decided
	p.decision = decision
	p.calib = calib
	p.generation++
	p.ctx = click.Context{}
	if wasRunning {
		if err := p.plan.Start(); err != nil {
			return err
		}
		p.running = true
	}
	return nil
}

// drainLocked empties the stopped plan's rings by stepping every core
// synchronously until a full round moves nothing and the rings are
// empty. If the graph stops making progress while packets remain, the
// leftovers are popped, recycled, and counted as drain drops. Caller
// holds pmu exclusively and has stopped the runner.
func (p *Pipeline) drainLocked() {
	var ctx click.Context
	for round := 0; round < maxDrainRounds; round++ {
		moved := 0
		for core := 0; core < p.plan.Cores(); core++ {
			moved += p.plan.RunStep(core, &ctx)
			ctx.TakeCycles()
		}
		if moved == 0 {
			if p.plan.Queued() == 0 {
				return
			}
			break // wedged: no progress with packets still queued
		}
	}
	for _, pr := range p.plan.Rings() {
		pr.Ring.Drain(func(pk *pkt.Packet) {
			p.drainDrops.Add(1)
			pkt.DefaultPool.Put(pk)
		})
	}
}
