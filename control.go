package routebricks

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"routebricks/internal/click"
	"routebricks/internal/pkt"
	"routebricks/internal/rss"
	"routebricks/internal/trafficgen"
)

// This file is the adaptive half of the control plane: Placement: Auto
// calibration (§4.2 says the best core allocation depends on the
// workload; we measure instead of hard-coding) and the hot-swap
// machinery behind Reload and Replan (§5's operators re-tune as traffic
// shifts; rbrouter wires Reload to SIGHUP).

// Calibration parameters. The workload is small enough to finish in
// well under a millisecond per candidate and fixed-seed so the same
// graph always yields the same decision.
const (
	// calibPackets is the synthetic workload size per candidate.
	calibPackets = 1024
	// maxCalibRounds bounds a calibration against graphs that never
	// drain (a cycle that regenerates packets); the score covers
	// whatever moved.
	maxCalibRounds = 1 << 16
)

// CalibrationResult records one Placement: Auto candidate measurement:
// the deterministic calibration workload driven through a real
// materialized plan via RunStep, scored as the bottleneck core's
// charged virtual cycles plus the cost model's price for every
// observed ring crossing (same-socket handoffs at the measured
// per-packet cost, cross-socket ones at the model's premium). Lower
// score wins.
type CalibrationResult struct {
	Plan             string  `json:"plan"`
	Packets          int     `json:"packets"`
	Rounds           int     `json:"rounds"`
	BottleneckCycles float64 `json:"bottleneck_cycles"`
	HandoffPackets   uint64  `json:"handoff_packets"`
	// CrossSocketPackets is how many of the handoff crossings spanned a
	// socket boundary under the candidate's topology.
	CrossSocketPackets uint64 `json:"cross_socket_packets,omitempty"`
	// ModelCost is the cost model's total price for the candidate's
	// ring crossings, amortized per chain — what the flat
	// 120-cycles-per-handoff term used to approximate.
	ModelCost float64 `json:"model_cost"`
	// Model names the cost model and its terms.
	Model string  `json:"model,omitempty"`
	Score float64 `json:"score"`

	kind click.PlanKind
}

// Kind reports the candidate's placement.
func (c CalibrationResult) Kind() PlanKind { return c.kind }

// Calibration returns the candidate measurements behind the current
// placement decision — empty unless the current plan was chosen by
// Placement: Auto.
func (p *Pipeline) Calibration() []CalibrationResult {
	p.pmu.RLock()
	defer p.pmu.RUnlock()
	out := make([]CalibrationResult, len(p.calib))
	copy(out, p.calib)
	return out
}

// calibrate resolves Placement: Auto: it materializes one candidate
// plan per allocation, drives the same deterministic synthetic workload
// through each (single-threaded, via RunStep — reproducible by
// construction), and picks the lower score. Ties go to Parallel, the
// paper's finding.
func calibrate(prog *click.Program, opts Options, segWeights []float64) (click.PlanKind, string, []CalibrationResult, error) {
	if opts.Cores <= 1 {
		return Parallel, "auto: 1 core — allocations identical, parallel chosen", nil, nil
	}
	var results []CalibrationResult
	best := Parallel
	bestScore := 0.0
	for _, kind := range []click.PlanKind{Parallel, Pipelined} {
		res, err := measure(prog, opts, kind, segWeights)
		if err != nil {
			return 0, "", nil, fmt.Errorf("routebricks: auto calibration (%s): %w", kind, err)
		}
		results = append(results, res)
		if len(results) == 1 || res.Score < bestScore {
			best = kind
			bestScore = res.Score
		}
	}
	decision := fmt.Sprintf(
		"auto: calibrated %d packets at %d cores — parallel score %.0f vs pipelined %.0f (bottleneck cycles + %s) → %s",
		calibPackets, opts.Cores, results[0].Score, results[1].Score, opts.costModel().Describe(), best)
	return best, decision, results, nil
}

// measure builds one candidate plan, feeds it the calibration stream,
// and steps every core round-robin until the plan drains. The score
// models steady-state throughput: the busiest core's charged cycles
// (elements charge their calibrated per-packet costs to the Context)
// plus the cost model's price for every observed ring crossing,
// amortized per chain.
func measure(prog *click.Program, opts Options, kind click.PlanKind, segWeights []float64) (CalibrationResult, error) {
	plan, err := click.NewPlan(planConfig(prog, opts, kind, segWeights))
	if err != nil {
		return CalibrationResult{}, err
	}
	pkts := trafficgen.Calibration(calibPackets)
	perCore := make([]float64, plan.Cores())
	var ctx click.Context
	fed, rounds := 0, 0
	for {
		for fed < len(pkts) {
			if !plan.Input(fed % plan.Chains()).Push(pkts[fed]) {
				break
			}
			fed++
		}
		moved := 0
		for core := 0; core < plan.Cores(); core++ {
			moved += plan.RunStep(core, &ctx)
			perCore[core] += ctx.TakeCycles()
		}
		rounds++
		if (fed == len(pkts) && moved == 0 && plan.Queued() == 0) || rounds >= maxCalibRounds {
			break
		}
	}
	// Every core polls exactly one upstream ring, so a ring's crossing
	// count is its consumer core's pulled-packet counter; the model
	// prices each ring by its endpoints (input locality, same- vs
	// cross-socket handoff).
	pulled := make(map[int]uint64, len(plan.Stats()))
	for _, s := range plan.Stats() {
		pulled[s.Core] = s.Packets()
	}
	topo := plan.Topology()
	var modelCost float64
	var crossings, crossSocket uint64
	for _, pr := range plan.Rings() {
		n := pulled[pr.To]
		modelCost += pr.Cost * float64(n)
		if pr.Role == "handoff" {
			crossings += n
			if topo.SocketOf(pr.From) != topo.SocketOf(pr.To) {
				crossSocket += n
			}
		}
	}
	modelCost /= float64(plan.Chains())
	bottleneck := 0.0
	for _, c := range perCore {
		if c > bottleneck {
			bottleneck = c
		}
	}
	return CalibrationResult{
		Plan:               kind.String(),
		Packets:            fed,
		Rounds:             rounds,
		BottleneckCycles:   bottleneck,
		HandoffPackets:     crossings,
		CrossSocketPackets: crossSocket,
		ModelCost:          modelCost,
		Model:              plan.Cost().Describe(),
		Score:              bottleneck + modelCost,
		kind:               kind,
	}, nil
}

// profileTrunkWeights measures where the program's cycles concentrate:
// one instrumented instance (chain 0) is driven with the deterministic
// calibration stream, the Profiler attributes each element's exclusive
// charged cycles, and Instance.TrunkWeights folds side-branch costs
// into the trunk segment that feeds them. The result weights the
// pipelined trunk cut so stages balance measured per-core cycles, not
// segment counts. Auto-only, for the same reason calibration is: the
// synthetic stream reaches prebound terminals, which explicit
// placements must not pay for. Returns nil (count-balanced cuts) when
// profiling is moot — one core, a single-segment trunk, or a graph
// that fails to instantiate (the plan build will surface that error).
func profileTrunkWeights(prog *click.Program, opts Options) []float64 {
	if opts.Cores <= 1 {
		return nil
	}
	in, err := prog.Instantiate(0)
	if err != nil || in.Router() == nil || len(in.Segments()) < 2 {
		return nil
	}
	prof := click.NewProfiler()
	in.Router().Instrument(prof)
	entryName := in.Segments()[0]
	dispatch := click.BatchDispatch(in.Entry(), 0)
	var ctx click.Context
	batch := pkt.NewBatch(32)
	pkts := trafficgen.Calibration(calibPackets)
	for len(pkts) > 0 {
		n := min(32, len(pkts))
		batch.Reset()
		for _, p := range pkts[:n] {
			batch.Add(p)
		}
		pkts = pkts[n:]
		// The entry element has no instrumented upstream connection;
		// bracket the dispatch ourselves so its exclusive cycles are
		// attributed too (the profile_test idiom).
		fi := ctx.BeginFrame()
		dispatch(&ctx, batch)
		prof.Account(entryName, ctx.EndFrame(fi), uint64(n))
		ctx.TakeCycles()
	}
	return in.TrunkWeights(prof)
}

// ControllerConfig tunes the adaptive Replan controller — the
// goroutine that watches Snapshot deltas and calls Replan when the
// observed load diverges from what the current placement assumed.
// Zero fields take the documented defaults.
type ControllerConfig struct {
	// Interval between observations (default 250ms).
	Interval time.Duration
	// HighWater trips the controller when an interval's imbalance ratio
	// (max/mean per-core packets, Snapshot.Imbalance) reaches it
	// (default 1.5).
	HighWater float64
	// LowWater re-arms the controller only once imbalance falls below
	// it (default 1.1) — the hysteresis band that keeps a steady skewed
	// load from replanning over and over.
	LowWater float64
	// MinPackets skips intervals that moved fewer packets (idle noise
	// must neither trip nor re-arm the controller; default 256).
	MinPackets uint64
	// RejectedStep trips the controller when ring rejections grow by at
	// least this much in one interval, regardless of imbalance — the
	// backpressure signal (default 4096; negative disables).
	RejectedStep int64
	// Replan overrides the corrective action taken on a trip. The
	// default is Pipeline.Replan(Placement: Auto), whose calibration
	// drives synthetic packets through the pipeline's real prebound
	// terminals — hosts whose terminals touch the outside world (emit
	// on sockets, count into shared stats) supply a hook that decides
	// placement against hermetic stand-ins first and then replans with
	// the explicit winner (see rbrouter -replan-auto).
	Replan func() error
	// StealEscalation opts the controller into toggling work stealing
	// when a replan did not cure the skew: after the controller has
	// fired, if StealPersist further intervals still show imbalance at
	// or above HighWater and the current plan runs without stealing,
	// the controller replans once more with Steal forced on (placement
	// kept — no recalibration). The escalation applies even when a
	// custom Replan hook is set: it is a different corrective action,
	// and it is the only way the controller flips Options.Steal, which
	// Reload/Replan take as given rather than inherit. Default off.
	StealEscalation bool
	// StealPersist is how many consecutive still-skewed intervals after
	// a replan trigger the steal escalation (default 2).
	StealPersist int
	// ReSteer opts the controller into flow re-steering as its first
	// corrective action: on an imbalance trip it plans a bounded batch
	// of bucket migrations (rss.PlanMoves over the interval's per-bucket
	// packet deltas, hottest chains relieved first) and applies it
	// through Pipeline.ReSteer — far cheaper than a replan (no
	// recalibration, no graph rebuild, per-flow state untouched) and
	// ordering-safe, because the rewrite lands under the reload drain
	// barrier. The controller escalates to the configured replan action
	// only when re-steering cannot fix the skew: no improving moves
	// exist for the observed distribution, or imbalance persists
	// ReSteerPersist further intervals after a re-steer. Default off.
	ReSteer bool
	// ReSteerMax caps buckets migrated per controller re-steer
	// (default 8).
	ReSteerMax int
	// ReSteerPersist is how many consecutive still-skewed intervals
	// after a re-steer escalate to the replan action (default 2).
	ReSteerPersist int
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.HighWater <= 0 {
		c.HighWater = 1.5
	}
	if c.LowWater <= 0 {
		c.LowWater = 1.1
	}
	if c.MinPackets == 0 {
		c.MinPackets = 256
	}
	if c.RejectedStep == 0 {
		c.RejectedStep = 4096
	}
	if c.StealPersist <= 0 {
		c.StealPersist = 2
	}
	if c.ReSteerMax <= 0 {
		c.ReSteerMax = 8
	}
	if c.ReSteerPersist <= 0 {
		c.ReSteerPersist = 2
	}
	// An inverted band (LowWater above HighWater — e.g. a user-set
	// HighWater under the LowWater default) would re-arm at levels that
	// immediately re-trip, replanning every other interval; clamp so
	// the hysteresis contract holds for any configuration.
	if c.LowWater > c.HighWater {
		c.LowWater = c.HighWater
	}
	return c
}

// ControllerState is the controller's observable state, shaped for the
// stats JSON (rbrouter -stats-addr serves it next to each node's
// Snapshot).
type ControllerState struct {
	// Armed reports whether the next threshold breach will replan; the
	// controller disarms when it fires and re-arms below LowWater.
	Armed bool `json:"armed"`
	// Observations counts non-idle intervals examined.
	Observations uint64 `json:"observations"`
	// Replans counts automatic Replan calls that succeeded.
	Replans uint64 `json:"replans"`
	// LastImbalance is the most recent interval's max/mean per-core
	// packet ratio.
	LastImbalance float64 `json:"last_imbalance"`
	// LastReason records why the controller last fired.
	LastReason string `json:"last_reason,omitempty"`
	// LastError records the most recent Replan failure, if any.
	LastError string `json:"last_error,omitempty"`
	// StealActive mirrors the current plan's work-stealing flag (a
	// gauge, refreshed each observation).
	StealActive bool `json:"steal_active,omitempty"`
	// StealEscalations counts times the controller forced stealing on
	// because imbalance persisted across a replan (see
	// ControllerConfig.StealEscalation).
	StealEscalations uint64 `json:"steal_escalations,omitempty"`
	// ReSteers counts controller-driven steering-table rewrites, and
	// MovedBuckets the buckets those rewrites migrated (see
	// ControllerConfig.ReSteer).
	ReSteers     uint64 `json:"re_steers,omitempty"`
	MovedBuckets uint64 `json:"moved_buckets,omitempty"`
	// CoreSteals carries the most recent non-idle interval's per-core
	// steal traffic — packets each core pulled from siblings (Steals)
	// and had pulled from it (Stolen), per observation interval.
	// Populated only while the plan runs with stealing enabled.
	CoreSteals []CoreStealRate `json:"core_steals,omitempty"`
}

// CoreStealRate is one core's work-stealing activity over a controller
// observation interval.
type CoreStealRate struct {
	Core   int    `json:"core"`
	Steals uint64 `json:"steals"`
	Stolen uint64 `json:"stolen"`
}

// Controller is the adaptive half of the Replan story: it samples the
// pipeline's Snapshot on an interval, reduces each interval to the
// imbalance ratio and the ring-rejection growth, and calls
// Replan(Placement: Auto) when the observed skew crosses the
// high-water mark — once, thanks to hysteresis: it will not fire again
// until the load has settled below the low-water mark. Build one with
// Pipeline.NewController; Start launches the watching goroutine,
// Observe is the deterministic single-step used by tests and Step-mode
// hosts.
type Controller struct {
	pipe *Pipeline
	cfg  ControllerConfig

	// obsMu serializes Observe (which may run a whole Replan); mu
	// guards the readable state and is only ever held briefly, so
	// State() — and anything polling it, like rbrouter's /stats — never
	// blocks behind a swap in progress.
	obsMu sync.Mutex
	mu    sync.Mutex
	state ControllerState
	prev  Snapshot
	ready bool // prev holds a baseline for the current generation
	// persist counts consecutive still-skewed intervals since the last
	// replan, for the steal escalation.
	persist int
	// steered marks that the last corrective action was a re-steer;
	// steerPersist counts consecutive still-skewed intervals since it,
	// for the escalation to a full replan. Both reset when the load
	// settles (re-arm) or a replan installs a fresh plan.
	steered      bool
	steerPersist int

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewController builds a replan controller over the pipeline. It takes
// a baseline snapshot immediately; call Start to watch on an interval,
// or Observe from your own loop.
func (p *Pipeline) NewController(cfg ControllerConfig) *Controller {
	c := &Controller{
		pipe: p,
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	c.state.Armed = true
	c.prev = p.Snapshot()
	c.ready = true
	return c
}

// Start launches the controller goroutine (at most once). Stop it
// before stopping the pipeline for good (a replan against a stopped
// pipeline is legal but pointless).
func (c *Controller) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(c.done)
		tick := time.NewTicker(c.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-tick.C:
				c.Observe()
			}
		}
	}()
}

// Stop halts the controller goroutine and waits for it (idempotent; a
// controller that was never started just marks itself stopped).
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	if c.started.Load() {
		<-c.done
	}
}

// State returns a copy of the controller's observable state.
func (c *Controller) State() ControllerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Observe takes one controller step: snapshot, delta against the
// previous observation, threshold-and-hysteresis decision, and — when
// tripped while armed — an automatic Replan(Placement: Auto). It
// reports whether a replan fired. Safe from any goroutine; the ticking
// goroutine calls it on its interval.
func (c *Controller) Observe() bool {
	c.obsMu.Lock()
	defer c.obsMu.Unlock()
	snap := c.pipe.Snapshot()
	stealOn := c.pipe.Steal()

	c.mu.Lock()
	prev, hadPrev := c.prev, c.ready
	c.prev, c.ready = snap, true
	c.state.StealActive = stealOn
	if !hadPrev || prev.Generation != snap.Generation || prev.Plan != snap.Plan {
		// First sample of a generation: establish the baseline only.
		c.mu.Unlock()
		return false
	}
	d := snap.Delta(prev)
	if d.TotalPackets() < c.cfg.MinPackets {
		// Idle interval: no evidence either way.
		c.mu.Unlock()
		return false
	}
	c.state.Observations++
	c.state.LastImbalance = d.Imbalance
	c.state.CoreSteals = nil
	if stealOn {
		rates := make([]CoreStealRate, 0, len(d.CoreStats))
		for _, cs := range d.CoreStats {
			rates = append(rates, CoreStealRate{Core: cs.Core, Steals: cs.Steals, Stolen: cs.Stolen})
		}
		c.state.CoreSteals = rates
	}

	rejectedTrip := c.cfg.RejectedStep > 0 && d.Rejected >= uint64(c.cfg.RejectedStep)
	trip := false
	switch {
	case !c.state.Armed:
		// Disarmed: re-arm only once the load has settled well below the
		// trip point (and backpressure has stopped growing).
		if d.Imbalance < c.cfg.LowWater && !rejectedTrip {
			c.state.Armed = true
			// A settled load closes the re-steer episode: the next trip
			// starts a fresh ladder from the cheap action.
			c.steered = false
			c.steerPersist = 0
		}
	case d.Imbalance >= c.cfg.HighWater || rejectedTrip:
		reason := fmt.Sprintf("imbalance %.2f >= %.2f", d.Imbalance, c.cfg.HighWater)
		if rejectedTrip {
			reason = fmt.Sprintf("ring rejections +%d >= %d", d.Rejected, c.cfg.RejectedStep)
		}
		c.state.Armed = false
		c.state.LastReason = reason
		trip = true
	}
	// Re-steering first: a trip with the flow steerer enabled is handled
	// by migrating the interval's hottest buckets off the hottest chains
	// — when the observed distribution admits improving moves at all.
	// An empty plan (one chain, one unsplittable hot bucket, balanced
	// buckets despite a rejection trip) falls through to the replan.
	var moves []Move
	if trip && c.cfg.ReSteer && d.RSS != nil {
		moves = rss.PlanMoves(d.RSS.Assignments, d.RSS.Counts, d.RSS.Chains, c.cfg.ReSteerMax)
	}
	// Re-steer escalation: the table was rewritten but the skew is still
	// here (a flow distribution no bucket migration can flatten —
	// PlanMoves already did what it could). The controller sits
	// disarmed, so after ReSteerPersist such intervals it escalates to
	// the replan action.
	if c.cfg.ReSteer && !trip && !c.state.Armed && c.steered {
		if d.Imbalance >= c.cfg.HighWater {
			if c.steerPersist++; c.steerPersist >= c.cfg.ReSteerPersist {
				trip = true
				c.steerPersist = 0
				c.steered = false
				c.state.LastReason = fmt.Sprintf(
					"re-steer escalation: imbalance %.2f persisted across re-steer", d.Imbalance)
			}
		} else {
			c.steerPersist = 0
		}
	}
	// Steal escalation: a replan fired but the skew is still here. The
	// controller sits disarmed (the load never settles below LowWater),
	// so without this path it would watch a persistently imbalanced plan
	// forever; with it, StealPersist such intervals force stealing on.
	escalate := false
	if c.cfg.StealEscalation && !trip && !c.state.Armed && !stealOn && c.state.Replans > 0 {
		if d.Imbalance >= c.cfg.HighWater {
			if c.persist++; c.persist >= c.cfg.StealPersist {
				escalate = true
				c.persist = 0
				c.state.LastReason = fmt.Sprintf(
					"steal escalation: imbalance %.2f persisted across replan", d.Imbalance)
			}
		} else {
			c.persist = 0
		}
	}
	c.mu.Unlock()
	if escalate {
		// Keep the placement the previous replan decided — this swap
		// only flips Steal, which Replan takes as given.
		err := c.pipe.Replan(Options{Placement: c.pipe.Placement(), Steal: true})
		c.mu.Lock()
		defer c.mu.Unlock()
		if err != nil {
			c.state.LastError = err.Error()
			return false
		}
		c.state.LastError = ""
		c.state.StealEscalations++
		c.state.StealActive = true
		c.prev = c.pipe.Snapshot()
		return true
	}
	if len(moves) > 0 {
		// The trip is handled by a re-steer: the table rewrite runs
		// outside c.mu for the same reason the replan does (it holds the
		// pipeline through a drain barrier).
		err := c.pipe.ReSteer(moves)
		c.mu.Lock()
		defer c.mu.Unlock()
		if err != nil {
			// Same non-latching contract as a failed replan: re-arm so the
			// next tripping interval retries.
			c.state.LastError = err.Error()
			c.state.Armed = true
			return false
		}
		c.state.LastError = ""
		c.state.ReSteers++
		c.state.MovedBuckets += uint64(len(moves))
		c.state.LastReason += fmt.Sprintf(" → re-steered %d buckets", len(moves))
		c.steered = true
		c.steerPersist = 0
		// The drain retired in-flight packets; rebase so the next interval
		// measures the rewritten assignment, not the skew that caused it.
		c.prev = c.pipe.Snapshot()
		return true
	}
	if !trip {
		return false
	}

	// The replan runs outside c.mu — it calibrates both candidates and
	// holds the pipeline through a drain barrier, and State() must stay
	// readable throughout. obsMu keeps concurrent Observes out.
	err := c.replan()
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		// A failed corrective action must not latch the controller off:
		// the skew it fired on persists (nothing was corrected), so
		// staying disarmed would wait for a settling that cannot come.
		// Re-arm to retry on the next tripping interval; the error stays
		// visible in State until a replan succeeds.
		c.state.LastError = err.Error()
		c.state.Armed = true
		return false
	}
	c.state.LastError = ""
	c.state.Replans++
	c.persist = 0 // the new plan gets a fresh persistence window
	c.steered = false
	c.steerPersist = 0
	// The swap reset the pipeline's counters; rebase the next delta.
	c.prev = c.pipe.Snapshot()
	return true
}

// replan performs the controller's corrective action: Replan with the
// configured Replan hook when one is set, the library's calibrated
// Replan(Placement: Auto) otherwise. The default action carries the
// current Steal flag forward — Replan takes it as given, and a replan
// must not silently undo a steal escalation.
func (c *Controller) replan() error {
	if c.cfg.Replan != nil {
		return c.cfg.Replan()
	}
	return c.pipe.Replan(Options{Placement: Auto, Steal: c.pipe.Steal()})
}

// maxDrainRounds bounds the reload drain barrier: a healthy graph
// drains its rings in a handful of synchronous rounds; a graph that
// stops making progress (a terminal wedged on an external resource)
// gets its leftovers recycled and accounted as drain drops instead of
// stalling the control plane forever.
const maxDrainRounds = 4096

// Reload hot-swaps the pipeline's program: the new Click text is
// parsed, planned (resolving Placement: Auto if asked), and fully
// materialized off to the side — the old plan keeps forwarding
// throughout and survives untouched if the new one fails to build.
// Then a drain barrier runs: new Push calls are blocked, the old
// plan's cores are stopped, in-flight packets are stepped out of the
// rings synchronously (or, past a bounded number of rounds, recycled
// and accounted in Drops), the new plan is installed, and — when the
// pipeline was started — its cores launch. Works in both Start and
// Step modes.
//
// Zero fields of opts inherit the current plan's values (see merge);
// Prebound in particular carries over, so prebound resources — FIBs,
// device rings, balancers — rebind to the new graph's chains through
// the same closure.
func (p *Pipeline) Reload(clickText string, opts Options) error {
	return p.reload(clickText, opts, false)
}

// Replan re-decides the placement of the current program and swaps to
// the result under the same drain barrier as Reload — the adaptive
// half of the control plane. Callers typically watch Snapshot deltas
// (per-core load, ring backpressure) to decide when to call it, and
// pass Placement: Auto to let the calibration re-pick, or an explicit
// kind to force one.
func (p *Pipeline) Replan(opts Options) error {
	return p.reload("", opts, true)
}

func (p *Pipeline) reload(text string, opts Options, useCurrent bool) error {
	if err := opts.validate(); err != nil {
		return err
	}
	p.pmu.RLock()
	if useCurrent {
		text = p.text
	}
	cur := p.opts
	p.pmu.RUnlock()
	opts = merge(cur, opts)

	// Build the replacement completely off to the side; any error here
	// leaves the running plan untouched.
	newPlan, decided, decision, calib, err := buildPlan(text, opts)
	if err != nil {
		return err
	}

	// Drain barrier: producers blocked (Push waits on pmu), cores
	// stopped, rings stepped dry, then the atomic install.
	p.pmu.Lock()
	defer p.pmu.Unlock()
	wasRunning := p.running
	if wasRunning {
		p.plan.Stop()
		p.running = false
	}
	p.drainLocked()
	p.plan = newPlan
	p.text = text
	p.opts = decided
	p.decision = decision
	p.calib = calib
	p.generation++
	p.ctx = click.Context{}
	// The steering table outlives the swap (like the FIB), but its
	// chain indexes must match the new plan's width: restripe only when
	// the width changed, so re-steers survive same-width swaps. Still
	// inside the exclusive section, so PushFlow never sees a stale
	// width.
	if p.rssTable != nil && p.rssTable.Chains() != newPlan.Chains() {
		if err := p.rssTable.Restripe(newPlan.Chains()); err != nil {
			return err
		}
	}
	if wasRunning {
		if err := p.plan.Start(); err != nil {
			return err
		}
		p.running = true
	}
	return nil
}

// drainLocked empties the stopped plan's rings by stepping every core
// synchronously until a full round moves nothing and the rings are
// empty. If the graph stops making progress while packets remain, the
// leftovers are popped, recycled, and counted as drain drops. Caller
// holds pmu exclusively and has stopped the runner.
func (p *Pipeline) drainLocked() {
	var ctx click.Context
	for round := 0; round < maxDrainRounds; round++ {
		moved := 0
		for core := 0; core < p.plan.Cores(); core++ {
			moved += p.plan.RunStep(core, &ctx)
			ctx.TakeCycles()
		}
		if moved == 0 {
			if p.plan.Queued() == 0 {
				return
			}
			break // wedged: no progress with packets still queued
		}
	}
	for _, pr := range p.plan.Rings() {
		pr.Ring.Drain(func(pk *pkt.Packet) {
			p.drainDrops.Add(1)
			pkt.DefaultPool.Put(pk)
		})
	}
}
