//go:build linux

package netio

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT, absent from the frozen syscall package
// (it predates the option's addition in Linux 3.9).
const soReusePort = 0xf

// reusePortConfig sets SO_REUSEPORT before bind on every socket —
// including the first: the kernel only admits a second bind to the
// port if the first socket also carried the option.
var reusePortConfig = net.ListenConfig{
	Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		})
		if err != nil {
			return err
		}
		return serr
	},
}

func listenReusePort(network, addr string, queues int) ([]*net.UDPConn, error) {
	conns := make([]*net.UDPConn, 0, queues)
	fail := func(err error) ([]*net.UDPConn, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	pc, err := reusePortConfig.ListenPacket(context.Background(), network, addr)
	if err != nil {
		return fail(err)
	}
	first, ok := pc.(*net.UDPConn)
	if !ok {
		pc.Close()
		return fail(ErrNotSupported)
	}
	conns = append(conns, first)
	// addr may have named port 0; the rest must join the port the
	// kernel actually assigned.
	bound := first.LocalAddr().String()
	for len(conns) < queues {
		pc, err := reusePortConfig.ListenPacket(context.Background(), network, bound)
		if err != nil {
			return fail(err)
		}
		conns = append(conns, pc.(*net.UDPConn))
	}
	return conns, nil
}
