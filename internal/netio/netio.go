// Package netio is the batched kernel wire-I/O layer: it moves whole
// batches of UDP datagrams across the user/kernel boundary in one
// syscall, the last unbatched per-packet cost in the datapath. The
// paper's scaling argument (§3, §5.2) is that a software router runs at
// hardware speed only when per-packet book-keeping — above all the
// kernel crossing — is amortized over batches; dispatch, pools, rings,
// and placement already batch, and this package extends the discipline
// to the wire itself.
//
// Two implementations sit behind one interface, selected at runtime and
// reported by Mode():
//
//   - the Linux fast path issues recvmmsg(2)/sendmmsg(2) through raw
//     syscall.Syscall6 against the connection's file descriptor
//     (integrated with the runtime poller via syscall.RawConn, so a
//     parked read still honors deadlines and Close wakeups) — one
//     syscall receives or sends up to Config.Batch datagrams;
//   - the portable fallback moves one datagram per call through the
//     stdlib (net.UDPConn Read/WriteToUDP) with the identical
//     interface, so callers never branch on platform.
//
// Receive is zero-copy into the packet pool: BatchReader points the
// kernel's iovecs directly at pool-backed pkt.Packet buffers and trims
// each to the received length — no staging buffer, no per-datagram
// copy. BatchWriter flushes a whole batch to one destination (or a
// scatter of destinations) with one sendmmsg.
//
// ListenReusePort completes the multi-queue story: N sockets bound to
// one ingress port with SO_REUSEPORT are kernel-hashed receive queues —
// the kernel steers each 4-tuple consistently to one socket, so N
// BatchReaders are software RSS backed by real kernel steering. See
// docs/netio.md for the REUSEPORT-vs-PushFlow contract.
package netio

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"

	"routebricks/internal/pkt"
)

// ErrNotSupported is returned when the mmsg fast path or SO_REUSEPORT
// is requested on a platform that cannot provide it.
var ErrNotSupported = errors.New("netio: not supported on this platform")

// Available reports whether the recvmmsg/sendmmsg fast path exists on
// this platform (Linux on a supported architecture). Callers never need
// to check it — NewBatchReader/NewBatchWriter fall back silently — but
// benchmarks and stats use it to label what they measured.
func Available() bool { return mmsgSupported }

// Config parameterizes a BatchReader or BatchWriter.
type Config struct {
	// Batch is the maximum datagrams moved per syscall (KP). Default 32,
	// clamped to [1, 1024].
	Batch int

	// Shard is the pool shard receive buffers are drawn from (readers
	// only). Defaults to pkt.DefaultPool shard 0; long-lived readers
	// pass their own shard so allocation never contends across cores.
	Shard *pkt.PoolShard

	// MaxPacket is the receive buffer size per datagram; longer
	// datagrams are truncated to it (counted in Stats.Truncated on the
	// mmsg path). Default pkt.MaxSize.
	MaxPacket int

	// ForceFallback disables the mmsg fast path even where it is
	// available — the control tests and benchmarks compare against.
	ForceFallback bool
}

func (c Config) normalized() Config {
	if c.Batch < 1 {
		c.Batch = 32
	}
	if c.Batch > 1024 {
		c.Batch = 1024
	}
	if c.MaxPacket <= 0 {
		c.MaxPacket = pkt.MaxSize
	}
	if c.Shard == nil {
		c.Shard = pkt.DefaultPool.Shard(0)
	}
	return c
}

// Stats is a point-in-time read of a reader's or writer's monotonic
// counters. Frames/Batches is the mean syscall fill — the number the
// whole layer exists to raise above 1.
type Stats struct {
	Batches   uint64 // syscalls that moved at least one datagram
	Frames    uint64 // datagrams moved
	Truncated uint64 // received datagrams clipped to MaxPacket (mmsg path only)
}

// BatchReader receives UDP datagrams in batches directly into
// pool-backed packets. Not safe for concurrent use; one reader per
// goroutine (one per receive queue).
type BatchReader struct {
	conn *net.UDPConn
	cfg  Config
	rx   *mmsgRx // nil → fallback path

	batches   atomic.Uint64
	frames    atomic.Uint64
	truncated atomic.Uint64
}

// NewBatchReader wraps conn. The mmsg fast path is used when the
// platform provides it and cfg does not force the fallback; a conn
// whose descriptor cannot be reached (already closed) falls back too.
func NewBatchReader(conn *net.UDPConn, cfg Config) *BatchReader {
	cfg = cfg.normalized()
	r := &BatchReader{conn: conn, cfg: cfg}
	if mmsgSupported && !cfg.ForceFallback {
		if rx, err := newMMsgRx(conn, cfg); err == nil {
			r.rx = rx
		}
	}
	return r
}

// Mode reports which implementation this reader runs: "mmsg" or
// "fallback".
func (r *BatchReader) Mode() string {
	if r.rx != nil {
		return "mmsg"
	}
	return "fallback"
}

// Stats reads the reader's counters (safe concurrently with ReadBatch).
func (r *BatchReader) Stats() Stats {
	return Stats{Batches: r.batches.Load(), Frames: r.frames.Load(), Truncated: r.truncated.Load()}
}

// ReadBatch appends received datagrams to b — up to min(Config.Batch,
// b's free capacity) on the mmsg path, exactly one on the fallback path
// — and returns how many arrived. It blocks until at least one datagram
// is available, the conn's read deadline expires, or the conn is
// closed. Ownership of the appended packets (drawn from Config.Shard,
// trimmed to the received length) transfers to the caller.
func (r *BatchReader) ReadBatch(b *pkt.Batch) (int, error) {
	if r.rx != nil {
		n, trunc, err := r.rx.read(b)
		if n > 0 {
			r.batches.Add(1)
			r.frames.Add(uint64(n))
			r.truncated.Add(uint64(trunc))
		}
		return n, err
	}
	if b.Full() {
		return 0, nil
	}
	p := r.cfg.Shard.GetRaw(r.cfg.MaxPacket)
	n, err := r.conn.Read(p.Data)
	if err != nil {
		r.cfg.Shard.Put(p)
		return 0, err
	}
	p.Data = p.Data[:n]
	b.Add(p)
	r.batches.Add(1)
	r.frames.Add(1)
	return 1, nil
}

// Release returns the reader's cached receive buffers (mmsg slots that
// were posted to the kernel but never filled) to the pool. Call after
// the last ReadBatch; the reader must not be used again.
func (r *BatchReader) Release() {
	if r.rx != nil {
		r.rx.release(r.cfg.Shard)
	}
}

// BatchWriter sends UDP datagrams in batches. Not safe for concurrent
// use; one writer per goroutine (one per transmit queue).
type BatchWriter struct {
	conn *net.UDPConn
	cfg  Config
	tx   *mmsgTx // nil → fallback path

	batches atomic.Uint64
	frames  atomic.Uint64
}

// NewBatchWriter wraps conn; path selection as for NewBatchReader.
func NewBatchWriter(conn *net.UDPConn, cfg Config) *BatchWriter {
	cfg = cfg.normalized()
	w := &BatchWriter{conn: conn, cfg: cfg}
	if mmsgSupported && !cfg.ForceFallback {
		if tx, err := newMMsgTx(conn, cfg); err == nil {
			w.tx = tx
		}
	}
	return w
}

// Mode reports which implementation this writer runs: "mmsg" or
// "fallback".
func (w *BatchWriter) Mode() string {
	if w.tx != nil {
		return "mmsg"
	}
	return "fallback"
}

// Stats reads the writer's counters (safe concurrently with writes).
func (w *BatchWriter) Stats() Stats {
	return Stats{Batches: w.batches.Load(), Frames: w.frames.Load()}
}

// WriteBatch sends every non-nil packet in ps to addr — the whole slice
// with one sendmmsg on the fast path (chunked at Config.Batch), one
// WriteToUDP per packet on the fallback. It returns the number of
// datagrams handed to the kernel. The packets stay owned by the caller
// (the kernel copies at syscall time), so recycling them after return
// is safe.
func (w *BatchWriter) WriteBatch(ps []*pkt.Packet, addr *net.UDPAddr) (int, error) {
	return w.write(ps, addr, nil)
}

// WriteScatter is WriteBatch with a destination per packet: addrs[i]
// receives ps[i]. sendmmsg carries per-message addresses, so a scatter
// still costs one syscall per Config.Batch datagrams.
func (w *BatchWriter) WriteScatter(ps []*pkt.Packet, addrs []*net.UDPAddr) (int, error) {
	if len(addrs) != len(ps) {
		return 0, fmt.Errorf("netio: %d packets but %d addresses", len(ps), len(addrs))
	}
	return w.write(ps, nil, addrs)
}

func (w *BatchWriter) write(ps []*pkt.Packet, addr *net.UDPAddr, addrs []*net.UDPAddr) (int, error) {
	sent := 0
	if w.tx != nil {
		for off := 0; off < len(ps); off += w.cfg.Batch {
			end := off + w.cfg.Batch
			if end > len(ps) {
				end = len(ps)
			}
			var chunk []*net.UDPAddr
			if addrs != nil {
				chunk = addrs[off:end]
			}
			n, err := w.tx.write(ps[off:end], addr, chunk)
			if n > 0 {
				sent += n
				w.batches.Add(1)
				w.frames.Add(uint64(n))
			}
			if err != nil {
				return sent, err
			}
		}
		return sent, nil
	}
	for i, p := range ps {
		if p == nil {
			continue
		}
		to := addr
		if addrs != nil {
			to = addrs[i]
		}
		if _, err := w.conn.WriteToUDP(p.Data, to); err != nil {
			return sent, err
		}
		sent++
		w.batches.Add(1)
		w.frames.Add(1)
	}
	return sent, nil
}

// ListenReusePort binds queues UDP sockets to one address with
// SO_REUSEPORT — kernel-hashed receive queues: the kernel steers each
// 4-tuple consistently to one socket, so one BatchReader per returned
// conn is multi-queue receive with flow affinity. addr may name port 0;
// the remaining sockets bind the port the first one got. queues == 1
// degenerates to a plain ListenUDP everywhere; queues > 1 returns
// ErrNotSupported off Linux.
func ListenReusePort(network, addr string, queues int) ([]*net.UDPConn, error) {
	if queues < 1 {
		queues = 1
	}
	if queues == 1 {
		ua, err := net.ResolveUDPAddr(network, addr)
		if err != nil {
			return nil, err
		}
		c, err := net.ListenUDP(network, ua)
		if err != nil {
			return nil, err
		}
		return []*net.UDPConn{c}, nil
	}
	return listenReusePort(network, addr, queues)
}
