//go:build !linux

package netio

import "net"

func listenReusePort(network, addr string, queues int) ([]*net.UDPConn, error) {
	return nil, ErrNotSupported
}
