//go:build linux && (amd64 || arm64)

package netio

// The recvmmsg/sendmmsg fast path. Zero dependencies beyond the stdlib:
// the two syscalls are issued through raw syscall.Syscall6 against the
// connection's descriptor, reached via syscall.RawConn so the Go
// runtime poller stays in charge — EAGAIN parks the goroutine on the
// poller (returning false from the Read/Write callback) instead of
// spinning, and a read deadline or Close wakes it exactly as it would a
// stdlib ReadFromUDP.
//
// Wire layout (see docs/netio.md for the full picture): each message is
// one struct mmsghdr = { struct msghdr; u32 msg_len } padded to the
// platform word, each msghdr carries exactly one iovec pointing at a
// pool packet's backing array. Receive leaves msg_name nil (the
// datapath never looks at the source address); send points msg_name at
// a sockaddr_in per destination.

import (
	"net"
	"syscall"
	"unsafe"

	"routebricks/internal/pkt"
)

const mmsgSupported = true

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// kernel-written per-message byte count. Go pads the struct to the
// alignment of Msghdr (8 on 64-bit), matching the kernel's layout.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
}

func recvmmsg(fd uintptr, msgs []mmsghdr, flags int) (int, syscall.Errno) {
	r1, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
		uintptr(unsafe.Pointer(&msgs[0])), uintptr(len(msgs)), uintptr(flags), 0, 0)
	return int(r1), e
}

func sendmmsg(fd uintptr, msgs []mmsghdr, flags int) (int, syscall.Errno) {
	r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
		uintptr(unsafe.Pointer(&msgs[0])), uintptr(len(msgs)), uintptr(flags), 0, 0)
	return int(r1), e
}

// toRSA encodes a *net.UDPAddr as the sockaddr_in the kernel expects
// (port in network byte order regardless of host endianness).
func toRSA(a *net.UDPAddr, rsa *syscall.RawSockaddrInet4) bool {
	ip4 := a.IP.To4()
	if ip4 == nil {
		return false
	}
	rsa.Family = syscall.AF_INET
	port := (*[2]byte)(unsafe.Pointer(&rsa.Port))
	port[0] = byte(a.Port >> 8)
	port[1] = byte(a.Port)
	copy(rsa.Addr[:], ip4)
	return true
}

// mmsgRx is the receive state: Batch message slots, each permanently
// wired to one iovec, each iovec pointing at the pool packet currently
// posted in that slot. Slots hand their packet to the caller when
// filled and are re-posted with a fresh pool packet before the next
// syscall — the packet buffers ARE the receive buffers, which is what
// kills the staging-buffer copy.
type mmsgRx struct {
	rc    syscall.RawConn
	shard *pkt.PoolShard
	pkts  []*pkt.Packet
	msgs  []mmsghdr
	iovs  []syscall.Iovec
	max   int
}

func newMMsgRx(conn *net.UDPConn, cfg Config) (*mmsgRx, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	rx := &mmsgRx{
		rc:    rc,
		shard: cfg.Shard,
		pkts:  make([]*pkt.Packet, cfg.Batch),
		msgs:  make([]mmsghdr, cfg.Batch),
		iovs:  make([]syscall.Iovec, cfg.Batch),
		max:   cfg.MaxPacket,
	}
	for i := range rx.msgs {
		rx.msgs[i].hdr.Iov = &rx.iovs[i]
		rx.msgs[i].hdr.Iovlen = 1
	}
	return rx, nil
}

// post draws pool packets into every empty slot and re-aims the slot's
// iovec at the packet's backing array (pool recycling means a refilled
// slot's buffer is usually a different allocation than last time).
func (rx *mmsgRx) post(vlen int) {
	for i := 0; i < vlen; i++ {
		if rx.pkts[i] != nil {
			continue
		}
		p := rx.shard.GetRaw(rx.max)
		rx.pkts[i] = p
		rx.iovs[i].Base = &p.Data[0]
		rx.iovs[i].SetLen(rx.max)
	}
}

// read fills b with up to min(Batch, b's free capacity) datagrams in
// one recvmmsg, blocking on the runtime poller until at least one is
// available. Returns (received, truncated, error).
func (rx *mmsgRx) read(b *pkt.Batch) (int, int, error) {
	vlen := b.Cap() - b.Len()
	if vlen <= 0 {
		return 0, 0, nil
	}
	if vlen > len(rx.msgs) {
		vlen = len(rx.msgs)
	}
	rx.post(vlen)
	var n int
	var operr syscall.Errno
	err := rx.rc.Read(func(fd uintptr) bool {
		for {
			m, errno := recvmmsg(fd, rx.msgs[:vlen], syscall.MSG_DONTWAIT)
			switch errno {
			case 0:
				n = m
				return true
			case syscall.EAGAIN:
				return false // park on the poller until readable
			case syscall.EINTR:
				continue
			default:
				operr = errno
				return true
			}
		}
	})
	if err != nil {
		return 0, 0, err
	}
	if operr != 0 {
		return 0, 0, operr
	}
	trunc := 0
	for i := 0; i < n; i++ {
		p := rx.pkts[i]
		rx.pkts[i] = nil
		ln := int(rx.msgs[i].n)
		if ln > rx.max {
			ln = rx.max
		}
		if rx.msgs[i].hdr.Flags&syscall.MSG_TRUNC != 0 {
			trunc++
		}
		p.Data = p.Data[:ln]
		b.Add(p)
	}
	return n, trunc, nil
}

// release puts every still-posted receive buffer back on the pool.
func (rx *mmsgRx) release(shard *pkt.PoolShard) {
	for i, p := range rx.pkts {
		if p != nil {
			rx.pkts[i] = nil
			shard.Put(p)
		}
	}
}

// mmsgTx is the send state: Batch message slots, one iovec and one
// sockaddr_in each.
type mmsgTx struct {
	rc   syscall.RawConn
	msgs []mmsghdr
	iovs []syscall.Iovec
	rsas []syscall.RawSockaddrInet4
}

func newMMsgTx(conn *net.UDPConn, cfg Config) (*mmsgTx, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	tx := &mmsgTx{
		rc:   rc,
		msgs: make([]mmsghdr, cfg.Batch),
		iovs: make([]syscall.Iovec, cfg.Batch),
		rsas: make([]syscall.RawSockaddrInet4, cfg.Batch),
	}
	for i := range tx.msgs {
		tx.msgs[i].hdr.Iov = &tx.iovs[i]
		tx.msgs[i].hdr.Iovlen = 1
	}
	return tx, nil
}

// write sends every non-nil packet in ps (len(ps) ≤ Batch — the caller
// chunks) to addr, or to addrs[i] when scattering, looping on partial
// sends until the whole vector is on the wire. Returns datagrams sent.
func (tx *mmsgTx) write(ps []*pkt.Packet, addr *net.UDPAddr, addrs []*net.UDPAddr) (int, error) {
	k := 0
	if addr != nil {
		if !toRSA(addr, &tx.rsas[0]) {
			return 0, ErrNotSupported // non-IPv4 destination
		}
	}
	for i, p := range ps {
		if p == nil || len(p.Data) == 0 {
			continue
		}
		rsa := &tx.rsas[0]
		if addrs != nil {
			rsa = &tx.rsas[k]
			if !toRSA(addrs[i], rsa) {
				return 0, ErrNotSupported
			}
		}
		tx.iovs[k].Base = &p.Data[0]
		tx.iovs[k].SetLen(len(p.Data))
		tx.msgs[k].hdr.Name = (*byte)(unsafe.Pointer(rsa))
		tx.msgs[k].hdr.Namelen = syscall.SizeofSockaddrInet4
		k++
	}
	if k == 0 {
		return 0, nil
	}
	off := 0
	var operr syscall.Errno
	err := tx.rc.Write(func(fd uintptr) bool {
		for off < k {
			n, errno := sendmmsg(fd, tx.msgs[off:k], syscall.MSG_DONTWAIT)
			switch errno {
			case 0:
				off += n
			case syscall.EAGAIN:
				return false // park until writable
			case syscall.EINTR:
				continue
			default:
				operr = errno
				return true
			}
		}
		return true
	})
	if err != nil {
		return off, err
	}
	if operr != 0 {
		return off, operr
	}
	return off, nil
}
