//go:build !linux || !(amd64 || arm64)

package netio

// Stub for platforms without the mmsg fast path: constructors fail so
// BatchReader/BatchWriter silently take the portable per-packet path,
// and the method bodies are unreachable.

import (
	"net"

	"routebricks/internal/pkt"
)

const mmsgSupported = false

type mmsgRx struct{}

func newMMsgRx(*net.UDPConn, Config) (*mmsgRx, error) { return nil, ErrNotSupported }

func (*mmsgRx) read(*pkt.Batch) (int, int, error) { return 0, 0, ErrNotSupported }

func (*mmsgRx) release(*pkt.PoolShard) {}

type mmsgTx struct{}

func newMMsgTx(*net.UDPConn, Config) (*mmsgTx, error) { return nil, ErrNotSupported }

func (*mmsgTx) write([]*pkt.Packet, *net.UDPAddr, []*net.UDPAddr) (int, error) {
	return 0, ErrNotSupported
}
