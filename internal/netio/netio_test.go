package netio

import (
	"fmt"
	"net"
	"testing"
	"time"

	"routebricks/internal/pkt"
)

// listenLoop binds an ephemeral loopback UDP socket.
func listenLoop(t *testing.T) *net.UDPConn {
	t.Helper()
	c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetReadBuffer(4 << 20)
	return c
}

func addrOf(c *net.UDPConn) *net.UDPAddr { return c.LocalAddr().(*net.UDPAddr) }

// drain reads datagrams off r until want arrive or the deadline hits,
// returning payloads in arrival order.
func drain(t *testing.T, conn *net.UDPConn, r *BatchReader, want int) [][]byte {
	t.Helper()
	var got [][]byte
	batch := pkt.NewBatch(32)
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < want {
		conn.SetReadDeadline(deadline)
		batch.Reset()
		if _, err := r.ReadBatch(batch); err != nil {
			t.Fatalf("ReadBatch after %d/%d: %v", len(got), want, err)
		}
		for _, p := range batch.Packets() {
			got = append(got, append([]byte(nil), p.Data...))
			pkt.DefaultPool.Put(p)
		}
	}
	return got
}

// roundTrip pushes n numbered datagrams through a writer/reader pair on
// the given paths and checks every byte arrives, in order (loopback UDP
// between one socket pair preserves order).
func roundTrip(t *testing.T, forceFallback bool, wantMode string, n int) {
	t.Helper()
	rxConn, txConn := listenLoop(t), listenLoop(t)
	cfg := Config{ForceFallback: forceFallback}
	r := NewBatchReader(rxConn, cfg)
	defer r.Release()
	w := NewBatchWriter(txConn, cfg)
	if r.Mode() != wantMode || w.Mode() != wantMode {
		t.Fatalf("mode = %s/%s, want %s", r.Mode(), w.Mode(), wantMode)
	}

	ps := make([]*pkt.Packet, n)
	for i := range ps {
		ps[i] = pkt.DefaultPool.Get(64)
		copy(ps[i].Data, fmt.Sprintf("datagram-%04d", i))
	}
	sent, err := w.WriteBatch(ps, addrOf(rxConn))
	if err != nil || sent != n {
		t.Fatalf("WriteBatch = %d, %v; want %d", sent, err, n)
	}
	for _, p := range ps {
		pkt.DefaultPool.Put(p)
	}

	got := drain(t, rxConn, r, n)
	for i, d := range got {
		want := fmt.Sprintf("datagram-%04d", i)
		if len(d) != 64 || string(d[:len(want)]) != want {
			t.Fatalf("datagram %d: got %q (len %d), want prefix %q", i, d[:13], len(d), want)
		}
	}

	rs, ws := r.Stats(), w.Stats()
	if rs.Frames != uint64(n) || ws.Frames != uint64(n) {
		t.Fatalf("stats frames rx=%d tx=%d, want %d", rs.Frames, ws.Frames, n)
	}
	if rs.Batches == 0 || ws.Batches == 0 {
		t.Fatalf("stats batches rx=%d tx=%d, want > 0", rs.Batches, ws.Batches)
	}
	if wantMode == "mmsg" && ws.Batches >= uint64(n) {
		t.Fatalf("mmsg writer used %d syscalls for %d datagrams — no batching", ws.Batches, n)
	}
}

func TestRoundTripFallback(t *testing.T) {
	roundTrip(t, true, "fallback", 100)
}

func TestRoundTripMMsg(t *testing.T) {
	if !Available() {
		t.Skip("mmsg fast path not available on this platform")
	}
	roundTrip(t, false, "mmsg", 100)
}

// TestPathEquivalence delivers the same traffic over both paths and
// checks the receivers observe identical bytes in identical order —
// the fallback really is the same interface, just slower.
func TestPathEquivalence(t *testing.T) {
	if !Available() {
		t.Skip("mmsg fast path not available on this platform")
	}
	const n = 64
	var results [2][][]byte
	for i, force := range []bool{false, true} {
		rxConn, txConn := listenLoop(t), listenLoop(t)
		cfg := Config{ForceFallback: force}
		r := NewBatchReader(rxConn, cfg)
		w := NewBatchWriter(txConn, cfg)
		ps := make([]*pkt.Packet, n)
		for j := range ps {
			ps[j] = pkt.DefaultPool.Get(80)
			copy(ps[j].Data, fmt.Sprintf("flow-%d-seq-%04d", j%4, j))
		}
		if sent, err := w.WriteBatch(ps, addrOf(rxConn)); err != nil || sent != n {
			t.Fatalf("WriteBatch = %d, %v", sent, err)
		}
		for _, p := range ps {
			pkt.DefaultPool.Put(p)
		}
		results[i] = drain(t, rxConn, r, n)
		r.Release()
	}
	for j := range results[0] {
		if string(results[0][j]) != string(results[1][j]) {
			t.Fatalf("datagram %d differs between paths: %q vs %q", j, results[0][j][:16], results[1][j][:16])
		}
	}
}

// TestTruncation sends a datagram longer than MaxPacket: both paths
// must deliver exactly MaxPacket bytes; the mmsg path also counts the
// clip in Stats.Truncated (the fallback cannot detect it).
func TestTruncation(t *testing.T) {
	for _, force := range []bool{false, true} {
		if !force && !Available() {
			continue
		}
		name := "mmsg"
		if force {
			name = "fallback"
		}
		t.Run(name, func(t *testing.T) {
			rxConn, txConn := listenLoop(t), listenLoop(t)
			r := NewBatchReader(rxConn, Config{ForceFallback: force, MaxPacket: 128})
			defer r.Release()

			big := make([]byte, 256)
			for i := range big {
				big[i] = byte(i)
			}
			if _, err := txConn.WriteToUDP(big, addrOf(rxConn)); err != nil {
				t.Fatal(err)
			}
			got := drain(t, rxConn, r, 1)
			if len(got[0]) != 128 {
				t.Fatalf("delivered %d bytes, want the 128-byte clip", len(got[0]))
			}
			for i, b := range got[0] {
				if b != byte(i) {
					t.Fatalf("byte %d = %d, want %d", i, b, byte(i))
				}
			}
			if !force && r.Stats().Truncated != 1 {
				t.Fatalf("mmsg path counted %d truncations, want 1", r.Stats().Truncated)
			}
		})
	}
}

// TestWriteScatter sends one batch to two destinations in alternation —
// per-message addresses, one logical flush.
func TestWriteScatter(t *testing.T) {
	rx := [2]*net.UDPConn{listenLoop(t), listenLoop(t)}
	txConn := listenLoop(t)
	w := NewBatchWriter(txConn, Config{})

	const n = 32
	ps := make([]*pkt.Packet, n)
	dests := make([]*net.UDPAddr, n)
	for i := range ps {
		ps[i] = pkt.DefaultPool.Get(64)
		copy(ps[i].Data, fmt.Sprintf("scatter-%04d", i))
		dests[i] = addrOf(rx[i%2])
	}
	if sent, err := w.WriteScatter(ps, dests); err != nil || sent != n {
		t.Fatalf("WriteScatter = %d, %v; want %d", sent, err, n)
	}
	for _, p := range ps {
		pkt.DefaultPool.Put(p)
	}
	for q := 0; q < 2; q++ {
		r := NewBatchReader(rx[q], Config{})
		got := drain(t, rx[q], r, n/2)
		for i, d := range got {
			want := fmt.Sprintf("scatter-%04d", 2*i+q)
			if string(d[:len(want)]) != want {
				t.Fatalf("queue %d datagram %d: got %q, want %q", q, i, d[:12], want)
			}
		}
		r.Release()
	}
}

// TestWriteScatterLengthMismatch rejects a dests slice that does not
// pair 1:1 with the packets.
func TestWriteScatterLengthMismatch(t *testing.T) {
	w := NewBatchWriter(listenLoop(t), Config{})
	p := pkt.DefaultPool.Get(64)
	defer pkt.DefaultPool.Put(p)
	if _, err := w.WriteScatter([]*pkt.Packet{p}, nil); err == nil {
		t.Fatal("WriteScatter accepted 1 packet with 0 addresses")
	}
}

// TestListenReusePort checks the multi-queue contract: N sockets share
// one port, every datagram lands on exactly one of them, and one
// 4-tuple's datagrams all land on the same queue (kernel flow hashing
// is consistent per connection).
func TestListenReusePort(t *testing.T) {
	conns, err := ListenReusePort("udp4", "127.0.0.1:0", 2)
	if err == ErrNotSupported {
		t.Skip("SO_REUSEPORT multi-queue not supported on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range conns {
		defer c.Close()
	}
	if len(conns) != 2 {
		t.Fatalf("got %d conns, want 2", len(conns))
	}
	if p0, p1 := addrOf(conns[0]).Port, addrOf(conns[1]).Port; p0 != p1 {
		t.Fatalf("queues on different ports: %d vs %d", p0, p1)
	}

	// One connected sender = one 4-tuple: all its datagrams must hash to
	// the same queue.
	tx, err := net.DialUDP("udp4", nil, addrOf(conns[0]))
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := tx.Write([]byte(fmt.Sprintf("reuse-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	counts := [2]int{}
	buf := make([]byte, 64)
	for q, c := range conns {
		for {
			c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			if _, _, err := c.ReadFromUDP(buf); err != nil {
				break
			}
			counts[q]++
		}
	}
	if counts[0]+counts[1] != n {
		t.Fatalf("received %d+%d datagrams, want %d total", counts[0], counts[1], n)
	}
	if counts[0] != 0 && counts[1] != 0 {
		t.Fatalf("one 4-tuple split across queues (%d/%d) — kernel steering should be consistent", counts[0], counts[1])
	}
}

// TestListenReusePortSingle degenerates to one plain socket everywhere.
func TestListenReusePortSingle(t *testing.T) {
	conns, err := ListenReusePort("udp4", "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer conns[0].Close()
	if len(conns) != 1 {
		t.Fatalf("got %d conns, want 1", len(conns))
	}
}

// TestReaderDeadlineWake proves the shutdown contract rbrouter relies
// on: a blocked ReadBatch wakes when the deadline is poked.
func TestReaderDeadlineWake(t *testing.T) {
	conn := listenLoop(t)
	r := NewBatchReader(conn, Config{})
	defer r.Release()
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	batch := pkt.NewBatch(8)
	start := time.Now()
	if _, err := r.ReadBatch(batch); err == nil {
		t.Fatal("ReadBatch returned without data or deadline")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline wake took %v", elapsed)
	}
}
