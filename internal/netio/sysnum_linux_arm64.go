//go:build linux && arm64

package netio

// See sysnum_linux_amd64.go; arm64 uses the generic syscall table.
const sysSendmmsg = 269
