//go:build linux && amd64

package netio

// The frozen syscall package on amd64 defines SYS_RECVMMSG but not
// SYS_SENDMMSG (sendmmsg postdates the freeze); the number is ABI and
// cannot change.
const sysSendmmsg = 307
