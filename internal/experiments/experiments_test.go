package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parse reads a numeric cell back out of a report.
func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func findRow(t *testing.T, r *Report, label string) []string {
	t.Helper()
	for _, row := range r.Rows {
		if strings.Contains(row[0], label) {
			return row
		}
	}
	t.Fatalf("%s: no row matching %q in %v", r.ID, label, r.Rows)
	return nil
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep := e.Run(true)
			if rep == nil || len(rep.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if len(rep.Head) == 0 {
				t.Fatalf("%s has no header", e.ID)
			}
			for _, row := range rep.Rows {
				if len(row) != len(rep.Head) {
					t.Fatalf("%s: ragged row %v vs header %v", e.ID, row, rep.Head)
				}
			}
			if !strings.Contains(rep.String(), e.ID) {
				t.Fatalf("%s: String() missing ID", e.ID)
			}
			if !strings.Contains(rep.Markdown(), "|") {
				t.Fatalf("%s: Markdown() has no table", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table1"); !ok {
		t.Fatal("table1 not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("phantom experiment found")
	}
}

// Model-vs-paper agreement: for every row of the key tables that carries
// a numeric paper value, the model must be within 10%.
func TestModelMatchesPaperColumns(t *testing.T) {
	check := func(rep *Report, modelCol, paperCol int, tol float64) {
		t.Helper()
		for _, row := range rep.Rows {
			paper, err := strconv.ParseFloat(row[paperCol], 64)
			if err != nil {
				continue // qualitative cell
			}
			model := parse(t, row[modelCol])
			if diff := abs(model-paper) / paper; diff > tol {
				t.Errorf("%s %q: model %v vs paper %v (%.0f%% off)",
					rep.ID, row[0], model, paper, 100*diff)
			}
		}
	}
	check(Table1(), 1, 2, 0.05)
	check(Table3(), 2, 4, 0.05)
	check(Fig6(), 1, 3, 0.05)
	check(NUMA(), 1, 2, 0.05)
	check(Projection(), 1, 3, 0.15) // the 70 Gbps row is the paper's own rough estimate
}

func TestFig3Anchors(t *testing.T) {
	rep := Fig3()
	// N=32 row: current servers mesh with exactly 32.
	row := findRow(t, rep, "32")
	if !strings.Contains(row[1], "32 (mesh)") {
		t.Errorf("N=32 current = %q, want 32 (mesh)", row[1])
	}
	// N=1024: current uses n-fly with ≈2 intermediates/port (3073 total).
	for _, r := range rep.Rows {
		if r[0] == "1024" {
			if !strings.Contains(r[1], "n-fly") {
				t.Errorf("N=1024 current = %q, want n-fly", r[1])
			}
			var n int
			if _, err := strconv.Atoi(strings.Fields(r[1])[0]); err == nil {
				n, _ = strconv.Atoi(strings.Fields(r[1])[0])
			}
			if n < 2900 || n > 3200 {
				t.Errorf("N=1024 current servers = %d, want ≈3073", n)
			}
		}
	}
}

func TestRB4RatesAnchors(t *testing.T) {
	per64, tot64, b64 := RB4Analytic(64)
	if tot64 < 11.5 || tot64 > 12.5 {
		t.Errorf("RB4 64B total = %.2f Gbps, want ≈12 (paper)", tot64)
	}
	if b64 != "cpu" {
		t.Errorf("RB4 64B bottleneck = %s, want cpu", b64)
	}
	if per64 < 2.8 || per64 > 3.2 {
		t.Errorf("per-node 64B = %.2f, want ≈3", per64)
	}

	_, totAb, bAb := RB4Analytic(AbileneMean)
	if totAb < 33 || totAb > 49 {
		t.Errorf("RB4 Abilene total = %.2f Gbps, want inside the paper's band [33,49]", totAb)
	}
	if bAb != "nic" {
		t.Errorf("RB4 Abilene bottleneck = %s, want nic", bAb)
	}
}

func TestReorderingExperimentShape(t *testing.T) {
	rep := RB4Reordering(true)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	with := parse(t, rep.Rows[0][1])
	without := parse(t, rep.Rows[1][1])
	if without == 0 {
		t.Fatal("plain VLB produced zero reordering")
	}
	if with >= without/3 {
		t.Fatalf("flowlets %.4f%% not ≪ plain %.4f%%", with, without)
	}
}

func TestLatencyExperimentShape(t *testing.T) {
	rep := RB4Latency(true)
	mean := parse(t, findRow(t, rep, "mean")[1])
	if mean < 20 || mean > 90 {
		t.Fatalf("mean latency = %.1f µs, outside plausible band", mean)
	}
}

func TestAblationBatchingMonotone(t *testing.T) {
	rep := AblationBatching()
	// Rates must not decrease along each row (kn grows).
	for _, row := range rep.Rows {
		prev := 0.0
		for _, cell := range row[1:] {
			v := parse(t, cell)
			if v+1e-9 < prev {
				t.Fatalf("row %v not monotone", row)
			}
			prev = v
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
