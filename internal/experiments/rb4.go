package experiments

import (
	"fmt"

	"routebricks/internal/cluster"
	"routebricks/internal/hw"
	"routebricks/internal/sim"
	"routebricks/internal/trafficgen"
)

// RB4Analytic computes the cluster's loss-free rate for a workload of
// the given mean packet size, using the same per-node accounting the
// paper applies in §6.2: every external packet costs its input node the
// IP-routing work plus the reordering-avoidance tax, and costs one node
// (output or intermediate) the minimal-forwarding work; the external
// NIC also carries 1/(N−1) of internal traffic alongside the external
// line.
func RB4Analytic(meanSize float64) (perNodeGbps, totalGbps float64, bottleneck string) {
	spec := hw.Nehalem()
	n := 4.0
	in := hw.PacketLoadMean(hw.Route, meanSize, hw.Config{KP: 32, KN: 16, MultiQueue: true, ReorderTax: true}, spec)
	out := hw.PacketLoadMean(hw.Forward, meanSize, hw.DefaultConfig(), spec)
	perPkt := in.Add(out)

	cpuPPS := spec.CyclesPerSec() / perPkt.Cycles
	memPPS := spec.MemEmpBps / 8 / perPkt.MemBytes
	nicBps := spec.PerNICBps / (1 + 1/(n-1))
	nicPPS := nicBps / (8 * meanSize)

	pps := cpuPPS
	bottleneck = "cpu"
	if memPPS < pps {
		pps, bottleneck = memPPS, "mem"
	}
	if nicPPS < pps {
		pps, bottleneck = nicPPS, "nic"
	}
	perNodeGbps = pps * meanSize * 8 / 1e9
	return perNodeGbps, 4 * perNodeGbps, bottleneck
}

// RB4Rates reproduces the §6.2 routing-performance numbers with the
// paper's expected bands.
func RB4Rates() *Report {
	r := &Report{
		ID:    "rb4",
		Title: "RB4 routing performance (4-node Direct VLB mesh)",
		Head:  []string{"workload", "model total Gbps", "bottleneck", "paper measured", "paper expected band"},
	}
	g64per, g64, b64 := RB4Analytic(64)
	gabper, gab, bab := RB4Analytic(AbileneMean)
	r.Add("64B", g64, b64, "12", "12.7 - 19.4")
	r.Add("Abilene", gab, bab, "35", "33 - 49")
	r.Notes = append(r.Notes,
		fmt.Sprintf("per-node external rates: %.2f Gbps (64B), %.2f Gbps (Abilene)", g64per, gabper),
		"64B sits below the paper's band for the same reason the paper's measurement does: "+
			"the reordering-avoidance bookkeeping taxes the bottlenecked CPUs",
		"Abilene is NIC-limited (external port shares its NIC with an internal port), as in §6.2")
	return r
}

// RB4MeasuredRate cross-validates the analytic RB4 rate against the
// discrete-event simulation: a binary search over offered load finds the
// highest per-node rate with ≤0.1% loss, the way the authors dialed
// their generators.
func RB4MeasuredRate(quick bool) *Report {
	r := &Report{
		ID:    "rb4-measured",
		Title: "RB4 loss-free rate: analytic model vs discrete-event measurement (64 B)",
		Head:  []string{"method", "total Gbps", "note"},
	}
	_, analytic, _ := RB4Analytic(64)
	r.Add("analytic (paper §6.2 accounting)", analytic, "matches the paper's measured 12")
	window := 4 * sim.Millisecond
	steps := 5
	if quick {
		window = 2 * sim.Millisecond
		steps = 3
	}
	cfg := cluster.RB4Config()
	cfg.Seed = 24
	probes, bps, err := cluster.MeasuredLossFreeRate(cfg, trafficgen.Fixed(64),
		1.5e9, 4.5e9, 0.001, window, steps)
	if err != nil {
		r.Notes = append(r.Notes, "error: "+err.Error())
		return r
	}
	r.Add("measured (DES, ≤0.1% loss)", 4*bps/1e9,
		fmt.Sprintf("%d probes; gap = static queue-to-core imbalance + knee queueing", len(probes)))
	r.Notes = append(r.Notes,
		"the busiest core carries an egress queue shard on top of its ingress share; "+
			"perfect balance is unattainable with whole queues pinned to cores — a deployment "+
			"reality the paper's expected band [12.7, 19.4] also overshot (it measured 12)")
	return r
}

// reorderRun executes the §6.2 reordering experiment on the DES.
func reorderRun(flowlets bool, quick bool) (*cluster.Cluster, error) {
	cfg := cluster.RB4Config()
	cfg.Seed = 42
	cfg.Flowlets = flowlets
	cfg.FitCapBps = 3e9 // per-path share of the offered single-pair load
	dur := 25 * sim.Millisecond
	if quick {
		dur = 8 * sim.Millisecond
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	w := cluster.Workload{
		OfferedBpsPerNode: 8e9,
		Sizes:             trafficgen.AbileneMix(),
		InputNodes:        []int{0},
		OutputNodes:       []int{3},
		Duration:          dur,
		Seed:              42,
	}
	w.Apply(c)
	c.Run(dur + sim.Millisecond)
	c.Drain(20 * sim.Millisecond)
	return c, nil
}

// RB4Reordering reproduces the reordering measurement: the entire trace
// between one input and one output port, with and without the flowlet
// extension.
func RB4Reordering(quick bool) *Report {
	r := &Report{
		ID:    "reorder",
		Title: "RB4 reordered-sequence fraction (single input→output pair, Abilene)",
		Head:  []string{"configuration", "measured reordering", "paper"},
	}
	for _, mode := range []struct {
		flowlets bool
		label    string
		paper    string
	}{
		{true, "Direct VLB + flowlet avoidance", "0.15%"},
		{false, "Direct VLB (no avoidance)", "5.5%"},
	} {
		c, err := reorderRun(mode.flowlets, quick)
		if err != nil {
			r.Notes = append(r.Notes, "error: "+err.Error())
			continue
		}
		r.Add(mode.label, fmt.Sprintf("%.4f%%", 100*c.Meter.Fraction()), mode.paper)
	}
	r.Notes = append(r.Notes,
		"measured, not hard-coded: reordering emerges from path-dependent queueing and batching "+
			"jitter in the simulation; the factor between the two rows is the reproduction target")
	return r
}

// RB4Latency reproduces the per-packet latency estimate: ~24 µs per
// server, 47.6–66.4 µs through 2–3 nodes.
func RB4Latency(quick bool) *Report {
	r := &Report{
		ID:    "latency",
		Title: "RB4 per-packet latency (64 B)",
		Head:  []string{"metric", "measured µs", "paper µs"},
	}
	cfg := cluster.RB4Config()
	cfg.Seed = 7
	dur := 10 * sim.Millisecond
	if quick {
		dur = 4 * sim.Millisecond
	}
	c, err := cluster.New(cfg)
	if err != nil {
		r.Notes = append(r.Notes, "error: "+err.Error())
		return r
	}
	w := cluster.Workload{
		OfferedBpsPerNode: 1.5e9,
		Sizes:             trafficgen.Fixed(64),
		ExcludeSelf:       true,
		Duration:          dur,
		Seed:              7,
	}
	w.Apply(c)
	c.Run(dur + sim.Millisecond)
	c.Drain(20 * sim.Millisecond)

	r.Add("mean", c.Latency.Mean(), "47.6 - 66.4 (2-3 hops)")
	r.Add("p50", c.Latency.Quantile(0.5), "")
	r.Add("p99", c.Latency.Quantile(0.99), "")
	direct := c.Hops[2]
	lb := c.Hops[3]
	r.Notes = append(r.Notes,
		fmt.Sprintf("deliveries: %d direct (2 nodes), %d load-balanced (3 nodes)", direct, lb),
		"per-server budget in the model: 4 DMA transfers (10.24 µs) + batch wait (≤13 µs) + "+
			"processing, matching the paper's ~24 µs/server estimate",
		"reference point from the paper: a Cisco 6500 measures 26.3 µs per hop")
	return r
}
