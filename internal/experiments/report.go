// Package experiments regenerates every table and figure of the
// RouteBricks evaluation (§5–§6). Each experiment returns a Report whose
// rows place the model/simulation output next to the paper's published
// number, so EXPERIMENTS.md and the rbbench tool are generated from one
// source of truth.
package experiments

import (
	"fmt"
	"strings"
)

// Report is one reproduced table or figure.
type Report struct {
	ID    string // "table1", "fig3", ...
	Title string
	Notes []string
	Head  []string
	Rows  [][]string
}

// Add appends a row; values are formatted with %v.
func (r *Report) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	r.Rows = append(r.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

// String renders an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Head))
	for i, h := range r.Head {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Head)
	sep := make([]string, len(r.Head))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the report as a GitHub table.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	b.WriteString("| " + strings.Join(r.Head, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(r.Head)) + "\n")
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	b.WriteByte('\n')
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "*Note: %s*\n\n", n)
	}
	return b.String()
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(quick bool) *Report
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig3", "Servers required vs external ports", func(bool) *Report { return Fig3() }},
		{"fig6", "Forwarding rates with and without multiple queues", func(bool) *Report { return Fig6() }},
		{"table1", "Polling configurations", func(bool) *Report { return Table1() }},
		{"fig7", "Cumulative impact of architecture, queues, batching", func(bool) *Report { return Fig7() }},
		{"fig8", "Forwarding rate by workload and application", func(bool) *Report { return Fig8() }},
		{"fig9", "CPU load vs input rate", func(bool) *Report { return Fig9() }},
		{"fig10", "Bus loads vs input rate", func(bool) *Report { return Fig10() }},
		{"table2", "Component capacity bounds", func(bool) *Report { return Table2() }},
		{"table3", "Instructions per packet and CPI", func(bool) *Report { return Table3() }},
		{"numa", "NUMA data placement (§4.2)", func(bool) *Report { return NUMA() }},
		{"proj", "Next-generation server projections (§5.3)", func(bool) *Report { return Projection() }},
		{"rb4", "RB4 routing performance (§6.2)", func(bool) *Report { return RB4Rates() }},
		{"rb4-measured", "RB4 rate, model vs simulation", RB4MeasuredRate},
		{"reorder", "RB4 reordering (§6.2)", RB4Reordering},
		{"latency", "RB4 latency (§6.2)", RB4Latency},
		{"ablation-batch", "Ablation: batching parameter sweep", func(bool) *Report { return AblationBatching() }},
		{"ablation-delta", "Ablation: flowlet timeout sweep", AblationFlowletDelta},
		{"ablation-txtimeout", "Ablation: NIC batch timeout vs latency (§4.2 future work)", AblationTxTimeout},
		{"ablation-lpm", "Ablation: LPM engine comparison", func(bool) *Report { return AblationLPM() }},
		{"ablation-topo", "Ablation: n-fly vs torus (§3.3 design choice)", func(bool) *Report { return AblationTopo() }},
		{"profile", "Per-element CPU cost breakdown (VTune-style)", func(bool) *Report { return Profile() }},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
