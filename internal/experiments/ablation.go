package experiments

import (
	"fmt"
	"time"

	"routebricks/internal/click"
	"routebricks/internal/cluster"
	"routebricks/internal/elements"
	"routebricks/internal/hw"
	"routebricks/internal/lpm"
	"routebricks/internal/nic"
	"routebricks/internal/sim"
	"routebricks/internal/topo"
	"routebricks/internal/trafficgen"
)

// AblationBatching sweeps the (kp, kn) batching grid beyond the three
// points of Table 1, quantifying each knob's marginal value — the
// design-choice ablation DESIGN.md calls out.
func AblationBatching() *Report {
	r := &Report{
		ID:    "ablation-batch",
		Title: "Batching sweep: 64 B forwarding rate (Gbps) by kp × kn",
		Head:  []string{"kp \\ kn", "1", "2", "4", "8", "16"},
	}
	spec := hw.Nehalem()
	for _, kp := range []int{1, 2, 4, 8, 16, 32} {
		row := []any{fmt.Sprintf("%d", kp)}
		for _, kn := range []int{1, 2, 4, 8, 16} {
			res := hw.MaxRate(spec, hw.Forward, 64, hw.Config{KP: kp, KN: kn, MultiQueue: true})
			row = append(row, res.Gbps)
		}
		r.Add(row...)
	}
	r.Notes = append(r.Notes,
		"diminishing returns in both dimensions; the paper's kp=32, kn=16 sits near the plateau")
	return r
}

// AblationFlowletDelta sweeps the flowlet timeout δ, showing why the
// paper's 100 ms "works well": small δ fragments flows across paths and
// reintroduces reordering.
func AblationFlowletDelta(quick bool) *Report {
	r := &Report{
		ID:    "ablation-delta",
		Title: "Flowlet timeout sweep: reordering vs δ (single-pair overload)",
		Head:  []string{"delta", "measured reordering", "new flowlets"},
	}
	deltas := []sim.Time{100 * sim.Microsecond, sim.Millisecond, 10 * sim.Millisecond, 100 * sim.Millisecond}
	dur := 20 * sim.Millisecond
	if quick {
		dur = 6 * sim.Millisecond
		deltas = []sim.Time{100 * sim.Microsecond, 10 * sim.Millisecond}
	}
	for _, delta := range deltas {
		cfg := cluster.RB4Config()
		cfg.Seed = 11
		cfg.Delta = delta
		cfg.FitCapBps = 3e9
		c, err := cluster.New(cfg)
		if err != nil {
			r.Notes = append(r.Notes, "error: "+err.Error())
			return r
		}
		w := cluster.Workload{
			OfferedBpsPerNode: 8e9,
			Sizes:             trafficgen.AbileneMix(),
			InputNodes:        []int{0},
			OutputNodes:       []int{3},
			Duration:          dur,
			Seed:              11,
		}
		w.Apply(c)
		c.Run(dur + sim.Millisecond)
		c.Drain(20 * sim.Millisecond)
		_, _, _, newFl, _ := c.BalancerStats()
		r.Add(time.Duration(delta).String(), fmt.Sprintf("%.4f%%", 100*c.Meter.Fraction()), newFl)
	}
	return r
}

// AblationTopo reproduces the §3.3 design decision: the k-ary n-fly vs
// the torus family. The torus avoids intermediate servers but its fanout
// and per-server transit processing explode with scale.
func AblationTopo() *Report {
	r := &Report{
		ID:    "ablation-topo",
		Title: "n-fly vs torus (current servers, R = 10 Gbps)",
		Head: []string{"N ports", "n-fly servers", "torus fanout fits?",
			"torus ports needed", "torus processing vs 3R budget"},
		Notes: []string{"the paper experimented with both families and chose the n-fly " +
			"(§3.3); the torus either exceeds the port budget or demands multiples of the " +
			"3R per-server processing budget for transit hops"},
	}
	cfg := topo.Current()
	for n := 64; n <= 2048; n *= 4 {
		d, err := topo.Plan(cfg, n, 10)
		nfly := "-"
		if err == nil {
			nfly = fmt.Sprintf("%d", d.Servers)
		}
		t, ok := topo.TorusFeasible(cfg, n, 10)
		if ok {
			r.Add(n, nfly, "yes",
				fmt.Sprintf("%d (k=%d, n=%d)", t.PortsUsed, t.Radix, t.Dims),
				fmt.Sprintf("%.1fx", t.ProcFactor))
		} else {
			r.Add(n, nfly, "no", fmt.Sprintf("> %d available", cfg.Fanout1G()), "-")
		}
	}
	return r
}

// AblationTxTimeout implements and evaluates the feature the paper left
// as future work (§4.2: "increased latency can be alleviated by using a
// timeout to limit the amount of time a packet can wait to be 'batched'
// — we have yet to implement this feature in our driver"): sweep the NIC
// batch timeout at a low offered rate and measure latency.
func AblationTxTimeout(quick bool) *Report {
	r := &Report{
		ID:    "ablation-txtimeout",
		Title: "NIC batch timeout vs latency at low rate (the paper's future-work feature)",
		Head:  []string{"tx timeout", "mean latency µs", "p99 µs"},
		Notes: []string{"at low rates packets otherwise wait for a full kn=16 batch; " +
			"the timeout trades a little batching efficiency for bounded latency"},
	}
	timeouts := []sim.Time{2 * sim.Microsecond, 13 * sim.Microsecond, 50 * sim.Microsecond, 200 * sim.Microsecond}
	dur := 10 * sim.Millisecond
	if quick {
		dur = 4 * sim.Millisecond
		timeouts = []sim.Time{2 * sim.Microsecond, 200 * sim.Microsecond}
	}
	for _, to := range timeouts {
		cfg := cluster.RB4Config()
		cfg.Seed = 31
		cfg.TxTimeout = to
		c, err := cluster.New(cfg)
		if err != nil {
			r.Notes = append(r.Notes, "error: "+err.Error())
			return r
		}
		w := cluster.Workload{
			OfferedBpsPerNode: 0.2e9, // far below saturation: batches rarely fill
			Sizes:             trafficgen.Fixed(64),
			ExcludeSelf:       true,
			Duration:          dur,
			Seed:              31,
		}
		w.Apply(c)
		c.Run(dur + sim.Millisecond)
		c.Drain(20 * sim.Millisecond)
		r.Add(time.Duration(to).String(), c.Latency.Mean(), c.Latency.Quantile(0.99))
	}
	return r
}

// Profile reproduces the style of the paper's VTune-based CPU
// accounting (§4.1, Table 3): the IP-router pipeline is instrumented
// with the click profiler and the per-element calibrated cycle costs are
// broken down per packet.
func Profile() *Report {
	r := &Report{
		ID:    "profile",
		Title: "Per-element CPU cost of the IP-routing pipeline (64 B, calibrated cycles)",
		Head:  []string{"element", "cycles/pkt", "share"},
		Notes: []string{"the analog of the paper's VTune instrumentation, over virtual cycles: " +
			"poll+forwarding book-keeping dominates, the route lookup adds its fixed cost — the " +
			"decomposition behind Table 3's 1512 instructions/packet"},
	}
	rt := lpm.NewDir248()
	if err := lpm.Build(rt, lpm.RandomTable(4096, 8, 3, true)); err != nil {
		r.Notes = append(r.Notes, "error: "+err.Error())
		return r
	}
	rt.Freeze()

	ring := nic.NewRing(64)
	router := click.NewRouter()
	poll := elements.NewPollDevice(ring, 32)
	look := elements.NewLPMLookup(rt)
	router.MustAdd("poll", poll)
	router.MustAdd("check", &elements.CheckIPHeader{})
	router.MustAdd("lookup", look)
	router.MustAdd("ttl", &elements.DecIPTTL{})
	router.MustAdd("tx", elements.NewToDevice(nic.NewRing(1<<16), 16))
	router.MustAdd("drop", &elements.Discard{})
	router.MustConnect("poll", 0, "check", 0)
	router.MustConnect("check", 0, "lookup", 0)
	router.MustConnect("check", 1, "drop", 0)
	router.MustConnect("lookup", 0, "ttl", 0)
	router.MustConnect("lookup", 1, "drop", 0)
	router.MustConnect("ttl", 0, "tx", 0)
	router.MustConnect("ttl", 1, "drop", 0)
	prof := click.NewProfiler()
	router.Instrument(prof)

	src := trafficgen.New(trafficgen.Config{Seed: 4, Sizes: trafficgen.Fixed(64), RandomDst: true})
	ctx := &click.Context{}
	const n = 32 * 256
	fed := 0
	for fed < n {
		for ring.Len() < 32 && fed < n {
			ring.Enqueue(src.Next())
			fed++
		}
		fi := ctx.BeginFrame()
		poll.Run(ctx)
		prof.Account("poll", ctx.EndFrame(fi), 32)
	}
	total := prof.TotalCycles()
	for _, s := range prof.Stats() {
		if s.Packets == 0 {
			continue
		}
		r.Add(s.Name, s.Cycles/float64(n), fmt.Sprintf("%.1f%%", 100*s.Cycles/total))
	}
	r.Add("total", total/float64(n), "100%")
	return r
}

// AblationLPM compares the DIR-24-8 engine against the binary-trie
// baseline on a 256K-route table: build cost, memory, and a live lookup
// timing on this host (wall-clock, so indicative only).
func AblationLPM() *Report {
	r := &Report{
		ID:    "ablation-lpm",
		Title: "LPM engines on a 256K-route table",
		Head:  []string{"engine", "build ms", "lookup ns/op (host)", "memory MB"},
	}
	routes := lpm.RandomTable(256*1024, 16, 7, true)

	measure := func(name string, e lpm.Engine, mem int) {
		t0 := time.Now()
		if err := lpm.Build(e, routes); err != nil {
			r.Notes = append(r.Notes, "error: "+err.Error())
			return
		}
		if d, ok := e.(*lpm.Dir248); ok {
			d.Freeze()
		}
		build := time.Since(t0)

		probes := make([]uint32, 4096)
		s := uint32(2463534242)
		for i := range probes {
			s ^= s << 13
			s ^= s >> 17
			s ^= s << 5
			probes[i] = s
		}
		const iters = 200000
		t1 := time.Now()
		sink := 0
		for i := 0; i < iters; i++ {
			sink += e.Lookup(probes[i&4095])
		}
		perOp := time.Since(t1).Nanoseconds() / iters
		_ = sink
		r.Add(name, float64(build.Milliseconds()), perOp, float64(mem)/1e6)
	}

	d := lpm.NewDir248()
	measure("dir-24-8", d, d.MemoryFootprint())
	// Trie memory: ~2 nodes per route × ~48 B/node, an estimate.
	measure("binary trie", lpm.NewTrie(), 256*1024*2*48)
	r.Notes = append(r.Notes,
		"host wall-clock timings vary by machine; the DIR-24-8 advantage (one memory access "+
			"for ≤/24 prefixes) is the paper's reason for using D-lookup")
	return r
}
