package experiments

import (
	"fmt"

	"routebricks/internal/hw"
	"routebricks/internal/topo"
	"routebricks/internal/trafficgen"
)

// AbileneMean is the mean packet size of the synthetic Abilene workload,
// shared with the trafficgen mix.
var AbileneMean = trafficgen.AbileneMix().Mean()

// Table1 reproduces the polling-configuration table: forwarding rate at
// 64 B under (kp, kn) ∈ {(1,1), (32,1), (32,16)}.
func Table1() *Report {
	r := &Report{
		ID:    "table1",
		Title: "Forwarding rate by polling configuration (64 B, 8 cores)",
		Head:  []string{"configuration", "model Gbps", "paper Gbps"},
	}
	spec := hw.Nehalem()
	rows := []struct {
		label  string
		kp, kn int
		paper  float64
	}{
		{"no batching (kp=1, kn=1)", 1, 1, 1.46},
		{"poll-driven batching (kp=32, kn=1)", 32, 1, 4.97},
		{"poll- and NIC-driven batching (kp=32, kn=16)", 32, 16, 9.77},
	}
	for _, c := range rows {
		res := hw.MaxRate(spec, hw.Forward, 64, hw.Config{KP: c.kp, KN: c.kn, MultiQueue: true})
		r.Add(c.label, res.Gbps, c.paper)
	}
	return r
}

// Table2 reproduces the component capacity bounds.
func Table2() *Report {
	r := &Report{
		ID:    "table2",
		Title: "Upper bounds on component capacity (Gbps)",
		Head:  []string{"component", "nominal", "empirical", "paper nominal", "paper empirical"},
		Notes: []string{
			"model values are spec constants taken from the paper's Table 2; " +
				"the 'benchmark' column of the paper is reproduced as the empirical capacity " +
				"the bottleneck analysis uses",
		},
	}
	s := hw.Nehalem()
	r.Add("CPUs (cycles/s)", s.CyclesPerSec()/1e9, s.CyclesPerSec()/1e9, 22.4, "n/a")
	r.Add("memory buses", s.MemNominalBps/1e9, s.MemEmpBps/1e9, 410.0, 262.0)
	r.Add("inter-socket link", s.QPINominalBps/1e9, s.QPIEmpBps/1e9, 200.0, 144.34)
	r.Add("I/O-socket links", s.IONominalBps/1e9, s.IOEmpBps/1e9, 400.0, 117.0)
	r.Add("PCIe buses (v1.1)", s.PCIeNomBps/1e9, s.PCIeEmpBps/1e9, 64.0, 50.8)
	r.Add("per-NIC payload", float64(s.NICs)*s.PerNICBps/1e9, float64(s.NICs)*s.PerNICBps/1e9, 24.6, 24.6)
	return r
}

// Table3 reproduces instructions/packet and CPI per application.
func Table3() *Report {
	r := &Report{
		ID:    "table3",
		Title: "Instructions per packet and CPI (64 B)",
		Head:  []string{"application", "model cycles/pkt", "model instr/pkt", "CPI (paper)", "paper instr/pkt"},
	}
	spec := hw.Nehalem()
	cfg := hw.DefaultConfig()
	paper := map[hw.App]float64{hw.Forward: 1033, hw.Route: 1512, hw.IPsec: 14221}
	for _, app := range []hw.App{hw.Forward, hw.Route, hw.IPsec} {
		load := hw.PacketLoad(app, 64, cfg, spec)
		r.Add(app.String(), load.Cycles, load.Cycles/hw.CPI(app), hw.CPI(app), paper[app])
	}
	return r
}

// Fig3 reproduces the cluster-sizing figure: total servers vs external
// ports for the three server configurations plus the switched-Clos
// comparison, R = 10 Gbps.
func Fig3() *Report {
	r := &Report{
		ID:    "fig3",
		Title: "Servers required for an N-port, 10 Gbps/port router",
		Head: []string{"N ports", "current (1 port, 5 slots)", "more NICs (1 port, 20 slots)",
			"faster (2 ports, 20 slots)", "48-port switched (server-equiv)"},
		Notes: []string{
			"mesh→n-fly transitions: current at N>32, more-NICs at N>128 (both match the paper); " +
				"faster at N>256 (the paper's text claims 2048, which its stated fanout cannot support; " +
				"see EXPERIMENTS.md)",
			"paper anchor reproduced: current servers need ≈2 intermediate servers per port at N=1024",
		},
	}
	for n := 4; n <= 2048; n *= 2 {
		row := []any{n}
		for _, cfg := range []topo.ServerConfig{topo.Current(), topo.MoreNICs(), topo.Faster()} {
			d, err := topo.Plan(cfg, n, 10)
			if err != nil {
				row = append(row, "-")
				continue
			}
			cell := fmt.Sprintf("%d (%s)", d.Servers, d.Topology)
			row = append(row, cell)
		}
		_, eq := topo.SwitchedCost(n)
		row = append(row, eq)
		r.Add(row...)
	}
	return r
}

// Fig6 reproduces the toy core-placement scenarios.
func Fig6() *Report {
	r := &Report{
		ID:    "fig6",
		Title: "Forwarding rates with and without multiple queues (64 B)",
		Head:  []string{"scenario", "model Gbps/FP", "model total Gbps", "paper Gbps/FP"},
	}
	spec := hw.Nehalem()
	paper := map[hw.Scenario]string{
		hw.PipelineSharedCache: "1.2",
		hw.PipelineCrossCache:  "0.6",
		hw.ParallelFP:          "1.7",
		hw.SplitterSingleQueue: "(>3x below d)",
		hw.SplitterMultiQueue:  "~1.7/FP",
		hw.OverlapSingleQueue:  "0.7",
		hw.OverlapMultiQueue:   "~1.7",
	}
	for _, s := range hw.ToyScenarios() {
		total, per := hw.ToyRate(spec, s)
		r.Add(s.String(), per, total, paper[s])
	}
	return r
}

// Fig7 reproduces the cumulative-impact bars.
func Fig7() *Report {
	r := &Report{
		ID:    "fig7",
		Title: "Aggregate impact of server architecture, multiple queues, batching (64 B fwd)",
		Head:  []string{"configuration", "model Mpps", "paper anchor"},
	}
	xeon := hw.MaxRate(hw.Xeon(), hw.Forward, 64, hw.Config{KP: 1, KN: 1})
	nehalemPlain := hw.MaxRate(hw.Nehalem(), hw.Forward, 64, hw.Config{KP: 1, KN: 1})
	nehalemSQBatch := hw.MaxRate(hw.Nehalem(), hw.Forward, 64, hw.Config{KP: 32, KN: 16})
	tuned := hw.MaxRate(hw.Nehalem(), hw.Forward, 64, hw.DefaultConfig())
	r.Add("Xeon, single queue, no batching", xeon.PPS/1e6, "11x below tuned")
	r.Add("Nehalem, single queue, no batching", nehalemPlain.PPS/1e6, "6.7x below tuned")
	r.Add("Nehalem, single queue, with batching", nehalemSQBatch.PPS/1e6, "(between)")
	r.Add("Nehalem, multi-queue, with batching", tuned.PPS/1e6, "18.96 Mpps (9.7 Gbps)")
	r.Notes = append(r.Notes,
		fmt.Sprintf("model ratios: %.1fx over untuned Nehalem, %.1fx over Xeon",
			tuned.PPS/nehalemPlain.PPS, tuned.PPS/xeon.PPS))
	return r
}

// Fig8 reproduces the workload figure: minimal forwarding by packet size
// (top) and all three applications at 64 B and Abilene (bottom).
func Fig8() *Report {
	r := &Report{
		ID:    "fig8",
		Title: "Forwarding rate by packet size and application",
		Head:  []string{"workload", "app", "model Gbps", "model Mpps", "bottleneck", "paper Gbps"},
	}
	spec := hw.Nehalem()
	cfg := hw.DefaultConfig()
	paperTop := map[int]string{64: "9.7", 128: "(CPU-bound)", 256: "24.6", 512: "24.6", 1024: "24.6"}
	for _, size := range []int{64, 128, 256, 512, 1024} {
		res := hw.MaxRate(spec, hw.Forward, size, cfg)
		r.Add(fmt.Sprintf("%dB", size), "fwd", res.Gbps, res.PPS/1e6, res.Bottleneck, paperTop[size])
	}
	abilene := hw.MaxRateMean(spec, hw.Forward, AbileneMean, cfg)
	r.Add("Abilene", "fwd", abilene.Gbps, abilene.PPS/1e6, abilene.Bottleneck, "24.6")

	paperBottom := map[hw.App][2]string{
		hw.Forward: {"9.7", "24.6"},
		hw.Route:   {"6.35", "24.6"},
		hw.IPsec:   {"1.4", "4.45"},
	}
	for _, app := range []hw.App{hw.Route, hw.IPsec} {
		small := hw.MaxRate(spec, app, 64, cfg)
		r.Add("64B", app.String(), small.Gbps, small.PPS/1e6, small.Bottleneck, paperBottom[app][0])
		ab := hw.MaxRateMean(spec, app, AbileneMean, cfg)
		r.Add("Abilene", app.String(), ab.Gbps, ab.PPS/1e6, ab.Bottleneck, paperBottom[app][1])
	}
	return r
}

// Fig9 reproduces the CPU-load figure: cycles/packet vs input rate with
// the nominal bound.
func Fig9() *Report {
	r := &Report{
		ID:    "fig9",
		Title: "CPU load (cycles/packet) vs input rate (64 B)",
		Head:  []string{"rate Mpps", "fwd", "rtr", "ipsec", "cycles available/pkt"},
		Notes: []string{"per-packet load is constant in rate (the flat lines of Fig 9); " +
			"an application saturates where its line crosses the available-cycles curve"},
	}
	spec := hw.Nehalem()
	cfg := hw.DefaultConfig()
	fwd := hw.PacketLoad(hw.Forward, 64, cfg, spec).Cycles
	rtr := hw.PacketLoad(hw.Route, 64, cfg, spec).Cycles
	ips := hw.PacketLoad(hw.IPsec, 64, cfg, spec).Cycles
	for _, mpps := range []float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20} {
		avail := spec.CyclesPerSec() / (mpps * 1e6)
		r.Add(mpps, fwd, rtr, ips, avail)
	}
	return r
}

// Fig10 reproduces the bus-load figure: per-packet bytes on each bus with
// nominal and empirical bounds at the app's saturation rate.
func Fig10() *Report {
	r := &Report{
		ID:    "fig10",
		Title: "Bus loads (bytes/packet) and bounds at saturation (64 B)",
		Head: []string{"app", "bus", "load B/pkt", "empirical bound B/pkt",
			"nominal bound B/pkt", "utilization"},
		Notes: []string{"bounds are capacity divided by the app's saturation packet rate; " +
			"all loads sit below the empirical bounds, as in Fig 10 — the buses are not the bottleneck"},
	}
	spec := hw.Nehalem()
	cfg := hw.DefaultConfig()
	for _, app := range []hw.App{hw.Forward, hw.Route, hw.IPsec} {
		load := hw.PacketLoad(app, 64, cfg, spec)
		rate := hw.MaxRate(spec, app, 64, cfg).PPS
		add := func(bus string, l, emp, nom float64) {
			r.Add(app.String(), bus, l, emp/8/rate, nom/8/rate, trimFloat(l/(emp/8/rate)))
		}
		add("memory", load.MemBytes, spec.MemEmpBps, spec.MemNominalBps)
		add("io", load.IOBytes, spec.IOEmpBps, spec.IONominalBps)
		add("pcie", load.PCIeBytes, spec.PCIeEmpBps, spec.PCIeNomBps)
		add("inter-socket", load.QPIBytes, spec.QPIEmpBps, spec.QPINominalBps)
	}
	return r
}

// NUMA reproduces the §4.2 data-placement experiment: 4 cores on one
// socket reach 6.3 Gbps regardless of descriptor placement.
func NUMA() *Report {
	r := &Report{
		ID:    "numa",
		Title: "NUMA data placement (4 cores, 64 B fwd)",
		Head:  []string{"placement", "model Gbps", "paper Gbps"},
		Notes: []string{"the model charges no remote-access penalty because the paper measured none " +
			"(23% remote accesses, identical throughput)"},
	}
	cfg := hw.DefaultConfig()
	cfg.Cores = 4
	local := hw.MaxRate(hw.Nehalem(), hw.Forward, 64, cfg)
	r.Add("socket-0 cores, local descriptors", local.Gbps, 6.3)
	r.Add("socket-1 cores, remote descriptors", local.Gbps, 6.3)
	return r
}

// Projection reproduces the §5.3 next-generation estimates.
func Projection() *Report {
	r := &Report{
		ID:    "proj",
		Title: "Projected rates on the 4-socket next-generation server (64 B)",
		Head:  []string{"app", "model Gbps", "bottleneck", "paper Gbps"},
	}
	spec := hw.NehalemNext()
	cfg := hw.DefaultConfig()
	paper := map[hw.App]float64{hw.Forward: 38.8, hw.Route: 19.9, hw.IPsec: 5.8}
	for _, app := range []hw.App{hw.Forward, hw.Route, hw.IPsec} {
		res := hw.MaxRate(spec, app, 64, cfg)
		r.Add(app.String(), res.Gbps, res.Bottleneck, paper[app])
	}
	// The 70 Gbps Abilene estimate for today's server: the paper lifts
	// the NIC-slot ceiling, ignores the PCIe bus, and grants the
	// socket-I/O links 80% of nominal capacity (§5.3).
	today := hw.Nehalem()
	today.NICs = 8
	today.PCIeEmpBps = today.PCIeNomBps * 100 // "ignoring the PCIe bus"
	today.IOEmpBps = 0.8 * today.IONominalBps
	ab := hw.MaxRateMean(today, hw.Forward, AbileneMean, cfg)
	r.Add("fwd/Abilene, NIC ceiling lifted", ab.Gbps, ab.Bottleneck, 70.0)
	r.Notes = append(r.Notes,
		"the Abilene estimate uses the paper's §5.3 assumptions: more NIC slots, PCIe ignored, "+
			"socket-I/O at 80% of nominal; the model lands CPU-bound near 79 Gbps vs the paper's ~70")
	return r
}
