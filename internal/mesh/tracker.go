package mesh

import (
	"fmt"
	"sync"
	"time"
)

// PeerState is one peer's position in the failure-detection state
// machine. A peer is Alive while heartbeats arrive, Suspect once it has
// been silent past SuspectAfter (still striped over — a suspect is
// usually a scheduling hiccup, and dropping its VLB share on every
// stall would churn the mesh), and Dead once silent past DeadAfter.
// Dead is the only state the data plane re-stripes around; any message
// from a dead peer flips it straight back to Alive (rejoin).
type PeerState int

// Peer states, in escalation order.
const (
	StateAlive PeerState = iota
	StateSuspect
	StateDead
)

// String renders the state for JSON and logs.
func (s PeerState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Transition is one peer's state change, reported by Observe and Tick.
type Transition struct {
	Peer     int
	From, To PeerState
	// Rejoined marks a dead→alive transition or a new incarnation of an
	// alive peer (the process restarted between heartbeats).
	Rejoined bool
}

// TrackerConfig parameterizes a Tracker.
type TrackerConfig struct {
	Self         int
	N            int
	SuspectAfter time.Duration
	DeadAfter    time.Duration
}

// Tracker is the membership state machine: per-peer liveness driven by
// observed control messages and the caller's clock. It is pure policy —
// no sockets, no goroutines, no real time — which is what makes the
// suspect→dead→rejoin sequence deterministic under test. All methods
// take the current time explicitly; the Node feeds it wall-clock time,
// tests feed it a script. Safe for concurrent use (the admin API reads
// Status while the control loops write).
type Tracker struct {
	mu    sync.Mutex
	cfg   TrackerConfig
	peers []peerRec
}

type peerRec struct {
	state       PeerState
	lastSeen    time.Time
	incarnation uint64
	gen         uint64 // peer's last advertised re-stripe generation
	rtt         time.Duration
	rttKnown    bool
	observed    uint64 // control messages accepted from this peer
}

// NewTracker builds a tracker with every peer Alive as of start — new
// members get a full DeadAfter grace period to say their first hello.
func NewTracker(cfg TrackerConfig, start time.Time) *Tracker {
	if cfg.N < 2 || cfg.Self < 0 || cfg.Self >= cfg.N {
		panic(fmt.Sprintf("mesh: bad tracker config N=%d self=%d", cfg.N, cfg.Self))
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter * 3
	}
	t := &Tracker{cfg: cfg, peers: make([]peerRec, cfg.N)}
	for i := range t.peers {
		t.peers[i].lastSeen = start
	}
	return t
}

// Observe records a control message from a peer at time now and returns
// the transition it caused, if any. A message from a suspect peer
// rescues it; a message from a dead peer is a rejoin; a fresh
// incarnation of an alive peer (it restarted faster than the detector)
// is reported as a rejoin too, so the owner can resynchronize per-peer
// state even though the live set never changed.
func (t *Tracker) Observe(peer int, m Message, now time.Time) (Transition, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if peer < 0 || peer >= t.cfg.N || peer == t.cfg.Self {
		return Transition{}, false
	}
	p := &t.peers[peer]
	restarted := p.incarnation != 0 && m.Incarnation != p.incarnation
	from := p.state
	p.lastSeen = now
	p.incarnation = m.Incarnation
	p.gen = m.Gen
	p.observed++
	if from != StateAlive {
		p.state = StateAlive
		p.rttKnown = false // stale estimate; remeasure after the outage
		return Transition{Peer: peer, From: from, To: StateAlive, Rejoined: from == StateDead}, true
	}
	if restarted {
		return Transition{Peer: peer, From: from, To: StateAlive, Rejoined: true}, true
	}
	return Transition{}, false
}

// ObserveRTT folds one measured round-trip into the peer's EWMA
// (α = 1/8, the classic SRTT smoothing).
func (t *Tracker) ObserveRTT(peer int, rtt time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if peer < 0 || peer >= t.cfg.N || rtt < 0 {
		return
	}
	p := &t.peers[peer]
	if !p.rttKnown {
		p.rtt, p.rttKnown = rtt, true
		return
	}
	p.rtt += (rtt - p.rtt) / 8
}

// Tick advances the failure detector to time now and returns the
// transitions that fired: peers silent past SuspectAfter become
// Suspect, past DeadAfter become Dead.
func (t *Tracker) Tick(now time.Time) []Transition {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Transition
	for i := range t.peers {
		if i == t.cfg.Self {
			continue
		}
		p := &t.peers[i]
		silent := now.Sub(p.lastSeen)
		want := p.state
		switch {
		case silent >= t.cfg.DeadAfter:
			want = StateDead
		case silent >= t.cfg.SuspectAfter:
			if p.state != StateDead {
				want = StateSuspect
			}
		}
		if want != p.state {
			out = append(out, Transition{Peer: i, From: p.state, To: want})
			p.state = want
		}
	}
	return out
}

// Live returns the current live view: one bool per member, true unless
// the peer is Dead. Self is always live. This is the vector the data
// plane re-stripes its VLB matrix against.
func (t *Tracker) Live() []bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	live := make([]bool, t.cfg.N)
	for i := range live {
		live[i] = i == t.cfg.Self || t.peers[i].state != StateDead
	}
	return live
}

// AliveCount reports how many members are currently live (incl. self).
func (t *Tracker) AliveCount() int {
	n := 0
	for _, l := range t.Live() {
		if l {
			n++
		}
	}
	return n
}

// State reports one peer's current state.
func (t *Tracker) State(peer int) PeerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peers[peer].state
}

// PeerStatus is one row of the membership table served by /api/v1/mesh.
type PeerStatus struct {
	ID          int     `json:"id"`
	State       string  `json:"state"`
	LastSeenMs  float64 `json:"last_seen_ms"`     // silence duration at snapshot time
	RTTMicros   float64 `json:"rtt_us,omitempty"` // smoothed heartbeat RTT
	Incarnation uint64  `json:"incarnation,omitempty"`
	Generation  uint64  `json:"generation,omitempty"` // peer's advertised re-stripe gen
	Observed    uint64  `json:"observed"`             // control messages accepted
}

// Peers renders the membership table at time now. The self row carries
// state "self" and no silence/RTT figures.
func (t *Tracker) Peers(now time.Time) []PeerStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PeerStatus, t.cfg.N)
	for i := range t.peers {
		p := t.peers[i]
		out[i] = PeerStatus{ID: i, Incarnation: p.incarnation, Generation: p.gen, Observed: p.observed}
		if i == t.cfg.Self {
			out[i].State = "self"
			continue
		}
		out[i].State = p.state.String()
		out[i].LastSeenMs = float64(now.Sub(p.lastSeen)) / float64(time.Millisecond)
		if p.rttKnown {
			out[i].RTTMicros = float64(p.rtt) / float64(time.Microsecond)
		}
	}
	return out
}
