package mesh

import (
	"encoding/binary"
	"fmt"
)

// The control-plane wire format: one fixed-size datagram per message,
// binary big-endian, no allocation to decode. Two kinds exist — a ping
// (heartbeat) and its ack. An ack echoes the ping's sequence number and
// send timestamp verbatim, so the pinger computes RTT purely from its
// own clock; incarnation lets peers tell a restarted process from a
// network blip, and gen advertises the sender's re-stripe generation so
// convergence is observable cluster-wide.

// MsgKind discriminates control messages.
type MsgKind byte

// Control message kinds.
const (
	MsgPing MsgKind = 1
	MsgAck  MsgKind = 2
)

const (
	wireMagic   = uint32(0x52424d48) // "RBMH"
	wireVersion = byte(1)

	// WireSize is the exact encoded size of a Message.
	WireSize = 4 + 1 + 1 + 2 + 8 + 8 + 8 + 8
)

// Message is one decoded control datagram.
type Message struct {
	Kind        MsgKind
	From        int    // sender's member ID
	Incarnation uint64 // sender's process incarnation (unix nanos at start)
	Gen         uint64 // sender's re-stripe generation
	Seq         uint64 // ping sequence; acks echo it
	SentNanos   int64  // ping send time on the pinger's clock; acks echo it
}

// Encode renders m into exactly WireSize bytes.
func Encode(m Message) []byte {
	b := make([]byte, WireSize)
	binary.BigEndian.PutUint32(b[0:], wireMagic)
	b[4] = wireVersion
	b[5] = byte(m.Kind)
	binary.BigEndian.PutUint16(b[6:], uint16(m.From))
	binary.BigEndian.PutUint64(b[8:], m.Incarnation)
	binary.BigEndian.PutUint64(b[16:], m.Gen)
	binary.BigEndian.PutUint64(b[24:], m.Seq)
	binary.BigEndian.PutUint64(b[32:], uint64(m.SentNanos))
	return b
}

// Decode parses a control datagram, rejecting anything that is not a
// well-formed current-version message (stray traffic on the control
// port must not corrupt membership state).
func Decode(b []byte) (Message, error) {
	if len(b) != WireSize {
		return Message{}, fmt.Errorf("mesh: control datagram of %d bytes, want %d", len(b), WireSize)
	}
	if binary.BigEndian.Uint32(b[0:]) != wireMagic {
		return Message{}, fmt.Errorf("mesh: bad magic")
	}
	if b[4] != wireVersion {
		return Message{}, fmt.Errorf("mesh: wire version %d, want %d", b[4], wireVersion)
	}
	k := MsgKind(b[5])
	if k != MsgPing && k != MsgAck {
		return Message{}, fmt.Errorf("mesh: unknown message kind %d", k)
	}
	return Message{
		Kind:        k,
		From:        int(binary.BigEndian.Uint16(b[6:])),
		Incarnation: binary.BigEndian.Uint64(b[8:]),
		Gen:         binary.BigEndian.Uint64(b[16:]),
		Seq:         binary.BigEndian.Uint64(b[24:]),
		SentNanos:   int64(binary.BigEndian.Uint64(b[32:])),
	}, nil
}
