package mesh

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Event is delivered to NodeConfig.OnChange when the live member set
// changes — a peer died or (re)joined. Transitions lists what fired;
// Live is the full membership vector after applying them.
type Event struct {
	Live        []bool
	Transitions []Transition
}

// NodeConfig parameterizes a control-plane Node.
type NodeConfig struct {
	Self     int
	Topology Topology

	// Conn, when non-nil, is a pre-bound control socket (tests);
	// otherwise the node binds Topology.Members[Self].Ctrl.
	Conn *net.UDPConn

	// OnChange is called — serialized, from a control goroutine — when
	// the live member set changes. The callback owns re-striping; it
	// must not block for long (heartbeating pauses while it runs, by
	// design: a re-stripe under the drain barrier should finish well
	// inside SuspectAfter).
	OnChange func(Event)

	// Logf, when set, receives membership transitions for the operator
	// log.
	Logf func(format string, args ...any)
}

// Node runs one member's control plane: a heartbeat loop pinging every
// peer, a receive loop answering pings and folding every observation
// into the Tracker, and change notification when the dead-boundary of
// the membership moves. The data plane never blocks on any of this —
// membership is advisory input to re-striping, not a per-packet check.
type Node struct {
	cfg     NodeConfig
	tracker *Tracker
	conn    *net.UDPConn
	peers   []*net.UDPAddr

	incarnation uint64
	gen         atomic.Uint64 // advertised re-stripe generation
	seq         atomic.Uint64

	changeMu sync.Mutex // serializes OnChange across goroutines

	stop atomic.Bool
	wg   sync.WaitGroup

	sentPings atomic.Uint64
	recvPings atomic.Uint64
	recvAcks  atomic.Uint64
	badMsgs   atomic.Uint64
}

// NewNode builds the control plane for member self of the topology. The
// control socket is bound immediately; Start launches the loops.
func NewNode(cfg NodeConfig) (*Node, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.Self < 0 || cfg.Self >= len(cfg.Topology.Members) {
		return nil, fmt.Errorf("mesh: self %d out of range (%d members)", cfg.Self, len(cfg.Topology.Members))
	}
	n := &Node{
		cfg:         cfg,
		conn:        cfg.Conn,
		incarnation: uint64(time.Now().UnixNano()),
	}
	if n.conn == nil {
		addr, err := net.ResolveUDPAddr("udp4", cfg.Topology.Members[cfg.Self].Ctrl)
		if err != nil {
			return nil, fmt.Errorf("mesh: control address: %w", err)
		}
		if n.conn, err = net.ListenUDP("udp4", addr); err != nil {
			return nil, fmt.Errorf("mesh: bind control port: %w", err)
		}
	}
	for i, m := range cfg.Topology.Members {
		if i == cfg.Self {
			n.peers = append(n.peers, nil)
			continue
		}
		addr, err := net.ResolveUDPAddr("udp4", m.Ctrl)
		if err != nil {
			n.conn.Close()
			return nil, fmt.Errorf("mesh: peer %d control address: %w", i, err)
		}
		n.peers = append(n.peers, addr)
	}
	n.tracker = NewTracker(TrackerConfig{
		Self:         cfg.Self,
		N:            len(cfg.Topology.Members),
		SuspectAfter: cfg.Topology.SuspectAfter(),
		DeadAfter:    cfg.Topology.DeadAfter(),
	}, time.Now())
	return n, nil
}

// Tracker exposes the underlying state machine (status rendering).
func (n *Node) Tracker() *Tracker { return n.tracker }

// Incarnation is this process's incarnation number (unix nanos at
// construction) — how peers tell a restart from a network blip.
func (n *Node) Incarnation() uint64 { return n.incarnation }

// SetGeneration publishes the local re-stripe generation; subsequent
// heartbeats advertise it, so peers (and the aggregate snapshot) can
// watch the cluster converge after a membership change.
func (n *Node) SetGeneration(g uint64) { n.gen.Store(g) }

// Generation reports the advertised re-stripe generation.
func (n *Node) Generation() uint64 { return n.gen.Load() }

// Start launches the heartbeat and receive loops.
func (n *Node) Start() {
	n.wg.Add(2)
	go n.runHeartbeat()
	go n.runReceive()
}

// Stop halts the loops and closes the control socket.
func (n *Node) Stop() {
	if n.stop.Swap(true) {
		return
	}
	n.wg.Wait()
	n.conn.Close()
}

// runHeartbeat pings every peer each interval, then advances the
// failure detector and reports any dead-boundary movement.
func (n *Node) runHeartbeat() {
	defer n.wg.Done()
	interval := n.cfg.Topology.Heartbeat()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	n.pingAll() // first hello immediately, not an interval later
	for !n.stop.Load() {
		<-tick.C
		n.pingAll()
		now := time.Now()
		if trs := n.tracker.Tick(now); len(trs) != 0 {
			n.report(trs)
		}
	}
}

// pingAll sends one heartbeat to every peer.
func (n *Node) pingAll() {
	now := time.Now()
	for _, addr := range n.peers {
		if addr == nil {
			continue
		}
		msg := Encode(Message{
			Kind:        MsgPing,
			From:        n.cfg.Self,
			Incarnation: n.incarnation,
			Gen:         n.gen.Load(),
			Seq:         n.seq.Add(1),
			SentNanos:   now.UnixNano(),
		})
		n.conn.WriteToUDP(msg, addr)
		n.sentPings.Add(1)
	}
}

// runReceive answers pings and folds every message into the tracker.
func (n *Node) runReceive() {
	defer n.wg.Done()
	buf := make([]byte, 256)
	for !n.stop.Load() {
		n.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		k, from, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			continue // deadline or shutdown
		}
		m, err := Decode(buf[:k])
		if err != nil {
			n.badMsgs.Add(1)
			continue
		}
		now := time.Now()
		if tr, ok := n.tracker.Observe(m.From, m, now); ok {
			n.report([]Transition{tr})
		}
		switch m.Kind {
		case MsgPing:
			n.recvPings.Add(1)
			ack := Encode(Message{
				Kind:        MsgAck,
				From:        n.cfg.Self,
				Incarnation: n.incarnation,
				Gen:         n.gen.Load(),
				Seq:         m.Seq,
				SentNanos:   m.SentNanos, // echo: the pinger computes RTT on its own clock
			})
			n.conn.WriteToUDP(ack, from)
		case MsgAck:
			n.recvAcks.Add(1)
			n.tracker.ObserveRTT(m.From, time.Duration(now.UnixNano()-m.SentNanos))
		}
	}
}

// report logs transitions and fires OnChange when the live set moved
// (a suspect peer coming back, or escalating to suspect, changes no
// striping — only crossing the dead boundary does).
func (n *Node) report(trs []Transition) {
	deadBoundary := false
	for _, tr := range trs {
		if n.cfg.Logf != nil {
			n.cfg.Logf("mesh: peer %d %s → %s%s", tr.Peer, tr.From, tr.To,
				map[bool]string{true: " (rejoin)", false: ""}[tr.Rejoined])
		}
		if tr.From == StateDead || tr.To == StateDead || tr.Rejoined {
			deadBoundary = true
		}
	}
	if !deadBoundary || n.cfg.OnChange == nil {
		return
	}
	n.changeMu.Lock()
	defer n.changeMu.Unlock()
	n.cfg.OnChange(Event{Live: n.tracker.Live(), Transitions: trs})
}

// Status is the /api/v1/mesh document: this member's identity and
// protocol config, the current membership table, and control-plane
// counters.
type Status struct {
	Self        int     `json:"self"`
	Members     int     `json:"members"`
	Alive       int     `json:"alive"`
	Incarnation uint64  `json:"incarnation"`
	Generation  uint64  `json:"generation"` // local re-stripe generation
	HeartbeatMs float64 `json:"heartbeat_ms"`
	SuspectMs   float64 `json:"suspect_after_ms"`
	DeadMs      float64 `json:"dead_after_ms"`

	SentPings uint64 `json:"sent_pings"`
	RecvPings uint64 `json:"recv_pings"`
	RecvAcks  uint64 `json:"recv_acks"`
	BadMsgs   uint64 `json:"bad_msgs,omitempty"`

	Peers []PeerStatus `json:"peers"`
}

// Status renders the current membership view.
func (n *Node) Status() Status {
	t := n.cfg.Topology
	return Status{
		Self:        n.cfg.Self,
		Members:     len(t.Members),
		Alive:       n.tracker.AliveCount(),
		Incarnation: n.incarnation,
		Generation:  n.gen.Load(),
		HeartbeatMs: float64(t.Heartbeat()) / float64(time.Millisecond),
		SuspectMs:   float64(t.SuspectAfter()) / float64(time.Millisecond),
		DeadMs:      float64(t.DeadAfter()) / float64(time.Millisecond),
		SentPings:   n.sentPings.Load(),
		RecvPings:   n.recvPings.Load(),
		RecvAcks:    n.recvAcks.Load(),
		BadMsgs:     n.badMsgs.Load(),
		Peers:       n.tracker.Peers(time.Now()),
	}
}
