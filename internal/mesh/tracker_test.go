package mesh

import (
	"testing"
	"time"
)

// clock is the injectable test clock: transitions are driven entirely by
// explicit times, so the suspect→dead→rejoin sequence is deterministic.
type clock struct{ t time.Time }

func newClock() *clock { return &clock{t: time.Unix(1000, 0)} }

func (c *clock) advance(d time.Duration) time.Time {
	c.t = c.t.Add(d)
	return c.t
}

func testTracker(c *clock) *Tracker {
	return NewTracker(TrackerConfig{
		Self:         0,
		N:            4,
		SuspectAfter: 300 * time.Millisecond,
		DeadAfter:    time.Second,
	}, c.t)
}

func ping(from int, inc uint64) Message {
	return Message{Kind: MsgPing, From: from, Incarnation: inc}
}

func TestWireRoundTrip(t *testing.T) {
	in := Message{Kind: MsgAck, From: 3, Incarnation: 0xDEADBEEF, Gen: 7, Seq: 42, SentNanos: -12345}
	b := Encode(in)
	if len(b) != WireSize {
		t.Fatalf("encoded %d bytes, want %d", len(b), WireSize)
	}
	out, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
	for _, bad := range [][]byte{nil, b[:WireSize-1], append([]byte{0}, b[1:]...)} {
		if _, err := Decode(bad); err == nil {
			t.Fatalf("decoded malformed datagram %v", bad)
		}
	}
	b[5] = 99 // unknown kind
	if _, err := Decode(b); err == nil {
		t.Fatal("decoded unknown message kind")
	}
}

// TestTrackerSuspectDeadRejoin walks one peer through the full state
// machine on a scripted clock: alive → suspect → dead → rejoin → alive,
// with the dead-boundary transitions (the ones that trigger
// re-striping) exactly where the configured timeouts put them.
func TestTrackerSuspectDeadRejoin(t *testing.T) {
	c := newClock()
	tr := testTracker(c)

	// All peers heartbeat at t+100ms.
	now := c.advance(100 * time.Millisecond)
	for p := 1; p < 4; p++ {
		tr.Observe(p, ping(p, 11), now)
	}
	if got := tr.Tick(now); len(got) != 0 {
		t.Fatalf("fresh heartbeats produced transitions: %v", got)
	}

	// Peer 2 goes silent. Peers 1 and 3 keep heartbeating.
	beat := func(now time.Time) {
		tr.Observe(1, ping(1, 11), now)
		tr.Observe(3, ping(3, 11), now)
	}
	// +250ms of silence: under SuspectAfter, nothing fires.
	now = c.advance(250 * time.Millisecond)
	beat(now)
	if got := tr.Tick(now); len(got) != 0 {
		t.Fatalf("transitions before SuspectAfter: %v", got)
	}
	// +350ms of silence: suspect, but still live (no re-stripe signal).
	now = c.advance(100 * time.Millisecond)
	beat(now)
	got := tr.Tick(now)
	if len(got) != 1 || got[0] != (Transition{Peer: 2, From: StateAlive, To: StateSuspect}) {
		t.Fatalf("at 350ms silence: %v", got)
	}
	if live := tr.Live(); !live[2] {
		t.Fatal("suspect peer dropped from live set")
	}
	// +1050ms of silence: dead.
	now = c.advance(700 * time.Millisecond)
	beat(now)
	got = tr.Tick(now)
	if len(got) != 1 || got[0] != (Transition{Peer: 2, From: StateSuspect, To: StateDead}) {
		t.Fatalf("at 1050ms silence: %v", got)
	}
	live := tr.Live()
	if live[2] || !live[0] || !live[1] || !live[3] {
		t.Fatalf("live after death = %v", live)
	}
	if tr.AliveCount() != 3 {
		t.Fatalf("AliveCount = %d, want 3", tr.AliveCount())
	}
	// Still dead on further ticks — no repeated transitions.
	now = c.advance(time.Second)
	beat(now)
	if got := tr.Tick(now); len(got) != 0 {
		t.Fatalf("dead peer re-transitioned: %v", got)
	}

	// Rejoin: one heartbeat from a fresh incarnation flips dead→alive.
	now = c.advance(100 * time.Millisecond)
	rj, ok := tr.Observe(2, ping(2, 99), now)
	if !ok || !rj.Rejoined || rj.From != StateDead || rj.To != StateAlive {
		t.Fatalf("rejoin transition = %+v ok=%v", rj, ok)
	}
	if live := tr.Live(); !live[2] {
		t.Fatal("rejoined peer not live")
	}
	if got := tr.Tick(now); len(got) != 0 {
		t.Fatalf("transitions after rejoin: %v", got)
	}
}

// TestTrackerSuspectRescue: a suspect peer that heartbeats again comes
// straight back without ever crossing the dead boundary.
func TestTrackerSuspectRescue(t *testing.T) {
	c := newClock()
	tr := testTracker(c)
	now := c.advance(400 * time.Millisecond) // everyone silent past SuspectAfter
	trs := tr.Tick(now)
	if len(trs) != 3 {
		t.Fatalf("suspects = %v", trs)
	}
	rescue, ok := tr.Observe(1, ping(1, 5), now)
	if !ok || rescue.Rejoined || rescue.From != StateSuspect || rescue.To != StateAlive {
		t.Fatalf("rescue = %+v ok=%v", rescue, ok)
	}
	if tr.State(1) != StateAlive {
		t.Fatal("rescued peer not alive")
	}
}

// TestTrackerRestartDetected: a fresh incarnation of an alive peer is
// reported as a rejoin even though the live set never changed.
func TestTrackerRestartDetected(t *testing.T) {
	c := newClock()
	tr := testTracker(c)
	now := c.advance(50 * time.Millisecond)
	tr.Observe(1, ping(1, 7), now)
	now = c.advance(50 * time.Millisecond)
	rj, ok := tr.Observe(1, ping(1, 8), now)
	if !ok || !rj.Rejoined || rj.From != StateAlive {
		t.Fatalf("restart = %+v ok=%v", rj, ok)
	}
}

// TestTrackerRTT checks the SRTT fold and its reset across an outage.
func TestTrackerRTT(t *testing.T) {
	c := newClock()
	tr := testTracker(c)
	now := c.advance(10 * time.Millisecond)
	tr.Observe(1, ping(1, 7), now)
	tr.ObserveRTT(1, 800*time.Microsecond)
	tr.ObserveRTT(1, 1600*time.Microsecond) // ewma: 800 + 800/8 = 900µs
	ps := tr.Peers(now)
	if got := ps[1].RTTMicros; got != 900 {
		t.Fatalf("smoothed RTT = %vµs, want 900", got)
	}
	// Outage: dead then rejoin resets the estimate.
	now = c.advance(2 * time.Second)
	tr.Tick(now)
	tr.Observe(1, ping(1, 9), now)
	if got := tr.Peers(now)[1].RTTMicros; got != 0 {
		t.Fatalf("RTT survived an outage: %vµs", got)
	}
	if ps := tr.Peers(now); ps[0].State != "self" {
		t.Fatalf("self row state = %q", ps[0].State)
	}
}
