// Package mesh turns the paper's §6 cluster story into real processes:
// N rbrouter instances form a Valiant-load-balanced full mesh over UDP,
// and this package supplies the control plane that makes the mesh a
// cluster rather than N strangers — a shared topology file, a
// heartbeat-based membership/health protocol with a suspect→dead state
// machine and rejoin handling, and the membership view the data plane
// re-stripes its VLB spread matrix and per-peer writer rings against.
//
// The split of responsibilities:
//
//   - Topology is the static config every process loads: member IDs and
//     the four addresses each member owns (data, control, external, API),
//     plus the protocol timing knobs.
//   - Tracker is the pure per-peer liveness state machine (alive →
//     suspect → dead, rejoin back to alive), driven by observed
//     heartbeats and an injectable clock — deterministic under test.
//   - Node owns a member's control socket: it heartbeats every peer,
//     answers pings with acks (which carry the RTT echo), feeds the
//     Tracker, and fires OnChange when the live member set changes so
//     the owner can re-stripe.
//
// The protocol is deliberately direct (no gossip): a VLB mesh is a full
// mesh by construction — every member already exchanges data traffic
// with every other member — so each member measures every peer's
// liveness first-hand on the same fate-shared path its packets take.
package mesh

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"
)

// Protocol timing defaults; a Topology overrides them per cluster.
const (
	DefaultHeartbeat    = 100 * time.Millisecond
	DefaultSuspectAfter = 400 * time.Millisecond
	DefaultDeadAfter    = 1200 * time.Millisecond
)

// Member is one mesh node's identity and addresses. All four addresses
// are host:port strings; data/ctrl/ext are UDP, api is TCP (HTTP).
type Member struct {
	ID int `json:"id"`
	// Data receives mesh (inter-node) frames.
	Data string `json:"data"`
	// Ctrl receives membership heartbeats.
	Ctrl string `json:"ctrl"`
	// Ext receives external line traffic.
	Ext string `json:"ext"`
	// API serves the node's versioned admin API.
	API string `json:"api"`
}

// Topology is the cluster definition every member process loads — the
// file format cmd/rbmesh writes and rbrouter -mesh reads.
type Topology struct {
	// HeartbeatMs is the ping interval; SuspectAfterMs and DeadAfterMs
	// are how long a silent peer takes to be suspected and declared
	// dead. Zero means the package default.
	HeartbeatMs    int `json:"heartbeat_ms,omitempty"`
	SuspectAfterMs int `json:"suspect_after_ms,omitempty"`
	DeadAfterMs    int `json:"dead_after_ms,omitempty"`

	// Sink, when set, is the UDP address egress (externally delivered)
	// frames are forwarded to — the collector in a benchmark harness.
	Sink string `json:"sink,omitempty"`

	Members []Member `json:"members"`
}

// Heartbeat returns the ping interval.
func (t Topology) Heartbeat() time.Duration {
	if t.HeartbeatMs > 0 {
		return time.Duration(t.HeartbeatMs) * time.Millisecond
	}
	return DefaultHeartbeat
}

// SuspectAfter returns how long a silent peer takes to become suspect.
func (t Topology) SuspectAfter() time.Duration {
	if t.SuspectAfterMs > 0 {
		return time.Duration(t.SuspectAfterMs) * time.Millisecond
	}
	return DefaultSuspectAfter
}

// DeadAfter returns how long a silent peer takes to be declared dead.
func (t Topology) DeadAfter() time.Duration {
	if t.DeadAfterMs > 0 {
		return time.Duration(t.DeadAfterMs) * time.Millisecond
	}
	return DefaultDeadAfter
}

// Validate checks the topology is usable: at least two members, IDs
// exactly 0..n-1 in order, all addresses present and parseable, and the
// failure-detection timings ordered heartbeat < suspect < dead.
func (t Topology) Validate() error {
	if len(t.Members) < 2 {
		return fmt.Errorf("mesh: topology needs ≥2 members, has %d", len(t.Members))
	}
	for i, m := range t.Members {
		if m.ID != i {
			return fmt.Errorf("mesh: member %d has id %d (ids must be 0..n-1 in order)", i, m.ID)
		}
		for _, a := range []struct{ name, addr string }{
			{"data", m.Data}, {"ctrl", m.Ctrl}, {"ext", m.Ext}, {"api", m.API},
		} {
			if a.addr == "" {
				return fmt.Errorf("mesh: member %d missing %s address", i, a.name)
			}
			if _, _, err := net.SplitHostPort(a.addr); err != nil {
				return fmt.Errorf("mesh: member %d %s address %q: %v", i, a.name, a.addr, err)
			}
		}
	}
	if !(t.Heartbeat() < t.SuspectAfter() && t.SuspectAfter() < t.DeadAfter()) {
		return fmt.Errorf("mesh: need heartbeat (%v) < suspect (%v) < dead (%v)",
			t.Heartbeat(), t.SuspectAfter(), t.DeadAfter())
	}
	return nil
}

// LoadTopology reads and validates a topology file.
func LoadTopology(path string) (Topology, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Topology{}, err
	}
	var t Topology
	if err := json.Unmarshal(raw, &t); err != nil {
		return Topology{}, fmt.Errorf("mesh: parse %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, fmt.Errorf("mesh: %s: %w", path, err)
	}
	return t, nil
}

// WriteFile marshals the topology to path, pretty-printed.
func (t Topology) WriteFile(path string) error {
	raw, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// GenerateLocal builds an n-member loopback topology on OS-assigned free
// ports (each port is discovered by binding and immediately closing a
// listener — adequate for local clusters and tests). The timing fields
// are left zero, so the package defaults apply unless the caller sets
// them before writing the file.
func GenerateLocal(n int) (Topology, error) {
	if n < 2 {
		return Topology{}, fmt.Errorf("mesh: need ≥2 members, got %d", n)
	}
	freeUDP := func() (string, error) {
		c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return "", err
		}
		defer c.Close()
		return c.LocalAddr().String(), nil
	}
	freeTCP := func() (string, error) {
		l, err := net.Listen("tcp4", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		defer l.Close()
		return l.Addr().String(), nil
	}
	var t Topology
	for i := 0; i < n; i++ {
		m := Member{ID: i}
		var err error
		if m.Data, err = freeUDP(); err != nil {
			return Topology{}, err
		}
		if m.Ctrl, err = freeUDP(); err != nil {
			return Topology{}, err
		}
		if m.Ext, err = freeUDP(); err != nil {
			return Topology{}, err
		}
		if m.API, err = freeTCP(); err != nil {
			return Topology{}, err
		}
		t.Members = append(t.Members, m)
	}
	return t, nil
}
