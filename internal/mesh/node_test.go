package mesh

import (
	"sync"
	"testing"
	"time"
)

// fastTopology builds an n-member loopback topology with aggressive
// timings so failure detection converges in test time.
func fastTopology(t *testing.T, n int) Topology {
	t.Helper()
	topo, err := GenerateLocal(n)
	if err != nil {
		t.Fatal(err)
	}
	topo.HeartbeatMs = 20
	topo.SuspectAfterMs = 100
	topo.DeadAfterMs = 300
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo
}

// changeLog collects OnChange events for one node, thread-safe.
type changeLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *changeLog) add(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *changeLog) last() (Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) == 0 {
		return Event{}, false
	}
	return l.events[len(l.events)-1], true
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestNodeFailureDetectionAndRejoin runs three real control planes over
// loopback UDP: all converge to alive, one is stopped and the survivors
// declare it dead (firing the re-stripe callback with the right live
// vector), then it comes back under a new incarnation and the survivors
// fire the rejoin re-stripe. Run under -race this doubles as the
// concurrency gate for the tracker/node locking.
func TestNodeFailureDetectionAndRejoin(t *testing.T) {
	topo := fastTopology(t, 3)
	nodes := make([]*Node, 3)
	logs := make([]*changeLog, 3)
	for i := range nodes {
		log := &changeLog{}
		logs[i] = log
		n, err := NewNode(NodeConfig{
			Self:     i,
			Topology: topo,
			OnChange: log.add,
			Logf:     t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Stop()
			}
		}
	}()

	// Everyone sees everyone alive, with measured RTTs.
	waitFor(t, 3*time.Second, "full mesh alive", func() bool {
		for _, n := range nodes {
			if n.Tracker().AliveCount() != 3 {
				return false
			}
		}
		return true
	})
	st := nodes[0].Status()
	if st.Alive != 3 || st.Members != 3 {
		t.Fatalf("status: %+v", st)
	}
	waitFor(t, 3*time.Second, "RTT measured", func() bool {
		for _, p := range nodes[0].Status().Peers {
			if p.State == "alive" && p.RTTMicros > 0 {
				return true
			}
		}
		return false
	})

	// Kill node 2's control plane. Survivors must declare it dead and
	// fire OnChange with live = [true, true, false].
	nodes[2].Stop()
	nodes[2] = nil
	waitFor(t, 3*time.Second, "death detected", func() bool {
		for _, n := range nodes[:2] {
			if n.Tracker().State(2) != StateDead {
				return false
			}
		}
		return true
	})
	for i, log := range logs[:2] {
		ev, ok := log.last()
		if !ok {
			t.Fatalf("node %d: no OnChange event for the death", i)
		}
		if ev.Live[0] != true || ev.Live[1] != true || ev.Live[2] != false {
			t.Fatalf("node %d: live vector %v", i, ev.Live)
		}
	}
	// The suspect state was passed through on the way down.
	if nodes[0].Tracker().AliveCount() != 2 {
		t.Fatalf("alive = %d, want 2", nodes[0].Tracker().AliveCount())
	}

	// Rejoin: a fresh process (new incarnation) binds the same member
	// slot. Survivors flip it back to alive and re-stripe it in.
	reborn, err := NewNode(NodeConfig{Self: 2, Topology: topo, OnChange: logs[2].add})
	if err != nil {
		t.Fatal(err)
	}
	nodes[2] = reborn
	reborn.Start()
	waitFor(t, 3*time.Second, "rejoin detected", func() bool {
		for _, n := range nodes[:2] {
			if n.Tracker().State(2) != StateAlive {
				return false
			}
		}
		return true
	})
	for i, log := range logs[:2] {
		ev, ok := log.last()
		if !ok || !ev.Live[2] {
			t.Fatalf("node %d: rejoin event missing or wrong: %+v", i, ev)
		}
		rejoined := false
		for _, tr := range ev.Transitions {
			if tr.Peer == 2 && tr.Rejoined {
				rejoined = true
			}
		}
		if !rejoined {
			t.Fatalf("node %d: rejoin transition not flagged: %+v", i, ev.Transitions)
		}
	}
}

// TestNodeGenerationAdvertised checks that a member's re-stripe
// generation propagates to its peers' membership tables via heartbeats.
func TestNodeGenerationAdvertised(t *testing.T) {
	topo := fastTopology(t, 2)
	a, err := NewNode(NodeConfig{Self: 0, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(NodeConfig{Self: 1, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	defer b.Stop()
	a.SetGeneration(5)
	a.Start()
	b.Start()
	waitFor(t, 3*time.Second, "generation advertised", func() bool {
		return b.Status().Peers[0].Generation == 5
	})
}

func TestTopologyValidate(t *testing.T) {
	good := Topology{Members: []Member{
		{ID: 0, Data: "127.0.0.1:1", Ctrl: "127.0.0.1:2", Ext: "127.0.0.1:3", API: "127.0.0.1:4"},
		{ID: 1, Data: "127.0.0.1:5", Ctrl: "127.0.0.1:6", Ext: "127.0.0.1:7", API: "127.0.0.1:8"},
	}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Topology{
		{},
		{Members: good.Members[:1]},
		{Members: []Member{good.Members[1], good.Members[0]}},                                                                    // ids out of order
		{Members: []Member{good.Members[0], {ID: 1, Data: "nope", Ctrl: "127.0.0.1:6", Ext: "127.0.0.1:7", API: "127.0.0.1:8"}}}, // bad addr
		{HeartbeatMs: 500, SuspectAfterMs: 100, Members: good.Members},                                                           // inverted timings
	}
	for i, bad := range bads {
		if err := bad.Validate(); err == nil {
			t.Errorf("bad topology %d validated", i)
		}
	}
}
