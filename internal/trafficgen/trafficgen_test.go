package trafficgen

import (
	"math"
	"testing"

	"routebricks/internal/pkt"
)

func TestAbileneMeanMatchesCalibration(t *testing.T) {
	// The hw model's Abilene anchors assume a 738.3 B mean (DESIGN.md §6).
	if m := AbileneMix().Mean(); math.Abs(m-738.3) > 0.5 {
		t.Fatalf("Abilene mean = %g, want ≈738.3", m)
	}
	sum := 0.0
	for _, p := range AbileneMix().Probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %g", sum)
	}
}

func TestEmpiricalSizeMix(t *testing.T) {
	s := New(Config{Seed: 1, Sizes: AbileneMix()})
	counts := map[int]int{}
	const n = 200000
	var bytes float64
	for i := 0; i < n; i++ {
		p := s.Next()
		counts[p.Len()]++
		bytes += float64(p.Len())
	}
	if got := bytes / n; math.Abs(got-738.3) > 5 {
		t.Fatalf("empirical mean = %.1f, want ≈738.3", got)
	}
	if f := float64(counts[64]) / n; math.Abs(f-0.4468) > 0.01 {
		t.Fatalf("64B fraction = %.4f", f)
	}
	if f := float64(counts[1500]) / n; math.Abs(f-0.4232) > 0.01 {
		t.Fatalf("1500B fraction = %.4f", f)
	}
}

func TestFixedSize(t *testing.T) {
	s := New(Config{Seed: 2, Sizes: Fixed(64)})
	for i := 0; i < 1000; i++ {
		if got := s.Next().Len(); got != 64 {
			t.Fatalf("size = %d", got)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(Config{Seed: 7, Sizes: AbileneMix()})
	b := New(Config{Seed: 7, Sizes: AbileneMix()})
	for i := 0; i < 2000; i++ {
		pa, pb := a.Next(), b.Next()
		if pa.Len() != pb.Len() || pa.FlowHash() != pb.FlowHash() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestSeqMonotonePerFlow(t *testing.T) {
	s := New(Config{Seed: 3, Sizes: Fixed(64), ActiveFlows: 16})
	last := map[uint64]uint64{}
	for i := 0; i < 50000; i++ {
		p := s.Next()
		h := p.FlowHash()
		if p.SeqNo <= last[h] {
			t.Fatalf("per-flow sequence regressed at packet %d", i)
		}
		last[h] = p.SeqNo
	}
}

func TestBurstStructure(t *testing.T) {
	s := New(Config{Seed: 4, Sizes: Fixed(64), ActiveFlows: 64, MeanBurst: 8})
	var runs, switches int
	var prev uint64
	for i := 0; i < 50000; i++ {
		h := s.Next().FlowHash()
		if h == prev {
			runs++
		} else {
			switches++
			prev = h
		}
	}
	// Mean burst 8 → roughly 7 same-flow continuations per switch.
	ratio := float64(runs) / float64(switches)
	if ratio < 4 || ratio > 12 {
		t.Fatalf("burst ratio = %.1f, want ≈7", ratio)
	}
}

func TestFlowTurnover(t *testing.T) {
	s := New(Config{Seed: 5, Sizes: Fixed(64), ActiveFlows: 8, MeanFlowPackets: 16})
	seen := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		seen[s.Next().FlowHash()] = true
	}
	// With turnover, far more distinct flows than the pool size.
	if len(seen) < 100 {
		t.Fatalf("distinct flows = %d, want turnover ≫ pool", len(seen))
	}
}

func TestRandomDstMode(t *testing.T) {
	s := New(Config{Seed: 6, Sizes: Fixed(64), RandomDst: true})
	dsts := map[uint32]bool{}
	for i := 0; i < 10000; i++ {
		dsts[s.Next().IPv4().DstUint32()] = true
	}
	if len(dsts) < 9900 {
		t.Fatalf("random-dst mode produced only %d distinct destinations", len(dsts))
	}
}

func TestBatch(t *testing.T) {
	s := New(Config{Seed: 8, Sizes: Fixed(128)})
	b := s.Batch(100)
	if len(b) != 100 {
		t.Fatalf("batch = %d", len(b))
	}
	for i, p := range b {
		if p == nil || p.Len() != 128 {
			t.Fatalf("bad packet at %d", i)
		}
	}
}

func TestGeneratedPacketsAreValid(t *testing.T) {
	s := New(Config{Seed: 9, Sizes: AbileneMix()})
	for i := 0; i < 5000; i++ {
		p := s.Next()
		if !p.IPv4().VerifyChecksum() {
			t.Fatalf("invalid checksum at packet %d", i)
		}
		if p.Len() < pkt.MinSize {
			t.Fatalf("undersized packet %d", p.Len())
		}
	}
}

func BenchmarkNextAbilene(b *testing.B) {
	s := New(Config{Seed: 1, Sizes: AbileneMix()})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}
