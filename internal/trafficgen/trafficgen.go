// Package trafficgen synthesizes the evaluation workloads of §5.1: fixed
// 64..1024 B packet streams and an Abilene-like trace.
//
// Substitution note (DESIGN.md §2): the paper replays the NLANR
// "Abilene-I" trace, which is no longer distributed. We synthesize a
// trace with (a) a trimodal packet-size mix whose mean (~738 B) matches
// the mean the paper's Abilene rates imply (24.6 Gbps NIC-limited
// forwarding, 4.45 Gbps IPsec), and (b) flow structure — a pool of
// concurrent flows sending in bursts — which is what the reordering
// experiment of §6.2 exercises.
package trafficgen

import (
	"math/rand"
	"net/netip"

	"routebricks/internal/pkt"
)

// SizeDist is a packet-size distribution.
type SizeDist struct {
	Name  string
	Sizes []int
	Probs []float64 // same length as Sizes; must sum to 1
}

// Fixed returns a degenerate distribution of one size.
func Fixed(size int) SizeDist {
	return SizeDist{Name: "fixed", Sizes: []int{size}, Probs: []float64{1}}
}

// AbileneMix is the synthetic Abilene-I stand-in: 44.68% minimum-size,
// 13% mid, 42.32% MTU frames; mean 738.3 B.
func AbileneMix() SizeDist {
	return SizeDist{
		Name:  "abilene",
		Sizes: []int{64, 576, 1500},
		Probs: []float64{0.4468, 0.13, 0.4232},
	}
}

// Mean reports the distribution's mean size in bytes.
func (d SizeDist) Mean() float64 {
	m := 0.0
	for i, s := range d.Sizes {
		m += float64(s) * d.Probs[i]
	}
	return m
}

func (d SizeDist) sample(rng *rand.Rand) int {
	r := rng.Float64()
	for i, p := range d.Probs {
		if r < p {
			return d.Sizes[i]
		}
		r -= p
	}
	return d.Sizes[len(d.Sizes)-1]
}

// Config parameterizes a Source.
type Config struct {
	Seed  int64
	Sizes SizeDist

	// ActiveFlows is the concurrent flow pool size (default 256).
	ActiveFlows int

	// MeanBurst is the mean number of back-to-back packets a flow emits
	// before the generator switches flows (geometric; default 8). Bursts
	// are what the flowlet mechanism latches onto.
	MeanBurst float64

	// MeanFlowPackets is the mean total packets per flow before it is
	// replaced by a fresh flow (geometric; default 64).
	MeanFlowPackets float64

	// RandomDst gives every packet an independently random destination
	// address — the paper's "random destination addresses so as to
	// stress cache locality for IP lookup" mode. Flow structure is
	// disabled when set.
	RandomDst bool

	// DstAddrs, when non-empty, restricts flow destinations to this pool.
	// Cluster experiments use it to aim traffic at specific output nodes
	// (each cluster node owns a prefix in the simulated FIB).
	DstAddrs []netip.Addr
}

// Source deterministically generates a packet stream.
type Source struct {
	cfg   Config
	rng   *rand.Rand
	flows []*flowState
	cur   int // index of flow currently bursting
	left  int // packets left in current burst
	seq   uint64
}

type flowState struct {
	src, dst netip.Addr
	sport    uint16
	dport    uint16
	remain   int
}

// New builds a source.
func New(cfg Config) *Source {
	if cfg.ActiveFlows <= 0 {
		cfg.ActiveFlows = 256
	}
	if cfg.MeanBurst <= 0 {
		cfg.MeanBurst = 8
	}
	if cfg.MeanFlowPackets <= 0 {
		cfg.MeanFlowPackets = 64
	}
	if len(cfg.Sizes.Sizes) == 0 {
		cfg.Sizes = Fixed(64)
	}
	s := &Source{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for i := 0; i < cfg.ActiveFlows; i++ {
		s.flows = append(s.flows, s.newFlow())
	}
	return s
}

func (s *Source) newFlow() *flowState {
	dst := randAddr(s.rng)
	if len(s.cfg.DstAddrs) > 0 {
		dst = s.cfg.DstAddrs[s.rng.Intn(len(s.cfg.DstAddrs))]
	}
	return &flowState{
		src:    randAddr(s.rng),
		dst:    dst,
		sport:  uint16(1024 + s.rng.Intn(60000)),
		dport:  uint16([]int{80, 443, 53, 22, 8080}[s.rng.Intn(5)]),
		remain: 1 + geometric(s.rng, s.cfg.MeanFlowPackets),
	}
}

func randAddr(rng *rand.Rand) netip.Addr {
	v := rng.Uint32()
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// geometric draws a geometric variate with the given mean (≥1 draws).
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for rng.Float64() > p && n < 1<<20 {
		n++
	}
	return n
}

// Next generates the next packet. Packets carry a globally increasing
// SeqNo, which is also monotonically increasing within each flow — the
// property the reordering meter keys on.
func (s *Source) Next() *pkt.Packet {
	size := s.cfg.Sizes.sample(s.rng)
	s.seq++

	if s.cfg.RandomDst {
		p := pkt.New(size, randAddr(s.rng), randAddr(s.rng),
			uint16(1024+s.rng.Intn(60000)), 80)
		p.SeqNo = s.seq
		return p
	}

	if s.left <= 0 {
		s.cur = s.rng.Intn(len(s.flows))
		s.left = geometric(s.rng, s.cfg.MeanBurst)
	}
	f := s.flows[s.cur]
	p := pkt.New(size, f.src, f.dst, f.sport, f.dport)
	p.SeqNo = s.seq
	s.left--
	f.remain--
	if f.remain <= 0 {
		s.flows[s.cur] = s.newFlow()
		s.left = 0
	}
	return p
}

// Batch generates n packets.
func (s *Source) Batch(n int) []*pkt.Packet {
	out := make([]*pkt.Packet, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// calibrationSeed pins the Placement: Auto calibration stream so every
// calibration of the same graph sees byte-identical traffic.
const calibrationSeed = 0xCA11B

// Calibration synthesizes the deterministic workload routebricks uses
// to score Placement: Auto candidates: n minimum-size packets drawn
// from a fixed-seed flow mix. pkt.New stamps each with TTL 64 and a
// valid header checksum, and destinations are drawn from the 10.d.0.0
// pool this repo's FIBs conventionally cover, so against such a table
// the stream traverses a standard forwarding trunk (CheckIPHeader →
// lookup → TTL) end to end with a realistic mix of hits and misses.
// Two calls return identical streams — the property that makes an Auto
// decision reproducible run to run.
func Calibration(n int) []*pkt.Packet {
	pool := make([]netip.Addr, 16)
	for d := range pool {
		pool[d] = netip.AddrFrom4([4]byte{10, byte(d), 0, 1})
	}
	return New(Config{Seed: calibrationSeed, Sizes: Fixed(64), DstAddrs: pool}).Batch(n)
}
