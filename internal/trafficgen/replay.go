package trafficgen

import (
	"fmt"
	"io"

	"routebricks/internal/pcap"
	"routebricks/internal/pkt"
)

// Replay replays a pcap capture as a packet source — the trace-driven
// workload mode of §5.1. Timestamps are preserved relative to the first
// record so a driver can pace injections exactly as captured. Sequence
// numbers are assigned in record order.
type Replay struct {
	recs []pcap.Record
	idx  int
	base int64
}

// NewReplay loads an entire capture.
func NewReplay(r io.Reader) (*Replay, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	recs, err := pr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trafficgen: empty capture")
	}
	return &Replay{recs: recs, base: recs[0].TsNanos}, nil
}

// Len reports the number of packets in the capture.
func (r *Replay) Len() int { return len(r.recs) }

// Rewind restarts the replay.
func (r *Replay) Rewind() { r.idx = 0 }

// Next returns the next packet and its offset (ns) from the capture
// start, or nil after the last record.
func (r *Replay) Next() (*pkt.Packet, int64) {
	if r.idx >= len(r.recs) {
		return nil, 0
	}
	rec := r.recs[r.idx]
	r.idx++
	p := &pkt.Packet{
		Data:  append([]byte(nil), rec.Data...),
		SeqNo: uint64(r.idx),
	}
	return p, rec.TsNanos - r.base
}

// MeanSize reports the capture's mean frame size, for rate conversions.
func (r *Replay) MeanSize() float64 {
	total := 0
	for _, rec := range r.recs {
		total += len(rec.Data)
	}
	return float64(total) / float64(len(r.recs))
}
