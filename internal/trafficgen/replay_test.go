package trafficgen

import (
	"bytes"
	"testing"

	"routebricks/internal/pcap"
)

func TestReplayRoundTrip(t *testing.T) {
	// Capture a synthetic stream, replay it, verify identity and timing.
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src := New(Config{Seed: 3, Sizes: AbileneMix()})
	var frames [][]byte
	for i := 0; i < 200; i++ {
		p := src.Next()
		frames = append(frames, append([]byte(nil), p.Data...))
		// 10 µs spacing, starting at an arbitrary epoch.
		if err := w.WritePacket(1_000_000_000+int64(i)*10_000, p.Data); err != nil {
			t.Fatal(err)
		}
	}

	rp, err := NewReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Len() != 200 {
		t.Fatalf("Len = %d", rp.Len())
	}
	for i := 0; i < 200; i++ {
		p, off := rp.Next()
		if p == nil {
			t.Fatalf("early EOF at %d", i)
		}
		if !bytes.Equal(p.Data, frames[i]) {
			t.Fatalf("frame %d differs", i)
		}
		if off != int64(i)*10_000 {
			t.Fatalf("offset %d = %d, want %d", i, off, i*10_000)
		}
		if p.SeqNo != uint64(i+1) {
			t.Fatalf("seq %d = %d", i, p.SeqNo)
		}
	}
	if p, _ := rp.Next(); p != nil {
		t.Fatal("read past the end")
	}
	rp.Rewind()
	if p, off := rp.Next(); p == nil || off != 0 {
		t.Fatal("rewind broken")
	}

	mean := rp.MeanSize()
	if mean < 600 || mean > 900 {
		t.Fatalf("mean size = %.1f, want Abilene-ish", mean)
	}
}

func TestReplayRejectsEmptyAndGarbage(t *testing.T) {
	var buf bytes.Buffer
	if _, err := pcap.NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplay(&buf); err == nil {
		t.Fatal("empty capture accepted")
	}
	if _, err := NewReplay(bytes.NewReader([]byte("junkjunkjunkjunkjunkjunkjunk"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
