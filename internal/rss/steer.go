package rss

// PlanMoves decides which buckets to migrate to flatten a skewed load,
// given the current bucket→chain assignment and the per-bucket packet
// load observed over the last interval. It is a pure function of its
// inputs — deterministic, so the controller's decisions are replayable
// in tests and diffable by CI under pinned inputs.
//
// Greedy: repeatedly take the hottest chain's heaviest bucket and hand
// it to the coldest chain, but only while the move strictly narrows the
// hot−cold spread (bucket load must be positive and smaller than the
// gap — moving a bucket heavier than the gap would just swap which
// chain is hot, the flapping failure mode). A bucket moves at most once
// per call. Ties break toward the lowest index. At most maxMoves
// buckets move (0 means no cap).
func PlanMoves(assign []int, load []uint64, chains, maxMoves int) []Move {
	if len(assign) != len(load) || chains < 2 {
		return nil
	}
	owner := append([]int(nil), assign...)
	perChain := make([]uint64, chains)
	for b, c := range owner {
		if c < 0 || c >= chains {
			return nil
		}
		perChain[c] += load[b]
	}
	movedBucket := make([]bool, len(owner))
	var moves []Move
	for maxMoves == 0 || len(moves) < maxMoves {
		hot, cold := 0, 0
		for c := 1; c < chains; c++ {
			if perChain[c] > perChain[hot] {
				hot = c
			}
			if perChain[c] < perChain[cold] {
				cold = c
			}
		}
		gap := perChain[hot] - perChain[cold]
		if gap == 0 {
			break
		}
		// Heaviest not-yet-moved bucket on the hot chain that still
		// strictly narrows the spread.
		best := -1
		for b, c := range owner {
			if c != hot || movedBucket[b] || load[b] == 0 || load[b] >= gap {
				continue
			}
			if best == -1 || load[b] > load[best] {
				best = b
			}
		}
		if best == -1 {
			break
		}
		moves = append(moves, Move{Bucket: best, From: hot, To: cold})
		owner[best] = cold
		movedBucket[best] = true
		perChain[hot] -= load[best]
		perChain[cold] += load[best]
	}
	return moves
}

// Imbalance reports max/mean per-chain load implied by an assignment
// and per-bucket load — the same ratio the controller's hysteresis
// thresholds are written against. Returns 1 for degenerate inputs.
func Imbalance(assign []int, load []uint64, chains int) float64 {
	if len(assign) != len(load) || chains < 1 {
		return 1
	}
	perChain := make([]uint64, chains)
	var total uint64
	for b, c := range assign {
		if c < 0 || c >= chains {
			return 1
		}
		perChain[c] += load[b]
		total += load[b]
	}
	if total == 0 {
		return 1
	}
	var max uint64
	for _, v := range perChain {
		if v > max {
			max = v
		}
	}
	mean := float64(total) / float64(chains)
	return float64(max) / mean
}
