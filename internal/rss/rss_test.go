package rss

import (
	"sync"
	"testing"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(100, 4); err == nil {
		t.Fatalf("accepted non-power-of-two bucket count")
	}
	if _, err := New(128, 0); err == nil {
		t.Fatalf("accepted zero chains")
	}
	tbl, err := New(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Buckets() != DefaultBuckets || tbl.Chains() != 3 {
		t.Fatalf("defaults wrong: %d buckets, %d chains", tbl.Buckets(), tbl.Chains())
	}
}

func TestStripeCoversAllChains(t *testing.T) {
	tbl, _ := New(16, 4)
	seen := make(map[int]int)
	for _, c := range tbl.Assignments() {
		seen[c]++
	}
	for c := 0; c < 4; c++ {
		if seen[c] != 4 {
			t.Fatalf("chain %d owns %d buckets, want 4", c, seen[c])
		}
	}
	// Steer respects the assignment and masks the hash.
	for h := uint64(0); h < 64; h++ {
		b, c := tbl.Steer(h)
		if b != int(h%16) || c != tbl.Assignments()[b] {
			t.Fatalf("Steer(%d) = (%d,%d)", h, b, c)
		}
	}
}

func TestApplyAndStaleRejection(t *testing.T) {
	tbl, _ := New(8, 2)
	if err := tbl.Apply([]Move{{Bucket: 0, From: 0, To: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, c := tbl.Steer(0); c != 1 {
		t.Fatalf("bucket 0 still on chain %d", c)
	}
	if tbl.Generation() != 1 || tbl.Steers() != 1 || tbl.Moved() != 1 {
		t.Fatalf("counters: gen=%d steers=%d moved=%d", tbl.Generation(), tbl.Steers(), tbl.Moved())
	}
	// Stale From: the whole batch must be rejected, including valid moves.
	err := tbl.Apply([]Move{{Bucket: 1, From: 1, To: 0}, {Bucket: 0, From: 0, To: 1}})
	if err == nil {
		t.Fatalf("accepted a stale move")
	}
	if _, c := tbl.Steer(1); c != 1 {
		t.Fatalf("rejected batch half-applied: bucket 1 moved to %d", c)
	}
	if err := tbl.Apply([]Move{{Bucket: 2, From: 0, To: 5}}); err == nil {
		t.Fatalf("accepted an out-of-range target chain")
	}
	if err := tbl.Apply(nil); err != nil {
		t.Fatalf("empty batch errored: %v", err)
	}
	if tbl.Steers() != 1 {
		t.Fatalf("empty batch counted as a steer event")
	}
}

func TestRestripeKeepsCounts(t *testing.T) {
	tbl, _ := New(8, 2)
	tbl.Tick(3)
	tbl.Tick(3)
	tbl.Apply([]Move{{Bucket: 0, From: 0, To: 1}})
	if err := tbl.Restripe(4); err != nil {
		t.Fatal(err)
	}
	if tbl.Chains() != 4 {
		t.Fatalf("chains = %d after restripe", tbl.Chains())
	}
	if _, c := tbl.Steer(0); c != 0 {
		t.Fatalf("restripe kept old steering: bucket 0 on %d", c)
	}
	if got := tbl.Counts()[3]; got != 2 {
		t.Fatalf("restripe lost bucket counts: %d", got)
	}
}

// Writers publish whole views; readers never see a torn table. Run
// under -race to make the claim mean something.
func TestConcurrentSteerAndApply(t *testing.T) {
	tbl, _ := New(32, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := uint64(0); ; h++ {
				select {
				case <-stop:
					return
				default:
				}
				b, c := tbl.Steer(h)
				if c < 0 || c >= 4 {
					panic("torn chain index")
				}
				tbl.Tick(b)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		a := tbl.Assignments()
		b := i % 32
		tbl.Apply([]Move{{Bucket: b, From: a[b], To: (a[b] + 1) % 4}})
	}
	close(stop)
	wg.Wait()
	if tbl.Steers() != 200 {
		t.Fatalf("steers = %d", tbl.Steers())
	}
}

func TestPlanMovesFlattensSkew(t *testing.T) {
	// All load on chain 0's buckets: 4 chains, 16 buckets.
	assign := make([]int, 16)
	load := make([]uint64, 16)
	for b := range assign {
		assign[b] = b % 4
	}
	// Chain 0 owns buckets 0,4,8,12 — pile the load there.
	load[0], load[4], load[8], load[12] = 400, 300, 200, 100
	moves := PlanMoves(assign, load, 4, 0)
	if len(moves) == 0 {
		t.Fatalf("no moves planned for full skew")
	}
	after := append([]int(nil), assign...)
	seen := make(map[int]bool)
	for _, m := range moves {
		if seen[m.Bucket] {
			t.Fatalf("bucket %d moved twice (flap)", m.Bucket)
		}
		seen[m.Bucket] = true
		if after[m.Bucket] != m.From {
			t.Fatalf("move %v does not match working state", m)
		}
		after[m.Bucket] = m.To
	}
	if got, want := Imbalance(after, load, 4), Imbalance(assign, load, 4); got >= want {
		t.Fatalf("imbalance did not improve: %.2f -> %.2f", want, got)
	}
	// Deterministic: same inputs, same plan.
	again := PlanMoves(assign, load, 4, 0)
	if len(again) != len(moves) {
		t.Fatalf("plan not deterministic: %d vs %d moves", len(again), len(moves))
	}
	for i := range moves {
		if moves[i] != again[i] {
			t.Fatalf("plan not deterministic at %d: %v vs %v", i, moves[i], again[i])
		}
	}
}

func TestPlanMovesNeverWorsens(t *testing.T) {
	// One huge bucket: moving it would just swap which chain is hot,
	// so the planner must leave it alone.
	assign := []int{0, 1}
	load := []uint64{1000, 10}
	if moves := PlanMoves(assign, load, 2, 0); len(moves) != 0 {
		t.Fatalf("planned %v for an unfixable single-bucket skew", moves)
	}
	// Balanced load: nothing to do.
	if moves := PlanMoves([]int{0, 1, 0, 1}, []uint64{5, 5, 5, 5}, 2, 0); len(moves) != 0 {
		t.Fatalf("planned %v for balanced load", moves)
	}
	// Single chain: steering has no lever.
	if moves := PlanMoves([]int{0, 0}, []uint64{9, 1}, 1, 0); moves != nil {
		t.Fatalf("planned %v for one chain", moves)
	}
}

func TestPlanMovesRespectsCap(t *testing.T) {
	assign := make([]int, 8)
	load := make([]uint64, 8)
	for b := range load {
		load[b] = uint64(10 + b)
	}
	moves := PlanMoves(assign, load, 4, 2)
	if len(moves) > 2 {
		t.Fatalf("cap ignored: %d moves", len(moves))
	}
}
