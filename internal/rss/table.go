// Package rss implements flow-consistent receive-side steering: a
// RETA-style indirection table mapping flow-hash buckets to datapath
// chains, rewritable at runtime without stopping the readers.
//
// This is the software half of the NIC feature the paper leans on
// (§4.1: "a server with multiple queues per NIC") — the hash spreads
// flows over a fixed set of buckets, and the small bucket→chain table
// is the lever an operator (or the replan controller) rewrites to move
// load between cores without breaking flow affinity: every packet of a
// flow keeps landing on whichever chain currently owns its bucket.
//
// Concurrency follows lpm.LiveTable's RCU generation-pointer pattern:
// readers pin one immutable view per packet with a single atomic load;
// writers build the next view aside under a mutex and publish it
// atomically. Per-bucket packet counters live on the Table, not the
// view, so they are monotonic across rewrites and plan generations —
// exactly like the pool counters that Snapshot.Delta subtracts.
package rss

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// DefaultBuckets is the indirection table size when the caller does not
// choose one: 128 buckets, the size of a classic NIC RETA table. Far
// more buckets than chains, so re-steering moves load in fine steps.
const DefaultBuckets = 128

// view is one immutable generation of the indirection table.
type view struct {
	assign []int32 // bucket → chain
	mask   uint64  // len(assign)-1; buckets are a power of two
	chains int
}

// Table is the rewritable bucket→chain indirection layer. All methods
// are safe for concurrent use; Steer is wait-free for readers.
type Table struct {
	mu  sync.Mutex // serializes writers (Apply, Restripe)
	cur atomic.Pointer[view]

	gen    atomic.Uint64 // bumped once per published rewrite
	steers atomic.Uint64 // re-steer events (Apply calls that moved buckets)
	moved  atomic.Uint64 // total buckets moved across all events

	counts []atomic.Uint64 // per-bucket packets, monotonic forever
}

// New builds a table of the given bucket count (a power of two; 0 means
// DefaultBuckets) striped round-robin over chains.
func New(buckets, chains int) (*Table, error) {
	if buckets == 0 {
		buckets = DefaultBuckets
	}
	if buckets < 1 || bits.OnesCount(uint(buckets)) != 1 {
		return nil, fmt.Errorf("rss: bucket count %d is not a power of two", buckets)
	}
	if chains < 1 {
		return nil, fmt.Errorf("rss: need at least one chain, got %d", chains)
	}
	t := &Table{counts: make([]atomic.Uint64, buckets)}
	t.cur.Store(stripe(buckets, chains))
	return t, nil
}

// stripe deals buckets out round-robin — the neutral assignment.
func stripe(buckets, chains int) *view {
	v := &view{assign: make([]int32, buckets), mask: uint64(buckets - 1), chains: chains}
	for b := range v.assign {
		v.assign[b] = int32(b % chains)
	}
	return v
}

// Steer maps a flow hash to its bucket and the chain that currently
// owns it. One atomic load; no allocation.
func (t *Table) Steer(hash uint64) (bucket, chain int) {
	v := t.cur.Load()
	b := hash & v.mask
	return int(b), int(v.assign[b])
}

// Tick counts one packet against a bucket. Callers tick the bucket they
// actually pushed, so the counters reflect delivered steering decisions.
func (t *Table) Tick(bucket int) { t.counts[bucket].Add(1) }

// Buckets reports the table size.
func (t *Table) Buckets() int { return len(t.counts) }

// Chains reports the chain count the current view steers across.
func (t *Table) Chains() int { return t.cur.Load().chains }

// Generation reports how many rewrites have been published.
func (t *Table) Generation() uint64 { return t.gen.Load() }

// Steers reports how many re-steer events (Apply calls) have landed.
func (t *Table) Steers() uint64 { return t.steers.Load() }

// Moved reports the total buckets moved across all re-steer events.
func (t *Table) Moved() uint64 { return t.moved.Load() }

// Assignments snapshots the current bucket→chain map.
func (t *Table) Assignments() []int {
	v := t.cur.Load()
	out := make([]int, len(v.assign))
	for b, c := range v.assign {
		out[b] = int(c)
	}
	return out
}

// Counts snapshots the per-bucket packet counters.
func (t *Table) Counts() []uint64 {
	out := make([]uint64, len(t.counts))
	for b := range t.counts {
		out[b] = t.counts[b].Load()
	}
	return out
}

// Move reassigns one bucket from its current owner to another chain.
type Move struct {
	Bucket int `json:"bucket"`
	From   int `json:"from"`
	To     int `json:"to"`
}

// Apply validates the moves against the current view and publishes one
// rewrite containing all of them. A move whose From does not match the
// bucket's current owner is stale — the whole batch is rejected so the
// caller re-plans against fresh state rather than half-applying.
func (t *Table) Apply(moves []Move) error {
	if len(moves) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.cur.Load()
	next := &view{assign: append([]int32(nil), old.assign...), mask: old.mask, chains: old.chains}
	for _, m := range moves {
		if m.Bucket < 0 || m.Bucket >= len(next.assign) {
			return fmt.Errorf("rss: bucket %d out of range [0,%d)", m.Bucket, len(next.assign))
		}
		if m.To < 0 || m.To >= next.chains {
			return fmt.Errorf("rss: chain %d out of range [0,%d)", m.To, next.chains)
		}
		if int(next.assign[m.Bucket]) != m.From {
			return fmt.Errorf("rss: stale move: bucket %d owned by chain %d, not %d",
				m.Bucket, next.assign[m.Bucket], m.From)
		}
		next.assign[m.Bucket] = int32(m.To)
	}
	t.cur.Store(next)
	t.gen.Add(1)
	t.steers.Add(1)
	t.moved.Add(uint64(len(moves)))
	return nil
}

// Restripe resets the table to the neutral round-robin assignment over
// a (possibly new) chain count — the move a replan makes when the plan
// width changes and old chain indexes stop meaning anything.
func (t *Table) Restripe(chains int) error {
	if chains < 1 {
		return fmt.Errorf("rss: need at least one chain, got %d", chains)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cur.Store(stripe(len(t.counts), chains))
	t.gen.Add(1)
	return nil
}
