package elements

import (
	"testing"

	"routebricks/internal/click"
)

// wantStateClass is the reviewed classification of every element type.
// The completeness test below walks the package source (elementTypes),
// so adding an element without deciding its class fails CI — an
// unclassified stateful element defaulting to Stateless is exactly the
// silent state-splitting bug the RSS layer exists to prevent.
var wantStateClass = map[string]click.StateClass{
	// Pure transforms, per-packet decisions, fresh-packet builders, and
	// per-instance counters that aggregate correctly across clones.
	"ARPResponder":  click.Stateless, // static owned-address map, never mutated
	"CheckIPHeader": click.Stateless,
	"Classifier":    click.Stateless,
	"Counter":       click.Stateless, // totals sum across clones
	"DecIPTTL":      click.Stateless,
	"Discard":       click.Stateless,
	"EtherMirror":   click.Stateless,
	"Fragmenter":    click.Stateless,
	"HopSwitch":     click.Stateless,
	"ICMPError":     click.Stateless,
	"IPClassifier":  click.Stateless, // match counters sum across clones
	"LPMLookup":     click.Stateless, // the FIB behind it is RCU-shared already
	"Paint":         click.Stateless,
	"PaintSwitch":   click.Stateless,
	"PollDevice":    click.Stateless, // binds its own per-chain ring
	"SetEtherDst":   click.Stateless,
	"Sink":          click.Stateless, // atomic counters, documented concurrent-safe
	"Stamp":         click.Stateless,
	"Tee":           click.Stateless,
	"ToDevice":      click.Stateless, // binds its own per-chain ring

	// Flow-keyed state: clones partition correctly only behind
	// flow-consistent steering.
	"FlowCounter": click.PerFlow,
	"Reassembler": click.PerFlow,

	// Process-global state: never safe to clone.
	"ARPQuerier": click.Shared, // learned MAC table + pending queues
	"ESPDecap":   click.Shared, // per-SA anti-replay window
	"ESPEncap":   click.Shared, // per-SA sequence numbers
	"RED":        click.Shared, // EWMA over one transmit ring
	"Shaper":     click.Shared, // token bucket shaping one link
	"Tap":        click.Shared, // one pcap stream
}

// liveInstance builds a minimal instance of an element class so the
// declared classification can be checked against the live method set.
// Registered classes come from their factories; resource-bound ones are
// zero values (StateClass methods read no fields).
func liveInstance(t *testing.T, class string) click.Element {
	t.Helper()
	if factory, ok := StandardRegistry()[class]; ok {
		el, err := factory(sampleArgs[class])
		if err != nil {
			t.Fatalf("%s factory: %v", class, err)
		}
		return el
	}
	switch class {
	case "PollDevice":
		return &PollDevice{}
	case "ToDevice":
		return &ToDevice{}
	case "RED":
		return &RED{}
	case "LPMLookup":
		return &LPMLookup{}
	case "ESPEncap":
		return &ESPEncap{}
	case "ESPDecap":
		return &ESPDecap{}
	case "Tap":
		return &Tap{}
	}
	t.Fatalf("no way to build %s — extend liveInstance", class)
	return nil
}

// TestStateClassComplete is the two-way classification gate: every
// element type the package ships appears in wantStateClass, every entry
// still names a real element type, and the class a live instance
// reports through click.StateClassOf matches the reviewed table.
func TestStateClassComplete(t *testing.T) {
	types := elementTypes(t)
	byName := map[string]bool{}
	for _, name := range types {
		byName[name] = true
		want, ok := wantStateClass[name]
		if !ok {
			t.Errorf("element %s has no entry in wantStateClass — decide whether its state is stateless, per-flow, or shared", name)
			continue
		}
		if got := click.StateClassOf(liveInstance(t, name)); got != want {
			t.Errorf("%s: declared class %s, wantStateClass says %s", name, got, want)
		}
	}
	for name := range wantStateClass {
		if !byName[name] {
			t.Errorf("wantStateClass lists %s, which is no longer an element type", name)
		}
	}
}
