package elements

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"routebricks/internal/click"
)

// resourceBound lists the element classes that legitimately have no
// text factory: they bind runtime resources (device rings, route
// tables, crypto tunnels, capture writers) that only a host program can
// supply, so configurations receive them as prebound instances.
var resourceBound = map[string]string{
	"PollDevice": "binds a nic.Ring receive queue",
	"ToDevice":   "binds a nic.Ring transmit queue",
	"RED":        "monitors a nic.Ring's occupancy",
	"LPMLookup":  "binds a built route table",
	"ESPEncap":   "binds an ipsec.Tunnel",
	"ESPDecap":   "binds an ipsec.Tunnel",
	"Tap":        "binds a pcap.Writer",
}

// elementTypes enumerates, from the package source, every exported
// struct type with a Push(ctx, port, packet) method — i.e. every
// element the library ships. Reflecting over the source (rather than a
// hand-maintained list) is what keeps the completeness check honest: a
// new element file added later is seen automatically.
func elementTypes(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	hasPush := map[string]bool{}
	isStruct := map[string]bool{}
	for _, pkg := range pkgs {
		for name, file := range pkg.Files {
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok || !ts.Name.IsExported() {
							continue
						}
						if _, ok := ts.Type.(*ast.StructType); ok {
							isStruct[ts.Name.Name] = true
						}
					}
				case *ast.FuncDecl:
					if d.Name.Name != "Push" || d.Recv == nil || len(d.Recv.List) == 0 {
						continue
					}
					recv := d.Recv.List[0].Type
					if star, ok := recv.(*ast.StarExpr); ok {
						recv = star.X
					}
					if ident, ok := recv.(*ast.Ident); ok {
						hasPush[ident.Name] = true
					}
				}
			}
		}
	}
	var out []string
	for name := range hasPush {
		if isStruct[name] && ast.IsExported(name) {
			out = append(out, name)
		}
	}
	return out
}

// sampleArgs gives each registered class a constructible argument list
// so the test can actually invoke every factory.
var sampleArgs = map[string][]string{
	"Tee":          {"2"},
	"HopSwitch":    {"4"},
	"Paint":        {"3"},
	"PaintSwitch":  {"2"},
	"SetEtherDst":  {"1"},
	"IPClassifier": {"proto udp"},
	"Fragmenter":   {"576"},
	"Classifier":   {"0x0800"},
	"Shaper":       {"1e9", "1500"},
	"ICMPError":    {"10.0.0.1", "11", "0"},
	"ARPResponder": {"1", "10.0.0.1"},
	"ARPQuerier":   {"1", "10.0.0.1"},
}

// TestRegistryCompleteness is the two-way gate: every element type in
// the package is either registered or explicitly resource-bound, and
// every registered factory builds a working element.
func TestRegistryCompleteness(t *testing.T) {
	reg := StandardRegistry()
	for _, name := range elementTypes(t) {
		_, registered := reg[name]
		_, excused := resourceBound[name]
		switch {
		case registered && excused:
			t.Errorf("%s is both registered and listed resource-bound; drop one", name)
		case !registered && !excused:
			t.Errorf("element %s has no factory in StandardRegistry and no resourceBound entry — register it or document why it can't be built from text", name)
		}
	}
	for class := range resourceBound {
		found := false
		for _, name := range elementTypes(t) {
			if name == class {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("resourceBound lists %s, which is no longer an element type", class)
		}
	}
	for class, factory := range reg {
		el, err := factory(sampleArgs[class])
		if err != nil {
			t.Errorf("%s factory failed on sample args %v: %v", class, sampleArgs[class], err)
			continue
		}
		if el == nil {
			t.Errorf("%s factory returned nil element", class)
		}
		var _ click.Element = el
	}
}

// TestRegistryFactoriesValidate spot-checks argument validation on the
// newly registered classes.
func TestRegistryFactoriesValidate(t *testing.T) {
	reg := StandardRegistry()
	bad := map[string][][]string{
		"Shaper":       {{}, {"0", "1500"}, {"1e9", "x"}},
		"ICMPError":    {{}, {"not-an-ip", "11", "0"}, {"10.0.0.1", "999", "0"}},
		"ARPResponder": {{}, {"1"}, {"x", "10.0.0.1"}, {"1", "nope"}},
		"ARPQuerier":   {{"1"}, {"1", "nope"}},
		"Sink":         {{"unexpected"}},
	}
	for class, argLists := range bad {
		for _, args := range argLists {
			if _, err := reg[class](args); err == nil {
				t.Errorf("%s accepted bad args %v", class, args)
			}
		}
	}
}
