package elements

import (
	"routebricks/internal/click"
	"routebricks/internal/pcap"
	"routebricks/internal/pkt"
)

// Tap copies every passing frame into a pcap stream and forwards it
// unchanged — the capture point used for debugging router configurations
// with standard analysis tools. Timestamps come from the click Context's
// clock (virtual nanoseconds in simulations, wall nanoseconds live).
type Tap struct {
	click.Base
	W      *pcap.Writer
	errors uint64
}

// NewTap wraps a pcap writer.
func NewTap(w *pcap.Writer) *Tap { return &Tap{W: w} }

// InPorts reports 1.
func (t *Tap) InPorts() int { return 1 }

// OutPorts reports 1.
func (t *Tap) OutPorts() int { return 1 }

// Push captures and forwards.
func (t *Tap) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	if err := t.W.WritePacket(ctx.Now(), p.Data); err != nil {
		t.errors++
	}
	t.Out(ctx, 0, p)
}

// Errors reports failed captures (e.g., a full disk).
func (t *Tap) Errors() uint64 { return t.errors }
