package elements

import (
	"fmt"
	"strconv"

	"routebricks/internal/click"
	"routebricks/internal/pkt"
)

// StandardRegistry exposes the element library to Click-language
// configurations (click.ParseConfig). Elements that need runtime
// resources — device rings, route tables, crypto tunnels — are passed to
// the parser as prebound instances instead of being constructed from
// text.
func StandardRegistry() click.Registry {
	return click.Registry{
		"Counter": func(args []string) (click.Element, error) {
			if err := arity("Counter", args, 0); err != nil {
				return nil, err
			}
			return &Counter{}, nil
		},
		"Discard": func(args []string) (click.Element, error) {
			if err := arity("Discard", args, 0); err != nil {
				return nil, err
			}
			return &Discard{}, nil
		},
		"CheckIPHeader": func(args []string) (click.Element, error) {
			if err := arity("CheckIPHeader", args, 0); err != nil {
				return nil, err
			}
			return &CheckIPHeader{}, nil
		},
		"DecIPTTL": func(args []string) (click.Element, error) {
			if err := arity("DecIPTTL", args, 0); err != nil {
				return nil, err
			}
			return &DecIPTTL{}, nil
		},
		"Stamp": func(args []string) (click.Element, error) {
			if err := arity("Stamp", args, 0); err != nil {
				return nil, err
			}
			return &Stamp{}, nil
		},
		"Tee": func(args []string) (click.Element, error) {
			n, err := oneInt("Tee", args)
			if err != nil {
				return nil, err
			}
			return NewTee(n), nil
		},
		"HopSwitch": func(args []string) (click.Element, error) {
			n, err := oneInt("HopSwitch", args)
			if err != nil {
				return nil, err
			}
			return NewHopSwitch(n), nil
		},
		"Paint": func(args []string) (click.Element, error) {
			n, err := oneInt("Paint", args)
			if err != nil {
				return nil, err
			}
			return &Paint{Color: byte(n)}, nil
		},
		"PaintSwitch": func(args []string) (click.Element, error) {
			n, err := oneInt("PaintSwitch", args)
			if err != nil {
				return nil, err
			}
			return &PaintSwitch{N: n}, nil
		},
		"SetEtherDst": func(args []string) (click.Element, error) {
			n, err := oneInt("SetEtherDst", args)
			if err != nil {
				return nil, err
			}
			return &SetEtherDst{MAC: pkt.NodeMAC(n)}, nil
		},
		"IPClassifier": func(args []string) (click.Element, error) {
			if len(args) == 0 {
				return nil, fmt.Errorf("IPClassifier needs at least one rule")
			}
			return NewIPClassifier(args...)
		},
		"EtherMirror": func(args []string) (click.Element, error) {
			if err := arity("EtherMirror", args, 0); err != nil {
				return nil, err
			}
			return &EtherMirror{}, nil
		},
		"Fragmenter": func(args []string) (click.Element, error) {
			n, err := oneInt("Fragmenter", args)
			if err != nil {
				return nil, err
			}
			return NewFragmenter(n), nil
		},
		"Reassembler": func(args []string) (click.Element, error) {
			if err := arity("Reassembler", args, 0); err != nil {
				return nil, err
			}
			return NewReassembler(), nil
		},
		"Classifier": func(args []string) (click.Element, error) {
			if len(args) == 0 {
				return nil, fmt.Errorf("Classifier needs at least one EtherType")
			}
			types := make([]uint16, len(args))
			for i, a := range args {
				v, err := strconv.ParseUint(a, 0, 16)
				if err != nil {
					return nil, fmt.Errorf("Classifier: bad EtherType %q", a)
				}
				types[i] = uint16(v)
			}
			return NewClassifier(types...), nil
		},
	}
}

func arity(class string, args []string, want int) error {
	if len(args) != want {
		return fmt.Errorf("%s takes %d arguments, got %d", class, want, len(args))
	}
	return nil
}

func oneInt(class string, args []string) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("%s takes one integer argument, got %d", class, len(args))
	}
	v, err := strconv.Atoi(args[0])
	if err != nil {
		return 0, fmt.Errorf("%s: bad argument %q", class, args[0])
	}
	return v, nil
}
