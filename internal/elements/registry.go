package elements

import (
	"fmt"
	"net/netip"
	"strconv"

	"routebricks/internal/click"
	"routebricks/internal/pkt"
)

// StandardRegistry exposes the element library to Click-language
// configurations (click.ParseConfig / click.ParseProgram). Every
// zero-resource element in the library has a factory here; elements
// that need runtime resources — device rings (PollDevice, ToDevice,
// RED), route tables (LPMLookup), crypto tunnels (ESPEncap/ESPDecap),
// capture writers (Tap) — are passed to the parser as prebound
// instances instead of being constructed from text. The completeness
// test in registry_test.go reflects over the package so a new element
// cannot silently go unregisterable.
func StandardRegistry() click.Registry {
	return click.Registry{
		"Counter": func(args []string) (click.Element, error) {
			if err := arity("Counter", args, 0); err != nil {
				return nil, err
			}
			return &Counter{}, nil
		},
		"FlowCounter": func(args []string) (click.Element, error) {
			if err := arity("FlowCounter", args, 0); err != nil {
				return nil, err
			}
			return NewFlowCounter(), nil
		},
		"Discard": func(args []string) (click.Element, error) {
			if err := arity("Discard", args, 0); err != nil {
				return nil, err
			}
			return &Discard{}, nil
		},
		"CheckIPHeader": func(args []string) (click.Element, error) {
			if err := arity("CheckIPHeader", args, 0); err != nil {
				return nil, err
			}
			return &CheckIPHeader{}, nil
		},
		"DecIPTTL": func(args []string) (click.Element, error) {
			if err := arity("DecIPTTL", args, 0); err != nil {
				return nil, err
			}
			return &DecIPTTL{}, nil
		},
		"Stamp": func(args []string) (click.Element, error) {
			if err := arity("Stamp", args, 0); err != nil {
				return nil, err
			}
			return &Stamp{}, nil
		},
		"Tee": func(args []string) (click.Element, error) {
			n, err := oneInt("Tee", args)
			if err != nil {
				return nil, err
			}
			return NewTee(n), nil
		},
		"HopSwitch": func(args []string) (click.Element, error) {
			n, err := oneInt("HopSwitch", args)
			if err != nil {
				return nil, err
			}
			return NewHopSwitch(n), nil
		},
		"Paint": func(args []string) (click.Element, error) {
			n, err := oneInt("Paint", args)
			if err != nil {
				return nil, err
			}
			return &Paint{Color: byte(n)}, nil
		},
		"PaintSwitch": func(args []string) (click.Element, error) {
			n, err := oneInt("PaintSwitch", args)
			if err != nil {
				return nil, err
			}
			return &PaintSwitch{N: n}, nil
		},
		"SetEtherDst": func(args []string) (click.Element, error) {
			n, err := oneInt("SetEtherDst", args)
			if err != nil {
				return nil, err
			}
			return &SetEtherDst{MAC: pkt.NodeMAC(n)}, nil
		},
		"IPClassifier": func(args []string) (click.Element, error) {
			if len(args) == 0 {
				return nil, fmt.Errorf("IPClassifier needs at least one rule")
			}
			return NewIPClassifier(args...)
		},
		"EtherMirror": func(args []string) (click.Element, error) {
			if err := arity("EtherMirror", args, 0); err != nil {
				return nil, err
			}
			return &EtherMirror{}, nil
		},
		"Fragmenter": func(args []string) (click.Element, error) {
			n, err := oneInt("Fragmenter", args)
			if err != nil {
				return nil, err
			}
			return NewFragmenter(n), nil
		},
		"Reassembler": func(args []string) (click.Element, error) {
			if err := arity("Reassembler", args, 0); err != nil {
				return nil, err
			}
			return NewReassembler(), nil
		},
		"Sink": func(args []string) (click.Element, error) {
			if err := arity("Sink", args, 0); err != nil {
				return nil, err
			}
			return &Sink{}, nil
		},
		"Shaper": func(args []string) (click.Element, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("Shaper takes (rate-bps, burst-bytes), got %d arguments", len(args))
			}
			rate, err := strconv.ParseFloat(args[0], 64)
			if err != nil || rate <= 0 {
				return nil, fmt.Errorf("Shaper: bad rate %q", args[0])
			}
			burst, err := strconv.ParseFloat(args[1], 64)
			if err != nil || burst <= 0 {
				return nil, fmt.Errorf("Shaper: bad burst %q", args[1])
			}
			return NewShaper(rate, burst), nil
		},
		"ICMPError": func(args []string) (click.Element, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("ICMPError takes (src-ip, type, code), got %d arguments", len(args))
			}
			src, err := netip.ParseAddr(args[0])
			if err != nil || !src.Is4() {
				return nil, fmt.Errorf("ICMPError: bad source address %q", args[0])
			}
			typ, err := strconv.ParseUint(args[1], 0, 8)
			if err != nil {
				return nil, fmt.Errorf("ICMPError: bad type %q", args[1])
			}
			code, err := strconv.ParseUint(args[2], 0, 8)
			if err != nil {
				return nil, fmt.Errorf("ICMPError: bad code %q", args[2])
			}
			return NewICMPError(src, uint8(typ), uint8(code)), nil
		},
		"ARPResponder": func(args []string) (click.Element, error) {
			if len(args) < 2 {
				return nil, fmt.Errorf("ARPResponder takes (node, ip...), got %d arguments", len(args))
			}
			node, err := strconv.Atoi(args[0])
			if err != nil {
				return nil, fmt.Errorf("ARPResponder: bad node %q", args[0])
			}
			addrs := make([]netip.Addr, 0, len(args)-1)
			for _, a := range args[1:] {
				ip, err := netip.ParseAddr(a)
				if err != nil || !ip.Is4() {
					return nil, fmt.Errorf("ARPResponder: bad address %q", a)
				}
				addrs = append(addrs, ip)
			}
			return NewARPResponder(pkt.NodeMAC(node), addrs...), nil
		},
		"ARPQuerier": func(args []string) (click.Element, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("ARPQuerier takes (node, ip), got %d arguments", len(args))
			}
			node, err := strconv.Atoi(args[0])
			if err != nil {
				return nil, fmt.Errorf("ARPQuerier: bad node %q", args[0])
			}
			ip, err := netip.ParseAddr(args[1])
			if err != nil || !ip.Is4() {
				return nil, fmt.Errorf("ARPQuerier: bad address %q", args[1])
			}
			return NewARPQuerier(pkt.NodeMAC(node), ip), nil
		},
		"Classifier": func(args []string) (click.Element, error) {
			if len(args) == 0 {
				return nil, fmt.Errorf("Classifier needs at least one EtherType")
			}
			types := make([]uint16, len(args))
			for i, a := range args {
				v, err := strconv.ParseUint(a, 0, 16)
				if err != nil {
					return nil, fmt.Errorf("Classifier: bad EtherType %q", a)
				}
				types[i] = uint16(v)
			}
			return NewClassifier(types...), nil
		},
	}
}

func arity(class string, args []string, want int) error {
	if len(args) != want {
		return fmt.Errorf("%s takes %d arguments, got %d", class, want, len(args))
	}
	return nil
}

func oneInt(class string, args []string) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("%s takes one integer argument, got %d", class, len(args))
	}
	v, err := strconv.Atoi(args[0])
	if err != nil {
		return 0, fmt.Errorf("%s: bad argument %q", class, args[0])
	}
	return v, nil
}
