package elements

import (
	"math/rand"

	"routebricks/internal/click"
	"routebricks/internal/nic"
	"routebricks/internal/pkt"
)

// RED is Random Early Detection (Floyd/Jacobson) guarding a transmit
// ring: it tracks the ring's average occupancy with an EWMA and drops
// incoming packets with probability rising from 0 at MinThresh to MaxP
// at MaxThresh (everything above MaxThresh drops). Click ships the same
// element; routers use it to signal congestion before tail drop.
// Output 0 forwards, output 1 carries early drops.
type RED struct {
	click.Base
	Queue     *nic.Ring
	MinThresh float64
	MaxThresh float64
	MaxP      float64
	// Weight is the EWMA gain (default 0.002, the classic value).
	Weight float64

	rng    *rand.Rand
	avg    float64
	drops  uint64
	passed uint64
}

// NewRED builds the element with the classic parameterization.
func NewRED(q *nic.Ring, minTh, maxTh, maxP float64, seed int64) *RED {
	return &RED{
		Queue: q, MinThresh: minTh, MaxThresh: maxTh, MaxP: maxP,
		Weight: 0.002,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// InPorts reports 1.
func (r *RED) InPorts() int { return 1 }

// OutPorts reports 2 (pass, early drop).
func (r *RED) OutPorts() int { return 2 }

// AvgOccupancy exposes the EWMA estimate.
func (r *RED) AvgOccupancy() float64 { return r.avg }

// Stats reports (passed, earlyDrops).
func (r *RED) Stats() (passed, drops uint64) { return r.passed, r.drops }

// Push applies the RED drop decision, then forwards survivors.
func (r *RED) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	r.avg += r.Weight * (float64(r.Queue.Len()) - r.avg)
	drop := false
	switch {
	case r.avg >= r.MaxThresh:
		drop = true
	case r.avg > r.MinThresh:
		prob := r.MaxP * (r.avg - r.MinThresh) / (r.MaxThresh - r.MinThresh)
		drop = r.rng.Float64() < prob
	}
	if drop {
		r.drops++
		r.Out(ctx, 1, p)
		return
	}
	r.passed++
	r.Out(ctx, 0, p)
}

// Shaper rate-limits a stream with a token bucket (Click's Shaper):
// conforming packets exit output 0, excess exits output 1 (policing) —
// wire output 1 back into a queue for true shaping.
type Shaper struct {
	click.Base
	RateBps float64
	BurstB  float64

	tokens float64
	lastNs int64
	passed uint64
	excess uint64
}

// NewShaper builds a policer at rate bits/sec with the given burst bytes.
func NewShaper(rateBps, burstBytes float64) *Shaper {
	return &Shaper{RateBps: rateBps, BurstB: burstBytes, tokens: burstBytes}
}

// InPorts reports 1.
func (s *Shaper) InPorts() int { return 1 }

// OutPorts reports 2 (conforming, excess).
func (s *Shaper) OutPorts() int { return 2 }

// Stats reports (conforming, excess).
func (s *Shaper) Stats() (passed, excess uint64) { return s.passed, s.excess }

// Push meters.
func (s *Shaper) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	now := ctx.Now()
	if now > s.lastNs {
		s.tokens += s.RateBps / 8 * float64(now-s.lastNs) / 1e9
		if s.tokens > s.BurstB {
			s.tokens = s.BurstB
		}
		s.lastNs = now
	}
	need := float64(p.Len())
	if s.tokens >= need {
		s.tokens -= need
		s.passed++
		s.Out(ctx, 0, p)
		return
	}
	s.excess++
	s.Out(ctx, 1, p)
}
