package elements

import (
	"net/netip"

	"routebricks/internal/click"
	"routebricks/internal/pkt"
)

// ARPResponder answers ARP requests for the addresses it owns — the
// element a router instantiates per external port. Requests for owned
// addresses produce replies on output 0; everything else exits output 1.
type ARPResponder struct {
	click.Base
	mac     pkt.MAC
	owned   map[netip.Addr]bool
	replies uint64
}

// NewARPResponder builds a responder owning the given addresses.
func NewARPResponder(mac pkt.MAC, addrs ...netip.Addr) *ARPResponder {
	owned := make(map[netip.Addr]bool, len(addrs))
	for _, a := range addrs {
		owned[a] = true
	}
	return &ARPResponder{mac: mac, owned: owned}
}

// InPorts reports 1.
func (r *ARPResponder) InPorts() int { return 1 }

// OutPorts reports 2 (replies, pass-through).
func (r *ARPResponder) OutPorts() int { return 2 }

// Push answers or passes.
func (r *ARPResponder) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	if p.Ether().EtherType() != pkt.EtherTypeARP || !p.ARP().Valid() ||
		p.ARP().Op() != pkt.ARPRequest || !r.owned[p.ARP().TargetIP()] {
		r.Out(ctx, 1, p)
		return
	}
	a := p.ARP()
	reply := pkt.NewARP(pkt.ARPReply, r.mac, a.TargetIP(), a.SenderMAC(), a.SenderIP())
	r.replies++
	r.Out(ctx, 0, reply)
}

// Replies reports how many requests were answered.
func (r *ARPResponder) Replies() uint64 { return r.replies }

// ARPQuerier resolves next-hop IP addresses to MACs for outgoing IP
// packets: input 0 takes IP packets (destination resolved against the
// internal table or queued while a request goes out), input 1 takes ARP
// replies. Output 0 carries ready-to-send frames (IP packets with
// resolved destination MACs, and generated ARP requests); output 1 drops
// packets whose resolution queue overflowed.
type ARPQuerier struct {
	click.Base
	mac   pkt.MAC
	ip    netip.Addr
	table map[netip.Addr]pkt.MAC
	// pending holds packets awaiting resolution, per next hop.
	pending map[netip.Addr][]*pkt.Packet
	// PendingLimit bounds each queue (default 8, like Click's ARPQuerier).
	PendingLimit int

	requests uint64
	resolved uint64
	dropped  uint64
}

// NewARPQuerier builds a querier for a port with the given own MAC/IP.
func NewARPQuerier(mac pkt.MAC, ip netip.Addr) *ARPQuerier {
	return &ARPQuerier{
		mac: mac, ip: ip,
		table:        make(map[netip.Addr]pkt.MAC),
		pending:      make(map[netip.Addr][]*pkt.Packet),
		PendingLimit: 8,
	}
}

// InPorts reports 2 (IP packets, ARP replies).
func (q *ARPQuerier) InPorts() int { return 2 }

// OutPorts reports 2 (wire, overflow drops).
func (q *ARPQuerier) OutPorts() int { return 2 }

// Push handles both inputs.
func (q *ARPQuerier) Push(ctx *click.Context, port int, p *pkt.Packet) {
	if port == 1 {
		q.handleReply(ctx, p)
		return
	}
	nh := p.IPv4().Dst() // next hop = destination on a directly attached net
	if mac, ok := q.table[nh]; ok {
		eh := p.Ether()
		eh.SetSrc(q.mac)
		eh.SetDst(mac)
		q.Out(ctx, 0, p)
		return
	}
	if len(q.pending[nh]) >= q.PendingLimit {
		q.dropped++
		q.Out(ctx, 1, p)
		return
	}
	first := len(q.pending[nh]) == 0
	q.pending[nh] = append(q.pending[nh], p)
	if first {
		q.requests++
		q.Out(ctx, 0, pkt.NewARP(pkt.ARPRequest, q.mac, q.ip, pkt.MAC{}, nh))
	}
}

func (q *ARPQuerier) handleReply(ctx *click.Context, p *pkt.Packet) {
	if p.Ether().EtherType() != pkt.EtherTypeARP || !p.ARP().Valid() || p.ARP().Op() != pkt.ARPReply {
		return // not ours; drop silently like Click
	}
	a := p.ARP()
	ip := a.SenderIP()
	mac := a.SenderMAC()
	q.table[ip] = mac
	waiting := q.pending[ip]
	delete(q.pending, ip)
	for _, w := range waiting {
		eh := w.Ether()
		eh.SetSrc(q.mac)
		eh.SetDst(mac)
		q.resolved++
		q.Out(ctx, 0, w)
	}
}

// Stats reports (requests sent, packets resolved via a reply, drops).
func (q *ARPQuerier) Stats() (requests, resolved, dropped uint64) {
	return q.requests, q.resolved, q.dropped
}

// CacheSize reports learned entries.
func (q *ARPQuerier) CacheSize() int { return len(q.table) }
