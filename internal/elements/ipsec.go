package elements

import (
	"net/netip"

	"routebricks/internal/click"
	"routebricks/internal/hw"
	"routebricks/internal/ipsec"
	"routebricks/internal/pkt"
)

// ESPEncap encrypts each packet's IP payload into an ESP tunnel toward a
// fixed peer — the paper's IPsec application ("every packet is encrypted
// using AES-128 encryption, as is typical in VPNs", §5.1). The element
// really encrypts: the output frame carries outer Ethernet + outer IPv4 +
// ESP(SPI, seq, IV, ciphertext of the whole inner IP packet).
type ESPEncap struct {
	click.Base
	Tunnel *ipsec.Tunnel
	Local  netip.Addr // outer source
	Peer   netip.Addr // outer destination
	// Recycle, when set, receives the consumed plaintext packets (the
	// element re-frames into a fresh buffer and owns the original).
	Recycle  *pkt.Pool
	oversize uint64
}

// NewESPEncap builds the encryption element.
func NewESPEncap(t *ipsec.Tunnel, local, peer netip.Addr) *ESPEncap {
	return &ESPEncap{Tunnel: t, Local: local, Peer: peer}
}

// InPorts reports 1.
func (e *ESPEncap) InPorts() int { return 1 }

// OutPorts reports 2 (sealed, oversize).
func (e *ESPEncap) OutPorts() int { return 2 }

// Push encrypts and re-encapsulates.
func (e *ESPEncap) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	ctx.Charge(hw.IPsecExtraCycles(p.Len()))
	inner := p.Data[pkt.EtherHdrLen:] // inner IP packet (tunnel mode)
	esp := e.Tunnel.Seal(inner, 4)    // 4 = IP-in-IP
	outLen := pkt.EtherHdrLen + pkt.IPv4HdrLen + len(esp)
	if outLen > pkt.MaxSize+pkt.IPv4HdrLen+ipsec.ESPHdrLen+2*ipsec.BlockSize {
		// Would not fit any MTU we model; count and divert.
		e.oversize++
		e.Out(ctx, 1, p)
		return
	}
	out := ctx.Alloc(pkt.DefaultPool, outLen)
	out.Arrival = p.Arrival
	out.InputPort = p.InputPort
	out.SeqNo = p.SeqNo
	eh := out.Ether()
	eh.SetSrc(p.Ether().Src())
	eh.SetDst(p.Ether().Dst())
	eh.SetEtherType(pkt.EtherTypeIPv4)
	ih := out.IPv4()
	ih.SetVersionIHL()
	ih.SetTotalLength(uint16(outLen - pkt.EtherHdrLen))
	ih.SetTTL(64)
	ih.SetProtocol(pkt.ProtoESP)
	ih.SetSrc(e.Local)
	ih.SetDst(e.Peer)
	ih.UpdateChecksum()
	copy(out.Data[pkt.EtherHdrLen+pkt.IPv4HdrLen:], esp)
	if e.Recycle != nil {
		ctx.Recycle(e.Recycle, p)
	}
	e.Out(ctx, 0, out)
}

// Oversize reports packets rejected for exceeding the modeled MTU.
func (e *ESPEncap) Oversize() uint64 { return e.oversize }

// ESPDecap reverses ESPEncap: output 0 carries the decrypted inner IP
// packet re-framed in Ethernet; packets that fail authentication or
// parsing exit output 1 unmodified.
type ESPDecap struct {
	click.Base
	Tunnel *ipsec.Tunnel
	// Recycle, when set, receives the consumed ciphertext packets.
	Recycle *pkt.Pool
	errors  uint64
}

// NewESPDecap builds the decryption element.
func NewESPDecap(t *ipsec.Tunnel) *ESPDecap { return &ESPDecap{Tunnel: t} }

// InPorts reports 1.
func (e *ESPDecap) InPorts() int { return 1 }

// OutPorts reports 2 (inner, error).
func (e *ESPDecap) OutPorts() int { return 2 }

// Push decrypts.
func (e *ESPDecap) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	ctx.Charge(hw.IPsecExtraCycles(p.Len()))
	if len(p.Data) < pkt.EtherHdrLen+pkt.IPv4HdrLen || p.IPv4().Protocol() != pkt.ProtoESP {
		e.errors++
		e.Out(ctx, 1, p)
		return
	}
	esp := p.Data[pkt.EtherHdrLen+pkt.IPv4HdrLen:]
	inner, nextHdr, _, err := e.Tunnel.Open(esp)
	if err != nil || nextHdr != 4 {
		e.errors++
		e.Out(ctx, 1, p)
		return
	}
	out := ctx.Alloc(pkt.DefaultPool, pkt.EtherHdrLen+len(inner))
	out.Arrival = p.Arrival
	out.InputPort = p.InputPort
	out.SeqNo = p.SeqNo
	eh := out.Ether()
	eh.SetSrc(p.Ether().Src())
	eh.SetDst(p.Ether().Dst())
	eh.SetEtherType(pkt.EtherTypeIPv4)
	copy(out.Data[pkt.EtherHdrLen:], inner)
	if e.Recycle != nil {
		ctx.Recycle(e.Recycle, p)
	}
	e.Out(ctx, 0, out)
}

// Errors reports failed decapsulations.
func (e *ESPDecap) Errors() uint64 { return e.errors }
