package elements

import (
	"sync/atomic"

	"routebricks/internal/click"
	"routebricks/internal/pkt"
)

// Counter counts packets and bytes flowing through it, transparently.
type Counter struct {
	click.Base
	packets atomic.Uint64
	bytes   atomic.Uint64
}

// InPorts reports 1.
func (c *Counter) InPorts() int { return 1 }

// OutPorts reports 1.
func (c *Counter) OutPorts() int { return 1 }

// Push counts and forwards.
func (c *Counter) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	c.packets.Add(1)
	c.bytes.Add(uint64(p.Len()))
	c.Out(ctx, 0, p)
}

// PushBatch counts the whole batch with two counter updates and
// forwards it untouched.
func (c *Counter) PushBatch(ctx *click.Context, _ int, b *pkt.Batch) {
	n := b.Compact()
	if n == 0 {
		return
	}
	var bytes uint64
	for _, p := range b.Packets() {
		bytes += uint64(p.Len())
	}
	c.packets.Add(uint64(n))
	c.bytes.Add(bytes)
	c.OutBatch(ctx, 0, b)
}

// Packets reports the packet count.
func (c *Counter) Packets() uint64 { return c.packets.Load() }

// Bytes reports the byte count.
func (c *Counter) Bytes() uint64 { return c.bytes.Load() }

// Reset zeroes the counters.
func (c *Counter) Reset() {
	c.packets.Store(0)
	c.bytes.Store(0)
}

// Discard drops everything, counting as it goes. As a terminal owner of
// every packet it receives, it is the natural place to return buffers to
// a pool: set Recycle and steady-state drops cost no allocation churn.
type Discard struct {
	// Recycle, when set, receives every dropped packet.
	Recycle *pkt.Pool

	count atomic.Uint64
}

// InPorts reports 1.
func (d *Discard) InPorts() int { return 1 }

// OutPorts reports 0.
func (d *Discard) OutPorts() int { return 0 }

// Push drops.
func (d *Discard) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	d.count.Add(1)
	if d.Recycle != nil {
		ctx.Recycle(d.Recycle, p)
	}
}

// PushBatch drops the whole batch with one counter update.
func (d *Discard) PushBatch(ctx *click.Context, _ int, b *pkt.Batch) {
	d.count.Add(uint64(b.Compact()))
	if d.Recycle != nil {
		ctx.RecycleBatch(d.Recycle, b)
	}
	b.Reset()
}

// Count reports dropped packets.
func (d *Discard) Count() uint64 { return d.count.Load() }

// Tee clones each packet to every output (deep copies beyond the first,
// which forwards the original).
type Tee struct {
	click.Base
	N int
}

// NewTee builds an n-way tee.
func NewTee(n int) *Tee { return &Tee{N: n} }

// InPorts reports 1.
func (t *Tee) InPorts() int { return 1 }

// OutPorts reports N.
func (t *Tee) OutPorts() int { return t.N }

// Push replicates: exactly N-1 pool-backed clones for outputs 1..N-1,
// with the original forwarded on output 0 — never a wasted copy. Clones
// are cut before the original is forwarded, because downstream of
// output 0 may rewrite the packet in place.
func (t *Tee) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	for i := 1; i < t.N; i++ {
		t.Out(ctx, i, p.Clone())
	}
	t.Out(ctx, 0, p)
}

// SetEtherDst rewrites the destination MAC — the RB4 output-node encoding
// step writes pkt.NodeMAC values through this.
type SetEtherDst struct {
	click.Base
	MAC pkt.MAC
}

// InPorts reports 1.
func (s *SetEtherDst) InPorts() int { return 1 }

// OutPorts reports 1.
func (s *SetEtherDst) OutPorts() int { return 1 }

// Push rewrites and forwards.
func (s *SetEtherDst) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	p.Ether().SetDst(s.MAC)
	s.Out(ctx, 0, p)
}

// Paint stamps the packet's Paint annotation (Click's Paint element).
type Paint struct {
	click.Base
	Color byte
}

// InPorts reports 1.
func (e *Paint) InPorts() int { return 1 }

// OutPorts reports 1.
func (e *Paint) OutPorts() int { return 1 }

// Push paints and forwards.
func (e *Paint) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	p.Paint = e.Color
	e.Out(ctx, 0, p)
}

// PaintSwitch routes by the Paint annotation, modulo its output count.
type PaintSwitch struct {
	click.Base
	N int
}

// InPorts reports 1.
func (e *PaintSwitch) InPorts() int { return 1 }

// OutPorts reports N.
func (e *PaintSwitch) OutPorts() int { return e.N }

// Push dispatches on paint.
func (e *PaintSwitch) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	e.Out(ctx, int(p.Paint)%e.N, p)
}

// Stamp records the virtual arrival time of packets entering the graph,
// used by the latency measurements.
type Stamp struct {
	click.Base
}

// InPorts reports 1.
func (s *Stamp) InPorts() int { return 1 }

// OutPorts reports 1.
func (s *Stamp) OutPorts() int { return 1 }

// Push stamps and forwards.
func (s *Stamp) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	p.Arrival = ctx.Now()
	s.Out(ctx, 0, p)
}
