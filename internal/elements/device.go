// Package elements is the standard element library for the click
// framework: device access (PollDevice/ToDevice), IP processing
// (CheckIPHeader, DecIPTTL, LPMLookup), IPsec ESP encryption, and the
// plumbing elements (Classifier, Counter, Tee, Discard) that the paper's
// router configurations are assembled from. RB4 needed "only two new
// Click elements" beyond the stock library (§8); this package plays the
// role of that stock library, and internal/vlb provides the two new ones.
package elements

import (
	"fmt"
	"sync/atomic"

	"routebricks/internal/click"
	"routebricks/internal/hw"
	"routebricks/internal/nic"
	"routebricks/internal/pkt"
)

// PollDevice polls one NIC receive queue in batches of up to kp packets
// and pushes each packet to output 0 — Click's polling-mode device source
// (§4.1: "the CPUs poll for incoming packets rather than being
// interrupted"). It charges the application forwarding work plus the
// per-poll book-keeping, so a timed run reproduces the calibrated cost
// model at full batches.
type PollDevice struct {
	click.Base
	queue *nic.Ring
	kp    int
	batch *pkt.Batch

	// ChargeForward controls whether the element charges the minimal-
	// forwarding application cycles per packet (on by default). Graphs
	// that account application work elsewhere disable it.
	ChargeForward bool

	polls      uint64
	emptyPolls uint64
	packets    uint64
}

// NewPollDevice builds a poll source for queue with burst kp.
func NewPollDevice(queue *nic.Ring, kp int) *PollDevice {
	if kp < 1 {
		kp = 1
	}
	return &PollDevice{queue: queue, kp: kp, batch: pkt.NewBatch(kp), ChargeForward: true}
}

// InPorts reports 0: PollDevice is a source.
func (d *PollDevice) InPorts() int { return 0 }

// OutPorts reports 1.
func (d *PollDevice) OutPorts() int { return 1 }

// Push panics: sources have no inputs.
func (d *PollDevice) Push(*click.Context, int, *pkt.Packet) {
	panic("elements: PollDevice has no input ports")
}

// Run polls once: up to kp packets are pulled as one batch and pushed
// downstream in a single dispatch. It implements click.Task.
func (d *PollDevice) Run(ctx *click.Context) int {
	d.batch.Reset()
	n := d.queue.DequeueBatchInto(d.batch)
	d.polls++
	if n == 0 {
		d.emptyPolls++
		ctx.Charge(hw.EmptyPollCycles)
		return 0
	}
	// Poll book-keeping is per-packet work that bulk descriptor
	// operations amortize by the configured burst: kp=1 pays the full
	// CPoll per packet (Table 1 row 1), kp=32 a 32nd of it. A partial
	// batch pays proportionally to what it actually moved.
	ctx.Charge(hw.PollCycles * float64(n) / float64(d.kp))
	d.packets += uint64(n)
	if d.ChargeForward {
		for _, p := range d.batch.Packets() {
			ctx.Charge(hw.ForwardCycles(p.Len()))
		}
	}
	d.OutBatch(ctx, 0, d.batch)
	return n
}

// Stats reports (polls, emptyPolls, packets).
func (d *PollDevice) Stats() (polls, empty, packets uint64) {
	return d.polls, d.emptyPolls, d.packets
}

// ToDevice pushes packets into one NIC transmit queue and charges the
// amortized per-transaction descriptor cost. Packets that do not fit are
// dropped and counted (the queue's own drop counter also advances).
type ToDevice struct {
	queue *nic.Ring
	kn    int

	// Recycle, when set, receives packets that were dropped because the
	// transmit ring was full — the element is their last owner.
	Recycle *pkt.Pool

	sent    uint64
	dropped uint64
}

// NewToDevice builds a transmit sink for queue with NIC batching kn.
func NewToDevice(queue *nic.Ring, kn int) *ToDevice {
	if kn < 1 {
		kn = 1
	}
	return &ToDevice{queue: queue, kn: kn}
}

// InPorts reports 1.
func (d *ToDevice) InPorts() int { return 1 }

// OutPorts reports 0: ToDevice is a sink.
func (d *ToDevice) OutPorts() int { return 0 }

// Push enqueues the packet for transmission.
func (d *ToDevice) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	ctx.Charge(hw.NICBatchCycles / float64(d.kn))
	if d.queue.Enqueue(p) {
		d.sent++
	} else {
		d.dropped++
		if d.Recycle != nil {
			ctx.Recycle(d.Recycle, p)
		}
	}
}

// PushBatch enqueues a whole batch with one ring transaction, charging
// the amortized descriptor cost once for the batch instead of once per
// packet. Overflowing packets come back compacted in b; they are
// recycled when a pool is attached, and the batch is returned empty
// either way.
func (d *ToDevice) PushBatch(ctx *click.Context, _ int, b *pkt.Batch) {
	n := b.Compact()
	if n == 0 {
		return
	}
	ctx.Charge(hw.NICBatchCycles * float64(n) / float64(d.kn))
	accepted := d.queue.EnqueueBatch(b)
	d.sent += uint64(accepted)
	d.dropped += uint64(n - accepted)
	if d.Recycle != nil {
		ctx.RecycleBatch(d.Recycle, b)
	}
	b.Reset()
}

// Stats reports (sent, dropped).
func (d *ToDevice) Stats() (sent, dropped uint64) { return d.sent, d.dropped }

// Sink terminates a graph and hands each packet to a callback; test
// harnesses and measurement points use it. The callback may be nil, in
// which case Sink just counts. Safe for concurrent pushes.
type Sink struct {
	Fn func(ctx *click.Context, p *pkt.Packet)
	// Recycle, when set, returns every consumed packet to the pool after
	// Fn has seen it — the sink owns packets it receives.
	Recycle *pkt.Pool

	count atomic.Uint64
	bytes atomic.Uint64
}

// InPorts reports 1.
func (s *Sink) InPorts() int { return 1 }

// OutPorts reports 0.
func (s *Sink) OutPorts() int { return 0 }

// Push consumes the packet.
func (s *Sink) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	s.count.Add(1)
	s.bytes.Add(uint64(p.Len()))
	if s.Fn != nil {
		s.Fn(ctx, p)
	}
	if s.Recycle != nil {
		ctx.Recycle(s.Recycle, p)
	}
}

// Count reports packets consumed.
func (s *Sink) Count() uint64 { return s.count.Load() }

// Bytes reports bytes consumed.
func (s *Sink) Bytes() uint64 { return s.bytes.Load() }

// String describes the sink.
func (s *Sink) String() string {
	return fmt.Sprintf("sink{%d pkts, %d bytes}", s.Count(), s.Bytes())
}
