package elements

import (
	"routebricks/internal/click"
	"routebricks/internal/pkt"
)

// FlowCounter counts packets and bytes per 5-tuple — Click's
// IPRateMonitor in miniature, and the canonical PerFlow element: its
// map is keyed by flow, so cloning it across chains is correct exactly
// when every packet of a flow reaches the same clone. Under
// flow-consistent steering the clones partition the flow space and
// merging their snapshots reproduces the single-core counts;
// TestFlowConsistency asserts precisely that.
type FlowCounter struct {
	click.Base
	flows map[pkt.FlowKey]*FlowStat

	packets uint64
	bytes   uint64
}

// FlowStat is one flow's tally.
type FlowStat struct {
	Packets uint64 `json:"packets"`
	Bytes   uint64 `json:"bytes"`
}

// NewFlowCounter builds the element.
func NewFlowCounter() *FlowCounter {
	return &FlowCounter{flows: make(map[pkt.FlowKey]*FlowStat)}
}

// InPorts reports 1.
func (c *FlowCounter) InPorts() int { return 1 }

// OutPorts reports 1.
func (c *FlowCounter) OutPorts() int { return 1 }

// Push tallies and forwards.
func (c *FlowCounter) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	k := p.Flow()
	st := c.flows[k]
	if st == nil {
		st = &FlowStat{}
		c.flows[k] = st
	}
	st.Packets++
	st.Bytes += uint64(p.Len())
	c.packets++
	c.bytes += uint64(p.Len())
	c.Out(ctx, 0, p)
}

// Flows reports how many distinct 5-tuples were seen.
func (c *FlowCounter) Flows() int { return len(c.flows) }

// Packets reports the total packet count (all flows).
func (c *FlowCounter) Packets() uint64 { return c.packets }

// Bytes reports the total byte count (all flows).
func (c *FlowCounter) Bytes() uint64 { return c.bytes }

// Snapshot copies the per-flow table — what tests merge across chains
// to compare against a single-core oracle.
func (c *FlowCounter) Snapshot() map[pkt.FlowKey]FlowStat {
	out := make(map[pkt.FlowKey]FlowStat, len(c.flows))
	for k, st := range c.flows {
		out[k] = *st
	}
	return out
}
