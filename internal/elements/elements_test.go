package elements

import (
	"net/netip"
	"testing"
	"testing/quick"

	"routebricks/internal/click"
	"routebricks/internal/hw"
	"routebricks/internal/ipsec"
	"routebricks/internal/lpm"
	"routebricks/internal/nic"
	"routebricks/internal/pkt"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func testPacket(size int, dst string) *pkt.Packet {
	return pkt.New(size, addr("10.0.0.1"), addr(dst), 1000, 2000)
}

// capture is a terminal element recording packets per input port.
type capture struct {
	ports map[int][]*pkt.Packet
}

func newCapture() *capture { return &capture{ports: map[int][]*pkt.Packet{}} }

func (c *capture) Push(_ *click.Context, port int, p *pkt.Packet) {
	c.ports[port] = append(c.ports[port], p)
}

// wire connects el's output port to a fresh capture slot and returns the
// capture. Used to test elements in isolation without a Router.
func wireOut(el click.OutputSetter, port int, c *capture, slot int) {
	el.SetOutput(port, func(ctx *click.Context, p *pkt.Packet) {
		c.ports[slot] = append(c.ports[slot], p)
	})
}

func TestPollDeviceBatching(t *testing.T) {
	ring := nic.NewRing(64)
	for i := 0; i < 10; i++ {
		p := testPacket(64, "10.0.0.2")
		p.SeqNo = uint64(i)
		ring.Enqueue(p)
	}
	d := NewPollDevice(ring, 4)
	c := newCapture()
	wireOut(d, 0, c, 0)

	ctx := &click.Context{}
	if n := d.Run(ctx); n != 4 {
		t.Fatalf("first poll = %d, want 4", n)
	}
	// Cost: a full kp=4 batch pays the whole poll cost + per-packet work.
	want := hw.PollCycles + 4*hw.ForwardCycles(64)
	if got := ctx.TakeCycles(); got != want {
		t.Fatalf("cycles = %g, want %g", got, want)
	}
	d.Run(ctx)
	d.Run(ctx)
	if len(c.ports[0]) != 10 {
		t.Fatalf("delivered %d, want 10", len(c.ports[0]))
	}
	for i, p := range c.ports[0] {
		if p.SeqNo != uint64(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
	// Empty poll charges only the empty-poll cost.
	ctx.TakeCycles()
	if n := d.Run(ctx); n != 0 {
		t.Fatalf("empty poll returned %d", n)
	}
	if got := ctx.TakeCycles(); got != hw.EmptyPollCycles {
		t.Fatalf("empty poll cycles = %g", got)
	}
	polls, empty, packets := d.Stats()
	if polls != 4 || empty != 1 || packets != 10 {
		t.Fatalf("stats = %d/%d/%d", polls, empty, packets)
	}
}

func TestToDeviceChargesAndDrops(t *testing.T) {
	ring := nic.NewRing(2)
	d := NewToDevice(ring, 16)
	ctx := &click.Context{}
	for i := 0; i < 3; i++ {
		d.Push(ctx, 0, testPacket(64, "10.0.0.2"))
	}
	sent, dropped := d.Stats()
	if sent != 2 || dropped != 1 {
		t.Fatalf("sent/dropped = %d/%d", sent, dropped)
	}
	want := 3 * hw.NICBatchCycles / 16
	if got := ctx.TakeCycles(); got != want {
		t.Fatalf("cycles = %g, want %g", got, want)
	}
}

func TestClassifier(t *testing.T) {
	cl := NewClassifier(pkt.EtherTypeIPv4, pkt.EtherTypeVLB)
	c := newCapture()
	wireOut(cl, 0, c, 0)
	wireOut(cl, 1, c, 1)
	wireOut(cl, 2, c, 2)
	ctx := &click.Context{}

	p1 := testPacket(64, "10.0.0.2")
	cl.Push(ctx, 0, p1)
	p2 := testPacket(64, "10.0.0.2")
	p2.Ether().SetEtherType(pkt.EtherTypeVLB)
	cl.Push(ctx, 0, p2)
	p3 := testPacket(64, "10.0.0.2")
	p3.Ether().SetEtherType(pkt.EtherTypeARP)
	cl.Push(ctx, 0, p3)

	if len(c.ports[0]) != 1 || len(c.ports[1]) != 1 || len(c.ports[2]) != 1 {
		t.Fatalf("classifier split = %d/%d/%d", len(c.ports[0]), len(c.ports[1]), len(c.ports[2]))
	}
	if cl.OutPorts() != 3 {
		t.Fatalf("OutPorts = %d", cl.OutPorts())
	}
}

func TestCheckIPHeader(t *testing.T) {
	ch := &CheckIPHeader{}
	c := newCapture()
	wireOut(ch, 0, c, 0)
	wireOut(ch, 1, c, 1)
	ctx := &click.Context{}

	good := testPacket(64, "10.0.0.2")
	ch.Push(ctx, 0, good)

	badSum := testPacket(64, "10.0.0.2")
	badSum.IPv4().SetChecksum(badSum.IPv4().Checksum() ^ 0xFFFF)
	ch.Push(ctx, 0, badSum)

	badVer := testPacket(64, "10.0.0.2")
	badVer.Data[pkt.EtherHdrLen] = 0x65 // version 6
	ch.Push(ctx, 0, badVer)

	badLen := testPacket(64, "10.0.0.2")
	badLen.IPv4().SetTotalLength(2000) // longer than the frame
	badLen.IPv4().UpdateChecksum()
	ch.Push(ctx, 0, badLen)

	runt := &pkt.Packet{Data: make([]byte, 20)}
	ch.Push(ctx, 0, runt)

	if len(c.ports[0]) != 1 {
		t.Fatalf("valid = %d, want 1", len(c.ports[0]))
	}
	if len(c.ports[1]) != 4 {
		t.Fatalf("invalid = %d, want 4", len(c.ports[1]))
	}
	v, iv := ch.Stats()
	if v != 1 || iv != 4 {
		t.Fatalf("stats = %d/%d", v, iv)
	}
}

func TestDecIPTTL(t *testing.T) {
	d := &DecIPTTL{}
	c := newCapture()
	wireOut(d, 0, c, 0)
	wireOut(d, 1, c, 1)
	ctx := &click.Context{}

	p := testPacket(64, "10.0.0.2")
	p.IPv4().SetTTL(64)
	p.IPv4().UpdateChecksum()
	d.Push(ctx, 0, p)
	if p.IPv4().TTL() != 63 || !p.IPv4().VerifyChecksum() {
		t.Fatal("TTL decrement or checksum update broken")
	}

	dead := testPacket(64, "10.0.0.2")
	dead.IPv4().SetTTL(1)
	dead.IPv4().UpdateChecksum()
	d.Push(ctx, 0, dead)

	if len(c.ports[0]) != 1 || len(c.ports[1]) != 1 || d.Expired() != 1 {
		t.Fatalf("live/expired = %d/%d", len(c.ports[0]), len(c.ports[1]))
	}
}

func TestLPMLookupAnnotates(t *testing.T) {
	table := lpm.NewDir248()
	if err := table.Insert(netip.MustParsePrefix("10.1.0.0/16"), 3); err != nil {
		t.Fatal(err)
	}
	table.Freeze()
	l := NewLPMLookup(table)
	c := newCapture()
	wireOut(l, 0, c, 0)
	wireOut(l, 1, c, 1)
	ctx := &click.Context{}

	hit := testPacket(64, "10.1.2.3")
	l.Push(ctx, 0, hit)
	if hit.NextHop != 3 {
		t.Fatalf("NextHop = %d, want 3", hit.NextHop)
	}
	miss := testPacket(64, "192.168.1.1")
	l.Push(ctx, 0, miss)
	if len(c.ports[0]) != 1 || len(c.ports[1]) != 1 || l.Misses() != 1 {
		t.Fatalf("hit/miss = %d/%d", len(c.ports[0]), len(c.ports[1]))
	}
	if got := ctx.TakeCycles(); got != 2*hw.RouteExtraCycles() {
		t.Fatalf("cycles = %g", got)
	}
}

func TestHopSwitch(t *testing.T) {
	h := NewHopSwitch(4)
	c := newCapture()
	for i := 0; i < 4; i++ {
		wireOut(h, i, c, i)
	}
	ctx := &click.Context{}
	for hop := 0; hop < 4; hop++ {
		p := testPacket(64, "10.0.0.2")
		p.NextHop = hop
		h.Push(ctx, 0, p)
	}
	for i := 0; i < 4; i++ {
		if len(c.ports[i]) != 1 {
			t.Fatalf("port %d got %d", i, len(c.ports[i]))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range hop did not panic")
		}
	}()
	bad := testPacket(64, "10.0.0.2")
	bad.NextHop = 9
	h.Push(ctx, 0, bad)
}

func TestESPRoundTripThroughElements(t *testing.T) {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i)
	}
	tunA, _ := ipsec.NewTunnel(9, key)
	tunB, _ := ipsec.NewTunnel(9, key)
	enc := NewESPEncap(tunA, addr("192.0.2.1"), addr("192.0.2.2"))
	dec := NewESPDecap(tunB)
	c := newCapture()
	enc.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { dec.Push(ctx, 0, p) })
	wireOut(dec, 0, c, 0)
	wireOut(dec, 1, c, 1)

	ctx := &click.Context{}
	orig := testPacket(256, "10.9.9.9")
	origCopy := orig.Clone()
	enc.Push(ctx, 0, orig)

	if len(c.ports[0]) != 1 {
		t.Fatalf("decap delivered %d packets (errors=%d)", len(c.ports[0]), dec.Errors())
	}
	got := c.ports[0][0]
	if got.Len() != origCopy.Len() {
		t.Fatalf("inner length = %d, want %d", got.Len(), origCopy.Len())
	}
	for i := pkt.EtherHdrLen; i < got.Len(); i++ {
		if got.Data[i] != origCopy.Data[i] {
			t.Fatalf("inner packet corrupted at byte %d", i)
		}
	}
	if ctx.TakeCycles() <= 0 {
		t.Fatal("no cycles charged for crypto")
	}
}

func TestESPEncapProducesValidOuterHeader(t *testing.T) {
	tun, _ := ipsec.NewTunnel(1, make([]byte, 16))
	enc := NewESPEncap(tun, addr("192.0.2.1"), addr("192.0.2.2"))
	c := newCapture()
	wireOut(enc, 0, c, 0)
	enc.Push(&click.Context{}, 0, testPacket(128, "10.0.0.5"))
	out := c.ports[0][0]
	h := out.IPv4()
	if h.Protocol() != pkt.ProtoESP || !h.VerifyChecksum() {
		t.Fatal("outer header invalid")
	}
	if h.Dst() != addr("192.0.2.2") {
		t.Fatalf("outer dst = %v", h.Dst())
	}
	if int(h.TotalLength()) != out.Len()-pkt.EtherHdrLen {
		t.Fatalf("outer length field = %d, frame %d", h.TotalLength(), out.Len())
	}
}

func TestESPDecapRejectsGarbage(t *testing.T) {
	tun, _ := ipsec.NewTunnel(1, make([]byte, 16))
	dec := NewESPDecap(tun)
	c := newCapture()
	wireOut(dec, 0, c, 0)
	wireOut(dec, 1, c, 1)
	ctx := &click.Context{}
	notESP := testPacket(64, "10.0.0.2")
	dec.Push(ctx, 0, notESP)
	if len(c.ports[1]) != 1 || dec.Errors() != 1 {
		t.Fatal("non-ESP packet not diverted")
	}
}

func TestCounterAndDiscard(t *testing.T) {
	cnt := &Counter{}
	disc := &Discard{}
	cnt.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { disc.Push(ctx, 0, p) })
	ctx := &click.Context{}
	for i := 0; i < 5; i++ {
		cnt.Push(ctx, 0, testPacket(100, "10.0.0.2"))
	}
	if cnt.Packets() != 5 || cnt.Bytes() != 500 {
		t.Fatalf("counter = %d/%d", cnt.Packets(), cnt.Bytes())
	}
	if disc.Count() != 5 {
		t.Fatalf("discard = %d", disc.Count())
	}
	cnt.Reset()
	if cnt.Packets() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestTeeClones(t *testing.T) {
	tee := NewTee(3)
	c := newCapture()
	for i := 0; i < 3; i++ {
		wireOut(tee, i, c, i)
	}
	p := testPacket(64, "10.0.0.2")
	tee.Push(&click.Context{}, 0, p)
	if len(c.ports[0]) != 1 || len(c.ports[1]) != 1 || len(c.ports[2]) != 1 {
		t.Fatal("tee did not replicate")
	}
	if c.ports[0][0] != p {
		t.Fatal("output 0 must carry the original")
	}
	if c.ports[1][0] == p || c.ports[2][0] == p {
		t.Fatal("outputs 1+ must carry clones")
	}
	c.ports[1][0].Data[20] ^= 0xFF
	if p.Data[20] == c.ports[1][0].Data[20] {
		t.Fatal("clone shares storage with original")
	}
}

func TestPaintAndSwitch(t *testing.T) {
	paint := &Paint{Color: 2}
	sw := &PaintSwitch{N: 3}
	c := newCapture()
	paint.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { sw.Push(ctx, 0, p) })
	for i := 0; i < 3; i++ {
		wireOut(sw, i, c, i)
	}
	paint.Push(&click.Context{}, 0, testPacket(64, "10.0.0.2"))
	if len(c.ports[2]) != 1 {
		t.Fatal("paint switch misrouted")
	}
}

func TestSetEtherDstAndStamp(t *testing.T) {
	set := &SetEtherDst{MAC: pkt.NodeMAC(7)}
	st := &Stamp{}
	c := newCapture()
	set.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { st.Push(ctx, 0, p) })
	wireOut(st, 0, c, 0)
	ctx := &click.Context{NowNS: func() int64 { return 1234 }}
	set.Push(ctx, 0, testPacket(64, "10.0.0.2"))
	got := c.ports[0][0]
	if got.Ether().Dst() != pkt.NodeMAC(7) {
		t.Fatal("MAC not rewritten")
	}
	if got.Arrival != 1234 {
		t.Fatalf("Arrival = %d", got.Arrival)
	}
}

// Property: a full IP-router pipeline (check → lookup → ttl → hop switch)
// conserves packets: every valid input exits exactly one output.
func TestPropertyPipelineConservation(t *testing.T) {
	table := lpm.NewDir248()
	if err := lpm.Build(table, lpm.RandomTable(500, 4, 11, true)); err != nil {
		t.Fatal(err)
	}
	table.Freeze()
	check := &CheckIPHeader{}
	look := NewLPMLookup(table)
	ttl := &DecIPTTL{}
	hops := NewHopSwitch(4)
	c := newCapture()
	check.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { look.Push(ctx, 0, p) })
	wireOut(check, 1, c, 100)
	look.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { ttl.Push(ctx, 0, p) })
	wireOut(look, 1, c, 101)
	ttl.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { hops.Push(ctx, 0, p) })
	wireOut(ttl, 1, c, 102)
	for i := 0; i < 4; i++ {
		wireOut(hops, i, c, i)
	}

	f := func(dsts []uint32, ttlSeed uint8) bool {
		before := 0
		for _, n := range c.ports {
			before += len(n)
		}
		ctx := &click.Context{}
		for i, d := range dsts {
			p := pkt.New(64, addr("10.0.0.1"),
				netip.AddrFrom4([4]byte{byte(d >> 24), byte(d >> 16), byte(d >> 8), byte(d)}),
				uint16(i), 80)
			p.IPv4().SetTTL(1 + (ttlSeed+byte(i))%255%3) // TTLs 1..3
			p.IPv4().UpdateChecksum()
			check.Push(ctx, 0, p)
		}
		after := 0
		for _, n := range c.ports {
			after += len(n)
		}
		return after-before == len(dsts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIPRoutePipeline(b *testing.B) {
	table := lpm.NewDir248()
	if err := lpm.Build(table, lpm.RandomTable(256*1024, 4, 11, true)); err != nil {
		b.Fatal(err)
	}
	table.Freeze()
	check := &CheckIPHeader{}
	look := NewLPMLookup(table)
	ttl := &DecIPTTL{}
	hops := NewHopSwitch(4)
	disc := &Discard{}
	check.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { look.Push(ctx, 0, p) })
	check.SetOutput(1, func(ctx *click.Context, p *pkt.Packet) { disc.Push(ctx, 0, p) })
	look.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { ttl.Push(ctx, 0, p) })
	look.SetOutput(1, func(ctx *click.Context, p *pkt.Packet) { disc.Push(ctx, 0, p) })
	ttl.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { hops.Push(ctx, 0, p) })
	ttl.SetOutput(1, func(ctx *click.Context, p *pkt.Packet) { disc.Push(ctx, 0, p) })
	for i := 0; i < 4; i++ {
		hops.SetOutput(i, func(ctx *click.Context, p *pkt.Packet) { disc.Push(ctx, 0, p) })
	}
	p := testPacket(64, "10.1.2.3")
	ctx := &click.Context{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.IPv4().SetTTL(64)
		p.IPv4().UpdateChecksum()
		check.Push(ctx, 0, p)
		ctx.TakeCycles()
	}
}
