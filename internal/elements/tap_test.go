package elements

import (
	"bytes"
	"testing"

	"routebricks/internal/click"
	"routebricks/internal/pcap"
)

func TestTapCapturesAndForwards(t *testing.T) {
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tap := NewTap(w)
	c := newCapture()
	wireOut(tap, 0, c, 0)

	ctx := &click.Context{NowNS: func() int64 { return 5_000_000 }}
	var frames [][]byte
	for i := 0; i < 5; i++ {
		p := testPacket(64+i*10, "10.0.0.9")
		frames = append(frames, append([]byte(nil), p.Data...))
		tap.Push(ctx, 0, p)
	}
	if len(c.ports[0]) != 5 {
		t.Fatalf("forwarded %d packets", len(c.ports[0]))
	}
	if tap.Errors() != 0 {
		t.Fatalf("tap errors: %d", tap.Errors())
	}

	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("captured %d records", len(recs))
	}
	for i, rec := range recs {
		if !bytes.Equal(rec.Data, frames[i]) {
			t.Fatalf("record %d differs from the frame on the wire", i)
		}
		if rec.TsNanos != 5_000_000 {
			t.Fatalf("record %d timestamp = %d", i, rec.TsNanos)
		}
	}
}
