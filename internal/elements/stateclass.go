package elements

import "routebricks/internal/click"

// State classifications for the stateful elements — the declarations
// click.NewPlan's cloning gate consults. Elements without a StateClass
// method default to click.Stateless, which covers the majority here:
// pure transforms (DecIPTTL, EtherMirror, SetEtherDst), elements whose
// per-instance counters aggregate correctly across clones (Counter,
// CheckIPHeader, IPClassifier, LPMLookup — the FIB itself is RCU-shared
// behind them), elements that only build fresh packets (ICMPError,
// Fragmenter), and the device endpoints, which bind per-chain rings by
// construction. TestStateClassComplete forces every element type to
// appear in its expectation table, so a new element cannot ship
// unclassified.

// StateClass reports PerFlow: reassembly buffers key on
// (src, dst, id, proto), so clones are correct exactly when every
// fragment of a datagram reaches the same clone — which the fragment
// rule of pkt.RSSHash (3-tuple for fragments) guarantees under
// flow-consistent steering.
func (r *Reassembler) StateClass() click.StateClass { return click.PerFlow }

// StateClass reports PerFlow: counts key on the 5-tuple, so clones
// partition correctly only when flows have core affinity.
func (c *FlowCounter) StateClass() click.StateClass { return click.PerFlow }

// StateClass reports Shared: the learned IP→MAC table and the pending
// queues serve whatever flow needs the next hop, and a reply arriving
// on one clone would leave the others blind.
func (q *ARPQuerier) StateClass() click.StateClass { return click.Shared }

// StateClass reports Shared: the EWMA averages one transmit ring's
// occupancy; clones would each see only a fraction of the drops they
// are supposed to spread.
func (r *RED) StateClass() click.StateClass { return click.Shared }

// StateClass reports Shared: the token bucket shapes one link — N
// clones would shape to N times the configured rate.
func (s *Shaper) StateClass() click.StateClass { return click.Shared }

// StateClass reports Shared: ESP sequence numbers are per-SA and must
// be globally monotonic; cloned tunnels would reuse sequence numbers
// and trip the peer's anti-replay window.
func (e *ESPEncap) StateClass() click.StateClass { return click.Shared }

// StateClass reports Shared: the anti-replay window is per-SA state.
func (d *ESPDecap) StateClass() click.StateClass { return click.Shared }

// StateClass reports Shared: all clones would interleave writes into
// the one pcap stream.
func (t *Tap) StateClass() click.StateClass { return click.Shared }
