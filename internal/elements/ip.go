package elements

import (
	"fmt"

	"routebricks/internal/click"
	"routebricks/internal/hw"
	"routebricks/internal/lpm"
	"routebricks/internal/pkt"
)

// Classifier dispatches packets by EtherType: output i carries packets
// matching Types[i]; everything else goes to the last output (len(Types)).
type Classifier struct {
	click.Base
	Types []uint16
}

// NewClassifier builds a classifier over the given EtherTypes.
func NewClassifier(types ...uint16) *Classifier { return &Classifier{Types: types} }

// InPorts reports 1.
func (c *Classifier) InPorts() int { return 1 }

// OutPorts reports one port per type plus the default.
func (c *Classifier) OutPorts() int { return len(c.Types) + 1 }

// Push dispatches by EtherType.
func (c *Classifier) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	c.Out(ctx, c.match(p), p)
}

// match returns the output port for a packet's EtherType.
func (c *Classifier) match(p *pkt.Packet) int {
	et := p.Ether().EtherType()
	for i, t := range c.Types {
		if et == t {
			return i
		}
	}
	return len(c.Types)
}

// PushBatch dispatches a whole batch. Real traffic is overwhelmingly
// uniform at this point in a graph (one EtherType per link), so the
// batch is forwarded whole when every packet matches the same output;
// mixed batches fall back to per-packet scatter in slot order.
func (c *Classifier) PushBatch(ctx *click.Context, _ int, b *pkt.Batch) {
	n := b.Compact()
	if n == 0 {
		return
	}
	pkts := b.Packets()
	out := c.match(pkts[0])
	uniform := true
	for _, p := range pkts[1:] {
		if c.match(p) != out {
			uniform = false
			break
		}
	}
	if uniform {
		c.OutBatch(ctx, out, b)
		return
	}
	for i, p := range pkts {
		b.Drop(i)
		c.Out(ctx, c.match(p), p)
	}
	b.Reset()
}

// CheckIPHeader validates the IPv4 header (version, IHL, total length,
// checksum); valid packets exit output 0, invalid output 1. This is the
// first element of the paper's IP-routing application.
type CheckIPHeader struct {
	click.Base
	valid   uint64
	invalid uint64
}

// InPorts reports 1.
func (c *CheckIPHeader) InPorts() int { return 1 }

// OutPorts reports 2 (good, bad).
func (c *CheckIPHeader) OutPorts() int { return 2 }

// Push validates the header.
func (c *CheckIPHeader) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	if !c.headerOK(p) {
		c.invalid++
		c.Out(ctx, 1, p)
		return
	}
	c.valid++
	c.Out(ctx, 0, p)
}

// headerOK performs the validation itself.
func (c *CheckIPHeader) headerOK(p *pkt.Packet) bool {
	if len(p.Data) < pkt.EtherHdrLen+pkt.IPv4HdrLen {
		return false
	}
	h := p.IPv4()
	return h.Version() == 4 &&
		h.IHL() == 5 &&
		int(h.TotalLength()) <= p.Len()-pkt.EtherHdrLen &&
		int(h.TotalLength()) >= pkt.IPv4HdrLen &&
		h.VerifyChecksum()
}

// PushBatch validates the batch in place: bad packets divert to output
// 1 one at a time (the rare path), survivors compact and continue to
// output 0 as one batch.
func (c *CheckIPHeader) PushBatch(ctx *click.Context, _ int, b *pkt.Batch) {
	for i, p := range b.Packets() {
		if p == nil {
			continue
		}
		if !c.headerOK(p) {
			c.invalid++
			c.Out(ctx, 1, b.Take(i))
			continue
		}
		c.valid++
	}
	if b.Compact() > 0 {
		c.OutBatch(ctx, 0, b)
	}
}

// Stats reports (valid, invalid) counts.
func (c *CheckIPHeader) Stats() (valid, invalid uint64) { return c.valid, c.invalid }

// DecIPTTL decrements the TTL with an RFC 1141 incremental checksum
// update; live packets exit output 0, expired ones output 1.
type DecIPTTL struct {
	click.Base
	expired uint64
}

// InPorts reports 1.
func (d *DecIPTTL) InPorts() int { return 1 }

// OutPorts reports 2 (live, expired).
func (d *DecIPTTL) OutPorts() int { return 2 }

// Push decrements the TTL.
func (d *DecIPTTL) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	if !p.IPv4().DecTTL() {
		d.expired++
		d.Out(ctx, 1, p)
		return
	}
	d.Out(ctx, 0, p)
}

// PushBatch decrements TTLs across the batch; expired packets divert to
// output 1 individually, the rest continue as one batch.
func (d *DecIPTTL) PushBatch(ctx *click.Context, _ int, b *pkt.Batch) {
	for i, p := range b.Packets() {
		if p == nil {
			continue
		}
		if !p.IPv4().DecTTL() {
			d.expired++
			d.Out(ctx, 1, b.Take(i))
		}
	}
	if b.Compact() > 0 {
		d.OutBatch(ctx, 0, b)
	}
}

// Expired reports how many packets hit TTL 0.
func (d *DecIPTTL) Expired() uint64 { return d.expired }

// LPMLookup performs the destination-address longest-prefix-match and
// annotates the packet with the resulting next hop (Click's D-lookup
// element over a 256K-entry table, §5.1). Hits exit output 0 with
// p.NextHop set; misses exit output 1. The element charges the routing
// delta of the calibrated cost model.
//
// When the table is a live FIB (*lpm.LiveTable), the batch path pins the
// current snapshot once per batch — route churn costs forwarding one
// atomic load per batch, not one per packet, and a batch never straddles
// two FIB generations.
type LPMLookup struct {
	click.Base
	Table  lpm.Engine
	live   *lpm.LiveTable // non-nil iff Table is a live FIB
	misses uint64
}

// NewLPMLookup wraps a route table.
func NewLPMLookup(table lpm.Engine) *LPMLookup {
	l := &LPMLookup{Table: table}
	if live, ok := table.(*lpm.LiveTable); ok {
		l.live = live
	}
	return l
}

// InPorts reports 1.
func (l *LPMLookup) InPorts() int { return 1 }

// OutPorts reports 2 (hit, miss).
func (l *LPMLookup) OutPorts() int { return 2 }

// Push looks up the destination.
func (l *LPMLookup) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	ctx.Charge(hw.RouteExtraCycles())
	hop := l.Table.Lookup(p.IPv4().DstUint32())
	if hop == lpm.NoRoute {
		l.misses++
		l.Out(ctx, 1, p)
		return
	}
	p.NextHop = hop
	l.Out(ctx, 0, p)
}

// PushBatch looks up every destination, charging the routing delta once
// for the whole batch. Misses divert to output 1 individually; hits
// continue as one batch with NextHop annotated.
func (l *LPMLookup) PushBatch(ctx *click.Context, _ int, b *pkt.Batch) {
	n := b.Compact()
	if n == 0 {
		return
	}
	ctx.Charge(hw.RouteExtraCycles() * float64(n))
	table := l.Table
	if l.live != nil {
		// Pin one complete FIB snapshot for the whole batch: a single
		// atomic load, and concurrent route churn can't split the batch
		// across generations.
		table = l.live.Load()
	}
	for i, p := range b.Packets() {
		hop := table.Lookup(p.IPv4().DstUint32())
		if hop == lpm.NoRoute {
			l.misses++
			l.Out(ctx, 1, b.Take(i))
			continue
		}
		p.NextHop = hop
	}
	if b.Compact() > 0 {
		l.OutBatch(ctx, 0, b)
	}
}

// Misses reports lookup failures.
func (l *LPMLookup) Misses() uint64 { return l.misses }

// HopSwitch fans packets out by their NextHop annotation: packet with
// NextHop h exits output h. Out-of-range hops are a configuration error
// and panic, because silently misrouting packets would corrupt every
// downstream measurement.
type HopSwitch struct {
	click.Base
	N int // number of outputs
}

// NewHopSwitch builds a switch with n outputs.
func NewHopSwitch(n int) *HopSwitch { return &HopSwitch{N: n} }

// InPorts reports 1.
func (h *HopSwitch) InPorts() int { return 1 }

// OutPorts reports N.
func (h *HopSwitch) OutPorts() int { return h.N }

// Push routes by annotation.
func (h *HopSwitch) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	if p.NextHop < 0 || p.NextHop >= h.N {
		panic(fmt.Sprintf("elements: HopSwitch(%d) got next hop %d", h.N, p.NextHop))
	}
	h.Out(ctx, p.NextHop, p)
}
