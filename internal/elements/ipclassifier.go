package elements

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"routebricks/internal/click"
	"routebricks/internal/pkt"
)

// IPClassifier dispatches IPv4 packets by predicate rules, Click's
// IPClassifier/IPFilter in miniature. Each rule is compiled once; a
// packet exits at the output of the first matching rule, or at the extra
// last output if none match.
//
// The predicate language:
//
//	proto tcp | udp | icmp | esp | <number>
//	src host 10.0.0.1        dst host 10.0.0.2
//	src net 10.0.0.0/8       dst net 192.168.0.0/16
//	src port 80              dst port 443        port 53
//	true | false
//
// combined with 'and'/'&&', 'or'/'||', 'not'/'!' and parentheses.
// Precedence: not > and > or.
type IPClassifier struct {
	click.Base
	rules   []Predicate
	matched []uint64
}

// Predicate is a compiled packet test.
type Predicate func(*pkt.Packet) bool

// NewIPClassifier compiles the rules; it fails on the first syntax error.
func NewIPClassifier(rules ...string) (*IPClassifier, error) {
	c := &IPClassifier{matched: make([]uint64, len(rules)+1)}
	for i, r := range rules {
		p, err := CompilePredicate(r)
		if err != nil {
			return nil, fmt.Errorf("elements: rule %d: %w", i, err)
		}
		c.rules = append(c.rules, p)
	}
	return c, nil
}

// InPorts reports 1.
func (c *IPClassifier) InPorts() int { return 1 }

// OutPorts reports one output per rule plus the no-match output.
func (c *IPClassifier) OutPorts() int { return len(c.rules) + 1 }

// Push dispatches to the first matching rule.
func (c *IPClassifier) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	for i, rule := range c.rules {
		if rule(p) {
			c.matched[i]++
			c.Out(ctx, i, p)
			return
		}
	}
	c.matched[len(c.rules)]++
	c.Out(ctx, len(c.rules), p)
}

// Matched reports per-output match counts (last = no-match).
func (c *IPClassifier) Matched() []uint64 {
	out := make([]uint64, len(c.matched))
	copy(out, c.matched)
	return out
}

// CompilePredicate compiles one predicate expression.
func CompilePredicate(text string) (Predicate, error) {
	toks := tokenizePredicate(text)
	p := &predParser{toks: toks}
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.done() {
		return nil, fmt.Errorf("trailing tokens at %q", strings.Join(p.toks[p.pos:], " "))
	}
	return pred, nil
}

func tokenizePredicate(text string) []string {
	text = strings.ReplaceAll(text, "(", " ( ")
	text = strings.ReplaceAll(text, ")", " ) ")
	text = strings.ReplaceAll(text, "&&", " and ")
	text = strings.ReplaceAll(text, "||", " or ")
	text = strings.ReplaceAll(text, "!", " not ")
	return strings.Fields(strings.ToLower(text))
}

type predParser struct {
	toks []string
	pos  int
}

func (p *predParser) done() bool { return p.pos >= len(p.toks) }

func (p *predParser) peek() string {
	if p.done() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *predParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *predParser) parseOr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "or" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l := left
		left = func(pk *pkt.Packet) bool { return l(pk) || right(pk) }
	}
	return left, nil
}

func (p *predParser) parseAnd() (Predicate, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek() == "and" {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l := left
		left = func(pk *pkt.Packet) bool { return l(pk) && right(pk) }
	}
	return left, nil
}

func (p *predParser) parseNot() (Predicate, error) {
	if p.peek() == "not" {
		p.next()
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return func(pk *pkt.Packet) bool { return !inner(pk) }, nil
	}
	return p.parsePrimary()
}

func (p *predParser) parsePrimary() (Predicate, error) {
	switch tok := p.next(); tok {
	case "(":
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("missing ')'")
		}
		return inner, nil
	case "true":
		return func(*pkt.Packet) bool { return true }, nil
	case "false":
		return func(*pkt.Packet) bool { return false }, nil
	case "proto":
		return p.parseProto()
	case "src", "dst":
		return p.parseAddrOrPort(tok)
	case "port":
		n, err := p.parseInt("port")
		if err != nil {
			return nil, err
		}
		want := uint16(n)
		return func(pk *pkt.Packet) bool {
			k := pk.Flow()
			return k.SrcPort == want || k.DstPort == want
		}, nil
	case "":
		return nil, fmt.Errorf("unexpected end of predicate")
	default:
		return nil, fmt.Errorf("unexpected token %q", tok)
	}
}

var protoNames = map[string]uint8{
	"tcp": pkt.ProtoTCP, "udp": pkt.ProtoUDP, "icmp": pkt.ProtoICMP, "esp": pkt.ProtoESP,
}

func (p *predParser) parseProto() (Predicate, error) {
	tok := p.next()
	want, ok := protoNames[tok]
	if !ok {
		n, err := strconv.Atoi(tok)
		if err != nil || n < 0 || n > 255 {
			return nil, fmt.Errorf("bad protocol %q", tok)
		}
		want = uint8(n)
	}
	return func(pk *pkt.Packet) bool { return pk.IPv4().Protocol() == want }, nil
}

func (p *predParser) parseAddrOrPort(side string) (Predicate, error) {
	src := side == "src"
	switch kind := p.next(); kind {
	case "host":
		a, err := netip.ParseAddr(p.next())
		if err != nil || !a.Is4() {
			return nil, fmt.Errorf("bad host address")
		}
		b := a.As4()
		want := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		return func(pk *pkt.Packet) bool {
			if src {
				return pk.IPv4().SrcUint32() == want
			}
			return pk.IPv4().DstUint32() == want
		}, nil
	case "net":
		pre, err := netip.ParsePrefix(p.next())
		if err != nil || !pre.Addr().Is4() {
			return nil, fmt.Errorf("bad network prefix")
		}
		b := pre.Addr().As4()
		bits := pre.Bits()
		var mask uint32
		if bits > 0 {
			mask = ^uint32(0) << (32 - bits)
		}
		want := (uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])) & mask
		return func(pk *pkt.Packet) bool {
			v := pk.IPv4().DstUint32()
			if src {
				v = pk.IPv4().SrcUint32()
			}
			return v&mask == want
		}, nil
	case "port":
		n, err := p.parseInt("port")
		if err != nil {
			return nil, err
		}
		want := uint16(n)
		return func(pk *pkt.Packet) bool {
			k := pk.Flow()
			if src {
				return k.SrcPort == want
			}
			return k.DstPort == want
		}, nil
	default:
		return nil, fmt.Errorf("expected host/net/port after %q, got %q", side, kind)
	}
}

func (p *predParser) parseInt(what string) (int, error) {
	tok := p.next()
	n, err := strconv.Atoi(tok)
	if err != nil || n < 0 || n > 65535 {
		return 0, fmt.Errorf("bad %s %q", what, tok)
	}
	return n, nil
}
