package elements

import (
	"bytes"
	"math/rand"
	"testing"

	"routebricks/internal/click"
	"routebricks/internal/pkt"
)

func TestARPResponderAnswers(t *testing.T) {
	mac := pkt.MAC{0xaa, 0xbb, 0xcc, 0, 0, 1}
	resp := NewARPResponder(mac, addr("192.0.2.1"), addr("192.0.2.2"))
	c := newCapture()
	wireOut(resp, 0, c, 0)
	wireOut(resp, 1, c, 1)
	ctx := &click.Context{}

	asker := pkt.MAC{1, 2, 3, 4, 5, 6}
	req := pkt.NewARP(pkt.ARPRequest, asker, addr("192.0.2.99"), pkt.MAC{}, addr("192.0.2.1"))
	resp.Push(ctx, 0, req)
	if len(c.ports[0]) != 1 || resp.Replies() != 1 {
		t.Fatal("owned address not answered")
	}
	reply := c.ports[0][0]
	a := reply.ARP()
	if a.Op() != pkt.ARPReply {
		t.Fatal("not a reply")
	}
	if a.SenderMAC() != mac || a.SenderIP() != addr("192.0.2.1") {
		t.Fatal("reply sender wrong")
	}
	if a.TargetMAC() != asker || reply.Ether().Dst() != asker {
		t.Fatal("reply not addressed to the asker")
	}

	// Request for an address we don't own: passes through.
	other := pkt.NewARP(pkt.ARPRequest, asker, addr("192.0.2.99"), pkt.MAC{}, addr("192.0.2.77"))
	resp.Push(ctx, 0, other)
	if len(c.ports[1]) != 1 {
		t.Fatal("unowned request not passed through")
	}
	// Non-ARP traffic passes through too.
	resp.Push(ctx, 0, testPacket(64, "10.0.0.1"))
	if len(c.ports[1]) != 2 {
		t.Fatal("IP packet not passed through")
	}
}

func TestARPQuerierResolvesAndQueues(t *testing.T) {
	mac := pkt.MAC{0xaa, 0, 0, 0, 0, 2}
	q := NewARPQuerier(mac, addr("192.0.2.10"))
	c := newCapture()
	wireOut(q, 0, c, 0)
	wireOut(q, 1, c, 1)
	ctx := &click.Context{}

	// Two packets to an unresolved next hop: one ARP request goes out,
	// both packets wait.
	p1 := testPacket(64, "192.0.2.20")
	p2 := testPacket(64, "192.0.2.20")
	q.Push(ctx, 0, p1)
	q.Push(ctx, 0, p2)
	if len(c.ports[0]) != 1 {
		t.Fatalf("wire carried %d frames, want just the ARP request", len(c.ports[0]))
	}
	if c.ports[0][0].Ether().EtherType() != pkt.EtherTypeARP {
		t.Fatal("first frame is not an ARP request")
	}

	// The reply releases both queued packets with resolved MACs.
	peer := pkt.MAC{9, 9, 9, 9, 9, 9}
	reply := pkt.NewARP(pkt.ARPReply, peer, addr("192.0.2.20"), mac, addr("192.0.2.10"))
	q.Push(ctx, 1, reply)
	if len(c.ports[0]) != 3 {
		t.Fatalf("wire carried %d frames after reply, want 3", len(c.ports[0]))
	}
	for _, f := range c.ports[0][1:] {
		if f.Ether().Dst() != peer || f.Ether().Src() != mac {
			t.Fatal("queued packet not rewritten")
		}
	}
	// Subsequent packets resolve from cache without a new request.
	q.Push(ctx, 0, testPacket(64, "192.0.2.20"))
	reqs, resolved, _ := q.Stats()
	if reqs != 1 || resolved != 2 {
		t.Fatalf("stats = %d/%d", reqs, resolved)
	}
	if q.CacheSize() != 1 {
		t.Fatalf("cache = %d", q.CacheSize())
	}
}

func TestARPQuerierOverflow(t *testing.T) {
	q := NewARPQuerier(pkt.MAC{1}, addr("192.0.2.10"))
	q.PendingLimit = 2
	c := newCapture()
	wireOut(q, 0, c, 0)
	wireOut(q, 1, c, 1)
	ctx := &click.Context{}
	for i := 0; i < 5; i++ {
		q.Push(ctx, 0, testPacket(64, "192.0.2.30"))
	}
	_, _, dropped := q.Stats()
	if dropped != 3 || len(c.ports[1]) != 3 {
		t.Fatalf("dropped = %d (diverted %d), want 3", dropped, len(c.ports[1]))
	}
}

func TestReassemblerRoundTrip(t *testing.T) {
	// Fragment then reassemble; payload must survive byte-for-byte.
	orig := testPacket(1400, "10.0.0.2")
	rng := rand.New(rand.NewSource(5))
	for i := pkt.EtherHdrLen + pkt.IPv4HdrLen; i < orig.Len(); i++ {
		orig.Data[i] = byte(rng.Int())
	}
	orig.IPv4().SetID(0x4242)
	orig.IPv4().UpdateChecksum()
	want := append([]byte(nil), orig.Data...)

	frags := orig.Clone().Fragment(576)
	if len(frags) < 3 {
		t.Fatalf("only %d fragments", len(frags))
	}
	// Shuffle: reassembly must handle out-of-order arrival.
	rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })

	re := NewReassembler()
	c := newCapture()
	wireOut(re, 0, c, 0)
	ctx := &click.Context{NowNS: func() int64 { return 1000 }}
	for _, f := range frags {
		re.Push(ctx, 0, f)
	}
	if re.Completed() != 1 || len(c.ports[0]) != 1 {
		t.Fatalf("completed = %d", re.Completed())
	}
	got := c.ports[0][0]
	if got.Len() != len(want) {
		t.Fatalf("length %d, want %d", got.Len(), len(want))
	}
	if !got.IPv4().VerifyChecksum() {
		t.Fatal("reassembled checksum invalid")
	}
	if !bytes.Equal(got.Data[pkt.EtherHdrLen+pkt.IPv4HdrLen:], want[pkt.EtherHdrLen+pkt.IPv4HdrLen:]) {
		t.Fatal("payload corrupted")
	}
	if re.Pending() != 0 {
		t.Fatalf("pending = %d", re.Pending())
	}
}

func TestReassemblerPassesUnfragmented(t *testing.T) {
	re := NewReassembler()
	c := newCapture()
	wireOut(re, 0, c, 0)
	p := testPacket(200, "10.0.0.2")
	re.Push(&click.Context{}, 0, p)
	if len(c.ports[0]) != 1 || c.ports[0][0] != p {
		t.Fatal("unfragmented packet touched")
	}
}

func TestReassemblerInterleavedDatagrams(t *testing.T) {
	a := testPacket(1200, "10.0.0.2")
	a.IPv4().SetID(1)
	a.IPv4().UpdateChecksum()
	b := testPacket(1200, "10.0.0.3")
	b.IPv4().SetID(2)
	b.IPv4().UpdateChecksum()
	fa := a.Fragment(576)
	fb := b.Fragment(576)

	re := NewReassembler()
	c := newCapture()
	wireOut(re, 0, c, 0)
	ctx := &click.Context{NowNS: func() int64 { return 1 }}
	// Interleave the two datagrams' fragments.
	for i := 0; i < len(fa) || i < len(fb); i++ {
		if i < len(fa) {
			re.Push(ctx, 0, fa[i])
		}
		if i < len(fb) {
			re.Push(ctx, 0, fb[i])
		}
	}
	if re.Completed() != 2 {
		t.Fatalf("completed = %d, want 2", re.Completed())
	}
}

func TestReassemblerTimeout(t *testing.T) {
	p := testPacket(1200, "10.0.0.2")
	frags := p.Fragment(576)
	re := NewReassembler()
	re.TimeoutNs = 1000
	c := newCapture()
	wireOut(re, 0, c, 0)
	now := int64(100)
	ctx := &click.Context{NowNS: func() int64 { return now }}
	re.Push(ctx, 0, frags[0]) // first fragment only
	if re.Pending() != 1 {
		t.Fatal("fragment not held")
	}
	// A much later unrelated fragment triggers eviction.
	now = 10_000
	other := testPacket(1200, "10.9.9.9")
	other.IPv4().SetID(7)
	other.IPv4().UpdateChecksum()
	re.Push(ctx, 0, other.Fragment(576)[0])
	if re.TimedOut() != 1 {
		t.Fatalf("timedOut = %d", re.TimedOut())
	}
	if re.Completed() != 0 {
		t.Fatal("phantom completion")
	}
}

// End-to-end: fragment → reassemble through a chain, with the ESP
// gateway in between (fragments of an encrypted packet).
func TestFragmentESPReassembleChain(t *testing.T) {
	frag := NewFragmenter(576)
	re := NewReassembler()
	c := newCapture()
	frag.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { re.Push(ctx, 0, p) })
	wireOut(frag, 1, c, 9)
	wireOut(re, 0, c, 0)
	ctx := &click.Context{NowNS: func() int64 { return 1 }}

	orig := testPacket(1490, "10.0.0.2")
	want := append([]byte(nil), orig.Data...)
	frag.Push(ctx, 0, orig.Clone())
	if len(c.ports[0]) != 1 {
		t.Fatalf("chain delivered %d packets", len(c.ports[0]))
	}
	got := c.ports[0][0]
	if !bytes.Equal(got.Data[pkt.EtherHdrLen+pkt.IPv4HdrLen:], want[pkt.EtherHdrLen+pkt.IPv4HdrLen:]) {
		t.Fatal("chain corrupted payload")
	}
}
