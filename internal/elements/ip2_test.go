package elements

import (
	"testing"

	"routebricks/internal/click"
	"routebricks/internal/pkt"
)

func TestICMPErrorElement(t *testing.T) {
	gen := NewICMPError(addr("192.0.2.1"), pkt.ICMPTimeExceeded, pkt.ICMPCodeTTLExpired)
	c := newCapture()
	wireOut(gen, 0, c, 0)
	orig := testPacket(128, "10.9.9.9")
	gen.Push(&click.Context{}, 0, orig)
	if gen.Generated() != 1 || len(c.ports[0]) != 1 {
		t.Fatal("no error generated")
	}
	e := c.ports[0][0]
	if e.IPv4().Protocol() != pkt.ProtoICMP {
		t.Fatal("not ICMP")
	}
	if e.IPv4().Dst() != addr("10.0.0.1") {
		t.Fatalf("error addressed to %v, want original source", e.IPv4().Dst())
	}
	if e.ICMP().Type() != pkt.ICMPTimeExceeded {
		t.Fatalf("type = %d", e.ICMP().Type())
	}
}

// The classic traceroute path: TTL expiry at the router produces a
// time-exceeded error through the element graph.
func TestTTLExpiryGeneratesICMP(t *testing.T) {
	ttl := &DecIPTTL{}
	icmp := NewICMPError(addr("192.0.2.1"), pkt.ICMPTimeExceeded, pkt.ICMPCodeTTLExpired)
	c := newCapture()
	ttl.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) {})
	ttl.SetOutput(1, func(ctx *click.Context, p *pkt.Packet) { icmp.Push(ctx, 0, p) })
	wireOut(icmp, 0, c, 0)

	p := testPacket(64, "10.9.9.9")
	p.IPv4().SetTTL(1)
	p.IPv4().UpdateChecksum()
	ttl.Push(&click.Context{}, 0, p)
	if len(c.ports[0]) != 1 {
		t.Fatal("TTL expiry produced no ICMP error")
	}
}

func TestFragmenterSplitsAndDF(t *testing.T) {
	f := NewFragmenter(576)
	c := newCapture()
	wireOut(f, 0, c, 0)
	wireOut(f, 1, c, 1)
	ctx := &click.Context{}

	small := testPacket(200, "10.0.0.2")
	f.Push(ctx, 0, small)
	if len(c.ports[0]) != 1 || c.ports[0][0] != small {
		t.Fatal("small packet mangled")
	}

	big := testPacket(1400, "10.0.0.2")
	f.Push(ctx, 0, big)
	if len(c.ports[0]) < 3 {
		t.Fatalf("big packet produced %d fragments", len(c.ports[0])-1)
	}
	for _, fr := range c.ports[0][1:] {
		if int(fr.IPv4().TotalLength()) > 576 {
			t.Fatal("fragment exceeds MTU")
		}
		if !fr.IPv4().VerifyChecksum() {
			t.Fatal("fragment checksum invalid")
		}
	}

	df := testPacket(1400, "10.0.0.2")
	df.IPv4().SetFlagsOffset(pkt.FlagDF)
	df.IPv4().UpdateChecksum()
	f.Push(ctx, 0, df)
	if len(c.ports[1]) != 1 {
		t.Fatal("DF packet not diverted")
	}
	frags, dfd := f.Stats()
	if frags < 3 || dfd != 1 {
		t.Fatalf("stats = %d/%d", frags, dfd)
	}
}

// Fragmentation-needed via PMTU: fragmenter DF output → ICMP error.
func TestPMTUDiscoveryPath(t *testing.T) {
	f := NewFragmenter(576)
	icmp := NewICMPError(addr("192.0.2.1"), pkt.ICMPDestUnreach, pkt.ICMPCodeFragNeeded)
	c := newCapture()
	wireOut(f, 0, c, 0)
	f.SetOutput(1, func(ctx *click.Context, p *pkt.Packet) { icmp.Push(ctx, 0, p) })
	wireOut(icmp, 0, c, 2)

	df := testPacket(1400, "10.0.0.2")
	df.IPv4().SetFlagsOffset(pkt.FlagDF)
	df.IPv4().UpdateChecksum()
	f.Push(&click.Context{}, 0, df)
	if len(c.ports[2]) != 1 {
		t.Fatal("no fragmentation-needed error")
	}
	e := c.ports[2][0]
	if e.ICMP().Type() != pkt.ICMPDestUnreach || e.ICMP().Code() != pkt.ICMPCodeFragNeeded {
		t.Fatalf("wrong error %d/%d", e.ICMP().Type(), e.ICMP().Code())
	}
}

func TestEtherMirror(t *testing.T) {
	m := &EtherMirror{}
	c := newCapture()
	wireOut(m, 0, c, 0)
	p := testPacket(64, "10.0.0.2")
	p.Ether().SetSrc(pkt.MAC{1, 1, 1, 1, 1, 1})
	p.Ether().SetDst(pkt.MAC{2, 2, 2, 2, 2, 2})
	m.Push(&click.Context{}, 0, p)
	got := c.ports[0][0]
	if got.Ether().Src() != (pkt.MAC{2, 2, 2, 2, 2, 2}) || got.Ether().Dst() != (pkt.MAC{1, 1, 1, 1, 1, 1}) {
		t.Fatal("MACs not swapped")
	}
}

func TestRegistryBuildsEverything(t *testing.T) {
	reg := StandardRegistry()
	cases := map[string][]string{
		"Counter":       nil,
		"Discard":       nil,
		"CheckIPHeader": nil,
		"DecIPTTL":      nil,
		"Stamp":         nil,
		"Tee":           {"3"},
		"HopSwitch":     {"4"},
		"Paint":         {"7"},
		"PaintSwitch":   {"2"},
		"SetEtherDst":   {"5"},
		"Classifier":    {"0x0800", "0x88B5"},
	}
	for class, args := range cases {
		f, ok := reg[class]
		if !ok {
			t.Errorf("class %s missing", class)
			continue
		}
		el, err := f(args)
		if err != nil || el == nil {
			t.Errorf("%s(%v): %v", class, args, err)
		}
	}
	// Error paths.
	if _, err := reg["Tee"](nil); err == nil {
		t.Error("Tee without arity rejected... accepted")
	}
	if _, err := reg["Counter"]([]string{"1"}); err == nil {
		t.Error("Counter with argument accepted")
	}
	if _, err := reg["Classifier"]([]string{"zzz"}); err == nil {
		t.Error("bad EtherType accepted")
	}
	if _, err := reg["HopSwitch"]([]string{"x"}); err == nil {
		t.Error("bad int accepted")
	}
}
