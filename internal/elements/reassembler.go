package elements

import (
	"routebricks/internal/click"
	"routebricks/internal/pkt"
)

// Reassembler reverses IP fragmentation (RFC 791 §3.2): fragments are
// collected per (src, dst, id, proto) until the datagram is complete,
// then emitted as one packet on output 0. Unfragmented packets pass
// straight through. Incomplete datagrams are evicted after Timeout
// nanoseconds of inactivity (checked lazily on traffic) and their
// fragments are dropped and counted.
type Reassembler struct {
	click.Base
	// TimeoutNs evicts stale partial datagrams (default 30 s, the classic
	// reassembly timer).
	TimeoutNs int64

	// Recycle, when set, receives consumed fragments: non-first
	// fragments as soon as their payload is absorbed, the first fragment
	// (whose headers seed the rebuilt datagram) after emission, and
	// every fragment of an evicted partial datagram.
	Recycle *pkt.Pool

	partial map[fragKey]*partialDatagram

	completed uint64
	timedOut  uint64
}

type fragKey struct {
	src, dst uint32
	id       uint16
	proto    uint8
}

type partialDatagram struct {
	first    *pkt.Packet // fragment with offset 0, holds the headers
	payload  []byte
	have     []bool // per 8-byte block
	totalLen int    // payload length, known once the last fragment arrives
	lastSeen int64
}

// NewReassembler builds the element.
func NewReassembler() *Reassembler {
	return &Reassembler{
		TimeoutNs: 30e9,
		partial:   make(map[fragKey]*partialDatagram),
	}
}

// InPorts reports 1.
func (r *Reassembler) InPorts() int { return 1 }

// OutPorts reports 1.
func (r *Reassembler) OutPorts() int { return 1 }

// Completed reports reassembled datagrams.
func (r *Reassembler) Completed() uint64 { return r.completed }

// TimedOut reports evicted partial datagrams.
func (r *Reassembler) TimedOut() uint64 { return r.timedOut }

// Pending reports partial datagrams currently held.
func (r *Reassembler) Pending() int { return len(r.partial) }

// Push collects fragments.
func (r *Reassembler) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	ih := p.IPv4()
	if !ih.MF() && ih.FragOffset() == 0 {
		r.Out(ctx, 0, p) // not fragmented
		return
	}
	now := ctx.Now()
	r.evict(now)

	key := fragKey{src: ih.SrcUint32(), dst: ih.DstUint32(), id: ih.ID(), proto: ih.Protocol()}
	pd := r.partial[key]
	if pd == nil {
		pd = &partialDatagram{
			// 64 KB is the IPv4 maximum; allocate lazily in blocks.
			payload: make([]byte, 0),
			have:    make([]bool, 8192), // 65536/8 blocks
		}
		r.partial[key] = pd
	}
	pd.lastSeen = now

	off := ih.FragOffset()
	data := p.Data[pkt.EtherHdrLen+pkt.IPv4HdrLen : pkt.EtherHdrLen+int(ih.TotalLength())]
	if need := off + len(data); need > len(pd.payload) {
		grown := make([]byte, need)
		copy(grown, pd.payload)
		pd.payload = grown
	}
	copy(pd.payload[off:], data)
	for b := off / 8; b <= (off+len(data)-1)/8 && b < len(pd.have); b++ {
		pd.have[b] = true
	}
	// Everything needed from p's header is read before any Put: a Put
	// packet may be handed out and overwritten at any moment.
	if !ih.MF() {
		pd.totalLen = off + len(data)
	}
	if off == 0 {
		if pd.first != nil && pd.first != p && r.Recycle != nil {
			ctx.Recycle(r.Recycle, pd.first) // duplicate first fragment supersedes
		}
		pd.first = p
	} else if r.Recycle != nil {
		// Payload absorbed; only the first fragment's headers are still
		// needed for the rebuild.
		ctx.Recycle(r.Recycle, p)
	}

	if pd.totalLen > 0 && pd.first != nil && r.complete(pd) {
		delete(r.partial, key)
		r.completed++
		out := r.rebuild(ctx, pd)
		if r.Recycle != nil {
			ctx.Recycle(r.Recycle, pd.first)
			pd.first = nil
		}
		r.Out(ctx, 0, out)
	}
}

// complete reports whether every 8-byte block up to totalLen is present.
func (r *Reassembler) complete(pd *partialDatagram) bool {
	blocks := (pd.totalLen + 7) / 8
	for b := 0; b < blocks; b++ {
		if !pd.have[b] {
			return false
		}
	}
	return true
}

// rebuild assembles the full datagram from the first fragment's headers
// and the collected payload, into a pool-drawn buffer.
func (r *Reassembler) rebuild(ctx *click.Context, pd *partialDatagram) *pkt.Packet {
	out := ctx.Alloc(pkt.DefaultPool, pkt.EtherHdrLen+pkt.IPv4HdrLen+pd.totalLen)
	out.Arrival = pd.first.Arrival
	out.InputPort = pd.first.InputPort
	out.SeqNo = pd.first.SeqNo
	copy(out.Data[:pkt.EtherHdrLen+pkt.IPv4HdrLen], pd.first.Data[:pkt.EtherHdrLen+pkt.IPv4HdrLen])
	copy(out.Data[pkt.EtherHdrLen+pkt.IPv4HdrLen:], pd.payload[:pd.totalLen])
	ih := out.IPv4()
	ih.SetTotalLength(uint16(pkt.IPv4HdrLen + pd.totalLen))
	ih.SetFlagsOffset(0)
	ih.UpdateChecksum()
	return out
}

// evict drops partial datagrams idle past the timeout.
func (r *Reassembler) evict(now int64) {
	if now == 0 {
		return // untimed context: no eviction
	}
	for k, pd := range r.partial {
		if now-pd.lastSeen > r.TimeoutNs {
			delete(r.partial, k)
			r.timedOut++
			if r.Recycle != nil && pd.first != nil {
				r.Recycle.Put(pd.first)
				pd.first = nil
			}
		}
	}
}
