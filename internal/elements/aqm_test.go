package elements

import (
	"routebricks/internal/pkt"
	"testing"

	"routebricks/internal/click"
	"routebricks/internal/nic"
)

func TestREDPhases(t *testing.T) {
	q := nic.NewRing(256)
	red := NewRED(q, 10, 50, 0.5, 1)
	red.Weight = 1 // follow instantaneous occupancy for a deterministic test
	c := newCapture()
	wireOut(red, 0, c, 0)
	wireOut(red, 1, c, 1)
	ctx := &click.Context{}

	// Empty queue: everything passes.
	for i := 0; i < 100; i++ {
		red.Push(ctx, 0, testPacket(64, "10.0.0.2"))
	}
	if passed, drops := red.Stats(); passed != 100 || drops != 0 {
		t.Fatalf("empty-queue phase: %d/%d", passed, drops)
	}

	// Fill beyond MaxThresh: everything early-drops.
	for i := 0; i < 60; i++ {
		q.Enqueue(testPacket(64, "10.0.0.2"))
	}
	for i := 0; i < 100; i++ {
		red.Push(ctx, 0, testPacket(64, "10.0.0.2"))
	}
	if _, drops := red.Stats(); drops != 100 {
		t.Fatalf("above MaxThresh: drops = %d, want 100", drops)
	}

	// Between thresholds: drop fraction approximates the RED curve.
	q2 := nic.NewRing(256)
	for i := 0; i < 30; i++ { // avg 30 → prob = 0.5·(30-10)/40 = 0.25
		q2.Enqueue(testPacket(64, "10.0.0.2"))
	}
	red2 := NewRED(q2, 10, 50, 0.5, 2)
	red2.Weight = 1
	d := &Discard{}
	red2.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { d.Push(ctx, 0, p) })
	red2.SetOutput(1, func(ctx *click.Context, p *pkt.Packet) {})
	for i := 0; i < 20000; i++ {
		red2.Push(ctx, 0, testPacket(64, "10.0.0.2"))
	}
	_, drops := red2.Stats()
	frac := float64(drops) / 20000
	if frac < 0.20 || frac > 0.30 {
		t.Fatalf("mid-range drop fraction = %.3f, want ≈0.25", frac)
	}
}

func TestShaperPolices(t *testing.T) {
	// 8 Mbps, 2000-byte burst: at 1000-byte packets, steady state passes
	// one packet per millisecond.
	sh := NewShaper(8e6, 2000)
	c := newCapture()
	wireOut(sh, 0, c, 0)
	wireOut(sh, 1, c, 1)
	now := int64(0)
	ctx := &click.Context{NowNS: func() int64 { return now }}

	// Burst: the first two pass on the initial bucket, the rest exceed.
	for i := 0; i < 10; i++ {
		sh.Push(ctx, 0, testPacket(1000, "10.0.0.2"))
	}
	passed, excess := sh.Stats()
	if passed != 2 || excess != 8 {
		t.Fatalf("burst: passed %d excess %d, want 2/8", passed, excess)
	}

	// Paced at the token rate: all conform.
	for i := 0; i < 20; i++ {
		now += 1_000_000 // 1 ms → 1000 bytes of tokens
		sh.Push(ctx, 0, testPacket(1000, "10.0.0.2"))
	}
	passed2, excess2 := sh.Stats()
	if passed2 != 22 || excess2 != 8 {
		t.Fatalf("paced: passed %d excess %d, want 22/8", passed2, excess2)
	}
}
