package elements

import (
	"net/netip"
	"testing"

	"routebricks/internal/click"
	"routebricks/internal/hw"
	"routebricks/internal/lpm"
	"routebricks/internal/nic"
	"routebricks/internal/pkt"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func makeBatch(t testing.TB, n int, dst string) *pkt.Batch {
	t.Helper()
	b := pkt.NewBatch(n)
	for i := 0; i < n; i++ {
		p := testPacket(64, dst)
		p.SeqNo = uint64(i)
		b.Add(p)
	}
	return b
}

// seqs extracts delivered SeqNos from a capture slot.
func seqs(ps []*pkt.Packet) []uint64 {
	out := make([]uint64, len(ps))
	for i, p := range ps {
		out[i] = p.SeqNo
	}
	return out
}

func TestCheckIPHeaderBatchSplitsBadPackets(t *testing.T) {
	check := &CheckIPHeader{}
	c := newCapture()
	wireOut(check, 0, c, 0)
	wireOut(check, 1, c, 1)

	b := makeBatch(t, 6, "10.0.0.2")
	// Corrupt packets 1 and 4 mid-batch.
	b.At(1).IPv4().SetChecksum(0xBEEF)
	b.At(4).Data[pkt.EtherHdrLen] = 0x65 // version 6
	check.PushBatch(&click.Context{}, 0, b)

	if got := seqs(c.ports[0]); len(got) != 4 ||
		got[0] != 0 || got[1] != 2 || got[2] != 3 || got[3] != 5 {
		t.Fatalf("good path = %v, want [0 2 3 5]", got)
	}
	if got := seqs(c.ports[1]); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("bad path = %v, want [1 4]", got)
	}
	valid, invalid := check.Stats()
	if valid != 4 || invalid != 2 {
		t.Fatalf("stats = (%d, %d)", valid, invalid)
	}
}

func TestDecIPTTLBatchDivertsExpired(t *testing.T) {
	ttl := &DecIPTTL{}
	c := newCapture()
	wireOut(ttl, 0, c, 0)
	wireOut(ttl, 1, c, 1)

	b := makeBatch(t, 4, "10.0.0.2")
	b.At(2).IPv4().SetTTL(1)
	ttl.PushBatch(&click.Context{}, 0, b)

	if got := seqs(c.ports[0]); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("live path = %v", got)
	}
	if len(c.ports[1]) != 1 || c.ports[1][0].SeqNo != 2 {
		t.Fatalf("expired path = %v", seqs(c.ports[1]))
	}
	if ttl.Expired() != 1 {
		t.Fatalf("expired = %d", ttl.Expired())
	}
	for _, p := range c.ports[0] {
		if p.IPv4().TTL() != 63 {
			t.Fatal("TTL not decremented on batch path")
		}
		if !p.IPv4().VerifyChecksum() {
			t.Fatal("checksum broken on batch path")
		}
	}
}

func TestLPMLookupBatchChargesPerBatch(t *testing.T) {
	table := lpm.NewDir248()
	if err := table.Insert(pfx("10.0.0.0/16"), 7); err != nil {
		t.Fatal(err)
	}
	table.Freeze()
	look := NewLPMLookup(table)
	c := newCapture()
	wireOut(look, 0, c, 0)
	wireOut(look, 1, c, 1)

	b := pkt.NewBatch(4)
	for i := 0; i < 3; i++ {
		p := testPacket(64, "10.0.0.2")
		p.SeqNo = uint64(i)
		b.Add(p)
	}
	miss := testPacket(64, "192.168.9.9")
	miss.SeqNo = 99
	b.Add(miss)

	ctx := &click.Context{}
	look.PushBatch(ctx, 0, b)

	if got := ctx.TakeCycles(); got != hw.RouteExtraCycles()*4 {
		t.Fatalf("cycles = %g, want one per-batch charge %g", got, hw.RouteExtraCycles()*4)
	}
	if len(c.ports[0]) != 3 {
		t.Fatalf("hits = %d", len(c.ports[0]))
	}
	for _, p := range c.ports[0] {
		if p.NextHop != 7 {
			t.Fatalf("NextHop = %d", p.NextHop)
		}
	}
	if len(c.ports[1]) != 1 || c.ports[1][0].SeqNo != 99 {
		t.Fatal("miss not diverted")
	}
	if look.Misses() != 1 {
		t.Fatalf("misses = %d", look.Misses())
	}
}

func TestClassifierBatchUniformAndMixed(t *testing.T) {
	cls := NewClassifier(pkt.EtherTypeIPv4, pkt.EtherTypeARP)
	c := newCapture()
	for i := 0; i < 3; i++ {
		wireOut(cls, i, c, i)
	}

	// Uniform batch: all IPv4 → forwarded whole to output 0, order kept.
	cls.PushBatch(&click.Context{}, 0, makeBatch(t, 5, "10.0.0.2"))
	if got := seqs(c.ports[0]); len(got) != 5 {
		t.Fatalf("uniform batch delivered %v", got)
	}

	// Mixed batch: scatter per packet, preserving order per output.
	b := makeBatch(t, 4, "10.0.0.2")
	b.At(1).Ether().SetEtherType(pkt.EtherTypeARP)
	b.At(3).Ether().SetEtherType(0x1234) // default output
	cls.PushBatch(&click.Context{}, 0, b)
	if len(c.ports[0]) != 7 { // 5 uniform + packets 0, 2
		t.Fatalf("ipv4 total = %d", len(c.ports[0]))
	}
	if len(c.ports[1]) != 1 || len(c.ports[2]) != 1 {
		t.Fatalf("scatter counts = %d/%d", len(c.ports[1]), len(c.ports[2]))
	}
}

func TestCounterBatch(t *testing.T) {
	cnt := &Counter{}
	c := newCapture()
	wireOut(cnt, 0, c, 0)
	cnt.PushBatch(&click.Context{}, 0, makeBatch(t, 8, "10.0.0.2"))
	if cnt.Packets() != 8 || cnt.Bytes() != 8*64 {
		t.Fatalf("counter = %d pkts %d bytes", cnt.Packets(), cnt.Bytes())
	}
	if len(c.ports[0]) != 8 {
		t.Fatalf("forwarded %d", len(c.ports[0]))
	}
}

func TestDiscardBatchRecycles(t *testing.T) {
	pool := pkt.NewPool(32)
	disc := &Discard{Recycle: pool}
	disc.PushBatch(&click.Context{}, 0, makeBatch(t, 5, "10.0.0.2"))
	if disc.Count() != 5 {
		t.Fatalf("count = %d", disc.Count())
	}
	if pool.FreeLen() != 5 {
		t.Fatalf("pool got %d packets back, want 5", pool.FreeLen())
	}
}

func TestToDeviceBatch(t *testing.T) {
	ring := nic.NewRing(8)
	dev := NewToDevice(ring, 16)
	ctx := &click.Context{}
	dev.PushBatch(ctx, 0, makeBatch(t, 6, "10.0.0.2"))
	if got := ctx.TakeCycles(); got != hw.NICBatchCycles*6/16 {
		t.Fatalf("cycles = %g, want per-batch %g", got, hw.NICBatchCycles*6/16)
	}
	sent, dropped := dev.Stats()
	if sent != 6 || dropped != 0 || ring.Len() != 6 {
		t.Fatalf("sent=%d dropped=%d ring=%d", sent, dropped, ring.Len())
	}
	// Order preserved through the ring.
	for i := 0; i < 6; i++ {
		if p := ring.Dequeue(); p.SeqNo != uint64(i) {
			t.Fatalf("ring order broken at %d: %d", i, p.SeqNo)
		}
	}

	// Overflow with a recycler: drops come back to the pool.
	pool := pkt.NewPool(32)
	small := nic.NewRing(2)
	dev2 := NewToDevice(small, 16)
	dev2.Recycle = pool
	dev2.PushBatch(ctx, 0, makeBatch(t, 5, "10.0.0.2"))
	sent2, dropped2 := dev2.Stats()
	if sent2 != 2 || dropped2 != 3 {
		t.Fatalf("sent=%d dropped=%d", sent2, dropped2)
	}
	if pool.FreeLen() != 3 {
		t.Fatalf("pool reclaimed %d, want 3", pool.FreeLen())
	}
}

// The full IP forwarding pipeline, wired batch-native end to end,
// delivers the same packets in the same order as per-packet pushes.
func TestForwardingPipelineBatchEquivalence(t *testing.T) {
	table := lpm.NewDir248()
	if err := table.Insert(pfx("10.0.0.0/16"), 1); err != nil {
		t.Fatal(err)
	}
	table.Freeze()

	run := func(batch bool) []uint64 {
		ring := nic.NewRing(64)
		for i := 0; i < 40; i++ {
			p := testPacket(64, "10.0.0.2")
			p.SeqNo = uint64(i)
			ring.Enqueue(p)
		}
		poll := NewPollDevice(ring, 16)
		check := &CheckIPHeader{}
		look := NewLPMLookup(table)
		ttl := &DecIPTTL{}
		sink := newCapture()
		bad := &Discard{}
		if batch {
			poll.SetBatchOutput(0, click.BatchDispatch(check, 0))
			check.SetBatchOutput(0, click.BatchDispatch(look, 0))
			look.SetBatchOutput(0, click.BatchDispatch(ttl, 0))
			ttl.SetBatchOutput(0, click.BatchDispatch(sink, 0))
		} else {
			poll.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { check.Push(ctx, 0, p) })
			check.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { look.Push(ctx, 0, p) })
			look.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { ttl.Push(ctx, 0, p) })
			ttl.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) { sink.Push(ctx, 0, p) })
		}
		check.SetOutput(1, func(ctx *click.Context, p *pkt.Packet) { bad.Push(ctx, 0, p) })
		look.SetOutput(1, func(ctx *click.Context, p *pkt.Packet) { bad.Push(ctx, 0, p) })
		ttl.SetOutput(1, func(ctx *click.Context, p *pkt.Packet) { bad.Push(ctx, 0, p) })
		ctx := &click.Context{}
		for poll.Run(ctx) > 0 {
		}
		return seqs(sink.ports[0])
	}

	perPacket := run(false)
	batched := run(true)
	if len(perPacket) != 40 || len(batched) != 40 {
		t.Fatalf("delivered %d / %d, want 40 each", len(perPacket), len(batched))
	}
	for i := range perPacket {
		if perPacket[i] != batched[i] {
			t.Fatalf("order diverged at %d: %d vs %d", i, perPacket[i], batched[i])
		}
	}
}
