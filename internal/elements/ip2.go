package elements

import (
	"net/netip"

	"routebricks/internal/click"
	"routebricks/internal/pkt"
)

// ICMPError converts each incoming packet into the corresponding ICMP
// error addressed to the packet's source — wired to DecIPTTL's expired
// output it makes the router send time-exceeded messages (what
// traceroute relies on), and to a fragmenter's DF-drop output it
// produces the "fragmentation needed" errors of PMTU discovery.
// Output 0 carries the generated error packet.
type ICMPError struct {
	click.Base
	Src       netip.Addr // this router's address
	Type      uint8
	Code      uint8
	generated uint64
}

// NewICMPError builds the element.
func NewICMPError(src netip.Addr, icmpType, icmpCode uint8) *ICMPError {
	return &ICMPError{Src: src, Type: icmpType, Code: icmpCode}
}

// InPorts reports 1.
func (e *ICMPError) InPorts() int { return 1 }

// OutPorts reports 1.
func (e *ICMPError) OutPorts() int { return 1 }

// Push generates the error; the offending packet itself is dropped, as a
// real router would after quoting it.
func (e *ICMPError) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	e.generated++
	e.Out(ctx, 0, pkt.NewICMPError(p, e.Src, e.Type, e.Code))
}

// Generated reports how many errors were produced.
func (e *ICMPError) Generated() uint64 { return e.generated }

// Fragmenter splits oversized IPv4 packets to fit an MTU (bytes of IP
// datagram, header included). Fragments exit output 0; packets with the
// DF bit set that would need fragmenting exit output 1 (for an ICMPError
// "fragmentation needed" element).
type Fragmenter struct {
	click.Base
	MTU     int
	frags   uint64
	dfDrops uint64
}

// NewFragmenter builds the element.
func NewFragmenter(mtu int) *Fragmenter { return &Fragmenter{MTU: mtu} }

// InPorts reports 1.
func (f *Fragmenter) InPorts() int { return 1 }

// OutPorts reports 2.
func (f *Fragmenter) OutPorts() int { return 2 }

// Push fragments as needed.
func (f *Fragmenter) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	if int(p.IPv4().TotalLength()) <= f.MTU {
		f.Out(ctx, 0, p)
		return
	}
	if p.IPv4().DF() {
		f.dfDrops++
		f.Out(ctx, 1, p)
		return
	}
	frags := p.Fragment(f.MTU)
	f.frags += uint64(len(frags))
	for _, fr := range frags {
		f.Out(ctx, 0, fr)
	}
}

// Stats reports (fragments emitted, DF-diverted packets).
func (f *Fragmenter) Stats() (frags, dfDrops uint64) { return f.frags, f.dfDrops }

// EtherMirror swaps source and destination MAC addresses — the classic
// reflector used to answer pings in toy configurations and to bounce
// traffic in loopback tests.
type EtherMirror struct {
	click.Base
}

// InPorts reports 1.
func (e *EtherMirror) InPorts() int { return 1 }

// OutPorts reports 1.
func (e *EtherMirror) OutPorts() int { return 1 }

// Push swaps and forwards.
func (e *EtherMirror) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	eh := p.Ether()
	src, dst := eh.Src(), eh.Dst()
	eh.SetSrc(dst)
	eh.SetDst(src)
	e.Out(ctx, 0, p)
}
