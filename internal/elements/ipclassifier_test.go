package elements

import (
	"net/netip"
	"testing"
	"testing/quick"

	"routebricks/internal/click"
	"routebricks/internal/pkt"
)

func mk(src, dst string, sport, dport uint16, proto uint8) *pkt.Packet {
	p := pkt.New(64, netip.MustParseAddr(src), netip.MustParseAddr(dst), sport, dport)
	p.IPv4().SetProtocol(proto)
	p.IPv4().UpdateChecksum()
	return p
}

func TestPredicates(t *testing.T) {
	cases := []struct {
		expr string
		pkt  *pkt.Packet
		want bool
	}{
		{"proto udp", mk("1.1.1.1", "2.2.2.2", 1, 2, pkt.ProtoUDP), true},
		{"proto tcp", mk("1.1.1.1", "2.2.2.2", 1, 2, pkt.ProtoUDP), false},
		{"proto 17", mk("1.1.1.1", "2.2.2.2", 1, 2, pkt.ProtoUDP), true},
		{"src host 1.1.1.1", mk("1.1.1.1", "2.2.2.2", 1, 2, pkt.ProtoUDP), true},
		{"dst host 1.1.1.1", mk("1.1.1.1", "2.2.2.2", 1, 2, pkt.ProtoUDP), false},
		{"src net 10.0.0.0/8", mk("10.200.3.4", "2.2.2.2", 1, 2, pkt.ProtoUDP), true},
		{"src net 10.0.0.0/8", mk("11.0.0.1", "2.2.2.2", 1, 2, pkt.ProtoUDP), false},
		{"dst net 2.2.0.0/16", mk("1.1.1.1", "2.2.9.9", 1, 2, pkt.ProtoUDP), true},
		{"dst port 80", mk("1.1.1.1", "2.2.2.2", 5000, 80, pkt.ProtoUDP), true},
		{"src port 80", mk("1.1.1.1", "2.2.2.2", 5000, 80, pkt.ProtoUDP), false},
		{"port 80", mk("1.1.1.1", "2.2.2.2", 80, 443, pkt.ProtoUDP), true},
		{"port 81", mk("1.1.1.1", "2.2.2.2", 80, 443, pkt.ProtoUDP), false},
		{"true", mk("1.1.1.1", "2.2.2.2", 1, 2, pkt.ProtoUDP), true},
		{"false", mk("1.1.1.1", "2.2.2.2", 1, 2, pkt.ProtoUDP), false},
		{"proto udp and dst port 53", mk("1.1.1.1", "2.2.2.2", 9, 53, pkt.ProtoUDP), true},
		{"proto tcp or dst port 53", mk("1.1.1.1", "2.2.2.2", 9, 53, pkt.ProtoUDP), true},
		{"proto tcp && dst port 53", mk("1.1.1.1", "2.2.2.2", 9, 53, pkt.ProtoUDP), false},
		{"not proto tcp", mk("1.1.1.1", "2.2.2.2", 1, 2, pkt.ProtoUDP), true},
		{"!proto udp", mk("1.1.1.1", "2.2.2.2", 1, 2, pkt.ProtoUDP), false},
		{"(proto tcp or proto udp) and src net 10.0.0.0/8",
			mk("10.1.1.1", "2.2.2.2", 1, 2, pkt.ProtoUDP), true},
		{"(proto tcp or proto udp) and src net 10.0.0.0/8",
			mk("11.1.1.1", "2.2.2.2", 1, 2, pkt.ProtoUDP), false},
		// Precedence: and binds tighter than or.
		{"proto tcp and port 1 or proto udp", mk("1.1.1.1", "2.2.2.2", 5, 6, pkt.ProtoUDP), true},
	}
	for _, c := range cases {
		pred, err := CompilePredicate(c.expr)
		if err != nil {
			t.Fatalf("%q: %v", c.expr, err)
		}
		if got := pred(c.pkt); got != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestPredicateSyntaxErrors(t *testing.T) {
	for _, expr := range []string{
		"", "proto", "proto zebra", "src", "src host", "src host banana",
		"src net 10.0.0.0", "port x", "port 99999", "proto udp extra",
		"(proto udp", "proto udp)", "src port", "and", "src teapot 1",
	} {
		if _, err := CompilePredicate(expr); err == nil {
			t.Errorf("%q compiled without error", expr)
		}
	}
}

func TestIPClassifierElement(t *testing.T) {
	cl, err := NewIPClassifier(
		"proto udp and dst port 53",
		"proto tcp",
		"src net 10.0.0.0/8",
	)
	if err != nil {
		t.Fatal(err)
	}
	if cl.OutPorts() != 4 {
		t.Fatalf("OutPorts = %d", cl.OutPorts())
	}
	c := newCapture()
	for i := 0; i < 4; i++ {
		wireOut(cl, i, c, i)
	}
	ctx := &click.Context{}
	cl.Push(ctx, 0, mk("9.9.9.9", "8.8.8.8", 999, 53, pkt.ProtoUDP)) // rule 0
	cl.Push(ctx, 0, mk("9.9.9.9", "8.8.8.8", 999, 80, pkt.ProtoTCP)) // rule 1
	cl.Push(ctx, 0, mk("10.1.1.1", "8.8.8.8", 1, 2, pkt.ProtoUDP))   // rule 2
	cl.Push(ctx, 0, mk("9.9.9.9", "8.8.8.8", 1, 2, pkt.ProtoUDP))    // no match
	// First match wins: a TCP packet from 10/8 exits at rule 1, not 2.
	cl.Push(ctx, 0, mk("10.1.1.1", "8.8.8.8", 1, 2, pkt.ProtoTCP))

	want := []int{1, 2, 1, 1}
	for i, n := range want {
		if len(c.ports[i]) != n {
			t.Errorf("output %d got %d packets, want %d", i, len(c.ports[i]), n)
		}
	}
	m := cl.Matched()
	if m[0] != 1 || m[1] != 2 || m[2] != 1 || m[3] != 1 {
		t.Errorf("Matched = %v", m)
	}
}

func TestIPClassifierBadRule(t *testing.T) {
	if _, err := NewIPClassifier("proto udp", "garbage in"); err == nil {
		t.Fatal("bad rule accepted")
	}
}

// Property: 'not' is an involution and De Morgan holds for compiled
// predicates over random packets.
func TestPropertyPredicateAlgebra(t *testing.T) {
	a, _ := CompilePredicate("src net 10.0.0.0/8")
	b, _ := CompilePredicate("dst port 80")
	notA, _ := CompilePredicate("not src net 10.0.0.0/8")
	notNotA, _ := CompilePredicate("not not src net 10.0.0.0/8")
	andAB, _ := CompilePredicate("src net 10.0.0.0/8 and dst port 80")
	deMorgan, _ := CompilePredicate("not (not src net 10.0.0.0/8 or not dst port 80)")

	f := func(s, d uint32, sp, dp uint16) bool {
		p := mk(u32ip(s), u32ip(d), sp, dp, pkt.ProtoUDP)
		if notA(p) == a(p) {
			return false
		}
		if notNotA(p) != a(p) {
			return false
		}
		if andAB(p) != (a(p) && b(p)) {
			return false
		}
		return deMorgan(p) == andAB(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func u32ip(v uint32) string {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}).String()
}

func BenchmarkPredicate(b *testing.B) {
	pred, _ := CompilePredicate("(proto tcp or proto udp) and src net 10.0.0.0/8 and dst port 80")
	p := mk("10.1.1.1", "2.2.2.2", 5000, 80, pkt.ProtoUDP)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pred(p)
	}
}
