package cluster

import (
	"math/rand"
	"net/netip"

	"routebricks/internal/sim"
	"routebricks/internal/trafficgen"
)

// Workload drives traffic into a cluster: per input node, a generator
// paced at an offered bit rate, with destinations drawn from the FIB
// prefixes of the chosen output nodes.
type Workload struct {
	// OfferedBpsPerNode is the external offered load per input node.
	OfferedBpsPerNode float64
	// Sizes is the packet-size mix.
	Sizes trafficgen.SizeDist
	// InputNodes lists the nodes receiving external traffic (default all).
	InputNodes []int
	// OutputNodes lists the candidate destinations (default all).
	// Destination addresses are drawn per flow from these nodes' prefixes.
	OutputNodes []int
	// ExcludeSelf removes an input node from its own destination pool.
	ExcludeSelf bool
	// Duration is how long sources inject.
	Duration sim.Time
	Seed     int64
}

// Apply schedules the workload's packets into the cluster, starting at
// virtual time 0. It returns the number of packets injected.
func (w Workload) Apply(c *Cluster) int {
	nodes := c.cfg.Nodes
	inputs := w.InputNodes
	if len(inputs) == 0 {
		for i := 0; i < nodes; i++ {
			inputs = append(inputs, i)
		}
	}
	outputs := w.OutputNodes
	if len(outputs) == 0 {
		for i := 0; i < nodes; i++ {
			outputs = append(outputs, i)
		}
	}
	total := 0
	for _, in := range inputs {
		rng := rand.New(rand.NewSource(w.Seed*7919 + int64(in)))
		var pool []netip.Addr
		for _, out := range outputs {
			if w.ExcludeSelf && out == in {
				continue
			}
			for k := 0; k < 64; k++ {
				pool = append(pool, c.NodeAddr(out, uint16(rng.Intn(1<<16))))
			}
		}
		src := trafficgen.New(trafficgen.Config{
			Seed:     w.Seed ^ int64(in)<<20,
			Sizes:    w.Sizes,
			DstAddrs: pool,
		})
		// Pace packets so the byte rate matches the offered load: the
		// inter-arrival gap follows each packet's own wire time.
		now := sim.Time(0)
		for now < w.Duration {
			p := src.Next()
			c.Inject(now, in, p)
			total++
			gap := float64(p.Len()*8) / w.OfferedBpsPerNode * float64(sim.Second)
			now += sim.Time(gap)
		}
	}
	return total
}
