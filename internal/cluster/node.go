package cluster

import (
	"fmt"

	"routebricks/internal/click"
	"routebricks/internal/elements"
	"routebricks/internal/hw"
	"routebricks/internal/nic"
	"routebricks/internal/pkt"
	"routebricks/internal/sim"
	"routebricks/internal/vlb"
)

// node is one cluster server: an external port, one internal port per
// peer, per-core click pipelines, a VLB balancer, and per-port transmit
// engines.
type node struct {
	c   *Cluster
	id  int
	ext *nic.Port
	// peersIn[j] is the port facing peer j (nil at j == id). Its RX side
	// receives from j (MAC-steered); its TX side sends to j.
	peersIn []*nic.Port
	bal     *vlb.Balancer
	// sched is the same static core-to-task assignment the live Runner
	// drives (internal/click); here the simulator steps it on virtual
	// time, so simulated and real execution share one placement type.
	sched   *click.Schedule
	cores   []*core
	engines []*txEngine
	failed  bool

	// ingressProg stamps out one independent copy of the ingress element
	// graph per core — the same per-chain instantiation protocol the
	// placement planner uses, so simulator pipelines and planner chains
	// are built by one mechanism.
	ingressProg *click.Program

	ttlDiscard  elements.Discard
	hdrDiscard  elements.Discard
	missDiscard elements.Discard
}

func newNode(c *Cluster, id int) *node {
	cfg := c.cfg
	cores := cfg.Spec.Cores()
	if cores < cfg.Nodes {
		panic(fmt.Sprintf("cluster: MAC steering needs cores (%d) ≥ nodes (%d)", cores, cfg.Nodes))
	}
	qcfg := nic.Config{RXQueues: cores, TXQueues: cores, QueueSize: cfg.QueueSize}
	n := &node{c: c, id: id, sched: click.NewSchedule(cores)}
	// Every drop point is a terminal owner: recycle so a long-running
	// simulation forwards without allocation churn.
	n.ttlDiscard.Recycle = pkt.DefaultPool
	n.hdrDiscard.Recycle = pkt.DefaultPool
	n.missDiscard.Recycle = pkt.DefaultPool
	extCfg := qcfg
	extCfg.Steering = nic.SteerRSS
	n.ext = nic.NewPort(id*100, extCfg)
	n.peersIn = make([]*nic.Port, cfg.Nodes)
	for j := 0; j < cfg.Nodes; j++ {
		if j == id {
			continue
		}
		pc := qcfg
		pc.Steering = nic.SteerMAC
		n.peersIn[j] = nic.NewPort(id*100+j+1, pc)
	}
	n.bal = vlb.New(vlb.Config{
		Nodes:       cfg.Nodes,
		Self:        id,
		LineRateBps: cfg.LineRateBps,
		LinkCapBps:  cfg.FitCapBps,
		Delta:       cfg.Delta,
		Flowlets:    cfg.Flowlets,
		Seed:        cfg.Seed,
	})
	n.ingressProg = n.ingressProgram()
	return n
}

// ingressProgram builds the node's ingress datapath as a click.Program:
// CheckIPHeader → LPMLookup → DecIPTTL → vlbIngress, with the error
// ports bound to the node's shared recycling discards (safe here: the
// simulator's event loop is single-threaded, and the discards count
// atomically anyway). Each chain is one core's independent copy; the
// chain index doubles as the core (and so TX queue) index.
func (n *node) ingressProgram() *click.Program {
	return click.NewProgram(func(chain int) (*click.Router, error) {
		r := click.NewRouter()
		check := &elements.CheckIPHeader{}
		look := elements.NewLPMLookup(n.c.table)
		ttl := &elements.DecIPTTL{}
		ing := &vlbIngress{n: n, idx: chain}
		ing.build()
		for _, add := range []struct {
			name string
			el   click.Element
		}{{"check", check}, {"route", look}, {"ttl", ttl}, {"vlb", ing}} {
			if err := r.Add(add.name, add.el); err != nil {
				return nil, err
			}
		}
		for _, c := range [][2]string{{"check", "route"}, {"route", "ttl"}, {"ttl", "vlb"}} {
			if err := r.Connect(c[0], 0, c[1], 0); err != nil {
				return nil, err
			}
		}
		check.SetOutput(1, func(ctx *click.Context, p *pkt.Packet) { n.hdrDiscard.Push(ctx, 0, p) })
		look.SetOutput(1, func(ctx *click.Context, p *pkt.Packet) { n.missDiscard.Push(ctx, 0, p) })
		ttl.SetOutput(1, func(ctx *click.Context, p *pkt.Packet) {
			n.c.ttlDrops++
			n.ttlDiscard.Push(ctx, 0, p)
		})
		return r, nil
	})
}

// transitProgram builds one core's transit datapath as a click.Program
// keyed on the steering queue: queue q carries output node q mod Nodes.
func (n *node) transitProgram(coreIdx int) *click.Program {
	return click.NewProgram(func(q int) (*click.Router, error) {
		r := click.NewRouter()
		tr := &vlbTransit{n: n, idx: coreIdx, outNode: q % n.c.cfg.Nodes}
		tr.build()
		return r, r.Add("transit", tr)
	})
}

// start builds per-core pipelines and transmit engines and schedules
// their first events, staggered to avoid lockstep artifacts.
func (n *node) start() {
	eng := n.c.eng
	for i := 0; i < n.c.cfg.Spec.Cores(); i++ {
		co := newCore(n, i)
		n.cores = append(n.cores, co)
		off := sim.Time(i) * 100 * sim.Nanosecond
		eng.Schedule(off, co.step)
	}
	// One transmit engine per port: external egress plus each peer link.
	n.engines = append(n.engines, newTxEngine(n, n.ext, -1))
	for j, p := range n.peersIn {
		if p != nil {
			n.engines = append(n.engines, newTxEngine(n, p, j))
		}
	}
	for k, e := range n.engines {
		off := sim.Time(k)*137*sim.Nanosecond + 500*sim.Nanosecond
		eng.Schedule(off, e.service)
	}
}

func (n *node) queued() int {
	total := 0
	ports := append([]*nic.Port{n.ext}, n.peersIn...)
	for _, p := range ports {
		if p == nil {
			continue
		}
		for q := 0; q < p.NumRX(); q++ {
			total += p.RX(q).Len()
		}
		for q := 0; q < p.NumTX(); q++ {
			total += p.TX(q).Len()
		}
	}
	return total
}

func (n *node) txDrops() uint64 {
	var d uint64
	d += n.ext.TXDrops()
	for _, p := range n.peersIn {
		if p != nil {
			d += p.TXDrops()
		}
	}
	return d
}

// core is one CPU core: it owns receive queue index `idx` on every port
// of its node (the paper's "one core per queue" rule) and runs the
// pipelines attached to those queues. Its poll tasks are bound to the
// node's click.Schedule; step executes one quantum of that schedule.
type core struct {
	n   *node
	idx int
	ctx *click.Context
}

func newCore(n *node, idx int) *core {
	c := &core{n: n, idx: idx}
	c.ctx = &click.Context{NowNS: func() int64 { return int64(n.c.eng.Now()) }}
	cfg := n.c.cfg

	// Ingress pipeline: external queue idx → CheckIPHeader → LPMLookup →
	// DecIPTTL → vlbIngress → per-destination ToDevice, instantiated as
	// this core's chain of the node's ingress Program — the same
	// stamp-one-copy-per-chain protocol click.NewPlan uses. The good
	// path is wired batch-to-batch by Router.Connect, so one kp-packet
	// poll travels the whole pipeline as a single dispatch per hop;
	// error ports (rare) divert per packet into the recycling discards.
	inst, err := n.ingressProg.Instantiate(idx)
	if err != nil {
		panic(fmt.Sprintf("cluster: ingress program: %v", err))
	}
	poll := elements.NewPollDevice(n.ext.RX(idx), cfg.KP)
	poll.SetBatchOutput(0, click.BatchDispatch(inst.Entry(), 0))
	n.sched.MustBind(idx, poll)

	// Transit pipelines: queue q of an internal port carries packets
	// whose output node is q (MAC steering). Queue q of the port facing
	// peer j is polled by core (q+j) mod cores, so one output node's
	// traffic — which lands in queue q on *every* port — spreads across
	// as many cores as the node has internal ports, while each queue
	// still has exactly one core (§4.2's rule).
	cores := cfg.Spec.Cores()
	transit := n.transitProgram(idx)
	for j, p := range n.peersIn {
		if p == nil {
			continue
		}
		q := ((idx-j)%cores + cores) % cores
		if q >= cfg.Nodes*n.c.splitFactor() {
			continue // MAC steering uses only Nodes×split queues
		}
		tinst, err := transit.Instantiate(q)
		if err != nil {
			panic(fmt.Sprintf("cluster: transit program: %v", err))
		}
		tpoll := elements.NewPollDevice(p.RX(q), cfg.KP)
		tpoll.SetBatchOutput(0, click.BatchDispatch(tinst.Entry(), 0))
		n.sched.MustBind(idx, tpoll)
	}
	return c
}

// step is one scheduling quantum: run every task bound to this core in
// the node's schedule once, then come back after the consumed virtual
// CPU time.
func (c *core) step() {
	if c.n.failed {
		return // crashed: no reschedule until RecoverNode
	}
	packets := c.n.sched.RunStep(c.idx, c.ctx)
	cycles := c.ctx.TakeCycles()
	next := sim.Time(cycles / c.n.c.cfg.Spec.ClockHz * float64(sim.Second))
	if packets == 0 && next < idleRepoll {
		next = idleRepoll
	}
	if next < 10*sim.Nanosecond {
		next = 10 * sim.Nanosecond
	}
	c.n.c.eng.After(next, c.step)
}

// vlbIngress is one of RB4's two new elements (§6.1): it takes a packet
// whose output node was just resolved by the route lookup (NextHop
// annotation), consults the VLB balancer, encodes the output node in the
// destination MAC, and queues the packet toward the chosen next node.
type vlbIngress struct {
	click.Base
	n     *node
	idx   int // core (and so TX queue) index
	toExt *elements.ToDevice
	to    []*elements.ToDevice // per peer node

	// Per-destination scatter batches, refilled on every PushBatch so the
	// TX path stays batch-native from poll to descriptor ring.
	scratchExt *pkt.Batch
	scratch    []*pkt.Batch
}

func (v *vlbIngress) build() {
	n := v.n
	kn := n.c.cfg.KN
	kp := n.c.cfg.KP
	v.toExt = elements.NewToDevice(n.ext.TX(v.idx), kn)
	v.toExt.Recycle = pkt.DefaultPool
	v.scratchExt = pkt.NewBatch(kp)
	v.to = make([]*elements.ToDevice, n.c.cfg.Nodes)
	v.scratch = make([]*pkt.Batch, n.c.cfg.Nodes)
	for j, p := range n.peersIn {
		if p != nil {
			v.to[j] = elements.NewToDevice(p.TX(v.idx), kn)
			v.to[j].Recycle = pkt.DefaultPool
			v.scratch[j] = pkt.NewBatch(kp)
		}
	}
}

// InPorts reports 1.
func (v *vlbIngress) InPorts() int { return 1 }

// OutPorts reports 0 (terminal: hands off to transmit rings).
func (v *vlbIngress) OutPorts() int { return 0 }

// Push routes the packet into the cluster.
func (v *vlbIngress) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	n := v.n
	if n.c.cfg.Flowlets {
		ctx.Charge(hw.ReorderTaxCycles)
	}
	_, dev := v.route(ctx, p)
	dev.Push(ctx, 0, p)
}

// route makes the VLB decision for one packet — annotating phase,
// rewriting the steering MAC — and returns the chosen next node (-1 for
// the local external port) with its transmit element.
func (v *vlbIngress) route(ctx *click.Context, p *pkt.Packet) (int, *elements.ToDevice) {
	n := v.n
	out := p.NextHop // output node, resolved by LPMLookup against the FIB
	p.VLBPhase = 1
	if out == n.id {
		// Hairpin: destined to this node's own external port.
		return -1, v.toExt
	}
	// The steering MAC carries the output node plus flow-hash bits above
	// it, sharding each output's egress work across split queues (and so
	// cores) at every downstream port. Per-flow stable, so no reordering.
	steer := out
	if split := n.c.splitFactor(); split > 1 {
		steer = out + n.c.cfg.Nodes*int((p.FlowHash()>>16)%uint64(split))
	}
	p.Ether().SetSrc(pkt.NodeMAC(n.id))
	p.Ether().SetDst(pkt.NodeMAC(steer))
	d := n.bal.Route(sim.Time(ctx.Now()), p, out)
	return d.Next, v.to[d.Next]
}

// PushBatch routes a whole poll batch: the balancer decision is still
// per packet (VLB spreads flowlets), but packets are regrouped into
// per-destination batches so each transmit ring sees one bulk enqueue —
// the TX side of the paper's kn batching as a code path.
func (v *vlbIngress) PushBatch(ctx *click.Context, _ int, b *pkt.Batch) {
	n := v.n
	cnt := b.Compact()
	if cnt == 0 {
		return
	}
	if n.c.cfg.Flowlets {
		ctx.Charge(hw.ReorderTaxCycles * float64(cnt))
	}
	for i, p := range b.Packets() {
		b.Drop(i)
		next, _ := v.route(ctx, p)
		if next < 0 {
			v.scratchExt.Add(p)
			continue
		}
		v.scratch[next].Add(p)
	}
	b.Reset()
	if v.scratchExt.Len() > 0 {
		v.toExt.PushBatch(ctx, 0, v.scratchExt)
	}
	for j, s := range v.scratch {
		if s != nil && s.Len() > 0 {
			v.to[j].PushBatch(ctx, 0, s)
		}
	}
}

// vlbTransit is the second RB4 element: packets arriving on an internal
// port's queue o belong to output node o; forward them there (phase 2)
// or out the external port (egress) without header processing.
type vlbTransit struct {
	click.Base
	n       *node
	idx     int // core (and so TX queue) index
	outNode int
	toExt   *elements.ToDevice
	toPeer  *elements.ToDevice
}

func (v *vlbTransit) build() {
	n := v.n
	kn := n.c.cfg.KN
	if v.outNode == n.id {
		v.toExt = elements.NewToDevice(n.ext.TX(v.idx), kn)
		v.toExt.Recycle = pkt.DefaultPool
	} else {
		v.toPeer = elements.NewToDevice(n.peersIn[v.outNode].TX(v.idx), kn)
		v.toPeer.Recycle = pkt.DefaultPool
	}
}

// InPorts reports 1.
func (v *vlbTransit) InPorts() int { return 1 }

// OutPorts reports 0.
func (v *vlbTransit) OutPorts() int { return 0 }

// Push moves the packet along without touching its headers.
func (v *vlbTransit) Push(ctx *click.Context, _ int, p *pkt.Packet) {
	p.VLBPhase++
	if v.toExt != nil {
		v.toExt.Push(ctx, 0, p)
		return
	}
	v.toPeer.Push(ctx, 0, p)
}

// PushBatch moves a whole batch along. Every packet in queue q belongs
// to output node q (MAC steering), so the batch maps to exactly one
// transmit ring — the ideal case for bulk enqueue.
func (v *vlbTransit) PushBatch(ctx *click.Context, _ int, b *pkt.Batch) {
	for _, p := range b.Packets() {
		if p != nil {
			p.VLBPhase++
		}
	}
	if v.toExt != nil {
		v.toExt.PushBatch(ctx, 0, b)
		return
	}
	v.toPeer.PushBatch(ctx, 0, b)
}

// txEngine is the NIC-side transmit DMA engine for one port: it forms
// kn-packet descriptor batches (waiting up to TxTimeout), pays the DMA
// transfer time, and serializes packets onto the link.
type txEngine struct {
	n    *node
	port *nic.Port
	peer int // destination node, or -1 for the external wire

	cursor       int
	linkBusy     sim.Time
	pendingSince sim.Time
	batch        []*pkt.Packet
}

func newTxEngine(n *node, port *nic.Port, peer int) *txEngine {
	return &txEngine{n: n, port: port, peer: peer, pendingSince: -1,
		batch: make([]*pkt.Packet, n.c.cfg.KN)}
}

func (e *txEngine) occupancy() int {
	total := 0
	for q := 0; q < e.port.NumTX(); q++ {
		total += e.port.TX(q).Len()
	}
	return total
}

func (e *txEngine) service() {
	if e.n.failed {
		return // crashed: no reschedule until RecoverNode
	}
	now := e.n.c.eng.Now()
	defer e.n.c.eng.Schedule(now+txService, e.service)

	occ := e.occupancy()
	if occ == 0 {
		e.pendingSince = -1
		return
	}
	if e.pendingSince < 0 {
		e.pendingSince = now
	}
	kn := e.n.c.cfg.KN
	if occ < kn && now-e.pendingSince < e.n.c.cfg.TxTimeout {
		return // keep waiting for a full batch
	}
	if e.linkBusy > now+maxLinkBacklog {
		return // link backpressure: leave packets in the rings
	}
	k := e.port.DrainTX(e.batch, &e.cursor)
	if k == 0 {
		e.pendingSince = -1
		return
	}
	linkBps := e.n.c.cfg.LinkBps
	if e.peer < 0 {
		linkBps = e.n.c.cfg.LineRateBps
	}
	depart := now + TxDMA
	if e.linkBusy > depart {
		depart = e.linkBusy
	}
	for i := 0; i < k; i++ {
		p := e.batch[i]
		e.batch[i] = nil
		ser := sim.Time(float64(p.Len()*8) / linkBps * float64(sim.Second))
		depart += ser
		e.deliver(depart+LinkPropagation, p)
	}
	e.linkBusy = depart
	if e.occupancy() > 0 {
		e.pendingSince = now
	} else {
		e.pendingSince = -1
	}
}

// deliver schedules the packet's arrival at the far end of the link.
func (e *txEngine) deliver(at sim.Time, p *pkt.Packet) {
	c := e.n.c
	c.flying++
	if e.peer < 0 {
		// External wire: the packet has left the router.
		c.eng.Schedule(at, func() {
			c.flying--
			c.measure(p)
		})
		return
	}
	from := e.n.id
	to := e.peer
	c.eng.Schedule(at, func() {
		c.eng.After(RxDMA, func() {
			c.flying--
			if c.nodes[to].failed {
				c.failureDrops++
				pkt.DefaultPool.Put(p)
				return
			}
			if !c.nodes[to].peersIn[from].Deliver(p) {
				// Receive ring overflow: the ring counted the drop; the
				// buffer's life ends here.
				pkt.DefaultPool.Put(p)
			}
		})
	})
}

// measure records a delivered packet.
func (c *Cluster) measure(p *pkt.Packet) {
	lat := float64(int64(c.eng.Now())-p.Arrival) / 1000 // µs
	c.Latency.Add(lat)
	c.Meter.Observe(p.FlowHash(), p.SeqNo)
	if p.InputPort >= 0 && p.InputPort < len(c.DeliveredByInput) {
		c.DeliveredByInput[p.InputPort]++
	}
	phase := p.VLBPhase
	if phase < 0 {
		phase = 0
	}
	if phase > 3 {
		phase = 3
	}
	c.Hops[phase]++
	// The packet has left the router and been measured: its buffer goes
	// back to the pool, closing the allocation loop with the workload's
	// pkt.New calls.
	pkt.DefaultPool.Put(p)
}
