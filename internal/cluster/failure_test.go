package cluster

import (
	"testing"

	"routebricks/internal/sim"
	"routebricks/internal/trafficgen"
)

// Failing an intermediate node must not stop traffic between the other
// nodes: the balancers route around it.
func TestFailureRoutesAround(t *testing.T) {
	cfg := RB4Config()
	cfg.Seed = 21
	// A tight fit capacity forces the single-pair load off the direct
	// path and across the intermediates, so the failed node is actually
	// carrying traffic (with the default 10G fit, the direct path absorbs
	// everything and the failure would be invisible).
	cfg.FitCapBps = 3e9
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 → node 3 only, overloading the direct quota so intermediates
	// (1 and 2) are exercised; node 1 dies mid-run.
	w := Workload{
		OfferedBpsPerNode: 8e9,
		Sizes:             trafficgen.AbileneMix(),
		InputNodes:        []int{0},
		OutputNodes:       []int{3},
		Duration:          20 * sim.Millisecond,
		Seed:              21,
	}
	w.Apply(c)
	c.FailNode(5*sim.Millisecond, 1)
	c.Run(w.Duration + sim.Millisecond)
	c.Drain(30 * sim.Millisecond)

	injected, delivered, rxd, txd, ttl := c.Totals()
	lost := c.FailureDrops()
	if lost == 0 {
		t.Fatal("no packets were in flight through the failed node — failure not exercised")
	}
	// Everything not lost to the failure (or stuck in the dead node's
	// rings) must still be delivered.
	stuck := uint64(c.nodes[1].queued())
	accounted := delivered + rxd + txd + ttl + lost + stuck + uint64(c.flying)
	if accounted != injected {
		t.Fatalf("conservation: injected=%d accounted=%d (delivered=%d lost=%d stuck=%d)",
			injected, accounted, delivered, lost, stuck)
	}
	// The surviving paths must carry the bulk of the traffic: less than
	// a few percent dies in the failure window.
	if float64(lost+stuck)/float64(injected) > 0.05 {
		t.Fatalf("lost %d + stuck %d of %d — balancers did not route around the failure",
			lost, stuck, injected)
	}
	if delivered < injected*9/10 {
		t.Fatalf("delivered only %d of %d after failure", delivered, injected)
	}
}

// After the failed node recovers, it resumes forwarding: a second wave
// of traffic through it is delivered.
func TestFailureRecovery(t *testing.T) {
	cfg := RB4Config()
	cfg.Seed = 22
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.FailNode(0, 1)
	c.RecoverNode(2*sim.Millisecond, 1)
	w := Workload{
		OfferedBpsPerNode: 1e9,
		Sizes:             trafficgen.Fixed(300),
		InputNodes:        []int{1},
		OutputNodes:       []int{2},
		Duration:          5 * sim.Millisecond,
		Seed:              22,
	}
	// Shift the workload start past the recovery by injecting it on a
	// cluster whose node was already recovered at t=2ms: packets before
	// 2 ms are failure-dropped, later ones delivered.
	w.Apply(c)
	c.Run(w.Duration + sim.Millisecond)
	c.Drain(30 * sim.Millisecond)
	injected, delivered, _, _, _ := c.Totals()
	if delivered == 0 {
		t.Fatal("recovered node delivered nothing")
	}
	if delivered+c.FailureDrops() < injected {
		t.Fatalf("delivered %d + failureDrops %d < injected %d",
			delivered, c.FailureDrops(), injected)
	}
	// Most of the run happens after recovery: the majority is delivered.
	if delivered < injected/2 {
		t.Fatalf("delivered %d of %d after recovery", delivered, injected)
	}
}

// VLB fairness (§3.1 guarantee 2): three inputs overloading one output
// port each get a comparable share of the output capacity.
func TestFairnessUnderOutputOverload(t *testing.T) {
	cfg := RB4Config()
	cfg.Seed = 23
	cfg.QueueSize = 128
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{
		OfferedBpsPerNode: 6e9, // 3 × 6G into a 10G output port
		Sizes:             trafficgen.Fixed(1500),
		InputNodes:        []int{0, 1, 2},
		OutputNodes:       []int{3},
		Duration:          15 * sim.Millisecond,
		Seed:              23,
	}
	w.Apply(c)
	c.Run(w.Duration + sim.Millisecond)
	c.Drain(30 * sim.Millisecond)

	shares := c.DeliveredByInput[:3]
	total := shares[0] + shares[1] + shares[2]
	if total == 0 {
		t.Fatal("nothing delivered")
	}
	for in, got := range shares {
		f := float64(got) / float64(total)
		if f < 0.25 || f > 0.42 {
			t.Errorf("input %d received share %.3f of the contended output, want ≈1/3 (%v)",
				in, f, shares)
		}
	}
}

// The measured loss-free rate of RB4 at 64 B must land near the analytic
// 3 Gbps/node (§6.2's 12 Gbps total).
func TestMeasuredLossFreeRateMatchesAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("rate search in -short mode")
	}
	cfg := RB4Config()
	cfg.Seed = 24
	probes, bps, err := MeasuredLossFreeRate(cfg, trafficgen.Fixed(64),
		1.5e9, 4.5e9, 0.001, 4*sim.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probes {
		t.Log(p)
	}
	// The DES lands below the analytic 12 Gbps for a structural reason
	// the back-of-envelope ignores: with one core per queue, the busiest
	// core carries an egress shard (R/(N−1)/split of minimal forwarding)
	// on top of its 1/cores ingress share — 527 cycles·R vs the perfectly
	// balanced 478 — plus queue buildup right at the loss-free knee. The
	// paper's own measurement fell below its expected band too (12 vs
	// 12.7–19.4). Accept [8.5, 13].
	total := 4 * bps / 1e9
	if total < 8.5 || total > 13 {
		t.Fatalf("measured RB4 rate = %.1f Gbps, want within [8.5,13] (analytic 12, §6.2)", total)
	}
}

func TestMeasuredRateValidation(t *testing.T) {
	cfg := RB4Config()
	if _, _, err := MeasuredLossFreeRate(cfg, trafficgen.Fixed(64), 0, 1, 0.1, sim.Millisecond, 1); err == nil {
		t.Error("bad range accepted")
	}
}
