package cluster

import (
	"fmt"

	"routebricks/internal/sim"
	"routebricks/internal/trafficgen"
)

// RateProbe is one point of a loss-free rate search.
type RateProbe struct {
	OfferedBpsPerNode float64
	Injected          uint64
	Delivered         uint64
	LossFraction      float64
	MeanLatencyUs     float64
}

// String renders the probe.
func (p RateProbe) String() string {
	return fmt.Sprintf("%.2f Gbps/node: loss %.4f%%, latency %.1f µs",
		p.OfferedBpsPerNode/1e9, 100*p.LossFraction, p.MeanLatencyUs)
}

// probeRate runs one cluster at a fixed offered load and measures loss.
func probeRate(base Config, sizes trafficgen.SizeDist, bpsPerNode float64,
	window sim.Time) (RateProbe, error) {
	c, err := New(base)
	if err != nil {
		return RateProbe{}, err
	}
	w := Workload{
		OfferedBpsPerNode: bpsPerNode,
		Sizes:             sizes,
		ExcludeSelf:       true,
		Duration:          window,
		Seed:              base.Seed + 1,
	}
	w.Apply(c)
	c.Run(window + sim.Millisecond)
	c.Drain(30 * sim.Millisecond)
	injected, delivered, _, _, _ := c.Totals()
	loss := 0.0
	if injected > 0 {
		loss = 1 - float64(delivered)/float64(injected)
	}
	return RateProbe{
		OfferedBpsPerNode: bpsPerNode,
		Injected:          injected,
		Delivered:         delivered,
		LossFraction:      loss,
		MeanLatencyUs:     c.Latency.Mean(),
	}, nil
}

// MeasuredLossFreeRate binary-searches the highest per-node offered load
// the cluster sustains with loss ≤ tol, the way the paper's authors
// dialed their traffic generators to find the "maximum attainable
// loss-free forwarding rate" (§5.1). It returns the bracketing probes.
func MeasuredLossFreeRate(base Config, sizes trafficgen.SizeDist,
	loBps, hiBps, tol float64, window sim.Time, steps int) ([]RateProbe, float64, error) {
	if loBps <= 0 || hiBps <= loBps || steps < 1 {
		return nil, 0, fmt.Errorf("cluster: bad search range [%g,%g]x%d", loBps, hiBps, steps)
	}
	var probes []RateProbe
	lo, hi := loBps, hiBps
	// Establish that lo passes and hi fails; if hi passes, it is the answer.
	pHi, err := probeRate(base, sizes, hi, window)
	if err != nil {
		return nil, 0, err
	}
	probes = append(probes, pHi)
	if pHi.LossFraction <= tol {
		return probes, hi, nil
	}
	for i := 0; i < steps; i++ {
		mid := (lo + hi) / 2
		p, err := probeRate(base, sizes, mid, window)
		if err != nil {
			return nil, 0, err
		}
		probes = append(probes, p)
		if p.LossFraction <= tol {
			lo = mid
		} else {
			hi = mid
		}
	}
	return probes, lo, nil
}
