package cluster

import (
	"testing"

	"routebricks/internal/sim"
	"routebricks/internal/trafficgen"
)

// The architecture scales past the RB4 prototype: an 8-node full mesh
// (the largest mesh the 8-core MAC-steering trick supports directly)
// delivers everything with in-order flows and bounded latency.
func TestEightNodeMesh(t *testing.T) {
	cfg := RB4Config()
	cfg.Nodes = 8
	cfg.Seed = 41
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{
		OfferedBpsPerNode: 1e9,
		Sizes:             trafficgen.AbileneMix(),
		ExcludeSelf:       true,
		Duration:          10 * sim.Millisecond,
		Seed:              41,
	}
	w.Apply(c)
	c.Run(w.Duration + sim.Millisecond)
	c.Drain(30 * sim.Millisecond)

	injected, delivered, rxd, txd, ttl := c.Totals()
	if delivered != injected {
		t.Fatalf("delivered %d of %d (rx=%d tx=%d ttl=%d)", delivered, injected, rxd, txd, ttl)
	}
	if f := c.Meter.Fraction(); f > 0.005 {
		t.Fatalf("reordering = %.4f%%", 100*f)
	}
	if m := c.Latency.Mean(); m > 120 {
		t.Fatalf("mean latency = %.1f µs", m)
	}
	// With 8 nodes the direct quota is R/8; at this load the matrix is
	// still near-uniform so most traffic goes direct.
	if c.Hops[2] == 0 {
		t.Fatal("no direct deliveries")
	}
}

// A 3-node mesh (cores not divisible by nodes) exercises the non-uniform
// queue-split path.
func TestThreeNodeMesh(t *testing.T) {
	cfg := RB4Config()
	cfg.Nodes = 3
	cfg.Seed = 42
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{
		OfferedBpsPerNode: 1e9,
		Sizes:             trafficgen.Fixed(512),
		ExcludeSelf:       true,
		Duration:          8 * sim.Millisecond,
		Seed:              42,
	}
	w.Apply(c)
	c.Run(w.Duration + sim.Millisecond)
	c.Drain(30 * sim.Millisecond)
	injected, delivered, _, _, _ := c.Totals()
	if delivered != injected {
		t.Fatalf("delivered %d of %d", delivered, injected)
	}
}

// Hairpin traffic (destination on the input node's own port) never
// enters the mesh: all deliveries are 1-node paths.
func TestHairpinDelivery(t *testing.T) {
	cfg := RB4Config()
	cfg.Seed = 43
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{
		OfferedBpsPerNode: 0.5e9,
		Sizes:             trafficgen.Fixed(128),
		InputNodes:        []int{2},
		OutputNodes:       []int{2},
		Duration:          5 * sim.Millisecond,
		Seed:              43,
	}
	w.Apply(c)
	c.Run(w.Duration + sim.Millisecond)
	c.Drain(20 * sim.Millisecond)
	injected, delivered, _, _, _ := c.Totals()
	if delivered != injected || injected == 0 {
		t.Fatalf("delivered %d of %d", delivered, injected)
	}
	if c.Hops[1] != delivered {
		t.Fatalf("hairpin hops = %v, want all at 1", c.Hops)
	}
}
