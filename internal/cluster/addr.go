package cluster

import (
	"net/netip"

	"routebricks/internal/lpm"
)

// The cluster-wide addressing convention, shared by the simulator, the
// UDP-mesh rbrouter, and the rbmesh launcher: node d owns 10.d.0.0/16,
// so a packet's destination decides its output node and every component
// (FIB seeding, traffic generation, delivery accounting) agrees on who
// owns what without configuration.

// NodePrefix is the /16 owned by node d under the 10.d.0.0/16
// convention.
func NodePrefix(d int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(d), 0, 0}), 16)
}

// NodeOwnedAddr returns host number host inside node d's prefix.
func NodeOwnedAddr(d int, host uint16) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(d), byte(host >> 8), byte(host)})
}

// SeedRoutes builds the base FIB for an n-node cluster: one route per
// node prefix, next hop = owning node. Every deployment seeds its live
// table with exactly this set as generation 1.
func SeedRoutes(n int) []lpm.Route {
	routes := make([]lpm.Route, n)
	for d := 0; d < n; d++ {
		routes[d] = lpm.Route{Prefix: NodePrefix(d), NextHop: d}
	}
	return routes
}

// DestPool returns perNode destination addresses inside every node's
// prefix — the address pool traffic generators aim flows at so load
// spreads across all output nodes.
func DestPool(n, perNode int) []netip.Addr {
	pool := make([]netip.Addr, 0, n*perNode)
	for d := 0; d < n; d++ {
		for h := 0; h < perNode; h++ {
			pool = append(pool, NodeOwnedAddr(d, uint16(h)<<8|1))
		}
	}
	return pool
}
