package cluster

import "routebricks/internal/sim"

// Failure injection. A failed node stops polling, stops its transmit
// engines, and black-holes anything arriving on its wires — the behavior
// of a crashed server. Peers learn of the failure immediately (the
// cluster plays the role of the mesh's link-state detection, which the
// paper leaves to standard mechanisms) and their balancers stop choosing
// the dead node as an intermediate; traffic *destined* to its external
// port is undeliverable and is accounted as failure loss.

// FailNode schedules node id to crash at virtual time at.
func (c *Cluster) FailNode(at sim.Time, id int) {
	c.eng.Schedule(at, func() {
		n := c.nodes[id]
		if n.failed {
			return
		}
		n.failed = true
		for _, peer := range c.nodes {
			if peer != n {
				peer.bal.SetDown(id, true)
			}
		}
	})
}

// RecoverNode schedules node id to come back at virtual time at. Its
// rings retain whatever they held at failure; cores and transmit engines
// resume from there.
func (c *Cluster) RecoverNode(at sim.Time, id int) {
	c.eng.Schedule(at, func() {
		n := c.nodes[id]
		if !n.failed {
			return
		}
		n.failed = false
		for _, peer := range c.nodes {
			if peer != n {
				peer.bal.SetDown(id, false)
			}
		}
		for _, co := range n.cores {
			c.eng.After(idleRepoll, co.step)
		}
		for _, e := range n.engines {
			c.eng.After(txService, e.service)
		}
	})
}

// FailureDrops reports packets lost to failed nodes (arrived at a dead
// wire or injected into a dead external port).
func (c *Cluster) FailureDrops() uint64 { return c.failureDrops }
