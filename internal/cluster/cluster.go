// Package cluster assembles RouteBricks clusters: N server nodes (modeled
// by internal/hw), each running a click graph over multi-queue NICs
// (internal/nic), interconnected in a full mesh and switched with Direct
// VLB plus flowlet reordering avoidance (internal/vlb). RB4 — the paper's
// 4-node prototype (§6) — is the default configuration.
//
// The cluster runs as a discrete-event simulation on virtual time:
// packets really flow (real IPv4 headers, real DIR-24-8 lookups, real MAC
// rewriting, real per-queue rings), and time advances according to the
// calibrated hardware model — DMA transfers at 2.56 µs each, cores
// consuming calibrated cycles per batch, NIC-driven kn batching with its
// up-to-12.8 µs wait, and internal links with serialization delay. The
// §6.2 measurements (reordering fraction, per-packet latency) fall out of
// the same mechanisms the paper describes rather than being hard-coded.
//
// Per the paper's implementation (§6.1), a packet's IP header is
// processed only at its input node: the output node is encoded in the
// destination MAC, internal ports steer on it (one receive queue per
// output node), and transit/egress cores move packets between rings
// without touching headers. The cluster adds exactly two elements beyond
// the stock library — vlbIngress and vlbTransit — mirroring RB4's "only
// two new Click elements".
package cluster

import (
	"fmt"
	"net/netip"

	"routebricks/internal/hw"
	"routebricks/internal/lpm"
	"routebricks/internal/pkt"
	"routebricks/internal/sim"
	"routebricks/internal/stats"
	"routebricks/internal/vlb"
)

// Timing constants from §6.2 of the paper.
const (
	// DMATransfer is one DMA transfer (packet or descriptor) at the
	// measured 400 MHz engine speed: 2.56 µs for a 64 B-class transfer.
	DMATransfer = 2560 * sim.Nanosecond
	// RxDMA and TxDMA each cover a descriptor and a packet transfer.
	RxDMA = 2 * DMATransfer
	TxDMA = 2 * DMATransfer
	// LinkPropagation is the internal cable flight time.
	LinkPropagation = 300 * sim.Nanosecond
	// DefaultTxTimeout bounds how long a packet waits for its kn-batch;
	// the paper's estimate of the worst-case batch wait is 12.8 µs.
	DefaultTxTimeout = 13 * sim.Microsecond
	// txService is the NIC transmit engine's polling granularity.
	txService = 1 * sim.Microsecond
	// idleRepoll caps how often an idle core re-polls, a simulation
	// efficiency knob (real Click spins; only latency granularity at
	// idle is affected).
	idleRepoll = 1 * sim.Microsecond
	// maxLinkBacklog is how far ahead a link may be booked before the
	// transmit engine stops draining rings (backpressure).
	maxLinkBacklog = 40 * sim.Microsecond
)

// Config parameterizes a cluster.
type Config struct {
	Nodes int
	Spec  hw.Spec

	KP int // packets per poll
	KN int // descriptors per NIC transaction

	QueueSize int // per-ring capacity (defaults to nic.DefaultQueueSize)

	// LineRateBps is the external port rate R (default 10 Gbps).
	LineRateBps float64
	// LinkBps is the internal mesh link rate (default 10 Gbps: RB4 uses
	// one 10G port per peer).
	LinkBps float64

	// Flowlets enables the reordering-avoidance extension (§6.1); the
	// ReorderTax CPU cost is charged whenever it is on.
	Flowlets bool
	// Delta is the flowlet timeout (default 100 ms).
	Delta sim.Time
	// FitCapBps is the per-path capacity the flowlet fit test uses;
	// defaults to LinkBps.
	FitCapBps float64

	// TxTimeout bounds the NIC batch wait (default 13 µs).
	TxTimeout sim.Time

	// ExtraRoutes pads the FIB beyond the per-node prefixes, stressing
	// the lookup as the paper does with 256K entries. Default 0 (tests);
	// experiments set it large.
	ExtraRoutes int

	Seed int64
}

// RB4Config is the paper's prototype: 4 Nehalem nodes, full mesh,
// Direct VLB with flowlets, tuned batching.
func RB4Config() Config {
	return Config{
		Nodes:       4,
		Spec:        hw.Nehalem(),
		KP:          32,
		KN:          16,
		LineRateBps: 10e9,
		LinkBps:     10e9,
		Flowlets:    true,
	}
}

// Cluster is a running cluster simulation.
type Cluster struct {
	cfg   Config
	eng   *sim.Engine
	table *lpm.LiveTable
	nodes []*node

	// Measurement.
	Meter        *stats.ReorderMeter
	Latency      *stats.Series // µs per delivered packet
	Hops         [4]uint64     // delivery count by VLB phase count (1..3)
	injected     uint64
	arrived      uint64 // accepted by ingress NIC
	ttlDrops     uint64
	failureDrops uint64
	flying       int // packets in DMA or on a link, not yet in any ring

	// DeliveredByInput counts deliveries per input node, for fairness
	// measurements (§3.1 guarantee 2).
	DeliveredByInput []uint64
}

// New builds a cluster and its FIB. Each node d owns 10.d.0.0/16; extra
// filler routes spread over 172.16/12 point at random nodes.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("cluster: need ≥2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Nodes > 256 {
		return nil, fmt.Errorf("cluster: node MAC steering supports ≤256 nodes, got %d", cfg.Nodes)
	}
	if cfg.KP < 1 {
		cfg.KP = 1
	}
	if cfg.KN < 1 {
		cfg.KN = 1
	}
	if cfg.LineRateBps == 0 {
		cfg.LineRateBps = 10e9
	}
	if cfg.LinkBps == 0 {
		cfg.LinkBps = 10e9
	}
	if cfg.Delta == 0 {
		cfg.Delta = vlb.DefaultDelta
	}
	if cfg.FitCapBps == 0 {
		cfg.FitCapBps = cfg.LinkBps
	}
	if cfg.TxTimeout == 0 {
		cfg.TxTimeout = DefaultTxTimeout
	}

	c := &Cluster{
		cfg:     cfg,
		eng:     sim.New(),
		Meter:   stats.NewReorderMeter(),
		Latency: &stats.Series{},
	}
	// The FIB is a live table seeded as one batched commit: node prefixes
	// plus filler routes land as generation 1, and experiment drivers can
	// churn routes mid-simulation through Table().
	routes := append(make([]lpm.Route, 0, cfg.Nodes+cfg.ExtraRoutes), SeedRoutes(cfg.Nodes)...)
	if cfg.ExtraRoutes > 0 {
		for i, r := range lpm.RandomTable(cfg.ExtraRoutes, cfg.Nodes, cfg.Seed+1, false) {
			// Keep filler routes out of the 10/8 block so node prefixes
			// stay authoritative.
			a := r.Prefix.Addr().As4()
			if a[0] == 10 {
				a[0] = 172
			}
			p := netip.PrefixFrom(netip.AddrFrom4(a), r.Prefix.Bits())
			routes = append(routes, lpm.Route{Prefix: p, NextHop: i % cfg.Nodes})
		}
	}
	var err error
	if c.table, err = lpm.NewLiveTable(routes...); err != nil {
		return nil, err
	}

	c.DeliveredByInput = make([]uint64, cfg.Nodes)
	for id := 0; id < cfg.Nodes; id++ {
		c.nodes = append(c.nodes, newNode(c, id))
	}
	for id, n := range c.nodes {
		n.start()
		_ = id
	}
	return c, nil
}

// Engine exposes the virtual clock for experiment drivers.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// splitFactor is how many receive queues each output node's traffic is
// spread over on every internal port. The paper's MAC trick dedicates one
// queue per output port; with more cores than cluster nodes the spare
// queue space is used to shard each output's egress work across
// cores/Nodes queues (the MAC carries flow-hash bits above the node ID),
// which is what keeps egress from concentrating on a few cores.
func (c *Cluster) splitFactor() int {
	s := c.cfg.Spec.Cores() / c.cfg.Nodes
	if s < 1 {
		s = 1
	}
	return s
}

// NodeAddr returns an address owned by node d (for building workloads).
func (c *Cluster) NodeAddr(d int, host uint16) netip.Addr {
	return NodeOwnedAddr(d, host)
}

// Inject presents packet p on node's external wire at virtual time at.
// The packet becomes visible to cores after the receive-side DMA.
func (c *Cluster) Inject(at sim.Time, nodeID int, p *pkt.Packet) {
	n := c.nodes[nodeID]
	c.injected++
	c.eng.Schedule(at, func() {
		p.Arrival = int64(c.eng.Now())
		p.InputPort = nodeID
		c.flying++
		c.eng.After(RxDMA, func() {
			c.flying--
			if n.failed {
				c.failureDrops++
				pkt.DefaultPool.Put(p)
				return
			}
			if n.ext.Deliver(p) {
				c.arrived++
			} else {
				pkt.DefaultPool.Put(p)
			}
		})
	})
}

// Run advances the simulation to the horizon.
func (c *Cluster) Run(horizon sim.Time) { c.eng.Run(horizon) }

// Drain runs until all queues and links empty (or maxExtra elapses).
func (c *Cluster) Drain(maxExtra sim.Time) {
	deadline := c.eng.Now() + maxExtra
	for c.eng.Now() < deadline {
		if c.inFlight() == 0 {
			return
		}
		c.eng.Run(c.eng.Now() + 100*sim.Microsecond)
	}
}

func (c *Cluster) inFlight() int {
	total := c.flying
	for _, n := range c.nodes {
		total += n.queued()
	}
	return total
}

// Totals reports (injected, delivered, rxDrops, txDrops, ttlDrops).
func (c *Cluster) Totals() (injected, delivered, rxDrops, txDrops, ttl uint64) {
	delivered = c.Meter.Packets()
	for _, n := range c.nodes {
		rxDrops += n.ext.RXDrops()
		for _, p := range n.peersIn {
			if p != nil {
				rxDrops += p.RXDrops()
			}
		}
		txDrops += n.txDrops()
	}
	return c.injected, delivered, rxDrops, txDrops, c.ttlDrops
}

// BalancerStats aggregates VLB decision counters across nodes.
func (c *Cluster) BalancerStats() (direct, sticky, spread, newFl, overflow uint64) {
	for _, n := range c.nodes {
		d, s, sp, nf, ov := n.bal.Stats()
		direct += d
		sticky += s
		spread += sp
		newFl += nf
		overflow += ov
	}
	return
}
