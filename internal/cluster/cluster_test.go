package cluster

import (
	"net/netip"
	"testing"

	"routebricks/internal/sim"
	"routebricks/internal/trafficgen"
)

// runRB4 builds an RB4 cluster, applies a workload, runs to completion
// and drains.
func runRB4(t *testing.T, cfg Config, w Workload) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Apply(c)
	c.Run(w.Duration + sim.Millisecond)
	c.Drain(20 * sim.Millisecond)
	return c
}

func TestRB4DeliversEverything(t *testing.T) {
	cfg := RB4Config()
	cfg.Seed = 1
	w := Workload{
		OfferedBpsPerNode: 1e9, // 1 Gbps/node: far below saturation
		Sizes:             trafficgen.Fixed(300),
		ExcludeSelf:       true,
		Duration:          20 * sim.Millisecond,
		Seed:              1,
	}
	c := runRB4(t, cfg, w)
	injected, delivered, rxd, txd, ttl := c.Totals()
	if injected == 0 {
		t.Fatal("no packets injected")
	}
	if delivered != injected {
		t.Fatalf("delivered %d of %d (rxDrops=%d txDrops=%d ttl=%d, inflight=%d)",
			delivered, injected, rxd, txd, ttl, c.inFlight())
	}
}

func TestRB4HopCounts(t *testing.T) {
	cfg := RB4Config()
	cfg.Seed = 2
	w := Workload{
		OfferedBpsPerNode: 2e9,
		Sizes:             trafficgen.AbileneMix(),
		ExcludeSelf:       true,
		Duration:          20 * sim.Millisecond,
		Seed:              2,
	}
	c := runRB4(t, cfg, w)
	// Every packet visits 2 (direct) or 3 (load-balanced) nodes; none
	// should be hairpins (ExcludeSelf) and none should exceed 3.
	if c.Hops[0] != 0 || c.Hops[1] != 0 {
		t.Fatalf("impossible hop counts: %v", c.Hops)
	}
	if c.Hops[2] == 0 {
		t.Fatal("no direct deliveries despite a near-uniform matrix")
	}
	_, _, _, _, _ = c.Totals()
}

// Under a near-uniform matrix at moderate load, Direct VLB routes the
// vast majority of traffic directly (the "no processing overhead" regime
// of §3.2).
func TestRB4UniformMostlyDirect(t *testing.T) {
	cfg := RB4Config()
	cfg.Seed = 3
	w := Workload{
		OfferedBpsPerNode: 2e9,
		Sizes:             trafficgen.Fixed(1500),
		ExcludeSelf:       true,
		Duration:          20 * sim.Millisecond,
		Seed:              3,
	}
	c := runRB4(t, cfg, w)
	direct := float64(c.Hops[2])
	total := float64(c.Hops[2] + c.Hops[3])
	if total == 0 {
		t.Fatal("nothing delivered")
	}
	if f := direct / total; f < 0.9 {
		t.Fatalf("direct fraction = %.3f, want ≥0.9 under uniform load", f)
	}
}

// Per-server latency: the paper estimates ~24 µs per server, 47.6-66.4 µs
// through 2-3 hops (§6.2). The simulation reproduces the same mechanisms
// (4 DMA transfers, batch wait, processing), so the mean must land in the
// paper's band.
func TestRB4LatencyBand(t *testing.T) {
	cfg := RB4Config()
	cfg.Seed = 4
	w := Workload{
		// 1.5 Gbps/node of 64 B: comfortably below the ~3 Gbps/node RB4
		// saturation point, so queueing stays modest and the DMA + batch
		// mechanics dominate latency, as in the paper's estimate.
		OfferedBpsPerNode: 1.5e9,
		Sizes:             trafficgen.Fixed(64),
		ExcludeSelf:       true,
		Duration:          10 * sim.Millisecond,
		Seed:              4,
	}
	c := runRB4(t, cfg, w)
	mean := c.Latency.Mean()
	if mean < 20 || mean > 90 {
		t.Fatalf("mean latency = %.1f µs, want within the paper's 2-3 hop band (≈48-66 µs ±)", mean)
	}
	p99 := c.Latency.Quantile(0.99)
	if p99 > 200 {
		t.Fatalf("p99 latency = %.1f µs, absurdly high for an unloaded cluster", p99)
	}
}

// In-order delivery with flowlets on a quiet cluster: reordering must be
// (near) zero.
func TestRB4ReorderingQuietCluster(t *testing.T) {
	cfg := RB4Config()
	cfg.Seed = 5
	w := Workload{
		OfferedBpsPerNode: 1e9,
		Sizes:             trafficgen.AbileneMix(),
		ExcludeSelf:       true,
		Duration:          20 * sim.Millisecond,
		Seed:              5,
	}
	c := runRB4(t, cfg, w)
	if f := c.Meter.Fraction(); f > 0.002 {
		t.Fatalf("reordering = %.4f%% on a quiet cluster", 100*f)
	}
}

// The §6.2 reordering experiment: the whole trace between one input and
// one output port at a rate exceeding any single path, with and without
// the flowlet extension. Flowlets must cut reordering by a large factor.
func TestRB4ReorderingFlowletsVsPlain(t *testing.T) {
	run := func(flowlets bool) float64 {
		cfg := RB4Config()
		cfg.Seed = 6
		cfg.Flowlets = flowlets
		// Pin the flowlet fit capacity near the per-path share of the
		// offered load so that most flowlets fit one path but the largest
		// occasionally overflow and fall back to per-packet balancing —
		// the §6.2 situation ("more traffic than could fit in any single
		// path"), which leaves a small nonzero reordering residue.
		cfg.FitCapBps = 3e9
		w := Workload{
			OfferedBpsPerNode: 8e9,
			Sizes:             trafficgen.AbileneMix(),
			InputNodes:        []int{0},
			OutputNodes:       []int{3},
			Duration:          25 * sim.Millisecond,
			Seed:              6,
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.Apply(c)
		c.Run(w.Duration + sim.Millisecond)
		c.Drain(20 * sim.Millisecond)
		if c.Meter.Packets() == 0 {
			t.Fatal("nothing delivered")
		}
		return c.Meter.Fraction()
	}
	with := run(true)
	without := run(false)
	t.Logf("reordering: flowlets=%.4f%% plain=%.4f%%", 100*with, 100*without)
	if without == 0 {
		t.Fatal("plain Direct VLB produced no reordering; experiment not stressing paths")
	}
	if with >= without/3 {
		t.Fatalf("flowlets (%.4f%%) did not materially beat plain VLB (%.4f%%)",
			100*with, 100*without)
	}
}

// Conservation under overload: injected = delivered + drops + in-flight
// leftovers; nothing is created or duplicated.
func TestRB4ConservationUnderOverload(t *testing.T) {
	cfg := RB4Config()
	cfg.Seed = 7
	cfg.QueueSize = 64
	w := Workload{
		OfferedBpsPerNode: 9.5e9, // near line rate at 64 B: overloads the CPUs
		Sizes:             trafficgen.Fixed(64),
		ExcludeSelf:       true,
		Duration:          3 * sim.Millisecond,
		Seed:              7,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Apply(c)
	c.Run(w.Duration + sim.Millisecond)
	c.Drain(50 * sim.Millisecond)
	injected, delivered, rxd, txd, ttl := c.Totals()
	accounted := delivered + rxd + txd + ttl + uint64(c.inFlight())
	if accounted != injected {
		t.Fatalf("conservation broken: injected=%d accounted=%d (delivered=%d rx=%d tx=%d ttl=%d inflight=%d)",
			injected, accounted, delivered, rxd, txd, ttl, c.inFlight())
	}
	if rxd+txd == 0 {
		t.Log("note: no drops under overload — queues may be absorbing; acceptable but unexpected")
	}
}

// TTL-expired packets are dropped at the ingress node and counted.
func TestRB4TTLExpiry(t *testing.T) {
	cfg := RB4Config()
	cfg.Seed = 8
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := trafficgen.New(trafficgen.Config{
		Seed:     8,
		Sizes:    trafficgen.Fixed(64),
		DstAddrs: []netip.Addr{c.NodeAddr(2, 1), c.NodeAddr(3, 1)},
	})
	for i := 0; i < 100; i++ {
		p := src.Next()
		p.IPv4().SetTTL(1)
		p.IPv4().UpdateChecksum()
		c.Inject(sim.Time(i)*sim.Microsecond, 0, p)
	}
	c.Run(sim.Millisecond)
	c.Drain(10 * sim.Millisecond)
	injected, delivered, _, _, ttl := c.Totals()
	if ttl != injected {
		t.Fatalf("ttl drops = %d, want %d (delivered %d)", ttl, injected, delivered)
	}
}

// Determinism: identical seeds give identical measurements.
func TestRB4Determinism(t *testing.T) {
	run := func() (uint64, float64) {
		cfg := RB4Config()
		cfg.Seed = 9
		w := Workload{
			OfferedBpsPerNode: 3e9,
			Sizes:             trafficgen.AbileneMix(),
			ExcludeSelf:       true,
			Duration:          5 * sim.Millisecond,
			Seed:              9,
		}
		c := runRB4(t, cfg, w)
		return c.Meter.Packets(), c.Latency.Mean()
	}
	p1, l1 := run()
	p2, l2 := run()
	if p1 != p2 || l1 != l2 {
		t.Fatalf("nondeterministic: (%d,%g) vs (%d,%g)", p1, l1, p2, l2)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 1, Spec: RB4Config().Spec}); err == nil {
		t.Error("1-node cluster accepted")
	}
	if _, err := New(Config{Nodes: 300, Spec: RB4Config().Spec}); err == nil {
		t.Error("300-node cluster accepted (MAC steering limit)")
	}
}

func TestNodeAddrMapsToFIB(t *testing.T) {
	c, err := New(RB4Config())
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		a := c.NodeAddr(d, 0x1234)
		b := a.As4()
		if b[0] != 10 || int(b[1]) != d {
			t.Fatalf("NodeAddr(%d) = %v", d, a)
		}
	}
}
