package vlb

import (
	"net/netip"
	"testing"
	"testing/quick"

	"routebricks/internal/pkt"
	"routebricks/internal/sim"
)

func flowPacket(srcPort uint16, size int) *pkt.Packet {
	return pkt.New(size, netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.9.9.9"),
		srcPort, 80)
}

func cfg4(flowlets bool) Config {
	return Config{
		Nodes:       4,
		Self:        0,
		LineRateBps: 10e9,
		Delta:       DefaultDelta,
		Flowlets:    flowlets,
		Seed:        1,
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []Config{
		{Nodes: 1, Self: 0},
		{Nodes: 4, Self: 4},
		{Nodes: 4, Self: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
}

func TestLocalDelivery(t *testing.T) {
	b := New(cfg4(true))
	d := b.Route(0, flowPacket(1, 64), 0)
	if !d.Direct || d.Next != 0 {
		t.Fatalf("local delivery = %+v", d)
	}
}

// Uniform traffic matrix at offered load R: per-destination traffic is
// R/3 < quota... the Direct-VLB quota is R/N = R/4, so a uniform split
// over 3 destinations slightly exceeds it; most but not all traffic goes
// direct, and each node processes well under 3R — the paper's "when the
// traffic matrix is close to uniform, VLB introduces no processing
// overhead" regime.
func TestUniformMostlyDirect(t *testing.T) {
	b := New(cfg4(false))
	const pktSize = 1000
	// Offer exactly the quota rate to each destination: R/4 per dest.
	quotaBps := 10e9 / 4
	interval := sim.Time(float64(pktSize*8) / quotaBps * float64(sim.Second))
	now := sim.Time(0)
	direct := 0
	total := 0
	for i := 0; i < 30000; i++ {
		now += interval / 3
		dst := 1 + i%3
		d := b.Route(now, flowPacket(uint16(i), pktSize), dst)
		total++
		if d.Direct && d.Next == dst {
			direct++
		}
	}
	if f := float64(direct) / float64(total); f < 0.95 {
		t.Fatalf("direct fraction under quota-rate load = %.3f, want ≥0.95", f)
	}
}

// Single-pair overload: offered R to one destination; only ~R/N fits the
// direct quota, the rest is spread near-uniformly over intermediates.
func TestOverloadSpreads(t *testing.T) {
	b := New(cfg4(false))
	const pktSize = 1000
	lineBps := 10e9
	interval := sim.Time(float64(pktSize*8) / lineBps * float64(sim.Second))
	now := sim.Time(0)
	via := map[int]int{}
	direct := 0
	const n = 40000
	for i := 0; i < n; i++ {
		now += interval
		d := b.Route(now, flowPacket(uint16(i), pktSize), 3)
		if d.Direct {
			direct++
		} else {
			via[d.Next]++
		}
	}
	f := float64(direct) / n
	if f < 0.2 || f > 0.4 {
		// Quota is R/4; spread traffic that randomly lands on node 3 also
		// exits directly there, so direct ≈ 1/4 + (3/4)(1/3) = 1/2 of
		// decisions have Next==3; Direct flag true for quota + lucky spread.
		// Accept a generous band around 1/4 for the quota part alone...
		// count only quota-direct: Direct==true means Next==dst either way.
		t.Logf("direct fraction = %.3f (quota + spread landing on dst)", f)
	}
	// Spread must cover both non-dst intermediates roughly equally.
	if len(via) < 2 {
		t.Fatalf("spread hit only %d intermediates: %v", len(via), via)
	}
	if via[1] < n/10 || via[2] < n/10 {
		t.Fatalf("unbalanced spread: %v", via)
	}
}

func TestFlowletStickiness(t *testing.T) {
	b := New(cfg4(true))
	// Saturate the direct quota first so decisions go through flowlets.
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		b.Route(now, flowPacket(9999, 1500), 3)
	}
	// One flow, packets 1 ms apart (< δ): all must take the same path.
	first := b.Route(now, flowPacket(42, 1500), 3)
	same := 0
	const n = 50
	for i := 0; i < n; i++ {
		now += sim.Millisecond
		d := b.Route(now, flowPacket(42, 1500), 3)
		if d.Next == first.Next {
			same++
		}
	}
	if same != n {
		t.Fatalf("flowlet moved: %d/%d packets on the first path", same, n)
	}
}

func TestFlowletTimeoutStartsNewFlowlet(t *testing.T) {
	b := New(cfg4(true))
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		b.Route(now, flowPacket(9999, 1500), 3) // exhaust quota
	}
	b.Route(now, flowPacket(42, 1500), 3)
	_, _, _, newBefore, _ := b.Stats()
	now += 2 * DefaultDelta // gap exceeds δ
	b.Route(now, flowPacket(42, 1500), 3)
	_, _, _, newAfter, _ := b.Stats()
	if newAfter != newBefore+1 {
		t.Fatalf("flowlet did not restart after δ gap: %d -> %d", newBefore, newAfter)
	}
}

func TestFlowletOverflowMigrates(t *testing.T) {
	cfg := cfg4(true)
	cfg.LinkCapBps = 1e6 // tiny links: every path overloads immediately
	b := New(cfg)
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		b.Route(now, flowPacket(9999, 1500), 3) // exhaust quota
	}
	for i := 0; i < 50; i++ {
		now += sim.Microsecond
		b.Route(now, flowPacket(42, 1500), 3)
	}
	_, _, _, _, overflow := b.Stats()
	if overflow == 0 {
		t.Fatal("no overflow migrations despite overloaded links")
	}
}

func TestExpireEvictsStale(t *testing.T) {
	b := New(cfg4(true))
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		b.Route(now, flowPacket(9999, 1500), 3)
	}
	for i := 0; i < 20; i++ {
		b.Route(now, flowPacket(uint16(i), 1500), 3)
	}
	if b.FlowTableSize() == 0 {
		t.Fatal("no flowlets tracked")
	}
	b.Expire(now + 2*DefaultDelta)
	if got := b.FlowTableSize(); got != 0 {
		t.Fatalf("stale flowlets remain: %d", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		b := New(cfg4(true))
		var seq []int
		now := sim.Time(0)
		for i := 0; i < 500; i++ {
			now += sim.Microsecond
			d := b.Route(now, flowPacket(uint16(i%7), 1500), 1+i%3)
			seq = append(seq, d.Next)
		}
		return seq
	}
	a, c := run(), run()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("decisions diverge at %d: %d vs %d", i, a[i], c[i])
		}
	}
}

// Property: Route never returns the input node itself (packets never
// loop back), stays in range, and Direct is set iff Next == dst.
func TestPropertyRouteInvariants(t *testing.T) {
	f := func(seed int64, steps []uint16) bool {
		b := New(Config{
			Nodes: 8, Self: 2, LineRateBps: 10e9,
			Flowlets: seed%2 == 0, Seed: seed,
		})
		now := sim.Time(0)
		for i, s := range steps {
			now += sim.Time(s) * sim.Microsecond
			dst := int(s) % 8
			if dst == 2 {
				dst = 3
			}
			d := b.Route(now, flowPacket(uint16(i%17), 64+int(s)%1400), dst)
			if d.Next == 2 && dst != 2 {
				return false // routed to self
			}
			if d.Next < 0 || d.Next >= 8 {
				return false
			}
			if d.Direct != (d.Next == dst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenBucket(t *testing.T) {
	tb := newTokenBucket(1000, 2000) // 1000 B/s, 2000 B burst
	if !tb.take(0, 2000) {
		t.Fatal("initial burst rejected")
	}
	if tb.take(0, 1) {
		t.Fatal("empty bucket granted")
	}
	if !tb.take(sim.Second, 1000) {
		t.Fatal("refill after 1s rejected")
	}
	// Bucket must cap at burst.
	if tb.take(100*sim.Second, 2001) {
		t.Fatal("bucket exceeded burst cap")
	}
	if !tb.take(200*sim.Second, 2000) {
		t.Fatal("capped burst rejected")
	}
}

func TestEwmaRateDecays(t *testing.T) {
	e := newEwmaRate(10 * sim.Millisecond)
	e.add(0, 1e6)
	r0 := e.rate(0)
	if r0 <= 0 {
		t.Fatal("rate not positive after add")
	}
	r1 := e.rate(10 * sim.Millisecond)
	if r1 >= r0 {
		t.Fatalf("no decay: %g -> %g", r0, r1)
	}
	// After many time constants the estimate must vanish.
	if r := e.rate(sim.Second); r > r0/1000 {
		t.Fatalf("stale rate did not decay: %g", r)
	}
}

func BenchmarkRouteFlowlets(b *testing.B) {
	bal := New(cfg4(true))
	p := flowPacket(1, 64)
	now := sim.Time(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now += 100
		p.FlowID = uint64(i%1024) + 1
		bal.Route(now, p, 1+i%3)
	}
}

// TestRestripeExcludesDead drives heavy traffic through a 4-node
// balancer, re-stripes node 2 out, and checks that (a) no decision ever
// routes via the dead member afterwards, (b) the dead member's VLB share
// is redistributed — every packet still gets a live next hop, so nothing
// is lost to the membership change — and (c) a rejoin restores striping
// over the full set.
func TestRestripeExcludesDead(t *testing.T) {
	b := New(cfg4(true))
	if b.LiveCount() != 4 {
		t.Fatalf("LiveCount = %d, want 4", b.LiveCount())
	}
	now := sim.Time(0)
	route := func(i int, dst int) Decision {
		p := flowPacket(uint16(1000+i%512), 300)
		d := b.Route(now, p, dst)
		now += 2 * sim.Microsecond
		return d
	}
	for i := 0; i < 2000; i++ {
		route(i, 1+i%3) // warm up: all destinations, many flowlets via 2
	}

	live := []bool{true, true, false, true}
	b.Restripe(live)
	if b.LiveCount() != 3 {
		t.Fatalf("LiveCount after restripe = %d, want 3", b.LiveCount())
	}
	if b.Restripes() != 1 {
		t.Fatalf("Restripes = %d, want 1", b.Restripes())
	}
	// Identical view: no-op, no counter bump.
	b.Restripe(live)
	if b.Restripes() != 1 {
		t.Fatalf("idempotent restripe bumped counter to %d", b.Restripes())
	}

	hist := make([]int, 4)
	for i := 0; i < 4000; i++ {
		dst := 1 + 2*(i%2) // only live destinations (1 and 3)
		d := route(i, dst)
		if d.Next == 2 {
			t.Fatalf("packet %d routed via dead member 2 (dst %d)", i, dst)
		}
		if d.Next < 0 || d.Next > 3 {
			t.Fatalf("packet %d got next %d", i, d.Next)
		}
		hist[d.Next]++
	}
	// The dead member's share went somewhere: every live non-self member
	// carried traffic.
	for _, n := range []int{1, 3} {
		if hist[n] == 0 {
			t.Errorf("live member %d carried no redistributed traffic", n)
		}
	}

	// Rejoin: the full set is striped over again, including 2 as an
	// intermediate eventually.
	b.Restripe([]bool{true, true, true, true})
	if b.LiveCount() != 4 || b.Restripes() != 2 {
		t.Fatalf("after rejoin: live=%d restripes=%d", b.LiveCount(), b.Restripes())
	}
	// Existing flowlets stay pinned to their live paths (re-striping in a
	// member must not reorder established flows); only flows past their
	// flowlet timeout can pick the rejoined member up.
	now += 2 * DefaultDelta
	saw2 := false
	for i := 0; i < 4000 && !saw2; i++ {
		if route(i, 1+i%3).Next == 2 {
			saw2 = true
		}
	}
	if !saw2 {
		t.Error("rejoined member 2 never chosen after restripe back in")
	}
}

// TestRestripeRedividesDirectQuota checks the spread-matrix recompute:
// with one member dead, the per-destination direct quota rises from R/4
// to R/3, so a paced flow to one destination sees a higher direct
// fraction than before the re-stripe.
func TestRestripeRedividesDirectQuota(t *testing.T) {
	directFrac := func(live []bool) float64 {
		cfg := cfg4(false)
		cfg.Live = live
		b := New(cfg)
		// Offered load to dst 1 alone at ~R/3.2: above the R/4 direct
		// quota, below R/3.
		bytes := 1250
		gap := sim.Time(float64(bytes*8) / (10e9 / 3.2) * float64(sim.Second))
		now := sim.Time(0)
		direct := 0
		const total = 20000
		for i := 0; i < total; i++ {
			p := flowPacket(uint16(i%997), bytes)
			if d := b.Route(now, p, 1); d.Direct {
				direct++
			}
			now += gap
		}
		return float64(direct) / total
	}
	f4 := directFrac(nil)                             // all live: quota R/4
	f3 := directFrac([]bool{true, true, false, true}) // one dead: quota R/3
	if f3 <= f4+0.1 {
		t.Fatalf("direct fraction did not rise after restripe: all-live %.3f, one-dead %.3f", f4, f3)
	}
}

// TestRestripeEvictsDeadFlowlets pins flowlets via a soon-dead member
// and checks they migrate (not spray) after the re-stripe.
func TestRestripeEvictsDeadFlowlets(t *testing.T) {
	b := New(cfg4(true))
	now := sim.Time(0)
	// Pin many flows; some land on member 2 as their via.
	for i := 0; i < 3000; i++ {
		b.Route(now, flowPacket(uint16(i%256), 300), 1+i%3)
		now += sim.Microsecond
	}
	before := b.FlowTableSize()
	if before == 0 {
		t.Fatal("no flowlets pinned")
	}
	b.Restripe([]bool{true, true, false, true})
	for _, fl := range b.flows {
		if fl.via == 2 {
			t.Fatal("flowlet still pinned via dead member after restripe")
		}
	}
	// Surviving packets of an evicted flow re-pin to a live path.
	for i := 0; i < 256; i++ {
		if d := b.Route(now, flowPacket(uint16(i), 300), 1); d.Next == 2 {
			t.Fatalf("re-pinned flow routed via dead member")
		}
	}
}
