// Package vlb implements the distributed switching layer of RouteBricks:
// Valiant load balancing over a full mesh, the "Direct VLB" optimization
// (Zhang-Shen & McKeown) that routes up to R/N of each input's traffic
// straight to its output node, and the Flare-style flowlet mechanism RB4
// uses to avoid reordering (§3.2, §6.1 of the paper).
//
// The Balancer runs at a packet's input node and answers one question:
// which cluster node should this packet go to next? Three answer sources,
// in priority order:
//
//  1. Direct quota: traffic to output node D is sent directly to D at up
//     to R/N (token bucket per destination) — phase 1 skipped entirely.
//  2. Flowlet stickiness: packets of the same flow arriving within δ of
//     each other reuse the previous intermediate, provided that link is
//     not overloaded — this keeps same-flow packets on one path, which
//     is what prevents reordering.
//  3. Classic VLB: pick a uniformly random intermediate node.
package vlb

import (
	"fmt"
	"math/rand"

	"routebricks/internal/pkt"
	"routebricks/internal/sim"
)

// Config parameterizes a Balancer.
type Config struct {
	Nodes int // cluster size N
	Self  int // this node's index

	// LineRateBps is the external port rate R; the direct quota is R/N
	// per destination (Direct VLB).
	LineRateBps float64

	// LinkCapBps is the capacity of one internal mesh link. A flowlet
	// only sticks to its path while the path's estimated utilization
	// stays under UtilCap.
	LinkCapBps float64

	// Delta is the flowlet timeout: same-flow packets spaced less than
	// Delta apart are kept on one path (§6.1: δ = 100 ms works well).
	Delta sim.Time

	// Flowlets enables reordering avoidance; with it off the balancer is
	// plain Direct VLB, the configuration whose measured reordering the
	// paper reports as 5.5%.
	Flowlets bool

	// UtilCap is the utilization threshold above which a flowlet no
	// longer "fits" its path (default 0.95).
	UtilCap float64

	// Seed makes intermediate selection deterministic.
	Seed int64

	// Live, when non-nil, is the initial live-member view (len Nodes):
	// the balancer stripes only over members marked true, as if Restripe
	// had been called right after construction. Self is always live.
	Live []bool
}

// DefaultDelta is the paper's flowlet timeout.
const DefaultDelta = 100 * sim.Millisecond

// Decision reports where a packet goes next.
type Decision struct {
	Next   int  // next cluster node
	Direct bool // true when Next is the packet's output node
}

// Balancer makes VLB routing decisions for one input node. Not safe for
// concurrent use: in the cluster simulation each node's input path is
// owned by that node's cores, which serialize through the node's event
// stream.
type Balancer struct {
	cfg Config
	rng *rand.Rand

	direct   []tokenBucket // per-destination direct quota
	linkUtil []ewmaRate    // per-next-node utilization estimate
	flows    map[uint64]*flowlet
	down     []bool // nodes known unreachable (failure injection / re-striping)

	liveCount  int    // members currently striped over (Nodes minus down)
	nRestripes uint64 // Restripe calls that changed the live view

	// counters
	nDirect, nSticky, nSpread, nNewFlowlet, nOverflow uint64
}

type flowlet struct {
	via  int
	last sim.Time
}

// New builds a balancer. It panics on nonsensical configuration, since a
// malformed balancer silently corrupts throughput accounting.
func New(cfg Config) *Balancer {
	if cfg.Nodes < 2 {
		panic(fmt.Sprintf("vlb: need ≥2 nodes, got %d", cfg.Nodes))
	}
	if cfg.Self < 0 || cfg.Self >= cfg.Nodes {
		panic(fmt.Sprintf("vlb: self %d out of range", cfg.Self))
	}
	if cfg.UtilCap == 0 {
		cfg.UtilCap = 0.95
	}
	if cfg.Delta == 0 {
		cfg.Delta = DefaultDelta
	}
	if cfg.LinkCapBps == 0 && cfg.Nodes > 0 {
		// Full-mesh Direct VLB internal link provisioning: 2R/N (§3.2).
		cfg.LinkCapBps = 2 * cfg.LineRateBps / float64(cfg.Nodes)
	}
	b := &Balancer{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.Self)<<32)),
		flows: make(map[uint64]*flowlet),
		down:  make([]bool, cfg.Nodes),
	}
	// Per-destination direct quota R/N (bytes/sec) with a two-frame burst:
	// the quota is a rate bound, not a credit store, so the bucket stays
	// shallow.
	quota := cfg.LineRateBps / float64(cfg.Nodes) / 8
	for i := 0; i < cfg.Nodes; i++ {
		b.direct = append(b.direct, newTokenBucket(quota, 2*pkt.MaxSize))
		b.linkUtil = append(b.linkUtil, newEwmaRate(10*sim.Millisecond))
	}
	b.liveCount = cfg.Nodes
	if cfg.Live != nil {
		b.Restripe(cfg.Live)
		b.nRestripes = 0 // construction, not a membership change
	}
	return b
}

// Restripe installs a new live-member view and recomputes the VLB spread
// matrix against it: dead members are excluded as destinations'
// intermediates and flowlet paths, the per-destination direct quota is
// re-divided as R/N_live (a dead member's share of the direct budget is
// redistributed over the survivors), and flowlets pinned to a dead via
// are evicted so their next packet re-pins to a live path instead of
// silently dying in a black hole. live must have len Nodes; self is
// always treated as live. Like Route, Restripe is single-threaded with
// respect to the balancer's owner — the mesh calls it under the drain
// barrier, with no packets in flight through this balancer.
func (b *Balancer) Restripe(live []bool) {
	if len(live) != b.cfg.Nodes {
		panic(fmt.Sprintf("vlb: restripe with %d members, balancer has %d", len(live), b.cfg.Nodes))
	}
	n := 0
	changed := false
	for i := range live {
		isLive := live[i] || i == b.cfg.Self
		if isLive {
			n++
		}
		if b.down[i] == isLive { // down is the inverse of live
			b.down[i] = !isLive
			changed = true
		}
	}
	if n < 1 {
		n = 1
	}
	if !changed && n == b.liveCount {
		return
	}
	b.liveCount = n
	b.nRestripes++
	// Re-divide the direct budget over the survivors. Buckets keep their
	// current fill (a rate bound, not a credit store, so no burst is
	// manufactured by the change).
	quota := b.cfg.LineRateBps / float64(n) / 8
	for i := range b.direct {
		b.direct[i].setRate(quota)
	}
	// Evict flowlets whose pinned path is gone; survivors keep their
	// paths, so re-striping does not reorder flows that never touched
	// the dead member.
	for k, fl := range b.flows {
		if b.down[fl.via] {
			delete(b.flows, k)
		}
	}
}

// LiveCount reports how many members the balancer currently stripes
// over (including self).
func (b *Balancer) LiveCount() int { return b.liveCount }

// Restripes reports how many Restripe calls changed the live view.
func (b *Balancer) Restripes() uint64 { return b.nRestripes }

// Route decides the next node for packet p, which entered the cluster at
// this node and must exit at node dst. now is the virtual time.
func (b *Balancer) Route(now sim.Time, p *pkt.Packet, dst int) Decision {
	if dst == b.cfg.Self {
		// Local delivery: no switching decision to make.
		return Decision{Next: dst, Direct: true}
	}
	bytes := float64(p.Len())

	// 1. Flowlet stickiness: an active flowlet keeps its path — direct or
	// via an intermediate — while the path fits and its next node is up.
	// Reordering comes from a flow changing paths, so this check precedes
	// the direct quota.
	if b.cfg.Flowlets {
		key := p.FlowHash()
		if fl, ok := b.flows[key]; ok && now-fl.last < b.cfg.Delta {
			if !b.down[fl.via] && b.linkUtil[fl.via].rate(now)*8 < b.cfg.UtilCap*b.cfg.LinkCapBps {
				fl.last = now
				b.nSticky++
				b.linkUtil[fl.via].add(now, bytes)
				return Decision{Next: fl.via, Direct: fl.via == dst}
			}
			// Path overloaded: this flowlet migrates once, to whatever the
			// quota/spread logic below picks, rather than spraying.
			b.nOverflow++
		}
	}

	// 2. Direct VLB quota: up to R/N of the traffic to dst goes straight
	// there, skipping phase 1.
	if b.direct[dst].take(now, bytes) {
		b.nDirect++
		b.linkUtil[dst].add(now, bytes)
		b.pin(now, p, dst)
		return Decision{Next: dst, Direct: true}
	}

	// 3. Classic VLB spread to a random intermediate.
	via := b.pickIntermediate()
	b.nSpread++
	b.linkUtil[via].add(now, bytes)
	b.pin(now, p, via)
	return Decision{Next: via, Direct: via == dst}
}

// pin records the path chosen for a flow so subsequent packets within δ
// stick to it.
func (b *Balancer) pin(now sim.Time, p *pkt.Packet, via int) {
	if !b.cfg.Flowlets {
		return
	}
	b.flows[p.FlowHash()] = &flowlet{via: via, last: now}
	b.nNewFlowlet++
}

// pickIntermediate draws a uniformly random live node other than self.
// The destination is a legal intermediate (phase-1 traffic that happens
// to land on D just exits there), matching classic VLB's uniform spread.
// If every other node is down the self-exclusion is hopeless; the last
// candidate is returned and the packet dies downstream, which the
// cluster accounts as a failure drop.
func (b *Balancer) pickIntermediate() int {
	via := b.cfg.Self
	for attempt := 0; attempt < 4*b.cfg.Nodes; attempt++ {
		v := b.rng.Intn(b.cfg.Nodes - 1)
		if v >= b.cfg.Self {
			v++
		}
		via = v
		if !b.down[v] {
			return v
		}
	}
	return via
}

// SetDown marks a node (un)reachable for future routing decisions — the
// hook failure injection uses. Unlike Restripe it does not re-divide the
// direct quota; the mesh's membership layer should use Restripe, which
// also accounts the change. Marking self down is ignored.
func (b *Balancer) SetDown(node int, down bool) {
	if node >= 0 && node < len(b.down) && node != b.cfg.Self {
		b.down[node] = down
	}
}

// Stats reports decision counts: direct-quota hits, flowlet-sticky
// reuses, classic spreads, new flowlets, and overloaded-path migrations.
func (b *Balancer) Stats() (direct, sticky, spread, newFlowlets, overflow uint64) {
	return b.nDirect, b.nSticky, b.nSpread, b.nNewFlowlet, b.nOverflow
}

// FlowTableSize reports the number of tracked flowlets (stale entries
// are evicted lazily by Expire).
func (b *Balancer) FlowTableSize() int { return len(b.flows) }

// Expire drops flowlet entries older than δ; the cluster calls it
// periodically so the table tracks live flows only.
func (b *Balancer) Expire(now sim.Time) {
	for k, fl := range b.flows {
		if now-fl.last >= b.cfg.Delta {
			delete(b.flows, k)
		}
	}
}

// tokenBucket meters the Direct-VLB per-destination quota.
type tokenBucket struct {
	rate   float64 // bytes per second
	burst  float64 // bytes
	tokens float64
	last   sim.Time
}

func newTokenBucket(rateBytesPerSec, burst float64) tokenBucket {
	if burst < pkt.MaxSize {
		burst = pkt.MaxSize // always admit at least one full frame
	}
	return tokenBucket{rate: rateBytesPerSec, burst: burst, tokens: burst}
}

// setRate changes the refill rate in place, keeping the current fill —
// the re-striping path re-divides the direct budget without
// manufacturing a burst.
func (t *tokenBucket) setRate(rateBytesPerSec float64) {
	t.rate = rateBytesPerSec
}

func (t *tokenBucket) take(now sim.Time, bytes float64) bool {
	dt := (now - t.last).Seconds()
	if dt > 0 {
		t.tokens += dt * t.rate
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
		t.last = now
	}
	if t.tokens >= bytes {
		t.tokens -= bytes
		return true
	}
	return false
}

// ewmaRate estimates a byte rate with exponential decay, giving the
// "link utilization" signal the flowlet fit test needs.
type ewmaRate struct {
	tau   sim.Time
	value float64 // bytes per second
	last  sim.Time
}

func newEwmaRate(tau sim.Time) ewmaRate { return ewmaRate{tau: tau} }

func (e *ewmaRate) add(now sim.Time, bytes float64) {
	e.decay(now)
	// An impulse of B bytes smeared over tau contributes B/tau rate.
	e.value += bytes / e.tau.Seconds()
}

func (e *ewmaRate) rate(now sim.Time) float64 {
	e.decay(now)
	return e.value
}

func (e *ewmaRate) decay(now sim.Time) {
	if now <= e.last {
		return
	}
	dt := (now - e.last).Seconds()
	e.last = now
	// First-order decay: value *= exp(-dt/tau), approximated stably.
	k := dt / e.tau.Seconds()
	if k > 30 {
		e.value = 0
		return
	}
	// exp(-k) via the stable recurrence (1+k/32)^-32 ≈ exp(-k).
	f := 1 + k/32
	f = f * f * f * f
	f = f * f * f * f
	f = f * f
	e.value /= f
}
