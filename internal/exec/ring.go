// Package exec is the real-core execution layer: the lock-free handoff
// rings that carry packets between pipeline stages running on different
// CPU cores. The paper's §4.2 comparison of core allocations — parallel
// (each core runs the whole pipeline on its own queue) versus pipelined
// (the pipeline is cut into stages, one per core) — turns on exactly the
// cost these rings embody: every inter-core handoff is cache-coherence
// traffic that the parallel allocation never pays. internal/click builds
// placement plans on top of this package; internal/nic models NIC
// descriptor rings with the same SPSC discipline on the device boundary.
package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"routebricks/internal/pkt"
)

// Ring is a fixed-capacity single-producer/single-consumer packet ring
// for inter-core handoff. It differs from a NIC descriptor ring
// (internal/nic) in one hot-path particular: each side caches its last
// snapshot of the other side's index, so in steady state a push or pop
// touches only cache lines owned by its own core — the remote index is
// re-read only when the cached view says the ring is full (producer) or
// empty (consumer). Head and tail live on separate cache lines so the
// two cores never false-share.
//
// Exactly one goroutine may push and one may pop. Violating that is a
// programming error: no memory is corrupted (indices are atomics), but
// packets can be dropped or duplicated. Tests enforce the discipline.
type Ring struct {
	buf  []*pkt.Packet
	mask uint64
	_    [40]byte
	// Producer-owned line: tail is published to the consumer; headCache
	// is the producer's private snapshot of head.
	tail      atomic.Uint64
	headCache uint64
	_         [48]byte
	// Consumer-owned line: head is published to the producer; tailCache
	// is the consumer's private snapshot of tail.
	head      atomic.Uint64
	tailCache uint64
	_         [48]byte
	rejected  atomic.Uint64

	// cmu serializes the consumer side for rings that opt into shared
	// consumption via PopBatchShared — the work-stealing protocol, where
	// an idle sibling core drains this ring alongside its owner. The
	// SPSC paths never touch it, so plans without stealing pay nothing.
	cmu sync.Mutex
}

// NewRing creates a handoff ring with capacity rounded up to a power of
// two (minimum 2).
func NewRing(capacity int) *Ring {
	if capacity < 2 {
		capacity = 2
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &Ring{buf: make([]*pkt.Packet, c), mask: uint64(c - 1)}
}

// Cap reports the usable capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len reports the current occupancy (approximate under concurrency).
func (r *Ring) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Rejected reports how many packet pushes the ring turned away because
// it was full. A rejected packet stays with the caller (who may retry,
// reroute, or recycle it), so this counts backpressure events, not
// necessarily losses — the caller owns the loss accounting.
func (r *Ring) Rejected() uint64 { return r.rejected.Load() }

// Free reports the producer-side view of remaining space, refreshing
// the head snapshot. It can never overstate the true free space (the
// consumer only drains), which makes it safe for backpressure: a stage
// that polls at most Free() packets from upstream can never overflow
// this ring. Call only from the producer goroutine; it is meant to be
// called once per batch, not per packet.
func (r *Ring) Free() int {
	r.headCache = r.head.Load()
	return len(r.buf) - int(r.tail.Load()-r.headCache)
}

// Push appends p; it reports false (and counts a rejection) when full.
// Call only from the producer goroutine.
func (r *Ring) Push(p *pkt.Packet) bool {
	tail := r.tail.Load()
	if tail-r.headCache >= uint64(len(r.buf)) {
		r.headCache = r.head.Load()
		if tail-r.headCache >= uint64(len(r.buf)) {
			r.rejected.Add(1)
			return false
		}
	}
	r.buf[tail&r.mask] = p
	r.tail.Store(tail + 1)
	return true
}

// PushBatch moves as many of b's packets as fit into the ring, in slot
// order, publishing the tail once for the whole batch — one cache-line
// handoff per batch instead of per packet. It returns how many were
// accepted. Rejected packets are counted and stay with the caller,
// compacted to the front of b; nil (already-dropped) slots are skipped.
// Call only from the producer goroutine.
func (r *Ring) PushBatch(b *pkt.Batch) int {
	tail := r.tail.Load()
	free := uint64(len(r.buf)) - (tail - r.headCache)
	if free < uint64(b.Len()) {
		r.headCache = r.head.Load()
		free = uint64(len(r.buf)) - (tail - r.headCache)
	}
	accepted := 0
	for i, p := range b.Packets() {
		if p == nil {
			continue
		}
		if uint64(accepted) >= free {
			r.rejected.Add(1)
			continue // leave the packet with the caller
		}
		b.Drop(i)
		r.buf[(tail+uint64(accepted))&r.mask] = p
		accepted++
	}
	if accepted > 0 {
		r.tail.Store(tail + uint64(accepted))
	}
	b.Compact()
	return accepted
}

// Pop removes and returns the oldest packet, or nil when empty. Call
// only from the consumer goroutine.
func (r *Ring) Pop() *pkt.Packet {
	head := r.head.Load()
	if head == r.tailCache {
		r.tailCache = r.tail.Load()
		if head == r.tailCache {
			return nil
		}
	}
	p := r.buf[head&r.mask]
	r.buf[head&r.mask] = nil
	r.head.Store(head + 1)
	return p
}

// PopBatchInto appends up to max packets (bounded by b's remaining
// capacity) from the ring into b and returns how many moved, publishing
// the head once for the whole batch. Call only from the consumer
// goroutine.
func (r *Ring) PopBatchInto(b *pkt.Batch, max int) int {
	head := r.head.Load()
	avail := r.tailCache - head
	if avail == 0 {
		r.tailCache = r.tail.Load()
		avail = r.tailCache - head
	}
	n := uint64(b.Cap() - b.Len())
	if uint64(max) < n {
		n = uint64(max)
	}
	if avail < n {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		b.Add(r.buf[(head+i)&r.mask])
		r.buf[(head+i)&r.mask] = nil
	}
	if n > 0 {
		r.head.Store(head + n)
	}
	return int(n)
}

// PopBatchShared is PopBatchInto under the ring's consumer lock — the
// steal-side protocol: when a plan enables work stealing, the ring's
// owning core and any stealing sibling both consume through this
// method, so head and tailCache stay single-writer even with several
// candidate consumers. The producer side is untouched: pushes remain
// lock-free SPSC. Mixing PopBatchShared with the unlocked consumer
// methods on the same ring is a programming error.
func (r *Ring) PopBatchShared(b *pkt.Batch, max int) int {
	r.cmu.Lock()
	n := r.PopBatchInto(b, max)
	r.cmu.Unlock()
	return n
}

// Drain pops every packet currently in the ring into fn and reports how
// many it moved. It is the teardown half of a reload barrier: once the
// producer and consumer cores have been stopped (or were never
// started), the reloading goroutine calls Drain to take ownership of
// whatever is still queued — account it, recycle it — before the ring
// is discarded. Call only from the consumer goroutine, or after the
// consumer has provably exited.
func (r *Ring) Drain(fn func(*pkt.Packet)) int {
	n := 0
	for {
		p := r.Pop()
		if p == nil {
			return n
		}
		fn(p)
		n++
	}
}

// String summarizes occupancy for debugging.
func (r *Ring) String() string {
	return fmt.Sprintf("exec.Ring{%d/%d, rejected=%d}", r.Len(), r.Cap(), r.Rejected())
}
