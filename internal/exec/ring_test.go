package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"routebricks/internal/pkt"
)

// mark tags a packet with a sequence number we can verify on the far
// side of the ring.
func mark(seq uint64) *pkt.Packet {
	return &pkt.Packet{SeqNo: seq}
}

func TestRingBasics(t *testing.T) {
	r := NewRing(5) // rounds up to 8
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	if r.Free() != 8 {
		t.Fatalf("Free = %d, want 8", r.Free())
	}
	for i := 0; i < 8; i++ {
		if !r.Push(mark(uint64(i))) {
			t.Fatalf("Push %d rejected on non-full ring", i)
		}
	}
	if r.Push(mark(99)) {
		t.Fatal("Push accepted on full ring")
	}
	if r.Rejected() != 1 {
		t.Fatalf("Rejected = %d, want 1", r.Rejected())
	}
	if r.Free() != 0 {
		t.Fatalf("Free = %d on full ring, want 0", r.Free())
	}
	for i := 0; i < 8; i++ {
		p := r.Pop()
		if p == nil || p.SeqNo != uint64(i) {
			t.Fatalf("Pop %d = %v, want seq %d", i, p, i)
		}
	}
	if r.Pop() != nil {
		t.Fatal("Pop on empty ring returned a packet")
	}
}

func TestRingBatchOverflowStaysWithCaller(t *testing.T) {
	r := NewRing(4)
	b := pkt.NewBatch(8)
	for i := 0; i < 6; i++ {
		b.Add(mark(uint64(i)))
	}
	if got := r.PushBatch(b); got != 4 {
		t.Fatalf("PushBatch accepted %d, want 4", got)
	}
	if r.Rejected() != 2 {
		t.Fatalf("Rejected = %d, want 2", r.Rejected())
	}
	// The two rejected packets stay with the caller, compacted, in order.
	if b.Len() != 2 || b.At(0).SeqNo != 4 || b.At(1).SeqNo != 5 {
		t.Fatalf("leftover batch = %d packets (first %v), want seqs 4,5", b.Len(), b.At(0))
	}
	out := pkt.NewBatch(8)
	if got := r.PopBatchInto(out, 8); got != 4 {
		t.Fatalf("PopBatchInto = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		if out.At(i).SeqNo != uint64(i) {
			t.Fatalf("slot %d = seq %d, want %d", i, out.At(i).SeqNo, i)
		}
	}
}

func TestRingPopBatchRespectsMax(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 10; i++ {
		r.Push(mark(uint64(i)))
	}
	b := pkt.NewBatch(16)
	if got := r.PopBatchInto(b, 3); got != 3 {
		t.Fatalf("PopBatchInto(max=3) = %d, want 3", got)
	}
	if got := r.PopBatchInto(b, 100); got != 7 {
		t.Fatalf("PopBatchInto(max=100) = %d, want remaining 7", got)
	}
}

// TestRingSPSCStress runs a real producer goroutine against a real
// consumer goroutine — the configuration the handoff rings run in under
// a pipelined plan — and checks that every packet arrives exactly once
// and in order. Run it with -race: the cached-index fast path must not
// introduce unsynchronized access to the shared slots.
func TestRingSPSCStress(t *testing.T) {
	const total = 200000
	r := NewRing(256)
	var wg sync.WaitGroup
	wg.Add(2)

	go func() { // producer: mixed single and batch pushes
		defer wg.Done()
		batch := pkt.NewBatch(16)
		seq := uint64(0)
		for seq < total {
			if seq%3 == 0 {
				if r.Push(mark(seq)) {
					seq++
				} else {
					runtime.Gosched()
				}
				continue
			}
			batch.Reset()
			for i := 0; i < 16 && seq+uint64(i) < total; i++ {
				batch.Add(mark(seq + uint64(i)))
			}
			n := uint64(batch.Len())
			for batch.Len() > 0 {
				r.PushBatch(batch)
				if batch.Len() > 0 {
					runtime.Gosched()
				}
			}
			seq += n
		}
	}()

	errc := make(chan string, 1)
	go func() { // consumer: mixed single and batch pops
		defer wg.Done()
		out := pkt.NewBatch(32)
		next := uint64(0)
		idle := 0
		for next < total {
			var got []*pkt.Packet
			if next%5 == 0 {
				if p := r.Pop(); p != nil {
					got = []*pkt.Packet{p}
				}
			} else {
				out.Reset()
				if r.PopBatchInto(out, 32) > 0 {
					got = out.Packets()
				}
			}
			if len(got) == 0 {
				idle++
				if idle > 64 {
					runtime.Gosched()
				}
				continue
			}
			idle = 0
			for _, p := range got {
				if p.SeqNo != next {
					select {
					case errc <- "out of order":
					default:
					}
					return
				}
				next++
			}
		}
	}()

	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatalf("consumer: %s", msg)
	default:
	}
	if r.Len() != 0 {
		t.Fatalf("ring not drained: %s", r)
	}
}

// TestRingFreeNeverOverstates checks the backpressure contract under
// concurrency: a producer that trusts Free() can never overflow.
func TestRingFreeNeverOverstates(t *testing.T) {
	const total = 100000
	r := NewRing(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // consumer drains as fast as it can
		defer wg.Done()
		got := 0
		for got < total {
			out := pkt.NewBatch(16)
			n := r.PopBatchInto(out, 16)
			if n == 0 {
				runtime.Gosched()
			}
			got += n
		}
	}()
	sent := 0
	b := pkt.NewBatch(16)
	for sent < total {
		room := r.Free()
		if room == 0 {
			runtime.Gosched()
			continue
		}
		if room > 16 {
			room = 16
		}
		if sent+room > total {
			room = total - sent
		}
		b.Reset()
		for i := 0; i < room; i++ {
			b.Add(mark(uint64(sent + i)))
		}
		if got := r.PushBatch(b); got != room {
			t.Fatalf("PushBatch accepted %d of %d despite Free()=%d", got, room, room)
		}
		sent += room
	}
	wg.Wait()
	if r.Rejected() != 0 {
		t.Fatalf("Rejected = %d, want 0 under Free()-guarded production", r.Rejected())
	}
}

func BenchmarkRingHandoff(b *testing.B) {
	r := NewRing(1024)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		out := pkt.NewBatch(32)
		for {
			select {
			case <-stop:
				return
			default:
			}
			out.Reset()
			if r.PopBatchInto(out, 32) == 0 {
				runtime.Gosched()
			}
		}
	}()
	batch := pkt.NewBatch(32)
	pkts := make([]*pkt.Packet, 32)
	for i := range pkts {
		pkts[i] = mark(uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		for _, p := range pkts {
			batch.Add(p)
		}
		for batch.Len() > 0 {
			r.PushBatch(batch)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

func TestRingDrain(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Push(mark(uint64(i)))
	}
	var got []uint64
	n := r.Drain(func(p *pkt.Packet) { got = append(got, p.SeqNo) })
	if n != 5 || len(got) != 5 {
		t.Fatalf("Drain moved %d packets, want 5", n)
	}
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("Drain out of order: got %v", got)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("ring not empty after Drain: %d", r.Len())
	}
	if r.Drain(func(*pkt.Packet) { t.Fatal("callback on empty ring") }) != 0 {
		t.Fatal("Drain on empty ring reported packets")
	}
	// The ring stays usable afterwards.
	if !r.Push(mark(42)) || r.Pop().SeqNo != 42 {
		t.Fatal("ring unusable after Drain")
	}
}

// TestRingPopBatchShared is the steal-protocol gate under -race: one
// producer, many consumers all popping through the shared (locked)
// consumer path. Every pushed packet must be popped exactly once —
// counted via a per-packet sequence bitmap — with none lost or
// duplicated, no matter how the locked pops interleave.
func TestRingPopBatchShared(t *testing.T) {
	const (
		total     = 100000
		consumers = 4
	)
	r := NewRing(256)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // single producer, batch pushes
		defer wg.Done()
		batch := pkt.NewBatch(16)
		seq := uint64(0)
		for seq < total {
			batch.Reset()
			for i := 0; i < 16 && seq+uint64(i) < total; i++ {
				batch.Add(mark(seq + uint64(i)))
			}
			n := uint64(batch.Len())
			for batch.Len() > 0 {
				r.PushBatch(batch)
				if batch.Len() > 0 {
					runtime.Gosched()
				}
			}
			seq += n
		}
	}()

	seen := make([]atomic.Uint32, total)
	var popped atomic.Uint64
	var dupes atomic.Uint64
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := pkt.NewBatch(32)
			for popped.Load() < total {
				out.Reset()
				n := r.PopBatchShared(out, 32)
				if n == 0 {
					runtime.Gosched()
					continue
				}
				for _, p := range out.Packets() {
					if p == nil {
						continue
					}
					if !seen[p.SeqNo].CompareAndSwap(0, 1) {
						dupes.Add(1)
					}
				}
				popped.Add(uint64(n))
			}
		}()
	}

	wg.Wait()
	if got := popped.Load(); got != total {
		t.Fatalf("popped %d packets, want %d", got, total)
	}
	if d := dupes.Load(); d != 0 {
		t.Fatalf("%d packets popped twice", d)
	}
	for i := range seen {
		if seen[i].Load() == 0 {
			t.Fatalf("packet %d never popped", i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("ring not drained: %s", r)
	}
}
