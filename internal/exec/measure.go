package exec

import (
	"runtime"
	"time"

	"routebricks/internal/pkt"
)

// This file measures what the placement cost model prices: the real
// per-packet cost of moving packets through an SPSC handoff ring
// between two goroutines. The Auto calibration used to charge a fixed
// 120 cycles per crossing; routebricks.Load now runs MeasureHandoff
// once per process and feeds the measured figure into the cost model,
// so placement decisions reflect the host the router actually runs on.

// MeasureConfig parameterizes MeasureHandoff. The zero value selects
// the documented defaults.
type MeasureConfig struct {
	// Packets is the batch size bounced per hand (default 64 — large
	// enough to amortize the batch-publish, small enough to stay in L1).
	Packets int
	// Rounds is how many round trips to time (default 512).
	Rounds int
	// ClockHz converts wall time to cycles (default 2.8e9, the paper's
	// Nehalem clock — the unit every element cost is calibrated in).
	ClockHz float64

	// now overrides the wall clock for deterministic tests.
	now func() time.Time
}

func (c MeasureConfig) withDefaults() MeasureConfig {
	if c.Packets <= 0 {
		c.Packets = 64
	}
	if c.Rounds <= 0 {
		c.Rounds = 512
	}
	if c.ClockHz <= 0 {
		c.ClockHz = 2.8e9
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// MeasureHandoff estimates the per-packet cost, in CPU cycles at
// cfg.ClockHz, of one SPSC ring crossing between two goroutines: a
// ping-pong microbenchmark pushes batches through a ring pair (echoed
// back by a second goroutine), so each round trip pays two crossings
// and both sides' cache lines stay genuinely remote. The result is
// clamped to at least 1 cycle; callers cache it (a measurement costs a
// few hundred microseconds and the answer does not change mid-run).
func MeasureHandoff(cfg MeasureConfig) float64 {
	cfg = cfg.withDefaults()
	ping := NewRing(cfg.Packets)
	pong := NewRing(cfg.Packets)
	pkts := make([]*pkt.Packet, cfg.Packets)
	for i := range pkts {
		pkts[i] = &pkt.Packet{}
	}

	total := cfg.Rounds * cfg.Packets
	done := make(chan struct{})
	go func() {
		defer close(done)
		batch := pkt.NewBatch(cfg.Packets)
		echoed := 0
		for echoed < total {
			batch.Reset()
			n := ping.PopBatchInto(batch, cfg.Packets)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			// The pong ring has room for a full burst, so every packet
			// lands on the first push.
			pong.PushBatch(batch)
			echoed += n
		}
	}()

	start := cfg.now()
	returned := make([]*pkt.Packet, 0, cfg.Packets)
	for r := 0; r < cfg.Rounds; r++ {
		for _, p := range pkts {
			for !ping.Push(p) {
				runtime.Gosched()
			}
		}
		returned = returned[:0]
		for len(returned) < cfg.Packets {
			p := pong.Pop()
			if p == nil {
				runtime.Gosched()
				continue
			}
			returned = append(returned, p)
		}
	}
	elapsed := cfg.now().Sub(start)
	<-done

	// Two crossings (ping + pong) per packet per round.
	cycles := elapsed.Seconds() * cfg.ClockHz / float64(2*total)
	if cycles < 1 {
		cycles = 1
	}
	return cycles
}
