package exec

import (
	"testing"
	"time"
)

// TestMeasureHandoffFixedClock pins the arithmetic with a stubbed
// clock: the ping-pong still runs for real, but the elapsed time is
// fixed, so the reported cycles are exactly elapsed * Hz / (2 * total).
func TestMeasureHandoffFixedClock(t *testing.T) {
	base := time.Unix(0, 0)
	calls := 0
	cfg := MeasureConfig{
		Packets: 4,
		Rounds:  2,
		ClockHz: 1e9, // 1 cycle per nanosecond
		now: func() time.Time {
			calls++
			if calls == 1 {
				return base
			}
			return base.Add(8 * time.Microsecond)
		},
	}
	got := MeasureHandoff(cfg)
	// 8000 ns * 1 cycle/ns over 2 crossings * 2 rounds * 4 packets.
	want := 8000.0 / 16.0
	if got != want {
		t.Fatalf("MeasureHandoff = %v cycles, want %v", got, want)
	}
	if calls != 2 {
		t.Fatalf("clock read %d times, want 2 (start + end)", calls)
	}
}

// TestMeasureHandoffClamps proves a too-fast (or broken) clock can
// never report a free handoff — the model needs a positive price.
func TestMeasureHandoffClamps(t *testing.T) {
	base := time.Unix(0, 0)
	got := MeasureHandoff(MeasureConfig{
		Packets: 2,
		Rounds:  1,
		ClockHz: 1, // 1 Hz: elapsed cycles round to ~0
		now:     func() time.Time { return base },
	})
	if got != 1 {
		t.Fatalf("MeasureHandoff = %v, want clamp to 1", got)
	}
}

// TestMeasureHandoffReal smoke-tests a real measurement: defaults,
// wall clock, and a sane positive result.
func TestMeasureHandoffReal(t *testing.T) {
	got := MeasureHandoff(MeasureConfig{Rounds: 64})
	if got < 1 || got > 1e7 {
		t.Fatalf("measured handoff cost %v cycles is not plausible", got)
	}
	t.Logf("measured handoff cost: %.0f cycles/pkt", got)
}
