package pkt

import "sync"

// Pool is a freelist of Packets. Steady-state forwarding churns through
// millions of short-lived packets; without a pool every one is a fresh
// allocation that the garbage collector must later chase, which is
// exactly the per-packet overhead the paper's batching discipline exists
// to amortize. With the pool, packet memory cycles between the traffic
// sources that Get and the graph exits (Discard, Sink, the cluster's
// delivery measurement) that Put, and the hot path allocates ~zero.
//
// Ownership discipline: exactly one owner per packet at any time. Get
// transfers ownership to the caller; pushing a packet (or a batch)
// transfers it downstream; whoever terminates a packet's life — and only
// that element — may Put it back. A Put packet must not be touched
// again: the pool will hand its buffer to the next Get, which resets
// metadata and zeroes the data. Double Puts are detected and ignored
// (and counted) rather than corrupting the freelist.
//
// Pool is safe for concurrent use; the discrete-event simulator runs
// single-threaded, but the live Runner (cmd/rbrouter) pushes from one
// goroutine per core.
type Pool struct {
	mu      sync.Mutex
	free    []*Packet
	maxFree int

	gets       uint64 // Get calls
	hits       uint64 // Gets served from the freelist
	puts       uint64 // packets accepted back
	doublePuts uint64 // Puts of an already-pooled packet (ignored)
}

// DefaultPool backs pkt.New, Clone, and every element recycler that is
// not given an explicit pool.
var DefaultPool = NewPool(4096)

// NewPool returns a pool retaining at most maxFree idle packets
// (minimum 1); excess Puts are released to the garbage collector.
func NewPool(maxFree int) *Pool {
	if maxFree < 1 {
		maxFree = 1
	}
	return &Pool{maxFree: maxFree}
}

// Get returns a packet with Data sized to size bytes, zero-filled, and
// all metadata reset — indistinguishable from a freshly allocated one.
func (pl *Pool) Get(size int) *Packet {
	p := pl.getRaw(size)
	clear(p.Data)
	return p
}

// getRaw is Get without the zero fill, for callers (Clone) that
// immediately overwrite every byte.
func (pl *Pool) getRaw(size int) *Packet {
	pl.mu.Lock()
	pl.gets++
	var p *Packet
	if n := len(pl.free); n > 0 {
		p = pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		pl.hits++
	}
	pl.mu.Unlock()
	if p == nil || cap(p.Data) < size {
		// Size fresh buffers to hold any standard frame so one pooled
		// packet can serve every workload's packet-size mix.
		bufCap := size
		if bufCap < MaxSize {
			bufCap = MaxSize
		}
		buf := make([]byte, size, bufCap)
		if p == nil {
			return &Packet{Data: buf}
		}
		*p = Packet{Data: buf}
		return p
	}
	data := p.Data[:size]
	*p = Packet{Data: data}
	return p
}

// Put returns a packet to the freelist. nil and double Puts are ignored.
func (pl *Pool) Put(p *Packet) {
	if p == nil {
		return
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if p.pooled {
		pl.doublePuts++
		return
	}
	pl.puts++
	if len(pl.free) >= pl.maxFree {
		return // let the GC have it
	}
	p.pooled = true
	pl.free = append(pl.free, p)
}

// PutBatch Takes every remaining packet out of b and Puts it, then
// resets b — the terminal move for a batch that is being dropped whole.
func (pl *Pool) PutBatch(b *Batch) {
	for i, p := range b.Packets() {
		if p != nil {
			b.Drop(i)
			pl.Put(p)
		}
	}
	b.Reset()
}

// FreeLen reports how many packets are idle in the pool.
func (pl *Pool) FreeLen() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return len(pl.free)
}

// Stats reports (gets, freelist hits, puts, ignored double puts).
func (pl *Pool) Stats() (gets, hits, puts, doublePuts uint64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.gets, pl.hits, pl.puts, pl.doublePuts
}
