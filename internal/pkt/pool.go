package pkt

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a freelist of Packets. Steady-state forwarding churns through
// millions of short-lived packets; without a pool every one is a fresh
// allocation that the garbage collector must later chase, which is
// exactly the per-packet overhead the paper's batching discipline exists
// to amortize. With the pool, packet memory cycles between the traffic
// sources that Get and the graph exits (Discard, Sink, the cluster's
// delivery measurement) that Put, and the hot path allocates ~zero.
//
// The pool is sharded for shared-nothing multi-core operation: each
// PoolShard has its own mutex and freelist, so a core that Gets and
// Puts against its own shard (the placement planner wires every poll
// task to one, see click.Context.PoolShard) never contends with other
// cores. Shards rebalance against a shared backing store in batches —
// a refill or flush moves dozens of packets per backing-lock crossing,
// not one — so even a producer/consumer split across shards (a reader
// core Getting, a writer core Putting) costs one shared-lock
// acquisition per batch rather than per packet. All statistics are
// atomic counters: Stats() and FreeLen() never take a datapath lock.
//
// Ownership discipline: exactly one owner per packet at any time. Get
// transfers ownership to the caller; pushing a packet (or a batch)
// transfers it downstream; whoever terminates a packet's life — and only
// that element — may Put it back. A Put packet must not be touched
// again: the pool will hand its buffer to the next Get, which resets
// metadata and zeroes the data. Double Puts are detected and ignored
// (and counted) rather than corrupting the freelist.
type Pool struct {
	shards []PoolShard

	// backing is the shared overflow store shards refill from and flush
	// to, in batches. bmu is the only lock two cores can meet on, and
	// only once per batch crossing.
	bmu        sync.Mutex
	backing    []*Packet
	backingCap int
	backingLen atomic.Int64

	doublePuts atomic.Uint64 // Puts of an already-pooled packet (ignored)
}

// PoolShard is one core's private slice of a Pool: a locally-locked
// freelist sized so that steady-state Get/Put cycles stay entirely
// within it. Obtain one with Pool.Shard and use it from one core; the
// shard lock exists only for the occasional remote Put routed here by
// packet provenance, not for fast-path sharing.
type PoolShard struct {
	pool *Pool
	id   uint8

	mu    sync.Mutex
	free  []*Packet
	limit int // flush to backing above this

	idle atomic.Int64  // len(free), mirrored so FreeLen never locks
	gets atomic.Uint64 // Get calls against this shard
	hits atomic.Uint64 // Gets served from pooled memory (shard or backing)
	puts atomic.Uint64 // packets accepted back

	// Pad to a cache-line multiple so adjacent shards in the Pool's
	// slice never false-share their hot counters.
	_ [40]byte
}

// DefaultPool backs pkt.New, Clone, and every element recycler that is
// not given an explicit pool.
var DefaultPool = NewPool(4096)

// defaultShards sizes the default shard count to the host's parallelism
// (per-P sharding), bounded so the per-shard freelists stay usefully
// deep.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}

// NewPool returns a pool retaining at most maxFree idle packets
// (minimum 1) across its shards and backing store; excess Puts are
// released to the garbage collector. The shard count follows the
// host's parallelism; use NewPoolShards to pin it.
func NewPool(maxFree int) *Pool {
	return NewPoolShards(maxFree, defaultShards())
}

// NewPoolShards returns a pool with an explicit shard count (minimum
// 1). A single-shard pool degenerates to the classic one-freelist pool
// — the legacy baseline BenchmarkPool compares against.
func NewPoolShards(maxFree, shards int) *Pool {
	if maxFree < 1 {
		maxFree = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > 256 {
		shards = 256 // home is a uint8 stamp
	}
	// Half the budget lives in the shards, half in the backing store the
	// shards rebalance against. With one shard there is nothing to
	// rebalance: give it the whole budget and skip the backing store.
	limit := maxFree
	backing := 0
	if shards > 1 {
		limit = maxFree / (2 * shards)
		if limit < 1 {
			limit = 1
		}
		backing = maxFree - limit*shards
	}
	pl := &Pool{shards: make([]PoolShard, shards), backingCap: backing}
	for i := range pl.shards {
		pl.shards[i].pool = pl
		pl.shards[i].id = uint8(i)
		pl.shards[i].limit = limit
	}
	return pl
}

// Shards reports the shard count.
func (pl *Pool) Shards() int { return len(pl.shards) }

// Shard returns shard i (modulo the shard count, so callers can key
// directly on a core index). The returned handle is what a datapath
// core holds: its Get/Put run against core-local state.
func (pl *Pool) Shard(i int) *PoolShard {
	if i < 0 {
		i = -i
	}
	return &pl.shards[i%len(pl.shards)]
}

// Pool returns the pool this shard belongs to.
func (s *PoolShard) Pool() *Pool { return s.pool }

// Get returns a packet with Data sized to size bytes, zero-filled, and
// all metadata reset — indistinguishable from a freshly allocated one.
// Plain Pool.Get serves from shard 0, which keeps single-threaded
// callers (Put then Get reuses the same packet) exact; multi-core
// callers hold a Shard handle instead.
func (pl *Pool) Get(size int) *Packet {
	return pl.shards[0].Get(size)
}

// getRaw is Get without the zero fill, for callers (Clone) that
// immediately overwrite every byte. It serves from the shard the
// packet's buffer came from, keeping clone traffic off other shards.
func (pl *Pool) getRaw(size int) *Packet {
	return pl.shards[0].getRaw(size)
}

// Get is Pool.Get against this shard's freelist. Steady state touches
// only the shard lock; an empty shard refills a batch from the backing
// store first.
func (s *PoolShard) Get(size int) *Packet {
	p := s.getRaw(size)
	clear(p.Data)
	return p
}

// GetRaw is Get without the zero fill, for callers that immediately
// overwrite every byte — receive paths that hand the buffer to the
// kernel, clones that copy over it.
func (s *PoolShard) GetRaw(size int) *Packet {
	return s.getRaw(size)
}

// getRaw is Get without the zero fill.
func (s *PoolShard) getRaw(size int) *Packet {
	s.gets.Add(1)
	s.mu.Lock()
	if len(s.free) == 0 {
		s.refillLocked()
	}
	var p *Packet
	if n := len(s.free); n > 0 {
		p = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		s.idle.Store(int64(len(s.free)))
	}
	s.mu.Unlock()
	if p != nil {
		s.hits.Add(1)
	}
	if p == nil || cap(p.Data) < size {
		// Size fresh buffers to hold any standard frame so one pooled
		// packet can serve every workload's packet-size mix.
		bufCap := size
		if bufCap < MaxSize {
			bufCap = MaxSize
		}
		buf := make([]byte, size, bufCap)
		if p == nil {
			return &Packet{Data: buf, home: s.id}
		}
		*p = Packet{Data: buf, home: s.id}
		return p
	}
	data := p.Data[:size]
	*p = Packet{Data: data, home: s.id}
	return p
}

// refillLocked pulls a batch of idle packets from the backing store
// into the shard — the one shared-lock crossing a run of Gets pays.
// Caller holds s.mu.
func (s *PoolShard) refillLocked() {
	pl := s.pool
	if pl.backingCap == 0 {
		return
	}
	want := s.limit/2 + 1
	pl.bmu.Lock()
	n := len(pl.backing)
	if want > n {
		want = n
	}
	if want > 0 {
		from := n - want
		s.free = append(s.free, pl.backing[from:]...)
		for i := from; i < n; i++ {
			pl.backing[i] = nil
		}
		pl.backing = pl.backing[:from]
		pl.backingLen.Store(int64(from))
	}
	pl.bmu.Unlock()
	s.idle.Store(int64(len(s.free)))
}

// flushLocked pushes the shard's oldest surplus to the backing store in
// one batch; whatever the backing store cannot hold goes to the GC.
// Caller holds s.mu.
func (s *PoolShard) flushLocked() {
	pl := s.pool
	n := s.limit/2 + 1
	if n > len(s.free) {
		n = len(s.free)
	}
	if pl.backingCap > 0 {
		pl.bmu.Lock()
		keep := pl.backingCap - len(pl.backing)
		if keep > n {
			keep = n
		}
		if keep > 0 {
			pl.backing = append(pl.backing, s.free[:keep]...)
			pl.backingLen.Store(int64(len(pl.backing)))
		}
		pl.bmu.Unlock()
	}
	// Evict from the front (oldest, cache-cold) and keep the hot tail.
	copy(s.free, s.free[n:])
	for i := len(s.free) - n; i < len(s.free); i++ {
		s.free[i] = nil
	}
	s.free = s.free[:len(s.free)-n]
	s.idle.Store(int64(len(s.free)))
}

// Put returns a packet to the shard's freelist, regardless of which
// shard it was drawn from — the recycling core keeps the buffer local
// to itself, which is what a steal- or handoff-crossed packet wants.
// nil and double Puts are ignored.
func (s *PoolShard) Put(p *Packet) {
	if p == nil {
		return
	}
	if !atomic.CompareAndSwapUint32(&p.pooled, 0, 1) {
		s.pool.doublePuts.Add(1)
		return
	}
	s.puts.Add(1)
	s.mu.Lock()
	s.free = append(s.free, p)
	if len(s.free) > s.limit {
		s.flushLocked()
	} else {
		s.idle.Store(int64(len(s.free)))
	}
	s.mu.Unlock()
}

// PutBatch takes every remaining packet out of b and Puts it against
// this shard, taking the shard lock once for the whole batch, then
// resets b — the terminal move for a batch that is being dropped whole.
func (s *PoolShard) PutBatch(b *Batch) {
	accepted := 0
	s.mu.Lock()
	for i, p := range b.Packets() {
		if p == nil {
			continue
		}
		b.Drop(i)
		if !atomic.CompareAndSwapUint32(&p.pooled, 0, 1) {
			s.pool.doublePuts.Add(1)
			continue
		}
		accepted++
		s.free = append(s.free, p)
	}
	if len(s.free) > s.limit {
		s.flushLocked()
	} else {
		s.idle.Store(int64(len(s.free)))
	}
	s.mu.Unlock()
	s.puts.Add(uint64(accepted))
	b.Reset()
}

// FreeLen reports how many packets are idle on this shard (lock-free).
func (s *PoolShard) FreeLen() int { return int(s.idle.Load()) }

// Stats reports this shard's (gets, hits, puts) without locking.
func (s *PoolShard) Stats() (gets, hits, puts uint64) {
	return s.gets.Load(), s.hits.Load(), s.puts.Load()
}

// Put returns a packet to the pool. The packet lands on the shard it
// was drawn from (its provenance stamp), so a single-threaded
// Put-then-Get round trip always finds it again. Cores on a hot path
// use their own PoolShard handle instead, which recycles locally.
// nil and double Puts are ignored.
func (pl *Pool) Put(p *Packet) {
	if p == nil {
		return
	}
	pl.shards[int(p.home)%len(pl.shards)].Put(p)
}

// PutBatch takes every remaining packet out of b and Puts it, taking
// each shard lock once per batch, then resets b. Batches are routed by
// the provenance of their first packet — batch members overwhelmingly
// share an origin, and the backing store rebalances any that do not.
func (pl *Pool) PutBatch(b *Batch) {
	for _, p := range b.Packets() {
		if p != nil {
			pl.shards[int(p.home)%len(pl.shards)].PutBatch(b)
			return
		}
	}
	b.Reset()
}

// FreeLen reports how many packets are idle in the pool (all shards
// plus the backing store). Lock-free: it reads mirrored atomic gauges,
// so observers never serialize the datapath.
func (pl *Pool) FreeLen() int {
	n := int(pl.backingLen.Load())
	for i := range pl.shards {
		n += pl.shards[i].FreeLen()
	}
	return n
}

// Stats reports (gets, freelist hits, puts, ignored double puts),
// summed across shards from atomic counters — never taking a datapath
// lock.
func (pl *Pool) Stats() (gets, hits, puts, doublePuts uint64) {
	for i := range pl.shards {
		g, h, p := pl.shards[i].Stats()
		gets += g
		hits += h
		puts += p
	}
	return gets, hits, puts, pl.doublePuts.Load()
}
