package pkt

import (
	"encoding/binary"
	"net/netip"
)

// ARP for Ethernet/IPv4 (RFC 826) — the address-resolution substrate any
// deployable router front-end needs on its external ports.

// ARP opcodes.
const (
	ARPRequest = 1
	ARPReply   = 2

	ARPLen = 28 // hw ethernet + proto ipv4 ARP body
)

// ARPHdr is a zero-copy view over an ARP body (after the Ethernet header).
type ARPHdr []byte

// Valid reports whether the header describes Ethernet/IPv4 ARP.
func (h ARPHdr) Valid() bool {
	return len(h) >= ARPLen &&
		binary.BigEndian.Uint16(h[0:2]) == 1 && // hardware: ethernet
		binary.BigEndian.Uint16(h[2:4]) == EtherTypeIPv4 &&
		h[4] == 6 && h[5] == 4
}

// Op returns the opcode.
func (h ARPHdr) Op() uint16 { return binary.BigEndian.Uint16(h[6:8]) }

// SetOp sets the opcode.
func (h ARPHdr) SetOp(v uint16) { binary.BigEndian.PutUint16(h[6:8], v) }

// SenderMAC returns the sender hardware address.
func (h ARPHdr) SenderMAC() MAC { var m MAC; copy(m[:], h[8:14]); return m }

// SenderIP returns the sender protocol address.
func (h ARPHdr) SenderIP() netip.Addr {
	var a [4]byte
	copy(a[:], h[14:18])
	return netip.AddrFrom4(a)
}

// TargetMAC returns the target hardware address.
func (h ARPHdr) TargetMAC() MAC { var m MAC; copy(m[:], h[18:24]); return m }

// TargetIP returns the target protocol address.
func (h ARPHdr) TargetIP() netip.Addr {
	var a [4]byte
	copy(a[:], h[24:28])
	return netip.AddrFrom4(a)
}

// SetSender writes the sender addresses.
func (h ARPHdr) SetSender(m MAC, ip netip.Addr) {
	copy(h[8:14], m[:])
	b := ip.As4()
	copy(h[14:18], b[:])
}

// SetTarget writes the target addresses.
func (h ARPHdr) SetTarget(m MAC, ip netip.Addr) {
	copy(h[18:24], m[:])
	b := ip.As4()
	copy(h[24:28], b[:])
}

// ARP returns a view over the ARP body of an Ethernet/ARP frame.
func (p *Packet) ARP() ARPHdr { return ARPHdr(p.Data[EtherHdrLen:]) }

// BroadcastMAC is ff:ff:ff:ff:ff:ff.
var BroadcastMAC = MAC{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// NewARP builds an ARP frame. For requests, targetMAC is ignored and the
// frame is broadcast; replies are unicast to targetMAC.
func NewARP(op uint16, senderMAC MAC, senderIP netip.Addr, targetMAC MAC, targetIP netip.Addr) *Packet {
	size := EtherHdrLen + ARPLen
	if size < MinSize {
		size = MinSize
	}
	p := &Packet{Data: make([]byte, size)}
	eh := p.Ether()
	eh.SetSrc(senderMAC)
	if op == ARPRequest {
		eh.SetDst(BroadcastMAC)
	} else {
		eh.SetDst(targetMAC)
	}
	eh.SetEtherType(EtherTypeARP)
	a := p.ARP()
	binary.BigEndian.PutUint16(a[0:2], 1)
	binary.BigEndian.PutUint16(a[2:4], EtherTypeIPv4)
	a[4] = 6
	a[5] = 4
	a.SetOp(op)
	a.SetSender(senderMAC, senderIP)
	if op == ARPRequest {
		a.SetTarget(MAC{}, targetIP)
	} else {
		a.SetTarget(targetMAC, targetIP)
	}
	return p
}
