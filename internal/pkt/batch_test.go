package pkt

import (
	"net/netip"
	"testing"
)

func batchPacket(t testing.TB, seq uint64) *Packet {
	t.Helper()
	p := New(64, netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.1.0.1"), 1000, 2000)
	p.SeqNo = seq
	return p
}

func TestBatchAddAndCapacity(t *testing.T) {
	b := NewBatch(4)
	if b.Cap() != 4 || b.Len() != 0 || b.Full() {
		t.Fatalf("fresh batch: cap=%d len=%d full=%v", b.Cap(), b.Len(), b.Full())
	}
	for i := 0; i < 4; i++ {
		if !b.Add(batchPacket(t, uint64(i))) {
			t.Fatalf("Add %d rejected below capacity", i)
		}
	}
	if !b.Full() {
		t.Fatal("batch not full at capacity")
	}
	if b.Add(batchPacket(t, 99)) {
		t.Fatal("Add accepted past capacity")
	}
	if !b.Add(nil) {
		t.Fatal("Add(nil) must be an accepted no-op")
	}
	if b.Len() != 4 {
		t.Fatalf("len = %d after nil Add, want 4", b.Len())
	}
}

func TestBatchCompactMidBatchDrops(t *testing.T) {
	b := NewBatch(8)
	for i := 0; i < 8; i++ {
		b.Add(batchPacket(t, uint64(i)))
	}
	// Drop a mid-batch run (2,3), the head, and the tail — the shapes a
	// filtering element produces.
	b.Drop(2)
	b.Drop(3)
	b.Drop(0)
	b.Drop(7)
	if n := b.Compact(); n != 4 {
		t.Fatalf("Compact = %d, want 4", n)
	}
	want := []uint64{1, 4, 5, 6}
	for i, p := range b.Packets() {
		if p == nil {
			t.Fatalf("nil slot %d after Compact", i)
		}
		if p.SeqNo != want[i] {
			t.Fatalf("slot %d SeqNo = %d, want %d (order not preserved)", i, p.SeqNo, want[i])
		}
	}
	// Survivors can be topped back up to capacity.
	for i := 0; i < 4; i++ {
		if !b.Add(batchPacket(t, uint64(10+i))) {
			t.Fatalf("Add rejected after Compact freed space")
		}
	}
	if !b.Full() {
		t.Fatal("batch should be full again")
	}
}

func TestBatchTakeLeavesHole(t *testing.T) {
	b := NewBatch(3)
	p0, p1, p2 := batchPacket(t, 0), batchPacket(t, 1), batchPacket(t, 2)
	b.Add(p0)
	b.Add(p1)
	b.Add(p2)
	if got := b.Take(1); got != p1 {
		t.Fatal("Take returned wrong packet")
	}
	if b.At(1) != nil {
		t.Fatal("Take did not clear the slot")
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d before Compact, want 3", b.Len())
	}
	if n := b.Compact(); n != 2 {
		t.Fatalf("Compact = %d, want 2", n)
	}
	if b.At(0) != p0 || b.At(1) != p2 {
		t.Fatal("Compact reordered survivors")
	}
}

func TestBatchResetClearsSlots(t *testing.T) {
	b := NewBatch(2)
	b.Add(batchPacket(t, 0))
	b.Add(batchPacket(t, 1))
	b.Reset()
	if b.Len() != 0 || b.Full() {
		t.Fatalf("after Reset: len=%d full=%v", b.Len(), b.Full())
	}
	// The backing array must not retain packet pointers.
	raw := b.Packets()[:2]
	if raw[0] != nil || raw[1] != nil {
		t.Fatal("Reset left packet pointers in cleared slots")
	}
}

func TestBatchMinimumCapacity(t *testing.T) {
	b := NewBatch(0)
	if b.Cap() != 1 {
		t.Fatalf("Cap = %d, want clamped minimum 1", b.Cap())
	}
}
