package pkt

// Batch is a fixed-capacity, ordered collection of packets — the unit of
// dispatch in the batch-native click graph. It is the software image of
// the kp-packet poll batch (§4.2 of the paper): a poll task fills one
// Batch from a receive ring and pushes the whole thing through the
// element graph with a single call per hop, so per-call overhead is paid
// once per batch instead of once per packet.
//
// A Batch is a container, not an owner: the packets inside it move
// downstream when the batch is pushed, while the Batch struct itself
// stays with (and is reused by) whoever allocated it. Elements that
// filter packets out mid-batch mark slots with Drop/Take and squeeze the
// survivors together with Compact, preserving arrival order — the
// in-place analog of Click's packet-killing without reallocation.
type Batch struct {
	pkts []*Packet
	cap  int
}

// NewBatch returns an empty batch holding at most capacity packets
// (minimum 1).
func NewBatch(capacity int) *Batch {
	if capacity < 1 {
		capacity = 1
	}
	return &Batch{pkts: make([]*Packet, 0, capacity), cap: capacity}
}

// Cap reports the fixed capacity.
func (b *Batch) Cap() int { return b.cap }

// Len reports the number of slots in use (dropped-but-not-compacted
// slots still count; Compact to squeeze them out).
func (b *Batch) Len() int { return len(b.pkts) }

// Full reports whether Add would fail.
func (b *Batch) Full() bool { return len(b.pkts) >= b.cap }

// Add appends p; it reports false when the batch is full. Adding nil is
// a no-op that reports true, so Add composes with Take-style scatters.
func (b *Batch) Add(p *Packet) bool {
	if p == nil {
		return true
	}
	if len(b.pkts) >= b.cap {
		return false
	}
	b.pkts = append(b.pkts, p)
	return true
}

// At returns the packet in slot i (nil if the slot was dropped).
func (b *Batch) At(i int) *Packet { return b.pkts[i] }

// Take removes and returns the packet in slot i, leaving a hole that
// Compact squeezes out. Use it to divert a packet to a slow path (an
// error output, a clone) while the rest of the batch stays on the fast
// path.
func (b *Batch) Take(i int) *Packet {
	p := b.pkts[i]
	b.pkts[i] = nil
	return p
}

// Drop marks slot i empty. The packet is simply forgotten; callers that
// pool packets should Take and Put instead.
func (b *Batch) Drop(i int) { b.pkts[i] = nil }

// Compact squeezes dropped slots out in place, preserving the order of
// the survivors, and returns the new length.
func (b *Batch) Compact() int {
	n := 0
	for _, p := range b.pkts {
		if p != nil {
			b.pkts[n] = p
			n++
		}
	}
	for i := n; i < len(b.pkts); i++ {
		b.pkts[i] = nil
	}
	b.pkts = b.pkts[:n]
	return n
}

// Reset empties the batch for reuse, clearing slots so packet pointers
// do not linger past their ownership.
func (b *Batch) Reset() {
	for i := range b.pkts {
		b.pkts[i] = nil
	}
	b.pkts = b.pkts[:0]
}

// Packets returns the live slot view (length Len). Callers iterate it;
// holding it across Add/Compact/Reset is a bug.
func (b *Batch) Packets() []*Packet { return b.pkts }
