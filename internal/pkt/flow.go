package pkt

import "encoding/binary"

// FlowKey identifies a transport flow by its 5-tuple. VLB flowlet tracking
// and RSS queue selection both key on it.
type FlowKey struct {
	Src, Dst uint32
	SrcPort  uint16
	DstPort  uint16
	Proto    uint8
}

// Flow extracts the 5-tuple of an IPv4/{TCP,UDP} packet. For other
// protocols the port fields are zero, which still yields a stable key.
func (p *Packet) Flow() FlowKey {
	ih := p.IPv4()
	k := FlowKey{
		Src:   ih.SrcUint32(),
		Dst:   ih.DstUint32(),
		Proto: ih.Protocol(),
	}
	if k.Proto == ProtoTCP || k.Proto == ProtoUDP {
		l4 := p.Data[EtherHdrLen+IPv4HdrLen:]
		if len(l4) >= 4 {
			k.SrcPort = binary.BigEndian.Uint16(l4[0:2])
			k.DstPort = binary.BigEndian.Uint16(l4[2:4])
		}
	}
	return k
}

// Hash mixes the 5-tuple into a 64-bit value with an FNV-1a-style mix.
// NIC RSS and flowlet tables take subsets of these bits. The function is
// symmetric in nothing: direction matters, as it does for real RSS.
func (k FlowKey) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64, n int) {
		for i := 0; i < n; i++ {
			h ^= v & 0xFF
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(k.Src), 4)
	mix(uint64(k.Dst), 4)
	mix(uint64(k.SrcPort), 2)
	mix(uint64(k.DstPort), 2)
	mix(uint64(k.Proto), 1)
	return h
}

// FlowHash returns (and caches) the packet's flow hash.
func (p *Packet) FlowHash() uint64 {
	if p.FlowID == 0 {
		p.FlowID = p.Flow().Hash()
		if p.FlowID == 0 {
			p.FlowID = 1 // reserve 0 as "unset"
		}
	}
	return p.FlowID
}

// SymmetricHash mixes the 5-tuple like Hash, but canonicalizes the
// direction first so both halves of a bidirectional flow produce the
// same value — the property RSS steering needs to land a connection's
// request and reply traffic on the same core. The (address, port) pairs
// swap as units rather than each field sorting independently, so two
// distinct flows that happen to share sorted endpoints don't collide.
func (k FlowKey) SymmetricHash() uint64 {
	if k.Dst < k.Src || (k.Dst == k.Src && k.DstPort < k.SrcPort) {
		k.Src, k.Dst = k.Dst, k.Src
		k.SrcPort, k.DstPort = k.DstPort, k.SrcPort
	}
	return k.Hash()
}

// RSSHash returns (and caches) the symmetric steering hash used to pick
// an input queue. Fragments past the first carry no L4 header, so any
// fragment of a fragmented datagram (MF set or nonzero offset) hashes
// on addresses and protocol alone — the 3-tuple, exactly what RSS NICs
// fall back to — which keeps a whole fragment train on one core, where
// the Reassembler's partial-datagram state lives.
func (p *Packet) RSSHash() uint64 {
	if p.rssHash == 0 {
		k := p.Flow()
		ih := p.IPv4()
		if ih.MF() || ih.FragOffset() != 0 {
			k.SrcPort, k.DstPort = 0, 0
		}
		p.rssHash = k.SymmetricHash()
		if p.rssHash == 0 {
			p.rssHash = 1 // reserve 0 as "unset"
		}
	}
	return p.rssHash
}

// InvalidateFlowHash clears both cached hashes. Elements that rewrite
// any field the 5-tuple covers (addresses, ports, protocol, the
// fragmentation words) must call it before letting the packet go
// downstream; TTL decrements and checksum updates don't need to.
func (p *Packet) InvalidateFlowHash() {
	p.FlowID = 0
	p.rssHash = 0
}
