package pkt

import (
	"sync"
	"testing"
)

// TestPoolShardRefillFlush forces batch crossings between a shard and
// the backing store with a deliberately tiny budget, and checks the
// accounting at every step: nothing is lost, FreeLen never exceeds the
// retention budget, and a drained pool refills shards from the backing
// store rather than allocating.
func TestPoolShardRefillFlush(t *testing.T) {
	const maxFree = 16
	pool := NewPoolShards(maxFree, 4)
	s := pool.Shard(0)

	// Fill well past the shard's limit so Puts flush into backing.
	live := make([]*Packet, 0, 4*maxFree)
	for i := 0; i < 4*maxFree; i++ {
		live = append(live, s.Get(64))
	}
	for _, p := range live {
		s.Put(p)
	}
	if got := pool.FreeLen(); got > maxFree {
		t.Errorf("FreeLen = %d after mass Put, want <= %d (retention budget)", got, maxFree)
	}
	if got := pool.FreeLen(); got == 0 {
		t.Error("FreeLen = 0 after mass Put: nothing was retained")
	}
	if bl := int(pool.backingLen.Load()); bl == 0 {
		t.Error("backing store empty after flushing past the shard limit")
	}

	// Drain through a different shard: its refill must pull the retained
	// packets out of the backing store before allocating fresh ones.
	s2 := pool.Shard(1)
	retained := pool.FreeLen()
	for i := 0; i < retained; i++ {
		s2.Get(64)
	}
	_, hits, _ := s2.Stats()
	if hits == 0 {
		t.Error("no freelist hits draining via a sibling shard: refill did not reach the backing store")
	}
}

// TestPoolShardLocalRecycle: a shard Put keeps the buffer on that shard
// even when the packet was drawn elsewhere (core-local recycling), and
// the packet is restamped to its new home on the next Get.
func TestPoolShardLocalRecycle(t *testing.T) {
	pool := NewPoolShards(64, 4)
	p := pool.Shard(0).Get(64)
	if p.home != 0 {
		t.Fatalf("home = %d after shard-0 Get, want 0", p.home)
	}
	pool.Shard(3).Put(p)
	if got := pool.Shard(3).FreeLen(); got != 1 {
		t.Errorf("shard 3 FreeLen = %d after local Put, want 1", got)
	}
	q := pool.Shard(3).Get(64)
	if q != p {
		t.Error("shard 3 Get did not reuse the locally recycled packet")
	}
	if q.home != 3 {
		t.Errorf("home = %d after shard-3 reuse, want 3 (restamped)", q.home)
	}
}

// TestPoolHomeRouting: plain Pool.Put routes by the packet's provenance
// stamp, so a single-threaded Put-then-Get round trip through the
// pool-level API reuses the same packet even on a many-shard pool.
func TestPoolHomeRouting(t *testing.T) {
	pool := NewPoolShards(256, 8)
	p := pool.Shard(5).Get(64)
	pool.Put(p)
	if got := pool.Shard(5).FreeLen(); got != 1 {
		t.Errorf("shard 5 FreeLen = %d after routed Put, want 1", got)
	}
	if q := pool.Shard(5).Get(64); q != p {
		t.Error("routed Put did not land on the packet's home shard")
	}
}

// TestPoolShardStress is the -race gate for the shard protocol: many
// goroutines hammer their own shards — plus deliberate cross-shard
// Puts — with a budget small enough that refill and flush crossings
// happen constantly. The conservation invariant: every Get is matched
// by exactly one accepted Put and no double put is ever recorded, no
// matter how the backing-store batches interleave.
func TestPoolShardStress(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
		batch   = 16
	)
	pool := NewPoolShards(64, 4) // tiny: constant refill/flush traffic
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			own := pool.Shard(w)
			remote := pool.Shard(w + 1)
			buf := make([]*Packet, 0, batch)
			for r := 0; r < rounds; r++ {
				buf = buf[:0]
				for i := 0; i < batch; i++ {
					buf = append(buf, own.Get(64))
				}
				// Odd rounds recycle remotely: the steal/handoff pattern.
				dst := own
				if r%2 == 1 {
					dst = remote
				}
				for _, p := range buf {
					dst.Put(p)
				}
			}
		}()
	}
	wg.Wait()

	gets, hits, puts, doublePuts := pool.Stats()
	want := uint64(workers * rounds * batch)
	if gets != want {
		t.Errorf("gets = %d, want %d", gets, want)
	}
	if puts != want {
		t.Errorf("puts = %d, want %d (conservation: every Get returned exactly once)", puts, want)
	}
	if doublePuts != 0 {
		t.Errorf("doublePuts = %d, want 0", doublePuts)
	}
	if hits > gets {
		t.Errorf("hits (%d) > gets (%d)", hits, gets)
	}
	if free := pool.FreeLen(); free > 64 {
		t.Errorf("FreeLen = %d, want <= 64 (retention budget)", free)
	}
}

// TestPoolPutBatchStress exercises the batched put path under -race:
// concurrent PutBatch calls against shared shards must accept every
// packet exactly once.
func TestPoolPutBatchStress(t *testing.T) {
	const (
		workers = 4
		rounds  = 1000
		batch   = 32
	)
	pool := NewPoolShards(128, 4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			own := pool.Shard(w)
			b := NewBatch(batch)
			for r := 0; r < rounds; r++ {
				b.Reset()
				for i := 0; i < batch; i++ {
					b.Add(own.Get(64))
				}
				// Alternate between shard-batched and pool-routed puts.
				if r%2 == 0 {
					own.PutBatch(b)
				} else {
					pool.PutBatch(b)
				}
			}
		}()
	}
	wg.Wait()

	gets, _, puts, doublePuts := pool.Stats()
	want := uint64(workers * rounds * batch)
	if gets != want || puts != want || doublePuts != 0 {
		t.Errorf("gets/puts/doublePuts = %d/%d/%d, want %d/%d/0", gets, puts, doublePuts, want, want)
	}
}
