package pkt

import (
	"encoding/binary"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestNewPacketSkeleton(t *testing.T) {
	p := New(64, addr("10.1.2.3"), addr("192.168.9.1"), 1234, 80)
	if p.Len() != 64 {
		t.Fatalf("Len = %d, want 64", p.Len())
	}
	if p.Ether().EtherType() != EtherTypeIPv4 {
		t.Errorf("EtherType = %#x, want %#x", p.Ether().EtherType(), EtherTypeIPv4)
	}
	ih := p.IPv4()
	if ih.Version() != 4 || ih.IHL() != 5 {
		t.Errorf("version/IHL = %d/%d, want 4/5", ih.Version(), ih.IHL())
	}
	if ih.TotalLength() != 50 {
		t.Errorf("TotalLength = %d, want 50", ih.TotalLength())
	}
	if got := ih.Src(); got != addr("10.1.2.3") {
		t.Errorf("Src = %v", got)
	}
	if got := ih.Dst(); got != addr("192.168.9.1") {
		t.Errorf("Dst = %v", got)
	}
	if !ih.VerifyChecksum() {
		t.Error("fresh packet fails checksum verification")
	}
	uh := p.UDP()
	if uh.SrcPort() != 1234 || uh.DstPort() != 80 {
		t.Errorf("ports = %d/%d", uh.SrcPort(), uh.DstPort())
	}
	if uh.Length() != 30 {
		t.Errorf("UDP length = %d, want 30", uh.Length())
	}
}

func TestNewPacketTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undersized New did not panic")
		}
	}()
	New(20, addr("1.2.3.4"), addr("5.6.7.8"), 1, 2)
}

func TestChecksumRFC1071Vector(t *testing.T) {
	// Classic example from RFC 1071 §3: words 0001 f203 f4f5 f6f7.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	b := []byte{0xFF, 0xFF, 0x01}
	// Sum = ffff + 0100 -> 1_00ff -> 0100; ^0100 = feff
	if got := Checksum(b); got != 0xfeff {
		t.Fatalf("odd-length Checksum = %#x, want 0xfeff", got)
	}
}

func TestDecTTLIncrementalChecksum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := New(64+rng.Intn(1000),
			netip.AddrFrom4([4]byte{byte(rng.Int()), byte(rng.Int()), byte(rng.Int()), byte(rng.Int())}),
			netip.AddrFrom4([4]byte{byte(rng.Int()), byte(rng.Int()), byte(rng.Int()), byte(rng.Int())}),
			uint16(rng.Int()), uint16(rng.Int()))
		ih := p.IPv4()
		ttl := uint8(2 + rng.Intn(250))
		ih.SetTTL(ttl)
		ih.UpdateChecksum()
		if !ih.DecTTL() {
			t.Fatalf("DecTTL failed for TTL %d", ttl)
		}
		if ih.TTL() != ttl-1 {
			t.Fatalf("TTL = %d, want %d", ih.TTL(), ttl-1)
		}
		if !ih.VerifyChecksum() {
			t.Fatalf("incremental checksum diverged at iteration %d (ttl %d)", i, ttl)
		}
	}
}

func TestDecTTLExpiry(t *testing.T) {
	p := New(64, addr("1.1.1.1"), addr("2.2.2.2"), 1, 2)
	for _, ttl := range []uint8{0, 1} {
		p.IPv4().SetTTL(ttl)
		if p.IPv4().DecTTL() {
			t.Errorf("DecTTL with TTL=%d returned true", ttl)
		}
	}
}

func TestNodeMACRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 255, 256, 4095, 65535} {
		m := NodeMAC(n)
		if !m.IsNodeMAC() {
			t.Errorf("NodeMAC(%d) not recognized", n)
		}
		if m.Node() != n {
			t.Errorf("NodeMAC(%d).Node() = %d", n, m.Node())
		}
	}
	var plain MAC
	if plain.IsNodeMAC() {
		t.Error("zero MAC recognized as node MAC")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Fatalf("String = %q", m.String())
	}
}

func TestFlowExtraction(t *testing.T) {
	p := New(64, addr("10.0.0.1"), addr("10.0.0.2"), 5000, 443)
	k := p.Flow()
	if k.SrcPort != 5000 || k.DstPort != 443 || k.Proto != ProtoUDP {
		t.Fatalf("flow = %+v", k)
	}
	if k.Src != binary.BigEndian.Uint32([]byte{10, 0, 0, 1}) {
		t.Fatalf("src = %#x", k.Src)
	}
}

func TestFlowHashStableAndCached(t *testing.T) {
	p := New(64, addr("10.0.0.1"), addr("10.0.0.2"), 5000, 443)
	h1 := p.FlowHash()
	h2 := p.FlowHash()
	if h1 != h2 || h1 == 0 {
		t.Fatalf("hash unstable or zero: %x %x", h1, h2)
	}
	q := New(128, addr("10.0.0.1"), addr("10.0.0.2"), 5000, 443)
	if q.FlowHash() != h1 {
		t.Fatal("same 5-tuple, different hash")
	}
	r := New(64, addr("10.0.0.1"), addr("10.0.0.2"), 5001, 443)
	if r.FlowHash() == h1 {
		t.Fatal("different 5-tuple, same hash (suspicious for FNV)")
	}
}

func TestFlowHashDirectionality(t *testing.T) {
	a := FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoTCP}
	b := FlowKey{Src: 2, Dst: 1, SrcPort: 20, DstPort: 10, Proto: ProtoTCP}
	if a.Hash() == b.Hash() {
		t.Fatal("reverse direction hashed identically")
	}
}

func TestClone(t *testing.T) {
	p := New(64, addr("1.1.1.1"), addr("2.2.2.2"), 1, 2)
	p.SeqNo = 42
	q := p.Clone()
	q.Data[20] ^= 0xFF
	if p.Data[20] == q.Data[20] {
		t.Fatal("Clone shares data")
	}
	if q.SeqNo != 42 {
		t.Fatal("Clone dropped metadata")
	}
}

// Property: checksum of a header with its checksum field in place verifies
// as zero (RFC 1071 receiver rule), for random addresses and lengths.
func TestPropertyChecksumVerifies(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, extra uint8) bool {
		size := 64 + int(extra)
		var s4, d4 [4]byte
		binary.BigEndian.PutUint32(s4[:], src)
		binary.BigEndian.PutUint32(d4[:], dst)
		p := New(size, netip.AddrFrom4(s4), netip.AddrFrom4(d4), sp, dp)
		return p.IPv4().VerifyChecksum()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for random payload mutations, recomputing the checksum always
// re-validates, and flipping any header byte afterwards invalidates it.
func TestPropertyChecksumDetectsCorruption(t *testing.T) {
	f := func(seed int64, flip uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(64, addr("10.0.0.1"), addr("10.0.0.2"), 1, 2)
		ih := p.IPv4()
		ih.SetTTL(uint8(rng.Intn(256)))
		ih.SetID(uint16(rng.Intn(65536)))
		ih.UpdateChecksum()
		if !ih.VerifyChecksum() {
			return false
		}
		// Flip one bit somewhere in the 20-byte header, but not in the
		// checksum field itself (bytes 10-11), which RFC 1071 cannot
		// always distinguish... actually any single-bit flip is caught;
		// flipping checksum bytes is also caught. Allow all 20.
		idx := int(flip) % IPv4HdrLen
		bit := byte(1 << (flip % 8))
		ih[idx] ^= bit
		ok := !ih.VerifyChecksum()
		// 0x0000 vs 0xFFFF ambiguity: flipping all bits of a zero word is
		// the only undetectable single-bit case, and a single-bit flip
		// cannot produce it. So corruption must always be detected.
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkChecksum64(b *testing.B) {
	p := New(64, addr("10.0.0.1"), addr("10.0.0.2"), 1, 2)
	h := p.IPv4()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.UpdateChecksum()
	}
}

func BenchmarkFlowHash(b *testing.B) {
	p := New(64, addr("10.0.0.1"), addr("10.0.0.2"), 1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.FlowID = 0
		_ = p.FlowHash()
	}
}

func BenchmarkDecTTL(b *testing.B) {
	p := New(64, addr("10.0.0.1"), addr("10.0.0.2"), 1, 2)
	h := p.IPv4()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.SetTTL(64)
		h.UpdateChecksum()
		h.DecTTL()
	}
}
