package pkt

import (
	"net/netip"
	"testing"
)

func TestPoolReuseReturnsZeroedRightSizedBuffers(t *testing.T) {
	pl := NewPool(16)
	p := pl.Get(128)
	if len(p.Data) != 128 {
		t.Fatalf("Get(128) len = %d", len(p.Data))
	}
	// Dirty every byte and all metadata, then recycle.
	for i := range p.Data {
		p.Data[i] = 0xAB
	}
	p.SeqNo = 42
	p.VLBPhase = 2
	p.Paint = 7
	p.NextHop = 3
	p.Arrival = 999
	p.InputPort = 5
	p.FlowID = 0xDEAD
	pl.Put(p)
	if pl.FreeLen() != 1 {
		t.Fatalf("FreeLen = %d after Put", pl.FreeLen())
	}

	q := pl.Get(64)
	if q != p {
		t.Fatal("pool did not reuse the freed packet")
	}
	if len(q.Data) != 64 {
		t.Fatalf("reused packet len = %d, want 64", len(q.Data))
	}
	for i, v := range q.Data {
		if v != 0 {
			t.Fatalf("reused byte %d = %#x, want zero", i, v)
		}
	}
	if q.SeqNo != 0 || q.VLBPhase != 0 || q.Paint != 0 || q.NextHop != 0 ||
		q.Arrival != 0 || q.InputPort != 0 || q.FlowID != 0 {
		t.Fatalf("reused packet metadata not reset: %+v", q)
	}
	gets, hits, puts, _ := pl.Stats()
	if gets != 2 || hits != 1 || puts != 1 {
		t.Fatalf("stats = gets %d hits %d puts %d", gets, hits, puts)
	}
}

func TestPoolGrowsBufferOnDemand(t *testing.T) {
	pl := NewPool(16)
	p := pl.Get(64)
	pl.Put(p)
	big := pl.Get(MaxSize + 100) // larger than the pooled MaxSize buffer
	if len(big.Data) != MaxSize+100 {
		t.Fatalf("len = %d", len(big.Data))
	}
	pl.Put(big)
	// The regrown buffer is retained and can serve standard sizes again.
	q := pl.Get(MinSize)
	if q != big || len(q.Data) != MinSize {
		t.Fatalf("reuse after grow failed: same=%v len=%d", q == big, len(q.Data))
	}
}

func TestPoolDoublePutIgnored(t *testing.T) {
	pl := NewPool(16)
	p := pl.Get(64)
	pl.Put(p)
	pl.Put(p) // must not land on the freelist twice
	if pl.FreeLen() != 1 {
		t.Fatalf("FreeLen = %d after double Put", pl.FreeLen())
	}
	_, _, _, doubles := pl.Stats()
	if doubles != 1 {
		t.Fatalf("doublePuts = %d, want 1", doubles)
	}
	a := pl.Get(64)
	b := pl.Get(64)
	if a == b {
		t.Fatal("double Put handed one packet out twice")
	}
	pl.Put(nil) // nil Put is a no-op
}

func TestPoolMaxFreeBounded(t *testing.T) {
	pl := NewPool(2)
	for i := 0; i < 5; i++ {
		pl.Put(pl.Get(64))
	}
	if pl.FreeLen() > 2 {
		t.Fatalf("FreeLen = %d, want ≤ 2", pl.FreeLen())
	}
}

func TestPoolPutBatch(t *testing.T) {
	pl := NewPool(16)
	b := NewBatch(4)
	for i := 0; i < 3; i++ {
		b.Add(pl.Get(64))
	}
	pl.PutBatch(b)
	if b.Len() != 0 {
		t.Fatalf("batch len = %d after PutBatch", b.Len())
	}
	if pl.FreeLen() != 3 {
		t.Fatalf("FreeLen = %d, want 3", pl.FreeLen())
	}
}

func TestNewAndCloneDrawFromDefaultPool(t *testing.T) {
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.1.0.1")
	p := New(96, src, dst, 1, 2)
	p.Data[80] = 0x5A
	DefaultPool.Put(p)
	q := New(96, src, dst, 1, 2) // must reuse p's buffer, rebuilt cleanly
	if q.Data[80] != 0 {
		t.Fatal("recycled payload byte leaked into New")
	}
	if q.IPv4().Dst() != dst || !q.IPv4().VerifyChecksum() {
		t.Fatal("New over recycled buffer built a bad header")
	}

	c := q.Clone()
	if c == q {
		t.Fatal("Clone returned the original")
	}
	if string(c.Data) != string(q.Data) {
		t.Fatal("Clone data mismatch")
	}
	c.Data[20] ^= 0xFF
	if q.Data[20] == c.Data[20] {
		t.Fatal("Clone shares storage with original")
	}
}
