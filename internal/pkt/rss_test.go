package pkt

import (
	"net/netip"
	"testing"
)

var (
	rssA = netip.MustParseAddr("10.1.0.1")
	rssB = netip.MustParseAddr("10.2.0.2")
)

func TestSymmetricHashBothDirections(t *testing.T) {
	fwd := FlowKey{Src: 0x0a010001, Dst: 0x0a020002, SrcPort: 3333, DstPort: 80, Proto: ProtoTCP}
	rev := FlowKey{Src: 0x0a020002, Dst: 0x0a010001, SrcPort: 80, DstPort: 3333, Proto: ProtoTCP}
	if fwd.SymmetricHash() != rev.SymmetricHash() {
		t.Fatalf("directions hash apart: %x vs %x", fwd.SymmetricHash(), rev.SymmetricHash())
	}
	if fwd.Hash() == rev.Hash() {
		t.Fatalf("plain Hash unexpectedly symmetric")
	}
	// Pairs swap as units: (A:1, B:2) and (A:2, B:1) are different flows
	// even though the sorted field multisets match.
	x := FlowKey{Src: 1, Dst: 2, SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
	y := FlowKey{Src: 1, Dst: 2, SrcPort: 2, DstPort: 1, Proto: ProtoUDP}
	if x.SymmetricHash() == y.SymmetricHash() {
		t.Fatalf("distinct flows with equal sorted endpoints collide")
	}
}

func TestRSSHashCachedAndCloned(t *testing.T) {
	p := New(128, rssA, rssB, 1234, 80)
	h := p.RSSHash()
	if h == 0 {
		t.Fatalf("RSSHash returned reserved 0")
	}
	q := p.Clone()
	if q.rssHash != h {
		t.Fatalf("clone lost the cached steer hash: %x vs %x", q.rssHash, h)
	}
	// Reply direction steers to the same value.
	r := New(128, rssB, rssA, 80, 1234)
	if r.RSSHash() != h {
		t.Fatalf("reply direction steers apart: %x vs %x", r.RSSHash(), h)
	}
	p.InvalidateFlowHash()
	if p.rssHash != 0 || p.FlowID != 0 {
		t.Fatalf("InvalidateFlowHash left caches set")
	}
	DefaultPool.Put(p)
	DefaultPool.Put(q)
	DefaultPool.Put(r)
}

func TestRSSHashPoolReset(t *testing.T) {
	p := New(128, rssA, rssB, 1234, 80)
	p.RSSHash()
	DefaultPool.Put(p)
	q := DefaultPool.Get(128)
	defer DefaultPool.Put(q)
	if q.rssHash != 0 {
		t.Fatalf("pool handed out a packet with a stale steer hash %x", q.rssHash)
	}
}

// Every fragment of a datagram must steer with its head: fragments past
// the first have no ports, so the whole train hashes on the 3-tuple.
func TestRSSHashFragmentTrain(t *testing.T) {
	p := New(1400, rssA, rssB, 1234, 80)
	p.RSSHash() // cache on the unfragmented original
	frags := p.Fragment(576)
	if len(frags) < 2 {
		t.Fatalf("expected multiple fragments, got %d", len(frags))
	}
	want := frags[0].RSSHash()
	for i, f := range frags {
		if f.rssHash == 0 && i == 0 {
			t.Fatalf("RSSHash did not cache")
		}
		if f.RSSHash() != want {
			t.Fatalf("fragment %d steers apart: %x vs %x", i, f.RSSHash(), want)
		}
	}
	// The 3-tuple rule is direction-symmetric too.
	r := New(1400, rssB, rssA, 80, 1234)
	rfrags := r.Fragment(576)
	if rfrags[1].RSSHash() != want {
		t.Fatalf("reverse fragments steer apart: %x vs %x", rfrags[1].RSSHash(), want)
	}
	// An unfragmented packet of the same flow hashes with ports — the
	// fragment fallback only applies to actual fragments.
	u := New(128, rssA, rssB, 1234, 80)
	defer DefaultPool.Put(u)
	if u.RSSHash() == want {
		t.Fatalf("unfragmented packet fell back to the 3-tuple hash")
	}
	DefaultPool.Put(p)
	DefaultPool.Put(r)
}
