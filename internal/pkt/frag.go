package pkt

import "encoding/binary"

// IPv4 fragmentation (RFC 791). The IPsec gateway path needs it: ESP
// encapsulation of an MTU-sized inner packet overflows the outer MTU, so
// a production gateway either fragments or relies on PMTU discovery. The
// router also forwards fragments like any other packets (they share the
// flow key of their first fragment only if ports are present, so
// fragments after the first hash on addresses+protocol alone — which is
// also how real RSS behaves).

// Fragment flag bits in the IPv4 flags/offset field.
const (
	FlagDF = 0x4000 // don't fragment
	FlagMF = 0x2000 // more fragments
)

// FlagsOffset returns the raw flags+fragment-offset field.
func (h IPv4Hdr) FlagsOffset() uint16 { return binary.BigEndian.Uint16(h[6:8]) }

// SetFlagsOffset sets the raw flags+fragment-offset field.
func (h IPv4Hdr) SetFlagsOffset(v uint16) { binary.BigEndian.PutUint16(h[6:8], v) }

// DF reports the don't-fragment bit.
func (h IPv4Hdr) DF() bool { return h.FlagsOffset()&FlagDF != 0 }

// MF reports the more-fragments bit.
func (h IPv4Hdr) MF() bool { return h.FlagsOffset()&FlagMF != 0 }

// FragOffset reports the fragment offset in bytes.
func (h IPv4Hdr) FragOffset() int { return int(h.FlagsOffset()&0x1FFF) * 8 }

// Fragment splits an IPv4 packet into fragments whose IP payloads are at
// most mtu−IPv4HdrLen bytes (mtu counts the IP header, not Ethernet).
// It returns the original packet unchanged if it already fits. Fragment
// payload sizes are multiples of 8 except the last. The DF bit is the
// caller's to check.
func (p *Packet) Fragment(mtu int) []*Packet {
	ipLen := int(p.IPv4().TotalLength())
	if ipLen <= mtu {
		return []*Packet{p}
	}
	payload := p.Data[EtherHdrLen+IPv4HdrLen : EtherHdrLen+ipLen]
	chunk := (mtu - IPv4HdrLen) &^ 7 // multiple of 8
	if chunk <= 0 {
		return []*Packet{p}
	}
	baseOffset := p.IPv4().FragOffset() / 8
	origMF := p.IPv4().MF()

	var frags []*Packet
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		last := false
		if end >= len(payload) {
			end = len(payload)
			last = true
		}
		fragLen := EtherHdrLen + IPv4HdrLen + (end - off)
		frameLen := fragLen
		if frameLen < MinSize {
			frameLen = MinSize
		}
		f := &Packet{
			Data:      make([]byte, frameLen),
			Arrival:   p.Arrival,
			InputPort: p.InputPort,
			SeqNo:     p.SeqNo,
		}
		copy(f.Data[:EtherHdrLen+IPv4HdrLen], p.Data[:EtherHdrLen+IPv4HdrLen])
		copy(f.Data[EtherHdrLen+IPv4HdrLen:], payload[off:end])
		ih := f.IPv4()
		ih.SetTotalLength(uint16(IPv4HdrLen + (end - off)))
		fo := uint16(baseOffset + off/8)
		if !last || origMF {
			fo |= FlagMF
		}
		ih.SetFlagsOffset(fo)
		ih.UpdateChecksum()
		frags = append(frags, f)
	}
	return frags
}
