package pkt

import (
	"encoding/binary"
	"net/netip"
)

// ICMP types used by the router datapath.
const (
	ICMPEchoReply    = 0
	ICMPDestUnreach  = 3
	ICMPEcho         = 8
	ICMPTimeExceeded = 11

	ICMPHdrLen = 8
)

// ICMP codes.
const (
	ICMPCodeTTLExpired = 0 // for ICMPTimeExceeded
	ICMPCodeFragNeeded = 4 // for ICMPDestUnreach (PMTU discovery)
	ICMPCodeNetUnreach = 0 // for ICMPDestUnreach
)

// ICMPHdr is a zero-copy view over an ICMP header.
type ICMPHdr []byte

// Type returns the ICMP type.
func (h ICMPHdr) Type() uint8 { return h[0] }

// Code returns the ICMP code.
func (h ICMPHdr) Code() uint8 { return h[1] }

// SetType sets the ICMP type.
func (h ICMPHdr) SetType(v uint8) { h[0] = v }

// SetCode sets the ICMP code.
func (h ICMPHdr) SetCode(v uint8) { h[1] = v }

// Checksum returns the ICMP checksum field.
func (h ICMPHdr) Checksum() uint16 { return binary.BigEndian.Uint16(h[2:4]) }

// SetChecksum sets the ICMP checksum field.
func (h ICMPHdr) SetChecksum(v uint16) { binary.BigEndian.PutUint16(h[2:4], v) }

// ICMP returns a view over the ICMP header of an IPv4/ICMP packet.
func (p *Packet) ICMP() ICMPHdr { return ICMPHdr(p.Data[EtherHdrLen+IPv4HdrLen:]) }

// NewICMPError builds the ICMP error a router sends about a failing
// packet: IP header + 8 bytes of the original datagram quoted after an
// 8-byte ICMP header (RFC 792). src is the erroring router's address;
// the error is addressed to the original packet's source.
func NewICMPError(orig *Packet, src netip.Addr, icmpType, icmpCode uint8) *Packet {
	quote := IPv4HdrLen + 8
	avail := len(orig.Data) - EtherHdrLen
	if avail < quote {
		quote = avail
	}
	total := EtherHdrLen + IPv4HdrLen + ICMPHdrLen + quote
	if total < MinSize {
		total = MinSize // pad to minimum frame
	}
	p := &Packet{Data: make([]byte, total)}
	eh := p.Ether()
	eh.SetDst(orig.Ether().Src())
	eh.SetSrc(orig.Ether().Dst())
	eh.SetEtherType(EtherTypeIPv4)

	ih := p.IPv4()
	ih.SetVersionIHL()
	ih.SetTotalLength(uint16(IPv4HdrLen + ICMPHdrLen + quote))
	ih.SetTTL(64)
	ih.SetProtocol(ProtoICMP)
	ih.SetSrc(src)
	ih.SetDst(orig.IPv4().Src())
	ih.UpdateChecksum()

	icmp := p.ICMP()
	icmp.SetType(icmpType)
	icmp.SetCode(icmpCode)
	copy(p.Data[EtherHdrLen+IPv4HdrLen+ICMPHdrLen:], orig.Data[EtherHdrLen:EtherHdrLen+quote])
	icmp.SetChecksum(0)
	icmp.SetChecksum(Checksum(p.Data[EtherHdrLen+IPv4HdrLen : EtherHdrLen+IPv4HdrLen+ICMPHdrLen+quote]))
	return p
}
