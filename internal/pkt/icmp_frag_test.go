package pkt

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestICMPErrorConstruction(t *testing.T) {
	orig := New(200, addr("10.1.1.1"), addr("10.2.2.2"), 5555, 80)
	orig.Ether().SetSrc(MAC{1, 2, 3, 4, 5, 6})
	orig.Ether().SetDst(MAC{9, 8, 7, 6, 5, 4})
	routerAddr := addr("192.0.2.254")

	e := NewICMPError(orig, routerAddr, ICMPTimeExceeded, ICMPCodeTTLExpired)
	ih := e.IPv4()
	if ih.Protocol() != ProtoICMP {
		t.Fatalf("protocol = %d", ih.Protocol())
	}
	if ih.Src() != routerAddr {
		t.Fatalf("src = %v, want router", ih.Src())
	}
	if ih.Dst() != addr("10.1.1.1") {
		t.Fatalf("dst = %v, want original source", ih.Dst())
	}
	if !ih.VerifyChecksum() {
		t.Fatal("IP checksum invalid")
	}
	icmp := e.ICMP()
	if icmp.Type() != ICMPTimeExceeded || icmp.Code() != ICMPCodeTTLExpired {
		t.Fatalf("type/code = %d/%d", icmp.Type(), icmp.Code())
	}
	// ICMP checksum over header+payload must verify to zero.
	body := e.Data[EtherHdrLen+IPv4HdrLen : EtherHdrLen+int(ih.TotalLength())]
	if Checksum(body) != 0 {
		t.Fatal("ICMP checksum invalid")
	}
	// Quoted bytes: original IP header + 8.
	quote := e.Data[EtherHdrLen+IPv4HdrLen+ICMPHdrLen:]
	if !bytes.Equal(quote[:IPv4HdrLen+8], orig.Data[EtherHdrLen:EtherHdrLen+IPv4HdrLen+8]) {
		t.Fatal("quoted original bytes mismatch")
	}
	// Ethernet addressing reversed.
	if e.Ether().Dst() != orig.Ether().Src() {
		t.Fatal("ethernet dst not reversed")
	}
	if e.Len() < MinSize {
		t.Fatalf("frame below minimum: %d", e.Len())
	}
}

func TestICMPErrorShortOriginal(t *testing.T) {
	// A 64 B original has fewer than 28 quotable bytes past Ethernet?
	// 64-14 = 50 ≥ 28, so build an artificially short one.
	orig := &Packet{Data: make([]byte, EtherHdrLen+IPv4HdrLen+4)}
	orig.IPv4().SetVersionIHL()
	orig.IPv4().SetSrc(addr("1.2.3.4"))
	e := NewICMPError(orig, addr("5.6.7.8"), ICMPDestUnreach, ICMPCodeNetUnreach)
	if e == nil || e.Len() < MinSize {
		t.Fatal("short original not handled")
	}
}

func TestFragmentRoundTrip(t *testing.T) {
	const size = 1514 // 1500 IP + ether
	p := New(size, addr("10.0.0.1"), addr("10.0.0.2"), 1, 2)
	for i := EtherHdrLen + IPv4HdrLen + UDPHdrLen; i < size; i++ {
		p.Data[i] = byte(i * 7)
	}
	p.IPv4().UpdateChecksum()
	orig := p.Clone()

	frags := p.Fragment(576)
	if len(frags) < 3 {
		t.Fatalf("fragments = %d, want ≥3", len(frags))
	}
	// Reassemble by offset and compare payload bytes.
	reassembled := make([]byte, 1500-IPv4HdrLen)
	seen := 0
	for i, f := range frags {
		ih := f.IPv4()
		if !ih.VerifyChecksum() {
			t.Fatalf("fragment %d checksum invalid", i)
		}
		off := ih.FragOffset()
		data := f.Data[EtherHdrLen+IPv4HdrLen : EtherHdrLen+int(ih.TotalLength())]
		copy(reassembled[off:], data)
		seen += len(data)
		if i < len(frags)-1 {
			if !ih.MF() {
				t.Fatalf("fragment %d missing MF", i)
			}
			if len(data)%8 != 0 {
				t.Fatalf("fragment %d payload %d not multiple of 8", i, len(data))
			}
			if int(ih.TotalLength()) > 576 {
				t.Fatalf("fragment %d exceeds MTU", i)
			}
		} else if ih.MF() {
			t.Fatal("last fragment has MF set")
		}
	}
	if seen != len(reassembled) {
		t.Fatalf("reassembled %d of %d bytes", seen, len(reassembled))
	}
	want := orig.Data[EtherHdrLen+IPv4HdrLen : EtherHdrLen+1500]
	if !bytes.Equal(reassembled, want) {
		t.Fatal("reassembled payload differs")
	}
}

func TestFragmentFitsUnchanged(t *testing.T) {
	p := New(200, addr("10.0.0.1"), addr("10.0.0.2"), 1, 2)
	frags := p.Fragment(576)
	if len(frags) != 1 || frags[0] != p {
		t.Fatal("undersized packet was fragmented")
	}
}

func TestFragmentPreservesExistingOffset(t *testing.T) {
	// Fragmenting a fragment must offset relative to the original datagram.
	p := New(1014, addr("10.0.0.1"), addr("10.0.0.2"), 1, 2)
	p.IPv4().SetFlagsOffset(FlagMF | (1000 / 8)) // a middle fragment
	p.IPv4().UpdateChecksum()
	frags := p.Fragment(576)
	if len(frags) < 2 {
		t.Fatalf("fragments = %d", len(frags))
	}
	if got := frags[0].IPv4().FragOffset(); got != 1000 {
		t.Fatalf("first sub-fragment offset = %d, want 1000", got)
	}
	if !frags[len(frags)-1].IPv4().MF() {
		t.Fatal("sub-fragments of a middle fragment must all keep MF")
	}
}

// Property: fragments cover the payload exactly once, in order, for any
// size/mtu combination.
func TestPropertyFragmentCoverage(t *testing.T) {
	f := func(sizeRaw, mtuRaw uint16) bool {
		size := 64 + int(sizeRaw)%1450
		mtu := 68 + int(mtuRaw)%1400 // ≥68 per RFC 791
		p := New(size, addr("10.0.0.1"), addr("10.0.0.2"), 1, 2)
		ipLen := int(p.IPv4().TotalLength())
		frags := p.Fragment(mtu)
		covered := 0
		expectedOff := 0
		for _, fr := range frags {
			if fr.IPv4().FragOffset() != expectedOff && len(frags) > 1 {
				return false
			}
			n := int(fr.IPv4().TotalLength()) - IPv4HdrLen
			covered += n
			expectedOff += n
		}
		return covered == ipLen-IPv4HdrLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func addrFrom(b [4]byte) netip.Addr { return netip.AddrFrom4(b) }
