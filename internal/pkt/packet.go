// Package pkt defines the packet representation shared by every layer of
// the router: raw bytes plus parsed header views, Ethernet/IPv4/UDP/TCP
// marshalling, the internet checksum, and the 5-tuple flow hash used for
// RSS queue selection and VLB flowlet tracking.
//
// Packets are real: elements parse and rewrite actual header bytes, so a
// bug in checksum updating or TTL decrement is caught by tests the same
// way it would be on a wire.
package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Header and size constants. MinSize is the classic 64-byte minimum
// Ethernet frame that the paper uses as its worst-case workload.
const (
	EtherHdrLen = 14
	IPv4HdrLen  = 20
	UDPHdrLen   = 8
	TCPHdrLen   = 20

	MinSize = 64
	MaxSize = 1518 // 1500 MTU + Ethernet header + nothing fancy
)

// EtherType values understood by the classifier elements.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
	EtherTypeVLB  = 0x88B5 // local experimental EtherType: VLB phase tag
)

// IP protocol numbers used by the workloads.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
	ProtoESP  = 50
)

// MAC is a 6-byte Ethernet address. RB4 encodes the VLB output node in the
// destination MAC (§6.1 of the paper), so MACs are first-class here.
type MAC [6]byte

// String renders the conventional colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// NodeMAC returns the locally administered MAC that RB4 assigns to a
// cluster node's internal ports; the low byte carries the node ID so that
// receive-queue steering can recover the output node without touching the
// IP header (paper §6.1, "minimizing packet processing").
func NodeMAC(node int) MAC {
	return MAC{0x02, 0x52, 0x42, 0x00, byte(node >> 8), byte(node)}
}

// Node recovers the node ID encoded by NodeMAC.
func (m MAC) Node() int { return int(m[4])<<8 | int(m[5]) }

// IsNodeMAC reports whether m carries the RB4 node encoding.
func (m MAC) IsNodeMAC() bool { return m[0] == 0x02 && m[1] == 0x52 && m[2] == 0x42 }

// Packet is a network packet plus the router-internal metadata that rides
// along with it (receive timestamps, queue assignment, VLB phase).
// The Data slice holds the full frame starting at the Ethernet header.
type Packet struct {
	Data []byte

	// Metadata. None of this is on the wire.
	Arrival   int64 // virtual ns when the packet entered the cluster
	InputPort int   // external port the packet arrived on
	SeqNo     uint64
	FlowID    uint64 // cached flow hash; 0 means not yet computed
	VLBPhase  int    // 0 = fresh, 1 = load-balanced once, 2 = at output node

	// rssHash caches the symmetric RSS steering hash (see RSSHash);
	// 0 means not yet computed. Clone copies it, so a Tee'd packet
	// steers to the same bucket as its original; Pool.Get and Fragment
	// hand out packets with it unset.
	rssHash uint64
	Paint   byte // generic element annotation (Click's Paint)
	NextHop int  // route-lookup result annotation (Click's dst anno)

	// pooled guards against double-free: set while the packet sits on a
	// Pool freelist, cleared when Get hands it out again. It is a uint32
	// manipulated with atomic CAS (not atomic.Uint32 — Packet structs are
	// whole-copied by Clone and getRaw) so two shards racing on a double
	// Put agree on exactly one winner.
	pooled uint32
	// home stamps the pool shard the buffer was drawn from, so a plain
	// Pool.Put can route the packet back to its origin shard.
	home uint8
}

// New builds a packet of exactly size bytes with an Ethernet+IPv4+UDP
// skeleton. Payload bytes are zero. It panics if size is too small to hold
// the headers; the minimum legal size here is EtherHdrLen+IPv4HdrLen+UDPHdrLen.
// The buffer is drawn from DefaultPool, so a forwarding loop whose exits
// Put packets back runs allocation-free in steady state.
func New(size int, src, dst netip.Addr, srcPort, dstPort uint16) *Packet {
	if size < EtherHdrLen+IPv4HdrLen+UDPHdrLen {
		panic(fmt.Sprintf("pkt: size %d below minimum %d", size, EtherHdrLen+IPv4HdrLen+UDPHdrLen))
	}
	p := DefaultPool.Get(size)
	eh := p.Ether()
	eh.SetEtherType(EtherTypeIPv4)
	ih := p.IPv4()
	ih.SetVersionIHL()
	ih.SetTotalLength(uint16(size - EtherHdrLen))
	ih.SetTTL(64)
	ih.SetProtocol(ProtoUDP)
	ih.SetSrc(src)
	ih.SetDst(dst)
	ih.UpdateChecksum()
	uh := p.UDP()
	uh.SetSrcPort(srcPort)
	uh.SetDstPort(dstPort)
	uh.SetLength(uint16(size - EtherHdrLen - IPv4HdrLen))
	return p
}

// Len reports the frame length in bytes.
func (p *Packet) Len() int { return len(p.Data) }

// Clone deep-copies the packet, including metadata, into a buffer drawn
// from DefaultPool. VLB phase-1 never duplicates packets, but Tee and
// test harnesses do.
func (p *Packet) Clone() *Packet {
	q := DefaultPool.getRaw(len(p.Data))
	data := q.Data
	home := q.home
	copy(data, p.Data)
	*q = *p
	q.Data = data
	q.pooled = 0
	q.home = home
	return q
}

// Ether returns a view over the Ethernet header.
func (p *Packet) Ether() EtherHdr { return EtherHdr(p.Data) }

// IPv4 returns a view over the IPv4 header. It assumes EtherType IPv4 and
// no VLANs; CheckIPHeader validates before anything downstream touches it.
func (p *Packet) IPv4() IPv4Hdr { return IPv4Hdr(p.Data[EtherHdrLen:]) }

// UDP returns a view over the UDP header of an IPv4/UDP packet.
func (p *Packet) UDP() UDPHdr { return UDPHdr(p.Data[EtherHdrLen+IPv4HdrLen:]) }

// L4Payload returns the bytes after the UDP header.
func (p *Packet) L4Payload() []byte { return p.Data[EtherHdrLen+IPv4HdrLen+UDPHdrLen:] }

// EtherHdr is a zero-copy view over an Ethernet header.
type EtherHdr []byte

// Dst returns the destination MAC.
func (h EtherHdr) Dst() MAC { var m MAC; copy(m[:], h[0:6]); return m }

// Src returns the source MAC.
func (h EtherHdr) Src() MAC { var m MAC; copy(m[:], h[6:12]); return m }

// EtherType returns the 16-bit EtherType.
func (h EtherHdr) EtherType() uint16 { return binary.BigEndian.Uint16(h[12:14]) }

// SetDst writes the destination MAC.
func (h EtherHdr) SetDst(m MAC) { copy(h[0:6], m[:]) }

// SetSrc writes the source MAC.
func (h EtherHdr) SetSrc(m MAC) { copy(h[6:12], m[:]) }

// SetEtherType writes the EtherType.
func (h EtherHdr) SetEtherType(t uint16) { binary.BigEndian.PutUint16(h[12:14], t) }

// IPv4Hdr is a zero-copy view over an IPv4 header (no options supported;
// IHL is always 5, as in the paper's workloads).
type IPv4Hdr []byte

// SetVersionIHL stamps version 4, IHL 5.
func (h IPv4Hdr) SetVersionIHL() { h[0] = 0x45 }

// Version returns the IP version nibble.
func (h IPv4Hdr) Version() int { return int(h[0] >> 4) }

// IHL returns the header length in 32-bit words.
func (h IPv4Hdr) IHL() int { return int(h[0] & 0x0F) }

// TotalLength returns the IPv4 total length field.
func (h IPv4Hdr) TotalLength() uint16 { return binary.BigEndian.Uint16(h[2:4]) }

// SetTotalLength sets the IPv4 total length field.
func (h IPv4Hdr) SetTotalLength(v uint16) { binary.BigEndian.PutUint16(h[2:4], v) }

// ID returns the identification field.
func (h IPv4Hdr) ID() uint16 { return binary.BigEndian.Uint16(h[4:6]) }

// SetID sets the identification field.
func (h IPv4Hdr) SetID(v uint16) { binary.BigEndian.PutUint16(h[4:6], v) }

// TTL returns the time-to-live.
func (h IPv4Hdr) TTL() uint8 { return h[8] }

// SetTTL sets the time-to-live.
func (h IPv4Hdr) SetTTL(v uint8) { h[8] = v }

// Protocol returns the IP protocol number.
func (h IPv4Hdr) Protocol() uint8 { return h[9] }

// SetProtocol sets the IP protocol number.
func (h IPv4Hdr) SetProtocol(v uint8) { h[9] = v }

// Checksum returns the header checksum field.
func (h IPv4Hdr) Checksum() uint16 { return binary.BigEndian.Uint16(h[10:12]) }

// SetChecksum sets the header checksum field.
func (h IPv4Hdr) SetChecksum(v uint16) { binary.BigEndian.PutUint16(h[10:12], v) }

// Src returns the source address.
func (h IPv4Hdr) Src() netip.Addr {
	var a [4]byte
	copy(a[:], h[12:16])
	return netip.AddrFrom4(a)
}

// Dst returns the destination address.
func (h IPv4Hdr) Dst() netip.Addr {
	var a [4]byte
	copy(a[:], h[16:20])
	return netip.AddrFrom4(a)
}

// SetSrc writes the source address; non-IPv4 addresses panic.
func (h IPv4Hdr) SetSrc(a netip.Addr) { b := a.As4(); copy(h[12:16], b[:]) }

// SetDst writes the destination address; non-IPv4 addresses panic.
func (h IPv4Hdr) SetDst(a netip.Addr) { b := a.As4(); copy(h[16:20], b[:]) }

// DstUint32 returns the destination address as a big-endian uint32, the
// form the LPM lookup consumes.
func (h IPv4Hdr) DstUint32() uint32 { return binary.BigEndian.Uint32(h[16:20]) }

// SrcUint32 returns the source address as a big-endian uint32.
func (h IPv4Hdr) SrcUint32() uint32 { return binary.BigEndian.Uint32(h[12:16]) }

// UpdateChecksum recomputes and stores the header checksum.
func (h IPv4Hdr) UpdateChecksum() {
	h.SetChecksum(0)
	h.SetChecksum(Checksum(h[:IPv4HdrLen]))
}

// VerifyChecksum reports whether the stored checksum is consistent.
func (h IPv4Hdr) VerifyChecksum() bool {
	return Checksum(h[:IPv4HdrLen]) == 0
}

// DecTTL decrements the TTL and incrementally updates the checksum per
// RFC 1141. It reports false if the TTL was already 0 or 1 (packet must
// be dropped, not forwarded).
func (h IPv4Hdr) DecTTL() bool {
	ttl := h.TTL()
	if ttl <= 1 {
		return false
	}
	h.SetTTL(ttl - 1)
	// RFC 1141 incremental update: TTL lives in the high byte of word 4.
	sum := uint32(h.Checksum()) + 0x0100
	sum = (sum & 0xFFFF) + (sum >> 16)
	h.SetChecksum(uint16(sum))
	return true
}

// UDPHdr is a zero-copy view over a UDP header.
type UDPHdr []byte

// SrcPort returns the source port.
func (h UDPHdr) SrcPort() uint16 { return binary.BigEndian.Uint16(h[0:2]) }

// DstPort returns the destination port.
func (h UDPHdr) DstPort() uint16 { return binary.BigEndian.Uint16(h[2:4]) }

// Length returns the UDP length field.
func (h UDPHdr) Length() uint16 { return binary.BigEndian.Uint16(h[4:6]) }

// SetSrcPort sets the source port.
func (h UDPHdr) SetSrcPort(v uint16) { binary.BigEndian.PutUint16(h[0:2], v) }

// SetDstPort sets the destination port.
func (h UDPHdr) SetDstPort(v uint16) { binary.BigEndian.PutUint16(h[2:4], v) }

// SetLength sets the UDP length field.
func (h UDPHdr) SetLength(v uint16) { binary.BigEndian.PutUint16(h[4:6], v) }

// Checksum computes the internet checksum (RFC 1071) over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}
