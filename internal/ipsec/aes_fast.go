package ipsec

import "encoding/binary"

// T-table AES implementation — the standard software optimization of the
// era (and the shape of the cost the paper's 14K-instruction IPsec
// workload reflects): each round collapses SubBytes+ShiftRows+MixColumns
// into four 256-entry word-table lookups per column. Tables are derived
// programmatically from the byte-level primitives in aes.go, and the
// test suite cross-checks this path against the byte-level reference and
// the standard library on random inputs.

var (
	te [4][256]uint32 // encryption tables
	td [4][256]uint32 // decryption tables (equivalent inverse cipher)
)

func rotr8(v uint32) uint32 { return v>>8 | v<<24 }

func init() {
	for i := 0; i < 256; i++ {
		s := sbox[i]
		e := uint32(gmul(s, 2))<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(gmul(s, 3))
		is := invSbox[i]
		d := uint32(gmul(is, 0x0e))<<24 | uint32(gmul(is, 0x09))<<16 |
			uint32(gmul(is, 0x0d))<<8 | uint32(gmul(is, 0x0b))
		for t := 0; t < 4; t++ {
			te[t][i] = e
			td[t][i] = d
			e = rotr8(e)
			d = rotr8(d)
		}
	}
}

// invMixWord applies InvMixColumns to one round-key word, producing the
// equivalent-inverse-cipher key schedule.
func invMixWord(w uint32) uint32 {
	a0, a1, a2, a3 := byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	return uint32(gmul(a0, 0x0e)^gmul(a1, 0x0b)^gmul(a2, 0x0d)^gmul(a3, 0x09))<<24 |
		uint32(gmul(a0, 0x09)^gmul(a1, 0x0e)^gmul(a2, 0x0b)^gmul(a3, 0x0d))<<16 |
		uint32(gmul(a0, 0x0d)^gmul(a1, 0x09)^gmul(a2, 0x0e)^gmul(a3, 0x0b))<<8 |
		uint32(gmul(a0, 0x0b)^gmul(a1, 0x0d)^gmul(a2, 0x09)^gmul(a3, 0x0e))
}

// expandDec fills the decryption key schedule: round keys in reverse
// order with InvMixColumns applied to the middle rounds.
func (c *Cipher) expandDec() {
	for i := 0; i < 4; i++ {
		c.rkDec[i] = c.rk[40+i]
		c.rkDec[40+i] = c.rk[i]
	}
	for round := 1; round < 10; round++ {
		for i := 0; i < 4; i++ {
			c.rkDec[4*round+i] = invMixWord(c.rk[4*(10-round)+i])
		}
	}
}

// encryptFast is the T-table encryption path.
func (c *Cipher) encryptFast(dst, src []byte) {
	s0 := binary.BigEndian.Uint32(src[0:4]) ^ c.rk[0]
	s1 := binary.BigEndian.Uint32(src[4:8]) ^ c.rk[1]
	s2 := binary.BigEndian.Uint32(src[8:12]) ^ c.rk[2]
	s3 := binary.BigEndian.Uint32(src[12:16]) ^ c.rk[3]

	var t0, t1, t2, t3 uint32
	k := 4
	for round := 1; round < 10; round++ {
		t0 = te[0][s0>>24] ^ te[1][s1>>16&0xff] ^ te[2][s2>>8&0xff] ^ te[3][s3&0xff] ^ c.rk[k]
		t1 = te[0][s1>>24] ^ te[1][s2>>16&0xff] ^ te[2][s3>>8&0xff] ^ te[3][s0&0xff] ^ c.rk[k+1]
		t2 = te[0][s2>>24] ^ te[1][s3>>16&0xff] ^ te[2][s0>>8&0xff] ^ te[3][s1&0xff] ^ c.rk[k+2]
		t3 = te[0][s3>>24] ^ te[1][s0>>16&0xff] ^ te[2][s1>>8&0xff] ^ te[3][s2&0xff] ^ c.rk[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
	s0 = sub4(t0, t1, t2, t3) ^ c.rk[40]
	s1 = sub4(t1, t2, t3, t0) ^ c.rk[41]
	s2 = sub4(t2, t3, t0, t1) ^ c.rk[42]
	s3 = sub4(t3, t0, t1, t2) ^ c.rk[43]

	binary.BigEndian.PutUint32(dst[0:4], s0)
	binary.BigEndian.PutUint32(dst[4:8], s1)
	binary.BigEndian.PutUint32(dst[8:12], s2)
	binary.BigEndian.PutUint32(dst[12:16], s3)
}

// sub4 assembles a word from the s-box of one byte of each input word,
// following the ShiftRows byte selection (a, b, c, d = columns j, j+1,
// j+2, j+3).
func sub4(a, b, c, d uint32) uint32 {
	return uint32(sbox[a>>24])<<24 | uint32(sbox[b>>16&0xff])<<16 |
		uint32(sbox[c>>8&0xff])<<8 | uint32(sbox[d&0xff])
}

// decryptFast is the T-table equivalent-inverse-cipher path.
func (c *Cipher) decryptFast(dst, src []byte) {
	s0 := binary.BigEndian.Uint32(src[0:4]) ^ c.rkDec[0]
	s1 := binary.BigEndian.Uint32(src[4:8]) ^ c.rkDec[1]
	s2 := binary.BigEndian.Uint32(src[8:12]) ^ c.rkDec[2]
	s3 := binary.BigEndian.Uint32(src[12:16]) ^ c.rkDec[3]

	var t0, t1, t2, t3 uint32
	k := 4
	for round := 1; round < 10; round++ {
		t0 = td[0][s0>>24] ^ td[1][s3>>16&0xff] ^ td[2][s2>>8&0xff] ^ td[3][s1&0xff] ^ c.rkDec[k]
		t1 = td[0][s1>>24] ^ td[1][s0>>16&0xff] ^ td[2][s3>>8&0xff] ^ td[3][s2&0xff] ^ c.rkDec[k+1]
		t2 = td[0][s2>>24] ^ td[1][s1>>16&0xff] ^ td[2][s0>>8&0xff] ^ td[3][s3&0xff] ^ c.rkDec[k+2]
		t3 = td[0][s3>>24] ^ td[1][s2>>16&0xff] ^ td[2][s1>>8&0xff] ^ td[3][s0&0xff] ^ c.rkDec[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	s0 = isub4(t0, t3, t2, t1) ^ c.rkDec[40]
	s1 = isub4(t1, t0, t3, t2) ^ c.rkDec[41]
	s2 = isub4(t2, t1, t0, t3) ^ c.rkDec[42]
	s3 = isub4(t3, t2, t1, t0) ^ c.rkDec[43]

	binary.BigEndian.PutUint32(dst[0:4], s0)
	binary.BigEndian.PutUint32(dst[4:8], s1)
	binary.BigEndian.PutUint32(dst[8:12], s2)
	binary.BigEndian.PutUint32(dst[12:16], s3)
}

func isub4(a, b, c, d uint32) uint32 {
	return uint32(invSbox[a>>24])<<24 | uint32(invSbox[b>>16&0xff])<<16 |
		uint32(invSbox[c>>8&0xff])<<8 | uint32(invSbox[d&0xff])
}
