package ipsec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential test: the T-table fast path must agree with the
// byte-level reference on random keys and blocks, both directions.
func TestFastMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		key := make([]byte, 16)
		blk := make([]byte, 16)
		rng.Read(key)
		rng.Read(blk)
		c, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		fastE := make([]byte, 16)
		refE := make([]byte, 16)
		c.encryptFast(fastE, blk)
		c.encryptGeneric(refE, blk)
		if !bytes.Equal(fastE, refE) {
			t.Fatalf("iteration %d: encrypt fast %x != ref %x", i, fastE, refE)
		}
		fastD := make([]byte, 16)
		refD := make([]byte, 16)
		c.decryptFast(fastD, fastE)
		c.decryptGeneric(refD, refE)
		if !bytes.Equal(fastD, refD) {
			t.Fatalf("iteration %d: decrypt fast %x != ref %x", i, fastD, refD)
		}
		if !bytes.Equal(fastD, blk) {
			t.Fatalf("iteration %d: roundtrip broken", i)
		}
	}
}

// The fast path must also alias-tolerate (dst == src), as the CBC layer
// relies on in-place operation.
func TestFastInPlace(t *testing.T) {
	c, _ := NewCipher([]byte("0123456789abcdef"))
	buf := []byte("quick brown fox!")
	want := make([]byte, 16)
	c.encryptGeneric(want, buf)
	c.encryptFast(buf, buf)
	if !bytes.Equal(buf, want) {
		t.Fatal("in-place encryption diverges")
	}
	c.decryptFast(buf, buf)
	if string(buf) != "quick brown fox!" {
		t.Fatalf("in-place roundtrip: %q", buf)
	}
}

// Property: fast decrypt(fast encrypt(x)) == x for arbitrary inputs.
func TestPropertyFastRoundTrip(t *testing.T) {
	f := func(key, blk [16]byte) bool {
		c, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		out := make([]byte, 16)
		c.encryptFast(out, blk[:])
		c.decryptFast(out, out)
		return bytes.Equal(out, blk[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Table sanity: Te/Td rows are byte rotations of row 0.
func TestTableRotationStructure(t *testing.T) {
	for i := 0; i < 256; i++ {
		if te[1][i] != rotr8(te[0][i]) || te[2][i] != rotr8(te[1][i]) || te[3][i] != rotr8(te[2][i]) {
			t.Fatalf("te rotation broken at %d", i)
		}
		if td[1][i] != rotr8(td[0][i]) {
			t.Fatalf("td rotation broken at %d", i)
		}
	}
}

func BenchmarkAESBlockGeneric(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.encryptGeneric(buf, buf)
	}
}

func BenchmarkAESBlockFast(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.encryptFast(buf, buf)
	}
}
