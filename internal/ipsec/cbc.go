package ipsec

import "fmt"

// EncryptCBC encrypts data in place using CBC chaining with the given IV.
// len(data) must be a multiple of BlockSize; ESP padding guarantees that.
func (c *Cipher) EncryptCBC(iv, data []byte) error {
	if len(iv) != BlockSize {
		return fmt.Errorf("ipsec: IV must be %d bytes, got %d", BlockSize, len(iv))
	}
	if len(data)%BlockSize != 0 {
		return fmt.Errorf("ipsec: CBC data length %d not a multiple of %d", len(data), BlockSize)
	}
	prev := iv
	for i := 0; i < len(data); i += BlockSize {
		blk := data[i : i+BlockSize]
		for j := 0; j < BlockSize; j++ {
			blk[j] ^= prev[j]
		}
		c.Encrypt(blk, blk)
		prev = blk
	}
	return nil
}

// DecryptCBC reverses EncryptCBC in place.
func (c *Cipher) DecryptCBC(iv, data []byte) error {
	if len(iv) != BlockSize {
		return fmt.Errorf("ipsec: IV must be %d bytes, got %d", BlockSize, len(iv))
	}
	if len(data)%BlockSize != 0 {
		return fmt.Errorf("ipsec: CBC data length %d not a multiple of %d", len(data), BlockSize)
	}
	// Walk backwards so each block's predecessor ciphertext is intact.
	for i := len(data) - BlockSize; i >= 0; i -= BlockSize {
		blk := data[i : i+BlockSize]
		c.Decrypt(blk, blk)
		var prev []byte
		if i == 0 {
			prev = iv
		} else {
			prev = data[i-BlockSize : i]
		}
		for j := 0; j < BlockSize; j++ {
			blk[j] ^= prev[j]
		}
	}
	return nil
}
