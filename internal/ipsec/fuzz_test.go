package ipsec

import (
	"bytes"
	"testing"
)

// FuzzOpen asserts ESP decapsulation never panics on arbitrary inputs
// and only succeeds on packets that legitimately decrypt.
func FuzzOpen(f *testing.F) {
	key := []byte("0123456789abcdef")
	tun, _ := NewTunnel(7, key)
	good := tun.Seal([]byte("legitimate payload"), 4)
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, ESPHdrLen+2*BlockSize))
	f.Add(bytes.Repeat([]byte{0xAA}, 100))

	f.Fuzz(func(t *testing.T, data []byte) {
		tun2, _ := NewTunnel(7, key)
		payload, _, _, err := tun2.Open(data)
		if err == nil && payload == nil {
			t.Fatal("nil payload without error")
		}
	})
}

// FuzzSealOpen round-trips arbitrary payloads.
func FuzzSealOpen(f *testing.F) {
	f.Add([]byte("payload"), byte(4))
	f.Add([]byte{}, byte(0))
	f.Fuzz(func(t *testing.T, payload []byte, nh byte) {
		tun, _ := NewTunnel(1, make([]byte, 16))
		sealed := tun.Seal(payload, nh)
		got, gotNH, _, err := tun.Open(sealed)
		if err != nil {
			t.Fatalf("own seal rejected: %v", err)
		}
		if gotNH != nh || !bytes.Equal(got, payload) {
			t.Fatal("roundtrip mismatch")
		}
	})
}
