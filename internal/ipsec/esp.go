package ipsec

import (
	"encoding/binary"
	"fmt"
)

// ESP (RFC 4303) tunnel-mode encapsulation with AES-128-CBC, the VPN
// configuration the paper's IPsec workload models. No authentication
// trailer: the paper measures encryption cost only ("every packet is
// encrypted using AES-128 encryption").
//
// Layout produced by Seal:
//
//	SPI (4) | SeqNo (4) | IV (16) | ciphertext(payload | pad | padLen | nextHdr)

// ESPHdrLen is the cleartext ESP header length (SPI + sequence number).
const ESPHdrLen = 8

// Tunnel is one direction of an ESP security association.
type Tunnel struct {
	SPI    uint32
	cipher *Cipher
	seq    uint32
	ivCtr  uint64 // deterministic IV source; fine for a simulation workload
}

// NewTunnel creates an SA with the given SPI and 16-byte key.
func NewTunnel(spi uint32, key []byte) (*Tunnel, error) {
	c, err := NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &Tunnel{SPI: spi, cipher: c}, nil
}

// SealedLen reports the on-wire ESP length for a payload of n bytes with
// next-header nh: header, IV, payload, padding to block boundary including
// the 2 trailer bytes.
func SealedLen(n int) int {
	body := n + 2 // + padLen + nextHdr
	pad := (BlockSize - body%BlockSize) % BlockSize
	return ESPHdrLen + BlockSize + body + pad
}

// Seal encrypts payload (an inner IP packet in tunnel mode) and returns
// the ESP packet body. nextHdr is the inner protocol (4 = IPv4-in-IPsec).
func (t *Tunnel) Seal(payload []byte, nextHdr byte) []byte {
	t.seq++
	t.ivCtr++
	out := make([]byte, SealedLen(len(payload)))
	binary.BigEndian.PutUint32(out[0:4], t.SPI)
	binary.BigEndian.PutUint32(out[4:8], t.seq)
	iv := out[8 : 8+BlockSize]
	binary.BigEndian.PutUint64(iv[0:8], t.ivCtr)
	binary.BigEndian.PutUint64(iv[8:16], ^t.ivCtr)
	// Encrypt the IV counter block so the wire IV is unpredictable-ish.
	t.cipher.Encrypt(iv, iv)

	body := out[8+BlockSize:]
	copy(body, payload)
	padStart := len(payload)
	padEnd := len(body) - 2
	for i := padStart; i < padEnd; i++ {
		body[i] = byte(i - padStart + 1) // RFC 4303 monotonic pad
	}
	body[len(body)-2] = byte(padEnd - padStart)
	body[len(body)-1] = nextHdr
	if err := t.cipher.EncryptCBC(iv, body); err != nil {
		panic(err) // lengths are constructed correct above
	}
	return out
}

// Open decrypts an ESP packet body produced by Seal, returning the inner
// payload, the next-header byte, and the sequence number.
func (t *Tunnel) Open(esp []byte) (payload []byte, nextHdr byte, seq uint32, err error) {
	if len(esp) < ESPHdrLen+2*BlockSize {
		return nil, 0, 0, fmt.Errorf("ipsec: ESP packet too short (%d bytes)", len(esp))
	}
	if spi := binary.BigEndian.Uint32(esp[0:4]); spi != t.SPI {
		return nil, 0, 0, fmt.Errorf("ipsec: SPI mismatch: packet %#x, SA %#x", spi, t.SPI)
	}
	seq = binary.BigEndian.Uint32(esp[4:8])
	iv := esp[8 : 8+BlockSize]
	body := make([]byte, len(esp)-ESPHdrLen-BlockSize)
	copy(body, esp[8+BlockSize:])
	if len(body)%BlockSize != 0 {
		return nil, 0, 0, fmt.Errorf("ipsec: ciphertext length %d not block-aligned", len(body))
	}
	if err := t.cipher.DecryptCBC(iv, body); err != nil {
		return nil, 0, 0, err
	}
	padLen := int(body[len(body)-2])
	nextHdr = body[len(body)-1]
	if padLen > len(body)-2 {
		return nil, 0, 0, fmt.Errorf("ipsec: pad length %d exceeds body", padLen)
	}
	// Verify the RFC 4303 monotonic pad, the only integrity check CBC-only
	// ESP can offer.
	padStart := len(body) - 2 - padLen
	for i := 0; i < padLen; i++ {
		if body[padStart+i] != byte(i+1) {
			return nil, 0, 0, fmt.Errorf("ipsec: pad byte %d corrupt", i)
		}
	}
	return body[:padStart], nextHdr, seq, nil
}
