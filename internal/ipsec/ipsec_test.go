package ipsec

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FIPS 197 Appendix B: the worked AES-128 example.
func TestFIPS197AppendixB(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := unhex(t, "3243f6a8885a308d313198a2e0370734")
	want := unhex(t, "3925841d02dc09fbdc118597196a0b32")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("Encrypt = %x, want %x", got, want)
	}
	dec := make([]byte, 16)
	c.Decrypt(dec, got)
	if !bytes.Equal(dec, pt) {
		t.Fatalf("Decrypt = %x, want %x", dec, pt)
	}
}

// FIPS 197 Appendix C.1: AES-128 known-answer test.
func TestFIPS197AppendixC1(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	pt := unhex(t, "00112233445566778899aabbccddeeff")
	want := unhex(t, "69c4e0d86a7b0430d8cdb78070b4c55a")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("Encrypt = %x, want %x", got, want)
	}
}

// NIST SP 800-38A F.2.1: CBC-AES128 encryption vectors.
func TestSP80038ACBC(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	iv := unhex(t, "000102030405060708090a0b0c0d0e0f")
	pt := unhex(t,
		"6bc1bee22e409f96e93d7e117393172a"+
			"ae2d8a571e03ac9c9eb76fac45af8e51"+
			"30c81c46a35ce411e5fbc1191a0a52ef"+
			"f69f2445df4f9b17ad2b417be66c3710")
	want := unhex(t,
		"7649abac8119b246cee98e9b12e9197d"+
			"5086cb9b507219ee95db113a917678b2"+
			"73bed6b8e3c1743b7116e69e22229516"+
			"3ff1caa1681fac09120eca307586e1a7")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), pt...)
	if err := c.EncryptCBC(iv, data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("CBC encrypt mismatch\n got %x\nwant %x", data, want)
	}
	if err := c.DecryptCBC(iv, data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, pt) {
		t.Fatalf("CBC roundtrip mismatch")
	}
}

// Cross-check against the standard library on random inputs: if our AES
// core diverges anywhere, this catches it across many keys/blocks.
func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		key := make([]byte, 16)
		rng.Read(key)
		pt := make([]byte, 16)
		rng.Read(pt)
		ours, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := aes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		a := make([]byte, 16)
		b := make([]byte, 16)
		ours.Encrypt(a, pt)
		ref.Encrypt(b, pt)
		if !bytes.Equal(a, b) {
			t.Fatalf("iteration %d: ours %x, stdlib %x", i, a, b)
		}
	}
}

func TestCBCAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		key := make([]byte, 16)
		iv := make([]byte, 16)
		rng.Read(key)
		rng.Read(iv)
		n := (1 + rng.Intn(64)) * 16
		pt := make([]byte, n)
		rng.Read(pt)

		ours, _ := NewCipher(key)
		data := append([]byte(nil), pt...)
		if err := ours.EncryptCBC(iv, data); err != nil {
			t.Fatal(err)
		}

		ref, _ := aes.NewCipher(key)
		want := make([]byte, n)
		cipher.NewCBCEncrypter(ref, iv).CryptBlocks(want, pt)
		if !bytes.Equal(data, want) {
			t.Fatalf("CBC divergence at iteration %d", i)
		}
	}
}

func TestNewCipherRejectsBadKey(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 24, 32} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Errorf("key length %d accepted", n)
		}
	}
}

func TestCBCRejectsBadLengths(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	if err := c.EncryptCBC(make([]byte, 8), make([]byte, 16)); err == nil {
		t.Error("short IV accepted")
	}
	if err := c.EncryptCBC(make([]byte, 16), make([]byte, 17)); err == nil {
		t.Error("ragged data accepted")
	}
	if err := c.DecryptCBC(make([]byte, 15), make([]byte, 16)); err == nil {
		t.Error("short IV accepted by decrypt")
	}
	if err := c.DecryptCBC(make([]byte, 16), make([]byte, 31)); err == nil {
		t.Error("ragged data accepted by decrypt")
	}
}

// Property: Decrypt∘Encrypt is the identity for random keys and blocks.
func TestPropertyBlockRoundTrip(t *testing.T) {
	f := func(key [16]byte, block [16]byte) bool {
		c, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		out := make([]byte, 16)
		c.Encrypt(out, block[:])
		c.Decrypt(out, out)
		return bytes.Equal(out, block[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ESP Seal/Open round-trips any payload and flags corruption.
func TestPropertyESPRoundTrip(t *testing.T) {
	f := func(key [16]byte, payload []byte, nextHdr byte, corrupt bool, where uint16) bool {
		tun, err := NewTunnel(0x1234, key[:])
		if err != nil {
			return false
		}
		sealed := tun.Seal(payload, nextHdr)
		if len(sealed) != SealedLen(len(payload)) {
			return false
		}
		if corrupt && len(sealed) > ESPHdrLen {
			// Flip a ciphertext byte; Open must either error or return
			// different payload (CBC without auth can't always detect).
			idx := ESPHdrLen + int(where)%(len(sealed)-ESPHdrLen)
			sealed[idx] ^= 0x55
			got, nh, _, err := tun.Open(sealed)
			if err != nil {
				return true
			}
			return !bytes.Equal(got, payload) || nh != nextHdr
		}
		got, nh, seq, err := tun.Open(sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload) && nh == nextHdr && seq == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestESPSequenceNumbers(t *testing.T) {
	tun, err := NewTunnel(7, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	for want := uint32(1); want <= 5; want++ {
		sealed := tun.Seal([]byte("payload"), 4)
		_, _, seq, err := tun.Open(sealed)
		if err != nil {
			t.Fatal(err)
		}
		if seq != want {
			t.Fatalf("seq = %d, want %d", seq, want)
		}
	}
}

func TestESPUniqueIVAndCiphertext(t *testing.T) {
	tun, _ := NewTunnel(7, make([]byte, 16))
	a := tun.Seal([]byte("same payload"), 4)
	b := tun.Seal([]byte("same payload"), 4)
	if bytes.Equal(a[8:24], b[8:24]) {
		t.Fatal("IV reused across packets")
	}
	if bytes.Equal(a[24:], b[24:]) {
		t.Fatal("identical ciphertext for identical payloads (IV not effective)")
	}
}

func TestESPRejects(t *testing.T) {
	tun, _ := NewTunnel(7, make([]byte, 16))
	if _, _, _, err := tun.Open(make([]byte, 10)); err == nil {
		t.Error("short packet accepted")
	}
	other, _ := NewTunnel(8, make([]byte, 16))
	sealed := tun.Seal([]byte("hello"), 4)
	if _, _, _, err := other.Open(sealed); err == nil {
		t.Error("SPI mismatch accepted")
	}
}

func TestSealedLenBlockAlignment(t *testing.T) {
	for n := 0; n < 100; n++ {
		l := SealedLen(n)
		if (l-ESPHdrLen-BlockSize)%BlockSize != 0 {
			t.Fatalf("SealedLen(%d) = %d not block aligned", n, l)
		}
		if l < ESPHdrLen+BlockSize+n+2 {
			t.Fatalf("SealedLen(%d) = %d too small", n, l)
		}
	}
}

func TestGF256Multiplication(t *testing.T) {
	// xtime fixed points and known products.
	if got := gmul(0x57, 0x83); got != 0xc1 {
		t.Errorf("gmul(0x57,0x83) = %#x, want 0xc1 (FIPS 197 §4.2 example)", got)
	}
	if got := gmul(0x57, 0x13); got != 0xfe {
		t.Errorf("gmul(0x57,0x13) = %#x, want 0xfe (FIPS 197 §4.2.1 example)", got)
	}
	for i := 0; i < 256; i++ {
		if gmul(byte(i), 1) != byte(i) {
			t.Fatalf("gmul(%d, 1) != %d", i, i)
		}
		if gmul(byte(i), 0) != 0 {
			t.Fatalf("gmul(%d, 0) != 0", i)
		}
	}
}

func BenchmarkAESBlock(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	buf := make([]byte, 16)
	b.SetBytes(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}

func BenchmarkESPSeal1500(b *testing.B) {
	tun, _ := NewTunnel(1, make([]byte, 16))
	payload := make([]byte, 1500)
	b.SetBytes(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tun.Seal(payload, 4)
	}
}

func BenchmarkESPOpen1500(b *testing.B) {
	tun, _ := NewTunnel(1, make([]byte, 16))
	sealed := tun.Seal(make([]byte, 1500), 4)
	b.SetBytes(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := tun.Open(sealed); err != nil {
			b.Fatal(err)
		}
	}
}
