package click

import (
	"strings"
	"testing"
)

func TestTopologyMapping(t *testing.T) {
	flat := Topology{}
	if !flat.Flat() || flat.SocketOf(7) != 0 || flat.QueueSocketOf(3) != 0 {
		t.Errorf("zero-value topology is not flat: %+v", flat)
	}

	two := Topology{Sockets: 2, CoresPerSocket: 2}
	for core, want := range []int{0, 0, 1, 1} {
		if got := two.SocketOf(core); got != want {
			t.Errorf("SocketOf(%d) = %d, want %d", core, got, want)
		}
	}
	// Cores past the described layout wrap rather than invent sockets.
	if got := two.SocketOf(4); got != 0 {
		t.Errorf("SocketOf(4) = %d, want wrap to 0", got)
	}
	// Default queue affinity follows the core layout; explicit mappings
	// wrap over their entries.
	if got := two.QueueSocketOf(2); got != 1 {
		t.Errorf("default QueueSocketOf(2) = %d, want 1", got)
	}
	two.QueueSocket = []int{1, 0}
	for q, want := range []int{1, 0, 1, 0} {
		if got := two.QueueSocketOf(q); got != want {
			t.Errorf("QueueSocketOf(%d) = %d, want %d", q, got, want)
		}
	}
}

func TestTopologyValidate(t *testing.T) {
	bad := []Topology{
		{Sockets: -1},
		{Sockets: 2, CoresPerSocket: -2},
		{Sockets: 2}, // multi-socket needs CoresPerSocket
		{Sockets: 2, CoresPerSocket: 1, QueueSocket: []int{2}},
		{Sockets: 2, CoresPerSocket: 1, QueueSocket: []int{-1}},
		{QueueSocket: []int{1}}, // flat: only socket 0 exists
	}
	for _, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", topo)
		}
	}
	good := Topology{Sockets: 2, CoresPerSocket: 4, QueueSocket: []int{0, 1}}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected %+v: %v", good, err)
	}
}

func TestBusCostModel(t *testing.T) {
	m := NewBusCostModel(Topology{Sockets: 2, CoresPerSocket: 2}, 100)
	if got := m.HandoffCost(0, 1); got != 100 {
		t.Errorf("same-socket handoff = %.0f, want 100", got)
	}
	if got := m.HandoffCost(1, 2); got != 100*DefaultCrossSocketFactor {
		t.Errorf("cross-socket handoff = %.0f, want %.0f", got, 100*DefaultCrossSocketFactor)
	}
	if got := m.InputCost(0, 0); got != 0 {
		t.Errorf("local input cost = %.0f, want 0", got)
	}
	if got := m.InputCost(0, 1); got <= 0 {
		t.Errorf("remote input cost = %.0f, want > 0", got)
	}
	// Defaulted price: the historical 120-cycle constant.
	if d := NewBusCostModel(Topology{}, 0); d.HandoffCost(0, 1) != DefaultHandoffCycles {
		t.Errorf("defaulted handoff = %.0f, want %d", d.HandoffCost(0, 1), DefaultHandoffCycles)
	}

	// Literal construction normalizes the same way NewBusCostModel
	// does: a zero CrossSocketFactor must not make remote crossings
	// free (or remote polling negative).
	lit := &BusCostModel{Topo: Topology{Sockets: 2, CoresPerSocket: 2}, HandoffCycles: 200}
	if got := lit.HandoffCost(1, 2); got != 200*DefaultCrossSocketFactor {
		t.Errorf("literal model cross-socket handoff = %.0f, want %.0f", got, 200*DefaultCrossSocketFactor)
	}
	if got := lit.InputCost(0, 1); got <= 0 {
		t.Errorf("literal model remote input cost = %.0f, want > 0", got)
	}
}

func TestDetectTopologySane(t *testing.T) {
	topo := DetectTopology()
	if err := topo.Validate(); err != nil {
		t.Fatalf("detected topology invalid: %+v: %v", topo, err)
	}
	if topo.Sockets < 1 || topo.CoresPerSocket < 1 {
		t.Fatalf("detected topology degenerate: %+v", topo)
	}
}

// TestAssignerTopology proves the planner's core assignment consults
// the model: parallel chains land on the socket owning their input
// queue, and a pipelined chain stays on one socket until it runs out of
// local cores.
func TestAssignerTopology(t *testing.T) {
	topo := Topology{Sockets: 2, CoresPerSocket: 2, QueueSocket: []int{1, 1, 0, 0}}
	model := NewBusCostModel(topo, 100)

	// Parallel: one core per chain, pinned to the queue's socket.
	asn := newCoreAssigner(4, topo, model)
	want := [][]int{{2}, {3}, {0}, {1}}
	for ch := range want {
		if got := asn.take(ch, 1); got[0] != want[ch][0] {
			t.Errorf("parallel chain %d on core %v, want %v", ch, got, want[ch])
		}
	}

	// Pipelined: the chain's first core is queue-local, successors take
	// the cheapest handoff — staying on the socket until it is full,
	// then crossing once.
	asn = newCoreAssigner(4, topo, model)
	got := asn.take(0, 3)
	if got[0] != 2 || got[1] != 3 || topo.SocketOf(got[2]) != 0 {
		t.Errorf("pipelined chain cores %v: want queue socket 1 first (cores 2,3), then one crossing", got)
	}

	// Flat topology reproduces the historical layout exactly.
	flat := newCoreAssigner(4, Topology{}, NewBusCostModel(Topology{}, 0))
	for ch := 0; ch < 2; ch++ {
		got := flat.take(ch, 2)
		if got[0] != ch*2 || got[1] != ch*2+1 {
			t.Errorf("flat chain %d cores %v, want [%d %d]", ch, got, ch*2, ch*2+1)
		}
	}
}

// TestPlanTopologyDescribe checks the plan surface carries the
// topology: CoreStat.Socket, PlanRing From/To/Cost, and Describe's
// model terms.
func TestPlanTopologyDescribe(t *testing.T) {
	topo := Topology{Sockets: 2, CoresPerSocket: 1}
	plan, err := NewPlan(PlanConfig{
		Kind: Pipelined, Cores: 2, Stages: threeStages(), Topo: topo,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Stats() {
		if s.Socket != topo.SocketOf(s.Core) {
			t.Errorf("core %d reports socket %d, want %d", s.Core, s.Socket, topo.SocketOf(s.Core))
		}
	}
	var sawHandoff bool
	for _, r := range plan.Rings() {
		switch r.Role {
		case "input":
			if r.From != -1 || r.To < 0 {
				t.Errorf("input ring endpoints %d->%d", r.From, r.To)
			}
		case "handoff":
			sawHandoff = true
			if r.From != 0 || r.To != 1 {
				t.Errorf("handoff ring endpoints %d->%d, want 0->1", r.From, r.To)
			}
			// Cores 0 and 1 sit on different sockets here, so the default
			// model must charge the cross-socket premium.
			if r.Cost != DefaultHandoffCycles*DefaultCrossSocketFactor {
				t.Errorf("cross-socket handoff priced %.0f, want %.0f",
					r.Cost, float64(DefaultHandoffCycles)*DefaultCrossSocketFactor)
			}
		}
	}
	if !sawHandoff {
		t.Fatal("no handoff ring in a 2-core pipelined plan")
	}
	desc := plan.Describe()
	for _, wantSub := range []string{"socket 1", "cross-socket", "cost model: bus model"} {
		if !strings.Contains(desc, wantSub) {
			t.Errorf("Describe missing %q:\n%s", wantSub, desc)
		}
	}
	if plan.Topology().Sockets != 2 || plan.Cost() == nil {
		t.Errorf("plan does not carry its topology/model: %+v", plan.Topology())
	}
}
