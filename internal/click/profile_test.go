package click

import (
	"routebricks/internal/pkt"

	"strings"
	"testing"
)

// charger charges a fixed cycle count then forwards.
type charger struct {
	Base
	cost float64
}

func (e *charger) Push(ctx *Context, _ int, p *pkt.Packet) {
	ctx.Charge(e.cost)
	e.Out(ctx, 0, p)
}
func (e *charger) InPorts() int  { return 1 }
func (e *charger) OutPorts() int { return 1 }

func TestProfilerExclusiveAttribution(t *testing.T) {
	r := NewRouter()
	a := &charger{cost: 100}
	b := &charger{cost: 30}
	c := &charger{cost: 7}
	sink := &collector{}
	r.MustAdd("a", a)
	r.MustAdd("b", b)
	r.MustAdd("c", c)
	r.MustAdd("sink", sink)
	r.MustConnect("a", 0, "b", 0)
	r.MustConnect("b", 0, "c", 0)
	r.MustConnect("c", 0, "sink", 0)

	prof := NewProfiler()
	r.Instrument(prof)

	ctx := &Context{}
	const n = 10
	for i := 0; i < n; i++ {
		// Attribute the entry element manually, like a poll task would.
		fi := ctx.pushFrame()
		a.Push(ctx, 0, newPacket())
		prof.Account("a", ctx.popFrame(fi), 1)
	}

	stats := map[string]ElementStats{}
	for _, s := range prof.Stats() {
		stats[s.Name] = s
	}
	if got := stats["a"].Cycles; got != 100*n {
		t.Errorf("a cycles = %g, want %d (exclusive of children)", got, 100*n)
	}
	if got := stats["b"].Cycles; got != 30*n {
		t.Errorf("b cycles = %g, want %d", got, 30*n)
	}
	if got := stats["c"].Cycles; got != 7*n {
		t.Errorf("c cycles = %g, want %d", got, 7*n)
	}
	if got := stats["sink"].Cycles; got != 0 {
		t.Errorf("sink cycles = %g, want 0", got)
	}
	if got := stats["sink"].Packets; got != n {
		t.Errorf("sink packets = %d, want %d", got, n)
	}
	if total := prof.TotalCycles(); total != 137*n {
		t.Errorf("total = %g, want %d", total, 137*n)
	}
	// The context's raw accumulator still holds the full amount.
	if got := ctx.TakeCycles(); got != 137*n {
		t.Errorf("context cycles = %g, want %d", got, 137*n)
	}

	out := prof.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "cyc/pkt") {
		t.Errorf("report missing content:\n%s", out)
	}
	// Heaviest first.
	if prof.Stats()[0].Name != "a" {
		t.Errorf("stats[0] = %s, want a", prof.Stats()[0].Name)
	}
}

func TestProfilerBranchingAttribution(t *testing.T) {
	// a → b and a → (port 1 unused); packets alternate... use a splitter.
	r := NewRouter()
	split := &psplit{}
	left := &charger{cost: 11}
	right := &charger{cost: 23}
	sinkL := &collector{}
	sinkR := &collector{}
	r.MustAdd("split", split)
	r.MustAdd("left", left)
	r.MustAdd("right", right)
	r.MustAdd("sinkL", sinkL)
	r.MustAdd("sinkR", sinkR)
	r.MustConnect("split", 0, "left", 0)
	r.MustConnect("split", 1, "right", 0)
	r.MustConnect("left", 0, "sinkL", 0)
	r.MustConnect("right", 0, "sinkR", 0)
	prof := NewProfiler()
	r.Instrument(prof)

	ctx := &Context{}
	for i := 0; i < 6; i++ {
		p := newPacket()
		p.Paint = byte(i % 2)
		split.Push(ctx, 0, p)
	}
	stats := map[string]ElementStats{}
	for _, s := range prof.Stats() {
		stats[s.Name] = s
	}
	if stats["left"].Packets != 3 || stats["right"].Packets != 3 {
		t.Fatalf("split packets: left %d right %d", stats["left"].Packets, stats["right"].Packets)
	}
	if stats["left"].Cycles != 33 || stats["right"].Cycles != 69 {
		t.Fatalf("split cycles: left %g right %g", stats["left"].Cycles, stats["right"].Cycles)
	}
}
