package click

import "routebricks/internal/pkt"

// BatchElement is implemented by elements that process whole packet
// batches natively. PushBatch delivers a batch to input port port; the
// element does its work, charges cycles once per batch rather than once
// per packet, and forwards the survivors with OutBatch (compacting the
// batch in place if it filtered any out).
//
// BatchElement embeds Element: Push remains the single-packet entry
// point (slow paths, error outputs, manual tests), so a per-packet
// upstream can always deliver to a batch-native element and vice versa.
type BatchElement interface {
	Element
	// PushBatch processes a batch arriving on the given input port.
	PushBatch(ctx *Context, port int, b *pkt.Batch)
}

// BatchOutput is a bound downstream batch connection — the batch analog
// of Output.
type BatchOutput func(ctx *Context, b *pkt.Batch)

// BatchOutputSetter is implemented by elements with batch-capable
// outputs (via embedding Base). The router wires batch connections
// through it alongside the per-packet ones.
type BatchOutputSetter interface {
	SetBatchOutput(port int, out BatchOutput)
}

// PushBatchTo delivers b to element e's input port: natively when e is a
// BatchElement, otherwise by unrolling the batch into per-packet Push
// calls in slot order — the automatic adapter that lets per-packet
// elements sit unmodified inside a batch graph. Either way, ownership of
// the packets passes to e and b comes back empty, ready for reuse. It
// is the one-shot form of BatchDispatch; wiring that dispatches
// repeatedly should build the BatchOutput once instead.
func PushBatchTo(e Element, ctx *Context, port int, b *pkt.Batch) {
	BatchDispatch(e, port)(ctx, b)
}

// BatchDispatch builds the BatchOutput for a connection into dst's input
// port, choosing the native or adapted delivery path once at wiring time
// so the dispatch itself is a single indirect call.
func BatchDispatch(dst Element, port int) BatchOutput {
	if be, ok := dst.(BatchElement); ok {
		return func(ctx *Context, b *pkt.Batch) {
			be.PushBatch(ctx, port, b)
			b.Reset()
		}
	}
	return func(ctx *Context, b *pkt.Batch) {
		for _, p := range b.Packets() {
			if p != nil {
				dst.Push(ctx, port, p)
			}
		}
		b.Reset()
	}
}
