package click

import (
	"testing"
	"time"
)

// TestRunnerIdleBackoff proves an idle Runner sleeps instead of pegging
// a host CPU. Before the fix, the idle branch reset its counter without
// ever yielding, so one idle core spun RunStep tens of millions of
// times per second. With spin→yield→sleep escalation, an idle core
// settles at roughly one step per idleSleep (100µs), so a 300ms idle
// window must see on the order of thousands of steps, not millions.
func TestRunnerIdleBackoff(t *testing.T) {
	s := NewSchedule(1)
	s.MustBind(0, TaskFunc(func(*Context) int { return 0 })) // always idle
	r := NewRunner(s)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	r.Stop()
	steps := r.Steps(0)
	if steps == 0 {
		t.Fatal("idle runner never stepped")
	}
	// Budget: 64 spins + 960 yields + ~3000 sleeps of 100µs in 300ms,
	// plus generous scheduler slop. A busy-spinning loop would exceed
	// this by 3–4 orders of magnitude.
	const maxSteps = 200000
	if steps > maxSteps {
		t.Errorf("idle runner took %d steps in 300ms (> %d): backoff is not sleeping", steps, maxSteps)
	}
}

// TestRunnerWakesAfterIdle checks the other side of the backoff: a
// runner that has escalated to sleeping still notices new work within a
// few sleep periods.
func TestRunnerWakesAfterIdle(t *testing.T) {
	work := make(chan int, 1)
	s := NewSchedule(1)
	s.MustBind(0, TaskFunc(func(*Context) int {
		select {
		case n := <-work:
			return n
		default:
			return 0
		}
	}))
	r := NewRunner(s)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	time.Sleep(50 * time.Millisecond) // let the backoff escalate to sleep
	work <- 7
	deadline := time.Now().Add(5 * time.Second)
	for r.Processed(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("runner never picked up work after idling")
		}
		time.Sleep(time.Millisecond)
	}
	if got := r.Processed(0); got != 7 {
		t.Fatalf("Processed = %d, want 7", got)
	}
}
