package click

import (
	"fmt"
	"sort"
	"strings"

	"routebricks/internal/pkt"
)

// Profiler attributes virtual CPU cycles and packet counts to elements —
// the analog of the paper's VTune-like instrumentation (§4.1), but for
// the calibrated cycle charges flowing through a Context. Attribution is
// wired at connection level: Router.Instrument wraps every connection so
// each element's Push is bracketed and its Charge delta recorded.
//
// A Profiler belongs to one single-threaded dispatch domain (one virtual
// core, or one test); it is not safe for concurrent use.
type Profiler struct {
	stats map[string]*ElementStats
}

// ElementStats accumulates one element's costs.
type ElementStats struct {
	Name    string
	Cycles  float64
	Packets uint64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{stats: make(map[string]*ElementStats)}
}

// Account records cycles and a packet against an element name.
func (p *Profiler) Account(name string, cycles float64, packets uint64) {
	s := p.stats[name]
	if s == nil {
		s = &ElementStats{Name: name}
		p.stats[name] = s
	}
	s.Cycles += cycles
	s.Packets += packets
}

// Stats returns per-element totals sorted by descending cycles.
func (p *Profiler) Stats() []ElementStats {
	out := make([]ElementStats, 0, len(p.stats))
	for _, s := range p.stats {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TotalCycles sums all attributed cycles.
func (p *Profiler) TotalCycles() float64 {
	t := 0.0
	for _, s := range p.stats {
		t += s.Cycles
	}
	return t
}

// String renders a per-element cost table, heaviest first.
func (p *Profiler) String() string {
	var b strings.Builder
	total := p.TotalCycles()
	fmt.Fprintf(&b, "%-20s %12s %10s %7s %s\n", "element", "cycles", "packets", "cyc/pkt", "share")
	for _, s := range p.Stats() {
		per := 0.0
		if s.Packets > 0 {
			per = s.Cycles / float64(s.Packets)
		}
		share := 0.0
		if total > 0 {
			share = 100 * s.Cycles / total
		}
		fmt.Fprintf(&b, "%-20s %12.0f %10d %7.0f %4.1f%%\n", s.Name, s.Cycles, s.Packets, per, share)
	}
	return b.String()
}

// Instrument rewires every existing connection of the router so that the
// downstream element's own work (cycles it charges during Push,
// excluding what elements it pushes to charge in turn) is attributed to
// its name. Call after all Connects; connections made afterwards are not
// instrumented.
func (r *Router) Instrument(p *Profiler) {
	for _, c := range r.conns {
		c := c
		src := r.elements[c.from].(OutputSetter)
		dst := r.elements[c.to]
		src.SetOutput(c.fromPort, func(ctx *Context, pk *pkt.Packet) {
			i := ctx.pushFrame()
			dst.Push(ctx, c.toPort, pk)
			p.Account(c.to, ctx.popFrame(i), 1)
		})
		// Batch connections are bracketed the same way: the whole batch
		// dispatch (native or adapted) is one frame, and every packet in
		// the batch counts toward the destination element.
		if bsrc, ok := src.(BatchOutputSetter); ok {
			inner := BatchDispatch(dst, c.toPort)
			bsrc.SetBatchOutput(c.fromPort, func(ctx *Context, b *pkt.Batch) {
				n := uint64(b.Len())
				i := ctx.pushFrame()
				inner(ctx, b)
				p.Account(c.to, ctx.popFrame(i), n)
			})
		}
	}
}
