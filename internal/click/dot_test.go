package click

import (
	"strings"
	"testing"
)

// DOT output must name every element and label every edge with its
// port pair, so `rbrouter -print-graph | dot -Tsvg` shows the real
// wiring.
func TestRouterDOT(t *testing.T) {
	r, err := ParseConfig(`
		s :: Split;
		a :: Counter;
		s[0] -> a -> out;
		s[1] -> [2]out;
	`, testRegistry(), map[string]Element{"out": &psink{}})
	if err != nil {
		t.Fatal(err)
	}
	dot := r.DOT()
	for _, want := range []string{
		"digraph router {",
		`"s" [label="s :: psplit"];`,
		`"a" [label="a :: pcounter"];`,
		`"s" -> "a" [label="[0]->[0]"];`,
		`"a" -> "out" [label="[0]->[0]"];`,
		`"s" -> "out" [label="[1]->[2]"];`,
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
