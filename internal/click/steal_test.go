package click

import (
	"fmt"
	"net/netip"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"routebricks/internal/pkt"
)

// stealSink consumes packets and counts them — the terminal stage for
// steal tests, safe for concurrent pushes.
type stealSink struct {
	n atomic.Uint64
}

func (s *stealSink) InPorts() int  { return 1 }
func (s *stealSink) OutPorts() int { return 0 }

func (s *stealSink) Push(_ *Context, _ int, p *pkt.Packet) { s.n.Add(1) }

func (s *stealSink) PushBatch(_ *Context, _ int, b *pkt.Batch) {
	s.n.Add(uint64(b.Compact()))
	b.Reset()
}

// stealPackets builds n minimal tagged packets.
func stealPackets(n int) []*pkt.Packet {
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	out := make([]*pkt.Packet, n)
	for i := range out {
		p := pkt.New(64, src, dst, uint16(i), 80)
		p.SeqNo = uint64(i)
		out[i] = p
	}
	return out
}

// sinkPlan builds a parallel plan whose single stage is a counting
// sink, one per chain, and returns the plan plus the per-chain sinks.
func sinkPlan(t *testing.T, cores int, steal bool, stealMin int) (*Plan, []*stealSink) {
	t.Helper()
	var sinks []*stealSink
	plan, err := NewPlan(PlanConfig{
		Kind:  Parallel,
		Cores: cores,
		Stages: []StageSpec{{Name: "sink", Make: func(int) StageInstance {
			s := &stealSink{}
			sinks = append(sinks, s)
			return StageInstance{Entry: s}
		}}},
		KP:       32,
		Steal:    steal,
		StealMin: stealMin,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan, sinks
}

// TestStealRunStep is the deterministic steal check: a 2-core parallel
// plan with stealing enabled, every packet fed to chain 0's input ring,
// and only core 1 stepped. Core 1's own ring is empty, so the packets
// it delivers can only have been stolen from chain 0 — and the steal
// counters must say so.
func TestStealRunStep(t *testing.T) {
	plan, sinks := sinkPlan(t, 2, true, 1)
	for _, p := range stealPackets(64) {
		if !plan.Input(0).Push(p) {
			t.Fatal("input ring 0 rejected a packet")
		}
	}
	ctx := &Context{}
	moved := 0
	for i := 0; i < 16 && moved < 64; i++ {
		moved += plan.RunStep(1, ctx)
	}
	if moved != 64 {
		t.Fatalf("core 1 moved %d packets, want all 64 via stealing", moved)
	}
	if got := sinks[1].n.Load(); got != 64 {
		t.Errorf("chain 1's sink saw %d packets, want 64 (stolen work runs on the stealer's graph)", got)
	}
	if got := sinks[0].n.Load(); got != 0 {
		t.Errorf("chain 0's sink saw %d packets, want 0 (its core never ran)", got)
	}
	stats := plan.Stats()
	if got := stats[1].Steals(); got != 64 {
		t.Errorf("core 1 Steals() = %d, want 64", got)
	}
	if got := stats[0].Stolen(); got != 64 {
		t.Errorf("core 0 Stolen() = %d, want 64", got)
	}
	if got := stats[0].Steals(); got != 0 {
		t.Errorf("core 0 Steals() = %d, want 0", got)
	}
}

// TestStealThreshold: a backlog below StealMin must not be stolen —
// under the threshold the imbalance is noise, and stealing it would
// churn flow affinity for nothing.
func TestStealThreshold(t *testing.T) {
	plan, sinks := sinkPlan(t, 2, true, 16)
	for _, p := range stealPackets(8) { // 8 < StealMin 16
		if !plan.Input(0).Push(p) {
			t.Fatal("input ring 0 rejected a packet")
		}
	}
	ctx := &Context{}
	for i := 0; i < 8; i++ {
		if n := plan.RunStep(1, ctx); n != 0 {
			t.Fatalf("core 1 moved %d packets below the steal threshold", n)
		}
	}
	if got := plan.Stats()[1].Steals(); got != 0 {
		t.Errorf("core 1 Steals() = %d, want 0 below threshold", got)
	}
	// Chain 0's own core still drains its backlog normally.
	for i := 0; i < 8 && sinks[0].n.Load() < 8; i++ {
		plan.RunStep(0, ctx)
	}
	if got := sinks[0].n.Load(); got != 8 {
		t.Errorf("chain 0 delivered %d, want 8", got)
	}
}

// TestStealDisabled: with Steal off (the default), an idle core must
// never touch a sibling's ring no matter how deep the backlog.
func TestStealDisabled(t *testing.T) {
	plan, sinks := sinkPlan(t, 2, false, 0)
	for _, p := range stealPackets(64) {
		if !plan.Input(0).Push(p) {
			t.Fatal("input ring 0 rejected a packet")
		}
	}
	ctx := &Context{}
	for i := 0; i < 8; i++ {
		if n := plan.RunStep(1, ctx); n != 0 {
			t.Fatalf("core 1 moved %d packets with stealing disabled", n)
		}
	}
	if got := sinks[1].n.Load(); got != 0 {
		t.Errorf("chain 1's sink saw %d packets with stealing disabled", got)
	}
}

// TestStealLiveConservation is the -race gate for the steal protocol on
// real goroutines: a skewed feed (everything into chain 0) across a
// 4-core parallel plan with stealing on must deliver every packet
// exactly once — the sinks' total equals the fed count with no drops,
// no matter how the cores interleave their locked pops.
func TestStealLiveConservation(t *testing.T) {
	const n = 16384
	plan, sinks := sinkPlan(t, 4, true, 1)
	if err := plan.Start(); err != nil {
		t.Fatal(err)
	}
	defer plan.Stop()

	total := func() uint64 {
		var s uint64
		for _, sk := range sinks {
			s += sk.n.Load()
		}
		return s
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, p := range stealPackets(n) {
		for !plan.Input(0).Push(p) {
			runtime.Gosched()
			if time.Now().After(deadline) {
				t.Fatal("feed stalled")
			}
		}
	}
	for total() < n {
		runtime.Gosched()
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/%d before deadline", total(), n)
		}
	}
	if got := total(); got != n {
		t.Errorf("delivered %d packets, want exactly %d", got, n)
	}
	if drops := plan.Drops(); drops != 0 {
		t.Errorf("%d drops in a loss-free run", drops)
	}
	var steals, stolen uint64
	for _, cs := range plan.Stats() {
		steals += cs.Steals()
		stolen += cs.Stolen()
	}
	if steals != stolen {
		t.Errorf("steals (%d) != stolen (%d): a stolen packet must be credited on both sides", steals, stolen)
	}
}

// TestChooseBoundsWeighted checks the cycle-balancing DP: cuts move
// toward equalizing summed weight, not segment count, while respecting
// forbidden boundaries; uniform weights reduce to the unweighted split.
func TestChooseBoundsWeighted(t *testing.T) {
	cases := []struct {
		n, g  int
		noCut []bool
		w     []float64
		want  []int
	}{
		// Uniform weights: same even split chooseBounds picks.
		{4, 2, []bool{false, false, false}, []float64{1, 1, 1, 1}, []int{0, 2, 4}},
		// One heavy head segment: it gets a group of its own.
		{4, 2, []bool{false, false, false}, []float64{10, 1, 1, 1}, []int{0, 1, 4}},
		// Heavy tail: everything before it groups together.
		{4, 2, []bool{false, false, false}, []float64{1, 1, 1, 10}, []int{0, 3, 4}},
		// The balanced cut (after seg 0) is forbidden: take the legal one.
		{4, 2, []bool{true, false, false}, []float64{10, 1, 1, 1}, []int{0, 2, 4}},
		// Three groups around a heavy middle.
		{5, 3, []bool{false, false, false, false}, []float64{1, 1, 8, 1, 1}, []int{0, 2, 3, 5}},
	}
	for _, tc := range cases {
		got := chooseBoundsWeighted(tc.n, tc.g, tc.noCut, tc.w)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("chooseBoundsWeighted(%d,%d,%v,%v) = %v, want %v", tc.n, tc.g, tc.noCut, tc.w, got, tc.want)
			continue
		}
		for i := 1; i < len(got)-1; i++ {
			if got[i] <= got[i-1] || tc.noCut[got[i]-1] {
				t.Errorf("chooseBoundsWeighted(%d,%d,%v,%v) = %v: illegal boundary %d", tc.n, tc.g, tc.noCut, tc.w, got, got[i])
			}
		}
	}
}
