package click

import (
	"net/netip"
	"strings"
	"testing"

	"routebricks/internal/pkt"
)

// test element classes for the parser tests.
type pcounter struct {
	Base
	n int
}

func (c *pcounter) Push(ctx *Context, _ int, p *pkt.Packet) {
	c.n++
	c.Out(ctx, 0, p)
}
func (c *pcounter) InPorts() int  { return 1 }
func (c *pcounter) OutPorts() int { return 1 }

type psink struct{ got []int }

func (s *psink) Push(_ *Context, port int, _ *pkt.Packet) { s.got = append(s.got, port) }

type psplit struct{ Base }

func (e *psplit) Push(ctx *Context, _ int, p *pkt.Packet) {
	e.Out(ctx, int(p.Paint)%2, p)
}
func (e *psplit) InPorts() int  { return 1 }
func (e *psplit) OutPorts() int { return 2 }

func testRegistry() Registry {
	return Registry{
		"Counter": func(args []string) (Element, error) { return &pcounter{}, nil },
		"Split":   func(args []string) (Element, error) { return &psplit{}, nil },
	}
}

func pushPacket(t *testing.T, r *Router, entry string, paint byte) {
	t.Helper()
	p := pkt.New(64, netip.MustParseAddr("1.1.1.1"), netip.MustParseAddr("2.2.2.2"), 1, 2)
	p.Paint = paint
	r.Get(entry).Push(&Context{}, 0, p)
}

func TestParseSimpleChain(t *testing.T) {
	sink := &psink{}
	r, err := ParseConfig(`
		// a minimal pipeline
		a :: Counter;
		b :: Counter;
		a -> b -> out;
	`, testRegistry(), map[string]Element{"out": sink})
	if err != nil {
		t.Fatal(err)
	}
	pushPacket(t, r, "a", 0)
	if len(sink.got) != 1 {
		t.Fatalf("sink received %d packets", len(sink.got))
	}
	if r.Get("a").(*pcounter).n != 1 || r.Get("b").(*pcounter).n != 1 {
		t.Fatal("counters did not see the packet")
	}
}

func TestParseExplicitPorts(t *testing.T) {
	sink := &psink{}
	r, err := ParseConfig(`
		s :: Split;
		s[0] -> [3]out;
		s[1] -> [7]out;
	`, testRegistry(), map[string]Element{"out": sink})
	if err != nil {
		t.Fatal(err)
	}
	pushPacket(t, r, "s", 0) // paint 0 → output 0 → sink port 3
	pushPacket(t, r, "s", 1) // paint 1 → output 1 → sink port 7
	if len(sink.got) != 2 || sink.got[0] != 3 || sink.got[1] != 7 {
		t.Fatalf("sink ports = %v, want [3 7]", sink.got)
	}
}

func TestParsePreboundAlias(t *testing.T) {
	inst := &pcounter{}
	sink := &psink{}
	r, err := ParseConfig(`
		rt :: Lookup(fib);
		rt -> out;
	`, testRegistry(), map[string]Element{"fib": inst, "out": sink})
	if err != nil {
		t.Fatal(err)
	}
	if r.Get("rt") != Element(inst) {
		t.Fatal("alias did not bind the prebound instance")
	}
	pushPacket(t, r, "rt", 0)
	if inst.n != 1 || len(sink.got) != 1 {
		t.Fatal("prebound pipeline did not run")
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	_, err := ParseConfig(`
		// comment only line
		a :: Counter;    // trailing comment

		b
		   ::
		Counter;
		a -> b;
		b -> a;   // cycles are legal in click graphs
	`, testRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"missing semicolon", "a :: Counter", "missing ';'"},
		{"unknown class", "a :: Nope;", "unknown element class"},
		{"bad name", "9a :: Counter;", "bad element name"},
		{"bad class", "a :: 9Counter;", "bad element class"},
		{"unbalanced parens", "a :: Counter(;", "unbalanced"},
		{"unknown endpoint", "a :: Counter; a -> ghost;", "unknown element"},
		{"garbage", "what is this;", "cannot parse"},
		{"bad port", "a :: Counter; b :: Counter; a[x] -> b;", "bad output port"},
		{"bad inport", "a :: Counter; b :: Counter; a -> [y]b;", "bad input port"},
		// Sscanf("%d") used to accept both of these silently: trailing
		// garbage parsed as the leading digits, and negative ports sailed
		// straight through to Connect.
		{"trailing garbage port", "a :: Counter; b :: Counter; a[1x] -> b;", "bad output port"},
		{"negative out port", "a :: Counter; b :: Counter; a[-1] -> b;", "bad output port"},
		{"negative in port", "a :: Counter; b :: Counter; a -> [-2]b;", "bad input port"},
		{"huge port", "a :: Counter; b :: Counter; a[4096] -> b;", "bad output port"},
		{"empty port", "a :: Counter; b :: Counter; a[] -> b;", "bad output port"},
		{"double connect", "a :: Counter; b :: Counter; a -> b; a -> b;", "already connected"},
		{"duplicate decl", "a :: Counter; a :: Counter;", "duplicate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseConfig(c.text, testRegistry(), nil)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestParseFactoryErrorPropagates(t *testing.T) {
	reg := Registry{
		"Fussy": func(args []string) (Element, error) {
			return nil, &parseErr{"no arguments allowed"}
		},
	}
	_, err := ParseConfig("x :: Fussy(1);", reg, nil)
	if err == nil || !strings.Contains(err.Error(), "no arguments allowed") {
		t.Fatalf("factory error lost: %v", err)
	}
}

type parseErr struct{ s string }

func (e *parseErr) Error() string { return e.s }

func TestParseLongChainDefaultPorts(t *testing.T) {
	sink := &psink{}
	r, err := ParseConfig(`
		a :: Counter; b :: Counter; c :: Counter;
		a -> b -> c -> out;
	`, testRegistry(), map[string]Element{"out": sink})
	if err != nil {
		t.Fatal(err)
	}
	pushPacket(t, r, "a", 0)
	for _, name := range []string{"a", "b", "c"} {
		if r.Get(name).(*pcounter).n != 1 {
			t.Fatalf("%s did not see the packet", name)
		}
	}
}
