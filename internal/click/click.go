// Package click is a modular packet-processing framework in the style of
// the Click modular router (Kohler et al., TOCS 2000), which RouteBricks
// uses as its programming environment. A router is a directed graph of
// elements; packets are pushed along connections by synchronous calls, so
// an element graph compiles down to plain function calls — the property
// that makes Click's per-packet overhead small enough for the paper's
// 1033-instruction forwarding path.
//
// Differences from C++ Click, chosen deliberately:
//
//   - Push-only. Pull paths and schedulable Queues are replaced by
//     explicit NIC transmit rings (internal/nic), which is how the
//     paper's configurations are structured anyway (PollDevice → ... →
//     ToDevice).
//   - Static thread assignment is explicit: tasks (polling loops) are
//     bound to cores at configuration time, enforcing the paper's "one
//     core per queue" rule by construction.
//   - Elements charge virtual CPU cycles to the Context; the simulation
//     harness converts those into time on the modeled server.
//   - Dispatch is batch-native. Poll tasks pull a kp-packet pkt.Batch
//     from their receive ring and push the whole batch through the graph
//     with one call per hop (§4.2's poll batching made a code path, not
//     just a cost-model divisor). Elements implementing BatchElement
//     process batches in place; per-packet elements are driven through
//     an adapter installed at Connect time, so the two styles mix freely
//     in one graph.
//
// # Ownership discipline
//
// Exactly one owner per packet at any time. Pushing a packet — via
// Push, Out, PushBatch, or OutBatch — transfers ownership downstream:
// the pusher must not touch the packet again unless it comes back (it
// never does; the graph is a DAG of synchronous calls). An element that
// terminates a packet's life (Discard, Sink, a drop on a full transmit
// ring) is the sole owner at that moment and may return the buffer to a
// pkt.Pool; everything upstream has already let go. Batch containers
// are different: OutBatch hands the *packets* downstream but returns
// the emptied Batch to the caller, so a poll task reuses one Batch for
// its whole lifetime. Elements that filter a batch do it in place with
// Take/Drop + Compact before forwarding, never by allocating a new
// container.
package click

import (
	"fmt"
	"sort"

	"routebricks/internal/pkt"
)

// Context rides along each push call chain. It accumulates the virtual
// cycle cost of the work performed and exposes the virtual clock to
// elements that timestamp packets.
type Context struct {
	// NowNS returns the current virtual time in nanoseconds; it may be
	// nil in untimed (pure functional) runs.
	NowNS func() int64

	// PoolShard is the executing core's wired slice of the packet pool,
	// set by the plan's poll tasks so graph exits recycle — and sources
	// allocate — against core-local state (see Recycle/Alloc). Nil in
	// contexts that never entered a placed plan.
	PoolShard *pkt.PoolShard

	cycles float64
	frames []frame // profiling stack; empty unless Router.Instrument is active
}

// Recycle returns p to pool, preferring the executing core's wired
// shard when it belongs to the same pool — the shared-nothing fast
// path: a Discard or Sink on core c puts into core c's freelist, and
// the next poll's allocations find the buffer still cache-warm.
func (c *Context) Recycle(pool *pkt.Pool, p *pkt.Packet) {
	if c != nil && c.PoolShard != nil && c.PoolShard.Pool() == pool {
		c.PoolShard.Put(p)
		return
	}
	pool.Put(p)
}

// RecycleBatch is Recycle for a whole batch: one shard-lock crossing
// for all of b's packets.
func (c *Context) RecycleBatch(pool *pkt.Pool, b *pkt.Batch) {
	if c != nil && c.PoolShard != nil && c.PoolShard.Pool() == pool {
		c.PoolShard.PutBatch(b)
		return
	}
	pool.PutBatch(b)
}

// Alloc draws a packet from pool via the executing core's wired shard
// when possible — the allocation half of the shared-nothing discipline
// for elements that materialize packets on the datapath (ESP
// encapsulation, reassembly).
func (c *Context) Alloc(pool *pkt.Pool, size int) *pkt.Packet {
	if c != nil && c.PoolShard != nil && c.PoolShard.Pool() == pool {
		return c.PoolShard.Get(size)
	}
	return pool.Get(size)
}

// frame tracks one instrumented push: the cycle counter at entry and the
// cycles consumed by nested (child) pushes.
type frame struct {
	entry float64
	child float64
}

// BeginFrame opens a profiling frame for an entry point (a poll task or
// a manual push); pair with EndFrame to attribute the entry element's
// own cycles when the graph is instrumented.
func (c *Context) BeginFrame() int { return c.pushFrame() }

// EndFrame closes the frame opened by BeginFrame and returns the cycles
// charged inside it, exclusive of instrumented children.
func (c *Context) EndFrame(i int) float64 { return c.popFrame(i) }

// pushFrame opens a profiling frame and returns its index.
func (c *Context) pushFrame() int {
	c.frames = append(c.frames, frame{entry: c.cycles})
	return len(c.frames) - 1
}

// popFrame closes frame i, returning the cycles charged within it
// exclusive of nested frames, and credits the total to the parent frame.
func (c *Context) popFrame(i int) float64 {
	f := c.frames[i]
	total := c.cycles - f.entry
	own := total - f.child
	c.frames = c.frames[:i]
	if i > 0 {
		c.frames[i-1].child += total
	}
	return own
}

// Charge adds virtual CPU cycles to the current dispatch. Element
// implementations call it with the calibrated cost of the work they just
// did.
func (c *Context) Charge(cycles float64) { c.cycles += cycles }

// TakeCycles returns the accumulated cycles and resets the accumulator;
// the core loop calls it after each batch to advance its clock.
func (c *Context) TakeCycles() float64 {
	v := c.cycles
	c.cycles = 0
	return v
}

// Now reports the virtual time in nanoseconds, or 0 when untimed.
func (c *Context) Now() int64 {
	if c.NowNS == nil {
		return 0
	}
	return c.NowNS()
}

// Element is a packet-processing module. Push delivers a packet to input
// port port; the element does its work, charges cycles, and pushes the
// packet onward through its bound outputs (or drops it).
type Element interface {
	// Push processes a packet arriving on the given input port.
	Push(ctx *Context, port int, p *pkt.Packet)
}

// PortCounter is implemented by elements that know how many ports they
// expose; the router validates connections against it. Elements that do
// not implement it accept any port index.
type PortCounter interface {
	InPorts() int
	OutPorts() int
}

// Output is a bound downstream connection.
type Output func(ctx *Context, p *pkt.Packet)

// OutputSetter is implemented by elements with outputs (typically via
// embedding Base). The router wires connections through it.
type OutputSetter interface {
	SetOutput(port int, out Output)
}

// Base provides output-port bookkeeping for element implementations.
// Embed it and call Out to forward single packets, OutBatch to forward
// batches. Each port can carry a per-packet binding, a batch binding, or
// both; either call falls back to the other binding when its own is
// missing, so graphs mixing batch-native and per-packet elements always
// deliver.
type Base struct {
	outs  []Output
	bouts []BatchOutput
	// one is the lazily built scratch batch behind Out's batch-only-port
	// fallback, so wrapping a single packet never touches the heap after
	// the first use. Safe to reuse across calls because the graph is a
	// DAG of synchronous dispatches: the batch is consumed before Out
	// returns.
	one *pkt.Batch
}

// SetOutput binds output port i's per-packet path.
func (b *Base) SetOutput(i int, out Output) {
	for len(b.outs) <= i {
		b.outs = append(b.outs, nil)
	}
	b.outs[i] = out
}

// SetBatchOutput binds output port i's batch path.
func (b *Base) SetBatchOutput(i int, out BatchOutput) {
	for len(b.bouts) <= i {
		b.bouts = append(b.bouts, nil)
	}
	b.bouts[i] = out
}

// Out pushes p to output port i; unconnected ports drop silently (like
// Click's Discard-terminated dangling outputs, but explicit). A port
// with only a batch binding delivers p as a momentary batch of one.
func (b *Base) Out(ctx *Context, i int, p *pkt.Packet) {
	if i < len(b.outs) && b.outs[i] != nil {
		b.outs[i](ctx, p)
		return
	}
	if i < len(b.bouts) && b.bouts[i] != nil {
		if b.one == nil {
			b.one = pkt.NewBatch(1)
		}
		b.one.Reset()
		b.one.Add(p)
		b.bouts[i](ctx, b.one)
		b.one.Reset()
	}
}

// OutBatch pushes a whole batch to output port i. Ownership of the
// packets passes downstream; the Batch container returns to the caller
// empty, ready for refilling. Ports bound only per-packet receive the
// batch unrolled in slot order; unconnected ports drop the batch.
func (b *Base) OutBatch(ctx *Context, i int, batch *pkt.Batch) {
	if i < len(b.bouts) && b.bouts[i] != nil {
		b.bouts[i](ctx, batch)
		batch.Reset()
		return
	}
	if i < len(b.outs) && b.outs[i] != nil {
		out := b.outs[i]
		for _, p := range batch.Packets() {
			if p != nil {
				out(ctx, p)
			}
		}
	}
	batch.Reset()
}

// Connected reports whether output i is bound (either path).
func (b *Base) Connected(i int) bool {
	return (i < len(b.outs) && b.outs[i] != nil) || (i < len(b.bouts) && b.bouts[i] != nil)
}

// Router is a named element graph.
type Router struct {
	elements map[string]Element
	order    []string
	conns    []conn
}

type conn struct {
	from     string
	fromPort int
	to       string
	toPort   int
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{elements: make(map[string]Element)}
}

// Add registers an element under a unique name.
func (r *Router) Add(name string, e Element) error {
	if _, dup := r.elements[name]; dup {
		return fmt.Errorf("click: duplicate element %q", name)
	}
	if e == nil {
		return fmt.Errorf("click: nil element %q", name)
	}
	r.elements[name] = e
	r.order = append(r.order, name)
	return nil
}

// MustAdd is Add that panics on error, for static configurations.
func (r *Router) MustAdd(name string, e Element) Element {
	if err := r.Add(name, e); err != nil {
		panic(err)
	}
	return e
}

// Get returns a registered element, or nil.
func (r *Router) Get(name string) Element { return r.elements[name] }

// Elements returns the element names in registration order.
func (r *Router) Elements() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Connect wires from[fromPort] → to[toPort].
func (r *Router) Connect(from string, fromPort int, to string, toPort int) error {
	src, ok := r.elements[from]
	if !ok {
		return fmt.Errorf("click: connect from unknown element %q", from)
	}
	dst, ok := r.elements[to]
	if !ok {
		return fmt.Errorf("click: connect to unknown element %q", to)
	}
	setter, ok := src.(OutputSetter)
	if !ok {
		return fmt.Errorf("click: element %q has no outputs", from)
	}
	if pc, ok := src.(PortCounter); ok && fromPort >= pc.OutPorts() {
		return fmt.Errorf("click: %q output %d out of range (%d outputs)", from, fromPort, pc.OutPorts())
	}
	if pc, ok := dst.(PortCounter); ok && toPort >= pc.InPorts() {
		return fmt.Errorf("click: %q input %d out of range (%d inputs)", to, toPort, pc.InPorts())
	}
	for _, c := range r.conns {
		if c.from == from && c.fromPort == fromPort {
			return fmt.Errorf("click: output %s[%d] already connected", from, fromPort)
		}
	}
	setter.SetOutput(fromPort, func(ctx *Context, p *pkt.Packet) {
		dst.Push(ctx, toPort, p)
	})
	// Wire the batch path alongside the per-packet one: native when the
	// destination is batch-aware, otherwise the automatic per-packet
	// adapter, chosen once here so dispatch stays a single indirect call.
	if bsetter, ok := src.(BatchOutputSetter); ok {
		bsetter.SetBatchOutput(fromPort, BatchDispatch(dst, toPort))
	}
	r.conns = append(r.conns, conn{from, fromPort, to, toPort})
	return nil
}

// MustConnect is Connect that panics on error.
func (r *Router) MustConnect(from string, fromPort int, to string, toPort int) {
	if err := r.Connect(from, fromPort, to, toPort); err != nil {
		panic(err)
	}
}

// Check verifies that every declared output port of every element is
// connected, mirroring Click's configuration-time check.
func (r *Router) Check() error {
	var missing []string
	for _, name := range r.order {
		pc, ok := r.elements[name].(PortCounter)
		if !ok {
			continue
		}
		for p := 0; p < pc.OutPorts(); p++ {
			found := false
			for _, c := range r.conns {
				if c.from == name && c.fromPort == p {
					found = true
					break
				}
			}
			if !found {
				missing = append(missing, fmt.Sprintf("%s[%d]", name, p))
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("click: unconnected outputs: %v", missing)
	}
	return nil
}

// Graph renders the connection list, for documentation and debugging.
func (r *Router) Graph() string {
	s := ""
	for _, c := range r.conns {
		s += fmt.Sprintf("%s[%d] -> %s[%d]\n", c.from, c.fromPort, c.to, c.toPort)
	}
	return s
}
