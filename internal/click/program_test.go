package click

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"routebricks/internal/pkt"
)

// pshift routes on one bit of the Paint annotation, so chained Shift
// elements can classify on independent bits.
type pshift struct {
	Base
	shift uint
}

func (e *pshift) InPorts() int  { return 1 }
func (e *pshift) OutPorts() int { return 2 }
func (e *pshift) Push(ctx *Context, _ int, p *pkt.Packet) {
	e.Out(ctx, int(p.Paint>>e.shift)&1, p)
}

// pjoin merges two inputs onto one output.
type pjoin struct{ Base }

func (e *pjoin) InPorts() int  { return 2 }
func (e *pjoin) OutPorts() int { return 1 }
func (e *pjoin) Push(ctx *Context, _ int, p *pkt.Packet) {
	e.Out(ctx, 0, p)
}

// progRegistry builds test graphs from pcounter/psplit-style elements
// (some declared in parse_test.go).
func progRegistry() Registry {
	return Registry{
		"Counter": func(args []string) (Element, error) { return &pcounter{}, nil },
		"Split":   func(args []string) (Element, error) { return &psplit{}, nil },
		"Join":    func(args []string) (Element, error) { return &pjoin{}, nil },
		"Shift": func(args []string) (Element, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("Shift takes one bit index")
			}
			n, err := strconv.Atoi(args[0])
			if err != nil {
				return nil, err
			}
			return &pshift{shift: uint(n)}, nil
		},
	}
}

// topo instantiates chain 0 of a parsed program and returns the trunk
// names and noCut flags.
func topo(t *testing.T, text string, entry string) *Instance {
	t.Helper()
	prog := ParseProgram(text, progRegistry(), func(int) map[string]Element {
		return map[string]Element{"sink": &progSink{}, "sink2": &progSink{}}
	})
	prog.Entry = entry
	in, err := prog.Instantiate(0)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	return in
}

func TestProgramTrunkLinear(t *testing.T) {
	in := topo(t, `a :: Counter; b :: Counter; c :: Counter; a -> b -> c -> sink;`, "")
	if got := strings.Join(in.Segments(), " "); got != "a b c sink" {
		t.Fatalf("trunk = %q", got)
	}
	for i, f := range in.noCut {
		if f {
			t.Errorf("boundary %d forbidden in a plain chain", i)
		}
	}
	if in.Entry() != in.router.Get("a") || in.Exit() != in.router.Get("sink") {
		t.Fatal("entry/exit misidentified")
	}
}

// A side branch hanging off one trunk element does not restrict cuts;
// the branch elements stay off the trunk.
func TestProgramSideBranch(t *testing.T) {
	in := topo(t, `
		s :: Split; a :: Counter; b :: Counter;
		s[0] -> a -> b -> sink;
		s[1] -> sink2;
	`, "")
	if got := strings.Join(in.Segments(), " "); got != "s a b sink" {
		t.Fatalf("trunk = %q", got)
	}
	for i, f := range in.noCut {
		if f {
			t.Errorf("boundary %d forbidden, side branch should not pin anything", i)
		}
	}
}

// A side element fed from two trunk positions pins them to one core:
// cutting between them would let two cores push into it concurrently.
func TestProgramSharedBranchForbidsCuts(t *testing.T) {
	in := topo(t, `
		s :: Split; m :: Split; tail :: Counter;
		s[0] -> m;
		m[0] -> tail -> sink;
		s[1] -> sink2;
		m[1] -> sink2;
	`, "")
	if got := strings.Join(in.Segments(), " "); got != "s m tail sink" {
		t.Fatalf("trunk = %q", got)
	}
	// sink2 is reachable from s (index 0) and m (index 1): boundary 0 is
	// pinned; boundaries 1 and 2 stay cuttable.
	if !in.noCut[0] {
		t.Error("boundary s|m should be forbidden (shared sink2)")
	}
	if in.noCut[1] || in.noCut[2] {
		t.Errorf("noCut = %v, only boundary 0 should be pinned", in.noCut)
	}
	if g := cuttableGroups(in.noCut); g != 3 {
		t.Errorf("cuttableGroups = %d, want 3", g)
	}
}

// A cycle back into the trunk pins the whole loop onto one core.
func TestProgramCycleForbidsCuts(t *testing.T) {
	in := topo(t, `a :: Counter; b :: Counter; a -> b; b -> a;`, "a")
	if got := strings.Join(in.Segments(), " "); got != "a b" {
		t.Fatalf("trunk = %q", got)
	}
	if !in.noCut[0] {
		t.Error("cycle a->b->a must forbid the cut between a and b")
	}
}

// A trunk edge landing on a non-zero input port cannot be cut: the
// handoff ring re-enters at port 0.
func TestProgramNonZeroPortEdgeUncuttable(t *testing.T) {
	in := topo(t, `a :: Counter; b :: Join; a -> [0]b; b -> sink;`, "")
	if !strings.HasPrefix(strings.Join(in.Segments(), " "), "a b") {
		t.Fatalf("trunk = %q", in.Segments())
	}
	if in.noCut[0] {
		t.Error("port-0 edge should be cuttable")
	}
	in2 := topo(t, `a :: Counter; b :: Join; a -> [1]b; b -> sink;`, "")
	if !in2.noCut[0] {
		t.Error("edge into input port 1 must be uncuttable")
	}
}

func TestProgramEntryDetection(t *testing.T) {
	prog := ParseProgram(`a :: Counter; b :: Counter; a -> b; b -> a;`, progRegistry(), nil)
	if _, err := prog.Instantiate(0); err == nil || !strings.Contains(err.Error(), "no entry") {
		t.Errorf("cycle without Entry: err = %v", err)
	}
	prog2 := ParseProgram(`a :: Counter; b :: Counter; c :: Counter; a -> c; b -> c;`, progRegistry(), nil)
	if _, err := prog2.Instantiate(0); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("two sources without Entry: err = %v", err)
	}
	prog2.Entry = "a"
	if _, err := prog2.Instantiate(0); err != nil {
		t.Errorf("explicit entry rejected: %v", err)
	}
	prog2.Entry = "ghost"
	if _, err := prog2.Instantiate(0); err == nil {
		t.Error("unknown entry accepted")
	}
}

func TestChooseBounds(t *testing.T) {
	cases := []struct {
		n, g  int
		noCut []bool
		want  []int
	}{
		{3, 1, []bool{false, false}, []int{0, 3}},
		{3, 3, []bool{false, false}, []int{0, 1, 2, 3}},
		{4, 2, []bool{false, false, false}, []int{0, 2, 4}},
		// Boundary 1 (after segment 1) forbidden: the even split 2+2
		// must move to 3+1 (or 1+3; ties break toward later cuts).
		{4, 2, []bool{false, true, false}, []int{0, 3, 4}},
		// Only the last boundary is allowed.
		{4, 2, []bool{true, true, false}, []int{0, 3, 4}},
		// Three groups with the middle boundary forbidden.
		{5, 3, []bool{false, true, false, false}, []int{0, 1, 3, 5}},
	}
	for _, tc := range cases {
		got := chooseBounds(tc.n, tc.g, tc.noCut)
		if len(got) != len(tc.want) {
			t.Errorf("chooseBounds(%d,%d,%v) = %v, want %v", tc.n, tc.g, tc.noCut, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("chooseBounds(%d,%d,%v) = %v, want %v", tc.n, tc.g, tc.noCut, got, tc.want)
				break
			}
		}
		// Invariants regardless of the exact split: monotone, legal cuts.
		for i := 1; i < len(got)-1; i++ {
			if got[i] <= got[i-1] || tc.noCut[got[i]-1] {
				t.Errorf("chooseBounds(%d,%d,%v) = %v: illegal boundary %d", tc.n, tc.g, tc.noCut, got, got[i])
			}
		}
	}
}

// TestProgramPlanBranchy runs a branchy graph (Split with a side branch
// per trunk element) through both plan kinds at several widths and
// checks loss-free delivery with correct per-port totals — the
// graph-level analog of TestPlanDeterminism.
func TestProgramPlanBranchy(t *testing.T) {
	const n = 4096
	for _, kind := range []PlanKind{Parallel, Pipelined} {
		for _, cores := range []int{1, 2, 4} {
			var mains, sides []*progSink
			prog := ParseProgram(`
				s1 :: Shift(0); s2 :: Shift(1);
				s1[0] -> s2;
				s1[1] -> side1;
				s2[0] -> out;
				s2[1] -> side2;
			`, progRegistry(), func(chain int) map[string]Element {
				out, sd1, sd2 := &progSink{}, &progSink{}, &progSink{}
				mains = append(mains, out)
				sides = append(sides, sd1, sd2)
				return map[string]Element{"out": out, "side1": sd1, "side2": sd2}
			})
			plan, err := NewPlan(PlanConfig{Kind: kind, Cores: cores, Program: prog, KP: 8})
			if err != nil {
				t.Fatalf("%s/%d: %v", kind, cores, err)
			}
			packets := make([]*pkt.Packet, n)
			for i := range packets {
				// Paint bit 0 decides at s1, bit 1 at s2: paint 0 -> out,
				// 1 and 3 -> side1, 2 -> side2.
				packets[i] = &pkt.Packet{SeqNo: uint64(i), Paint: byte(i % 4)}
			}
			drivePlan(t, plan, packets)
			if plan.Drops() != 0 {
				t.Errorf("%s/%d: %d drops", kind, cores, plan.Drops())
			}
			var main, side uint64
			for _, s := range mains {
				main += s.count()
			}
			for _, s := range sides {
				side += s.count()
			}
			// Paint%4: 0 -> out, 1,3 -> side1, 2 -> side2.
			if main != n/4 {
				t.Errorf("%s/%d: main sink saw %d, want %d", kind, cores, main, n/4)
			}
			if side != 3*n/4 {
				t.Errorf("%s/%d: side sinks saw %d, want %d", kind, cores, side, 3*n/4)
			}
			if main+side != n {
				t.Errorf("%s/%d: total %d, want %d", kind, cores, main+side, n)
			}
		}
	}
}

// TestProgramPlanNonDeterministicBuild: a Build whose later chains
// change the trunk length or the cut constraints must be rejected with
// an error — the plan's geometry comes from chain 0.
func TestProgramPlanNonDeterministicBuild(t *testing.T) {
	// Chain 1 grows an extra trunk segment.
	longer := NewProgram(func(chain int) (*Router, error) {
		r := NewRouter()
		r.MustAdd("a", &pcounter{})
		r.MustAdd("b", &pcounter{})
		r.MustAdd("c", &pcounter{})
		r.MustConnect("a", 0, "b", 0)
		r.MustConnect("b", 0, "c", 0)
		if chain > 0 {
			r.MustAdd("d", &pcounter{})
			r.MustConnect("c", 0, "d", 0)
		}
		return r, nil
	})
	if _, err := NewPlan(PlanConfig{Kind: Parallel, Cores: 4, Program: longer}); err == nil ||
		!strings.Contains(err.Error(), "deterministic") {
		t.Errorf("trunk-length drift: err = %v", err)
	}
	// Chain 1 keeps the trunk (a, b, c) but routes both side branches
	// into one shared sink, pinning boundary a|b on that chain only.
	pinned := NewProgram(func(chain int) (*Router, error) {
		r := NewRouter()
		r.MustAdd("a", &psplit{})
		r.MustAdd("b", &psplit{})
		r.MustAdd("c", &pcounter{})
		r.MustAdd("sideA", &progSink{})
		r.MustAdd("sideB", &progSink{})
		r.MustConnect("a", 0, "b", 0)
		r.MustConnect("b", 0, "c", 0)
		r.MustConnect("a", 1, "sideA", 0)
		if chain > 0 {
			r.MustConnect("b", 1, "sideA", 0) // shared with a's branch
		} else {
			r.MustConnect("b", 1, "sideB", 0)
		}
		return r, nil
	})
	pinned.Entry = "a" // chain 1 leaves sideB unconnected, so auto-detection is ambiguous
	// Cores=6 over a 3-cuttable-group trunk replicates the chain twice,
	// so chain 1 is actually instantiated — and must be rejected before
	// chooseBounds tries to cut it somewhere chain 1's topology forbids.
	if _, err := NewPlan(PlanConfig{Kind: Pipelined, Cores: 6, Program: pinned}); err == nil ||
		!strings.Contains(err.Error(), "deterministic") {
		t.Errorf("noCut drift: err = %v", err)
	}
}

// TestProgramPlanGeometry checks that pipelined cutting respects the
// graph's constraints: a shared side branch shrinks the group count.
func TestProgramPlanGeometry(t *testing.T) {
	// sink2 shared by s and m: only boundaries m|tail and tail|sink are
	// cuttable, so 4 cores can make at most 3 groups (no replication at
	// 4 cores: 4/3 = 1 chain, one idle core).
	prog := ParseProgram(`
		s :: Split; m :: Split; tail :: Counter;
		s[0] -> m;
		m[0] -> tail -> sink;
		s[1] -> sink2;
		m[1] -> sink2;
	`, progRegistry(), func(int) map[string]Element {
		return map[string]Element{"sink": &progSink{}, "sink2": &progSink{}}
	})
	plan, err := NewPlan(PlanConfig{Kind: Pipelined, Cores: 4, Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chains() != 1 {
		t.Errorf("chains = %d, want 1", plan.Chains())
	}
	if len(plan.handoffs) != 2 {
		t.Errorf("handoffs = %d, want 2", len(plan.handoffs))
	}
	// The first group must hold both s and m.
	if got := plan.Stats()[0].Stages; got != "s+m" {
		t.Errorf("first core runs %q, want \"s+m\"", got)
	}
	if plan.Router(0) == nil {
		t.Error("program-built plan should expose its router")
	}
}

// progSink is a self-contained counting terminal for program tests
// (countSink in place_test.go shares an external atomic instead).
type progSink struct{ n atomic.Uint64 }

func (s *progSink) InPorts() int                          { return 1 }
func (s *progSink) OutPorts() int                         { return 0 }
func (s *progSink) Push(_ *Context, _ int, p *pkt.Packet) { s.n.Add(1) }
func (s *progSink) count() uint64                         { return s.n.Load() }
