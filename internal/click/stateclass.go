package click

import "sort"

// StateClass declares what kind of mutable state an element carries —
// the property that decides whether the planner may clone it per chain.
// A parallel (or replicated pipelined) plan instantiates the whole
// graph once per chain, so an element's state is silently split N ways;
// whether that is correct depends entirely on what the state keys on:
//
//   - Stateless: no state, or per-instance counters whose clones
//     aggregate correctly (a packet counter, an LPM miss counter).
//     Always safe to clone.
//   - PerFlow: state keyed by flow (reassembly buffers, per-flow
//     counters). Safe to clone exactly when the feeder steers
//     flow-consistently — every packet of a flow reaches the same
//     chain — because then each clone owns a disjoint flow set.
//   - Shared: state that must be process-global (a learned ARP table,
//     a token bucket shaping one link, an AQM average over one queue).
//     Never safe to clone; the element pins its graph to one chain.
type StateClass int

const (
	// Stateless elements (or clone-aggregable counters) — safe anywhere.
	Stateless StateClass = iota
	// PerFlow elements need flow-consistent steering to be cloned.
	PerFlow
	// Shared elements pin the graph to a single chain.
	Shared
)

// String names the class as docs and -print-graph render it.
func (c StateClass) String() string {
	switch c {
	case Stateless:
		return "stateless"
	case PerFlow:
		return "per-flow"
	case Shared:
		return "shared"
	}
	return "unknown"
}

// StateClassifier is implemented by elements that carry state. Elements
// that don't implement it are Stateless — the right default for the
// majority, and harness/test elements keep working unchanged.
type StateClassifier interface {
	StateClass() StateClass
}

// StateClassOf reports an element's declared state class.
func StateClassOf(e Element) StateClass {
	if sc, ok := e.(StateClassifier); ok {
		return sc.StateClass()
	}
	return Stateless
}

// StateClasses maps every element of the instance's graph to its class
// (trunk entries only for the legacy stage shim).
func (in *Instance) StateClasses() map[string]StateClass {
	out := make(map[string]StateClass)
	if in.router != nil {
		for name, e := range in.router.elements {
			out[name] = StateClassOf(e)
		}
		return out
	}
	for i, name := range in.names {
		out[name] = StateClassOf(in.segs[i].Entry)
	}
	return out
}

// ElementsOfClass lists the instance's elements of one class, sorted —
// what plan gating and -print-graph verdicts name in their output.
func (in *Instance) ElementsOfClass(class StateClass) []string {
	var out []string
	for name, c := range in.StateClasses() {
		if c == class {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
