package click

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"routebricks/internal/pkt"
)

// tagElem appends its id to every packet's NextHop-trail by bumping a
// per-packet hop count, so tests can prove each packet traversed every
// stage exactly once.
type tagElem struct {
	Base
	hops atomic.Uint64
}

func (e *tagElem) InPorts() int  { return 1 }
func (e *tagElem) OutPorts() int { return 1 }

func (e *tagElem) Push(ctx *Context, _ int, p *pkt.Packet) {
	p.NextHop++
	e.hops.Add(1)
	e.Out(ctx, 0, p)
}

func (e *tagElem) PushBatch(ctx *Context, _ int, b *pkt.Batch) {
	n := 0
	for _, p := range b.Packets() {
		if p != nil {
			p.NextHop++
			n++
		}
	}
	e.hops.Add(uint64(n))
	e.OutBatch(ctx, 0, b)
}

// collectSink records the SeqNo of every packet it consumes. Safe for
// concurrent pushes from multiple chains because each chain gets its own
// instance.
type collectSink struct {
	seqs []uint64
}

func (s *collectSink) InPorts() int  { return 1 }
func (s *collectSink) OutPorts() int { return 0 }

func (s *collectSink) Push(_ *Context, _ int, p *pkt.Packet) {
	s.seqs = append(s.seqs, p.SeqNo)
}

// threeStages builds a fresh 3-stage tagging pipeline spec.
func threeStages() []StageSpec {
	mk := func(string) StageSpec {
		return StageSpec{Make: func(int) StageInstance {
			return StageInstance{Entry: &tagElem{}}
		}}
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	a.Name, b.Name, c.Name = "a", "b", "c"
	return []StageSpec{a, b, c}
}

// drivePlan feeds the given packets round-robin across the plan's
// chains and steps every core until the plan drains, all on the calling
// goroutine — the deterministic execution mode.
func drivePlan(t *testing.T, p *Plan, packets []*pkt.Packet) {
	t.Helper()
	ctx := &Context{}
	fed := 0
	for fed < len(packets) {
		for c := 0; c < p.Chains() && fed < len(packets); c++ {
			if p.Input(c).Push(packets[fed]) {
				fed++
			}
		}
		for core := 0; core < p.Cores(); core++ {
			p.RunStep(core, ctx)
		}
	}
	// Drain: keep stepping until every ring is empty and two full sweeps
	// move nothing (pipelined plans need multiple sweeps per packet).
	for quiet := 0; quiet < 2; {
		moved := 0
		for core := 0; core < p.Cores(); core++ {
			moved += p.RunStep(core, ctx)
		}
		if moved == 0 && p.Queued() == 0 {
			quiet++
		} else {
			quiet = 0
		}
	}
}

// TestPlanDeterminism is the zero-loss equivalence check: a Parallel
// and a Pipelined plan over the same stages must forward the identical
// packet set with no loss, every packet touched by every stage exactly
// once.
func TestPlanDeterminism(t *testing.T) {
	const n = 1000
	for _, kind := range []PlanKind{Parallel, Pipelined} {
		for _, cores := range []int{1, 2, 4} {
			sinks := make(map[int]*collectSink)
			plan, err := NewPlan(PlanConfig{
				Kind:   kind,
				Cores:  cores,
				Stages: threeStages(),
				KP:     8,
				Sink: func(chain int) Element {
					s := &collectSink{}
					sinks[chain] = s
					return s
				},
			})
			if err != nil {
				t.Fatalf("%s/%d: %v", kind, cores, err)
			}
			packets := make([]*pkt.Packet, n)
			for i := range packets {
				packets[i] = &pkt.Packet{SeqNo: uint64(i)}
			}
			drivePlan(t, plan, packets)

			if plan.Drops() != 0 {
				t.Errorf("%s/%d: %d ring drops, want 0", kind, cores, plan.Drops())
			}
			seen := make(map[uint64]int)
			for _, s := range sinks {
				for _, seq := range s.seqs {
					seen[seq]++
				}
			}
			if len(seen) != n {
				t.Fatalf("%s/%d: sinks saw %d distinct packets, want %d", kind, cores, len(seen), n)
			}
			for seq, count := range seen {
				if count != 1 {
					t.Fatalf("%s/%d: packet %d delivered %d times", kind, cores, seq, count)
				}
			}
			for _, p := range packets {
				if p.NextHop != 3 {
					t.Fatalf("%s/%d: packet %d crossed %d stages, want 3", kind, cores, p.SeqNo, p.NextHop)
				}
			}
			// Reset the trail for the next configuration.
			for _, p := range packets {
				p.NextHop = 0
			}
		}
	}
}

// TestPlanShapes checks the placement geometry: chains, handoff rings,
// and core-to-stage assignment for both kinds.
func TestPlanShapes(t *testing.T) {
	cases := []struct {
		kind              PlanKind
		cores             int
		wantChains        int
		wantHandoffsTotal int
	}{
		{Parallel, 1, 1, 0},
		{Parallel, 4, 4, 0},
		{Pipelined, 1, 1, 0}, // all 3 stages on the one core
		{Pipelined, 2, 1, 1}, // stages split 2+1, one handoff
		{Pipelined, 3, 1, 2}, // one stage per core, two handoffs
		{Pipelined, 4, 1, 2}, // extra core idle
		{Pipelined, 6, 2, 4}, // two replicated 3-core chains
	}
	for _, tc := range cases {
		plan, err := NewPlan(PlanConfig{Kind: tc.kind, Cores: tc.cores, Stages: threeStages()})
		if err != nil {
			t.Fatalf("%s/%d: %v", tc.kind, tc.cores, err)
		}
		if plan.Chains() != tc.wantChains {
			t.Errorf("%s/%d: chains = %d, want %d", tc.kind, tc.cores, plan.Chains(), tc.wantChains)
		}
		if len(plan.handoffs) != tc.wantHandoffsTotal {
			t.Errorf("%s/%d: handoffs = %d, want %d",
				tc.kind, tc.cores, len(plan.handoffs), tc.wantHandoffsTotal)
		}
		if len(plan.Inputs()) != tc.wantChains {
			t.Errorf("%s/%d: inputs = %d, want %d", tc.kind, tc.cores, len(plan.Inputs()), tc.wantChains)
		}
	}
}

// TestPlanRunnerLive runs a parallel and a pipelined plan on real
// goroutines and checks complete, loss-free delivery. Run with -race:
// this is the configuration where a ring or counter race would surface.
func TestPlanRunnerLive(t *testing.T) {
	const n = 5000
	for _, kind := range []PlanKind{Parallel, Pipelined} {
		var delivered atomic.Uint64
		plan, err := NewPlan(PlanConfig{
			Kind:   kind,
			Cores:  2,
			Stages: threeStages(),
			KP:     16,
			Sink: func(int) Element {
				return countSink{&delivered}
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := plan.Start(); err != nil {
			t.Fatalf("%s: start: %v", kind, err)
		}
		deadline := time.Now().Add(30 * time.Second)
		fed := 0
		for fed < n {
			c := fed % plan.Chains()
			if plan.Input(c).Push(&pkt.Packet{SeqNo: uint64(fed)}) {
				fed++
			} else {
				runtime.Gosched()
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: feed stalled at %d/%d", kind, fed, n)
			}
		}
		for delivered.Load() < n {
			runtime.Gosched()
			if time.Now().After(deadline) {
				t.Fatalf("%s: delivered %d/%d before deadline", kind, delivered.Load(), n)
			}
		}
		plan.Stop()
		if plan.Drops() != 0 {
			t.Errorf("%s: %d drops, want 0", kind, plan.Drops())
		}
		if delivered.Load() != n {
			t.Errorf("%s: delivered %d, want %d", kind, delivered.Load(), n)
		}
	}
}

// countSink counts deliveries into a shared atomic — the concurrent
// analog of collectSink.
type countSink struct{ n *atomic.Uint64 }

func (s countSink) InPorts() int                          { return 1 }
func (s countSink) OutPorts() int                         { return 0 }
func (s countSink) Push(_ *Context, _ int, _ *pkt.Packet) { s.n.Add(1) }

func TestPlanValidation(t *testing.T) {
	if _, err := NewPlan(PlanConfig{Kind: Parallel, Cores: 0, Stages: threeStages()}); err == nil {
		t.Error("0 cores accepted")
	}
	if _, err := NewPlan(PlanConfig{Kind: Parallel, Cores: 1}); err == nil {
		t.Error("0 stages accepted")
	}
	if _, err := NewPlan(PlanConfig{Kind: Parallel, Cores: 1,
		Stages: []StageSpec{{Name: "x"}}}); err == nil {
		t.Error("nil Make accepted")
	}
	if _, err := NewPlan(PlanConfig{Kind: PlanKind(9), Cores: 1, Stages: threeStages()}); err == nil {
		t.Error("unknown kind accepted")
	}
}
