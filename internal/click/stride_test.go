package click

import "testing"

func TestStrideProportions(t *testing.T) {
	s := NewStrideScheduler()
	counts := [3]int{}
	s.Add(TaskFunc(func(*Context) int { counts[0]++; return 0 }), 1)
	s.Add(TaskFunc(func(*Context) int { counts[1]++; return 0 }), 2)
	s.Add(TaskFunc(func(*Context) int { counts[2]++; return 0 }), 4)
	ctx := &Context{}
	const rounds = 7000
	for i := 0; i < rounds; i++ {
		s.RunStep(ctx)
	}
	// Ratios ≈ 1:2:4.
	if counts[0] == 0 {
		t.Fatal("weight-1 task starved")
	}
	r1 := float64(counts[1]) / float64(counts[0])
	r2 := float64(counts[2]) / float64(counts[0])
	if r1 < 1.9 || r1 > 2.1 {
		t.Fatalf("ratio t2/t1 = %.2f, want ≈2 (%v)", r1, counts)
	}
	if r2 < 3.8 || r2 > 4.2 {
		t.Fatalf("ratio t3/t1 = %.2f, want ≈4 (%v)", r2, counts)
	}
}

func TestStrideEmptyAndLateJoin(t *testing.T) {
	s := NewStrideScheduler()
	ctx := &Context{}
	if s.RunStep(ctx) != -1 {
		t.Fatal("empty scheduler ran something")
	}
	ran := 0
	s.Add(TaskFunc(func(*Context) int { ran++; return 1 }), 1)
	for i := 0; i < 100; i++ {
		s.RunStep(ctx)
	}
	// A late joiner must start at the current pass, not at zero.
	late := 0
	s.Add(TaskFunc(func(*Context) int { late++; return 1 }), 1)
	for i := 0; i < 100; i++ {
		s.RunStep(ctx)
	}
	if late < 40 || late > 60 {
		t.Fatalf("late joiner ran %d of 100, want ≈50", late)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStrideZeroTicketsClamped(t *testing.T) {
	s := NewStrideScheduler()
	ran := 0
	s.Add(TaskFunc(func(*Context) int { ran++; return 0 }), 0)
	s.RunStep(&Context{})
	if ran != 1 {
		t.Fatal("zero-ticket task never ran")
	}
}
