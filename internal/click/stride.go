package click

import "container/heap"

// StrideScheduler runs tasks in proportion to ticket weights — Click's
// StrideSched. A task with twice the tickets runs twice as often; the
// RouteBricks configurations use it to bias cores toward busy queues
// while keeping starvation impossible.
type StrideScheduler struct {
	q strideHeap
}

const strideOne = 1 << 20

type strideTask struct {
	task    Task
	stride  uint64
	pass    uint64
	index   int
	tickets int
}

type strideHeap []*strideTask

func (h strideHeap) Len() int           { return len(h) }
func (h strideHeap) Less(i, j int) bool { return h[i].pass < h[j].pass }
func (h strideHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *strideHeap) Push(x any)        { t := x.(*strideTask); t.index = len(*h); *h = append(*h, t) }
func (h *strideHeap) Pop() any          { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }

// NewStrideScheduler returns an empty scheduler.
func NewStrideScheduler() *StrideScheduler { return &StrideScheduler{} }

// Add registers a task with the given tickets (≥1).
func (s *StrideScheduler) Add(t Task, tickets int) {
	if tickets < 1 {
		tickets = 1
	}
	st := &strideTask{task: t, stride: strideOne / uint64(tickets), tickets: tickets}
	// New tasks start at the current minimum pass so they neither starve
	// nor monopolize.
	if len(s.q) > 0 {
		st.pass = s.q[0].pass
	}
	heap.Push(&s.q, st)
}

// Len reports the task count.
func (s *StrideScheduler) Len() int { return len(s.q) }

// RunStep runs the task with the smallest pass value once and advances
// it by its stride. It reports the packets the task processed, or -1
// when the scheduler is empty.
func (s *StrideScheduler) RunStep(ctx *Context) int {
	if len(s.q) == 0 {
		return -1
	}
	st := s.q[0]
	n := st.task.Run(ctx)
	st.pass += st.stride
	heap.Fix(&s.q, 0)
	return n
}
