package click

import (
	"fmt"
	"strings"
	"sync/atomic"

	"routebricks/internal/exec"
	"routebricks/internal/pkt"
)

// This file is the placement planner: it takes a Program — a whole
// element graph with a per-chain instantiation protocol (program.go) —
// plus a core count and materializes the paper's two §4.2 core
// allocations as runnable plans.
//
//   - Parallel ("one core per queue, one core per packet"): every core
//     gets its own clone of the full graph and its own input ring; a
//     packet is touched by exactly one core from poll to transmit.
//   - Pipelined: the graph's trunk is cut into stages, each stage pinned
//     to its own core, consecutive stages connected by exec.Ring SPSC
//     handoff rings. Side branches stay on the core of the trunk element
//     feeding them. Every stage boundary is a cross-core cache-line
//     handoff — the cost the paper measured to conclude that parallel
//     wins.
//
// A plan can be driven two ways: Start/Stop spins up the hardened
// Runner (one goroutine per core, real parallelism), while RunStep
// executes one core's quantum synchronously — the hook the cluster
// simulator and deterministic tests use to run the same plan types on
// virtual cores.

// PlanKind selects the §4.2 core allocation.
type PlanKind int

const (
	// Parallel clones the full pipeline onto every core.
	Parallel PlanKind = iota
	// Pipelined cuts the pipeline into per-core stages joined by SPSC
	// handoff rings.
	Pipelined
	// Auto is not a materializable allocation: it asks the caller to
	// measure both and pick. routebricks.Load resolves it by calibration
	// before building a plan; NewPlan rejects it.
	Auto PlanKind = -1
)

// String names the allocation as the paper does.
func (k PlanKind) String() string {
	switch k {
	case Parallel:
		return "parallel"
	case Pipelined:
		return "pipelined"
	case Auto:
		return "auto"
	}
	return fmt.Sprintf("PlanKind(%d)", int(k))
}

// StageInstance is one materialized pipeline stage. Entry receives
// traffic on input port 0; Exit is the element whose output port 0 the
// planner wires to the next stage (nil means the stage is a single
// element and Exit == Entry). A stage's internal error ports (bad
// headers, route misses) are the stage builder's responsibility — wire
// them to recycling Discards inside Make; the planner only routes the
// good path.
type StageInstance struct {
	Entry Element
	Exit  Element
}

// exit resolves the element the planner wires downstream from.
func (si StageInstance) exit() Element {
	if si.Exit != nil {
		return si.Exit
	}
	return si.Entry
}

// StageSpec declares one stage of a logical linear pipeline — the
// legacy planner surface, kept as a thin shim over Program (see
// ProgramFromStages). Make must return a fresh, independent instance
// per call: the Parallel plan calls it once per core (clone), the
// Pipelined plan once per chain. chain identifies which replica the
// instance belongs to, so stages can key per-replica state (a per-core
// VLB balancer, a per-core counter) off it.
type StageSpec struct {
	Name string
	Make func(chain int) StageInstance
}

// PlanConfig parameterizes a placement plan.
type PlanConfig struct {
	Kind  PlanKind
	Cores int

	// Program is the graph-first pipeline description: the planner
	// instantiates one independent copy of the whole graph per chain and
	// derives stage boundaries from the graph's trunk.
	Program *Program

	// Stages is the legacy linear surface; it is converted internally
	// via ProgramFromStages. Exactly one of Program and Stages must be
	// set.
	Stages []StageSpec

	// KP is the poll batch size (default 32, the paper's tuned kp).
	KP int
	// InputCap sizes each chain's input ring (default 4096).
	InputCap int
	// HandoffCap sizes each inter-stage handoff ring (default 1024).
	HandoffCap int
	// Sink, when non-nil, builds a terminal element per chain and wires
	// it after the trunk's last element — which must leave output 0
	// dangling for it. When nil the graph must terminate itself
	// (ToDevice, Discard, prebound sinks) or its trunk output is dropped
	// silently.
	Sink func(chain int) Element

	// Topo describes the socket layout the plan's cores and input
	// queues live on. The zero value is a flat single-socket host,
	// which reproduces the pre-topology core layout exactly.
	Topo Topology
	// Cost prices placement decisions (core assignment and handoff
	// boundaries); nil uses NewBusCostModel(Topo, 0).
	Cost CostModel

	// FlowSteered declares that whatever feeds the plan's input rings
	// steers packets flow-consistently — every packet of a flow lands on
	// the same chain, e.g. through an rss.Table keyed on the symmetric
	// flow hash. That guarantee is what makes cloning PerFlow elements
	// across chains safe (each clone then owns a disjoint flow set), so
	// NewPlan rejects a multi-chain plan containing PerFlow elements
	// without it.
	FlowSteered bool

	// Steal lets a first-stage core whose own input ring runs dry drain
	// a hot sibling chain's input ring instead of idling — a bounded
	// batch steal from the consumer end, serialized by the ring's
	// consumer lock (exec.Ring.PopBatchShared). Stolen packets run
	// through the stealer's own graph instance, so per-chain element
	// state stays single-core; what stealing trades away is flow-to-core
	// affinity, which is why it is opt-in. Only meaningful when the plan
	// has more than one chain.
	Steal bool
	// StealMin is the backlog (packets) a sibling's input ring must hold
	// before an idle core steals from it — the imbalance threshold that
	// keeps a trickle of traffic from ping-ponging between cores.
	// Default KP (steal only when at least a full poll batch is waiting).
	StealMin int

	// SegWeights, when its length matches the trunk segment count,
	// weights the pipelined trunk cut by measured per-segment cycles
	// (click.Profiler) instead of balancing raw segment counts, so each
	// stage's core carries a comparable cycle load. Mismatched lengths
	// (a profile from a different graph) are ignored.
	SegWeights []float64
}

// CoreStat is the per-core counter block of a running plan. The fields
// are atomics because the Runner's goroutines write them while
// observers read.
type CoreStat struct {
	Core   int    // schedule core index
	Socket int    // socket the core sits on (0 for flat topologies)
	Chain  int    // which pipeline replica this core serves
	Stages string // trunk segment names executing on this core, "+"-joined

	packets  atomic.Uint64 // packets pulled into this core
	polls    atomic.Uint64 // poll attempts
	empty    atomic.Uint64 // polls that moved nothing
	handoffs atomic.Uint64 // batches pushed onward to another core
	steals   atomic.Uint64 // packets this core stole from sibling input rings
	stolen   atomic.Uint64 // packets siblings stole from this core's input ring
}

// Packets reports packets this core pulled from its upstream ring.
func (s *CoreStat) Packets() uint64 { return s.packets.Load() }

// Polls reports poll attempts; Empty the ones that moved nothing.
func (s *CoreStat) Polls() uint64 { return s.polls.Load() }

// Empty reports empty polls.
func (s *CoreStat) Empty() uint64 { return s.empty.Load() }

// Handoffs reports batches this core pushed into a downstream handoff
// ring (always 0 for parallel plans and final stages).
func (s *CoreStat) Handoffs() uint64 { return s.handoffs.Load() }

// Steals reports packets this core pulled out of sibling chains' input
// rings because its own ran dry (0 unless the plan enables stealing).
func (s *CoreStat) Steals() uint64 { return s.steals.Load() }

// Stolen reports packets sibling cores took from this core's input
// ring. Steals and Stolen balance across a plan's first-stage cores.
func (s *CoreStat) Stolen() uint64 { return s.stolen.Load() }

// Plan is a materialized core allocation: graphs instantiated per
// chain, rings allocated, tasks bound to schedule cores.
type Plan struct {
	kind   PlanKind
	cores  int
	chains int
	sched  *Schedule
	runner *Runner
	topo   Topology
	cost   CostModel

	inputs       []*exec.Ring // one per chain; callers feed these
	inputCore    []int        // first core of each chain (polls the input ring)
	inputStat    []*CoreStat  // first core's stat block per chain (steal accounting)
	handoffs     []*exec.Ring // pipelined only: all inter-stage rings
	handoffChain []int        // chain owning each handoff ring
	handoffFrom  []int        // producer core of each handoff ring
	handoffTo    []int        // consumer core of each handoff ring
	stats        []*CoreStat
	instances    []*Instance // one per chain, in chain order

	// steal enables the first-stage work-stealing protocol (resolved
	// from PlanConfig.Steal; forced off for single-chain plans, where
	// there is no sibling to steal from). stealMin is the victim-backlog
	// threshold.
	steal    bool
	stealMin int
	// lost counts packets the plan itself recycled because a handoff
	// ring rejected them — possible only when a stage emits more packets
	// than it polled, since polling is capped by downstream free space.
	lost atomic.Uint64
}

// NewPlan materializes a placement plan from a Program (or the legacy
// Stages shim). Parallel uses every core as an independent chain.
// Pipelined cuts the trunk into G = min(cores, cuttable segments)
// groups of consecutive cores per chain — cuts land only on boundaries
// the graph topology allows — and replicates the chain cores/G times;
// cores beyond chains×G are left idle (they appear in the schedule with
// no tasks).
func NewPlan(cfg PlanConfig) (*Plan, error) {
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("click: plan needs at least 1 core, got %d", cfg.Cores)
	}
	prog := cfg.Program
	if prog == nil {
		if len(cfg.Stages) == 0 {
			return nil, fmt.Errorf("click: plan needs a Program (or at least 1 stage)")
		}
		prog = ProgramFromStages(cfg.Stages)
	} else if len(cfg.Stages) > 0 {
		return nil, fmt.Errorf("click: plan takes a Program or Stages, not both")
	}
	if cfg.Kind == Auto {
		return nil, fmt.Errorf("click: Auto placement must be resolved before planning (routebricks.Load calibrates and picks Parallel or Pipelined)")
	}
	if cfg.Kind != Parallel && cfg.Kind != Pipelined {
		return nil, fmt.Errorf("click: unknown plan kind %d", int(cfg.Kind))
	}
	if cfg.KP <= 0 {
		cfg.KP = 32
	}
	if cfg.InputCap <= 0 {
		cfg.InputCap = 4096
	}
	if cfg.HandoffCap <= 0 {
		cfg.HandoffCap = 1024
	}
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cost == nil {
		cfg.Cost = NewBusCostModel(cfg.Topo, 0)
	}

	// Chain 0's instance reveals the graph geometry (segment count, cut
	// constraints); every further chain must match it.
	first, err := prog.Instantiate(0)
	if err != nil {
		return nil, err
	}

	// State-classification gate. A plan with more than one chain clones
	// the whole graph per chain, splitting every element's state N ways;
	// chain 0's instance declares which elements make that unsafe.
	wouldChains := cfg.Cores
	if cfg.Kind == Pipelined {
		wouldChains = cfg.Cores / min(cfg.Cores, cuttableGroups(first.noCut))
	}
	if wouldChains > 1 {
		if names := first.ElementsOfClass(Shared); len(names) > 0 {
			return nil, fmt.Errorf("click: %d-chain %s plan would clone shared-state elements %v; shared elements pin the graph to a single chain",
				wouldChains, cfg.Kind, names)
		}
		if names := first.ElementsOfClass(PerFlow); len(names) > 0 {
			if !cfg.FlowSteered {
				return nil, fmt.Errorf("click: %d-chain %s plan would split per-flow state across clones of %v; feed the chains through flow-consistent steering (PlanConfig.FlowSteered) or run one chain",
					wouldChains, cfg.Kind, names)
			}
			if cfg.Steal {
				return nil, fmt.Errorf("click: work stealing moves packets across chains, breaking the flow affinity the per-flow elements %v depend on; disable Steal or run one chain",
					names)
			}
		}
	}

	if cfg.StealMin <= 0 {
		cfg.StealMin = cfg.KP
	}
	p := &Plan{kind: cfg.Kind, cores: cfg.Cores, sched: NewSchedule(cfg.Cores),
		topo: cfg.Topo, cost: cfg.Cost, stealMin: cfg.StealMin}
	instance := func(chain int) (*Instance, error) {
		if chain == 0 {
			return first, nil
		}
		in, err := prog.Instantiate(chain)
		if err != nil {
			return nil, err
		}
		// The plan's geometry (groups, cut points) comes from chain 0; a
		// chain with a different trunk length or different cut
		// constraints would be cut somewhere its own topology forbids.
		if len(in.segs) != len(first.segs) {
			return nil, fmt.Errorf("click: program chain %d has %d trunk segments, chain 0 has %d — Build must be structurally deterministic",
				chain, len(in.segs), len(first.segs))
		}
		for b, forbidden := range in.noCut {
			if forbidden != first.noCut[b] {
				return nil, fmt.Errorf("click: program chain %d allows different trunk cuts than chain 0 (boundary %d) — Build must be structurally deterministic",
					chain, b)
			}
		}
		return in, nil
	}
	asn := newCoreAssigner(cfg.Cores, cfg.Topo, cfg.Cost)
	switch cfg.Kind {
	case Parallel:
		p.chains = cfg.Cores
		for c := 0; c < cfg.Cores; c++ {
			in, err := instance(c)
			if err != nil {
				return nil, err
			}
			if err := p.buildChain(cfg, c, asn.take(c, 1), in); err != nil {
				return nil, err
			}
		}
	case Pipelined:
		groups := min(cfg.Cores, cuttableGroups(first.noCut))
		p.chains = cfg.Cores / groups
		for ch := 0; ch < p.chains; ch++ {
			in, err := instance(ch)
			if err != nil {
				return nil, err
			}
			if err := p.buildChain(cfg, ch, asn.take(ch, groups), in); err != nil {
				return nil, err
			}
		}
	}
	// Stealing needs a sibling chain to steal from; the flag is resolved
	// after the chains are built and read by every poll closure at run
	// time.
	p.steal = cfg.Steal && p.chains > 1
	p.runner = NewRunner(p.sched)
	return p, nil
}

// coreAssigner hands out schedule cores chain by chain, consulting the
// cost model: a chain's first core is the free core with the cheapest
// access to the chain's input queue (so parallel chains pin to the
// socket owning their input ring), and each further core of a pipelined
// chain is the free core with the cheapest handoff from its
// predecessor. Ties break to the lowest core index, which reproduces
// the flat pre-topology layout exactly (parallel chain c on core c,
// pipelined chain ch on cores [ch*groups, (ch+1)*groups)).
type coreAssigner struct {
	used []bool
	topo Topology
	cost CostModel
}

func newCoreAssigner(cores int, topo Topology, cost CostModel) *coreAssigner {
	return &coreAssigner{used: make([]bool, cores), topo: topo, cost: cost}
}

// take allocates n cores for the given chain.
func (a *coreAssigner) take(chain, n int) []int {
	pick := func(costOf func(core int) float64) int {
		best, bestCost := -1, 0.0
		for c := range a.used {
			if a.used[c] {
				continue
			}
			if cc := costOf(c); best < 0 || cc < bestCost {
				best, bestCost = c, cc
			}
		}
		a.used[best] = true
		return best
	}
	qsock := a.topo.QueueSocketOf(chain)
	out := make([]int, 1, n)
	out[0] = pick(func(c int) float64 { return a.cost.InputCost(c, qsock) })
	for len(out) < n {
		prev := out[len(out)-1]
		out = append(out, pick(func(c int) float64 { return a.cost.HandoffCost(prev, c) }))
	}
	return out
}

// buildChain materializes one pipeline replica across the given cores:
// the whole graph on one core for parallel chains, trunk segments
// grouped contiguously across len(cores) cores (joined by handoff
// rings at the cut boundaries) for pipelined ones. The instance's graph
// arrives fully wired; cutting a boundary rewires the upstream trunk
// element's output 0 from its synchronous binding into a handoff ring.
func (p *Plan) buildChain(cfg PlanConfig, chain int, cores []int, in *Instance) error {
	input := exec.NewRing(cfg.InputCap)
	p.inputs = append(p.inputs, input)
	p.inputCore = append(p.inputCore, cores[0])
	p.instances = append(p.instances, in)

	groups := len(cores)
	var bounds []int
	if len(cfg.SegWeights) == len(in.segs) {
		bounds = chooseBoundsWeighted(len(in.segs), groups, in.noCut, cfg.SegWeights)
	} else {
		bounds = chooseBounds(len(in.segs), groups, in.noCut)
	}
	upstream := input
	for g := 0; g < groups; g++ {
		lo, hi := bounds[g], bounds[g+1]
		var downstream *exec.Ring
		last := in.segs[hi-1].exit()
		if g < groups-1 {
			// Cut boundary: the group's last trunk element emits into a
			// handoff ring polled by the next core.
			downstream = exec.NewRing(cfg.HandoffCap)
			p.handoffs = append(p.handoffs, downstream)
			p.handoffChain = append(p.handoffChain, chain)
			p.handoffFrom = append(p.handoffFrom, cores[g])
			p.handoffTo = append(p.handoffTo, cores[g+1])
			if err := p.wireRing(last, downstream); err != nil {
				return fmt.Errorf("click: segment %q: %w", in.names[hi-1], err)
			}
		} else if cfg.Sink != nil {
			if bound, ok := last.(interface{ Connected(int) bool }); ok && bound.Connected(0) {
				return fmt.Errorf("click: Sink configured but trunk end %q already connects output 0", in.names[hi-1])
			}
			sink := cfg.Sink(chain)
			if sink == nil {
				return fmt.Errorf("click: Sink(%d) returned nil", chain)
			}
			if err := wireStage(last, sink); err != nil {
				return fmt.Errorf("click: sink for chain %d: %w", chain, err)
			}
		}

		stat := &CoreStat{Core: cores[g], Socket: cfg.Topo.SocketOf(cores[g]),
			Chain: chain, Stages: strings.Join(in.names[lo:hi], "+")}
		p.stats = append(p.stats, stat)
		if g == 0 {
			p.inputStat = append(p.inputStat, stat)
		}
		p.sched.MustBind(cores[g], p.pollTask(upstream, downstream, in.segs[lo].Entry, cfg.KP, stat, chain, g == 0))
		upstream = downstream
	}
	return nil
}

// pollTask builds the polling loop body for one core: pull up to kp
// packets from upstream — capped by the downstream ring's free space so
// a full handoff ring backpressures instead of dropping — and push them
// through the core's stage group as one batch. Each run pins the core's
// pool shard on the context, so every recycle and allocation inside the
// dispatched graph runs against core-local freelist state. First-stage
// cores of a steal-enabled plan consume their input ring through the
// shared (consumer-locked) protocol and, when it runs dry, drain the
// deepest sibling backlog instead of reporting an empty poll.
func (p *Plan) pollTask(upstream, downstream *exec.Ring, entry Element, kp int, stat *CoreStat, chain int, firstStage bool) Task {
	scratch := pkt.NewBatch(kp)
	dispatch := BatchDispatch(entry, 0)
	shard := pkt.DefaultPool.Shard(stat.Core)
	return TaskFunc(func(ctx *Context) int {
		ctx.PoolShard = shard
		limit := kp
		if downstream != nil {
			if room := downstream.Free(); room < limit {
				limit = room
			}
			if limit == 0 {
				return 0 // downstream full: leave packets queued upstream
			}
		}
		scratch.Reset()
		stealing := firstStage && p.steal
		var n int
		if stealing {
			n = upstream.PopBatchShared(scratch, limit)
		} else {
			n = upstream.PopBatchInto(scratch, limit)
		}
		stat.polls.Add(1)
		if n == 0 && stealing {
			n = p.stealInto(scratch, limit, chain, stat)
		}
		if n == 0 {
			stat.empty.Add(1)
			return 0
		}
		stat.packets.Add(uint64(n))
		if downstream != nil {
			stat.handoffs.Add(1)
		}
		dispatch(ctx, scratch)
		return n
	})
}

// stealInto drains up to limit packets from the sibling chain whose
// input ring holds the deepest backlog (at least stealMin), crediting
// the steal to the thief and the loss to the victim. The victim's ring
// is consumed through its consumer lock, so the steal cannot race the
// victim's own poll; the stolen packets run through the thief's graph
// instance.
func (p *Plan) stealInto(b *pkt.Batch, limit, chain int, stat *CoreStat) int {
	victim, deepest := -1, p.stealMin
	for ch, r := range p.inputs {
		if ch == chain {
			continue
		}
		if l := r.Len(); l >= deepest {
			victim, deepest = ch, l
		}
	}
	if victim < 0 {
		return 0
	}
	n := p.inputs[victim].PopBatchShared(b, limit)
	if n > 0 {
		stat.steals.Add(uint64(n))
		p.inputStat[victim].stolen.Add(uint64(n))
	}
	return n
}

// wireStage connects from's output port 0 to to's input port 0 on both
// the batch and per-packet paths, exactly as Router.Connect does.
func wireStage(from, to Element) error {
	setter, ok := from.(OutputSetter)
	if !ok {
		return fmt.Errorf("element %T has no outputs", from)
	}
	setter.SetOutput(0, func(ctx *Context, p *pkt.Packet) { to.Push(ctx, 0, p) })
	if bs, ok := from.(BatchOutputSetter); ok {
		bs.SetBatchOutput(0, BatchDispatch(to, 0))
	}
	return nil
}

// wireRing connects from's output port 0 to an SPSC handoff ring,
// replacing any synchronous binding the graph wiring installed. With
// backpressure-capped polling the ring cannot overflow from pass-through
// traffic; packets a stage *generates* beyond what it polled can still
// overflow, in which case they are counted as plan losses and recycled.
func (p *Plan) wireRing(from Element, ring *exec.Ring) error {
	setter, ok := from.(OutputSetter)
	if !ok {
		return fmt.Errorf("element %T has no outputs", from)
	}
	setter.SetOutput(0, func(_ *Context, pk *pkt.Packet) {
		if !ring.Push(pk) {
			p.lost.Add(1)
			pkt.DefaultPool.Put(pk)
		}
	})
	if bs, ok := from.(BatchOutputSetter); ok {
		bs.SetBatchOutput(0, func(_ *Context, b *pkt.Batch) {
			ring.PushBatch(b)
			if n := b.Len(); n > 0 {
				p.lost.Add(uint64(n))
				pkt.DefaultPool.PutBatch(b)
			}
			b.Reset()
		})
	}
	return nil
}

// Kind reports the allocation this plan materializes.
func (p *Plan) Kind() PlanKind { return p.kind }

// Cores reports the schedule width (including any idle cores).
func (p *Plan) Cores() int { return p.cores }

// Chains reports how many independent pipeline replicas the plan runs —
// equal to Cores for parallel plans.
func (p *Plan) Chains() int { return p.chains }

// Input returns chain i's input ring. The caller is the single producer
// for that ring; feed each chain from exactly one goroutine.
func (p *Plan) Input(i int) *exec.Ring { return p.inputs[i] }

// Inputs returns all input rings, one per chain.
func (p *Plan) Inputs() []*exec.Ring { return p.inputs }

// PlanRing describes one of a plan's rings for observability, scoring,
// and teardown: Role is "input" (caller-fed, one per chain) or
// "handoff" (inter-stage, pipelined only); Chain is the replica it
// belongs to. From/To are the producer and consumer schedule cores —
// From is -1 for input rings (the producer is the external feeder) —
// and Cost is the cost model's per-packet price for the crossing.
type PlanRing struct {
	Role  string
	Chain int
	From  int
	To    int
	Cost  float64
	Ring  *exec.Ring
}

// Rings lists every ring the plan owns, inputs first, in chain order —
// the walk a stats snapshot, a calibration scorer, or a drain barrier
// makes.
func (p *Plan) Rings() []PlanRing {
	out := make([]PlanRing, 0, len(p.inputs)+len(p.handoffs))
	for i, r := range p.inputs {
		out = append(out, PlanRing{Role: "input", Chain: i, From: -1, To: p.inputCore[i],
			Cost: p.cost.InputCost(p.inputCore[i], p.topo.QueueSocketOf(i)), Ring: r})
	}
	for i, r := range p.handoffs {
		out = append(out, PlanRing{Role: "handoff", Chain: p.handoffChain[i],
			From: p.handoffFrom[i], To: p.handoffTo[i],
			Cost: p.cost.HandoffCost(p.handoffFrom[i], p.handoffTo[i]), Ring: r})
	}
	return out
}

// Topology reports the socket layout the plan was placed against.
func (p *Plan) Topology() Topology { return p.topo }

// Cost reports the cost model the placement consulted.
func (p *Plan) Cost() CostModel { return p.cost }

// Instance returns chain i's materialized graph copy.
func (p *Plan) Instance(i int) *Instance { return p.instances[i] }

// Router returns chain i's element graph, or nil when the plan was
// built from the legacy stage shim.
func (p *Plan) Router(i int) *Router { return p.instances[i].router }

// Stats returns the per-core counter blocks, in core order.
func (p *Plan) Stats() []*CoreStat { return p.stats }

// Drops reports packets the plan lost — recycled because a handoff ring
// rejected them. Input-ring rejections are not losses: the feeding
// caller keeps ownership of a rejected packet and decides its fate.
func (p *Plan) Drops() uint64 { return p.lost.Load() }

// Rejections totals backpressure events across the plan's input and
// handoff rings (rejected pushes whether or not the packet was lost).
func (p *Plan) Rejections() uint64 {
	var d uint64
	for _, r := range p.inputs {
		d += r.Rejected()
	}
	for _, r := range p.handoffs {
		d += r.Rejected()
	}
	return d
}

// Queued reports packets currently sitting in the plan's rings —
// useful for drain loops.
func (p *Plan) Queued() int {
	q := 0
	for _, r := range p.inputs {
		q += r.Len()
	}
	for _, r := range p.handoffs {
		q += r.Len()
	}
	return q
}

// Processed totals packets that entered a pipeline across all cores'
// first stages (each packet counts once per core that handled it).
func (p *Plan) Processed() uint64 {
	var n uint64
	for _, s := range p.stats {
		n += s.Packets()
	}
	return n
}

// Start launches the plan on real cores via the hardened Runner.
func (p *Plan) Start() error { return p.runner.Start() }

// Stop halts the Runner and waits for the per-core goroutines.
func (p *Plan) Stop() { p.runner.Stop() }

// RunStep executes one quantum of the given core synchronously — the
// virtual-core hook: the cluster simulator and deterministic tests
// drive the same plan the Runner would, without goroutines.
func (p *Plan) RunStep(core int, ctx *Context) int { return p.sched.RunStep(core, ctx) }

// Schedule exposes the underlying static core schedule.
func (p *Plan) Schedule() *Schedule { return p.sched }

// Describe renders the placement map: which stages run on which core
// (and socket, when the topology has more than one), where the handoff
// rings sit and what the cost model charges each of them.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s plan: %d cores, %d chains, %d handoff rings\n",
		p.kind, p.cores, p.chains, len(p.handoffs))
	for _, s := range p.stats {
		if p.topo.Flat() {
			fmt.Fprintf(&b, "  core %d: chain %d, stages %s\n", s.Core, s.Chain, s.Stages)
		} else {
			fmt.Fprintf(&b, "  core %d (socket %d): chain %d, stages %s\n", s.Core, s.Socket, s.Chain, s.Stages)
		}
	}
	for i := range p.handoffs {
		from, to := p.handoffFrom[i], p.handoffTo[i]
		cross := ""
		if p.topo.SocketOf(from) != p.topo.SocketOf(to) {
			cross = ", cross-socket"
		}
		fmt.Fprintf(&b, "  handoff %d: chain %d, core %d -> core %d (%.0f cycles/pkt%s)\n",
			i, p.handoffChain[i], from, to, p.cost.HandoffCost(from, to), cross)
	}
	fmt.Fprintf(&b, "  cost model: %s\n", p.cost.Describe())
	return b.String()
}
