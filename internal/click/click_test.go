package click

import (
	"net/netip"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"routebricks/internal/pkt"
)

// collector records pushed packets.
type collector struct {
	got  []*pkt.Packet
	port []int
}

func (c *collector) Push(_ *Context, port int, p *pkt.Packet) {
	c.got = append(c.got, p)
	c.port = append(c.port, port)
}

// passthrough forwards input 0 to output 0 charging one cycle.
type passthrough struct{ Base }

func (e *passthrough) Push(ctx *Context, _ int, p *pkt.Packet) {
	ctx.Charge(1)
	e.Out(ctx, 0, p)
}
func (e *passthrough) InPorts() int  { return 1 }
func (e *passthrough) OutPorts() int { return 1 }

func newPacket() *pkt.Packet {
	return pkt.New(64, netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), 1, 2)
}

func TestRouterWiring(t *testing.T) {
	r := NewRouter()
	a := &passthrough{}
	b := &passthrough{}
	sink := &collector{}
	r.MustAdd("a", a)
	r.MustAdd("b", b)
	r.MustAdd("sink", sink)
	r.MustConnect("a", 0, "b", 0)
	r.MustConnect("b", 0, "sink", 0)
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{}
	p := newPacket()
	a.Push(ctx, 0, p)
	if len(sink.got) != 1 || sink.got[0] != p {
		t.Fatalf("sink got %d packets", len(sink.got))
	}
	if got := ctx.TakeCycles(); got != 2 {
		t.Fatalf("cycles = %g, want 2", got)
	}
	if ctx.TakeCycles() != 0 {
		t.Fatal("TakeCycles did not reset")
	}
}

func TestRouterErrors(t *testing.T) {
	r := NewRouter()
	r.MustAdd("a", &passthrough{})
	if err := r.Add("a", &passthrough{}); err == nil {
		t.Error("duplicate Add accepted")
	}
	if err := r.Add("nil", nil); err == nil {
		t.Error("nil element accepted")
	}
	if err := r.Connect("missing", 0, "a", 0); err == nil {
		t.Error("unknown source accepted")
	}
	if err := r.Connect("a", 0, "missing", 0); err == nil {
		t.Error("unknown destination accepted")
	}
	if err := r.Connect("a", 5, "a", 0); err == nil {
		t.Error("out-of-range output accepted")
	}
	if err := r.Connect("a", 0, "a", 9); err == nil {
		t.Error("out-of-range input accepted")
	}
	r.MustAdd("b", &passthrough{})
	r.MustConnect("a", 0, "b", 0)
	if err := r.Connect("a", 0, "b", 0); err == nil {
		t.Error("double connection of one output accepted")
	}
	// collector has no outputs: connecting from it must fail.
	r.MustAdd("c", &collector{})
	if err := r.Connect("c", 0, "a", 0); err == nil {
		t.Error("connect from output-less element accepted")
	}
}

func TestCheckFindsDanglingOutputs(t *testing.T) {
	r := NewRouter()
	r.MustAdd("a", &passthrough{})
	err := r.Check()
	if err == nil || !strings.Contains(err.Error(), "a[0]") {
		t.Fatalf("Check = %v, want unconnected a[0]", err)
	}
}

func TestUnconnectedOutDropsSilently(t *testing.T) {
	a := &passthrough{}
	a.Push(&Context{}, 0, newPacket()) // must not panic
	if a.Connected(0) {
		t.Fatal("Connected(0) true without wiring")
	}
}

func TestGraphRendering(t *testing.T) {
	r := NewRouter()
	r.MustAdd("x", &passthrough{})
	r.MustAdd("y", &collector{})
	r.MustConnect("x", 0, "y", 3)
	if g := r.Graph(); !strings.Contains(g, "x[0] -> y[3]") {
		t.Fatalf("Graph = %q", g)
	}
	if names := r.Elements(); len(names) != 2 || names[0] != "x" {
		t.Fatalf("Elements = %v", names)
	}
}

func TestContextNow(t *testing.T) {
	ctx := &Context{}
	if ctx.Now() != 0 {
		t.Fatal("untimed Now != 0")
	}
	ctx.NowNS = func() int64 { return 42 }
	if ctx.Now() != 42 {
		t.Fatal("Now passthrough broken")
	}
}

func TestScheduleBinding(t *testing.T) {
	s := NewSchedule(2)
	ran := 0
	s.MustBind(0, TaskFunc(func(*Context) int { ran++; return 1 }))
	s.MustBind(0, TaskFunc(func(*Context) int { ran++; return 0 }))
	if err := s.Bind(5, TaskFunc(func(*Context) int { return 0 })); err == nil {
		t.Error("out-of-range core accepted")
	}
	if n := s.RunStep(0, &Context{}); n != 1 {
		t.Fatalf("RunStep = %d, want 1", n)
	}
	if ran != 2 {
		t.Fatalf("ran %d tasks, want 2", ran)
	}
	if len(s.Tasks(1)) != 0 {
		t.Fatal("core 1 has phantom tasks")
	}
}

func TestRunnerProcessesConcurrently(t *testing.T) {
	s := NewSchedule(4)
	var fed [4]atomic.Int64
	for core := 0; core < 4; core++ {
		core := core
		s.MustBind(core, TaskFunc(func(*Context) int {
			if fed[core].Add(-1) >= 0 {
				return 1
			}
			return 0
		}))
	}
	for i := range fed {
		fed[i].Store(1000)
	}
	r := NewRunner(s)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err == nil {
		t.Error("double Start accepted")
	}
	deadline := time.After(5 * time.Second)
	for {
		done := true
		for core := 0; core < 4; core++ {
			if r.Processed(core) < 1000 {
				done = false
			}
		}
		if done {
			break
		}
		select {
		case <-deadline:
			t.Fatal("runner did not drain work in time")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	r.Stop()
	for core := 0; core < 4; core++ {
		if got := r.Processed(core); got != 1000 {
			t.Errorf("core %d processed %d, want exactly 1000", core, got)
		}
	}
}
