package click

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Click-language configuration parser. RouteBricks' selling point is
// that the router stays programmable "using the familiar Click/Linux
// environment" (§1), so the framework accepts the Click configuration
// syntax the paper's users would write:
//
//	// declarations
//	check :: CheckIPHeader;
//	rt    :: LPMLookup(fib);
//	drop  :: Discard;
//
//	// connections, with optional port numbers
//	check[0] -> rt;
//	check[1] -> drop;
//	rt[0] -> [0]ttl;
//	a -> b -> c;              // chains default to port 0
//
// Element classes are resolved through a Registry of factories;
// already-constructed elements (devices bound to rings, lookups bound to
// tables) are supplied as prebound instances and referenced by name in
// declarations like "rt :: LPMLookup(fib)" — the argument names the
// prebound object — or used directly without declaration.

// ElementFactory builds an element from its textual arguments.
type ElementFactory func(args []string) (Element, error)

// Registry maps element class names to factories.
type Registry map[string]ElementFactory

// ParseConfig builds a Router from Click-language text. reg resolves
// element classes; prebound supplies ready-made instances addressable by
// name (both as declaration arguments and as connection endpoints).
func ParseConfig(text string, reg Registry, prebound map[string]Element) (*Router, error) {
	r := NewRouter()
	stmts, err := splitStatements(text)
	if err != nil {
		return nil, err
	}
	for _, s := range stmts {
		if strings.Contains(s.text, "::") {
			if err := parseDecl(r, reg, prebound, s); err != nil {
				return nil, err
			}
			continue
		}
		if strings.Contains(s.text, "->") {
			if err := parseChain(r, prebound, s); err != nil {
				return nil, err
			}
			continue
		}
		return nil, fmt.Errorf("click: line %d: cannot parse %q", s.line, s.text)
	}
	return r, nil
}

type stmt struct {
	text string
	line int
}

// splitStatements strips comments and splits on ';'. Statements may span
// lines; a line comment runs to end of line.
func splitStatements(text string) ([]stmt, error) {
	var clean strings.Builder
	lines := strings.Split(text, "\n")
	for _, ln := range lines {
		if i := strings.Index(ln, "//"); i >= 0 {
			ln = ln[:i]
		}
		clean.WriteString(ln)
		clean.WriteByte('\n')
	}
	var out []stmt
	line := 1
	cur := strings.Builder{}
	curLine := 1
	for _, r := range clean.String() {
		switch r {
		case ';':
			if s := strings.TrimSpace(cur.String()); s != "" {
				out = append(out, stmt{s, curLine})
			}
			cur.Reset()
			curLine = line
		case '\n':
			line++
			cur.WriteByte(' ')
		default:
			cur.WriteRune(r)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		return nil, fmt.Errorf("click: line %d: missing ';' after %q", curLine, s)
	}
	return out, nil
}

// parseDecl handles "name :: Class(args)".
func parseDecl(r *Router, reg Registry, prebound map[string]Element, s stmt) error {
	parts := strings.SplitN(s.text, "::", 2)
	name := strings.TrimSpace(parts[0])
	rest := strings.TrimSpace(parts[1])
	if !validIdent(name) {
		return fmt.Errorf("click: line %d: bad element name %q", s.line, name)
	}
	class := rest
	var args []string
	if i := strings.IndexByte(rest, '('); i >= 0 {
		if !strings.HasSuffix(rest, ")") {
			return fmt.Errorf("click: line %d: unbalanced parentheses in %q", s.line, rest)
		}
		class = strings.TrimSpace(rest[:i])
		inner := rest[i+1 : len(rest)-1]
		if strings.TrimSpace(inner) != "" {
			for _, a := range strings.Split(inner, ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}
	}
	if !validIdent(class) {
		return fmt.Errorf("click: line %d: bad element class %q", s.line, class)
	}
	// A declaration whose class names a prebound instance aliases it:
	// "rt :: LPMLookup(fib)" with prebound["fib"].
	if len(args) == 1 {
		if el, ok := prebound[args[0]]; ok {
			return r.Add(name, el)
		}
	}
	factory, ok := reg[class]
	if !ok {
		return fmt.Errorf("click: line %d: unknown element class %q", s.line, class)
	}
	el, err := factory(args)
	if err != nil {
		return fmt.Errorf("click: line %d: %s: %w", s.line, class, err)
	}
	return r.Add(name, el)
}

// endpoint is one hop of a connection chain: [inPort]name[outPort].
type endpoint struct {
	name    string
	inPort  int
	outPort int
}

// maxPort bounds port numbers in configurations: negative ports are
// nonsense and anything huge is a typo, not a 2^31-output element.
const maxPort = 255

// parsePort parses one bracketed port number strictly — the whole token
// must be a decimal integer in [0, maxPort]. fmt.Sscanf("%d") silently
// accepted trailing garbage ("a[1x] -> b") and negative ports; Atoi plus
// the range check rejects both with a line-numbered error.
func parsePort(s string, what, tok string, line int) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || v < 0 || v > maxPort {
		return 0, fmt.Errorf("click: line %d: bad %s port %q in %q (want integer in [0,%d])",
			line, what, s, tok, maxPort)
	}
	return v, nil
}

// parseEndpoint parses "[2]name[3]", "name[1]", "[1]name", or "name".
func parseEndpoint(tok string, line int) (endpoint, error) {
	e := endpoint{}
	tok = strings.TrimSpace(tok)
	orig := tok
	if strings.HasPrefix(tok, "[") {
		close := strings.IndexByte(tok, ']')
		if close < 0 {
			return e, fmt.Errorf("click: line %d: unbalanced '[' in %q", line, tok)
		}
		var err error
		if e.inPort, err = parsePort(tok[1:close], "input", orig, line); err != nil {
			return e, err
		}
		tok = strings.TrimSpace(tok[close+1:])
	}
	if i := strings.IndexByte(tok, '['); i >= 0 {
		if !strings.HasSuffix(tok, "]") {
			return e, fmt.Errorf("click: line %d: unbalanced '[' in %q", line, tok)
		}
		var err error
		if e.outPort, err = parsePort(tok[i+1:len(tok)-1], "output", orig, line); err != nil {
			return e, err
		}
		tok = strings.TrimSpace(tok[:i])
	}
	e.name = tok
	if !validIdent(e.name) {
		return e, fmt.Errorf("click: line %d: bad endpoint %q", line, tok)
	}
	return e, nil
}

// parseChain handles "a[1] -> [0]b -> c". Endpoint names not yet in the
// router but present in the prebound set are registered on first use, so
// a prebound instance used under exactly one name never leaves phantom
// unconnected twins behind.
func parseChain(r *Router, prebound map[string]Element, s stmt) error {
	hops := strings.Split(s.text, "->")
	if len(hops) < 2 {
		return fmt.Errorf("click: line %d: dangling connection %q", s.line, s.text)
	}
	eps := make([]endpoint, len(hops))
	for i, h := range hops {
		e, err := parseEndpoint(h, s.line)
		if err != nil {
			return err
		}
		if r.Get(e.name) == nil {
			if el, ok := prebound[e.name]; ok {
				if err := r.Add(e.name, el); err != nil {
					return err
				}
			}
		}
		eps[i] = e
	}
	for i := 0; i+1 < len(eps); i++ {
		from, to := eps[i], eps[i+1]
		if err := r.Connect(from.name, from.outPort, to.name, to.inPort); err != nil {
			return fmt.Errorf("click: line %d: %w", s.line, err)
		}
	}
	return nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case unicode.IsLetter(r) || r == '_':
		case unicode.IsDigit(r) && i > 0:
		default:
			return false
		}
	}
	return true
}
