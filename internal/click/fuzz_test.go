package click

import (
	"strings"
	"testing"
)

// FuzzParseConfig asserts the Click-language parser never panics and
// either yields a router or a descriptive error for arbitrary input.
func FuzzParseConfig(f *testing.F) {
	seeds := []string{
		"a :: Counter; b :: Counter; a -> b;",
		"a :: Counter; a[0] -> [0]a;",
		"x :: Split(1,2,3); x -> x;",
		"// comment\n a :: Counter ;",
		"a :: Counter; a -> missing;",
		"[[[[ -> ;;;; ::",
		"a::Counter;b::Counter;a->b->a;",
		strings.Repeat("a :: Counter; ", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	reg := Registry{
		"Counter": func(args []string) (Element, error) { return &pcounter{}, nil },
		"Split":   func(args []string) (Element, error) { return &psplit{}, nil },
	}
	f.Fuzz(func(t *testing.T, text string) {
		r, err := ParseConfig(text, reg, nil)
		if err == nil && r == nil {
			t.Fatal("nil router without error")
		}
	})
}
