package click

import (
	"fmt"
	"math"
)

// This file is the graph-first pipeline abstraction. A Program describes
// a whole Click element graph — parsed from Click text or built in code —
// together with the per-chain instantiation protocol the placement
// planner needs: Instantiate(chain) stamps out one independent copy of
// the graph, with prebound resources (route tables, device rings,
// per-chain VLB balancers) resolved for that chain. The planner then
// derives the parallel execution from the graph's topology instead of
// requiring the user to pre-linearize their pipeline into stages:
//
//   - the entry element (where poll tasks inject traffic) is the unique
//     element with no incoming connections;
//   - the trunk is the maximal chain of elements linked output-0 →
//     input-0 with no other way in — the path every forwarded packet
//     takes, and the only place a Pipelined plan may cut the graph
//     across cores;
//   - side branches (check[1] -> Discard, rt[1] -> ICMPError -> ...)
//     stay on the core of the trunk element that feeds them, wired by
//     the ordinary synchronous batch/per-packet dual path. A branch
//     shared by several trunk elements pins those elements to one core
//     (cutting between them would let two cores push into one element
//     concurrently).

// Program is a graph-first pipeline description: how to build one
// independent copy of an element graph per chain. The Parallel plan
// instantiates it once per core, the Pipelined plan once per chain;
// single-core hosts call Instantiate(0) and drive the graph directly.
type Program struct {
	// Build returns a fresh, independent Router graph for the given
	// chain. It must not share mutable element instances between calls:
	// each chain's graph runs on its own core. Per-chain resources
	// (balancers, counters, prebound tables) are resolved here, keyed on
	// chain.
	Build func(chain int) (*Router, error)

	// Entry optionally names the graph's entry element. When empty the
	// unique element with no incoming connections is used; graphs where
	// that is ambiguous (several sources, or a cycle through every
	// element) must name it.
	Entry string

	// stages carries the legacy linear-pipeline surface; when set, Build
	// and Entry are ignored and instantiation wires the stages in
	// sequence exactly as the pre-Program planner did.
	stages []StageSpec
}

// NewProgram wraps a graph builder. The entry element is auto-detected;
// set Entry on the returned Program to override.
func NewProgram(build func(chain int) (*Router, error)) *Program {
	return &Program{Build: build}
}

// ParseProgram builds a Program from Click-language text. reg resolves
// element classes; prebound, when non-nil, supplies the ready-made
// instances for one chain — it is called once per Instantiate, so
// chain-scoped resources (a per-core balancer, a per-core device ring)
// come out right by construction. The text is parsed afresh per chain,
// which is what guarantees the copies share nothing.
func ParseProgram(text string, reg Registry, prebound func(chain int) map[string]Element) *Program {
	return &Program{Build: func(chain int) (*Router, error) {
		var pb map[string]Element
		if prebound != nil {
			pb = prebound(chain)
		}
		return ParseConfig(text, reg, pb)
	}}
}

// ProgramFromStages adapts the legacy []StageSpec surface to the
// graph-first planner — the thin shim that keeps pre-Program callers
// working. Each stage becomes one trunk segment; there are no side
// branches and every boundary is cuttable.
func ProgramFromStages(stages []StageSpec) *Program {
	return &Program{stages: stages}
}

// Instance is one materialized per-chain copy of a Program's graph:
// elements built, intra-graph connections wired synchronously, and the
// trunk identified so the planner knows where it may cut.
type Instance struct {
	router *Router         // nil for stage-shim programs
	segs   []StageInstance // trunk segments in graph order
	names  []string        // display name per segment
	noCut  []bool          // noCut[i]: boundary between seg i and i+1 must stay on one core
	// branchOf maps each non-trunk element to the index of the first
	// trunk segment that reaches it — the core its work executes on, and
	// therefore the segment its cycles belong to when weighting cuts.
	branchOf map[string]int
}

// Router returns the instance's element graph (nil when the instance
// came from the legacy stage shim).
func (in *Instance) Router() *Router { return in.router }

// Entry returns the element poll tasks inject traffic into.
func (in *Instance) Entry() Element { return in.segs[0].Entry }

// Exit returns the last trunk element — where a Sink attaches.
func (in *Instance) Exit() Element { return in.segs[len(in.segs)-1].exit() }

// Segments returns the trunk element names in order.
func (in *Instance) Segments() []string {
	out := make([]string, len(in.names))
	copy(out, in.names)
	return out
}

// Instantiate stamps out chain's independent copy of the graph.
func (pr *Program) Instantiate(chain int) (*Instance, error) {
	if pr.stages != nil {
		return instantiateStages(pr.stages, chain)
	}
	if pr.Build == nil {
		return nil, fmt.Errorf("click: program has no Build function")
	}
	r, err := pr.Build(chain)
	if err != nil {
		return nil, fmt.Errorf("click: program chain %d: %w", chain, err)
	}
	if r == nil {
		return nil, fmt.Errorf("click: program chain %d: Build returned nil router", chain)
	}
	return analyzeRouter(r, pr.Entry)
}

// instantiateStages is the legacy path: build each stage and wire them
// in sequence, exactly as the pre-Program planner did within a core.
func instantiateStages(stages []StageSpec, chain int) (*Instance, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("click: program needs at least 1 stage")
	}
	in := &Instance{
		segs:  make([]StageInstance, len(stages)),
		names: make([]string, len(stages)),
		noCut: make([]bool, len(stages)-1),
	}
	for i, st := range stages {
		if st.Make == nil {
			return nil, fmt.Errorf("click: stage %d (%q) has nil Make", i, st.Name)
		}
		in.segs[i] = st.Make(chain)
		if in.segs[i].Entry == nil {
			return nil, fmt.Errorf("click: stage %q returned nil Entry", st.Name)
		}
		in.names[i] = st.Name
	}
	for i := 0; i+1 < len(in.segs); i++ {
		if err := wireStage(in.segs[i].exit(), in.segs[i+1].Entry); err != nil {
			return nil, fmt.Errorf("click: stage %q: %w", stages[i].Name, err)
		}
	}
	return in, nil
}

// analyzeRouter derives the placement topology of a wired graph: entry,
// trunk, and the cut constraints imposed by shared side branches.
func analyzeRouter(r *Router, entryName string) (*Instance, error) {
	if len(r.order) == 0 {
		return nil, fmt.Errorf("click: program graph has no elements")
	}
	incoming := make(map[string]int, len(r.order))
	// port0[from] is from's output-0 connection; Connect guarantees at
	// most one connection per output port.
	port0 := make(map[string]conn, len(r.order))
	adj := make(map[string][]conn, len(r.order))
	for _, c := range r.conns {
		incoming[c.to]++
		adj[c.from] = append(adj[c.from], c)
		if c.fromPort == 0 {
			port0[c.from] = c
		}
	}

	entry := entryName
	if entry == "" {
		var candidates []string
		for _, name := range r.order {
			if incoming[name] == 0 {
				candidates = append(candidates, name)
			}
		}
		switch len(candidates) {
		case 1:
			entry = candidates[0]
		case 0:
			return nil, fmt.Errorf("click: program has no entry (every element has an incoming connection); name one with Entry")
		default:
			return nil, fmt.Errorf("click: program entry is ambiguous (%v have no incoming connections); name one with Entry", candidates)
		}
	} else if r.Get(entry) == nil {
		return nil, fmt.Errorf("click: program entry %q is not in the graph", entry)
	}

	// Trunk walk: follow output-0 edges while the next element's only
	// way in is that edge. A merge (incoming > 1), a cycle back into the
	// trunk, or a dangling/absent output 0 ends the trunk; everything
	// beyond hangs off the final segment.
	trunk := []string{entry}
	trunkIdx := map[string]int{entry: 0}
	// edgeNoCut[i] marks the boundary after trunk[i] as uncuttable for
	// edge-level reasons (the trunk edge targets a non-zero input port,
	// so a handoff ring — which re-enters at port 0 — would misdeliver).
	var edgeNoCut []bool
	for cur := entry; ; {
		c, ok := port0[cur]
		if !ok {
			break
		}
		next := c.to
		if _, seen := trunkIdx[next]; seen || incoming[next] != 1 {
			break
		}
		edgeNoCut = append(edgeNoCut, c.toPort != 0)
		trunkIdx[next] = len(trunk)
		trunk = append(trunk, next)
		cur = next
	}

	in := &Instance{
		router: r,
		segs:   make([]StageInstance, len(trunk)),
		names:  trunk,
		noCut:  edgeNoCut,
	}
	for i, name := range trunk {
		el := r.elements[name]
		in.segs[i] = StageInstance{Entry: el}
	}

	// Side-branch constraints: every non-trunk element reachable from
	// trunk[i] runs on trunk[i]'s core (it is wired synchronously). If
	// one element is reachable from trunk[i] and trunk[j], i < j, no cut
	// may separate i from j — two cores would push into it concurrently.
	// Likewise a back-edge into trunk[j] (a cycle, or a branch rejoining
	// upstream) pins the pusher's segment to trunk[j]'s core.
	forbid := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		for k := a; k < b; k++ {
			in.noCut[k] = true
		}
	}
	reachLo := make(map[string]int)
	reachHi := make(map[string]int)
	for i, name := range trunk {
		next := ""
		if i+1 < len(trunk) {
			next = trunk[i+1]
		}
		var stack []string
		seen := map[string]bool{}
		push := func(c conn, fromTrunk bool) {
			// Skip the trunk edge itself; all other edges lead sideways.
			if fromTrunk && c.fromPort == 0 && c.to == next {
				return
			}
			if j, isTrunk := trunkIdx[c.to]; isTrunk {
				// An edge back into the trunk: whoever pushes it runs on
				// trunk[i]'s core, so i and j must share a group.
				forbid(i, j)
				return
			}
			if !seen[c.to] {
				seen[c.to] = true
				stack = append(stack, c.to)
			}
		}
		for _, c := range adj[name] {
			push(c, true)
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := reachLo[x]; !ok {
				reachLo[x] = i
			}
			reachHi[x] = i
			for _, c := range adj[x] {
				push(c, false)
			}
		}
	}
	for x, lo := range reachLo {
		forbid(lo, reachHi[x])
	}
	in.branchOf = reachLo
	return in, nil
}

// TrunkWeights folds a measured per-element cycle profile into
// per-trunk-segment weights: each segment's exclusive cycles plus the
// cycles of every side-branch element it feeds (side branches execute
// synchronously on the feeding segment's core, so their cost lands on
// that core). Elements the profile never saw weigh 0; a uniform floor
// of 1 cycle per segment keeps untouched segments from collapsing a
// group to zero width. Returns nil when the instance has no graph (the
// legacy stage shim).
func (in *Instance) TrunkWeights(prof *Profiler) []float64 {
	if in.router == nil {
		return nil
	}
	byName := make(map[string]float64)
	for _, s := range prof.Stats() {
		byName[s.Name] = s.Cycles
	}
	w := make([]float64, len(in.names))
	for i, name := range in.names {
		w[i] = 1 + byName[name]
	}
	for x, i := range in.branchOf {
		w[i] += byName[x]
	}
	return w
}

// cuttableGroups reports the maximum number of contiguous groups the
// trunk can be split into under the noCut constraints.
func cuttableGroups(noCut []bool) int {
	g := 1
	for _, forbidden := range noCut {
		if !forbidden {
			g++
		}
	}
	return g
}

// chooseBounds splits n trunk segments into g contiguous groups, cutting
// only at allowed boundaries and keeping the groups as even as the
// constraints permit. It returns the g+1 boundary indices. The caller
// guarantees g <= cuttableGroups(noCut).
func chooseBounds(n, g int, noCut []bool) []int {
	// allowed[k] is a boundary index b: a cut after segment b.
	var allowed []int
	for b := 0; b < n-1; b++ {
		if !noCut[b] {
			allowed = append(allowed, b)
		}
	}
	bounds := make([]int, 0, g+1)
	bounds = append(bounds, 0)
	next := 0 // next candidate index into allowed
	for k := 1; k < g; k++ {
		// Ideal start of group k is k*n/g; the cut boundary before it is
		// ideal-1. Snap to the nearest allowed boundary that still leaves
		// enough allowed boundaries for the remaining g-1-k cuts.
		ideal := k*n/g - 1
		best := next
		for next+1 < len(allowed)-(g-1-k) && abs(allowed[next+1]-ideal) <= abs(allowed[best]-ideal) {
			next++
			best = next
		}
		bounds = append(bounds, allowed[best]+1)
		next++
	}
	bounds = append(bounds, n)
	return bounds
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// chooseBoundsWeighted splits n trunk segments into g contiguous groups
// minimizing the heaviest group's total weight — the pipelined
// bottleneck — cutting only at allowed boundaries. Unlike chooseBounds,
// which balances segment counts, this balances measured cycles, so a
// trunk whose cost concentrates in one element (an LPM lookup, an ESP
// transform) gets narrower groups around it. Dynamic program over
// prefix sums, O(g·n²); trunks are short. The caller guarantees
// g <= cuttableGroups(noCut) and len(w) == n.
func chooseBoundsWeighted(n, g int, noCut []bool, w []float64) []int {
	prefix := make([]float64, n+1)
	for i := 0; i < n; i++ {
		prefix[i+1] = prefix[i] + w[i]
	}
	// f[k][i]: minimal bottleneck for the first i segments in k groups,
	// with i an allowed boundary (or the trunk end).
	f := make([][]float64, g+1)
	parent := make([][]int, g+1)
	for k := range f {
		f[k] = make([]float64, n+1)
		parent[k] = make([]int, n+1)
		for i := range f[k] {
			f[k][i] = math.MaxFloat64
			parent[k][i] = -1
		}
	}
	f[0][0] = 0
	for k := 1; k <= g; k++ {
		for i := k; i <= n; i++ {
			if i < n && noCut[i-1] {
				continue // a cut after segment i-1 is forbidden
			}
			for j := k - 1; j < i; j++ {
				if f[k-1][j] == math.MaxFloat64 {
					continue
				}
				v := max(f[k-1][j], prefix[i]-prefix[j])
				if v < f[k][i] {
					f[k][i] = v
					parent[k][i] = j
				}
			}
		}
	}
	bounds := make([]int, g+1)
	bounds[g] = n
	for k := g; k > 0; k-- {
		bounds[k-1] = parent[k][bounds[k]]
	}
	return bounds
}
