package click

import (
	"testing"

	"routebricks/internal/pkt"
)

// batchPassthrough is a batch-native passthrough charging one cycle per
// batch (not per packet).
type batchPassthrough struct {
	Base
	batches int
}

func (e *batchPassthrough) InPorts() int  { return 1 }
func (e *batchPassthrough) OutPorts() int { return 1 }

func (e *batchPassthrough) Push(ctx *Context, _ int, p *pkt.Packet) {
	ctx.Charge(1)
	e.Out(ctx, 0, p)
}

func (e *batchPassthrough) PushBatch(ctx *Context, _ int, b *pkt.Batch) {
	ctx.Charge(1)
	e.batches++
	e.OutBatch(ctx, 0, b)
}

func makeBatch(n int) *pkt.Batch {
	b := pkt.NewBatch(n)
	for i := 0; i < n; i++ {
		p := newPacket()
		p.SeqNo = uint64(i)
		b.Add(p)
	}
	return b
}

// The automatic adapter: a per-packet element downstream of a batch
// dispatch must see the same packets, in the same order, as it would
// from per-packet pushes.
func TestBatchAdapterPreservesOrderAndCount(t *testing.T) {
	r := NewRouter()
	src := &batchPassthrough{}
	sink := &collector{} // per-packet only
	r.MustAdd("src", src)
	r.MustAdd("sink", sink)
	r.MustConnect("src", 0, "sink", 0)

	ctx := &Context{}
	b := makeBatch(8)
	src.PushBatch(ctx, 0, b)

	if len(sink.got) != 8 {
		t.Fatalf("sink got %d packets, want 8", len(sink.got))
	}
	for i, p := range sink.got {
		if p.SeqNo != uint64(i) {
			t.Fatalf("order broken at %d: SeqNo %d", i, p.SeqNo)
		}
		if sink.port[i] != 0 {
			t.Fatalf("packet %d delivered to port %d", i, sink.port[i])
		}
	}
	if b.Len() != 0 {
		t.Fatalf("batch not returned empty: len %d", b.Len())
	}
	if got := ctx.TakeCycles(); got != 1 {
		t.Fatalf("cycles = %g, want 1 (charged per batch)", got)
	}
}

// Native delivery: a batch-aware downstream receives the batch whole.
func TestBatchNativeDispatch(t *testing.T) {
	r := NewRouter()
	a := &batchPassthrough{}
	bEl := &batchPassthrough{}
	sink := &collector{}
	r.MustAdd("a", a)
	r.MustAdd("b", bEl)
	r.MustAdd("sink", sink)
	r.MustConnect("a", 0, "b", 0)
	r.MustConnect("b", 0, "sink", 0)

	ctx := &Context{}
	a.PushBatch(ctx, 0, makeBatch(5))
	if bEl.batches != 1 {
		t.Fatalf("downstream saw %d batches, want 1 native delivery", bEl.batches)
	}
	if len(sink.got) != 5 {
		t.Fatalf("sink got %d packets", len(sink.got))
	}
	// Two hops, one cycle per batch each.
	if got := ctx.TakeCycles(); got != 2 {
		t.Fatalf("cycles = %g, want 2", got)
	}
}

// A per-packet element pushing into a port that only has a batch
// binding must still deliver (momentary batch of one).
func TestSinglePacketIntoBatchOnlyPort(t *testing.T) {
	up := &passthrough{}
	down := &batchPassthrough{}
	sink := &collector{}
	up.SetBatchOutput(0, BatchDispatch(down, 0))
	down.SetOutput(0, func(ctx *Context, p *pkt.Packet) { sink.Push(ctx, 0, p) })

	p := newPacket()
	up.Push(&Context{}, 0, p)
	if len(sink.got) != 1 || sink.got[0] != p {
		t.Fatalf("packet not delivered through batch-only port")
	}
	if down.batches != 1 {
		t.Fatalf("batches = %d", down.batches)
	}
}

// PushBatchTo adapts at the entry point the way Connect does mid-graph.
func TestPushBatchToAdapter(t *testing.T) {
	sink := &collector{}
	b := makeBatch(3)
	PushBatchTo(sink, &Context{}, 2, b)
	if len(sink.got) != 3 {
		t.Fatalf("got %d packets", len(sink.got))
	}
	for _, port := range sink.port {
		if port != 2 {
			t.Fatalf("wrong input port %d", port)
		}
	}
	if b.Len() != 0 {
		t.Fatal("batch not emptied")
	}

	native := &batchPassthrough{}
	native.SetOutput(0, func(ctx *Context, p *pkt.Packet) { sink.Push(ctx, 0, p) })
	PushBatchTo(native, &Context{}, 0, makeBatch(2))
	if native.batches != 1 {
		t.Fatalf("native path not taken: %d batches", native.batches)
	}
}

// Instrumented batch connections attribute per-batch charges and count
// every packet in the batch.
func TestInstrumentBatchConnections(t *testing.T) {
	r := NewRouter()
	a := &batchPassthrough{}
	bEl := &batchPassthrough{}
	sink := &collector{}
	r.MustAdd("a", a)
	r.MustAdd("b", bEl)
	r.MustAdd("sink", sink)
	r.MustConnect("a", 0, "b", 0)
	r.MustConnect("b", 0, "sink", 0)

	prof := NewProfiler()
	r.Instrument(prof)

	ctx := &Context{}
	f := ctx.BeginFrame()
	a.PushBatch(ctx, 0, makeBatch(4))
	ctx.EndFrame(f)

	var bStats, sinkStats *ElementStats
	for _, s := range prof.Stats() {
		s := s
		switch s.Name {
		case "b":
			bStats = &s
		case "sink":
			sinkStats = &s
		}
	}
	if bStats == nil || bStats.Packets != 4 {
		t.Fatalf("element b stats = %+v, want 4 packets", bStats)
	}
	if bStats.Cycles != 1 {
		t.Fatalf("element b own cycles = %g, want 1 (per batch)", bStats.Cycles)
	}
	if sinkStats == nil || sinkStats.Packets != 4 {
		t.Fatalf("sink stats = %+v, want 4 packets", sinkStats)
	}
}
