package click

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// This file is the placement cost model: the pluggable pricing the
// planner and the Auto calibration consult instead of hard-coded
// constants. RouteBricks §5 shows a server's forwarding rate is bounded
// by memory-bus and inter-socket traffic, not core count alone — so the
// planner needs to know which cores share a socket (Topology) and what
// a cache-line handoff between two cores actually costs (CostModel,
// fed by exec.MeasureHandoff at load time). NewPlan consults the model
// when it assigns chains to cores (a chain polls the socket that owns
// its input queue; pipelined successors minimize the handoff price from
// their predecessor), and calibration charges every measured ring
// crossing at the model's price instead of a flat per-handoff constant.

// Topology describes the socket layout placement runs against: how the
// schedule's cores fold into CPU sockets and which socket owns each
// input queue's memory (the NIC-queue affinity RSS implies). The zero
// value is a flat single-socket host, under which every cost below
// degenerates to the pre-topology behavior.
//
// Schedule cores are goroutines, not pinned OS threads, so a detected
// topology is a best-effort prior for the cost model rather than a hard
// binding; an explicitly supplied Topology is taken at face value.
type Topology struct {
	// Sockets is the number of CPU sockets; 0 or 1 means flat.
	Sockets int
	// CoresPerSocket is how many consecutive schedule cores share a
	// socket: cores [0, CoresPerSocket) sit on socket 0, the next block
	// on socket 1, and so on (wrapping past the last socket).
	CoresPerSocket int
	// QueueSocket maps input queue (chain) index to the socket owning
	// its ring memory; indexes wrap when there are more chains than
	// entries. Empty means queue i is owned by SocketOf(i) — queues
	// spread across sockets in step with the default core layout.
	QueueSocket []int
}

// Flat reports whether the topology carries no socket structure.
func (t Topology) Flat() bool { return t.Sockets <= 1 }

// SocketOf maps a schedule core index to its socket.
func (t Topology) SocketOf(core int) int {
	if t.Sockets <= 1 || t.CoresPerSocket <= 0 || core < 0 {
		return 0
	}
	return (core / t.CoresPerSocket) % t.Sockets
}

// QueueSocketOf maps an input queue (chain) index to the socket owning
// its ring memory.
func (t Topology) QueueSocketOf(queue int) int {
	if queue < 0 {
		return 0
	}
	if len(t.QueueSocket) > 0 {
		return t.QueueSocket[queue%len(t.QueueSocket)]
	}
	return t.SocketOf(queue)
}

// Validate rejects malformed topologies with a descriptive error.
func (t Topology) Validate() error {
	if t.Sockets < 0 {
		return fmt.Errorf("click: Topology.Sockets must be non-negative, got %d", t.Sockets)
	}
	if t.CoresPerSocket < 0 {
		return fmt.Errorf("click: Topology.CoresPerSocket must be non-negative, got %d", t.CoresPerSocket)
	}
	if t.Sockets > 1 && t.CoresPerSocket == 0 {
		return fmt.Errorf("click: Topology with %d sockets needs CoresPerSocket", t.Sockets)
	}
	// A flat topology (Sockets 0 or 1) has exactly one socket for
	// queues to live on; an out-of-range entry would make the model
	// charge phantom cross-socket premiums no core can ever satisfy.
	sockets := t.Sockets
	if sockets <= 0 {
		sockets = 1
	}
	for i, s := range t.QueueSocket {
		if s < 0 || s >= sockets {
			return fmt.Errorf("click: Topology.QueueSocket[%d] = %d out of range (%d sockets)", i, s, sockets)
		}
	}
	return nil
}

// String renders the layout ("flat" or "2 sockets x 4 cores").
func (t Topology) String() string {
	if t.Flat() {
		return "flat"
	}
	return fmt.Sprintf("%d sockets x %d cores", t.Sockets, t.CoresPerSocket)
}

// DetectTopology inspects the host's CPU layout (Linux sysfs) and
// returns a Topology for it; on any other platform, or when sysfs is
// unreadable, it falls back to a flat topology over every CPU. Queue
// affinity is left empty (queues co-located with their default cores),
// since the detector cannot know where the caller's NIC queues live.
func DetectTopology() Topology {
	flat := Topology{Sockets: 1, CoresPerSocket: runtime.NumCPU()}
	entries, err := os.ReadDir("/sys/devices/system/cpu")
	if err != nil {
		return flat
	}
	perSocket := map[int]int{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "cpu") {
			continue
		}
		if _, err := strconv.Atoi(name[3:]); err != nil {
			continue // cpufreq, cpuidle, ...
		}
		raw, err := os.ReadFile("/sys/devices/system/cpu/" + name + "/topology/physical_package_id")
		if err != nil {
			continue
		}
		pkg, err := strconv.Atoi(strings.TrimSpace(string(raw)))
		if err != nil || pkg < 0 {
			continue
		}
		perSocket[pkg]++
	}
	if len(perSocket) <= 1 {
		return flat
	}
	// Use the smallest per-socket count so SocketOf never promises more
	// local cores than the tightest socket has.
	cores := -1
	for _, n := range perSocket {
		if cores < 0 || n < cores {
			cores = n
		}
	}
	return Topology{Sockets: len(perSocket), CoresPerSocket: cores}
}

// CostModel prices placement decisions in virtual CPU cycles per
// packet. NewPlan consults it to assign chains to cores, and the Auto
// calibration charges every observed ring crossing at its price — the
// pluggable replacement for the flat 120-cycles-per-handoff constant.
type CostModel interface {
	// HandoffCost is the per-packet cost of moving a packet through a
	// handoff ring from schedule core from to core to.
	HandoffCost(from, to int) float64
	// InputCost is the extra per-packet cost for core to poll an input
	// queue owned by queueSocket (0 when the queue is socket-local).
	InputCost(core, queueSocket int) float64
	// Describe names the model and its terms for decision records.
	Describe() string
}

const (
	// DefaultHandoffCycles is the handoff price used when no measurement
	// is available — the historical modeled cost of the inter-core
	// cache-line transfers one ring crossing implies (§4.2).
	DefaultHandoffCycles = 120
	// DefaultCrossSocketFactor multiplies a handoff that crosses a
	// socket boundary: the transfer rides the inter-socket link and the
	// remote memory controller instead of a shared L3 (§5's memory-bus
	// bound makes this the expensive direction).
	DefaultCrossSocketFactor = 3.0
)

// BusCostModel is the default cost model: a flat per-packet handoff
// price (measured by exec.MeasureHandoff at load time, or
// DefaultHandoffCycles), multiplied when the crossing spans sockets,
// plus a remote-polling surcharge for chains that could not be pinned
// to their input queue's socket.
type BusCostModel struct {
	Topo Topology
	// HandoffCycles is the same-socket per-packet ring-crossing price.
	HandoffCycles float64
	// CrossSocketFactor scales crossings whose endpoints sit on
	// different sockets.
	CrossSocketFactor float64
}

// NewBusCostModel builds the default model; handoffCycles <= 0 selects
// DefaultHandoffCycles.
func NewBusCostModel(topo Topology, handoffCycles float64) *BusCostModel {
	if handoffCycles <= 0 {
		handoffCycles = DefaultHandoffCycles
	}
	return &BusCostModel{Topo: topo, HandoffCycles: handoffCycles, CrossSocketFactor: DefaultCrossSocketFactor}
}

// terms normalizes the model's pricing: literal construction (zero
// fields) gets the same defaults NewBusCostModel applies, so a partial
// &BusCostModel{HandoffCycles: 200} can never invert the cross-socket
// premium or price remote polling negative.
func (m *BusCostModel) terms() (cycles, factor float64) {
	cycles, factor = m.HandoffCycles, m.CrossSocketFactor
	if cycles <= 0 {
		cycles = DefaultHandoffCycles
	}
	if factor <= 0 {
		factor = DefaultCrossSocketFactor
	}
	return cycles, factor
}

// HandoffCost prices one ring crossing between two schedule cores.
func (m *BusCostModel) HandoffCost(from, to int) float64 {
	cycles, factor := m.terms()
	if m.Topo.SocketOf(from) != m.Topo.SocketOf(to) {
		return cycles * factor
	}
	return cycles
}

// InputCost prices polling an input queue from a core: free when the
// core sits on the queue's socket, otherwise the cross-socket premium
// (the packet still crosses the inter-socket link, just on the poll
// side instead of a handoff ring).
func (m *BusCostModel) InputCost(core, queueSocket int) float64 {
	if m.Topo.SocketOf(core) == queueSocket {
		return 0
	}
	cycles, factor := m.terms()
	return cycles * (factor - 1)
}

// Describe renders the model terms for Decision strings.
func (m *BusCostModel) Describe() string {
	cycles, factor := m.terms()
	if m.Topo.Flat() {
		return fmt.Sprintf("bus model: %.0f cycles/handoff, flat topology", cycles)
	}
	return fmt.Sprintf("bus model: %.0f cycles/handoff, x%.1f cross-socket, %s",
		cycles, factor, m.Topo)
}
