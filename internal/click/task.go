package click

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Task is a schedulable unit of work — in practice a polling loop step
// that pulls a batch from a receive queue and pushes it through the
// graph. Run reports how many packets it processed; 0 means an empty
// poll.
type Task interface {
	Run(ctx *Context) int
}

// TaskFunc adapts a function to Task.
type TaskFunc func(ctx *Context) int

// Run calls f.
func (f TaskFunc) Run(ctx *Context) int { return f(ctx) }

// Schedule statically assigns tasks to cores — the paper's element-to-
// core allocation (§4.2): threads are pinned, each queue is polled by
// exactly one core.
type Schedule struct {
	cores [][]Task
}

// NewSchedule creates a schedule for the given core count.
func NewSchedule(cores int) *Schedule {
	return &Schedule{cores: make([][]Task, cores)}
}

// Cores reports the core count.
func (s *Schedule) Cores() int { return len(s.cores) }

// Bind pins a task to a core.
func (s *Schedule) Bind(core int, t Task) error {
	if core < 0 || core >= len(s.cores) {
		return fmt.Errorf("click: core %d out of range (0..%d)", core, len(s.cores)-1)
	}
	s.cores[core] = append(s.cores[core], t)
	return nil
}

// MustBind is Bind that panics on error.
func (s *Schedule) MustBind(core int, t Task) {
	if err := s.Bind(core, t); err != nil {
		panic(err)
	}
}

// Tasks returns the tasks bound to a core.
func (s *Schedule) Tasks(core int) []Task { return s.cores[core] }

// RunStep executes one round-robin pass over a core's tasks and reports
// packets processed. The simulation harness calls this per virtual core;
// the live runner calls it in a goroutine loop.
func (s *Schedule) RunStep(core int, ctx *Context) int {
	n := 0
	for _, t := range s.cores[core] {
		n += t.Run(ctx)
	}
	return n
}

// Runner drives a Schedule with one goroutine per core, Click's polling
// mode on real threads. It is used by the live UDP router (cmd/rbrouter);
// simulations drive RunStep themselves on virtual time.
type Runner struct {
	sched   *Schedule
	stop    atomic.Bool
	wg      sync.WaitGroup
	started atomic.Bool

	// Processed counts packets handled per core; steps counts RunStep
	// invocations (the idle-backoff test uses it to prove an idle runner
	// is sleeping, not spinning). Both are written on every loop
	// iteration, so each core's counter gets its own cache line —
	// packed atomics here would inject exactly the cross-core coherence
	// traffic the placement benchmark exists to measure.
	processed []paddedCounter
	steps     []paddedCounter
}

// paddedCounter is an atomic counter alone on its cache line.
type paddedCounter struct {
	n atomic.Uint64
	_ [56]byte
}

// Idle-backoff escalation: spin briefly (a busy router refills queues
// within nanoseconds), then yield the P so sibling goroutines run, then
// sleep outright so a quiescent router costs ~no host CPU. Real Click
// busy-polls, but it owns the machine; a library must not peg a core
// that has nothing to do.
const (
	idleSpinSteps  = 64
	idleYieldSteps = 1024
	idleSleep      = 100 * time.Microsecond
)

// NewRunner wraps a schedule.
func NewRunner(s *Schedule) *Runner {
	return &Runner{
		sched:     s,
		processed: make([]paddedCounter, s.Cores()),
		steps:     make([]paddedCounter, s.Cores()),
	}
}

// Start launches the per-core polling goroutines. Calling Start twice is
// an error.
func (r *Runner) Start() error {
	if !r.started.CompareAndSwap(false, true) {
		return fmt.Errorf("click: runner already started")
	}
	// Busy-spinning on an empty queue only pays when the producer can
	// refill it concurrently — i.e. when there are enough OS-level
	// execution slots for producers to run while this core spins. On an
	// oversubscribed host (more polling cores than GOMAXPROCS) the spin
	// quantum is stolen from the very goroutine that would deliver the
	// work, so skip straight to yielding.
	spin := idleSpinSteps
	if runtime.GOMAXPROCS(0) <= r.sched.Cores() {
		spin = 0
	}
	for core := 0; core < r.sched.Cores(); core++ {
		core := core
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			ctx := &Context{}
			idle := 0
			for !r.stop.Load() {
				n := r.sched.RunStep(core, ctx)
				ctx.TakeCycles()
				r.steps[core].n.Add(1)
				if n > 0 {
					idle = 0
					r.processed[core].n.Add(uint64(n))
					continue
				}
				idle++
				switch {
				case idle <= spin:
					// Busy-spin: traffic usually refills within nanoseconds.
				case idle <= idleYieldSteps:
					runtime.Gosched()
				default:
					// Quiescent: sleep so an idle router releases the CPU.
					// Capping idle keeps the counter from overflowing on
					// week-long idle stretches.
					idle = idleYieldSteps + 1
					time.Sleep(idleSleep)
				}
			}
		}()
	}
	return nil
}

// Stop halts the polling goroutines and waits for them to exit.
func (r *Runner) Stop() {
	r.stop.Store(true)
	r.wg.Wait()
}

// Processed reports packets handled by a core since Start.
func (r *Runner) Processed(core int) uint64 { return r.processed[core].n.Load() }

// Steps reports RunStep invocations by a core since Start — a proxy for
// how hard the core's polling loop is working.
func (r *Runner) Steps(core int) uint64 { return r.steps[core].n.Load() }
