package click

import (
	"fmt"
	"strings"
)

// DOT renders the element graph in Graphviz dot format, port-labeled:
// each element is a box labeled "name :: Type", each connection an edge
// labeled "[fromPort]->[toPort]". Pipe it through `dot -Tsvg` to see the
// graph a configuration actually built — the companion to Graph()'s
// plain-text listing, and what `rbrouter -print-graph` emits.
func (r *Router) DOT() string { return r.DOTTitled("") }

// DOTTitled renders like DOT with a graph label. The Pipeline uses it
// to stamp plan kind, generation, and chain onto exported graphs so
// hot-reloaded revisions are distinguishable side by side.
func (r *Router) DOTTitled(title string) string {
	var b strings.Builder
	b.WriteString("digraph router {\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q;\n  labelloc=t;\n", title)
	}
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")
	b.WriteString("  edge [fontname=\"Helvetica\", fontsize=10];\n")
	for _, name := range r.order {
		typ := fmt.Sprintf("%T", r.elements[name])
		typ = typ[strings.LastIndexByte(typ, '.')+1:] // *elements.Discard -> Discard
		fmt.Fprintf(&b, "  %q [label=\"%s :: %s\"];\n", name, name, typ)
	}
	for _, c := range r.conns {
		fmt.Fprintf(&b, "  %q -> %q [label=\"[%d]->[%d]\"];\n", c.from, c.to, c.fromPort, c.toPort)
	}
	b.WriteString("}\n")
	return b.String()
}
