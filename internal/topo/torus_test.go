package topo

import "testing"

func TestTorusSmallScaleFits(t *testing.T) {
	d, ok := TorusFeasible(Current(), 64, 10)
	if !ok {
		t.Fatal("64-port torus should fit the port budget")
	}
	if d.Servers != 64 {
		t.Fatalf("servers = %d, want 64 (direct topology)", d.Servers)
	}
	if d.ProcFactor <= 1 {
		t.Fatalf("ProcFactor = %.2f, want >1 (transit hops exceed the 3R budget)", d.ProcFactor)
	}
	if d.PortsUsed > Current().Fanout1G() && d.PortsUsed > Current().Fanout10G() {
		t.Fatalf("reported feasible but uses %d ports", d.PortsUsed)
	}
}

func TestTorusLargeScaleInfeasible(t *testing.T) {
	if _, ok := TorusFeasible(Current(), 1024, 10); ok {
		t.Fatal("1024-port torus should exceed the current-server port budget")
	}
}

// The §3.3 decision: wherever both exist, the torus costs more in
// processing than the n-fly's flat 3R intermediates would.
func TestTorusAlwaysOverloadsProcessing(t *testing.T) {
	for n := 16; n <= 4096; n *= 2 {
		d, ok := TorusFeasible(Current(), n, 10)
		if !ok {
			continue
		}
		if d.ProcFactor < 1.5 {
			t.Errorf("N=%d: torus ProcFactor %.2f unexpectedly low", n, d.ProcFactor)
		}
	}
}

func TestTorusMoreNICsExtendsRange(t *testing.T) {
	_, okCur := TorusFeasible(Current(), 512, 10)
	_, okMore := TorusFeasible(MoreNICs(), 512, 10)
	if okCur && !okMore {
		t.Fatal("more NIC slots should never shrink torus feasibility")
	}
}
