package topo

import "math"

// The paper (§3.3) says the authors "experimented with both [the
// butterfly and torus families] and chose the k-ary n-fly, because it
// yields smaller clusters for the practical range of parameters". This
// file models the rejected alternative so the ablation can reproduce the
// design decision.
//
// A k-ary n-cube (torus) is a direct topology: the N/s port servers
// themselves form the interconnect, with 2n links each (one per
// direction per dimension). Under VLB the average route crosses ≈ n·k/4
// hops per phase; with two phases and 2nN' directed links, the per-link
// rate works out to ≈ s·R·k/4. Two costs follow:
//
//   - Fanout: 2n links, each bundling ⌈sRk/4⌉ 1G ports (or 10G ports).
//   - Processing: every transit hop is packet work a port server must
//     absorb on top of its own 3sR; with ≈ nk/2 average hops the
//     per-server processing multiplies far beyond the n-fly's flat 3R
//     intermediates.
//
// TorusDesign reports both so the comparison is explicit.
type TorusDesign struct {
	Dims       int     // n
	Radix      int     // k
	Servers    int     // N/s — no extra servers, that is the attraction
	LinkGbps   float64 // required per-link rate
	Bundle     int     // 1G ports per link
	PortsUsed  int
	ProcFactor float64 // per-server processing vs the 3sR budget (≥1 means overload)
}

// TorusFeasible searches dimensions 2..6 for a k-ary n-cube that fits
// the server's port budget, returning the best (fewest ports used) and
// whether any fits. Feasibility here is fanout-only; ProcFactor exposes
// the processing overload separately.
func TorusFeasible(cfg ServerConfig, n int, rGbps float64) (TorusDesign, bool) {
	ns := ceilDiv(n, cfg.Ports)
	best := TorusDesign{}
	found := false
	for dims := 2; dims <= 6; dims++ {
		k := int(math.Ceil(math.Pow(float64(ns), 1/float64(dims))))
		if k < 2 {
			k = 2
		}
		link := float64(cfg.Ports) * rGbps * float64(k) / 4
		for _, opt := range []struct {
			rate   float64
			budget int
		}{
			{1, cfg.Fanout1G()},
			{10, cfg.Fanout10G()},
		} {
			bundle := int(math.Ceil(link / opt.rate))
			ports := 2 * dims * bundle
			if ports > opt.budget {
				continue
			}
			// Average hops ≈ dims·k/2 over both VLB phases; each hop is
			// minimal-forwarding work. The 3sR budget covers ingress,
			// egress and one forwarding pass; extra hops scale it.
			hops := float64(dims) * float64(k) / 2
			proc := (2 + hops) / 3
			d := TorusDesign{
				Dims: dims, Radix: k, Servers: ns,
				LinkGbps: link, Bundle: bundle, PortsUsed: ports,
				ProcFactor: proc,
			}
			if !found || ports < best.PortsUsed {
				best = d
				found = true
			}
		}
	}
	return best, found
}
