// Package topo implements the cluster-sizing analysis behind Fig 3 of
// the RouteBricks paper: given a server configuration (router ports per
// server, NIC slots) and a target external port count N at line rate R,
// how many servers does the cluster need?
//
// Topology preference follows §3.3: a full mesh while the per-server
// fanout allows it, then a k-ary n-fly with intermediate servers. The
// rejected "switched cluster" (strictly non-blocking Clos of 48-port
// 10G switches) is costed in server-equivalents for the comparison line.
//
// Modeling notes, tied to the paper's numbers:
//
//   - Each NIC slot holds either 2×10G or 8×1G ports (§3.3). External
//     ports consume ⌈s/2⌉ slots of 10G NICs; the rest carry internal
//     links.
//   - Mesh: N/s servers, fanout N/s−1, per-link rate 2s²R/N. Links may
//     bundle multiple 1G ports when 2s²R/N exceeds 1 Gbps (that is how a
//     32-port 1G complement meshes 16 nodes at 1.25 Gbps/link).
//   - n-fly: k = ⌊fanout/2⌋ (a k-ary switch node has k up + k down
//     connections), n = ⌈log_k N'⌉ stages. Intermediate servers do
//     minimal forwarding at 3R; VLB doubles the crossing traffic to 2NR,
//     so each stage needs ⌈2N/(3s... the intermediates are plain servers:
//     ⌈2NR/3R⌉ = ⌈2N/3⌉ of them. This reproduces the paper's "2
//     intermediate servers per port to provide N = 1024 external ports"
//     for the current-server configuration: 3 stages × ⌈2·1024/3⌉ = 2049.
//   - The paper's claim that the faster-server configuration meshes to
//     N = 2048 cannot be derived from its stated fanout (19 slots × 8 =
//     152 < 1023); our planner transitions that configuration to the
//     n-fly at its computed mesh bound. EXPERIMENTS.md records the
//     discrepancy.
package topo

import (
	"fmt"
	"math"
)

// Per-slot port complements (§3.3).
const (
	TenGPerSlot = 2
	OneGPerSlot = 8
)

// ServerConfig describes one of Fig 3's server generations.
type ServerConfig struct {
	Name  string
	Ports int // router ports handled per server (s)
	Slots int // NIC slots
}

// Current is Fig 3 configuration 1: one port, 5 slots.
func Current() ServerConfig { return ServerConfig{Name: "current", Ports: 1, Slots: 5} }

// MoreNICs is Fig 3 configuration 2: one port, 20 slots.
func MoreNICs() ServerConfig { return ServerConfig{Name: "more-nics", Ports: 1, Slots: 20} }

// Faster is Fig 3 configuration 3: two ports, 20 slots.
func Faster() ServerConfig { return ServerConfig{Name: "faster", Ports: 2, Slots: 20} }

// internalSlots reports the slots left for internal links after the
// external ports take theirs.
func (c ServerConfig) internalSlots() int {
	ext := (c.Ports + TenGPerSlot - 1) / TenGPerSlot
	return c.Slots - ext
}

// Fanout1G reports the internal 1 Gbps port budget.
func (c ServerConfig) Fanout1G() int { return c.internalSlots() * OneGPerSlot }

// Fanout10G reports the internal 10 Gbps port budget.
func (c ServerConfig) Fanout10G() int { return c.internalSlots() * TenGPerSlot }

// Design is a sized cluster.
type Design struct {
	Topology      string // "mesh" or "n-fly"
	Servers       int    // total servers (port + intermediate)
	PortServers   int
	Intermediates int
	Stages        int     // n-fly stages (0 for mesh)
	LinkGbps      float64 // required per-link rate before bundling
	Bundle        int     // 1G ports bundled per logical link (mesh)
}

// MeshFeasible reports whether cfg can interconnect N external ports in
// a full mesh, and the design if so.
func MeshFeasible(cfg ServerConfig, n int, rGbps float64) (Design, bool) {
	if cfg.internalSlots() < 0 {
		return Design{}, false
	}
	ns := ceilDiv(n, cfg.Ports) // port servers
	if ns < 2 {
		return Design{}, false
	}
	need := 2 * float64(cfg.Ports*cfg.Ports) * rGbps / float64(n) // Gbps per link
	d := Design{Topology: "mesh", Servers: ns, PortServers: ns, LinkGbps: need}

	// 1G ports with bundling.
	bundle := int(math.Ceil(need / 1))
	if (ns-1)*bundle <= cfg.Fanout1G() {
		d.Bundle = bundle
		return d, true
	}
	// 10G ports.
	bundle10 := int(math.Ceil(need / 10))
	if (ns-1)*bundle10 <= cfg.Fanout10G() {
		d.Bundle = bundle10
		return d, true
	}
	return Design{}, false
}

// Plan sizes a cluster for N external ports at R Gbps per port. It
// returns the mesh when feasible, otherwise the k-ary n-fly.
func Plan(cfg ServerConfig, n int, rGbps float64) (Design, error) {
	if n < 2 {
		return Design{}, fmt.Errorf("topo: need ≥2 ports, got %d", n)
	}
	if d, ok := MeshFeasible(cfg, n, rGbps); ok {
		return d, nil
	}
	ns := ceilDiv(n, cfg.Ports)
	k := cfg.Fanout1G() / 2
	if k < 2 {
		return Design{}, fmt.Errorf("topo: %s fanout %d cannot build an n-fly", cfg.Name, cfg.Fanout1G())
	}
	stages := int(math.Ceil(math.Log(float64(ns)) / math.Log(float64(k))))
	if stages < 1 {
		stages = 1
	}
	perStage := ceilDiv(2*n, 3) // intermediates forward at 3R; VLB traffic is 2NR
	inter := stages * perStage
	return Design{
		Topology:      "n-fly",
		Servers:       ns + inter,
		PortServers:   ns,
		Intermediates: inter,
		Stages:        stages,
		LinkGbps:      1,
	}, nil
}

// SwitchPorts is the port count of the commodity switch in the rejected
// design (48-port 10G Arista, §3.3).
const SwitchPorts = 48

// switchedPortsPerEdge and middle sizing follow the standard strictly
// non-blocking three-stage Clos: n inputs per edge switch, m ≥ 2n−1
// middle switches, n+m ≤ SwitchPorts ⇒ n = 16, m = 31.
const (
	closEdgeInputs = 16
	closMiddle     = 31
)

// ClosSwitches counts 48-port switches for a strictly non-blocking
// fabric over `ports` endpoints, recursing when the middle stage
// outgrows one switch.
func ClosSwitches(ports int) int {
	if ports <= 0 {
		return 0
	}
	if ports <= SwitchPorts {
		return 1
	}
	r := ceilDiv(ports, closEdgeInputs) // edge switches
	return r + closMiddle*ClosSwitches(r)
}

// SwitchedCost reports the rejected switched-cluster design's cost in
// server-equivalents: N packet-processing servers plus the switch fabric
// converted at the paper's rate (4 Arista ports ≈ 1 server: $500/port vs
// $2000/server).
func SwitchedCost(n int) (switches int, serverEquivalent float64) {
	switches = ClosSwitches(n)
	serverEquivalent = float64(n) + float64(switches*SwitchPorts)/4
	return switches, serverEquivalent
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
