package topo

import (
	"testing"
	"testing/quick"
)

// Fig 3 anchors: mesh feasibility bounds per configuration. The paper:
// current servers mesh to N=32, more-NICs to N=128.
func TestMeshBounds(t *testing.T) {
	cases := []struct {
		cfg      ServerConfig
		lastMesh int // largest power-of-two N that still meshes
	}{
		{Current(), 32},
		{MoreNICs(), 128},
		{Faster(), 256}, // our derived bound; see package comment re: the paper's 2048
	}
	for _, c := range cases {
		if _, ok := MeshFeasible(c.cfg, c.lastMesh, 10); !ok {
			t.Errorf("%s: mesh at N=%d should be feasible", c.cfg.Name, c.lastMesh)
		}
		if _, ok := MeshFeasible(c.cfg, c.lastMesh*2, 10); ok {
			t.Errorf("%s: mesh at N=%d should NOT be feasible", c.cfg.Name, c.lastMesh*2)
		}
	}
}

// Mesh cost equals port-server count, with no intermediates.
func TestMeshDesignShape(t *testing.T) {
	d, err := Plan(Current(), 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Topology != "mesh" || d.Servers != 32 || d.Intermediates != 0 {
		t.Fatalf("design = %+v", d)
	}
	// 2R/N = 0.625 Gbps < 1G: single 1G ports suffice.
	if d.Bundle != 1 {
		t.Fatalf("bundle = %d", d.Bundle)
	}
}

// Small meshes need bundled or 10G links: N=16, current servers →
// 1.25 Gbps/link → 2×1G bundles × 15 neighbors = 30 ≤ 32 ports.
func TestMeshBundling(t *testing.T) {
	d, ok := MeshFeasible(Current(), 16, 10)
	if !ok {
		t.Fatal("N=16 mesh should be feasible via bundling")
	}
	if d.Bundle != 2 {
		t.Fatalf("bundle = %d, want 2", d.Bundle)
	}
	if d.LinkGbps != 1.25 {
		t.Fatalf("link rate = %g", d.LinkGbps)
	}
}

// Faster servers halve the server count: 2 ports each.
func TestFasterHalvesServers(t *testing.T) {
	d, err := Plan(Faster(), 128, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Servers != 64 || d.Topology != "mesh" {
		t.Fatalf("design = %+v", d)
	}
}

// The paper's quoted anchor: with current servers, N=1024 needs 2
// intermediate servers per port (3 stages × ⌈2N/3⌉ = 2049).
func TestNFlyPaperAnchor(t *testing.T) {
	d, err := Plan(Current(), 1024, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Topology != "n-fly" {
		t.Fatalf("topology = %s", d.Topology)
	}
	if d.Stages != 3 {
		t.Fatalf("stages = %d, want 3 (k=16, log16(1024)=2.5)", d.Stages)
	}
	perPort := float64(d.Intermediates) / 1024
	if perPort < 1.9 || perPort > 2.1 {
		t.Fatalf("intermediates per port = %.2f, want ≈2", perPort)
	}
	if d.Servers != 1024+d.Intermediates {
		t.Fatalf("total = %d", d.Servers)
	}
}

// More NICs (k=76) need fewer stages.
func TestNFlyFewerStagesWithMoreNICs(t *testing.T) {
	d, err := Plan(MoreNICs(), 1024, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Stages != 2 {
		t.Fatalf("stages = %d, want 2 (k=76)", d.Stages)
	}
	dCur, _ := Plan(Current(), 1024, 10)
	if d.Servers >= dCur.Servers {
		t.Fatalf("more NICs (%d) should beat current (%d)", d.Servers, dCur.Servers)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan(Current(), 1, 10); err == nil {
		t.Error("N=1 accepted")
	}
	tiny := ServerConfig{Name: "tiny", Ports: 1, Slots: 1}
	if _, err := Plan(tiny, 4096, 10); err == nil {
		t.Error("zero-fanout n-fly accepted")
	}
}

func TestClosSwitchCounts(t *testing.T) {
	if got := ClosSwitches(48); got != 1 {
		t.Fatalf("ClosSwitches(48) = %d", got)
	}
	// 3-stage region: r = ceil(N/16) edges + 31 middles.
	if got := ClosSwitches(256); got != 16+31 {
		t.Fatalf("ClosSwitches(256) = %d, want 47", got)
	}
	if got := ClosSwitches(768); got != 48+31 {
		t.Fatalf("ClosSwitches(768) = %d, want 79", got)
	}
	// Beyond 768 the middle recurses.
	if got := ClosSwitches(1024); got <= 64+31 {
		t.Fatalf("ClosSwitches(1024) = %d, want recursion > 95", got)
	}
}

// Fig 3's comparison claim: the server-based cluster is cheaper than the
// Arista-based switched cluster at every plotted port count.
func TestServerClusterBeatsSwitched(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		var best float64 = 1 << 30
		for _, cfg := range []ServerConfig{Current(), MoreNICs(), Faster()} {
			if d, err := Plan(cfg, n, 10); err == nil && float64(d.Servers) < best {
				best = float64(d.Servers)
			}
		}
		_, sw := SwitchedCost(n)
		if best >= sw {
			t.Errorf("N=%d: best server cluster %v ≥ switched %.0f", n, best, sw)
		}
	}
}

// At small N the mesh uses exactly N servers while the switched design
// pays for the switch: the paper's "avoids the cost of the switch
// altogether while using the same number of servers".
func TestSmallNComparison(t *testing.T) {
	d, _ := Plan(Current(), 4, 10)
	if d.Servers != 4 {
		t.Fatalf("mesh servers = %d", d.Servers)
	}
	_, sw := SwitchedCost(4)
	if sw != 16 {
		t.Fatalf("switched equivalent = %g, want 16 (4 servers + 12 for the switch)", sw)
	}
}

// The mesh boundary is genuinely non-monotone in N: at N=19 the current
// server's links need 2×1G bundles (2R/N > 1G), blowing the port budget
// and forcing an n-fly of 45 servers, while N=20 fits a plain 20-server
// mesh with single links. More ports can need fewer servers because the
// per-link rate requirement 2s²R/N falls with N.
func TestPlanNonMonotoneAtBundleBoundary(t *testing.T) {
	d19, err := Plan(Current(), 19, 10)
	if err != nil {
		t.Fatal(err)
	}
	d20, err := Plan(Current(), 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d19.Topology != "n-fly" || d20.Topology != "mesh" {
		t.Fatalf("topologies = %s/%s, want n-fly/mesh", d19.Topology, d20.Topology)
	}
	if d19.Servers <= d20.Servers {
		t.Fatalf("expected the documented dip: Plan(19)=%d, Plan(20)=%d",
			d19.Servers, d20.Servers)
	}
}

// Property: Plan is monotone in N once links no longer need bundling
// (N ≥ 2s²R, i.e. 2s²R/N ≤ 1G), and total servers ≥ port servers ≥ N/s
// everywhere.
func TestPropertyPlanMonotone(t *testing.T) {
	f := func(nRaw uint16, cfgIdx uint8) bool {
		cfgs := []ServerConfig{Current(), MoreNICs(), Faster()}
		cfg := cfgs[int(cfgIdx)%3]
		n := 2*cfg.Ports*cfg.Ports*10 + int(nRaw)%2028
		d1, err1 := Plan(cfg, n, 10)
		d2, err2 := Plan(cfg, n+cfg.Ports, 10)
		if err1 != nil || err2 != nil {
			return false
		}
		if d1.PortServers < ceilDiv(n, cfg.Ports) {
			return false
		}
		if d1.Servers < d1.PortServers {
			return false
		}
		return d2.Servers >= d1.Servers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: mesh links never exceed port budgets.
func TestPropertyMeshRespectsFanout(t *testing.T) {
	f := func(nRaw uint16, slots uint8, ports uint8) bool {
		cfg := ServerConfig{Name: "x", Ports: 1 + int(ports)%2, Slots: 2 + int(slots)%30}
		n := 2 + int(nRaw)%4096
		d, ok := MeshFeasible(cfg, n, 10)
		if !ok {
			return true
		}
		used := (d.PortServers - 1) * d.Bundle
		return used <= cfg.Fanout1G() || used <= cfg.Fanout10G()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
