package stats

// This file defines the unified observability schema of a loaded
// pipeline: one typed Snapshot carrying everything the scattered
// Stats()/Drops()/Queued() accessors used to expose piecemeal, shaped
// for JSON export (cmd/rbrouter serves it on -stats-addr) and for rate
// computation via Delta. The types are pure data — the routebricks
// facade fills them from a live plan; nothing here touches the
// datapath.

// CoreSnapshot is one core's counter block at snapshot time. Socket is
// the CPU socket the placement assigned the core to (0 on flat
// topologies).
type CoreSnapshot struct {
	Core     int    `json:"core"`
	Socket   int    `json:"socket"`
	Chain    int    `json:"chain"`
	Stages   string `json:"stages"`
	Packets  uint64 `json:"packets"`
	Polls    uint64 `json:"polls"`
	Empty    uint64 `json:"empty"`
	Handoffs uint64 `json:"handoffs"`
	// Steals counts packets this core pulled from sibling chains' input
	// rings; Stolen counts packets siblings took from this core's ring.
	// Both stay 0 unless the plan enables work stealing.
	Steals uint64 `json:"steals,omitempty"`
	Stolen uint64 `json:"stolen,omitempty"`
}

// PoolSnapshot is the packet pool's freelist health: how many shards it
// runs, how many buffers sit idle (shards plus backing store), and the
// monotonic get/hit/put counters — all read from atomics, so snapshots
// never serialize the datapath. A hit rate near 1 means steady-state
// forwarding allocates nothing; double puts indicate an ownership bug.
type PoolSnapshot struct {
	Shards     int    `json:"shards"`
	Free       int    `json:"free"`
	Gets       uint64 `json:"gets"`
	Hits       uint64 `json:"hits"`
	Puts       uint64 `json:"puts"`
	DoublePuts uint64 `json:"double_puts"`
}

// RingSnapshot is one ring's state: Role is "input" (caller-fed) or
// "handoff" (inter-stage); Len/Cap are occupancy gauges, Rejected the
// monotonic backpressure counter. FromCore/ToCore are the producer and
// consumer cores (-1 for an input ring's external producer) and Cost
// the placement cost model's per-packet price for the crossing.
type RingSnapshot struct {
	Role     string  `json:"role"`
	Chain    int     `json:"chain"`
	FromCore int     `json:"from_core"`
	ToCore   int     `json:"to_core"`
	Cost     float64 `json:"cost,omitempty"`
	Len      int     `json:"len"`
	Cap      int     `json:"cap"`
	Rejected uint64  `json:"rejected"`
}

// RSSSnapshot is the flow-steering indirection table's state: the
// bucket→chain assignment gauge, per-bucket steered-packet counters,
// and the table's own generation (bumped per rewrite — independent of
// the plan generation, because the table survives Reload/Replan the
// way the FIB does). Steers counts table rewrites applied, Moved the
// buckets those rewrites migrated.
type RSSSnapshot struct {
	Buckets     int      `json:"buckets"`
	Chains      int      `json:"chains"`
	Generation  uint64   `json:"generation"`
	Steers      uint64   `json:"steers,omitempty"`
	Moved       uint64   `json:"moved,omitempty"`
	Assignments []int    `json:"assignments"`
	Counts      []uint64 `json:"counts"`
}

// WireSnapshot is the process's kernel wire-I/O health (internal/netio
// readers and writers summed): which syscall path the sockets run
// ("mmsg" or "fallback"), how many syscalls moved traffic, and how many
// datagrams they moved — RxFrames/RxBatches and TxFrames/TxBatches are
// the mean syscall fill, the number batching exists to raise above 1.
// RxTruncated counts received datagrams clipped to the configured
// maximum (detectable on the mmsg path only).
type WireSnapshot struct {
	Mode        string `json:"mode"`
	RxBatches   uint64 `json:"rx_batches"`
	RxFrames    uint64 `json:"rx_frames"`
	RxTruncated uint64 `json:"rx_truncated,omitempty"`
	TxBatches   uint64 `json:"tx_batches"`
	TxFrames    uint64 `json:"tx_frames"`
}

// ElementSnapshot carries one graph element's exported counters
// (harvested from the atomic Count/Packets/Bytes accessors elements
// expose).
type ElementSnapshot struct {
	Chain    int               `json:"chain"`
	Name     string            `json:"name"`
	Class    string            `json:"class"`
	Counters map[string]uint64 `json:"counters"`
}

// Snapshot is a consistent-enough point-in-time view of a running
// pipeline: plan identity (kind + generation, so observers can tell a
// reload happened), per-core counters, per-ring depth/capacity/
// backpressure, and per-element counters. Counters are monotonic within
// one generation; a Reload or Replan installs a fresh plan and resets
// them.
type Snapshot struct {
	Plan       string `json:"plan"`
	Generation uint64 `json:"generation"`
	Decision   string `json:"decision,omitempty"`
	Cores      int    `json:"cores"`
	Chains     int    `json:"chains"`

	Queued   int    `json:"queued"`
	Drops    uint64 `json:"drops"`
	Rejected uint64 `json:"rejected"`

	// Imbalance is the per-core load-skew ratio (see ImbalanceRatio):
	// cumulative for a plain Snapshot, per-interval after Delta — the
	// one number the replan controller and operators watch.
	Imbalance float64 `json:"imbalance"`

	// FIBGeneration and FIBRoutes describe the live FIB at snapshot
	// time — the number of committed route updates and the installed
	// route count. Both are gauges on the FIB, not plan counters: they
	// survive Reload/Replan (the FIB is shared across plan generations)
	// and Delta keeps their current values. Zero when the pipeline has
	// no live FIB bound.
	FIBGeneration uint64 `json:"fib_generation,omitempty"`
	FIBRoutes     int    `json:"fib_routes,omitempty"`

	// Pool is the process packet pool's freelist health at snapshot
	// time. Unlike the plan counters it is process-global: it does not
	// reset at generation boundaries.
	Pool PoolSnapshot `json:"pool"`

	// RSS is the flow-steering indirection table, when the pipeline
	// steers by flow hash (PushFlow). Like the Pool its counters are
	// pipeline-global monotonic: the table persists across plan
	// generations rather than resetting with them.
	RSS *RSSSnapshot `json:"rss,omitempty"`

	// Wire is the kernel wire-I/O layer's counters, when the process
	// runs sockets through internal/netio (cmd/rbrouter attaches it).
	// Process-global monotonic, like Pool: it does not reset at plan
	// generation boundaries.
	Wire *WireSnapshot `json:"wire,omitempty"`

	CoreStats []CoreSnapshot    `json:"core_stats"`
	Rings     []RingSnapshot    `json:"rings"`
	Elements  []ElementSnapshot `json:"elements,omitempty"`
}

// ImbalanceRatio reduces the per-core packet counters to one skew
// number: the busiest core's packets over the all-core mean. 1.0 is a
// perfectly balanced plan, Cores is the worst case (all traffic on one
// core), and 0 means no traffic at all (no evidence of skew). The
// Imbalance field caches this value; Delta recomputes it over the
// interval's increments, which is the form a controller should watch —
// cumulative ratios go stale as history accumulates.
func (s Snapshot) ImbalanceRatio() float64 {
	if len(s.CoreStats) == 0 {
		return 0
	}
	var total, max uint64
	for _, c := range s.CoreStats {
		total += c.Packets
		if c.Packets > max {
			max = c.Packets
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(s.CoreStats))
	return float64(max) / mean
}

// TotalPackets sums packets pulled across all cores — each packet
// counts once per core that handled it, so a pipelined plan reports
// roughly stages× the injected count.
func (s Snapshot) TotalPackets() uint64 {
	var n uint64
	for _, c := range s.CoreStats {
		n += c.Packets
	}
	return n
}

// Delta returns s with every monotonic counter replaced by its increase
// since prev — the rate view: divide by the wall-clock interval between
// the two snapshots for per-second rates. Gauges (Queued, ring Len/Cap)
// keep their current values. When prev belongs to a different plan or
// generation the counters restarted from zero mid-interval, so s is
// returned unchanged — callers detect the discontinuity by comparing
// Generation themselves.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	if s.Plan != prev.Plan || s.Generation != prev.Generation {
		s.Imbalance = s.ImbalanceRatio()
		return s
	}
	out := s
	out.Drops = sub(s.Drops, prev.Drops)
	out.Rejected = sub(s.Rejected, prev.Rejected)

	out.CoreStats = make([]CoreSnapshot, len(s.CoreStats))
	copy(out.CoreStats, s.CoreStats)
	if len(prev.CoreStats) == len(s.CoreStats) {
		for i := range out.CoreStats {
			p := prev.CoreStats[i]
			if p.Core != out.CoreStats[i].Core || p.Chain != out.CoreStats[i].Chain {
				continue
			}
			out.CoreStats[i].Packets = sub(out.CoreStats[i].Packets, p.Packets)
			out.CoreStats[i].Polls = sub(out.CoreStats[i].Polls, p.Polls)
			out.CoreStats[i].Empty = sub(out.CoreStats[i].Empty, p.Empty)
			out.CoreStats[i].Handoffs = sub(out.CoreStats[i].Handoffs, p.Handoffs)
			out.CoreStats[i].Steals = sub(out.CoreStats[i].Steals, p.Steals)
			out.CoreStats[i].Stolen = sub(out.CoreStats[i].Stolen, p.Stolen)
		}
	}

	// Pool counters are process-global monotonic; Shards/Free are gauges.
	out.Pool.Gets = sub(s.Pool.Gets, prev.Pool.Gets)
	out.Pool.Hits = sub(s.Pool.Hits, prev.Pool.Hits)
	out.Pool.Puts = sub(s.Pool.Puts, prev.Pool.Puts)
	out.Pool.DoublePuts = sub(s.Pool.DoublePuts, prev.Pool.DoublePuts)

	// RSS bucket counters are table-global monotonic; the assignment and
	// the table generation are gauges. A table resized between snapshots
	// (Buckets mismatch) restarted its counter array — keep the current
	// cumulative values, as with a generation change.
	if s.RSS != nil && prev.RSS != nil && s.RSS.Buckets == prev.RSS.Buckets {
		r := *s.RSS
		r.Steers = sub(s.RSS.Steers, prev.RSS.Steers)
		r.Moved = sub(s.RSS.Moved, prev.RSS.Moved)
		r.Counts = make([]uint64, len(s.RSS.Counts))
		for i := range r.Counts {
			r.Counts[i] = sub(s.RSS.Counts[i], prev.RSS.Counts[i])
		}
		out.RSS = &r
	}

	// Wire counters are process-global monotonic; Mode is a gauge.
	if s.Wire != nil && prev.Wire != nil {
		w := *s.Wire
		w.RxBatches = sub(s.Wire.RxBatches, prev.Wire.RxBatches)
		w.RxFrames = sub(s.Wire.RxFrames, prev.Wire.RxFrames)
		w.RxTruncated = sub(s.Wire.RxTruncated, prev.Wire.RxTruncated)
		w.TxBatches = sub(s.Wire.TxBatches, prev.Wire.TxBatches)
		w.TxFrames = sub(s.Wire.TxFrames, prev.Wire.TxFrames)
		out.Wire = &w
	}

	out.Rings = make([]RingSnapshot, len(s.Rings))
	copy(out.Rings, s.Rings)
	if len(prev.Rings) == len(s.Rings) {
		for i := range out.Rings {
			p := prev.Rings[i]
			if p.Role != out.Rings[i].Role || p.Chain != out.Rings[i].Chain {
				continue
			}
			out.Rings[i].Rejected = sub(out.Rings[i].Rejected, p.Rejected)
		}
	}

	prevEl := make(map[elKey]ElementSnapshot, len(prev.Elements))
	for _, e := range prev.Elements {
		prevEl[e.key()] = e
	}
	out.Elements = make([]ElementSnapshot, len(s.Elements))
	for i, e := range s.Elements {
		counters := make(map[string]uint64, len(e.Counters))
		p, ok := prevEl[e.key()]
		for k, v := range e.Counters {
			if ok {
				v = sub(v, p.Counters[k])
			}
			counters[k] = v
		}
		e.Counters = counters
		out.Elements[i] = e
	}
	out.Imbalance = out.ImbalanceRatio()
	return out
}

// elKey identifies an element across snapshots of one generation.
type elKey struct {
	chain int
	name  string
}

func (e ElementSnapshot) key() elKey { return elKey{e.Chain, e.Name} }

// sub is saturating subtraction: a counter that appears to run backward
// (it cannot within one generation) clamps to 0 instead of wrapping.
func sub(a, b uint64) uint64 {
	if b > a {
		return 0
	}
	return a - b
}
