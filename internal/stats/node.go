package stats

// NodeStats is one cluster member's slice of the /api/v1/stats JSON
// document: the pipeline's unified ingress Snapshot plus the node's
// socket-level counters, which live outside the pipeline (UDP reads,
// per-peer transmit rings, drains). cmd/rbrouter embeds it on the serve
// side (adding process-local extras like controller state) and rbmesh
// decodes it when aggregating a cluster snapshot, so the two ends agree
// on the wire shape by construction.
type NodeStats struct {
	ID      int      `json:"id"`
	Ingress Snapshot `json:"ingress"`

	TransitQueued  int    `json:"transit_queued"`
	TransitPackets uint64 `json:"transit_packets"`
	Forwarded      uint64 `json:"forwarded"`
	Egressed       uint64 `json:"egressed"`
	RouteMisses    uint64 `json:"route_misses"`
	HeaderDrops    uint64 `json:"header_drops"`
	RxDrops        uint64 `json:"rx_drops"`
	TxBatches      uint64 `json:"tx_batches"`
	TxStalls       uint64 `json:"tx_stalls"`
	// TxDrained counts packets flushed from transmit rings during
	// graceful shutdown or a re-stripe around a dead peer — accounted,
	// not silently lost.
	TxDrained uint64 `json:"tx_drained"`
	// Restripes is the node's VLB re-stripe generation (0 until the
	// first membership change re-spreads the mesh).
	Restripes uint64 `json:"restripes,omitempty"`
}

// NodeTotals is the cluster-wide sum of per-node counters — the shape
// rbmesh reports as the aggregate forwarding ledger. The wire rx/tx
// fields come from each node's Ingress.Wire snapshot (internal/netio
// counters): they prove the mesh's sockets actually ran batched — mean
// fill is WireRxFrames/WireRxBatches — and which syscall path carried
// the traffic.
type NodeTotals struct {
	TransitPackets uint64 `json:"transit_packets"`
	Forwarded      uint64 `json:"forwarded"`
	Egressed       uint64 `json:"egressed"`
	RouteMisses    uint64 `json:"route_misses"`
	HeaderDrops    uint64 `json:"header_drops"`
	RxDrops        uint64 `json:"rx_drops"`
	TxBatches      uint64 `json:"tx_batches"`
	TxStalls       uint64 `json:"tx_stalls"`
	TxDrained      uint64 `json:"tx_drained"`

	WireRxBatches uint64 `json:"wire_rx_batches,omitempty"`
	WireRxFrames  uint64 `json:"wire_rx_frames,omitempty"`
	WireTxBatches uint64 `json:"wire_tx_batches,omitempty"`
	WireTxFrames  uint64 `json:"wire_tx_frames,omitempty"`
}

// SumNodes folds per-node stats into cluster totals.
func SumNodes(nodes []NodeStats) NodeTotals {
	var t NodeTotals
	for _, n := range nodes {
		t.TransitPackets += n.TransitPackets
		t.Forwarded += n.Forwarded
		t.Egressed += n.Egressed
		t.RouteMisses += n.RouteMisses
		t.HeaderDrops += n.HeaderDrops
		t.RxDrops += n.RxDrops
		t.TxBatches += n.TxBatches
		t.TxStalls += n.TxStalls
		t.TxDrained += n.TxDrained
		if w := n.Ingress.Wire; w != nil {
			t.WireRxBatches += w.RxBatches
			t.WireRxFrames += w.RxFrames
			t.WireTxBatches += w.TxBatches
			t.WireTxFrames += w.TxFrames
		}
	}
	return t
}
