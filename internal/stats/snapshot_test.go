package stats

import "testing"

func sampleSnapshot(gen uint64, pkts, rej uint64) Snapshot {
	return Snapshot{
		Plan:       "pipelined",
		Generation: gen,
		Cores:      2,
		Chains:     1,
		Queued:     3,
		Drops:      pkts / 100,
		Rejected:   rej,
		CoreStats: []CoreSnapshot{
			{Core: 0, Chain: 0, Stages: "check+rt", Packets: pkts, Polls: pkts + 5, Empty: 5, Handoffs: pkts / 32},
			{Core: 1, Chain: 0, Stages: "ttl", Packets: pkts, Polls: pkts + 9, Empty: 9},
		},
		Rings: []RingSnapshot{
			{Role: "input", Chain: 0, Len: 2, Cap: 4096, Rejected: rej},
			{Role: "handoff", Chain: 0, Len: 1, Cap: 1024, Rejected: 0},
		},
		Elements: []ElementSnapshot{
			{Chain: 0, Name: "good", Class: "Counter", Counters: map[string]uint64{"packets": pkts, "bytes": pkts * 64}},
		},
	}
}

func TestSnapshotDelta(t *testing.T) {
	prev := sampleSnapshot(4, 1000, 10)
	cur := sampleSnapshot(4, 1600, 25)
	d := cur.Delta(prev)

	if d.Queued != cur.Queued {
		t.Errorf("Queued is a gauge, got %d", d.Queued)
	}
	if d.Rejected != 15 {
		t.Errorf("Rejected delta = %d, want 15", d.Rejected)
	}
	if d.CoreStats[0].Packets != 600 || d.CoreStats[1].Packets != 600 {
		t.Errorf("core packet deltas wrong: %+v", d.CoreStats)
	}
	if d.CoreStats[0].Handoffs != 1600/32-1000/32 {
		t.Errorf("handoff delta = %d", d.CoreStats[0].Handoffs)
	}
	if d.Rings[0].Rejected != 15 || d.Rings[0].Len != 2 || d.Rings[0].Cap != 4096 {
		t.Errorf("ring delta wrong: %+v", d.Rings[0])
	}
	if d.Elements[0].Counters["packets"] != 600 || d.Elements[0].Counters["bytes"] != 600*64 {
		t.Errorf("element counter delta wrong: %v", d.Elements[0].Counters)
	}
	if d.TotalPackets() != 1200 {
		t.Errorf("TotalPackets = %d, want 1200", d.TotalPackets())
	}

	// The inputs are untouched.
	if cur.Elements[0].Counters["packets"] != 1600 || prev.Elements[0].Counters["packets"] != 1000 {
		t.Error("Delta mutated its inputs")
	}
}

func TestSnapshotDeltaWire(t *testing.T) {
	prev := sampleSnapshot(4, 1000, 10)
	prev.Wire = &WireSnapshot{Mode: "mmsg", RxBatches: 10, RxFrames: 300, RxTruncated: 1, TxBatches: 8, TxFrames: 250}
	cur := sampleSnapshot(4, 1600, 25)
	cur.Wire = &WireSnapshot{Mode: "mmsg", RxBatches: 25, RxFrames: 800, RxTruncated: 3, TxBatches: 20, TxFrames: 640}
	d := cur.Delta(prev)
	if d.Wire == nil {
		t.Fatal("Wire dropped by Delta")
	}
	if d.Wire.Mode != "mmsg" {
		t.Errorf("Mode is a gauge, got %q", d.Wire.Mode)
	}
	if d.Wire.RxBatches != 15 || d.Wire.RxFrames != 500 || d.Wire.RxTruncated != 2 {
		t.Errorf("rx wire deltas wrong: %+v", d.Wire)
	}
	if d.Wire.TxBatches != 12 || d.Wire.TxFrames != 390 {
		t.Errorf("tx wire deltas wrong: %+v", d.Wire)
	}
	// One side missing → keep the cumulative view rather than invent a delta.
	cur2 := sampleSnapshot(4, 1600, 25)
	cur2.Wire = cur.Wire
	d2 := cur2.Delta(sampleSnapshot(4, 1000, 10))
	if d2.Wire == nil || d2.Wire.RxFrames != 800 {
		t.Errorf("Delta with no prev.Wire should keep cumulative counters: %+v", d2.Wire)
	}
}

func TestSumNodesWire(t *testing.T) {
	nodes := []NodeStats{
		{ID: 0, Egressed: 5, Ingress: Snapshot{Wire: &WireSnapshot{RxBatches: 4, RxFrames: 100, TxBatches: 3, TxFrames: 90}}},
		{ID: 1, Egressed: 7, Ingress: Snapshot{Wire: &WireSnapshot{RxBatches: 6, RxFrames: 150, TxBatches: 5, TxFrames: 120}}},
		{ID: 2, Egressed: 1}, // no wire block: contributes nothing
	}
	tot := SumNodes(nodes)
	if tot.Egressed != 13 {
		t.Errorf("Egressed = %d, want 13", tot.Egressed)
	}
	if tot.WireRxBatches != 10 || tot.WireRxFrames != 250 || tot.WireTxBatches != 8 || tot.WireTxFrames != 210 {
		t.Errorf("wire totals wrong: %+v", tot)
	}
}

func TestSnapshotDeltaGenerationBoundary(t *testing.T) {
	prev := sampleSnapshot(4, 1000, 10)
	cur := sampleSnapshot(5, 200, 2) // counters restarted after a reload
	d := cur.Delta(prev)
	if d.CoreStats[0].Packets != 200 || d.Rejected != 2 {
		t.Errorf("Delta across generations must return the new snapshot unchanged: %+v", d)
	}
}

func TestImbalanceRatio(t *testing.T) {
	s := Snapshot{CoreStats: []CoreSnapshot{
		{Core: 0, Packets: 300},
		{Core: 1, Packets: 100},
	}}
	// max 300 over mean 200.
	if got := s.ImbalanceRatio(); got != 1.5 {
		t.Errorf("ImbalanceRatio = %v, want 1.5", got)
	}
	if got := (Snapshot{}).ImbalanceRatio(); got != 0 {
		t.Errorf("empty snapshot imbalance = %v, want 0", got)
	}
	idle := Snapshot{CoreStats: []CoreSnapshot{{Core: 0}, {Core: 1}}}
	if got := idle.ImbalanceRatio(); got != 0 {
		t.Errorf("idle snapshot imbalance = %v, want 0", got)
	}
}

// TestDeltaImbalance proves Delta exposes the interval's skew, not the
// cumulative one: a history-balanced pipeline whose latest interval
// sent everything to core 0 must read as fully imbalanced.
func TestDeltaImbalance(t *testing.T) {
	prev := sampleSnapshot(4, 1000, 10)
	cur := sampleSnapshot(4, 1000, 10)
	cur.CoreStats[0].Packets = 1600 // +600 on core 0, +0 on core 1
	d := cur.Delta(prev)
	if d.Imbalance != 2 {
		t.Errorf("interval imbalance = %v, want 2 (all growth on one of two cores)", d.Imbalance)
	}
	// Across a generation boundary the new snapshot's own (cumulative)
	// ratio is reported.
	gen := sampleSnapshot(5, 200, 0)
	if got := gen.Delta(prev).Imbalance; got != gen.ImbalanceRatio() {
		t.Errorf("generation-boundary imbalance = %v, want %v", got, gen.ImbalanceRatio())
	}
}

func TestSnapshotDeltaSaturates(t *testing.T) {
	prev := sampleSnapshot(4, 1000, 10)
	cur := sampleSnapshot(4, 500, 3) // impossible within a generation; clamp
	d := cur.Delta(prev)
	if d.CoreStats[0].Packets != 0 || d.Rejected != 0 {
		t.Errorf("backward counters must clamp to 0: %+v", d)
	}
}
