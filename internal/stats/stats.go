// Package stats provides the measurement instruments of the evaluation:
// the reordered-sequence metric of §6.2, latency histograms with
// percentiles, and rate accounting helpers shared by the experiment
// harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// ReorderMeter implements the paper's reordering metric (§6.2): per
// TCP/UDP flow, packets enter the cluster in sequence; on exit, a
// maximal run of packets that arrive with sequence numbers below the
// highest already seen counts as one reordered sequence. For the paper's
// example — enter ⟨p1..p5⟩, exit ⟨p1,p4,p2,p3,p5⟩ — the run ⟨p2,p3⟩ is
// one reordered sequence.
//
// The reported fraction is reordered sequences / total packets observed,
// the normalization that makes "0.15% reordering" a per-traffic (not
// per-flow) statement.
type ReorderMeter struct {
	flows map[uint64]*flowOrder

	packets   uint64
	sequences uint64 // reordered runs
	latePkts  uint64
}

type flowOrder struct {
	maxSeq    uint64
	seen      bool
	inLateRun bool
}

// NewReorderMeter returns an empty meter.
func NewReorderMeter() *ReorderMeter {
	return &ReorderMeter{flows: make(map[uint64]*flowOrder)}
}

// Observe records a packet of the given flow exiting the cluster with
// its ingress-assigned sequence number.
func (m *ReorderMeter) Observe(flow uint64, seq uint64) {
	m.packets++
	f := m.flows[flow]
	if f == nil {
		f = &flowOrder{}
		m.flows[flow] = f
	}
	if !f.seen || seq > f.maxSeq {
		f.maxSeq = seq
		f.seen = true
		f.inLateRun = false
		return
	}
	// Late packet: part of a reordered run.
	m.latePkts++
	if !f.inLateRun {
		m.sequences++
		f.inLateRun = true
	}
}

// Packets reports total packets observed.
func (m *ReorderMeter) Packets() uint64 { return m.packets }

// ReorderedSequences reports the count of reordered runs.
func (m *ReorderMeter) ReorderedSequences() uint64 { return m.sequences }

// LatePackets reports packets that arrived after a higher sequence
// number of their flow.
func (m *ReorderMeter) LatePackets() uint64 { return m.latePkts }

// Flows reports the number of distinct flows observed.
func (m *ReorderMeter) Flows() int { return len(m.flows) }

// Fraction reports reordered sequences over total packets.
func (m *ReorderMeter) Fraction() float64 {
	if m.packets == 0 {
		return 0
	}
	return float64(m.sequences) / float64(m.packets)
}

// String renders the meter like the paper quotes it.
func (m *ReorderMeter) String() string {
	return fmt.Sprintf("%.3f%% reordered sequences (%d runs / %d pkts, %d flows)",
		100*m.Fraction(), m.sequences, m.packets, len(m.flows))
}

// Histogram is a fixed-range linear histogram with overflow tracking,
// used for latency distributions. Values are float64 in any unit; the
// caller picks the range.
type Histogram struct {
	lo, hi  float64
	buckets []uint64
	over    uint64
	under   uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram builds a histogram over [lo, hi) with n buckets.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram range [%g,%g)x%d", lo, hi, n))
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]uint64, n),
		min: math.Inf(1), max: math.Inf(-1)}
}

// Add records a value.
func (h *Histogram) Add(v float64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		idx := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		h.buckets[idx]++
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean reports the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min reports the smallest sample (+Inf when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max reports the largest sample (-Inf when empty).
func (h *Histogram) Max() float64 { return h.max }

// Percentile returns an upper bound on the p-quantile (0 < p ≤ 1) using
// bucket upper edges; underflow maps to lo, overflow to max.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	if h.under >= target {
		return h.lo
	}
	cum = h.under
	width := (h.hi - h.lo) / float64(len(h.buckets))
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			return h.lo + float64(i+1)*width
		}
	}
	return h.max
}

// Series is a growing sample list with exact quantiles, for smaller
// sample sets where memory doesn't matter.
type Series struct {
	vals   []float64
	sorted bool
}

// Add appends a sample.
func (s *Series) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// Len reports the sample count.
func (s *Series) Len() int { return len(s.vals) }

// Mean reports the sample mean.
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Quantile returns the exact p-quantile (nearest-rank).
func (s *Series) Quantile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	idx := int(math.Ceil(p*float64(len(s.vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.vals) {
		idx = len(s.vals) - 1
	}
	return s.vals[idx]
}

// Gbps converts packets/sec at a byte size to Gbps.
func Gbps(pps float64, bytes float64) float64 { return pps * bytes * 8 / 1e9 }

// Mpps converts packets/sec to Mpps.
func Mpps(pps float64) float64 { return pps / 1e6 }
