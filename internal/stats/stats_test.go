package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// The paper's own example: enter ⟨p1..p5⟩, exit ⟨p1,p4,p2,p3,p5⟩ — one
// reordered sequence (the run p2,p3).
func TestReorderPaperExample(t *testing.T) {
	m := NewReorderMeter()
	for _, seq := range []uint64{1, 4, 2, 3, 5} {
		m.Observe(7, seq)
	}
	if m.ReorderedSequences() != 1 {
		t.Fatalf("sequences = %d, want 1", m.ReorderedSequences())
	}
	if m.LatePackets() != 2 {
		t.Fatalf("late = %d, want 2", m.LatePackets())
	}
	if m.Packets() != 5 || m.Flows() != 1 {
		t.Fatalf("packets/flows = %d/%d", m.Packets(), m.Flows())
	}
	if got := m.Fraction(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("fraction = %g, want 0.2", got)
	}
}

func TestReorderInOrderIsClean(t *testing.T) {
	m := NewReorderMeter()
	for f := uint64(0); f < 10; f++ {
		for s := uint64(0); s < 100; s++ {
			m.Observe(f, s)
		}
	}
	if m.ReorderedSequences() != 0 || m.Fraction() != 0 {
		t.Fatalf("in-order traffic measured as reordered: %v", m)
	}
}

func TestReorderSeparateRuns(t *testing.T) {
	m := NewReorderMeter()
	// Two separate late runs: ⟨1,3,2,4,6,5⟩ → runs (2) and (5).
	for _, seq := range []uint64{1, 3, 2, 4, 6, 5} {
		m.Observe(1, seq)
	}
	if m.ReorderedSequences() != 2 {
		t.Fatalf("sequences = %d, want 2", m.ReorderedSequences())
	}
}

func TestReorderPerFlowIsolation(t *testing.T) {
	m := NewReorderMeter()
	// Interleaved flows, each internally in order.
	m.Observe(1, 1)
	m.Observe(2, 1)
	m.Observe(1, 2)
	m.Observe(2, 2)
	if m.ReorderedSequences() != 0 {
		t.Fatal("cross-flow interleaving counted as reordering")
	}
}

func TestReorderSeqZeroHandled(t *testing.T) {
	m := NewReorderMeter()
	m.Observe(1, 0) // first packet with seq 0 must not count as late
	m.Observe(1, 1)
	if m.ReorderedSequences() != 0 {
		t.Fatal("seq 0 first packet miscounted")
	}
	m.Observe(1, 0) // now it is late
	if m.ReorderedSequences() != 1 {
		t.Fatal("duplicate/late seq 0 not counted")
	}
}

// Property: fraction is 0 iff no late packets; sequences ≤ late packets ≤
// packets.
func TestPropertyReorderBounds(t *testing.T) {
	f := func(seqs []uint16) bool {
		m := NewReorderMeter()
		for _, s := range seqs {
			m.Observe(uint64(s)%3, uint64(s)/3)
		}
		if m.ReorderedSequences() > m.LatePackets() {
			return false
		}
		if m.LatePackets() > m.Packets() {
			return false
		}
		return (m.Fraction() == 0) == (m.ReorderedSequences() == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-49.5) > 1e-9 {
		t.Fatalf("mean = %g", got)
	}
	if h.Min() != 0 || h.Max() != 99 {
		t.Fatalf("min/max = %g/%g", h.Min(), h.Max())
	}
	// Median upper bound: value 50 lives in bucket [50,60).
	if p := h.Percentile(0.5); p < 50 || p > 60 {
		t.Fatalf("p50 = %g", p)
	}
	if p := h.Percentile(1.0); p != 100 {
		t.Fatalf("p100 = %g (bucket upper edge)", p)
	}
}

func TestHistogramOverUnderflow(t *testing.T) {
	h := NewHistogram(10, 20, 5)
	h.Add(5)  // underflow
	h.Add(25) // overflow
	h.Add(15) // in range
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if p := h.Percentile(0.01); p != 10 {
		t.Fatalf("underflow percentile = %g, want lo", p)
	}
	if p := h.Percentile(1.0); p != 25 {
		t.Fatalf("overflow percentile = %g, want max", p)
	}
}

func TestHistogramPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad range accepted")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestSeriesQuantiles(t *testing.T) {
	var s Series
	vals := rand.New(rand.NewSource(1)).Perm(1000)
	for _, v := range vals {
		s.Add(float64(v))
	}
	if s.Len() != 1000 {
		t.Fatalf("len = %d", s.Len())
	}
	if q := s.Quantile(0.5); q != 499 {
		t.Fatalf("median = %g, want 499", q)
	}
	if q := s.Quantile(1.0); q != 999 {
		t.Fatalf("max = %g", q)
	}
	if q := s.Quantile(0.001); q != 0 {
		t.Fatalf("min-ish = %g", q)
	}
	if m := s.Mean(); math.Abs(m-499.5) > 1e-9 {
		t.Fatalf("mean = %g", m)
	}
}

// Property: histogram percentile is an upper bound consistent with exact
// Series quantiles for in-range data.
func TestPropertyHistogramVsSeries(t *testing.T) {
	f := func(raw []uint8, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := 0.01 + float64(pRaw%100)/101.0
		h := NewHistogram(0, 256, 64)
		var s Series
		for _, v := range raw {
			h.Add(float64(v))
			s.Add(float64(v))
		}
		exact := s.Quantile(p)
		bound := h.Percentile(p)
		// The bucket upper edge is ≥ the exact quantile and within one
		// bucket width (4.0) of it.
		return bound >= exact && bound-exact <= 4.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConversions(t *testing.T) {
	if g := Gbps(1e6, 125); g != 1 {
		t.Fatalf("Gbps = %g", g)
	}
	if m := Mpps(2.5e6); m != 2.5 {
		t.Fatalf("Mpps = %g", m)
	}
}
