package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	n := e.RunAll()
	if n != 3 {
		t.Fatalf("fired %d events, want 3", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v, want [1 2 3]", order)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.RunAll()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("equal-time events did not fire in scheduling order: %v", order[:10])
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	e := New()
	var at Time
	e.Schedule(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 150 {
		t.Fatalf("nested After fired at %v, want 150", at)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", e.Fired())
	}
}

func TestRunHorizon(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	n := e.Run(10)
	if n != 2 {
		t.Fatalf("Run(10) fired %d, want 2", n)
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	// Horizon-inclusive: event at exactly 10 ran.
	if len(fired) != 2 || fired[1] != 10 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestHalt(t *testing.T) {
	e := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i, func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.RunAll()
	if count != 3 {
		t.Fatalf("halted run executed %d events, want 3", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestAdvanceTo(t *testing.T) {
	e := New()
	e.AdvanceTo(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
	e.Schedule(200, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo past a pending event did not panic")
		}
	}()
	e.AdvanceTo(300)
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	ev := e.Schedule(1, func() {})
	ev.Cancel()
	if e.Step() {
		t.Fatal("Step with only cancelled events returned true")
	}
}

// Property: any batch of randomly timed events fires in nondecreasing time
// order and the clock ends at the max scheduled time.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := New()
		var fired []Time
		var max Time
		for _, d := range delays {
			at := Time(d)
			if at > max {
				max = at
			}
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving Schedule calls from inside running events keeps
// the causal order (an event never observes a clock earlier than its
// scheduling time).
func TestPropertyNestedScheduling(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := New()
	violations := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		if depth > 3 {
			return
		}
		base := e.Now()
		d := Time(rng.Intn(1000))
		e.After(d, func() {
			if e.Now() < base+d {
				violations++
			}
			spawn(depth + 1)
		})
	}
	for i := 0; i < 50; i++ {
		spawn(0)
	}
	e.RunAll()
	if violations != 0 {
		t.Fatalf("%d causality violations", violations)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if e.Pending() > 1024 {
			e.Run(e.Now() + 500)
		}
	}
	e.RunAll()
}
