// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate under every timed experiment in this
// repository: NIC DMA transfers, batching timeouts, per-hop link latencies
// and core processing delays are all scheduled as events on a virtual
// clock. Determinism matters — two runs with the same seed must produce
// identical packet orderings so that reordering measurements (§6.2 of the
// RouteBricks paper) are reproducible. Ties in event time are broken by a
// monotonically increasing sequence number.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, counted in nanoseconds from the start
// of the simulation. It deliberately mirrors time.Duration's resolution so
// conversions are trivial, but it is a distinct type: virtual time never
// flows from the wall clock.
type Time int64

// Common virtual-time unit constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time; it is used as the
// horizon for unbounded runs.
const MaxTime = Time(math.MaxInt64)

// Duration converts a virtual time span into a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	return time.Duration(t).String()
}

// Event is a scheduled callback. Events fire in timestamp order; events
// with equal timestamps fire in scheduling order.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index; -1 when not queued
	cancel bool
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.cancel = true }

// eventQueue is a binary min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending event set. The zero value
// is not ready to use; call New.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	fired  uint64
	halted bool
}

// New returns an engine with the clock at zero and no pending events.
func New() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics: it would silently reorder causality, which in a
// router simulation means corrupting reordering statistics.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run d after the current virtual time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains, the horizon passes, or Halt
// is called. Events scheduled exactly at the horizon still run. It returns
// the number of events executed.
func (e *Engine) Run(horizon Time) uint64 {
	e.halted = false
	start := e.fired
	for !e.halted && len(e.queue) > 0 {
		if e.queue[0].at > horizon {
			break
		}
		e.Step()
	}
	return e.fired - start
}

// RunAll executes events until none remain or Halt is called.
func (e *Engine) RunAll() uint64 { return e.Run(MaxTime) }

// AdvanceTo moves the clock forward to at without executing anything.
// It panics if events earlier than at are still pending, or if at is in
// the past.
func (e *Engine) AdvanceTo(at Time) {
	if at < e.now {
		panic(fmt.Sprintf("sim: advance to %v before now %v", at, e.now))
	}
	if len(e.queue) > 0 && e.queue[0].at < at {
		panic(fmt.Sprintf("sim: advance to %v would skip event at %v", at, e.queue[0].at))
	}
	e.now = at
}
