// Package pcap reads and writes classic libpcap capture files (the
// pre-pcapng format every analysis tool accepts). The router uses it to
// dump traffic at tap points — simulated runs stamp virtual time, the
// UDP router stamps wall time — so captures can be inspected with
// standard tooling.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Magic is the little-endian microsecond-resolution pcap magic.
const Magic = 0xa1b2c3d4

// LinkTypeEthernet is DLT_EN10MB.
const LinkTypeEthernet = 1

const (
	globalHdrLen = 24
	recordHdrLen = 16
	// DefaultSnapLen captures whole frames at any size we generate.
	DefaultSnapLen = 65535
)

// Writer emits a pcap stream.
type Writer struct {
	w       io.Writer
	snaplen uint32
	wrote   uint64
}

// NewWriter writes the global header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [globalHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // minor
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:20], DefaultSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: write header: %w", err)
	}
	return &Writer{w: w, snaplen: DefaultSnapLen}, nil
}

// WritePacket records one frame with a timestamp in nanoseconds.
func (w *Writer) WritePacket(tsNanos int64, frame []byte) error {
	incl := len(frame)
	if uint32(incl) > w.snaplen {
		incl = int(w.snaplen)
	}
	var hdr [recordHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(tsNanos/1e9))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(tsNanos%1e9/1e3))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(incl))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(frame)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: write record header: %w", err)
	}
	if _, err := w.w.Write(frame[:incl]); err != nil {
		return fmt.Errorf("pcap: write record: %w", err)
	}
	w.wrote++
	return nil
}

// Count reports packets written.
func (w *Writer) Count() uint64 { return w.wrote }

// Record is one captured frame.
type Record struct {
	TsNanos int64
	OrigLen int
	Data    []byte
}

// Reader consumes a pcap stream.
type Reader struct {
	r       io.Reader
	snaplen uint32
}

// NewReader validates the global header and returns a Reader. Only the
// little-endian microsecond format this package writes is accepted.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [globalHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != Magic {
		return nil, fmt.Errorf("pcap: bad magic %#x", got)
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Reader{r: r, snaplen: binary.LittleEndian.Uint32(hdr[16:20])}, nil
}

// Next returns the next record, or io.EOF at a clean end of stream.
func (r *Reader) Next() (Record, error) {
	var hdr [recordHdrLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("pcap: read record header: %w", err)
	}
	sec := binary.LittleEndian.Uint32(hdr[0:4])
	usec := binary.LittleEndian.Uint32(hdr[4:8])
	incl := binary.LittleEndian.Uint32(hdr[8:12])
	orig := binary.LittleEndian.Uint32(hdr[12:16])
	if incl > r.snaplen {
		return Record{}, fmt.Errorf("pcap: record length %d exceeds snaplen %d", incl, r.snaplen)
	}
	data := make([]byte, incl)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("pcap: read record body: %w", err)
	}
	return Record{
		TsNanos: int64(sec)*1e9 + int64(usec)*1e3,
		OrigLen: int(orig),
		Data:    data,
	}, nil
}

// ReadAll drains the stream.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
