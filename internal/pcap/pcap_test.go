package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"net/netip"
	"testing"
	"testing/quick"

	"routebricks/internal/pkt"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{}
	for i := 0; i < 10; i++ {
		p := pkt.New(64+i*100, netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"),
			uint16(i), 80)
		frames = append(frames, p.Data)
		if err := w.WritePacket(int64(i)*1e6, p.Data); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 10 {
		t.Fatalf("Count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("read %d records", len(recs))
	}
	for i, rec := range recs {
		if !bytes.Equal(rec.Data, frames[i]) {
			t.Fatalf("record %d data mismatch", i)
		}
		if rec.OrigLen != len(frames[i]) {
			t.Fatalf("record %d origlen = %d", i, rec.OrigLen)
		}
		// Microsecond resolution: the nanosecond timestamp round-trips to
		// the µs it was written at.
		if rec.TsNanos != int64(i)*1e6 {
			t.Fatalf("record %d ts = %d", i, rec.TsNanos)
		}
	}
}

func TestGlobalHeaderShape(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	h := buf.Bytes()
	if len(h) != 24 {
		t.Fatalf("header length = %d", len(h))
	}
	if binary.LittleEndian.Uint32(h[0:4]) != Magic {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint16(h[4:6]) != 2 || binary.LittleEndian.Uint16(h[6:8]) != 4 {
		t.Fatal("bad version")
	}
	if binary.LittleEndian.Uint32(h[20:24]) != LinkTypeEthernet {
		t.Fatal("bad link type")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pcap file at all......"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestNextEOF(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	p := pkt.New(100, netip.MustParseAddr("1.1.1.1"), netip.MustParseAddr("2.2.2.2"), 1, 2)
	w.WritePacket(0, p.Data)
	trunc := buf.Bytes()[:buf.Len()-10]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated record err = %v, want hard error", err)
	}
}

// Property: any byte payloads round-trip.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		kept := 0
		for i, pl := range payloads {
			if len(pl) == 0 {
				continue
			}
			if err := w.WritePacket(int64(i)*1000, pl); err != nil {
				return false
			}
			kept++
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		recs, err := r.ReadAll()
		if err != nil || len(recs) != kept {
			return false
		}
		j := 0
		for _, pl := range payloads {
			if len(pl) == 0 {
				continue
			}
			if !bytes.Equal(recs[j].Data, pl) {
				return false
			}
			j++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
