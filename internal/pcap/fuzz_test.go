package pcap

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader asserts the pcap reader survives arbitrary byte streams:
// no panics, no unbounded allocations (the snaplen check), and clean
// errors.
func FuzzReader(f *testing.F) {
	var good bytes.Buffer
	w, _ := NewWriter(&good)
	w.WritePacket(123456789, []byte("hello world frame"))
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xd4, 0xc3, 0xb2, 0xa1}) // byte-swapped magic
	truncated := good.Bytes()[:len(good.Bytes())-5]
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			_, err := r.Next()
			if err == io.EOF || err != nil {
				return
			}
		}
	})
}
