package lpm

import "net/netip"

// Trie is a binary (unibit) trie LPM engine. It is the baseline the paper
// era's software routers shipped before compressed schemes; here it serves
// as the obviously-correct reference implementation and as the comparison
// point for the LPM ablation benchmark.
type Trie struct {
	root *trieNode
	n    int
}

type trieNode struct {
	child   [2]*trieNode
	nextHop int
	valid   bool
}

// NewTrie returns an empty trie.
func NewTrie() *Trie {
	return &Trie{root: &trieNode{}}
}

// Insert adds or replaces a route.
func (t *Trie) Insert(p netip.Prefix, nextHop int) error {
	addr, bits, err := validate(p, nextHop)
	if err != nil {
		return err
	}
	node := t.root
	for i := 0; i < bits; i++ {
		b := (addr >> (31 - i)) & 1
		if node.child[b] == nil {
			node.child[b] = &trieNode{}
		}
		node = node.child[b]
	}
	if !node.valid {
		t.n++
	}
	node.valid = true
	node.nextHop = nextHop
	return nil
}

// Lookup walks the trie remembering the deepest valid node.
func (t *Trie) Lookup(dst uint32) int {
	best := NoRoute
	node := t.root
	for i := 0; node != nil; i++ {
		if node.valid {
			best = node.nextHop
		}
		if i == 32 {
			break
		}
		node = node.child[(dst>>(31-i))&1]
	}
	return best
}

// Len reports the number of installed prefixes.
func (t *Trie) Len() int { return t.n }
