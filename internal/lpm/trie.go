package lpm

import "net/netip"

// Trie is a binary (unibit) trie LPM engine. It is the baseline the paper
// era's software routers shipped before compressed schemes; here it serves
// as the obviously-correct reference implementation and as the comparison
// point for the LPM ablation benchmark.
type Trie struct {
	root *trieNode
	n    int
}

type trieNode struct {
	child   [2]*trieNode
	nextHop int
	valid   bool
}

// NewTrie returns an empty trie.
func NewTrie() *Trie {
	return &Trie{root: &trieNode{}}
}

// Insert adds or replaces a route.
func (t *Trie) Insert(p netip.Prefix, nextHop int) error {
	addr, bits, err := validate(p, nextHop)
	if err != nil {
		return err
	}
	node := t.root
	for i := 0; i < bits; i++ {
		b := (addr >> (31 - i)) & 1
		if node.child[b] == nil {
			node.child[b] = &trieNode{}
		}
		node = node.child[b]
	}
	if !node.valid {
		t.n++
	}
	node.valid = true
	node.nextHop = nextHop
	return nil
}

// Remove withdraws a route, pruning emptied branches so sustained churn
// does not grow the trie without bound. It reports whether the prefix was
// installed.
func (t *Trie) Remove(p netip.Prefix) bool {
	addr, bits, err := validate(p, 0)
	if err != nil {
		return false
	}
	// Record the path so emptied nodes can be unlinked on the way back.
	path := make([]*trieNode, bits+1)
	node := t.root
	path[0] = node
	for i := 0; i < bits; i++ {
		node = node.child[(addr>>(31-i))&1]
		if node == nil {
			return false
		}
		path[i+1] = node
	}
	if !node.valid {
		return false
	}
	node.valid = false
	t.n--
	for i := bits; i > 0; i-- {
		n := path[i]
		if n.valid || n.child[0] != nil || n.child[1] != nil {
			break
		}
		path[i-1].child[(addr>>(32-i))&1] = nil
	}
	return true
}

// Lookup walks the trie remembering the deepest valid node.
func (t *Trie) Lookup(dst uint32) int {
	best := NoRoute
	node := t.root
	for i := 0; node != nil; i++ {
		if node.valid {
			best = node.nextHop
		}
		if i == 32 {
			break
		}
		node = node.child[(dst>>(31-i))&1]
	}
	return best
}

// Len reports the number of installed prefixes.
func (t *Trie) Len() int { return t.n }
