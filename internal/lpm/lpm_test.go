package lpm

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func ip(s string) uint32 {
	b := netip.MustParseAddr(s).As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// engines returns one of each implementation, fresh.
func engines() map[string]Engine {
	return map[string]Engine{
		"trie":   NewTrie(),
		"dir248": NewDir248(),
	}
}

func TestEmptyTable(t *testing.T) {
	for name, e := range engines() {
		if got := e.Lookup(ip("8.8.8.8")); got != NoRoute {
			t.Errorf("%s: empty lookup = %d, want NoRoute", name, got)
		}
		if e.Len() != 0 {
			t.Errorf("%s: Len = %d, want 0", name, e.Len())
		}
	}
}

func TestBasicLongestMatch(t *testing.T) {
	routes := []Route{
		{pfx("0.0.0.0/0"), 1},
		{pfx("10.0.0.0/8"), 2},
		{pfx("10.1.0.0/16"), 3},
		{pfx("10.1.2.0/24"), 4},
		{pfx("10.1.2.128/25"), 5},
		{pfx("10.1.2.129/32"), 6},
	}
	cases := []struct {
		dst  string
		want int
	}{
		{"192.168.1.1", 1},
		{"10.200.0.1", 2},
		{"10.1.99.99", 3},
		{"10.1.2.1", 4},
		{"10.1.2.200", 5},
		{"10.1.2.129", 6},
		{"10.1.2.127", 4},
	}
	for name, e := range engines() {
		if err := Build(e, routes); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e.Len() != len(routes) {
			t.Errorf("%s: Len = %d, want %d", name, e.Len(), len(routes))
		}
		for _, c := range cases {
			if got := e.Lookup(ip(c.dst)); got != c.want {
				t.Errorf("%s: Lookup(%s) = %d, want %d", name, c.dst, got, c.want)
			}
		}
	}
}

func TestNoDefaultRoute(t *testing.T) {
	for name, e := range engines() {
		if err := e.Insert(pfx("10.0.0.0/8"), 7); err != nil {
			t.Fatal(err)
		}
		if got := e.Lookup(ip("11.0.0.1")); got != NoRoute {
			t.Errorf("%s: uncovered lookup = %d, want NoRoute", name, got)
		}
	}
}

func TestReplaceRoute(t *testing.T) {
	for name, e := range engines() {
		must(t, e.Insert(pfx("10.0.0.0/8"), 1))
		must(t, e.Insert(pfx("10.0.0.0/8"), 9))
		if e.Len() != 1 {
			t.Errorf("%s: Len after replace = %d, want 1", name, e.Len())
		}
		if got := e.Lookup(ip("10.1.1.1")); got != 9 {
			t.Errorf("%s: replaced route lookup = %d, want 9", name, got)
		}
	}
}

func TestHostRoutes(t *testing.T) {
	for name, e := range engines() {
		must(t, e.Insert(pfx("1.2.3.4/32"), 5))
		if got := e.Lookup(ip("1.2.3.4")); got != 5 {
			t.Errorf("%s: /32 exact = %d, want 5", name, got)
		}
		if got := e.Lookup(ip("1.2.3.5")); got != NoRoute {
			t.Errorf("%s: /32 neighbor = %d, want NoRoute", name, got)
		}
	}
}

func TestUnnormalizedPrefix(t *testing.T) {
	// Host bits set in the prefix address must be masked.
	for name, e := range engines() {
		p := netip.PrefixFrom(netip.MustParseAddr("10.1.2.3"), 16)
		must(t, e.Insert(p, 3))
		if got := e.Lookup(ip("10.1.200.200")); got != 3 {
			t.Errorf("%s: unnormalized insert lookup = %d, want 3", name, got)
		}
	}
}

func TestRejectIPv6AndBadHop(t *testing.T) {
	for name, e := range engines() {
		if err := e.Insert(netip.MustParsePrefix("2001:db8::/32"), 1); err == nil {
			t.Errorf("%s: IPv6 insert accepted", name)
		}
		if err := e.Insert(pfx("10.0.0.0/8"), -1); err == nil {
			t.Errorf("%s: negative hop accepted", name)
		}
	}
}

func TestDir248BlockInheritance(t *testing.T) {
	// A /26 inside a /16: addresses in the same /24 but outside the /26
	// must fall back to the /16's hop via block inheritance.
	d := NewDir248()
	must(t, d.Insert(pfx("10.1.0.0/16"), 1))
	must(t, d.Insert(pfx("10.1.2.64/26"), 2))
	if got := d.Lookup(ip("10.1.2.65")); got != 2 {
		t.Fatalf("inside /26 = %d, want 2", got)
	}
	if got := d.Lookup(ip("10.1.2.1")); got != 1 {
		t.Fatalf("outside /26, same /24 = %d, want 1", got)
	}
	if got := d.Lookup(ip("10.1.3.1")); got != 1 {
		t.Fatalf("other /24 = %d, want 1", got)
	}
}

func TestDir248IncrementalInsertAfterLookup(t *testing.T) {
	d := NewDir248()
	must(t, d.Insert(pfx("10.0.0.0/8"), 1))
	if got := d.Lookup(ip("10.9.9.9")); got != 1 {
		t.Fatalf("first lookup = %d", got)
	}
	// Insert after a lookup forces a lazy rebuild.
	must(t, d.Insert(pfx("10.9.0.0/16"), 2))
	if got := d.Lookup(ip("10.9.9.9")); got != 2 {
		t.Fatalf("post-rebuild lookup = %d, want 2", got)
	}
}

func TestDir248TwoLongPrefixesSameBlock(t *testing.T) {
	d := NewDir248()
	must(t, d.Insert(pfx("10.1.2.0/30"), 1))
	must(t, d.Insert(pfx("10.1.2.128/25"), 2))
	must(t, d.Insert(pfx("10.1.2.130/31"), 3))
	checks := []struct {
		dst  string
		want int
	}{
		{"10.1.2.0", 1}, {"10.1.2.3", 1}, {"10.1.2.4", NoRoute},
		{"10.1.2.128", 2}, {"10.1.2.200", 2},
		{"10.1.2.130", 3}, {"10.1.2.131", 3}, {"10.1.2.132", 2},
	}
	for _, c := range checks {
		if got := d.Lookup(ip(c.dst)); got != c.want {
			t.Errorf("Lookup(%s) = %d, want %d", c.dst, got, c.want)
		}
	}
	if nb := len(d.tblLong); nb != 1 {
		t.Errorf("long blocks = %d, want 1", nb)
	}
}

func TestRandomTableProperties(t *testing.T) {
	routes := RandomTable(5000, 16, 1, true)
	if len(routes) != 5000 {
		t.Fatalf("generated %d routes", len(routes))
	}
	if routes[0].Prefix.Bits() != 0 {
		t.Fatal("first route is not the default route")
	}
	// Deterministic in seed.
	again := RandomTable(5000, 16, 1, true)
	for i := range routes {
		if routes[i] != again[i] {
			t.Fatalf("RandomTable not deterministic at %d", i)
		}
	}
	counts := map[int]int{}
	for _, r := range routes {
		counts[r.Prefix.Bits()]++
	}
	if counts[24] < 2000 {
		t.Errorf("/24 population = %d, want majority-ish", counts[24])
	}
}

// Cross-check: Dir248 agrees with the trie on every lookup over a random
// 20K-route table and random + adversarial (route-boundary) probes.
func TestDir248MatchesTrie(t *testing.T) {
	routes := RandomTable(20000, 64, 42, true)
	tr := NewTrie()
	d := NewDir248()
	must(t, Build(tr, routes))
	must(t, Build(d, routes))
	d.Freeze()

	rng := rand.New(rand.NewSource(99))
	probes := make([]uint32, 0, 60000)
	for i := 0; i < 30000; i++ {
		probes = append(probes, rng.Uint32())
	}
	for _, r := range routes[:10000] {
		a := r.Prefix.Addr().As4()
		base := uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
		probes = append(probes, base, base+1, base-1)
	}
	for _, p := range probes {
		if got, want := d.Lookup(p), tr.Lookup(p); got != want {
			t.Fatalf("divergence at %d.%d.%d.%d: dir248=%d trie=%d",
				p>>24, p>>16&0xFF, p>>8&0xFF, p&0xFF, got, want)
		}
	}
}

// Property: for random small route sets, both engines agree everywhere.
func TestPropertyEnginesAgree(t *testing.T) {
	f := func(seed int64, probes []uint32) bool {
		routes := RandomTable(200, 8, seed, seed%2 == 0)
		tr := NewTrie()
		d := NewDir248()
		if Build(tr, routes) != nil || Build(d, routes) != nil {
			return false
		}
		for _, p := range probes {
			if d.Lookup(p) != tr.Lookup(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDir248MemoryFootprint(t *testing.T) {
	d := NewDir248()
	if got := d.MemoryFootprint(); got != 0 {
		t.Fatalf("empty footprint = %d, want 0 (no pages materialized)", got)
	}
	// One /25 materializes exactly one 2^16-entry page plus one long block.
	must(t, d.Insert(pfx("10.1.2.128/25"), 1))
	d.Freeze()
	if got, want := d.MemoryFootprint(), 4*tbl24PageSize+4*256; got != want {
		t.Fatalf("footprint after one long block = %d, want %d", got, want)
	}
	// A fully painted table costs the classic 64 MB of uint32s.
	must(t, d.Insert(pfx("0.0.0.0/0"), 2))
	d.Freeze()
	if got, want := d.MemoryFootprint(), 4*(1<<24)+4*256; got != want {
		t.Fatalf("full footprint = %d, want %d", got, want)
	}
}

// The paper's table size: 256K routes must load and answer.
func Test256KTable(t *testing.T) {
	if testing.Short() {
		t.Skip("256K route build in -short mode")
	}
	routes := RandomTable(256*1024, 16, 7, true)
	d := NewDir248()
	must(t, Build(d, routes))
	d.Freeze()
	if d.Len() != 256*1024 {
		t.Fatalf("Len = %d", d.Len())
	}
	rng := rand.New(rand.NewSource(3))
	hits := 0
	for i := 0; i < 100000; i++ {
		if d.Lookup(rng.Uint32()) != NoRoute {
			hits++
		}
	}
	// Default route present: everything must resolve.
	if hits != 100000 {
		t.Fatalf("only %d/100000 lookups resolved with a default route", hits)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDir248Lookup(b *testing.B) {
	routes := RandomTable(256*1024, 16, 7, true)
	d := NewDir248()
	if err := Build(d, routes); err != nil {
		b.Fatal(err)
	}
	d.Freeze()
	rng := rand.New(rand.NewSource(3))
	dsts := make([]uint32, 4096)
	for i := range dsts {
		dsts[i] = rng.Uint32()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Lookup(dsts[i&4095])
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	routes := RandomTable(256*1024, 16, 7, true)
	tr := NewTrie()
	if err := Build(tr, routes); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	dsts := make([]uint32, 4096)
	for i := range dsts {
		dsts[i] = rng.Uint32()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(dsts[i&4095])
	}
}

func BenchmarkDir248Build256K(b *testing.B) {
	routes := RandomTable(256*1024, 16, 7, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDir248()
		if err := Build(d, routes); err != nil {
			b.Fatal(err)
		}
		d.Freeze()
	}
}
