package lpm

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// TestLiveTableBasic covers the single-writer surface: insert, replace,
// withdraw, generation accounting, and no-op batches.
func TestLiveTableBasic(t *testing.T) {
	lt, err := NewLiveTable()
	if err != nil {
		t.Fatal(err)
	}
	if lt.Generation() != 0 || lt.Len() != 0 {
		t.Fatalf("empty table: gen=%d len=%d", lt.Generation(), lt.Len())
	}
	if got := lt.Lookup(0x0a000001); got != NoRoute {
		t.Fatalf("empty lookup = %d", got)
	}

	if err := lt.Insert(mustPrefix("10.0.0.0/16"), 3); err != nil {
		t.Fatal(err)
	}
	if lt.Generation() != 1 || lt.Len() != 1 {
		t.Fatalf("after insert: gen=%d len=%d", lt.Generation(), lt.Len())
	}
	if got := lt.Lookup(0x0a000001); got != 3 {
		t.Fatalf("lookup = %d, want 3", got)
	}

	// Replacing with the identical route is a no-op commit.
	if gen, err := lt.Update([]Route{{mustPrefix("10.0.0.0/16"), 3}}, nil); err != nil || gen != 1 {
		t.Fatalf("identical re-add: gen=%d err=%v", gen, err)
	}
	// Withdrawing an absent route is a no-op too.
	if gen, err := lt.Update(nil, []netip.Prefix{mustPrefix("192.168.0.0/24")}); err != nil || gen != 1 {
		t.Fatalf("absent withdraw: gen=%d err=%v", gen, err)
	}

	// A mixed batch is one commit.
	gen, err := lt.Update(
		[]Route{{mustPrefix("10.1.0.0/24"), 7}, {mustPrefix("10.1.0.128/25"), 9}},
		[]netip.Prefix{mustPrefix("10.0.0.0/16")},
	)
	if err != nil || gen != 2 {
		t.Fatalf("batch: gen=%d err=%v", gen, err)
	}
	if got := lt.Lookup(0x0a000001); got != NoRoute {
		t.Fatalf("withdrawn route still matches: %d", got)
	}
	if got := lt.Lookup(0x0a010001); got != 7 {
		t.Fatalf("/24 lookup = %d, want 7", got)
	}
	if got := lt.Lookup(0x0a0100f0); got != 9 {
		t.Fatalf("/25 lookup = %d, want 9", got)
	}
	if lt.Len() != 2 {
		t.Fatalf("len = %d, want 2", lt.Len())
	}

	// Invalid batches leave the table untouched.
	if _, err := lt.Update([]Route{{mustPrefix("10.2.0.0/16"), -5}}, nil); err == nil {
		t.Fatal("negative next hop accepted")
	}
	if lt.Generation() != 2 || lt.Len() != 2 {
		t.Fatalf("failed batch mutated table: gen=%d len=%d", lt.Generation(), lt.Len())
	}

	routes := lt.Routes()
	if len(routes) != 2 || routes[0].Prefix != mustPrefix("10.1.0.0/24") || routes[1].Prefix != mustPrefix("10.1.0.128/25") {
		t.Fatalf("Routes() = %v", routes)
	}
}

// TestLiveTableMatchesTrie churns a LiveTable and an independent Trie with
// the same deterministic add/withdraw stream and cross-checks every commit
// against both the trie and a from-scratch Dir248 rebuild — the
// correctness gate for the incremental patch path (leaf repaint, block
// copy-on-write, block creation, and block orphaning all occur at this
// size).
func TestLiveTableMatchesTrie(t *testing.T) {
	const rounds = 24
	rng := rand.New(rand.NewSource(11))
	pool := RandomTable(4096, 8, 17, true)

	lt, err := NewLiveTable()
	if err != nil {
		t.Fatal(err)
	}
	ref := NewTrie()
	installed := make(map[netip.Prefix]int)

	probe := func(round int) {
		// Deterministic probes: route boundaries and random addresses.
		full := NewDir248()
		for p, hop := range installed {
			if err := full.Insert(p, hop); err != nil {
				t.Fatal(err)
			}
		}
		full.Freeze()
		snap := lt.Load()
		prng := rand.New(rand.NewSource(int64(round)))
		for i := 0; i < 4096; i++ {
			dst := prng.Uint32()
			want := ref.Lookup(dst)
			if got := snap.Lookup(dst); got != want {
				t.Fatalf("round %d: live lookup(%08x) = %d, trie says %d", round, dst, got, want)
			}
			if got := full.Lookup(dst); got != want {
				t.Fatalf("round %d: rebuilt lookup(%08x) = %d, trie says %d", round, dst, got, want)
			}
		}
		for _, r := range pool {
			a4 := r.Prefix.Addr().As4()
			dst := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
			if got, want := snap.Lookup(dst), ref.Lookup(dst); got != want {
				t.Fatalf("round %d: live lookup(%v) = %d, trie says %d", round, r.Prefix, got, want)
			}
		}
		if lt.Len() != len(installed) {
			t.Fatalf("round %d: len=%d, want %d", round, lt.Len(), len(installed))
		}
	}

	for round := 0; round < rounds; round++ {
		var adds []Route
		var dels []netip.Prefix
		for i := 0; i < 64; i++ {
			r := pool[rng.Intn(len(pool))]
			if _, ok := installed[r.Prefix]; ok && rng.Intn(2) == 0 {
				dels = append(dels, r.Prefix)
				delete(installed, r.Prefix)
				ref.Remove(r.Prefix)
			} else {
				hop := rng.Intn(8)
				adds = append(adds, Route{r.Prefix, hop})
				installed[r.Prefix] = hop
				if err := ref.Insert(r.Prefix, hop); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := lt.Update(adds, dels); err != nil {
			t.Fatal(err)
		}
		probe(round)
	}
}

// TestLiveTableFullRebuildFallback forces the wide-prefix path (a /8
// covers 65536 tbl24 slots; a /0 covers all of them) past patchSlotLimit
// and checks the rebuilt snapshot agrees with the trie.
func TestLiveTableFullRebuildFallback(t *testing.T) {
	lt, err := NewLiveTable(RandomTable(2048, 8, 23, false)...)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewTrie()
	if err := Build(ref, RandomTable(2048, 8, 23, false)); err != nil {
		t.Fatal(err)
	}

	// Nine /8s = 9*65536 slots > patchSlotLimit: must take full rebuild.
	var wide []Route
	for i := 0; i < 9; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(16 + i), 0, 0, 0}), 8)
		wide = append(wide, Route{p, 5})
		if err := ref.Insert(p, 5); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := lt.Update(wide, nil); err != nil {
		t.Fatal(err)
	}
	snap := lt.Load()
	prng := rand.New(rand.NewSource(29))
	for i := 0; i < 1<<16; i++ {
		dst := prng.Uint32()
		if got, want := snap.Lookup(dst), ref.Lookup(dst); got != want {
			t.Fatalf("lookup(%08x) = %d, trie says %d", dst, got, want)
		}
	}
}

// TestTrieRemove exercises the new withdraw path on the reference engine,
// including pruning and nested prefixes.
func TestTrieRemove(t *testing.T) {
	tr := NewTrie()
	routes := []Route{
		{mustPrefix("10.0.0.0/8"), 1},
		{mustPrefix("10.1.0.0/16"), 2},
		{mustPrefix("10.1.2.0/24"), 3},
		{mustPrefix("10.1.2.128/25"), 4},
	}
	if err := Build(tr, routes); err != nil {
		t.Fatal(err)
	}
	if tr.Remove(mustPrefix("10.1.0.0/16")) != true {
		t.Fatal("remove of installed route reported false")
	}
	if tr.Remove(mustPrefix("10.1.0.0/16")) != false {
		t.Fatal("double remove reported true")
	}
	if tr.Remove(mustPrefix("172.16.0.0/12")) != false {
		t.Fatal("remove of absent route reported true")
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	// 10.1.9.9 fell back to the /8 after the /16 withdraw.
	if got := tr.Lookup(0x0a010909); got != 1 {
		t.Fatalf("lookup after remove = %d, want 1", got)
	}
	// The more-specific routes under the removed /16 survive.
	if got := tr.Lookup(0x0a010203); got != 3 {
		t.Fatalf("nested /24 lost: %d", got)
	}
	if got := tr.Lookup(0x0a0102ff); got != 4 {
		t.Fatalf("nested /25 lost: %d", got)
	}
	// Remove everything; the trie must go back to empty.
	for _, p := range []string{"10.0.0.0/8", "10.1.2.0/24", "10.1.2.128/25"} {
		if !tr.Remove(mustPrefix(p)) {
			t.Fatalf("remove %s failed", p)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d, want 0", tr.Len())
	}
	if tr.root.child[0] != nil || tr.root.child[1] != nil {
		t.Fatal("pruning left dangling branches")
	}
	if got := tr.Lookup(0x0a010203); got != NoRoute {
		t.Fatalf("lookup on emptied trie = %d", got)
	}
}

// TestLiveTableConcurrentChurn is the -race Lookup-during-swap stress:
// reader goroutines hammer Lookup while a writer churns routes whose next
// hop encodes the generation that installed them. Every lookup must
// return either NoRoute (before the covering route's first commit — never
// after) or a hop some commit actually published; within one Load()
// snapshot every probe must agree, proving no reader ever sees a
// half-painted table.
func TestLiveTableConcurrentChurn(t *testing.T) {
	lt, err := NewLiveTable()
	if err != nil {
		t.Fatal(err)
	}
	// The witness prefix: repainted every commit with hop = commit index.
	witness := mustPrefix("10.0.0.0/16")
	const witnessLo, witnessHi = uint32(0x0a000000), uint32(0x0a00ffff)

	var commits atomic.Int64 // highest hop any commit installed
	commits.Store(-1)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	const readers = 2
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// One snapshot per "batch": all probes inside it must agree.
				// floor is read before the snapshot: any commit counted in
				// it was published (cur.Store) before our Load, so the
				// snapshot must carry a hop at least that new.
				floor := commits.Load()
				snap := lt.Load()
				first := snap.Lookup(witnessLo + rng.Uint32()%(witnessHi-witnessLo))
				for i := 0; i < 64; i++ {
					dst := witnessLo + rng.Uint32()%(witnessHi-witnessLo)
					got := snap.Lookup(dst)
					if got != first {
						t.Errorf("snapshot disagrees with itself: %d then %d — partial table", first, got)
						return
					}
				}
				if first == NoRoute {
					if floor >= 0 {
						t.Errorf("NoRoute observed after commit %d published", floor)
						return
					}
					continue
				}
				if int64(first) < floor {
					t.Errorf("stale hop %d: commit %d was already published before the load", first, floor)
					return
				}
			}
		}(int64(100 + r))
	}

	// Writer: each commit bumps the witness hop and churns background
	// routes to keep the patch path honest.
	noise := RandomTable(512, 8, 41, false)
	// Keep noise clear of the witness /16 so it can't shadow it.
	kept := noise[:0]
	for _, r := range noise {
		a4 := r.Prefix.Addr().As4()
		if a4[0] == 10 && a4[1] == 0 {
			continue
		}
		kept = append(kept, r)
	}
	noise = kept
	rng := rand.New(rand.NewSource(5))
	for c := 0; c < 96; c++ {
		adds := []Route{{witness, c}}
		var dels []netip.Prefix
		for i := 0; i < 8; i++ {
			r := noise[rng.Intn(len(noise))]
			if rng.Intn(2) == 0 {
				adds = append(adds, Route{r.Prefix, rng.Intn(8)})
			} else {
				dels = append(dels, r.Prefix)
			}
		}
		gen, err := lt.Update(adds, dels)
		if err != nil {
			t.Fatal(err)
		}
		if gen == 0 {
			t.Fatal("effective commit kept generation 0")
		}
		commits.Store(int64(c))
	}
	close(stop)
	wg.Wait()
}

// TestLiveTableGenerationMonotonic checks generations from a concurrent
// observer never go backwards and land exactly at the commit count.
func TestLiveTableGenerationMonotonic(t *testing.T) {
	lt, err := NewLiveTable()
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var bad atomic.Bool
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			g := lt.Generation()
			if g < last {
				bad.Store(true)
				return
			}
			last = g
		}
	}()
	const commits = 100
	for c := 0; c < commits; c++ {
		p := mustPrefix(fmt.Sprintf("10.%d.%d.0/24", c/256, c%256))
		if _, err := lt.Update([]Route{{p, c % 8}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if bad.Load() {
		t.Fatal("generation went backwards")
	}
	if g := lt.Generation(); g != commits {
		t.Fatalf("generation = %d, want %d", g, commits)
	}
}

// TestLiveTablePageSharing checks the chunked-tbl24 commit contract: a
// one-route commit clones only the 2^16-entry page its slots live in and
// shares every other page with the previous snapshot by pointer, and the
// previous snapshot keeps answering from its own (unmutated) pages.
func TestLiveTablePageSharing(t *testing.T) {
	// Routes spread across four pages: top byte 10, 11, 20, 172.
	lt, err := NewLiveTable(
		Route{mustPrefix("10.1.0.0/16"), 1},
		Route{mustPrefix("11.2.0.0/16"), 2},
		Route{mustPrefix("20.3.0.0/16"), 3},
		Route{mustPrefix("172.16.0.0/16"), 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	before := lt.Load()

	// One /24 change inside page 10.
	if err := lt.Insert(mustPrefix("10.1.2.0/24"), 9); err != nil {
		t.Fatal(err)
	}
	after := lt.Load()
	if before == after {
		t.Fatal("commit did not publish a new snapshot")
	}
	clonedPages := 0
	for pi := range after.tbl24 {
		op, np := before.tbl24[pi], after.tbl24[pi]
		if op == nil && np == nil {
			continue
		}
		if &op[0] != &np[0] {
			clonedPages++
			if pi != 10 {
				t.Errorf("page %d cloned; only page 10 was touched", pi)
			}
		}
	}
	if clonedPages != 1 {
		t.Fatalf("cloned %d pages, want exactly 1", clonedPages)
	}
	// Old snapshot still answers pre-commit state.
	if got := before.Lookup(ip("10.1.2.1")); got != 1 {
		t.Fatalf("old snapshot mutated: lookup = %d, want 1", got)
	}
	if got := after.Lookup(ip("10.1.2.1")); got != 9 {
		t.Fatalf("new snapshot: lookup = %d, want 9", got)
	}
	// Untouched address space never materializes pages.
	if before.tbl24[200] != nil || after.tbl24[200] != nil {
		t.Fatal("empty address space materialized a page")
	}
}

// TestLiveTableFootprintSparse checks that footprint scales with
// materialized pages, not the full 2^24 slots: four /16s in two pages
// cost two pages, not 64 MB.
func TestLiveTableFootprintSparse(t *testing.T) {
	lt, err := NewLiveTable(
		Route{mustPrefix("10.0.0.0/16"), 1},
		Route{mustPrefix("10.9.0.0/16"), 2},
		Route{mustPrefix("44.0.0.0/16"), 3},
		Route{mustPrefix("44.7.0.0/16"), 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := lt.Load().MemoryFootprint(), 2*4*tbl24PageSize; got != want {
		t.Fatalf("footprint = %d, want %d (two pages)", got, want)
	}
}
