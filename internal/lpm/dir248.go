package lpm

import (
	"fmt"
	"net/netip"
	"sort"
)

// Dir248 implements DIR-24-8-BASIC (Gupta/Lin/McKeown 1998): a 2^24-entry
// first-level table indexed by the top 24 address bits, spilling prefixes
// longer than /24 into 256-entry second-level blocks. Lookups take one
// array read for ≤/24 routes and two for longer ones — the property that
// made the scheme attractive at memory-access speeds, and the reason the
// RouteBricks IP-routing workload stresses cache locality with random
// destinations (§5.1).
//
// tbl24 entry encoding (32 bits):
//
//	bit 31       — 0: bits 0..30 are a next-hop value (offset by 1, 0 = empty)
//	               1: bits 0..30 index a tblLong block
//
// The first level is chunked: 2^8 pages of 2^16 entries each, indexed by
// the top 8 address bits. A nil page reads as all-empty, so sparse tables
// cost nothing for address space they don't cover, and LiveTable commits
// share every untouched page between generations instead of cloning the
// whole 64 MB array (copy-on-write at page granularity).
//
// Construction: prefixes are inserted in ascending length order so that
// more-specific routes overwrite less-specific ranges, the standard
// offline build. Insert after Freeze rebuilds lazily.
type Dir248 struct {
	tbl24   [][]uint32 // tbl24Pages pages × tbl24PageSize entries; nil = empty
	tblLong [][]uint32 // each block has 256 entries, same value encoding as leaves
	routes  map[prefixKey]int
	dirty   bool
	n       int // route count for snapshots built without a routes map
}

type prefixKey struct {
	addr uint32
	bits int8
}

const (
	dir248LongFlag = uint32(1) << 31

	// tbl24 chunking: page index = slot >> tbl24PageBits (the address's
	// top 8 bits), offset = slot & tbl24PageMask.
	tbl24PageBits = 16
	tbl24PageSize = 1 << tbl24PageBits
	tbl24Pages    = 1 << (24 - tbl24PageBits)
	tbl24PageMask = tbl24PageSize - 1
)

// NewDir248 returns an empty DIR-24-8 table. Pages of the first-level
// table are allocated as routes paint them (a full table costs the same
// 64 MB of uint32s the original hardware scheme budgets).
func NewDir248() *Dir248 {
	return &Dir248{
		tbl24:  make([][]uint32, tbl24Pages),
		routes: make(map[prefixKey]int),
	}
}

// newDir248Snap allocates the page-pointer array only — the skeleton
// LiveTable commits and rebuilds fill in.
func newDir248Snap() *Dir248 {
	return &Dir248{tbl24: make([][]uint32, tbl24Pages)}
}

// slot24 reads one tbl24 slot; a nil page is all-empty.
func (d *Dir248) slot24(slot uint32) uint32 {
	pg := d.tbl24[slot>>tbl24PageBits]
	if pg == nil {
		return 0
	}
	return pg[slot&tbl24PageMask]
}

// setSlot24 writes one tbl24 slot, materializing its page on first write.
func (d *Dir248) setSlot24(slot, v uint32) {
	pg := d.tbl24[slot>>tbl24PageBits]
	if pg == nil {
		if v == 0 {
			return // writing empty into an empty page: nothing to materialize
		}
		pg = make([]uint32, tbl24PageSize)
		d.tbl24[slot>>tbl24PageBits] = pg
	}
	pg[slot&tbl24PageMask] = v
}

// Insert adds or replaces a route. The table is rebuilt lazily on the next
// Lookup after a batch of inserts (rebuild is O(#routes + table size)).
func (d *Dir248) Insert(p netip.Prefix, nextHop int) error {
	addr, bits, err := validate(p, nextHop)
	if err != nil {
		return err
	}
	d.routes[prefixKey{addr, int8(bits)}] = nextHop
	d.dirty = true
	return nil
}

// Len reports the number of installed prefixes.
func (d *Dir248) Len() int {
	if d.routes == nil {
		return d.n // read-only snapshot published by a LiveTable
	}
	return len(d.routes)
}

// Freeze rebuilds the lookup arrays if needed. Lookup calls it
// automatically, but callers that share the engine across goroutines must
// call Freeze once before publishing, since rebuild is not thread-safe.
func (d *Dir248) Freeze() {
	if !d.dirty {
		return
	}
	d.rebuild()
	d.dirty = false
}

func (d *Dir248) rebuild() { d.rebuildFrom(d.routes) }

// rebuildFrom repaints the lookup arrays from an arbitrary route map —
// the shared core of Freeze and of LiveTable's full-rebuild commits.
func (d *Dir248) rebuildFrom(routes map[prefixKey]int) {
	for i := range d.tbl24 {
		d.tbl24[i] = nil // drop every page; repainting materializes what's needed
	}
	d.tblLong = d.tblLong[:0]

	keys := make([]prefixKey, 0, len(routes))
	for k := range routes {
		keys = append(keys, k)
	}
	// Ascending prefix length; ties in address order for determinism.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bits != keys[j].bits {
			return keys[i].bits < keys[j].bits
		}
		return keys[i].addr < keys[j].addr
	})

	for _, k := range keys {
		hop := uint32(routes[k]) + 1 // leaf encoding: hop+1, 0 = empty
		if k.bits <= 24 {
			// Blocks are created only by >24-bit routes, which sort after
			// every ≤24-bit route, so these entries are always leaves.
			base := k.addr >> 8
			count := uint32(1) << (24 - k.bits)
			for i := uint32(0); i < count; i++ {
				d.setSlot24(base+i, hop)
			}
		} else {
			idx := k.addr >> 8
			e := d.slot24(idx)
			var blk []uint32
			if e&dir248LongFlag != 0 {
				blk = d.tblLong[e&^dir248LongFlag]
			} else {
				blk = make([]uint32, 256)
				for j := range blk {
					blk[j] = e // inherit the ≤/24 covering hop (possibly 0)
				}
				d.setSlot24(idx, dir248LongFlag|uint32(len(d.tblLong)))
				d.tblLong = append(d.tblLong, blk)
			}
			low := k.addr & 0xFF
			count := uint32(1) << (32 - int(k.bits))
			for i := uint32(0); i < count; i++ {
				blk[low+i] = hop
			}
		}
	}
}

// Lookup returns the next hop for dst, or NoRoute.
func (d *Dir248) Lookup(dst uint32) int {
	if d.dirty {
		d.Freeze()
	}
	var e uint32
	if pg := d.tbl24[dst>>24]; pg != nil {
		e = pg[(dst>>8)&tbl24PageMask]
	}
	if e&dir248LongFlag != 0 {
		e = d.tblLong[e&^dir248LongFlag][dst&0xFF]
	}
	if e == 0 {
		return NoRoute
	}
	return int(e) - 1
}

// MemoryFootprint reports the approximate bytes used by the lookup arrays
// (materialized pages only), for the capacity analysis in EXPERIMENTS.md.
func (d *Dir248) MemoryFootprint() int {
	pages := 0
	for _, pg := range d.tbl24 {
		if pg != nil {
			pages++
		}
	}
	return 4*tbl24PageSize*pages + 4*256*len(d.tblLong)
}

// String summarizes the table shape.
func (d *Dir248) String() string {
	return fmt.Sprintf("dir248{routes=%d, longBlocks=%d}", d.Len(), len(d.tblLong))
}
