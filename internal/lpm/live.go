package lpm

import (
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
)

// LiveTable is an RCU-style live FIB: a Dir248 lookup table behind an
// atomic generation pointer. Writers batch adds and withdraws, build a
// complete replacement snapshot off to the side, and publish it with one
// atomic store; readers load the current snapshot with one atomic read and
// never observe a partial table. Old snapshots stay valid for readers that
// already hold them — the Go garbage collector is the grace period.
//
// Writers are serialized by an internal mutex; any number of readers may
// call Lookup / Load concurrently with a writer. A burst of updates
// applied through one Update call costs one table build, not one per
// route.
//
// Internally the writer keeps an authoritative Trie alongside the route
// map. Small batches commit incrementally: the previous snapshot's tbl24
// pages and second-level blocks are shared and copied on write — only the
// 2^16-entry pages containing touched slots are cloned, so a one-route
// commit copies one 256 KB page instead of the whole 64 MB table — and
// only the slot ranges a changed prefix covers are repainted from the
// trie. Large batches (or tables that accumulated too many orphaned
// blocks) fall back to a full DIR-24-8 rebuild.
type LiveTable struct {
	mu        sync.Mutex // serializes writers
	cur       atomic.Pointer[Dir248]
	gen       atomic.Uint64
	count     atomic.Int64
	routes    map[prefixKey]int
	trie      *Trie
	longCount map[uint32]int // tbl24 slot -> number of >/24 routes inside it
	orphans   int            // published blocks no slot references anymore
}

// Incremental-commit limits. A patch repaints one tbl24 slot per covered
// /24 (a /16 change touches 256 slots, a /8 touches 65536); past
// patchSlotLimit the full rebuild is cheaper and bounds worst-case commit
// latency. orphanLimit caps dead second-level blocks kept alive by
// copy-on-write before a compacting rebuild reclaims them.
const (
	patchSlotLimit = 1 << 18
	orphanLimit    = 1 << 12
)

// NewLiveTable returns an empty live FIB at generation 0, optionally
// preloaded with routes (one commit, generation 1, on any routes at all).
// The error, if any, is the first rejected route.
func NewLiveTable(routes ...Route) (*LiveTable, error) {
	lt := &LiveTable{
		routes:    make(map[prefixKey]int),
		trie:      NewTrie(),
		longCount: make(map[uint32]int),
	}
	lt.cur.Store(newDir248Snap())
	if len(routes) > 0 {
		if _, err := lt.Update(routes, nil); err != nil {
			return nil, err
		}
	}
	return lt, nil
}

// Load returns the current published snapshot. The snapshot is immutable
// and complete; hold it across a batch of lookups to pay the atomic load
// once. Do not call Insert or Freeze on it.
func (lt *LiveTable) Load() *Dir248 { return lt.cur.Load() }

// Generation reports the number of published commits. It increases by
// exactly one per effective Update, never decreases, and is 0 only before
// the first commit.
func (lt *LiveTable) Generation() uint64 { return lt.gen.Load() }

// Len reports the number of installed prefixes.
func (lt *LiveTable) Len() int { return int(lt.count.Load()) }

// Lookup returns the next hop for dst in the current snapshot, or
// NoRoute. It is safe from any goroutine at any time. Batch callers
// should Load once and look up against the snapshot instead.
func (lt *LiveTable) Lookup(dst uint32) int { return lt.cur.Load().Lookup(dst) }

// Insert adds or replaces a single route, committing immediately. It
// satisfies Engine; bursts should prefer Update, which commits the whole
// batch in one table build.
func (lt *LiveTable) Insert(p netip.Prefix, nextHop int) error {
	_, err := lt.Update([]Route{{Prefix: p, NextHop: nextHop}}, nil)
	return err
}

// Withdraw removes a single route, committing immediately. Withdrawing a
// route that is not installed is a no-op.
func (lt *LiveTable) Withdraw(p netip.Prefix) error {
	_, err := lt.Update(nil, []netip.Prefix{p})
	return err
}

// Routes lists the installed routes sorted by address then prefix length —
// a stable order for admin APIs and tests.
func (lt *LiveTable) Routes() []Route {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	out := make([]Route, 0, len(lt.routes))
	for k, hop := range lt.routes {
		a4 := [4]byte{byte(k.addr >> 24), byte(k.addr >> 16), byte(k.addr >> 8), byte(k.addr)}
		out = append(out, Route{
			Prefix:  netip.PrefixFrom(netip.AddrFrom4(a4), int(k.bits)),
			NextHop: hop,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Prefix.Addr(), out[j].Prefix.Addr()
		if ai != aj {
			return ai.Less(aj)
		}
		return out[i].Prefix.Bits() < out[j].Prefix.Bits()
	})
	return out
}

// liveChange is one validated element of an Update batch.
type liveChange struct {
	key prefixKey
	hop int
	add bool
}

// Update applies a batch of route adds and withdraws as one commit and
// returns the generation now visible to readers. The whole batch is
// validated before anything is applied — on error the table is unchanged.
// Re-adding an identical route and withdrawing an absent one are no-ops;
// a batch with no effective change publishes nothing and keeps the
// generation.
func (lt *LiveTable) Update(adds []Route, withdraws []netip.Prefix) (uint64, error) {
	lt.mu.Lock()
	defer lt.mu.Unlock()

	changes := make([]liveChange, 0, len(adds)+len(withdraws))
	for _, r := range adds {
		addr, bits, err := validate(r.Prefix, r.NextHop)
		if err != nil {
			return lt.gen.Load(), err
		}
		changes = append(changes, liveChange{prefixKey{addr, int8(bits)}, r.NextHop, true})
	}
	for _, p := range withdraws {
		addr, bits, err := validate(p, 0)
		if err != nil {
			return lt.gen.Load(), err
		}
		changes = append(changes, liveChange{key: prefixKey{addr, int8(bits)}})
	}

	// Apply to the writer-side authority (route map + trie), collecting
	// the set of tbl24 slots whose painted state may have changed.
	touched := make(map[uint32]struct{})
	slots := 0
	touch := func(k prefixKey) {
		if k.bits > 24 {
			if _, ok := touched[k.addr>>8]; !ok {
				touched[k.addr>>8] = struct{}{}
				slots++
			}
			return
		}
		base := k.addr >> 8
		count := uint32(1) << (24 - k.bits)
		slots += int(count) // estimate before dedup; only gates the rebuild fallback
		if slots <= patchSlotLimit {
			for i := uint32(0); i < count; i++ {
				touched[base+i] = struct{}{}
			}
		}
	}
	dirty := false
	for _, c := range changes {
		a4 := [4]byte{byte(c.key.addr >> 24), byte(c.key.addr >> 16), byte(c.key.addr >> 8), byte(c.key.addr)}
		p := netip.PrefixFrom(netip.AddrFrom4(a4), int(c.key.bits))
		if c.add {
			old, existed := lt.routes[c.key]
			if existed && old == c.hop {
				continue
			}
			lt.routes[c.key] = c.hop
			lt.trie.Insert(p, c.hop)
			if c.key.bits > 24 && !existed {
				lt.longCount[c.key.addr>>8]++
			}
		} else {
			if _, existed := lt.routes[c.key]; !existed {
				continue
			}
			delete(lt.routes, c.key)
			lt.trie.Remove(p)
			if c.key.bits > 24 {
				slot := c.key.addr >> 8
				if lt.longCount[slot]--; lt.longCount[slot] == 0 {
					delete(lt.longCount, slot)
				}
			}
		}
		dirty = true
		touch(c.key)
	}
	if !dirty {
		return lt.gen.Load(), nil
	}

	old := lt.cur.Load()
	var snap *Dir248
	if slots > patchSlotLimit || lt.orphans > orphanLimit {
		snap = newDir248Snap()
		snap.n = len(lt.routes)
		snap.rebuildFrom(lt.routes)
		lt.orphans = 0
	} else {
		snap = lt.patch(old, touched)
	}
	lt.count.Store(int64(len(lt.routes)))
	lt.cur.Store(snap)
	return lt.gen.Add(1), nil
}

// patch builds the next snapshot incrementally: share the previous
// snapshot's tbl24 pages and second-level blocks, clone only the pages
// containing touched slots, and repaint those slots from the
// authoritative trie. Neither pages nor blocks are ever mutated in
// place — a touched slot gets a freshly copied page (and, for >/24
// routes, a freshly painted block) — so the previous snapshot stays
// intact for readers still holding it.
func (lt *LiveTable) patch(old *Dir248, touched map[uint32]struct{}) *Dir248 {
	snap := &Dir248{
		tbl24:   make([][]uint32, tbl24Pages),
		tblLong: append([][]uint32(nil), old.tblLong...),
		n:       len(lt.routes),
	}
	copy(snap.tbl24, old.tbl24) // share page pointers; clone on touch below
	cloned := make(map[uint32]struct{})
	for s := range touched {
		pi := s >> tbl24PageBits
		if _, ok := cloned[pi]; !ok {
			pg := make([]uint32, tbl24PageSize)
			if old.tbl24[pi] != nil {
				copy(pg, old.tbl24[pi])
			}
			snap.tbl24[pi] = pg
			cloned[pi] = struct{}{}
		}
		pg := snap.tbl24[pi]
		e := pg[s&tbl24PageMask]
		if lt.longCount[s] == 0 {
			// No >/24 route lives in this slot: every address in it
			// shares one LPM answer, so one trie walk paints the leaf.
			if e&dir248LongFlag != 0 {
				lt.orphans++
			}
			pg[s&tbl24PageMask] = encodeLeaf(lt.trie.Lookup(s << 8))
			continue
		}
		blk := make([]uint32, 256)
		base := s << 8
		for j := uint32(0); j < 256; j++ {
			blk[j] = encodeLeaf(lt.trie.Lookup(base | j))
		}
		if e&dir248LongFlag != 0 {
			snap.tblLong[e&^dir248LongFlag] = blk
		} else {
			pg[s&tbl24PageMask] = dir248LongFlag | uint32(len(snap.tblLong))
			snap.tblLong = append(snap.tblLong, blk)
		}
	}
	return snap
}

func encodeLeaf(hop int) uint32 {
	if hop == NoRoute {
		return 0
	}
	return uint32(hop) + 1
}
