// Package lpm implements IPv4 longest-prefix-match route lookup.
//
// Two interchangeable engines are provided:
//
//   - Dir248: the DIR-24-8-BASIC scheme of Gupta, Lin and McKeown
//     ("Routing Lookups in Hardware at Memory Access Speeds", INFOCOM
//     1998) — the "D-lookup algorithm" the RouteBricks paper uses via the
//     Click distribution for its IP-routing workload (§5.1). One memory
//     access for prefixes ≤ /24, two for longer.
//
//   - Trie: a plain binary trie, the correctness baseline. Slower but
//     obviously correct; the test suite cross-checks Dir248 against it on
//     random route tables.
//
// A bare Dir248 or Trie is built once and then read by many cores
// concurrently, matching the paper's workload (forwarding planes rebuild
// rarely, look up millions of times per second); their mutating methods
// must not race with Lookup. For live route churn — production routers
// eat continuous BGP-scale updates — wrap Dir248 in a LiveTable: an
// RCU-style generation pointer whose writers build complete replacement
// snapshots off to the side and publish them atomically, so inserts and
// withdraws never stall a forwarding core and no Lookup ever observes a
// partially built table. Readers hold a snapshot (Load) across a batch of
// lookups and pay one atomic read per batch, not per packet.
package lpm

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// NoRoute is returned by Lookup when no prefix covers the address and the
// table holds no default route.
const NoRoute = -1

// Engine is a longest-prefix-match lookup structure. Lookup returns the
// next-hop index installed with the most specific covering prefix, or
// NoRoute.
type Engine interface {
	// Insert adds (or replaces) a route. prefix is given as address+length.
	Insert(p netip.Prefix, nextHop int) error
	// Lookup returns the next hop for a destination address.
	Lookup(dst uint32) int
	// Len reports the number of installed prefixes.
	Len() int
}

// Route pairs a prefix with a next-hop index, for bulk loading.
type Route struct {
	Prefix  netip.Prefix
	NextHop int
}

func validate(p netip.Prefix, nextHop int) (addr uint32, bits int, err error) {
	if !p.Addr().Is4() {
		return 0, 0, fmt.Errorf("lpm: prefix %v is not IPv4", p)
	}
	if nextHop < 0 || nextHop > 0x7FFFFF {
		return 0, 0, fmt.Errorf("lpm: next hop %d out of range", nextHop)
	}
	b := p.Addr().As4()
	addr = uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	bits = p.Bits()
	// Mask off host bits so callers can pass unnormalized prefixes.
	if bits < 32 {
		addr &= ^uint32(0) << (32 - bits)
	}
	return addr, bits, nil
}

// RandomTable generates n routes with the prefix-length mix typical of a
// 2009 DFZ table (the paper uses a 256K-entry table): mostly /24s, a large
// /16–/23 population, a few short prefixes, plus a default route when
// withDefault is set. Next hops cycle through nextHops values. The result
// is deterministic in seed.
func RandomTable(n int, nextHops int, seed int64, withDefault bool) []Route {
	rng := rand.New(rand.NewSource(seed))
	routes := make([]Route, 0, n+1)
	seen := make(map[uint64]bool, n)
	if withDefault {
		routes = append(routes, Route{netip.PrefixFrom(netip.AddrFrom4([4]byte{}), 0), 0})
	}
	for len(routes) < n {
		var bits int
		switch r := rng.Float64(); {
		case r < 0.55:
			bits = 24
		case r < 0.80:
			bits = 17 + rng.Intn(7) // /17../23
		case r < 0.90:
			bits = 16
		case r < 0.97:
			bits = 25 + rng.Intn(8) // /25../32
		default:
			bits = 8 + rng.Intn(8) // /8../15
		}
		addr := rng.Uint32()
		if bits < 32 {
			addr &= ^uint32(0) << (32 - bits)
		}
		key := uint64(addr)<<6 | uint64(bits)
		if seen[key] {
			continue
		}
		seen[key] = true
		a4 := [4]byte{byte(addr >> 24), byte(addr >> 16), byte(addr >> 8), byte(addr)}
		routes = append(routes, Route{
			Prefix:  netip.PrefixFrom(netip.AddrFrom4(a4), bits),
			NextHop: rng.Intn(nextHops),
		})
	}
	return routes
}

// Build loads routes into engine, failing fast on the first error.
func Build(e Engine, routes []Route) error {
	for _, r := range routes {
		if err := e.Insert(r.Prefix, r.NextHop); err != nil {
			return err
		}
	}
	return nil
}
