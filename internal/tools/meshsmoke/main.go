// Command meshsmoke is the end-to-end gate for the multi-process mesh:
// it builds rbrouter and rbmesh, boots a 3-member cluster through the
// launcher, and drives the §6 failure story over the public HTTP
// surfaces only — the same interfaces an operator has:
//
//  1. all three members converge alive, and injected traffic is fully
//     delivered across the mesh;
//  2. one member is hard-killed; the aggregate snapshot converges to
//     2/3 running with every survivor re-striped (the dead member's
//     VLB share redistributed);
//  3. traffic injected after convergence is again fully delivered —
//     the dead member's share moved to live peers without loss;
//  4. the killed member restarts, rejoins, and the cluster converges
//     back to 3/3 with traffic flowing through all members.
//
// Exit status 0 means the story held. Run via `make mesh-smoke`.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"
)

const api = "http://127.0.0.1:8765"

// clusterView is the slice of rbmesh's /api/v1/cluster document the
// smoke assertions need.
type clusterView struct {
	Members   int  `json:"members"`
	Running   int  `json:"running"`
	Converged bool `json:"converged"`
	Totals    struct {
		Egressed      uint64 `json:"egressed"`
		TxDrained     uint64 `json:"tx_drained"`
		WireRxBatches uint64 `json:"wire_rx_batches"`
		WireRxFrames  uint64 `json:"wire_rx_frames"`
		WireTxBatches uint64 `json:"wire_tx_batches"`
		WireTxFrames  uint64 `json:"wire_tx_frames"`
	} `json:"totals"`
	Collector struct {
		Received uint64            `json:"received"`
		ByNode   map[string]uint64 `json:"by_node"`
	} `json:"collector"`
}

func getCluster() (clusterView, error) {
	var v clusterView
	resp, err := http.Get(api + "/api/v1/cluster")
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	return v, json.NewDecoder(resp.Body).Decode(&v)
}

func post(path string) error {
	resp, err := http.Post(api+path, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: HTTP %d", path, resp.StatusCode)
	}
	return nil
}

// waitConverged polls until the cluster reports the wanted running
// count with a converged membership view.
func waitConverged(running int, timeout time.Duration) (clusterView, error) {
	deadline := time.Now().Add(timeout)
	var last clusterView
	var lastErr error
	for time.Now().Before(deadline) {
		v, err := getCluster()
		if err == nil && v.Running == running && v.Converged {
			return v, nil
		}
		last, lastErr = v, err
		time.Sleep(100 * time.Millisecond)
	}
	return last, fmt.Errorf("timed out waiting for running=%d converged (last: %+v, err: %v)", running, last, lastErr)
}

// inject fires packets and waits for the collector ledger to account
// for every one of them on top of base. Returns the new ledger total.
func inject(packets int, base uint64, settle time.Duration) (uint64, error) {
	if err := post(fmt.Sprintf("/api/v1/inject?packets=%d&rate=40000", packets)); err != nil {
		return base, err
	}
	want := base + uint64(packets)
	deadline := time.Now().Add(settle)
	var got uint64
	for time.Now().Before(deadline) {
		v, err := getCluster()
		if err == nil {
			got = v.Collector.Received
			if got >= want {
				return got, nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return got, fmt.Errorf("delivered %d of %d injected (ledger %d, want %d)", got-base, packets, got, want)
}

func run() error {
	bin, err := os.MkdirTemp("", "meshsmoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(bin)
	for _, cmd := range []string{"rbrouter", "rbmesh"} {
		build := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd)
		build.Stdout, build.Stderr = os.Stdout, os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("build %s: %w", cmd, err)
		}
	}

	// Fast failure detection so the smoke finishes in seconds; the
	// protocol constants under test are the same, only the timers shrink.
	mesh := exec.Command(filepath.Join(bin, "rbmesh"),
		"-n", "3",
		"-rbrouter", filepath.Join(bin, "rbrouter"),
		"-addr", "127.0.0.1:8765",
		"-logdir", bin,
		"-heartbeat-ms", "50",
		"-dead-ms", "600",
	)
	mesh.Stdout, mesh.Stderr = os.Stdout, os.Stderr
	if err := mesh.Start(); err != nil {
		return err
	}
	meshDone := make(chan error, 1)
	go func() { meshDone <- mesh.Wait() }()
	stop := func() {
		mesh.Process.Signal(syscall.SIGTERM)
		select {
		case <-meshDone:
		case <-time.After(10 * time.Second):
			mesh.Process.Kill()
		}
	}
	defer stop()

	// Phase 1: full mesh converges and carries traffic loss-free.
	if _, err := waitConverged(3, 15*time.Second); err != nil {
		return fmt.Errorf("phase 1 (boot): %w", err)
	}
	fmt.Println("meshsmoke: 3/3 members converged")
	ledger, err := inject(2000, 0, 15*time.Second)
	if err != nil {
		return fmt.Errorf("phase 1 (traffic): %w", err)
	}
	fmt.Printf("meshsmoke: full mesh delivered %d/%d\n", ledger, 2000)

	// The traffic above moved through the members' batched wire-I/O
	// layer: every socket read and write accounts a batch, so all four
	// counters must be live after 2000 delivered frames.
	v0, err := getCluster()
	if err != nil {
		return fmt.Errorf("phase 1 (wire counters): %w", err)
	}
	t := v0.Totals
	if t.WireRxBatches == 0 || t.WireRxFrames == 0 || t.WireTxBatches == 0 || t.WireTxFrames == 0 {
		return fmt.Errorf("phase 1: wire I/O counters not live (rx %d/%d, tx %d/%d)",
			t.WireRxFrames, t.WireRxBatches, t.WireTxFrames, t.WireTxBatches)
	}
	fmt.Printf("meshsmoke: wire I/O live — rx %d frames / %d batches (fill %.1f), tx %d frames / %d batches (fill %.1f)\n",
		t.WireRxFrames, t.WireRxBatches, float64(t.WireRxFrames)/float64(t.WireRxBatches),
		t.WireTxFrames, t.WireTxBatches, float64(t.WireTxFrames)/float64(t.WireTxBatches))

	// Phase 2: kill one member; survivors must declare it dead and
	// re-stripe (converged == every survivor's view matches reality).
	if err := post("/api/v1/kill?id=2"); err != nil {
		return fmt.Errorf("phase 2 (kill): %w", err)
	}
	v, err := waitConverged(2, 15*time.Second)
	if err != nil {
		return fmt.Errorf("phase 2 (death convergence): %w", err)
	}
	fmt.Printf("meshsmoke: member 2 dead, survivors converged (running %d/%d)\n", v.Running, v.Members)

	// Phase 3: traffic injected after convergence is fully delivered by
	// the remaining members — the dead member's VLB share was
	// redistributed, not dropped.
	before := v.Collector.ByNode["2"]
	ledger, err = inject(2000, ledger, 15*time.Second)
	if err != nil {
		return fmt.Errorf("phase 3 (post-failure traffic): %w", err)
	}
	v, _ = getCluster()
	if after := v.Collector.ByNode["2"]; after != before {
		return fmt.Errorf("phase 3: dead member's prefix gained deliveries (%d → %d)", before, after)
	}
	fmt.Printf("meshsmoke: post-failure traffic delivered in full (ledger %d), dead prefix untouched\n", ledger)

	// Phase 4: restart, rejoin, converge back to full strength, and
	// carry traffic through all three members again.
	if err := post("/api/v1/restart?id=2"); err != nil {
		return fmt.Errorf("phase 4 (restart): %w", err)
	}
	if _, err := waitConverged(3, 15*time.Second); err != nil {
		return fmt.Errorf("phase 4 (rejoin convergence): %w", err)
	}
	ledger, err = inject(1500, ledger, 15*time.Second)
	if err != nil {
		return fmt.Errorf("phase 4 (post-rejoin traffic): %w", err)
	}
	v, _ = getCluster()
	if v.Collector.ByNode["2"] <= before {
		return fmt.Errorf("phase 4: rejoined member received no traffic (by_node %v)", v.Collector.ByNode)
	}
	fmt.Printf("meshsmoke: rejoin carried traffic (ledger %d, by_node %v)\n", ledger, v.Collector.ByNode)

	fmt.Println("meshsmoke: PASS")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "meshsmoke:", err)
		os.Exit(1)
	}
}
