// Command benchjson turns `go test -bench` output into JSON and
// appends the Placement: Auto calibration the library would run on the
// same workload, so `make bench-json` leaves one machine-readable
// BENCH_placement.json trajectory point per commit: the measured
// parallel-vs-pipelined Mpps sweep next to the calibration scores that
// drive the Auto decision.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkPlacement -benchmem . > out.txt
//	go run ./internal/tools/benchjson -bench out.txt -out BENCH_placement.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strconv"
	"strings"

	"routebricks"
	"routebricks/internal/elements"
	"routebricks/internal/lpm"
	"routebricks/internal/pkt"
)

// benchResult is one parsed `Benchmark...` output line.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// calResult is one Placement: Auto run at a given core count.
type calResult struct {
	Cores      int                             `json:"cores"`
	Picked     string                          `json:"picked"`
	Decision   string                          `json:"decision"`
	Candidates []routebricks.CalibrationResult `json:"candidates"`
}

type output struct {
	Benchmarks  []benchResult `json:"benchmarks"`
	Calibration []calResult   `json:"calibration"`
}

// parseBench extracts Benchmark lines: name, iteration count, then
// value/unit pairs (ns/op, MB/s, custom metrics like Mpps, B/op,
// allocs/op).
func parseBench(path string) ([]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []benchResult
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		r := benchResult{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		out = append(out, r)
	}
	return out, sc.Err()
}

// placementConfig mirrors the BenchmarkPlacement workload (the
// standard IP forwarding trunk with per-cause side branches) so the
// calibration scores in the JSON describe the same graph the Mpps
// sweep measured.
const placementConfig = `
	check :: CheckIPHeader;
	rt    :: LPMLookup(fib);
	ttl   :: DecIPTTL;
	check[0] -> rt;
	check[1] -> badhdr;
	rt[0]    -> ttl;
	rt[1]    -> badroute;
	ttl[1]   -> badttl;
`

// calibrate runs Placement: Auto over the benchmark workload at the
// given core count and reports the decision and candidate scores.
func calibrate(cores int) (calResult, error) {
	table := lpm.NewDir248()
	if err := table.Insert(netip.MustParsePrefix("10.0.0.0/16"), 1); err != nil {
		return calResult{}, err
	}
	table.Freeze()
	sink := func() routebricks.Element { return &elements.Sink{Recycle: pkt.DefaultPool} }
	pipe, err := routebricks.Load(placementConfig, routebricks.Options{
		Cores:     cores,
		Placement: routebricks.Auto,
		Prebound: func(int) map[string]routebricks.Element {
			return map[string]routebricks.Element{
				"fib":      elements.NewLPMLookup(table),
				"badhdr":   sink(),
				"badroute": sink(),
				"badttl":   sink(),
			}
		},
		Sink: func(int) routebricks.Element { return sink() },
	})
	if err != nil {
		return calResult{}, err
	}
	decision := ""
	if s := pipe.Snapshot(); s.Decision != "" {
		decision = s.Decision
	}
	return calResult{
		Cores:      cores,
		Picked:     pipe.Placement().String(),
		Decision:   decision,
		Candidates: pipe.Calibration(),
	}, nil
}

func run() error {
	benchPath := flag.String("bench", "", "go test -bench output to parse")
	outPath := flag.String("out", "BENCH_placement.json", "JSON file to write")
	flag.Parse()

	var doc output
	if *benchPath != "" {
		b, err := parseBench(*benchPath)
		if err != nil {
			return fmt.Errorf("parse %s: %w", *benchPath, err)
		}
		doc.Benchmarks = b
	}
	for _, cores := range []int{1, 2, 4, 8} {
		c, err := calibrate(cores)
		if err != nil {
			return fmt.Errorf("calibrate %d cores: %w", cores, err)
		}
		doc.Calibration = append(doc.Calibration, c)
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	return os.WriteFile(*outPath, raw, 0o644)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
